// Package qamarket reproduces "Autonomic Query Allocation based on
// Microeconomics Principles" (Pentaris & Ioannidis, ICDE 2007): the
// QA-NT decentralized query-market allocation mechanism, the federation
// simulator and baselines it was evaluated against, and a real TCP
// federation over an embedded relational engine.
//
// This package is the public façade: it aliases the library's central
// types so adopters have a single import, while the implementation
// lives in the internal packages documented in DESIGN.md.
//
// Quick taste (see examples/ for runnable programs):
//
//	set := qamarket.TimeBudgetSupplySet{Cost: []float64{400, 100}, Budget: 500}
//	agent, _ := qamarket.NewAgent(set, qamarket.DefaultAgentConfig(2))
//	agent.BeginPeriod()
//	if agent.Offer(1) {
//	    _ = agent.Accept(1)
//	}
//	agent.EndPeriod()
package qamarket

import (
	"math/rand"

	"github.com/qamarket/qamarket/internal/alloc"
	"github.com/qamarket/qamarket/internal/catalog"
	"github.com/qamarket/qamarket/internal/cluster"
	"github.com/qamarket/qamarket/internal/costmodel"
	"github.com/qamarket/qamarket/internal/economics"
	"github.com/qamarket/qamarket/internal/market"
	"github.com/qamarket/qamarket/internal/membership"
	"github.com/qamarket/qamarket/internal/metrics"
	"github.com/qamarket/qamarket/internal/qtrade"
	"github.com/qamarket/qamarket/internal/sim"
	"github.com/qamarket/qamarket/internal/sqldb"
	"github.com/qamarket/qamarket/internal/vector"
	"github.com/qamarket/qamarket/internal/workload"
)

// Market core (the paper's contribution, Section 3).
type (
	// Agent is one node's QA-NT market participant.
	Agent = market.Agent
	// AgentConfig parameterizes an agent (λ, price bounds, threshold).
	AgentConfig = market.Config
	// SupplySet describes a node's feasible supply vectors S_i.
	SupplySet = economics.SupplySet
	// TimeBudgetSupplySet is the standard per-period time-budget supply set.
	TimeBudgetSupplySet = economics.TimeBudgetSupplySet
	// Quantity is a demand/supply/consumption vector in N^K.
	Quantity = vector.Quantity
	// Prices is a virtual price vector in R+^K.
	Prices = vector.Prices
	// Allocation is a candidate <[s_i],[c_i]> solution.
	Allocation = economics.Allocation
)

// NewAgent builds a QA-NT agent over a supply set.
func NewAgent(set SupplySet, cfg AgentConfig) (*Agent, error) {
	return market.NewAgent(set, cfg)
}

// DefaultAgentConfig returns the paper's λ=0.1 configuration for the
// given number of query classes.
func DefaultAgentConfig(classes int) AgentConfig { return market.DefaultConfig(classes) }

// Simulator and mechanisms (Section 5.1).
type (
	// Mechanism allocates queries to federation nodes.
	Mechanism = alloc.Mechanism
	// Federation is the discrete-event federation simulator.
	Federation = sim.Federation
	// SimConfig assembles one simulation run.
	SimConfig = sim.Config
	// Catalog is the federation's data placement.
	Catalog = catalog.Catalog
	// CatalogParams are the Table 3 environment knobs.
	CatalogParams = catalog.Params
	// Template is a query template/class.
	Template = costmodel.Template
	// CostModel estimates execution times per node.
	CostModel = costmodel.Model
	// Arrival is one query entering the system.
	Arrival = workload.Arrival
	// Sinusoid is the dynamic-workload generator of Figures 3–5.
	Sinusoid = workload.Sinusoid
	// ZipfWorkload is the heterogeneous workload of Figure 6.
	ZipfWorkload = workload.Zipf
	// Collector accumulates per-query samples.
	Collector = metrics.Collector
	// Summary condenses a run into reporting statistics.
	Summary = metrics.Summary
)

// NewFederation builds a simulator around an allocation mechanism.
func NewFederation(cfg SimConfig, mech Mechanism) (*Federation, error) {
	return sim.New(cfg, mech)
}

// NewQANTMechanism returns the QA-NT allocation mechanism for the
// simulator.
func NewQANTMechanism(cfg AgentConfig) Mechanism { return alloc.NewQANT(cfg) }

// NewGreedyMechanism returns the Greedy baseline (optionally with a
// randomization fraction; rng may be nil when frac is 0).
func NewGreedyMechanism(rng *rand.Rand, frac float64) Mechanism {
	return alloc.NewGreedy(rng, frac)
}

// NewRandomMechanism returns the uniform-random baseline.
func NewRandomMechanism(rng *rand.Rand) Mechanism { return alloc.NewRandom(rng) }

// NewRoundRobinMechanism returns the round-robin baseline.
func NewRoundRobinMechanism() Mechanism { return alloc.NewRoundRobin() }

// NewBNQRDMechanism returns the BNQRD load-balancing baseline.
func NewBNQRDMechanism() Mechanism { return alloc.NewBNQRD() }

// NewTwoRandomProbesMechanism returns Mitzenmacher's two-choices
// baseline.
func NewTwoRandomProbesMechanism(rng *rand.Rand) Mechanism {
	return alloc.NewTwoRandomProbes(rng)
}

// GenerateCatalog builds a synthetic Table 3 environment.
func GenerateCatalog(p CatalogParams, rng *rand.Rand) (*Catalog, error) {
	return catalog.Generate(p, rng)
}

// Table3Params returns the paper's Table 3 parameterization.
func Table3Params() CatalogParams { return catalog.Table3() }

// NewCostModel builds the per-node execution-time estimator.
func NewCostModel(c *Catalog) *CostModel { return costmodel.New(c) }

// EstimateCapacity computes the federation's sustainable query rate
// for a class mix.
func EstimateCapacity(c *Catalog, ts []Template, weights []float64) float64 {
	return sim.EstimateCapacity(c, ts, weights)
}

// Real federation over TCP (Section 5.2).
type (
	// DB is the embedded relational engine.
	DB = sqldb.DB
	// Node is one running federation server.
	Node = cluster.Node
	// NodeConfig parameterizes a server.
	NodeConfig = cluster.NodeConfig
	// Client negotiates and dispatches queries.
	Client = cluster.Client
	// ClientConfig parameterizes a client.
	ClientConfig = cluster.ClientConfig
	// Outcome is one query's journey through the federation.
	Outcome = cluster.Outcome
	// Distributor evaluates queries no single node can answer by
	// decomposing them into subqueries (the Section 2.1 query-trading
	// setting).
	Distributor = cluster.Distributor
	// DistOutcome describes one distributed evaluation.
	DistOutcome = cluster.DistOutcome
	// Member is one gossiped membership row (a federation node's
	// identity, address, liveness state, and catalog advertisement).
	Member = membership.Member
	// MemberInfo is one row of a client's membership view, including
	// the client-side breaker state.
	MemberInfo = cluster.MemberInfo
)

// OpenDB creates an empty embedded database.
func OpenDB() *DB { return sqldb.Open() }

// StartNode starts a federation server.
func StartNode(addr string, cfg NodeConfig) (*Node, error) { return cluster.StartNode(addr, cfg) }

// NewClient builds a federation client.
func NewClient(cfg ClientConfig) (*Client, error) { return cluster.NewClient(cfg) }

// NewDistributor wraps a client with distributed subquery evaluation.
func NewDistributor(c *Client) *Distributor { return cluster.NewDistributor(c) }

// Allocation mechanisms for the real federation.
const (
	MechGreedy = cluster.MechGreedy
	MechQANT   = cluster.MechQANT
)

// EquitableSplit divides an aggregate supply max-min fairly over node
// demands — the equitable-allocation extension of the paper's
// Section 6.
func EquitableSplit(agg Quantity, demand []Quantity) []Quantity {
	return economics.EquitableSplit(agg, demand)
}

// Query-trading auction substrate (the paper's Section 2.1 setting).
type (
	// Auction runs CFP/bid/award rounds over a set of sellers.
	Auction = qtrade.Auction
	// CFP is a call-for-proposals for one (sub)query.
	CFP = qtrade.CFP
	// Bid is a seller's answer to a CFP.
	Bid = qtrade.Bid
	// TradeSeller answers CFPs (qtrade.Seller).
	TradeSeller = qtrade.Seller
	// MarketSeller gates any seller behind a QA-NT agent.
	MarketSeller = qtrade.MarketSeller
)

// NewAuction builds a query-trading auction.
func NewAuction(sellers []TradeSeller, valuation qtrade.Valuation, maxRounds int) (*Auction, error) {
	return qtrade.NewAuction(sellers, valuation, maxRounds)
}

// EarliestDelivery is the valuation preferring the soonest completion.
func EarliestDelivery(cfp CFP, b Bid) float64 { return qtrade.EarliestDelivery(cfp, b) }

// Satisfaction is a node's utility under the equitable criterion.
func Satisfaction(consumption, demand Quantity) float64 {
	return economics.Satisfaction(consumption, demand)
}
