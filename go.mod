module github.com/qamarket/qamarket

go 1.22
