// Benchmarks regenerating every table and figure of the paper plus the
// DESIGN.md ablations. Each BenchmarkFigureN/BenchmarkTableN runs the
// corresponding experiment at a bench-friendly scale; run the full
// paper scale with cmd/qabench -paper.
package qamarket

import (
	"math/rand"
	"strconv"
	"testing"
	"time"

	"github.com/qamarket/qamarket/internal/alloc"
	"github.com/qamarket/qamarket/internal/catalog"
	"github.com/qamarket/qamarket/internal/cluster"
	"github.com/qamarket/qamarket/internal/costmodel"
	"github.com/qamarket/qamarket/internal/desim"
	"github.com/qamarket/qamarket/internal/economics"
	"github.com/qamarket/qamarket/internal/experiments"
	"github.com/qamarket/qamarket/internal/market"
	"github.com/qamarket/qamarket/internal/sim"
	"github.com/qamarket/qamarket/internal/trace"
	"github.com/qamarket/qamarket/internal/vector"
	"github.com/qamarket/qamarket/internal/workload"
)

// benchScale keeps a single bench iteration under ~100 ms.
func benchScale() experiments.Scale {
	s := experiments.Quick()
	s.Nodes = 16
	s.Relations = 80
	s.Queries = 400
	s.Classes = 16
	s.MaxJoins = 5
	s.DurationS = 20
	return s
}

func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Figure1()
		if r.QAMeanMs >= r.LBMeanMs {
			b.Fatal("figure 1 inverted")
		}
	}
}

func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Figure2()
		if !r.QAPareto {
			b.Fatal("figure 2 wrong")
		}
	}
}

func BenchmarkFigure3(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure3(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure4(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure4(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure5a(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure5a(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure5b(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure5b(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure5c(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure5c(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure6(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure6(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure7 runs the real TCP federation. Each iteration stands
// up five servers and replays a reduced workload, so iterations are
// wall-clock bound (~seconds).
func BenchmarkFigure7(b *testing.B) {
	opt := experiments.DefaultFigure7()
	opt.Queries = 40
	opt.Interarrivals = []time.Duration{20 * time.Millisecond}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure7(opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rows := experiments.Table2(); len(rows) != 6 {
			b.Fatal("table 2 wrong")
		}
	}
}

func BenchmarkTable3Setup(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table3(s); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benches (DESIGN.md §4) ---

// ablationFixture builds a small overloaded two-class scenario shared
// by the ablations; it returns the mean response time of QA-NT with
// the given agent configuration, exactness flag and period.
func ablationRun(b *testing.B, cfg market.Config, exact bool, periodMs int64) float64 {
	b.Helper()
	rng := rand.New(rand.NewSource(3))
	p := catalog.Table3()
	p.Nodes = 12
	p.Relations = 30
	p.HashJoinNodes = 11
	cat, err := catalog.Generate(p, rng)
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range cat.Nodes {
		n.Holds[0] = true
		delete(n.Holds, 1)
	}
	for _, n := range cat.Nodes[:6] {
		n.Holds[1] = true
	}
	ts := []costmodel.Template{
		{Class: 0, Relations: []int{0}, Selectivity: 1, Sort: true},
		{Class: 1, Relations: []int{1}, Selectivity: 1, Sort: true},
	}
	model := costmodel.New(cat)
	for i, target := range []float64{1000, 500} {
		best, _ := model.EstimateBest(ts[i])
		ts[i].CostScale = target / best
	}
	capacity := sim.EstimateCapacity(cat, ts, []float64{2, 1})
	peak := 2.0 * capacity * 3.1416
	s1 := workload.Sinusoid{Class: 0, Origin: -1, OriginCount: 12, Freq: 0.05,
		PeakRate: peak * 2 / 3, Duration: 20000}
	s2 := workload.Sinusoid{Class: 1, Origin: -1, OriginCount: 12, Freq: 0.05,
		PeakRate: peak / 3, PhaseDeg: 900, Duration: 20000}
	arrivals := append(s1.Generate(rng), s2.Generate(rng)...)
	workload.Sort(arrivals)

	mech := alloc.NewQANT(cfg)
	mech.Exact = exact
	fed, err := sim.New(sim.Config{Catalog: cat, Templates: ts, PeriodMs: periodMs}, mech)
	if err != nil {
		b.Fatal(err)
	}
	col, err := fed.Run(arrivals)
	if err != nil {
		b.Fatal(err)
	}
	return col.Summarize().MeanRespMs
}

// BenchmarkAblationLambda sweeps the price-adjustment step λ (eq. 6):
// larger steps converge faster but less accurately.
func BenchmarkAblationLambda(b *testing.B) {
	for _, lambda := range []float64{0.02, 0.1, 0.5} {
		lambda := lambda
		b.Run(formatFloat("lambda", lambda), func(b *testing.B) {
			cfg := market.DefaultConfig(2)
			cfg.Lambda = lambda
			var mean float64
			for i := 0; i < b.N; i++ {
				mean = ablationRun(b, cfg, false, 500)
			}
			b.ReportMetric(mean, "mean-resp-ms")
		})
	}
}

// BenchmarkAblationPeriod sweeps the period length T: larger T helps
// static loads, hurts dynamic ones (Section 5.1).
func BenchmarkAblationPeriod(b *testing.B) {
	for _, period := range []int64{125, 500, 2000} {
		period := period
		b.Run(formatInt("periodMs", period), func(b *testing.B) {
			var mean float64
			for i := 0; i < b.N; i++ {
				mean = ablationRun(b, market.DefaultConfig(2), false, period)
			}
			b.ReportMetric(mean, "mean-resp-ms")
		})
	}
}

// BenchmarkAblationSolver compares the greedy-density supply solver
// against the exact DP knapsack.
func BenchmarkAblationSolver(b *testing.B) {
	for _, exact := range []bool{false, true} {
		exact := exact
		name := "greedy-density"
		if exact {
			name = "exact-dp"
		}
		b.Run(name, func(b *testing.B) {
			var mean float64
			for i := 0; i < b.N; i++ {
				mean = ablationRun(b, market.DefaultConfig(2), exact, 500)
			}
			b.ReportMetric(mean, "mean-resp-ms")
		})
	}
}

// BenchmarkAblationThreshold compares always-active pricing against
// the Section 5.1 threshold-activated deployment.
func BenchmarkAblationThreshold(b *testing.B) {
	for _, threshold := range []float64{0, 1.5, 3} {
		threshold := threshold
		b.Run(formatFloat("threshold", threshold), func(b *testing.B) {
			cfg := market.DefaultConfig(2)
			cfg.ActivationThreshold = threshold
			var mean float64
			for i := 0; i < b.N; i++ {
				mean = ablationRun(b, cfg, false, 500)
			}
			b.ReportMetric(mean, "mean-resp-ms")
		})
	}
}

// BenchmarkAblationInformation is the information-structure ablation:
// it runs the real TCP federation's Greedy client with and without
// servers disclosing their queue state (a real autonomous DBMS does
// not). It quantifies how much of Greedy's strength comes from
// information QA-NT never needs.
func BenchmarkAblationInformation(b *testing.B) {
	for _, share := range []bool{false, true} {
		share := share
		name := "queue-private"
		if share {
			name = "queue-shared"
		}
		b.Run(name, func(b *testing.B) {
			var mean float64
			for i := 0; i < b.N; i++ {
				mean = informationRun(b, share)
			}
			b.ReportMetric(mean, "greedy-mean-total-ms")
		})
	}
}

func informationRun(b *testing.B, share bool) float64 {
	b.Helper()
	rng := rand.New(rand.NewSource(13))
	p := cluster.Figure7Params()
	p.Nodes = 3
	p.Tables = 6
	p.Views = 8
	p.RowsPerTable = 80
	p.MinCopies = 2
	p.MaxCopies = 3
	ds, err := cluster.GenerateDataset(p, rng)
	if err != nil {
		b.Fatal(err)
	}
	templates, err := ds.GenerateTemplates(6, 1, rng)
	if err != nil {
		b.Fatal(err)
	}
	addrs := make([]string, p.Nodes)
	slow := []float64{1, 3, 9}
	for i := 0; i < p.Nodes; i++ {
		n, err := cluster.StartNode("127.0.0.1:0", cluster.NodeConfig{
			DB: ds.DBs[i], Slowdown: slow[i], MsPerCostUnit: 0.02,
			PeriodMs: 50, ShareQueueState: share,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer n.Close()
		addrs[i] = n.Addr()
	}
	client, err := cluster.NewClient(cluster.ClientConfig{
		Addrs: addrs, Mechanism: cluster.MechGreedy, PeriodMs: 50,
		Timeout: 5 * time.Second,
	})
	if err != nil {
		b.Fatal(err)
	}
	var total float64
	completed := 0
	for qi := 0; qi < 40; qi++ {
		time.Sleep(5 * time.Millisecond)
		out := client.Run(int64(qi), templates[qi%len(templates)].Instantiate(rng))
		if out.Err != nil {
			continue
		}
		completed++
		total += out.TotalMs
	}
	if completed == 0 {
		b.Fatal("no queries completed")
	}
	return total / float64(completed)
}

// BenchmarkAblationClasses sweeps the Zipf class-universe size: the
// paper notes convergence improves with more classes.
func BenchmarkAblationClasses(b *testing.B) {
	for _, classes := range []int{5, 25, 100} {
		classes := classes
		b.Run(formatInt("classes", int64(classes)), func(b *testing.B) {
			s := benchScale()
			s.Classes = classes
			for i := 0; i < b.N; i++ {
				if _, err := experiments.Figure6(s); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAgentPeriod measures the raw cost of one full market period
// of a 100-class agent (solve eq. 4, trade, settle).
func BenchmarkAgentPeriod(b *testing.B) {
	const k = 100
	cost := make([]float64, k)
	rng := rand.New(rand.NewSource(5))
	for i := range cost {
		cost[i] = 100 + rng.Float64()*1900
	}
	agent, err := market.NewAgent(economics.TimeBudgetSupplySet{Cost: cost, Budget: 500}, market.DefaultConfig(k))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agent.BeginPeriod()
		for c := 0; c < 16; c++ {
			if agent.Offer(c % k) {
				if err := agent.Accept(c % k); err != nil {
					b.Fatal(err)
				}
			}
		}
		agent.EndPeriod()
	}
}

// BenchmarkSupplySolvers measures the two eq.-(4) solvers head-to-head.
func BenchmarkSupplySolvers(b *testing.B) {
	const k = 100
	cost := make([]float64, k)
	rng := rand.New(rand.NewSource(6))
	for i := range cost {
		cost[i] = 50 + rng.Float64()*950
	}
	prices := vector.NewPrices(k, 1)
	for i := range prices {
		prices[i] = 0.5 + rng.Float64()*2
	}
	b.Run("greedy-density", func(b *testing.B) {
		set := economics.TimeBudgetSupplySet{Cost: cost, Budget: 500}
		for i := 0; i < b.N; i++ {
			set.BestResponse(prices)
		}
	})
	b.Run("exact-dp", func(b *testing.B) {
		set := market.ExactTimeBudgetSupplySet{Cost: cost, Budget: 500, Granularity: 1}
		for i := 0; i < b.N; i++ {
			set.BestResponse(prices)
		}
	})
}

// --- Hot-path micro-benchmarks (the BENCH_qamarket.json trajectory) ---

// BenchmarkDesimEngine schedules and fires 100k one-shot events plus a
// rolling tick per iteration. The Engine persists across iterations so
// the steady-state allocs/op reflects the event-item free list, not
// first-use growth.
func BenchmarkDesimEngine(b *testing.B) {
	const events = 100_000
	var e desim.Engine
	fired := 0
	cb := func(desim.Time) { fired++ }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := e.Now()
		for j := 0; j < events; j++ {
			// Mostly-ascending with periodic out-of-order inserts, like
			// arrival streams interleaved with completion events.
			at := desim.Time(j)
			if j%16 == 0 {
				at = desim.Time(j / 2)
			}
			e.At(start+at, cb)
		}
		ticks := 0
		e.Every(10, func(desim.Time) bool {
			ticks++
			return ticks < events/10
		})
		e.Run()
	}
	if fired < events {
		b.Fatalf("fired %d < %d", fired, events)
	}
}

// BenchmarkSimDispatch drives a full allocation round trip — arrival,
// Assign over the feasibility index, queueing, completion — for one
// overloaded two-class stream per iteration, one sub-bench per
// mechanism. The fixture (catalog, templates, arrivals) stays outside
// the timer; mechanism and Federation are rebuilt each iteration.
func BenchmarkSimDispatch(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	p := catalog.Table3()
	p.Nodes = 16
	p.Relations = 40
	p.HashJoinNodes = 15
	cat, err := catalog.Generate(p, rng)
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range cat.Nodes {
		n.Holds[0] = true
		delete(n.Holds, 1)
	}
	for _, n := range cat.Nodes[:8] {
		n.Holds[1] = true
	}
	ts := []costmodel.Template{
		{Class: 0, Relations: []int{0}, Selectivity: 1, Sort: true},
		{Class: 1, Relations: []int{1}, Selectivity: 1, Sort: true},
	}
	model := costmodel.New(cat)
	for i, target := range []float64{1000, 500} {
		best, _ := model.EstimateBest(ts[i])
		ts[i].CostScale = target / best
	}
	capacity := sim.EstimateCapacity(cat, ts, []float64{2, 1})
	peak := 1.5 * capacity * 3.1416
	s1 := workload.Sinusoid{Class: 0, Origin: -1, OriginCount: 16, Freq: 0.05,
		PeakRate: peak * 2 / 3, Duration: 20000}
	s2 := workload.Sinusoid{Class: 1, Origin: -1, OriginCount: 16, Freq: 0.05,
		PeakRate: peak / 3, PhaseDeg: 900, Duration: 20000}
	arrivals := append(s1.Generate(rng), s2.Generate(rng)...)
	workload.Sort(arrivals)

	mechs := []struct {
		name string
		make func() alloc.Mechanism
	}{
		{"bnqrd", func() alloc.Mechanism { return alloc.NewBNQRD() }},
		{"greedy", func() alloc.Mechanism { return alloc.NewGreedy(nil, 0) }},
		{"qa-nt", func() alloc.Mechanism { return alloc.NewQANT(market.DefaultConfig(2)) }},
		{"random", func() alloc.Mechanism { return alloc.NewRandom(rand.New(rand.NewSource(11))) }},
	}
	for _, m := range mechs {
		m := m
		b.Run(m.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				fed, err := sim.New(sim.Config{Catalog: cat, Templates: ts, PeriodMs: 500}, m.make())
				if err != nil {
					b.Fatal(err)
				}
				if _, err := fed.Run(arrivals); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExactSolver measures one eq.-(4) DP supply solve (100
// classes, 2,000 ms budget at 1 ms granularity) with and without the
// reusable DPScratch the simulator threads through repeated periods.
func BenchmarkExactSolver(b *testing.B) {
	const k = 100
	cost := make([]float64, k)
	rng := rand.New(rand.NewSource(8))
	for i := range cost {
		cost[i] = 50 + rng.Float64()*950
	}
	prices := vector.NewPrices(k, 1)
	for i := range prices {
		prices[i] = 0.5 + rng.Float64()*2
	}
	b.Run("alloc-per-call", func(b *testing.B) {
		set := market.ExactTimeBudgetSupplySet{Cost: cost, Budget: 2000, Granularity: 1}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			set.BestResponse(prices)
		}
	})
	b.Run("scratch", func(b *testing.B) {
		set := market.ExactTimeBudgetSupplySet{Cost: cost, Budget: 2000, Granularity: 1,
			Scratch: &market.DPScratch{}}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			set.BestResponse(prices)
		}
	})
}

func formatFloat(prefix string, v float64) string {
	return prefix + "=" + strconv.FormatFloat(v, 'g', -1, 64)
}

func formatInt(prefix string, v int64) string {
	return prefix + "=" + strconv.FormatInt(v, 10)
}

// BenchmarkTraceOverhead guards the cost of the query-lifecycle
// tracing hot path: one start/annotate/finish span cycle per
// iteration, with the recorder disabled (nil — what untraced queries
// pay) and enabled (ring-buffer write). The deterministic allocation
// budget lives in internal/trace's tests; this keeps the ns/op in the
// tracked benchmark trajectory.
func BenchmarkTraceOverhead(b *testing.B) {
	b.Run("off", func(b *testing.B) {
		var r *trace.Recorder
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sp := r.Start(int64(i), "", "exec")
			sp.Annotate("rows=%d", i)
			sp.Finish()
		}
	})
	b.Run("on", func(b *testing.B) {
		r := trace.NewRecorder("bench", trace.DefaultCapacity, time.Now)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sp := r.Start(int64(i), "", "exec")
			sp.Annotate("rows=%d", i)
			sp.Finish()
		}
	})
}
