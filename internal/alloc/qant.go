package alloc

import (
	"fmt"
	"math"

	"github.com/qamarket/qamarket/internal/economics"
	"github.com/qamarket/qamarket/internal/market"
)

// QANT adapts the market.Agent to the simulator's Mechanism interface,
// realizing the full decentralized protocol of Section 3.3:
//
//   - every node runs a private QA-NT agent whose supply set is its time
//     budget over the period T and its per-class execution costs;
//   - when a query arrives, the client asks every capable server; a
//     server offers iff its remaining supply admits the class (agents
//     whose supply is exhausted refuse and raise their private price);
//   - the client takes the best offer (earliest estimated completion,
//     as a distributed query optimizer would) and declines the rest;
//   - a query refused by all servers is resubmitted in the next period;
//   - at period boundaries agents cut prices of unsold supply and
//     re-solve eq. (4).
//
// QA-NT is the only mechanism here that respects node autonomy: servers
// decide for themselves what to offer, and prices never leave the node.
type QANT struct {
	cfg    market.Config
	agents []*market.Agent
	// Exact selects the exact DP supply solver instead of the greedy
	// density heuristic (DESIGN.md solver ablation).
	Exact bool
	// Adopters, when non-nil, marks which nodes run QA-NT agents.
	// Non-adopting nodes behave like ordinary servers that accept any
	// feasible query — Section 4 claims the mechanism still optimizes
	// global throughput by modifying only the adopters' behaviour, and
	// the partial-adoption experiment verifies it.
	Adopters map[int]bool

	// Rolling capacity accounting. A node's period budget is T plus the
	// carry from previous periods: unused capacity is saved (up to
	// carryCap) so queries costing more than one period can still be
	// supplied, and oversized accepted work puts the node in debt so it
	// does not oversell while its queue drains. Without this, a class
	// whose execution cost exceeds T could never appear in any supply
	// vector even on an idle federation.
	costs    [][]float64
	carry    []float64
	carryCap []float64

	// scratch holds the exact solver's reusable DP buffers; agents run
	// strictly sequentially within one mechanism, so one set suffices.
	scratch *market.DPScratch

	// offered is Assign's reusable buffer of nodes that offered in the
	// current negotiation round.
	offered []int

	// started guards lazy initialization from the first view.
	started bool
}

// NewQANT builds the mechanism; agents are created lazily on the first
// period callback, when the view reveals the federation's size, class
// universe and per-node costs. cfg.Classes is overwritten from the view.
func NewQANT(cfg market.Config) *QANT { return &QANT{cfg: cfg} }

// Name implements Mechanism.
func (m *QANT) Name() string { return "qa-nt" }

// Traits implements Mechanism (Table 2 row "QA-NT").
func (m *QANT) Traits() Traits {
	return Traits{
		Distributed:           true,
		WorkloadType:          "Dynamic",
		ConflictsWithQueryOpt: false,
		RespectsAutonomy:      true,
		Performance:           "Very Good",
	}
}

// Agents exposes the per-node agents for observability (price traces in
// the examples and experiments). It returns nil before the first period.
func (m *QANT) Agents() []*market.Agent { return m.agents }

// OnPeriodStart implements Periodic: refresh every node's budget from
// the carry account and re-solve eq. (4).
func (m *QANT) OnPeriodStart(v View) {
	if !m.started {
		m.init(v)
	}
	for n, a := range m.agents {
		if a == nil {
			continue
		}
		if err := a.SetSupplySet(m.supplySet(n, float64(v.PeriodMs())+m.carry[n])); err != nil {
			panic(fmt.Sprintf("alloc: QA-NT supply set: %v", err))
		}
		a.BeginPeriod()
	}
}

// OnPeriodEnd implements Periodic: settle the capacity account and cut
// prices of unsold supply.
func (m *QANT) OnPeriodEnd(v View) {
	if !m.started {
		return
	}
	period := float64(v.PeriodMs())
	for n, a := range m.agents {
		if a == nil {
			continue
		}
		used := 0.0
		for c, cnt := range a.Accepted() {
			if cnt > 0 {
				used += float64(cnt) * m.costs[n][c]
			}
		}
		m.carry[n] += period - used
		if m.carry[n] > m.carryCap[n] {
			m.carry[n] = m.carryCap[n]
		}
		a.EndPeriod()
	}
}

// supplySet builds the node's supply set for the given budget.
func (m *QANT) supplySet(node int, budget float64) economics.SupplySet {
	if budget < 0 {
		budget = 0
	}
	if m.Exact {
		if m.scratch == nil {
			m.scratch = &market.DPScratch{}
		}
		return market.ExactTimeBudgetSupplySet{
			Cost:        m.costs[node],
			Budget:      budget,
			Granularity: 10,
			Scratch:     m.scratch,
		}
	}
	return economics.TimeBudgetSupplySet{Cost: m.costs[node], Budget: budget}
}

func (m *QANT) init(v View) {
	k := v.NumClasses()
	period := float64(v.PeriodMs())
	m.cfg.Classes = k
	m.agents = make([]*market.Agent, v.NumNodes())
	m.costs = make([][]float64, v.NumNodes())
	m.carry = make([]float64, v.NumNodes())
	m.carryCap = make([]float64, v.NumNodes())
	for n := range m.agents {
		if m.Adopters != nil && !m.Adopters[n] {
			continue // ordinary server: no agent, accepts anything feasible
		}
		cost := make([]float64, k)
		maxCost := 0.0
		for c := 0; c < k; c++ {
			if ec := v.Cost(n, c); !math.IsInf(ec, 1) {
				cost[c] = ec
				if ec > maxCost {
					maxCost = ec
				}
			}
		}
		m.costs[n] = cost
		// Allow saving enough capacity to supply the node's most
		// expensive class at least once, but never less than one period.
		m.carryCap[n] = math.Max(period, maxCost)
		agent, err := market.NewAgent(m.supplySet(n, period), m.cfg)
		if err != nil {
			panic(fmt.Sprintf("alloc: building QA-NT agent: %v", err))
		}
		m.agents[n] = agent
	}
	m.started = true
}

// Assign implements Mechanism: the client-side negotiation round.
func (m *QANT) Assign(q Query, v View) Decision {
	if !m.started {
		m.init(v)
		for _, a := range m.agents {
			// Non-adopting nodes have no agent; only adopters run the
			// market cycle.
			if a != nil {
				a.BeginPeriod()
			}
		}
	}
	bestNode := -1
	best := math.Inf(1)
	offered := m.offered[:0]
	for _, n := range v.FeasibleNodes(q.Class) {
		// The server decides autonomously whether to offer; a refusal
		// already moved its private price (the trading-failure signal).
		// Non-adopting nodes (nil agent) behave like ordinary servers
		// and always offer.
		if m.agents[n] != nil && !m.agents[n].Offer(q.Class) {
			continue
		}
		offered = append(offered, n)
		if f := estimatedFinish(v, n, q.Class); f < best {
			best, bestNode = f, n
		}
	}
	m.offered = offered
	if bestNode < 0 {
		// No server offered: resubmit in the next time period (step 4 of
		// the client protocol in Section 3.3).
		return Decision{Retry: true}
	}
	for _, n := range offered {
		if m.agents[n] == nil {
			continue
		}
		if n == bestNode {
			if err := m.agents[n].Accept(q.Class); err != nil {
				// The agent offered above, so acceptance cannot fail
				// unless the protocol is misused; surface loudly.
				panic(fmt.Sprintf("alloc: QA-NT accept: %v", err))
			}
		} else {
			m.agents[n].Decline(q.Class)
		}
	}
	return Decision{Node: bestNode}
}
