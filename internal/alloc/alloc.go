// Package alloc implements every query allocation mechanism compared in
// the paper (Section 4, Table 2): the microeconomic QA-NT mechanism and
// the Greedy, Random, Round-Robin, BNQRD and Two-Random-Probes
// baselines, plus the static Markov-style reference of [4].
//
// Mechanisms are driven by the federation simulator (internal/sim)
// through the View interface, which exposes exactly the information each
// algorithm is entitled to; autonomy-violating mechanisms (Greedy,
// BNQRD, Markov) read node internals directly, while QA-NT only ever
// interacts through per-node offers.
package alloc

import "math"

// Query is one query instance to allocate.
type Query struct {
	ID        int64
	Class     int
	Origin    int   // node where the request originated
	Arrival   int64 // ms, first time the query entered the system
	Resubmits int   // times the query was deferred to a later period
}

// View is the window a mechanism gets into the federation.
type View interface {
	// Now is the current virtual time in milliseconds.
	Now() int64
	// NumNodes is I, the federation size.
	NumNodes() int
	// NumClasses is K, the query-class universe size.
	NumClasses() int
	// Feasible reports whether node can evaluate class at all (it holds
	// the data).
	Feasible(node, class int) bool
	// FeasibleNodes returns the nodes able to evaluate class, in
	// ascending order — the per-class feasibility index. Mechanisms
	// iterate it on the hot path instead of scanning every node.
	// Callers must not mutate the returned slice.
	FeasibleNodes(class int) []int
	// Cost is the estimated execution time of one class query on node,
	// in ms (the simulator's EXPLAIN); +Inf when infeasible.
	Cost(node, class int) float64
	// Backlog is the node's currently queued plus running work in ms.
	Backlog(node int) float64
	// PeriodMs is the allocation period length T.
	PeriodMs() int64
}

// Decision is a mechanism's verdict for one query.
type Decision struct {
	// Node is the executing node, meaningful when Retry is false.
	Node int
	// Retry defers the query to the next time period (QA-NT resubmits
	// queries that no server offered to evaluate).
	Retry bool
}

// Mechanism allocates queries to nodes.
type Mechanism interface {
	Name() string
	Traits() Traits
	// Assign decides where to run q. Mechanisms must be deterministic
	// given their own RNG state and the view.
	Assign(q Query, v View) Decision
}

// Periodic is implemented by mechanisms that react to the period clock
// (QA-NT runs its market cycle on it).
type Periodic interface {
	OnPeriodStart(v View)
	OnPeriodEnd(v View)
}

// Traits reproduces the qualitative comparison columns of Table 2.
type Traits struct {
	Distributed           bool
	WorkloadType          string // "Dynamic" or "Static"
	ConflictsWithQueryOpt bool   // physically pins queries, fighting distributed query optimizers
	RespectsAutonomy      bool
	Performance           string // the paper's verdict
}

// estimatedFinish is the completion-time estimate both Greedy and the
// QA-NT client use to rank candidate servers: current backlog plus the
// query's estimated execution cost.
func estimatedFinish(v View, node, class int) float64 {
	c := v.Cost(node, class)
	if math.IsInf(c, 1) {
		return c
	}
	return v.Backlog(node) + c
}

// ScanFeasible returns the ascending indices in [0, n) satisfying
// feasible. It is the one feasibility scan in the repo: ScanFeasibleNodes
// delegates to it, the simulator builds its per-class index with it, and
// the live client's shard probe filters its CFP fan-out through it.
func ScanFeasible(n int, feasible func(int) bool) []int {
	var out []int
	for i := 0; i < n; i++ {
		if feasible(i) {
			out = append(out, i)
		}
	}
	return out
}

// ScanFeasibleNodes builds the ascending feasible-node list for class by
// scanning every node. View implementations without a precomputed index
// can delegate their FeasibleNodes to it.
func ScanFeasibleNodes(v View, class int) []int {
	return ScanFeasible(v.NumNodes(), func(n int) bool { return v.Feasible(n, class) })
}
