package alloc

import "math"

// Markov is the static reference mechanism of Drenick and Smith [4]
// (Section 4): a centralized stochastic optimizer that, given *known and
// constant* per-class arrival rates, precomputes a static routing of
// classes to nodes and then follows it. The paper excluded it from the
// simulator because it cannot handle dynamic workloads; we include it
// for the static-workload ablation bench, where it is the "Excellent"
// row of Table 2.
//
// The routing is computed by greedy water-filling: each class's arrival
// rate is split in small quanta, each quantum routed to the feasible
// node whose utilization after accepting it is lowest (utilization
// counts cost·rate). For a static load this minimizes the maximum node
// utilization, which maximizes sustainable throughput. At run time the
// realized assignment tracks the target shares with largest-deficit
// ("stride") selection, so the empirical split converges to the target.
type Markov struct {
	// Rates are the known per-class arrival rates in queries/second.
	Rates []float64

	share   [][]float64 // [class][node] target fraction
	sent    [][]float64 // realized counts
	classes int
	ready   bool
}

// NewMarkov builds the mechanism from the externally provided (and
// autonomy-violating) knowledge of the workload's class arrival rates.
func NewMarkov(rates []float64) *Markov {
	return &Markov{Rates: rates}
}

// Name implements Mechanism.
func (m *Markov) Name() string { return "markov" }

// Traits implements Mechanism (Table 2 row "Markov").
func (m *Markov) Traits() Traits {
	return Traits{
		Distributed:           false,
		WorkloadType:          "Static",
		ConflictsWithQueryOpt: true,
		RespectsAutonomy:      false,
		Performance:           "Excellent",
	}
}

// rateQuanta controls the granularity of the water-filling split.
const rateQuanta = 100

func (m *Markov) init(v View) {
	k := v.NumClasses()
	n := v.NumNodes()
	m.classes = k
	m.share = make([][]float64, k)
	m.sent = make([][]float64, k)
	util := make([]float64, n)
	for c := 0; c < k; c++ {
		m.share[c] = make([]float64, n)
		m.sent[c] = make([]float64, n)
		rate := 0.0
		if c < len(m.Rates) {
			rate = m.Rates[c]
		}
		if rate <= 0 {
			continue
		}
		quantum := rate / rateQuanta
		for q := 0; q < rateQuanta; q++ {
			bestNode, best := -1, math.Inf(1)
			for _, node := range v.FeasibleNodes(c) {
				if u := util[node] + quantum*v.Cost(node, c); u < best {
					best, bestNode = u, node
				}
			}
			if bestNode < 0 {
				break
			}
			util[bestNode] += quantum * v.Cost(bestNode, c)
			m.share[c][bestNode] += 1.0 / rateQuanta
		}
	}
	m.ready = true
}

// Assign implements Mechanism with largest-deficit tracking of the
// precomputed shares.
func (m *Markov) Assign(q Query, v View) Decision {
	if !m.ready {
		m.init(v)
	}
	if q.Class >= m.classes {
		return Decision{Retry: true}
	}
	shares := m.share[q.Class]
	sent := m.sent[q.Class]
	total := 0.0
	for _, s := range sent {
		total += s
	}
	bestNode, bestDeficit := -1, math.Inf(-1)
	for node := range shares {
		if shares[node] <= 0 || !v.Feasible(node, q.Class) {
			continue
		}
		deficit := shares[node]*(total+1) - sent[node]
		if deficit > bestDeficit {
			bestDeficit, bestNode = deficit, node
		}
	}
	if bestNode < 0 {
		// No share computed (zero known rate): fall back to the cheapest
		// feasible node.
		best := math.Inf(1)
		for _, node := range v.FeasibleNodes(q.Class) {
			if c := v.Cost(node, q.Class); c < best {
				best, bestNode = c, node
			}
		}
		if bestNode < 0 {
			return Decision{Retry: true}
		}
	}
	m.sent[q.Class][bestNode]++
	return Decision{Node: bestNode}
}
