package alloc

import (
	"math"
	"math/rand"
)

// Greedy immediately assigns each query to the node expected to finish
// it earliest (backlog + estimated cost). Section 4 notes it is easy to
// implement and performs surprisingly well, but violates server
// administrative autonomy: the client unilaterally picks the server.
// An optional randomization fraction perturbs the choice among nodes
// whose estimates are within the fraction of the best, which the paper
// mentions as a common practical tweak.
type Greedy struct {
	rng *rand.Rand
	// RandomFrac in [0,1): candidates within (1+RandomFrac)·best are
	// drawn uniformly. Zero keeps the pure deterministic greedy.
	RandomFrac float64
}

// NewGreedy builds a Greedy allocator. rng may be nil when RandomFrac
// is zero.
func NewGreedy(rng *rand.Rand, randomFrac float64) *Greedy {
	return &Greedy{rng: rng, RandomFrac: randomFrac}
}

// Name implements Mechanism.
func (g *Greedy) Name() string { return "greedy" }

// Traits implements Mechanism (Table 2 row "Greedy").
func (g *Greedy) Traits() Traits {
	return Traits{
		Distributed:           true,
		WorkloadType:          "Dynamic",
		ConflictsWithQueryOpt: true,
		RespectsAutonomy:      false,
		Performance:           "Very Good",
	}
}

// Assign implements Mechanism.
func (g *Greedy) Assign(q Query, v View) Decision {
	best := math.Inf(1)
	bestNode := -1
	nodes := v.FeasibleNodes(q.Class)
	for _, n := range nodes {
		if f := estimatedFinish(v, n, q.Class); f < best {
			best, bestNode = f, n
		}
	}
	if bestNode < 0 {
		return Decision{Retry: true}
	}
	if g.RandomFrac > 0 && g.rng != nil {
		var cands []int
		limit := best * (1 + g.RandomFrac)
		for _, n := range nodes {
			if estimatedFinish(v, n, q.Class) <= limit {
				cands = append(cands, n)
			}
		}
		if len(cands) > 0 {
			bestNode = cands[g.rng.Intn(len(cands))]
		}
	}
	return Decision{Node: bestNode}
}
