package alloc

import "math/rand"

// Random implements the commercial-cluster client-level strategy of
// Section 4: each query goes to a uniformly random capable server. It
// balances load in homogeneous systems but, as the experiments show,
// performs poorly when nodes have different capacities.
type Random struct{ rng *rand.Rand }

// NewRandom builds a Random allocator over the given RNG.
func NewRandom(rng *rand.Rand) *Random { return &Random{rng: rng} }

// Name implements Mechanism.
func (r *Random) Name() string { return "random" }

// Traits implements Mechanism (Table 2 row "Random").
func (r *Random) Traits() Traits {
	return Traits{
		Distributed:           true,
		WorkloadType:          "Dynamic",
		ConflictsWithQueryOpt: true,
		RespectsAutonomy:      true,
		Performance:           "Poor",
	}
}

// Assign implements Mechanism.
func (r *Random) Assign(q Query, v View) Decision {
	nodes := v.FeasibleNodes(q.Class)
	if len(nodes) == 0 {
		return Decision{Retry: true}
	}
	return Decision{Node: nodes[r.rng.Intn(len(nodes))]}
}

// RoundRobin cycles through capable servers per class, the other
// client-level strategy of the commercial cluster solution in Section 4.
type RoundRobin struct {
	next map[int]int // per-class cursor
}

// NewRoundRobin builds a RoundRobin allocator.
func NewRoundRobin() *RoundRobin { return &RoundRobin{next: make(map[int]int)} }

// Name implements Mechanism.
func (r *RoundRobin) Name() string { return "round-robin" }

// Traits implements Mechanism (Table 2 row "Round-robin").
func (r *RoundRobin) Traits() Traits {
	return Traits{
		Distributed:           true,
		WorkloadType:          "Dynamic",
		ConflictsWithQueryOpt: true,
		RespectsAutonomy:      true,
		Performance:           "Poor",
	}
}

// Assign implements Mechanism.
func (r *RoundRobin) Assign(q Query, v View) Decision {
	nodes := v.FeasibleNodes(q.Class)
	if len(nodes) == 0 {
		return Decision{Retry: true}
	}
	i := r.next[q.Class] % len(nodes)
	r.next[q.Class] = i + 1
	return Decision{Node: nodes[i]}
}

// TwoRandomProbes implements Mitzenmacher's two-choices technique [10]
// discussed in Section 4: probe two random capable servers and pick the
// one with the smaller current load. Very few messages, better than
// round-robin, but still far from optimal in heterogeneous federations.
type TwoRandomProbes struct{ rng *rand.Rand }

// NewTwoRandomProbes builds the allocator over the given RNG.
func NewTwoRandomProbes(rng *rand.Rand) *TwoRandomProbes {
	return &TwoRandomProbes{rng: rng}
}

// Name implements Mechanism.
func (t *TwoRandomProbes) Name() string { return "two-random-probes" }

// Traits implements Mechanism.
func (t *TwoRandomProbes) Traits() Traits {
	return Traits{
		Distributed:           true,
		WorkloadType:          "Dynamic",
		ConflictsWithQueryOpt: true,
		RespectsAutonomy:      true,
		Performance:           "Poor",
	}
}

// Assign implements Mechanism.
func (t *TwoRandomProbes) Assign(q Query, v View) Decision {
	nodes := v.FeasibleNodes(q.Class)
	if len(nodes) == 0 {
		return Decision{Retry: true}
	}
	a := nodes[t.rng.Intn(len(nodes))]
	b := nodes[t.rng.Intn(len(nodes))]
	if v.Backlog(b) < v.Backlog(a) {
		return Decision{Node: b}
	}
	return Decision{Node: a}
}
