package alloc

import (
	"math"
	"math/rand"
	"testing"

	"github.com/qamarket/qamarket/internal/market"
)

// fakeView is a hand-built federation snapshot for mechanism tests.
type fakeView struct {
	now     int64
	cost    [][]float64 // [node][class]; +Inf = infeasible
	backlog []float64
	period  int64
}

func (v *fakeView) Now() int64             { return v.now }
func (v *fakeView) NumNodes() int          { return len(v.cost) }
func (v *fakeView) NumClasses() int        { return len(v.cost[0]) }
func (v *fakeView) Feasible(n, c int) bool { return !math.IsInf(v.cost[n][c], 1) }
func (v *fakeView) Cost(n, c int) float64  { return v.cost[n][c] }
func (v *fakeView) Backlog(n int) float64  { return v.backlog[n] }
func (v *fakeView) PeriodMs() int64        { return v.period }
func (v *fakeView) FeasibleNodes(c int) []int {
	return ScanFeasibleNodes(v, c)
}

var inf = math.Inf(1)

// figure1View is the two-node system of the paper's motivating example.
func figure1View() *fakeView {
	return &fakeView{
		cost:    [][]float64{{400, 100}, {450, 500}},
		backlog: []float64{0, 0},
		period:  500,
	}
}

func TestGreedyPicksFastestFinish(t *testing.T) {
	v := figure1View()
	g := NewGreedy(nil, 0)
	d := g.Assign(Query{Class: 0}, v)
	if d.Retry || d.Node != 0 {
		t.Errorf("q1 on idle system should go to N1 (400ms): %+v", d)
	}
	v.backlog[0] = 100 // N1 now finishes at 500, N2 at 450
	d = g.Assign(Query{Class: 0}, v)
	if d.Node != 1 {
		t.Errorf("q1 with N1 backlog should go to N2: %+v", d)
	}
}

func TestGreedyRetriesWhenNooneCan(t *testing.T) {
	v := &fakeView{cost: [][]float64{{inf}, {inf}}, backlog: []float64{0, 0}, period: 500}
	if d := NewGreedy(nil, 0).Assign(Query{Class: 0}, v); !d.Retry {
		t.Errorf("expected retry, got %+v", d)
	}
}

func TestGreedyRandomizedStaysNearBest(t *testing.T) {
	v := &fakeView{
		cost:    [][]float64{{100}, {105}, {2000}},
		backlog: []float64{0, 0, 0},
		period:  500,
	}
	g := NewGreedy(rand.New(rand.NewSource(4)), 0.1)
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		d := g.Assign(Query{Class: 0}, v)
		seen[d.Node] = true
		if d.Node == 2 {
			t.Fatal("randomized greedy chose a node 20x the best")
		}
	}
	if !seen[0] || !seen[1] {
		t.Errorf("randomization never explored near-ties: %v", seen)
	}
}

func TestRandomUniformOverFeasible(t *testing.T) {
	v := &fakeView{
		cost:    [][]float64{{100}, {inf}, {300}},
		backlog: []float64{0, 0, 0},
		period:  500,
	}
	r := NewRandom(rand.New(rand.NewSource(5)))
	counts := map[int]int{}
	for i := 0; i < 3000; i++ {
		d := r.Assign(Query{Class: 0}, v)
		if d.Retry {
			t.Fatal("unexpected retry")
		}
		counts[d.Node]++
	}
	if counts[1] != 0 {
		t.Error("random chose infeasible node")
	}
	if counts[0] < 1200 || counts[2] < 1200 {
		t.Errorf("split not uniform: %v", counts)
	}
}

func TestRoundRobinCycles(t *testing.T) {
	v := &fakeView{
		cost:    [][]float64{{100}, {100}, {inf}},
		backlog: []float64{0, 0, 0},
		period:  500,
	}
	rr := NewRoundRobin()
	var got []int
	for i := 0; i < 4; i++ {
		got = append(got, rr.Assign(Query{Class: 0}, v).Node)
	}
	want := []int{0, 1, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("round robin sequence %v, want %v", got, want)
		}
	}
}

func TestRoundRobinPerClassCursors(t *testing.T) {
	v := &fakeView{
		cost:    [][]float64{{100, 100}, {100, 100}},
		backlog: []float64{0, 0},
		period:  500,
	}
	rr := NewRoundRobin()
	a := rr.Assign(Query{Class: 0}, v).Node
	b := rr.Assign(Query{Class: 1}, v).Node
	if a != 0 || b != 0 {
		t.Errorf("classes should cycle independently: got %d, %d", a, b)
	}
}

func TestBNQRDReproducesFigure1(t *testing.T) {
	// Replay the motivating example: 2×q1 then 6×q2 arrive; the LB
	// algorithm ends with N1 busy 900 ms and N2 busy 950 ms.
	v := figure1View()
	lb := NewBNQRD()
	add := func(class int) {
		d := lb.Assign(Query{Class: class}, v)
		if d.Retry {
			t.Fatal("unexpected retry")
		}
		v.backlog[d.Node] += v.cost[d.Node][class]
	}
	add(0) // q1 #1
	add(0) // q1 #2
	for i := 0; i < 6; i++ {
		add(1)
	}
	if v.backlog[0] != 900 || v.backlog[1] != 950 {
		t.Errorf("backlogs (%g, %g), want (900, 950) per Figure 1", v.backlog[0], v.backlog[1])
	}
}

func TestTwoRandomProbesPicksLighter(t *testing.T) {
	v := &fakeView{
		cost:    [][]float64{{100}, {100}},
		backlog: []float64{1000, 0},
		period:  500,
	}
	p := NewTwoRandomProbes(rand.New(rand.NewSource(7)))
	wins := map[int]int{}
	for i := 0; i < 400; i++ {
		wins[p.Assign(Query{Class: 0}, v).Node]++
	}
	// Node 1 wins every mixed probe (~half the trials) plus its own
	// double-probes (~quarter): expect clearly more than node 0.
	if wins[1] <= wins[0] {
		t.Errorf("lighter node not preferred: %v", wins)
	}
}

func TestQANTOffersThenBalances(t *testing.T) {
	v := figure1View()
	m := NewQANT(market.DefaultConfig(2))
	m.OnPeriodStart(v)
	// Both nodes can serve q2? N2's q2 costs 500 = its whole budget;
	// N1 plans 5×q2. First q2 must land somewhere.
	d := m.Assign(Query{Class: 1}, v)
	if d.Retry {
		t.Fatal("q2 refused on an idle market")
	}
	// Drain N1's q2 supply; eventually q2 requests get refused and
	// resubmitted.
	refused := false
	for i := 0; i < 20; i++ {
		d := m.Assign(Query{Class: 1}, v)
		if d.Retry {
			refused = true
			break
		}
	}
	if !refused {
		t.Error("q2 never refused despite exhausting all supply")
	}
}

func TestQANTPeriodLifecycle(t *testing.T) {
	v := figure1View()
	m := NewQANT(market.DefaultConfig(2))
	m.OnPeriodStart(v)
	if m.Agents() == nil {
		t.Fatal("agents not initialized")
	}
	p0 := m.Agents()[0].Prices()
	// End the period with unsold supply: prices must drop.
	m.OnPeriodEnd(v)
	m.OnPeriodStart(v)
	p1 := m.Agents()[0].Prices()
	if !(p1[1] < p0[1]) {
		t.Errorf("unsold q2 price did not drop: %v -> %v", p0, p1)
	}
}

func TestQANTCarryAllowsExpensiveClasses(t *testing.T) {
	// One node, one class costing 3 periods. With carry accounting the
	// node must eventually supply it.
	v := &fakeView{cost: [][]float64{{1500}}, backlog: []float64{0}, period: 500}
	m := NewQANT(market.DefaultConfig(1))
	m.OnPeriodStart(v)
	assigned := false
	for period := 0; period < 10 && !assigned; period++ {
		d := m.Assign(Query{Class: 0}, v)
		if !d.Retry {
			assigned = true
			break
		}
		m.OnPeriodEnd(v)
		m.OnPeriodStart(v)
	}
	if !assigned {
		t.Fatal("class costing 3 periods never supplied despite idle node")
	}
}

func TestQANTDebtThrottlesOversell(t *testing.T) {
	// After accepting a 1500 ms query in a 500 ms period, the node is in
	// debt and must not offer again for at least two further periods.
	v := &fakeView{cost: [][]float64{{1500}}, backlog: []float64{0}, period: 500}
	m := NewQANT(market.DefaultConfig(1))
	m.OnPeriodStart(v)
	// Accumulate budget, then accept one query.
	var accepted int
	for period := 0; period < 12; period++ {
		d := m.Assign(Query{Class: 0}, v)
		if !d.Retry {
			accepted++
		}
		m.OnPeriodEnd(v)
		m.OnPeriodStart(v)
	}
	// Sustainable rate is one query per 3 periods: over 12 periods at
	// most 4-5 accepts (allowing boundary effects), never ~12.
	if accepted > 5 {
		t.Errorf("accepted %d expensive queries in 12 periods; oversell", accepted)
	}
	if accepted == 0 {
		t.Error("no queries accepted at all")
	}
}

func TestQANTPartialAdoptionFirstDispatchBeforePeriod(t *testing.T) {
	// Regression: with Adopters set, non-adopting nodes have no agent.
	// The lazy-init path taken when the first query arrives before any
	// period callback used to call BeginPeriod on the nil agents and
	// panic.
	v := figure1View()
	m := NewQANT(market.DefaultConfig(2))
	m.Adopters = map[int]bool{0: true} // node 1 is an ordinary server
	d := m.Assign(Query{Class: 0}, v)
	if d.Retry {
		t.Fatal("first query refused on an idle partially-adopted market")
	}
	if d.Node != 0 && d.Node != 1 {
		t.Fatalf("invalid node %d", d.Node)
	}
	// The non-adopting node keeps accepting whatever is feasible.
	for i := 0; i < 5; i++ {
		if d := m.Assign(Query{Class: 0}, v); !d.Retry && d.Node == 1 {
			return
		}
	}
}

func TestMarkovStaticSplit(t *testing.T) {
	// Node 0 is twice as fast for the class; under a static load the
	// Markov reference should send it roughly twice the queries.
	v := &fakeView{
		cost:    [][]float64{{100}, {200}},
		backlog: []float64{0, 0},
		period:  500,
	}
	m := NewMarkov([]float64{10})
	counts := map[int]int{}
	for i := 0; i < 300; i++ {
		d := m.Assign(Query{Class: 0}, v)
		if d.Retry {
			t.Fatal("unexpected retry")
		}
		counts[d.Node]++
	}
	ratio := float64(counts[0]) / float64(counts[1])
	if ratio < 1.5 || ratio > 2.5 {
		t.Errorf("fast/slow split %.2f, want ~2 (counts %v)", ratio, counts)
	}
}

func TestMarkovFallbackWithoutRates(t *testing.T) {
	v := &fakeView{
		cost:    [][]float64{{300}, {100}},
		backlog: []float64{0, 0},
		period:  500,
	}
	m := NewMarkov(nil)
	d := m.Assign(Query{Class: 0}, v)
	if d.Retry || d.Node != 1 {
		t.Errorf("fallback should pick the cheapest node: %+v", d)
	}
}

func TestTraitsMatchTable2(t *testing.T) {
	qant := NewQANT(market.DefaultConfig(1))
	cases := []struct {
		m        Mechanism
		autonomy bool
		conflict bool
		workload string
	}{
		{qant, true, false, "Dynamic"},
		{NewGreedy(nil, 0), false, true, "Dynamic"},
		{NewRandom(rand.New(rand.NewSource(1))), true, true, "Dynamic"},
		{NewRoundRobin(), true, true, "Dynamic"},
		{NewBNQRD(), false, true, "Dynamic"},
		{NewMarkov(nil), false, true, "Static"},
	}
	for _, c := range cases {
		tr := c.m.Traits()
		if tr.RespectsAutonomy != c.autonomy {
			t.Errorf("%s autonomy = %t, want %t", c.m.Name(), tr.RespectsAutonomy, c.autonomy)
		}
		if tr.ConflictsWithQueryOpt != c.conflict {
			t.Errorf("%s conflict = %t, want %t", c.m.Name(), tr.ConflictsWithQueryOpt, c.conflict)
		}
		if tr.WorkloadType != c.workload {
			t.Errorf("%s workload = %q, want %q", c.m.Name(), tr.WorkloadType, c.workload)
		}
	}
	// QA-NT is the only autonomy-respecting mechanism with "Very Good"
	// performance — the paper's central claim in Table 2.
	if tr := qant.Traits(); tr.Performance != "Very Good" {
		t.Errorf("QA-NT performance %q", tr.Performance)
	}
}
