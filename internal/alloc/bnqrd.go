package alloc

import "math"

// BNQRD implements the load-balancing algorithm of Carey, Livny and Lu
// [1,2] as described in Section 4: a centrally calculated unbalance
// factor assigns each query so that resource usage is spread as evenly
// as possible over the network. It is the "LB" mechanism of the
// Figure 1 motivating example: each incoming query goes to the node
// whose selection minimizes the resulting load imbalance (max − min
// backlog across all nodes).
//
// BNQRD does not respect node autonomy — it requires every node's
// current load — and does not produce Pareto-optimal allocations, since
// it happily equalizes the load of fast and slow nodes alike.
type BNQRD struct{}

// NewBNQRD builds the allocator.
func NewBNQRD() *BNQRD { return &BNQRD{} }

// Name implements Mechanism.
func (b *BNQRD) Name() string { return "bnqrd" }

// Traits implements Mechanism (Table 2 row "BNQRD").
func (b *BNQRD) Traits() Traits {
	return Traits{
		Distributed:           true,
		WorkloadType:          "Dynamic",
		ConflictsWithQueryOpt: true,
		RespectsAutonomy:      false,
		Performance:           "Poor",
	}
}

// Assign implements Mechanism.
func (b *BNQRD) Assign(q Query, v View) Decision {
	bestNode := -1
	bestImbalance := math.Inf(1)
	for _, n := range v.FeasibleNodes(q.Class) {
		if imb := b.imbalanceAfter(v, n, q.Class); imb < bestImbalance {
			bestImbalance, bestNode = imb, n
		}
	}
	if bestNode < 0 {
		return Decision{Retry: true}
	}
	return Decision{Node: bestNode}
}

// imbalanceAfter computes the max−min backlog spread if the query were
// assigned to candidate.
func (b *BNQRD) imbalanceAfter(v View, candidate, class int) float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for n := 0; n < v.NumNodes(); n++ {
		load := v.Backlog(n)
		if n == candidate {
			load += v.Cost(n, class)
		}
		if load < lo {
			lo = load
		}
		if load > hi {
			hi = load
		}
	}
	return hi - lo
}
