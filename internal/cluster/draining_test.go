package cluster

import (
	"bufio"
	"net"
	"testing"
	"time"

	"github.com/qamarket/qamarket/internal/metrics"
)

// startCodedStub runs a minimal server that answers every request,
// regardless of op, with the given typed refusal. It echoes the
// request id so both transports' framing works against it.
func startCodedStub(t *testing.T, code, msg string) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				r := bufio.NewReader(conn)
				w := bufio.NewWriter(conn)
				for {
					var req request
					if err := readMsg(r, &req); err != nil {
						return
					}
					rep := reply{ID: req.ID, Err: msg, Code: code}
					if err := writeMsg(w, &rep); err != nil {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String()
}

// startDrainingStub answers everything with the typed draining refusal
// a real node sends for non-stats ops during graceful drain.
func startDrainingStub(t *testing.T) string {
	t.Helper()
	return startCodedStub(t, CodeDraining, "node draining")
}

// breakerOps are the four client ops the typed-reply audits drive.
var breakerOps = []struct {
	name string
	call func(t *testing.T, c *Client) error
}{
	{"negotiate", func(t *testing.T, c *Client) error {
		_, _, err := c.negotiateAll("SELECT 1 FROM t", nil, time.Time{})
		return err
	}},
	{"execute", func(t *testing.T, c *Client) error {
		_, _, err := c.executeOn(c.nodes()[0], 1, "SELECT 1 FROM t", nil, time.Time{})
		return err
	}},
	{"fetch", func(t *testing.T, c *Client) error {
		_, _, err := c.fetchOn(c.nodes()[0], 1, "SELECT 1 FROM t", nil, time.Time{})
		return err
	}},
	{"stats", func(t *testing.T, c *Client) error {
		_, err := c.Stats(c.nodes()[0].address())
		return err
	}},
}

// TestDrainingTripsBreakerOnEveryOp is the audit the draining satellite
// asks for: every client op that receives a typed draining reply must
// trip the node's breaker the same way, under both transports.
func TestDrainingTripsBreakerOnEveryOp(t *testing.T) {
	for _, transport := range []Transport{TransportPooled, TransportFresh} {
		for _, op := range breakerOps {
			t.Run(string(transport)+"/"+op.name, func(t *testing.T) {
				addr := startDrainingStub(t)
				c, err := NewClient(ClientConfig{
					Addrs:     []string{addr},
					Timeout:   2 * time.Second,
					Transport: transport,
					// High threshold proves the open circuit came from the
					// typed trip, not accumulated failures.
					BreakerThreshold: 100,
				})
				if err != nil {
					t.Fatal(err)
				}
				defer c.Close()
				if err := op.call(t, c); err == nil {
					t.Fatalf("%s against draining node succeeded", op.name)
				}
				if st := c.nodes()[0].breaker.snapshot(); st != breakerOpen {
					t.Fatalf("breaker after draining %s = %v, want open", op.name, st)
				}
				if got := c.Health()[metrics.BreakerOpenTotal]; got != 1 {
					t.Fatalf("breaker_open_total = %v, want 1", got)
				}
			})
		}
	}
}

// TestMarketRefusalsDoNotTripBreaker is the overload-satellite
// counterpart: typed overload and expired replies are market refusals
// from live nodes, so none of the four ops may charge them to the
// circuit breaker — while a transport error on the same op still must.
func TestMarketRefusalsDoNotTripBreaker(t *testing.T) {
	refusals := []struct {
		code, msg string
	}{
		{CodeOverload, msgOverloaded},
		{CodeExpired, msgExpired},
	}
	for _, transport := range []Transport{TransportPooled, TransportFresh} {
		for _, refusal := range refusals {
			for _, op := range breakerOps {
				t.Run(string(transport)+"/"+refusal.code+"/"+op.name, func(t *testing.T) {
					addr := startCodedStub(t, refusal.code, refusal.msg)
					c, err := NewClient(ClientConfig{
						Addrs:     []string{addr},
						Timeout:   2 * time.Second,
						Transport: transport,
						// Threshold 1: a single failure charged to the breaker
						// would open it, so a closed breaker after the call
						// proves the refusal was not charged at all.
						BreakerThreshold: 1,
					})
					if err != nil {
						t.Fatal(err)
					}
					defer c.Close()
					op.call(t, c)
					if st := c.nodes()[0].breaker.snapshot(); st != breakerClosed {
						t.Fatalf("breaker after typed %s %s = %v, want closed", refusal.code, op.name, st)
					}
					if got := c.Health()[metrics.BreakerOpenTotal]; got != 0 {
						t.Fatalf("breaker_open_total = %v, want 0", got)
					}
				})
			}
		}
	}
	// Control: the work ops against a dead address must still charge the
	// breaker — typed refusals are special, transport errors are not.
	// (Stats is excluded by design: it is an out-of-band observability
	// op whose transport failures never feed the breaker.)
	for _, op := range breakerOps {
		if op.name == "stats" {
			continue
		}
		t.Run("transport-error/"+op.name, func(t *testing.T) {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			addr := ln.Addr().String()
			ln.Close() // nothing listens here anymore: dials are refused
			c, err := NewClient(ClientConfig{
				Addrs:            []string{addr},
				Timeout:          500 * time.Millisecond,
				BreakerThreshold: 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			if err := op.call(t, c); err == nil {
				t.Fatalf("%s against dead address succeeded", op.name)
			}
			if st := c.nodes()[0].breaker.snapshot(); st != breakerOpen {
				t.Fatalf("breaker after %s transport error = %v, want open", op.name, st)
			}
		})
	}
}
