package cluster

import (
	"bufio"
	"errors"
	"net"
	"testing"
	"time"

	"github.com/qamarket/qamarket/internal/metrics"
)

// startDrainingStub runs a minimal server that answers every request,
// regardless of op, with a typed draining refusal — the reply a real
// node sends for non-stats ops during graceful drain. It echoes the
// request id so both transports' framing works against it.
func startDrainingStub(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				r := bufio.NewReader(conn)
				w := bufio.NewWriter(conn)
				for {
					var req request
					if err := readMsg(r, &req); err != nil {
						return
					}
					rep := reply{ID: req.ID, Err: "node draining", Code: CodeDraining}
					if err := writeMsg(w, &rep); err != nil {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String()
}

// TestDrainingTripsBreakerOnEveryOp is the audit the draining satellite
// asks for: every client op that receives a typed draining reply must
// trip the node's breaker the same way, under both transports.
func TestDrainingTripsBreakerOnEveryOp(t *testing.T) {
	ops := []struct {
		name string
		call func(t *testing.T, c *Client)
	}{
		{"negotiate", func(t *testing.T, c *Client) {
			if _, _, err := c.negotiateAll("SELECT 1 FROM t", nil); err == nil {
				t.Fatal("negotiateAll against draining node succeeded")
			}
		}},
		{"execute", func(t *testing.T, c *Client) {
			_, retryable, err := c.executeOn(c.nodes()[0], 1, "SELECT 1 FROM t", nil)
			if err == nil || !retryable {
				t.Fatalf("executeOn = retryable %v, err %v; want retryable draining error", retryable, err)
			}
			if !errors.Is(err, errDraining) {
				t.Fatalf("executeOn err = %v, want errDraining", err)
			}
		}},
		{"fetch", func(t *testing.T, c *Client) {
			_, retryable, err := c.fetchOn(c.nodes()[0], 1, "SELECT 1 FROM t", nil)
			if err == nil || !retryable {
				t.Fatalf("fetchOn = retryable %v, err %v; want retryable draining error", retryable, err)
			}
			if !errors.Is(err, errDraining) {
				t.Fatalf("fetchOn err = %v, want errDraining", err)
			}
		}},
		{"stats", func(t *testing.T, c *Client) {
			if _, err := c.Stats(c.nodes()[0].address()); !errors.Is(err, errDraining) {
				t.Fatalf("Stats err = %v, want errDraining", err)
			}
		}},
	}
	for _, transport := range []Transport{TransportPooled, TransportFresh} {
		for _, op := range ops {
			t.Run(string(transport)+"/"+op.name, func(t *testing.T) {
				addr := startDrainingStub(t)
				c, err := NewClient(ClientConfig{
					Addrs:     []string{addr},
					Timeout:   2 * time.Second,
					Transport: transport,
					// High threshold proves the open circuit came from the
					// typed trip, not accumulated failures.
					BreakerThreshold: 100,
				})
				if err != nil {
					t.Fatal(err)
				}
				defer c.Close()
				op.call(t, c)
				if st := c.nodes()[0].breaker.snapshot(); st != breakerOpen {
					t.Fatalf("breaker after draining %s = %v, want open", op.name, st)
				}
				if got := c.Health()[metrics.BreakerOpenTotal]; got != 1 {
					t.Fatalf("breaker_open_total = %v, want 1", got)
				}
			})
		}
	}
}
