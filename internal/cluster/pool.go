package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Transport selects how a Client carries its RPCs.
type Transport string

const (
	// TransportPooled (the default) keeps a small pool of persistent
	// multiplexed connections per node: requests carry client-assigned
	// ids, many RPCs ride one connection concurrently, and a reader
	// goroutine demuxes replies to the waiting callers. Connections dial
	// lazily and are evicted on any protocol error or RPC timeout — a
	// stream that lost a reply is suspect, and re-dialing keeps the
	// breaker's dials-per-window accounting identical to fresh dialing.
	TransportPooled Transport = "pooled"
	// TransportFresh dials a new connection per RPC: the v0 behavior,
	// kept for rollout comparison (qaload -transport fresh) and as the
	// baseline in the transport benchmarks.
	TransportFresh Transport = "fresh"
)

// Transport-layer errors. All of them count as node failures for the
// circuit breaker, exactly like a dial error on the fresh path.
var (
	// errRPCTimeout reports no reply within the caller's budget. The
	// connection is evicted: its stream may still deliver the reply
	// arbitrarily late, and a hung TCP stream (blackhole, partition)
	// must cost one dial per probe, not zero.
	errRPCTimeout = errors.New("cluster: rpc timeout awaiting reply")
	// errPoolClosed reports an RPC attempted after Client.Close.
	errPoolClosed = errors.New("cluster: client transport closed")
)

// wireCounter tallies bytes crossing a set of connections, for the
// per-encoding bytes_per_query accounting in qaload reports.
type wireCounter struct {
	in  atomic.Int64
	out atomic.Int64
}

// countedConn wraps a net.Conn to tally its traffic on a wireCounter.
type countedConn struct {
	net.Conn
	wc *wireCounter
}

func (c *countedConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.wc.in.Add(int64(n))
	return n, err
}

func (c *countedConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.wc.out.Add(int64(n))
	return n, err
}

// rpcResult is one demuxed message: a JSON reply, a binary frame, or
// the connection's terminal error.
type rpcResult struct {
	rep   *reply
	frame frameMsg
	err   error
}

// pendingCall is one in-flight RPC awaiting demuxed results. A plain
// call gets exactly one result; a streamed fetch (stream=true) gets a
// sequence of frames ending at the terminal frame or a JSON downgrade.
type pendingCall struct {
	ch     chan rpcResult
	stream bool
}

// streamChanDepth buffers a few frames per streamed call so the
// readLoop rarely blocks on a healthy consumer. When the consumer falls
// behind, the readLoop's blocking send stops socket reads and TCP
// backpressure reaches the server — that stall is the mechanism that
// bounds both sides' memory to O(batch) on a huge result.
const streamChanDepth = 8

// mconn is one multiplexed connection: writes are serialized under wmu,
// replies are read by a single readLoop goroutine and routed to waiting
// callers through the pending map. A connection dies on its first
// protocol error or timeout; every in-flight caller then receives the
// terminal error, and the pool dials a replacement on next use.
type mconn struct {
	conn net.Conn

	wmu sync.Mutex // serializes writeMsg calls
	w   *bufio.Writer

	// deadCh closes when the connection dies, releasing stream
	// consumers that would otherwise wait on a channel the readLoop will
	// never feed again.
	deadCh chan struct{}

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]*pendingCall
	dead    bool
	deadErr error
}

func newMconn(conn net.Conn) *mconn {
	mc := &mconn{
		conn:    conn,
		w:       bufio.NewWriter(conn),
		deadCh:  make(chan struct{}),
		pending: make(map[uint64]*pendingCall),
	}
	go mc.readLoop()
	return mc
}

// call performs one RPC: register a pending id, write the request, wait
// for the demuxed reply or the timeout.
func (mc *mconn) call(req *request, rep *reply, timeout time.Duration) error {
	mc.mu.Lock()
	if mc.dead {
		err := mc.deadErr
		mc.mu.Unlock()
		return err
	}
	mc.nextID++
	id := mc.nextID
	pc := &pendingCall{ch: make(chan rpcResult, 1)}
	mc.pending[id] = pc
	mc.mu.Unlock()

	req.ID = id
	mc.wmu.Lock()
	mc.conn.SetWriteDeadline(time.Now().Add(timeout))
	err := writeMsg(mc.w, req)
	mc.wmu.Unlock()
	if err != nil {
		mc.unregister(id)
		// A pre-write size refusal leaves the stream clean; only a real
		// write error poisons the connection.
		if !errors.Is(err, ErrTooLarge) {
			mc.fail(err)
		}
		return err
	}

	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case res := <-pc.ch:
		if res.err != nil {
			return res.err
		}
		if res.rep == nil {
			// A frame routed to a non-streaming call is a protocol
			// violation; the connection is no longer trustworthy.
			res.frame.release()
			err := errors.New("cluster: unexpected binary frame for non-streamed rpc")
			mc.fail(err)
			return err
		}
		*rep = *res.rep
		return nil
	case <-timer.C:
		mc.unregister(id)
		mc.fail(errRPCTimeout)
		return fmt.Errorf("%w after %v", errRPCTimeout, timeout)
	}
}

// stream performs one streamed-fetch RPC. The server answers either
// with a plain JSON envelope (an old node, a refusal, or an error) —
// delivered into rep with jsonReply=true exactly like call — or with a
// sequence of binary frames delivered to onFrame in arrival order.
// onFrame returns done=true on the terminal frame; the timeout is a
// per-frame progress bound, not a whole-stream bound.
//
// A non-nil onFrame error aborts consumption without poisoning the
// connection: the demux keeps draining (and dropping) the remaining
// frames for this id, so other RPCs multiplexed on the connection are
// unaffected.
func (mc *mconn) stream(req *request, rep *reply, timeout time.Duration, onFrame func(typ byte, payload []byte) (bool, error)) (jsonReply bool, err error) {
	mc.mu.Lock()
	if mc.dead {
		err := mc.deadErr
		mc.mu.Unlock()
		return false, err
	}
	mc.nextID++
	id := mc.nextID
	pc := &pendingCall{ch: make(chan rpcResult, streamChanDepth), stream: true}
	mc.pending[id] = pc
	mc.mu.Unlock()

	req.ID = id
	mc.wmu.Lock()
	mc.conn.SetWriteDeadline(time.Now().Add(timeout))
	err = writeMsg(mc.w, req)
	mc.wmu.Unlock()
	if err != nil {
		mc.unregister(id)
		if !errors.Is(err, ErrTooLarge) {
			mc.fail(err)
		}
		return false, err
	}

	timer := time.NewTimer(timeout)
	defer timer.Stop()
	for {
		var res rpcResult
		select {
		case res = <-pc.ch:
		default:
			// Nothing buffered: wait, but notice connection death — the
			// buffered-first read above guarantees results that raced in
			// before the failure (possibly including the terminal frame)
			// are processed before the death is reported.
			select {
			case res = <-pc.ch:
			case <-mc.deadCh:
				return false, mc.terminalErr()
			case <-timer.C:
				mc.unregister(id)
				mc.fail(errRPCTimeout)
				return false, fmt.Errorf("%w mid-stream after %v", errRPCTimeout, timeout)
			}
		}
		switch {
		case res.err != nil:
			return false, res.err
		case res.rep != nil:
			// JSON downgrade: an old server, a refusal, or an error.
			*rep = *res.rep
			return true, nil
		default:
			done, ferr := onFrame(res.frame.typ, res.frame.payload)
			res.frame.release()
			if ferr != nil {
				// Keep draining the stream's remaining frames in the
				// background: the demux may already be blocked sending to
				// this channel, and only the terminal message (or the
				// connection dying) ends the server's stream. The
				// connection stays usable for other RPCs throughout.
				go mc.drainStream(pc)
				return false, ferr
			}
			if done {
				// The demux already unregistered the id on the terminal
				// frame.
				return false, nil
			}
			timer.Reset(timeout)
		}
	}
}

// drainStream consumes and discards an aborted stream's remaining
// messages until its terminal message or connection death, keeping the
// shared readLoop from blocking on the abandoned channel.
func (mc *mconn) drainStream(pc *pendingCall) {
	for {
		select {
		case res := <-pc.ch:
			final := res.err != nil || res.rep != nil || res.frame.typ == frameTypeEnd
			res.frame.release()
			if final {
				return
			}
		case <-mc.deadCh:
			return
		}
	}
}

// terminalErr reports the connection's death error.
func (mc *mconn) terminalErr() error {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	if mc.deadErr != nil {
		return mc.deadErr
	}
	return errors.New("cluster: connection closed")
}

func (mc *mconn) unregister(id uint64) {
	mc.mu.Lock()
	delete(mc.pending, id)
	mc.mu.Unlock()
}

// readLoop demuxes messages by id until the connection dies. The first
// byte picks the lane: frameMagic opens a binary frame, anything else
// (in practice '{') a newline-delimited JSON reply — the magic byte is
// chosen so the two can never be confused. Messages for ids no longer
// pending (a caller timed out or aborted meanwhile) are dropped.
func (mc *mconn) readLoop() {
	r := bufio.NewReader(mc.conn)
	for {
		first, err := r.Peek(1)
		if err != nil {
			mc.fail(err)
			return
		}
		if first[0] == frameMagic {
			fm, err := readFrame(r)
			if err != nil {
				mc.fail(err)
				return
			}
			mc.route(fm.id, rpcResult{frame: fm}, fm.typ == frameTypeEnd)
			continue
		}
		rep := new(reply)
		if err := readMsg(r, rep); err != nil {
			mc.fail(err)
			return
		}
		mc.route(rep.ID, rpcResult{rep: rep}, true)
	}
}

// route delivers one demuxed result to its pending call, unregistering
// the id when the result is final (a JSON reply or a terminal frame).
// Unclaimed results are dropped. The send blocks when a streamed call's
// buffer is full — deliberately: a stalled consumer must stall socket
// reads so TCP backpressure reaches the server and neither side buffers
// an unbounded result. Connection death unblocks the send.
func (mc *mconn) route(id uint64, res rpcResult, final bool) {
	mc.mu.Lock()
	pc, ok := mc.pending[id]
	if ok && final {
		delete(mc.pending, id)
	}
	mc.mu.Unlock()
	if !ok {
		res.frame.release()
		return
	}
	select {
	case pc.ch <- res:
	case <-mc.deadCh:
		res.frame.release()
	}
}

// fail marks the connection dead, closes it (unblocking the readLoop),
// and delivers the terminal error to every in-flight caller.
// Idempotent; the first error wins. deadCh closes before the error
// sends so a streamed consumer blocked elsewhere is released even
// though its channel may be full; the sends are non-blocking for the
// same reason (a full channel's consumer will see deadCh instead).
func (mc *mconn) fail(err error) {
	mc.mu.Lock()
	if mc.dead {
		mc.mu.Unlock()
		return
	}
	mc.dead = true
	mc.deadErr = err
	waiters := mc.pending
	mc.pending = nil
	mc.mu.Unlock()
	close(mc.deadCh)
	mc.conn.Close()
	for _, pc := range waiters {
		select {
		case pc.ch <- rpcResult{err: err}:
		default:
		}
	}
}

func (mc *mconn) isDead() bool {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	return mc.dead
}

// pool is a fixed-size set of multiplexed connections to one node, used
// round-robin. Slots dial lazily; dead slots re-dial on next use.
type pool struct {
	addr string
	wc   *wireCounter // nil disables byte accounting

	mu     sync.Mutex
	slots  []*mconn
	next   int
	closed bool
}

func newPool(addr string, size int, wc *wireCounter) *pool {
	return &pool{addr: addr, wc: wc, slots: make([]*mconn, size)}
}

// get returns a live connection from the next slot, dialing if the slot
// is empty or its connection has died. The dial happens outside the
// pool lock so a slow node never serializes the other slots; if a
// concurrent caller repopulated the slot first, the loser's dial is
// discarded.
func (p *pool) get(timeout time.Duration) (*mconn, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, errPoolClosed
	}
	i := p.next % len(p.slots)
	p.next++
	if mc := p.slots[i]; mc != nil && !mc.isDead() {
		p.mu.Unlock()
		return mc, nil
	}
	p.mu.Unlock()

	conn, err := dial(p.addr, timeout)
	if err != nil {
		return nil, err
	}
	if p.wc != nil {
		conn = &countedConn{Conn: conn, wc: p.wc}
	}
	nc := newMconn(conn)
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		nc.fail(errPoolClosed)
		return nil, errPoolClosed
	}
	if cur := p.slots[i]; cur != nil && !cur.isDead() {
		p.mu.Unlock()
		nc.fail(errPoolClosed) // lost the dial race; use the winner
		return cur, nil
	}
	p.slots[i] = nc
	p.mu.Unlock()
	return nc, nil
}

// closeAll shuts every connection and refuses further use.
func (p *pool) closeAll() {
	p.mu.Lock()
	p.closed = true
	slots := p.slots
	p.slots = make([]*mconn, len(slots))
	p.mu.Unlock()
	for _, mc := range slots {
		if mc != nil {
			mc.fail(errPoolClosed)
		}
	}
}

// nodeTransport is one node's pooled transport, split into two lanes:
// "control" carries negotiate/stats (short, Timeout-bounded RPCs) and
// "data" carries execute/fetch (long, execTimeout-bounded RPCs). The
// split keeps a short RPC's timeout from evicting a connection with a
// long execution in flight, and keeps the per-op connection accounting
// that the resilience tests pin (one control dial + one data dial per
// healthy negotiate→execute exchange).
type nodeTransport struct {
	control *pool
	data    *pool
}

func newNodeTransport(addr string, size int, wc *wireCounter) *nodeTransport {
	return &nodeTransport{control: newPool(addr, size, wc), data: newPool(addr, size, wc)}
}

// lane picks the pool for an op.
func (nt *nodeTransport) lane(op string) *pool {
	if op == "execute" || op == "fetch" {
		return nt.data
	}
	return nt.control
}

func (nt *nodeTransport) close() {
	nt.control.closeAll()
	nt.data.closeAll()
}
