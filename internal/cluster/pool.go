package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// Transport selects how a Client carries its RPCs.
type Transport string

const (
	// TransportPooled (the default) keeps a small pool of persistent
	// multiplexed connections per node: requests carry client-assigned
	// ids, many RPCs ride one connection concurrently, and a reader
	// goroutine demuxes replies to the waiting callers. Connections dial
	// lazily and are evicted on any protocol error or RPC timeout — a
	// stream that lost a reply is suspect, and re-dialing keeps the
	// breaker's dials-per-window accounting identical to fresh dialing.
	TransportPooled Transport = "pooled"
	// TransportFresh dials a new connection per RPC: the v0 behavior,
	// kept for rollout comparison (qaload -transport fresh) and as the
	// baseline in the transport benchmarks.
	TransportFresh Transport = "fresh"
)

// Transport-layer errors. All of them count as node failures for the
// circuit breaker, exactly like a dial error on the fresh path.
var (
	// errRPCTimeout reports no reply within the caller's budget. The
	// connection is evicted: its stream may still deliver the reply
	// arbitrarily late, and a hung TCP stream (blackhole, partition)
	// must cost one dial per probe, not zero.
	errRPCTimeout = errors.New("cluster: rpc timeout awaiting reply")
	// errPoolClosed reports an RPC attempted after Client.Close.
	errPoolClosed = errors.New("cluster: client transport closed")
)

// rpcResult is one demuxed reply (or the connection's terminal error).
type rpcResult struct {
	rep *reply
	err error
}

// mconn is one multiplexed connection: writes are serialized under wmu,
// replies are read by a single readLoop goroutine and routed to waiting
// callers through the pending map. A connection dies on its first
// protocol error or timeout; every in-flight caller then receives the
// terminal error, and the pool dials a replacement on next use.
type mconn struct {
	conn net.Conn

	wmu sync.Mutex // serializes writeMsg calls
	w   *bufio.Writer

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan rpcResult
	dead    bool
	deadErr error
}

func newMconn(conn net.Conn) *mconn {
	mc := &mconn{
		conn:    conn,
		w:       bufio.NewWriter(conn),
		pending: make(map[uint64]chan rpcResult),
	}
	go mc.readLoop()
	return mc
}

// call performs one RPC: register a pending id, write the request, wait
// for the demuxed reply or the timeout.
func (mc *mconn) call(req *request, rep *reply, timeout time.Duration) error {
	mc.mu.Lock()
	if mc.dead {
		err := mc.deadErr
		mc.mu.Unlock()
		return err
	}
	mc.nextID++
	id := mc.nextID
	ch := make(chan rpcResult, 1)
	mc.pending[id] = ch
	mc.mu.Unlock()

	req.ID = id
	mc.wmu.Lock()
	mc.conn.SetWriteDeadline(time.Now().Add(timeout))
	err := writeMsg(mc.w, req)
	mc.wmu.Unlock()
	if err != nil {
		mc.unregister(id)
		mc.fail(err)
		return err
	}

	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case res := <-ch:
		if res.err != nil {
			return res.err
		}
		*rep = *res.rep
		return nil
	case <-timer.C:
		mc.unregister(id)
		mc.fail(errRPCTimeout)
		return fmt.Errorf("%w after %v", errRPCTimeout, timeout)
	}
}

func (mc *mconn) unregister(id uint64) {
	mc.mu.Lock()
	delete(mc.pending, id)
	mc.mu.Unlock()
}

// readLoop demuxes replies by id until the connection dies. Replies for
// ids no longer pending (a caller timed out meanwhile) are dropped.
func (mc *mconn) readLoop() {
	r := bufio.NewReader(mc.conn)
	for {
		rep := new(reply)
		if err := readMsg(r, rep); err != nil {
			mc.fail(err)
			return
		}
		mc.mu.Lock()
		ch, ok := mc.pending[rep.ID]
		if ok {
			delete(mc.pending, rep.ID)
		}
		mc.mu.Unlock()
		if ok {
			ch <- rpcResult{rep: rep}
		}
	}
}

// fail marks the connection dead, closes it (unblocking the readLoop),
// and delivers the terminal error to every in-flight caller. Idempotent;
// the first error wins.
func (mc *mconn) fail(err error) {
	mc.mu.Lock()
	if mc.dead {
		mc.mu.Unlock()
		return
	}
	mc.dead = true
	mc.deadErr = err
	waiters := mc.pending
	mc.pending = nil
	mc.mu.Unlock()
	mc.conn.Close()
	for _, ch := range waiters {
		ch <- rpcResult{err: err}
	}
}

func (mc *mconn) isDead() bool {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	return mc.dead
}

// pool is a fixed-size set of multiplexed connections to one node, used
// round-robin. Slots dial lazily; dead slots re-dial on next use.
type pool struct {
	addr string

	mu     sync.Mutex
	slots  []*mconn
	next   int
	closed bool
}

func newPool(addr string, size int) *pool {
	return &pool{addr: addr, slots: make([]*mconn, size)}
}

// get returns a live connection from the next slot, dialing if the slot
// is empty or its connection has died. The dial happens outside the
// pool lock so a slow node never serializes the other slots; if a
// concurrent caller repopulated the slot first, the loser's dial is
// discarded.
func (p *pool) get(timeout time.Duration) (*mconn, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, errPoolClosed
	}
	i := p.next % len(p.slots)
	p.next++
	if mc := p.slots[i]; mc != nil && !mc.isDead() {
		p.mu.Unlock()
		return mc, nil
	}
	p.mu.Unlock()

	conn, err := dial(p.addr, timeout)
	if err != nil {
		return nil, err
	}
	nc := newMconn(conn)
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		nc.fail(errPoolClosed)
		return nil, errPoolClosed
	}
	if cur := p.slots[i]; cur != nil && !cur.isDead() {
		p.mu.Unlock()
		nc.fail(errPoolClosed) // lost the dial race; use the winner
		return cur, nil
	}
	p.slots[i] = nc
	p.mu.Unlock()
	return nc, nil
}

// closeAll shuts every connection and refuses further use.
func (p *pool) closeAll() {
	p.mu.Lock()
	p.closed = true
	slots := p.slots
	p.slots = make([]*mconn, len(slots))
	p.mu.Unlock()
	for _, mc := range slots {
		if mc != nil {
			mc.fail(errPoolClosed)
		}
	}
}

// nodeTransport is one node's pooled transport, split into two lanes:
// "control" carries negotiate/stats (short, Timeout-bounded RPCs) and
// "data" carries execute/fetch (long, execTimeout-bounded RPCs). The
// split keeps a short RPC's timeout from evicting a connection with a
// long execution in flight, and keeps the per-op connection accounting
// that the resilience tests pin (one control dial + one data dial per
// healthy negotiate→execute exchange).
type nodeTransport struct {
	control *pool
	data    *pool
}

func newNodeTransport(addr string, size int) *nodeTransport {
	return &nodeTransport{control: newPool(addr, size), data: newPool(addr, size)}
}

// lane picks the pool for an op.
func (nt *nodeTransport) lane(op string) *pool {
	if op == "execute" || op == "fetch" {
		return nt.data
	}
	return nt.control
}

func (nt *nodeTransport) close() {
	nt.control.closeAll()
	nt.data.closeAll()
}
