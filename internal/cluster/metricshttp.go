package cluster

import (
	"net/http"
	"sort"
	"time"

	"github.com/qamarket/qamarket/internal/metrics"
)

// MetricsHandler serves the node's observable state in the Prometheus
// plain-text exposition format: the health counter/gauge registry,
// server-side per-op handling-latency histograms, and the per-period
// market telemetry (per-class prices, supply vectors, trading-failure
// counters, epoch). Rendering is deterministic — names and label
// values are sorted — so scrapes diff cleanly.
func (n *Node) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		p := metrics.NewPromWriter(w)
		node := metrics.Labels{"node": n.cfg.NodeID}

		// Health registry: counters and gauges keep their distinct
		// Prometheus types (the kind split the registration panics
		// guarantee).
		health := n.health.Counters()
		names := make([]string, 0, len(health))
		for name := range health {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			if ver, ok := metrics.FrameNegotiatedVersion(name); ok {
				// Per-version negotiation counters render as one family with
				// a version label, the conventional Prometheus shape.
				p.Counter("qa_frame_negotiated_total", metrics.Labels{"node": n.cfg.NodeID, "version": ver}, float64(health[name]))
				continue
			}
			p.Counter("qa_"+metrics.SanitizeMetricName(name), node, float64(health[name]))
		}
		gauges := n.health.Gauges()
		if ts := n.lastCheckpoint.Load(); ts > 0 {
			gauges[metrics.CheckpointAgeMs] = float64(time.Now().UnixMilli() - ts)
		}
		// Load gauges are sampled at scrape time, not at the last write.
		gauges[metrics.InflightWork] = float64(n.working.Load())
		gauges[metrics.QueueDepth] = float64(len(n.execCh))
		names = names[:0]
		for name := range gauges {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			p.Gauge("qa_"+metrics.SanitizeMetricName(name), node, gauges[name])
		}

		n.mu.Lock()
		executed := n.executed
		backlog := n.backlogMs
		n.mu.Unlock()
		p.Counter("qa_queries_executed_total", node, float64(executed))
		p.Gauge("qa_backlog_ms", node, backlog)
		p.Gauge("qa_inflight", node, float64(n.inflight.Load()))

		// Server-side handling latency per op.
		hists := n.opLatencyBuckets()
		ops := make([]string, 0, len(hists))
		for op := range hists {
			ops = append(ops, op)
		}
		sort.Strings(ops)
		for _, op := range ops {
			p.Histogram("qa_op_handle_ms", metrics.Labels{"node": n.cfg.NodeID, "op": op}, hists[op])
		}

		// Per-period market telemetry. Class labels are the node's
		// private plan signatures, sanitized for the label charset by %q
		// escaping inside the renderer.
		tel := n.MarketTelemetry()
		p.Gauge("qa_market_epoch", node, float64(tel.Epoch))
		active := 0.0
		if tel.Active {
			active = 1
		}
		p.Gauge("qa_market_active", node, active)
		p.Gauge("qa_market_carry_ms", node, tel.CarryMs)
		p.Counter("qa_market_periods_total", node, float64(tel.Stats.Periods))
		p.Counter("qa_market_offers_total", node, float64(tel.Stats.Offers))
		p.Counter("qa_market_accepts_total", node, float64(tel.Stats.Accepts))
		p.Counter("qa_market_rejects_total", node, float64(tel.Stats.Rejects))
		p.Counter("qa_market_unsold_total", node, float64(tel.Stats.Unsold))
		p.Counter("qa_market_price_ups_total", node, float64(tel.Stats.PriceUps))
		p.Counter("qa_market_price_downs_total", node, float64(tel.Stats.PriceDns))
		for _, cl := range tel.Classes {
			l := metrics.Labels{"node": n.cfg.NodeID, "class": cl.Signature}
			p.Gauge("qa_market_price", l, cl.Price)
			p.Gauge("qa_market_cost_ms", l, cl.CostMs)
			p.Gauge("qa_market_supply_planned", l, float64(cl.Planned))
			p.Gauge("qa_market_supply_remaining", l, float64(cl.Remaining))
			p.Gauge("qa_market_accepted", l, float64(cl.Accepted))
		}
	})
}
