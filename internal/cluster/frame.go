package cluster

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"

	"github.com/qamarket/qamarket/internal/driver"
	"github.com/qamarket/qamarket/internal/sqldb"
)

// Binary fetch framing (frameV1). The newline-delimited JSON lane stays
// the protocol's request and control plane — requests are small and the
// additive-field negotiation (enc/trace/deadline_ms/batch/frame) lives
// there — but a successful fetch result may come back as a sequence of
// length-prefixed little-endian binary frames instead of one JSON
// message. A client advertises the newest frame version it decodes in
// the request's "frame" field; a server that speaks it streams the
// result as
//
//	header frame  (accepted, exec ms, column names, batch size, row count)
//	batch frame   (<= batch-size rows as typed columns)  — repeated
//	end frame     (terminal marker: rows sent, batch count, error)
//
// and every refusal, error, or old-version exchange stays a JSON reply,
// so the frame path only ever carries the hot payload. The first byte
// distinguishes the lanes: frames start with frameMagic (0xFA), which
// can never open a JSON message ('{' is 0x7B), so readers peek one byte
// and demux.
//
// Frame layout (all integers little-endian):
//
//	offset  size  field
//	0       1     magic (0xFA)
//	1       1     version (1)
//	2       1     type (1 header, 2 batch, 3 end)
//	3       1     flags (reserved, 0)
//	4       8     request id (echoes the request's id)
//	12      4     payload length
//	16      ...   payload
const (
	frameMagic      = 0xFA
	frameTypeHeader = 1
	frameTypeBatch  = 2
	frameTypeEnd    = 3
	frameHdrLen     = 16
	// maxFramePayload bounds one frame's payload, the binary lane's
	// analogue of maxLineBytes: a corrupt length prefix must not make a
	// reader allocate gigabytes. Batches are bounded by FetchBatchRows,
	// so real payloads sit far below this.
	maxFramePayload = 1 << 26
)

// frameV1 is the newest frame version this build speaks. The request's
// Frame field carries the client's newest supported version; zero (the
// field omitted) means the client predates frames and gets JSON.
const frameV1 = 1

// errFrameDecode reports a malformed frame. The connection is
// unrecoverable afterwards (the stream position is mid-frame), so
// readers drop it, exactly like errLineTooLong on the JSON lane.
var errFrameDecode = errors.New("cluster: malformed binary frame")

// frameBuf is a pooled, grown-once byte buffer shared by frame writers
// (one per stream) and frame readers (one per in-flight frame). Pooling
// keeps the steady-state fetch path allocation-free: after warm-up the
// same backing arrays carry every stream.
type frameBuf struct{ b []byte }

var frameBufPool = sync.Pool{New: func() any { return new(frameBuf) }}

func getFrameBuf() *frameBuf { return frameBufPool.Get().(*frameBuf) }
func putFrameBuf(fb *frameBuf) {
	if fb != nil {
		frameBufPool.Put(fb)
	}
}

// beginFrame appends a frame header with a zero payload length and
// returns the header's offset for endFrame to patch.
func beginFrame(buf []byte, typ byte, id uint64) ([]byte, int) {
	hdr := len(buf)
	buf = append(buf, frameMagic, frameV1, typ, 0)
	buf = binary.LittleEndian.AppendUint64(buf, id)
	buf = binary.LittleEndian.AppendUint32(buf, 0)
	return buf, hdr
}

// endFrame patches the payload length of the frame begun at hdr.
func endFrame(buf []byte, hdr int) []byte {
	binary.LittleEndian.PutUint32(buf[hdr+12:hdr+16], uint32(len(buf)-hdr-frameHdrLen))
	return buf
}

// appendFetchHeader appends the stream-opening header frame: accepted
// flag, server-side exec time, column names, the batch size the server
// will honor, and the total row count.
func appendFetchHeader(buf []byte, id uint64, columns []string, execMs float64, batchRows int, totalRows int) []byte {
	buf, hdr := beginFrame(buf, frameTypeHeader, id)
	buf = append(buf, 1) // accepted; refusals never reach the frame lane
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(execMs))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(columns)))
	for _, name := range columns {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(name)))
		buf = append(buf, name...)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(batchRows))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(totalRows))
	return endFrame(buf, hdr)
}

// appendFetchBatch appends one batch frame carrying res.Rows[lo:hi].
// It is the row-input convenience over appendFetchBatchCols (tests and
// the JSON downgrade use it); the streaming path hands the encoder a
// driver block directly and never materializes rows.
func appendFetchBatch(buf []byte, id uint64, res *sqldb.Result, lo, hi int) []byte {
	var blk ColBlock
	blk.FillFromRows(res.Columns, res.Rows[lo:hi])
	return appendFetchBatchCols(buf, id, &blk)
}

// appendFetchBatchCols appends one batch frame carrying blk's rows as
// typed columns: per column, one kind byte per row (the encCompact
// alphabet), then the non-null values of each type in row order — ints
// and floats as fixed 8-byte words, texts as a length table plus one
// concatenated blob (so the client can decode all of a column's strings
// with a single allocation), bools as packed bits. Because driver
// blocks already hold exactly this layout, encoding is a straight copy
// of each typed array — no per-row dispatch and no transposition.
func appendFetchBatchCols(buf []byte, id uint64, blk *ColBlock) []byte {
	buf, hdr := beginFrame(buf, frameTypeBatch, id)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(blk.Rows))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(blk.Cols)))
	for j := range blk.Cols {
		col := &blk.Cols[j]
		buf = append(buf, col.Kinds...)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(col.Ints)))
		for _, v := range col.Ints {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(col.Floats)))
		for _, v := range col.Floats {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		}
		blobLen := 0
		for _, t := range col.Texts {
			blobLen += len(t)
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(col.Texts)))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(blobLen))
		for _, t := range col.Texts {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(t)))
		}
		for _, t := range col.Texts {
			buf = append(buf, t...)
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(col.Bools)))
		var bits, filled byte
		for _, v := range col.Bools {
			if v {
				bits |= 1 << filled
			}
			filled++
			if filled == 8 {
				buf = append(buf, bits)
				bits, filled = 0, 0
			}
		}
		if filled > 0 {
			buf = append(buf, bits)
		}
	}
	return endFrame(buf, hdr)
}

// appendFetchEnd appends the terminal frame: rows and batches sent, and
// the stream's error ("" for a clean finish; msgNodeStopping when a
// hard shutdown interrupted the stream mid-result).
func appendFetchEnd(buf []byte, id uint64, rows uint64, batches int, errMsg string) []byte {
	buf, hdr := beginFrame(buf, frameTypeEnd, id)
	buf = binary.LittleEndian.AppendUint64(buf, rows)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(batches))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(errMsg)))
	buf = append(buf, errMsg...)
	return endFrame(buf, hdr)
}

// --- Reading ---------------------------------------------------------

// frameMsg is one frame as read off a connection. The payload is backed
// by a pooled frameBuf; whoever consumes the frame calls release.
type frameMsg struct {
	typ     byte
	id      uint64
	fb      *frameBuf
	payload []byte
}

func (fm *frameMsg) release() {
	putFrameBuf(fm.fb)
	fm.fb, fm.payload = nil, nil
}

// readFrame reads one complete frame. The caller has already peeked the
// magic byte; version, type, and payload length are validated before any
// allocation, so a corrupt prefix cannot balloon memory.
func readFrame(r *bufio.Reader) (frameMsg, error) {
	var hdr [frameHdrLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return frameMsg{}, err
	}
	if hdr[0] != frameMagic || hdr[1] != frameV1 {
		return frameMsg{}, fmt.Errorf("%w: magic/version %x/%d", errFrameDecode, hdr[0], hdr[1])
	}
	typ := hdr[2]
	if typ < frameTypeHeader || typ > frameTypeEnd {
		return frameMsg{}, fmt.Errorf("%w: type %d", errFrameDecode, typ)
	}
	plen := binary.LittleEndian.Uint32(hdr[12:16])
	if plen > maxFramePayload {
		return frameMsg{}, fmt.Errorf("%w: %d-byte payload exceeds limit", errFrameDecode, plen)
	}
	fb := getFrameBuf()
	if cap(fb.b) < int(plen) {
		fb.b = make([]byte, plen)
	}
	payload := fb.b[:plen]
	if _, err := io.ReadFull(r, payload); err != nil {
		putFrameBuf(fb)
		return frameMsg{}, err
	}
	return frameMsg{typ: typ, id: binary.LittleEndian.Uint64(hdr[4:12]), fb: fb, payload: payload}, nil
}

// cursor walks a frame payload with bounds checking; every getter
// reports ok=false on overrun instead of panicking, which is what the
// fuzz target leans on.
type cursor struct {
	p   []byte
	off int
}

func (c *cursor) remaining() int { return len(c.p) - c.off }

func (c *cursor) u8() (byte, bool) {
	if c.remaining() < 1 {
		return 0, false
	}
	v := c.p[c.off]
	c.off++
	return v, true
}

func (c *cursor) u16() (uint16, bool) {
	if c.remaining() < 2 {
		return 0, false
	}
	v := binary.LittleEndian.Uint16(c.p[c.off:])
	c.off += 2
	return v, true
}

func (c *cursor) u32() (uint32, bool) {
	if c.remaining() < 4 {
		return 0, false
	}
	v := binary.LittleEndian.Uint32(c.p[c.off:])
	c.off += 4
	return v, true
}

func (c *cursor) u64() (uint64, bool) {
	if c.remaining() < 8 {
		return 0, false
	}
	v := binary.LittleEndian.Uint64(c.p[c.off:])
	c.off += 8
	return v, true
}

func (c *cursor) bytes(n int) ([]byte, bool) {
	if n < 0 || c.remaining() < n {
		return nil, false
	}
	b := c.p[c.off : c.off+n]
	c.off += n
	return b, true
}

// frameHeader is the decoded header frame. Columns is reused across
// streams by the owning fetchStream.
type frameHeader struct {
	accepted  bool
	execMs    float64
	columns   []string
	batchRows int
	totalRows uint64
}

// decodeFetchHeader parses a header-frame payload into h, reusing its
// column slice.
func decodeFetchHeader(p []byte, h *frameHeader) error {
	c := cursor{p: p}
	acc, ok1 := c.u8()
	bits, ok2 := c.u64()
	ncols, ok3 := c.u32()
	if !ok1 || !ok2 || !ok3 || int(ncols) > c.remaining() {
		return fmt.Errorf("%w: header prefix", errFrameDecode)
	}
	h.accepted = acc != 0
	h.execMs = math.Float64frombits(bits)
	h.columns = h.columns[:0]
	for i := 0; i < int(ncols); i++ {
		nlen, ok := c.u16()
		if !ok {
			return fmt.Errorf("%w: column name length", errFrameDecode)
		}
		name, ok := c.bytes(int(nlen))
		if !ok {
			return fmt.Errorf("%w: column name", errFrameDecode)
		}
		h.columns = append(h.columns, string(name))
	}
	batch, ok1 := c.u32()
	total, ok2 := c.u64()
	if !ok1 || !ok2 || c.remaining() != 0 {
		return fmt.Errorf("%w: header trailer", errFrameDecode)
	}
	h.batchRows = int(batch)
	h.totalRows = total
	return nil
}

// frameEnd is the decoded terminal frame.
type frameEnd struct {
	rows    uint64
	batches int
	errMsg  string
}

// decodeFetchEnd parses an end-frame payload.
func decodeFetchEnd(p []byte) (frameEnd, error) {
	c := cursor{p: p}
	rows, ok1 := c.u64()
	batches, ok2 := c.u32()
	elen, ok3 := c.u16()
	if !ok1 || !ok2 || !ok3 {
		return frameEnd{}, fmt.Errorf("%w: end prefix", errFrameDecode)
	}
	msg, ok := c.bytes(int(elen))
	if !ok || c.remaining() != 0 {
		return frameEnd{}, fmt.Errorf("%w: end message", errFrameDecode)
	}
	return frameEnd{rows: rows, batches: int(batches), errMsg: string(msg)}, nil
}

// Col and ColBlock are the cluster-side names for the driver package's
// columnar batch types: the same struct flows from a storage driver's
// Execute, through the frame encoder, across the wire, and out of the
// client-side decoder without transposition.
type (
	Col      = driver.Col
	ColBlock = driver.Block
)

// decodeFetchBatch parses a batch-frame payload into blk, reusing its
// buffers, and validates every count against the kind bytes so a
// malformed frame is an error, never a panic.
func decodeFetchBatch(p []byte, blk *ColBlock) error {
	c := cursor{p: p}
	nrows, ok1 := c.u32()
	ncols, ok2 := c.u32()
	if !ok1 || !ok2 {
		return fmt.Errorf("%w: batch prefix", errFrameDecode)
	}
	// A column costs at least one kind byte per row plus 20 bytes of
	// count fields (ints, floats, texts+blob, bools) even when empty, so
	// the claimed shape is bounded by the payload length — reject before
	// allocating anything.
	if uint64(ncols)*(uint64(nrows)+20) > uint64(c.remaining()) {
		return fmt.Errorf("%w: batch claims %d×%d cells in %d bytes", errFrameDecode, nrows, ncols, c.remaining())
	}
	if cap(blk.Cols) < int(ncols) {
		blk.Cols = make([]Col, ncols)
	}
	blk.Cols = blk.Cols[:ncols]
	blk.Rows = int(nrows)
	for j := range blk.Cols {
		col := &blk.Cols[j]
		kinds, ok := c.bytes(int(nrows))
		if !ok {
			return fmt.Errorf("%w: column %d kinds", errFrameDecode, j)
		}
		var ni, nf, ns, nb int
		for _, k := range kinds {
			switch k {
			case kindByteInt:
				ni++
			case kindByteFloat:
				nf++
			case kindByteText:
				ns++
			case kindByteBool:
				nb++
			case kindByteNull:
			default:
				return fmt.Errorf("%w: column %d kind byte %q", errFrameDecode, j, k)
			}
		}
		col.Kinds = append(col.Kinds[:0], kinds...)

		cnt, ok := c.u32()
		if !ok || int(cnt) != ni || c.remaining() < ni*8 {
			return fmt.Errorf("%w: column %d ints", errFrameDecode, j)
		}
		col.Ints = col.Ints[:0]
		for i := 0; i < ni; i++ {
			v, _ := c.u64()
			col.Ints = append(col.Ints, int64(v))
		}

		cnt, ok = c.u32()
		if !ok || int(cnt) != nf || c.remaining() < nf*8 {
			return fmt.Errorf("%w: column %d floats", errFrameDecode, j)
		}
		col.Floats = col.Floats[:0]
		for i := 0; i < nf; i++ {
			v, _ := c.u64()
			col.Floats = append(col.Floats, math.Float64frombits(v))
		}

		cnt, ok = c.u32()
		blobLen, ok2 := c.u32()
		if !ok || !ok2 || int(cnt) != ns || c.remaining() < ns*4 {
			return fmt.Errorf("%w: column %d text table", errFrameDecode, j)
		}
		lens, _ := c.bytes(ns * 4)
		blobBytes, ok := c.bytes(int(blobLen))
		if !ok {
			return fmt.Errorf("%w: column %d text blob", errFrameDecode, j)
		}
		// One string conversion covers the whole column's texts; the
		// individual values are substrings of it. This is the decode
		// path's only steady-state allocation.
		blob := string(blobBytes)
		col.Texts = col.Texts[:0]
		off := 0
		for i := 0; i < ns; i++ {
			l := int(binary.LittleEndian.Uint32(lens[i*4:]))
			if l < 0 || off+l > len(blob) {
				return fmt.Errorf("%w: column %d text lengths exceed blob", errFrameDecode, j)
			}
			col.Texts = append(col.Texts, blob[off:off+l])
			off += l
		}
		if off != len(blob) {
			return fmt.Errorf("%w: column %d text blob not consumed", errFrameDecode, j)
		}

		cnt, ok = c.u32()
		if !ok || int(cnt) != nb {
			return fmt.Errorf("%w: column %d bools", errFrameDecode, j)
		}
		packed, ok := c.bytes((nb + 7) / 8)
		if !ok {
			return fmt.Errorf("%w: column %d bool bits", errFrameDecode, j)
		}
		col.Bools = col.Bools[:0]
		for i := 0; i < nb; i++ {
			col.Bools = append(col.Bools, packed[i/8]&(1<<(i%8)) != 0)
		}
	}
	if c.remaining() != 0 {
		return fmt.Errorf("%w: %d trailing batch bytes", errFrameDecode, c.remaining())
	}
	return nil
}
