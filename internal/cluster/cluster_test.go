package cluster

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"github.com/qamarket/qamarket/internal/market"
	"github.com/qamarket/qamarket/internal/sqldb"
)

// startTestFederation spins up n nodes over a small dataset with the
// given per-node slowdowns. The time scale is compressed so the whole
// suite stays fast.
func startTestFederation(t *testing.T, slowdowns []float64) (*Dataset, []*Node, []string) {
	t.Helper()
	rng := rand.New(rand.NewSource(17))
	maxCopies := 3
	if maxCopies > len(slowdowns) {
		maxCopies = len(slowdowns)
	}
	minCopies := 2
	if minCopies > maxCopies {
		minCopies = maxCopies
	}
	p := DatasetParams{
		Nodes: len(slowdowns), Tables: 6, Views: 10, RowsPerTable: 60,
		MinCopies: minCopies, MaxCopies: maxCopies,
	}
	ds, err := GenerateDataset(p, rng)
	if err != nil {
		t.Fatalf("dataset: %v", err)
	}
	nodes := make([]*Node, len(slowdowns))
	addrs := make([]string, len(slowdowns))
	for i := range slowdowns {
		cfg := NodeConfig{
			DB:            ds.DBs[i],
			Slowdown:      slowdowns[i],
			MsPerCostUnit: 0.02,
			PeriodMs:      50,
			Market:        market.DefaultConfig(1),
		}
		n, err := StartNode("127.0.0.1:0", cfg)
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		nodes[i] = n
		addrs[i] = n.Addr()
		t.Cleanup(func() { n.Close() })
	}
	return ds, nodes, addrs
}

func TestDatasetShape(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ds, err := GenerateDataset(Figure7Params(), rng)
	if err != nil {
		t.Fatalf("GenerateDataset: %v", err)
	}
	if len(ds.DBs) != 5 || len(ds.Relations) != 100 {
		t.Fatalf("dbs=%d relations=%d", len(ds.DBs), len(ds.Relations))
	}
	for _, rel := range ds.Relations {
		holders := ds.Holders[rel]
		if len(holders) < 1 || len(holders) > 4 {
			t.Errorf("%s has %d copies", rel, len(holders))
		}
		for _, n := range holders {
			if !ds.DBs[n].HasRelation(rel) {
				t.Errorf("node %d missing declared copy of %s", n, rel)
			}
		}
	}
	// Every view must be readable on each holder.
	for vi := 0; vi < 3; vi++ {
		name := viewName(vi)
		for _, n := range ds.Holders[name] {
			if _, err := ds.DBs[n].Query("SELECT COUNT(*) FROM " + name); err != nil {
				t.Errorf("view %s on node %d: %v", name, n, err)
			}
		}
	}
}

func TestDatasetRejectsBadParams(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	bad := []DatasetParams{
		{},
		{Nodes: 3, Tables: 2, RowsPerTable: 10, MinCopies: 0, MaxCopies: 2},
		{Nodes: 3, Tables: 2, RowsPerTable: 10, MinCopies: 2, MaxCopies: 1},
		{Nodes: 3, Tables: 2, RowsPerTable: 10, MinCopies: 2, MaxCopies: 5},
	}
	for i, p := range bad {
		if _, err := GenerateDataset(p, rng); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
}

func TestTemplatesAreEvaluableSomewhere(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ds, err := GenerateDataset(DatasetParams{
		Nodes: 4, Tables: 6, Views: 8, RowsPerTable: 40, MinCopies: 2, MaxCopies: 3,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	templates, err := ds.GenerateTemplates(10, 2, rng)
	if err != nil {
		t.Fatalf("templates: %v", err)
	}
	for ti, tpl := range templates {
		sql := tpl.Instantiate(rng)
		if !strings.Contains(sql, "GROUP BY") {
			t.Errorf("template %d not a group query: %s", ti, sql)
		}
		ok := false
		for _, db := range ds.DBs {
			if _, err := db.Query(sql); err == nil {
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("template %d evaluable nowhere: %s", ti, sql)
		}
	}
	// Same template, different constants, same plan signature.
	sqlA := templates[0].Instantiate(rng)
	sqlB := templates[0].Instantiate(rng)
	for _, db := range ds.DBs {
		pa, errA := db.Explain(sqlA)
		pb, errB := db.Explain(sqlB)
		if errA == nil && errB == nil && pa.Signature() != pb.Signature() {
			t.Error("same template produced different signatures")
		}
	}
}

func TestNegotiateExecuteRoundTrip(t *testing.T) {
	ds, nodes, addrs := startTestFederation(t, []float64{1, 1, 1})
	client, err := NewClient(ClientConfig{Addrs: addrs, Mechanism: MechGreedy, PeriodMs: 50})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	templates, err := ds.GenerateTemplates(3, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	out := client.Run(1, templates[0].Instantiate(rng))
	if out.Err != nil {
		t.Fatalf("Run: %v", out.Err)
	}
	known := false
	for _, n := range nodes {
		if out.Node == n.ID() {
			known = true
		}
	}
	if !known {
		t.Fatalf("bad node %q", out.Node)
	}
	if out.TotalMs <= 0 || out.AssignMs <= 0 {
		t.Errorf("timings: %+v", out)
	}
	total := 0
	for _, n := range nodes {
		total += n.Executed()
	}
	if total != 1 {
		t.Errorf("executed %d queries across nodes, want 1", total)
	}
}

func TestInfeasibleQueryFails(t *testing.T) {
	_, _, addrs := startTestFederation(t, []float64{1, 1})
	client, err := NewClient(ClientConfig{
		Addrs: addrs, Mechanism: MechGreedy, PeriodMs: 20, MaxRetries: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := client.Run(1, "SELECT COUNT(*) FROM does_not_exist")
	if out.Err == nil {
		t.Fatal("query over a missing relation succeeded")
	}
}

func TestGreedyPrefersFastNode(t *testing.T) {
	// Node 0 is 10x slower: on an idle system the greedy client must
	// route to a fast replica whenever one holds the data.
	ds, nodes, addrs := startTestFederation(t, []float64{10, 1, 1})
	client, err := NewClient(ClientConfig{Addrs: addrs, Mechanism: MechGreedy, PeriodMs: 50})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	templates, err := ds.GenerateTemplates(5, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	slowOnly := 0
	for qi, tpl := range templates {
		// Skip templates only the slow node can answer.
		fastCan := false
		for _, rel := range tpl.Relations {
			_ = rel
		}
		sql := tpl.Instantiate(rng)
		out := client.Run(int64(qi), sql)
		if out.Err != nil {
			t.Fatalf("query %d: %v", qi, out.Err)
		}
		if out.Node == nodes[0].ID() {
			// Only legitimate if no fast node holds all relations.
			for _, db := range ds.DBs[1:] {
				if _, err := db.Query(sql); err == nil {
					fastCan = true
				}
			}
			if fastCan {
				slowOnly++
			}
		}
	}
	if slowOnly > 0 {
		t.Errorf("greedy sent %d queries to the slow node despite fast replicas", slowOnly)
	}
	_ = nodes
}

func TestQANTServesWorkload(t *testing.T) {
	ds, nodes, addrs := startTestFederation(t, []float64{1, 2, 4})
	client, err := NewClient(ClientConfig{
		Addrs: addrs, Mechanism: MechQANT, PeriodMs: 50, MaxRetries: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	templates, err := ds.GenerateTemplates(4, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan Outcome, 20)
	for qi := 0; qi < 20; qi++ {
		go func(qi int) {
			tpl := templates[qi%len(templates)]
			done <- client.Run(int64(qi), tpl.Instantiate(rand.New(rand.NewSource(int64(qi)))))
		}(qi)
		time.Sleep(10 * time.Millisecond)
	}
	completed := 0
	for i := 0; i < 20; i++ {
		out := <-done
		if out.Err != nil {
			t.Errorf("query %d failed: %v", out.QueryID, out.Err)
			continue
		}
		completed++
	}
	if completed < 18 {
		t.Fatalf("only %d/20 completed", completed)
	}
	total := 0
	for _, n := range nodes {
		total += n.Executed()
	}
	if total != completed {
		t.Errorf("nodes executed %d, clients saw %d", total, completed)
	}
	// The market must have tracked prices for the discovered classes.
	st, err := client.Stats(addrs[0])
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if len(st.Prices) == 0 {
		t.Error("node 0 learned no query classes")
	}
}

func TestHistoryEstimatorConverges(t *testing.T) {
	ds, _, addrs := startTestFederation(t, []float64{1})
	client, err := NewClient(ClientConfig{Addrs: addrs, Mechanism: MechGreedy, PeriodMs: 50})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	templates, err := ds.GenerateTemplates(1, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	sql := templates[0].Instantiate(rng)
	// First negotiation: estimate comes from the plan cost.
	pr1, _, err := client.negotiateAll(sql, nil, time.Time{})
	if err != nil || pr1.best() == nil {
		t.Fatalf("negotiate: node=%v err=%v", pr1.best(), err)
	}
	if out := client.Run(1, sql); out.Err != nil {
		t.Fatalf("run: %v", out.Err)
	}
	// After an execution the estimate must come from history.
	var rep reply
	if err := client.rpc(addrs[0], &request{Op: "negotiate", SQL: sql, Mechanism: MechGreedy}, &rep, time.Second); err != nil {
		t.Fatal(err)
	}
	if rep.Negotiate == nil || !rep.Negotiate.FromCache {
		t.Error("estimate not served from execution history after a run")
	}
}

func TestLinkLatencySlowsNegotiation(t *testing.T) {
	db := sqldb.Open()
	if _, _, err := db.Exec("CREATE TABLE t (a INT)"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.Exec("INSERT INTO t VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	slow, err := StartNode("127.0.0.1:0", NodeConfig{
		DB: db, MsPerCostUnit: 0.01, PeriodMs: 50, LinkLatency: 60 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer slow.Close()
	client, err := NewClient(ClientConfig{Addrs: []string{slow.Addr()}, Mechanism: MechGreedy})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, _, err := client.negotiateAll("SELECT a FROM t", nil, time.Time{}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Errorf("wireless link latency not applied: negotiation took %v", elapsed)
	}
}

func TestNodeCloseIsClean(t *testing.T) {
	db := sqldb.Open()
	if _, _, err := db.Exec("CREATE TABLE t (a INT)"); err != nil {
		t.Fatal(err)
	}
	n, err := StartNode("127.0.0.1:0", NodeConfig{DB: db})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

func TestClientConfigValidation(t *testing.T) {
	if _, err := NewClient(ClientConfig{}); err == nil {
		t.Error("empty address list accepted")
	}
	c, err := NewClient(ClientConfig{Addrs: []string{"127.0.0.1:9"}})
	if err != nil {
		t.Fatal(err)
	}
	if c.cfg.Mechanism != MechGreedy || c.cfg.PeriodMs != 500 {
		t.Errorf("defaults not applied: %+v", c.cfg)
	}
}

func TestNodeConfigValidation(t *testing.T) {
	if _, err := StartNode("127.0.0.1:0", NodeConfig{}); err == nil {
		t.Error("nil DB accepted")
	}
}
