package cluster

import (
	"sync"
	"time"

	"github.com/qamarket/qamarket/internal/metrics"
)

// bidCache is the client's winning-bid cache: one negotiation round's
// ranked proposal ladder, kept per query class and reused to admit
// follow-up queries of the class straight to execute — the amortization
// that turns O(view) negotiate RPCs per query into O(1).
//
// Coherence rule: a cached bid is exactly as durable as the market
// state it priced. Each candidate is stamped with the bidder's gossiped
// market epoch at fill time; a lookup revalidates every stamp against
// the live view and the whole entry dies on the first mismatch — epoch
// bump (the bidder started a new pricing period), membership change
// (the bidder left the view), or the TTL (which covers static views
// that never learn epochs; set it to the market period). Execution-time
// staleness signals — a typed refusal, a lost supply race, a fatal
// error from a cached candidate — invalidate explicitly via the client.
type bidCache struct {
	ttl     time.Duration
	now     func() time.Time
	mu      sync.Mutex
	entries map[string]*bidEntry
}

// cachedBid is one rung of a cached ladder: the candidate and the
// market epoch it had gossiped when the proposal round ranked it.
type cachedBid struct {
	ns    *nodeState
	epoch uint64
}

type bidEntry struct {
	bids    []cachedBid
	expires time.Time
}

// newBidCache builds the cache. The clock is injectable (matching the
// trace recorder's explicit-clock pattern) so TTL expiry is testable
// deterministically; nil means the wall clock.
func newBidCache(ttl time.Duration, now func() time.Time) *bidCache {
	if now == nil {
		now = time.Now
	}
	return &bidCache{ttl: ttl, now: now, entries: make(map[string]*bidEntry)}
}

// put caches a fresh proposal round's ladder for the class, stamping
// each candidate's current epoch.
func (b *bidCache) put(class string, ranked []*nodeState) {
	bids := make([]cachedBid, len(ranked))
	for i, ns := range ranked {
		ns.mu.Lock()
		bids[i] = cachedBid{ns: ns, epoch: ns.epoch}
		ns.mu.Unlock()
	}
	b.mu.Lock()
	b.entries[class] = &bidEntry{bids: bids, expires: b.now().Add(b.ttl)}
	b.mu.Unlock()
}

// get returns the class's cached ladder when every stamp still holds
// under valid, nil otherwise. Any stale rung — or an expired TTL —
// invalidates the whole entry (reported via dropped): a partially stale
// ladder was ranked against prices that no longer exist.
func (b *bidCache) get(class string, valid func(ns *nodeState, epoch uint64) bool) (ranked []*nodeState, dropped bool) {
	b.mu.Lock()
	e := b.entries[class]
	b.mu.Unlock()
	if e == nil {
		return nil, false
	}
	if b.now().After(e.expires) {
		return nil, b.invalidate(class)
	}
	ranked = make([]*nodeState, len(e.bids))
	for i, cb := range e.bids {
		if !valid(cb.ns, cb.epoch) {
			return nil, b.invalidate(class)
		}
		ranked[i] = cb.ns
	}
	return ranked, false
}

// invalidate drops the class's entry, reporting whether one existed.
func (b *bidCache) invalidate(class string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.entries[class]; !ok {
		return false
	}
	delete(b.entries, class)
	return true
}

// bidStillValid is the client's stamp check: the candidate must still
// be in the view under its stable ID (the same state, not a namesake
// rejoiner) with its gossiped market epoch unchanged since the stamp.
func (c *Client) bidStillValid(ns *nodeState, epoch uint64) bool {
	ns.mu.Lock()
	id, cur := ns.id, ns.epoch
	ns.mu.Unlock()
	if cur != epoch {
		return false
	}
	c.viewMu.RLock()
	live, ok := c.view[id]
	c.viewMu.RUnlock()
	return ok && live == ns
}

// cachedLadder looks the class up in the bid cache (nil with the cache
// off or on a miss), counting hits and misses.
func (c *Client) cachedLadder(class string) []*nodeState {
	if c.bids == nil {
		return nil
	}
	ranked, dropped := c.bids.get(class, c.bidStillValid)
	if dropped {
		c.health.Inc(metrics.BidCacheInvalidationsTotal)
	}
	if ranked == nil {
		c.health.Inc(metrics.BidCacheMissesTotal)
		return nil
	}
	c.health.Inc(metrics.BidCacheHitsTotal)
	return ranked
}

// dropBids invalidates the class's cached ladder (no-op with the cache
// off). Typed refusals, lost supply races, and fatal errors from cached
// candidates all land here: each says the market moved under the cache.
func (c *Client) dropBids(class string) {
	if c.bids == nil {
		return
	}
	if c.bids.invalidate(class) {
		c.health.Inc(metrics.BidCacheInvalidationsTotal)
	}
}
