package cluster

import (
	"encoding/json"
	"math/rand"
	"testing"

	"github.com/qamarket/qamarket/internal/sqldb"
)

// hopFetchReply runs a fetch reply through a real JSON encode/decode,
// the way the transport delivers it.
func hopFetchReply(t *testing.T, fr *fetchReply) *fetchReply {
	t.Helper()
	b, err := json.Marshal(fr)
	if err != nil {
		t.Fatal(err)
	}
	out := new(fetchReply)
	if err := json.Unmarshal(b, out); err != nil {
		t.Fatal(err)
	}
	return out
}

func assertRowsEqual(t *testing.T, got, want []sqldb.Row) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("rows = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("row %d width = %d, want %d", i, len(got[i]), len(want[i]))
		}
		for j := range want[i] {
			if got[i][j].Kind != want[i][j].Kind || !sqldb.Equal(got[i][j], want[i][j]) {
				t.Fatalf("row %d col %d = %v, want %v", i, j, got[i][j], want[i][j])
			}
		}
	}
}

func TestCompactRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		res  *sqldb.Result
	}{
		{"empty result", &sqldb.Result{Columns: []string{"a", "b"}}},
		{"no columns", &sqldb.Result{}},
		{"all kinds", &sqldb.Result{
			Columns: []string{"i", "f", "s", "b", "n"},
			Rows: []sqldb.Row{
				{sqldb.NewInt(0), sqldb.NewFloat(0), sqldb.NewText(""), sqldb.NewBool(false), sqldb.Null},
				{sqldb.NewInt(-42), sqldb.NewFloat(-1.5), sqldb.NewText("x y"), sqldb.NewBool(true), sqldb.Null},
				{sqldb.NewInt(1 << 40), sqldb.NewFloat(3.14159), sqldb.NewText("ünïcode"), sqldb.NewBool(false), sqldb.Null},
			},
		}},
		{"mixed kinds in one column", &sqldb.Result{
			Columns: []string{"v"},
			Rows: []sqldb.Row{
				{sqldb.NewInt(1)}, {sqldb.Null}, {sqldb.NewText("t")},
				{sqldb.NewFloat(2.5)}, {sqldb.NewBool(true)}, {sqldb.Null},
			},
		}},
		// JSON numbers lose integer precision past 2^53 in the tagged
		// encoding's map[string]any decode path; the compact encoding's
		// typed []int64 must not.
		{"big ints", &sqldb.Result{
			Columns: []string{"v"},
			Rows:    []sqldb.Row{{sqldb.NewInt(1 << 60)}, {sqldb.NewInt(-(1<<60 + 1))}},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fr := &fetchReply{Accepted: true, Columns: tc.res.Columns, Cols: encodeCols(tc.res)}
			rows, err := hopFetchReply(t, fr).rows()
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			assertRowsEqual(t, rows, tc.res.Rows)
		})
	}
}

// TestCompactMatchesTagged is the property test: for random results of
// every kind mix, decode(encode(rows)) == rows under both encodings,
// and both agree with each other — through a real JSON hop.
func TestCompactMatchesTagged(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	randValue := func() sqldb.Value {
		switch rng.Intn(5) {
		case 0:
			return sqldb.Null
		case 1:
			return sqldb.NewInt(rng.Int63n(1<<50) - 1<<49)
		case 2:
			// NaN-free floats: the JSON transport cannot carry NaN.
			return sqldb.NewFloat((rng.Float64() - 0.5) * 1e6)
		case 3:
			letters := []byte("abcdefgh ")
			s := make([]byte, rng.Intn(8))
			for i := range s {
				s[i] = letters[rng.Intn(len(letters))]
			}
			return sqldb.NewText(string(s))
		default:
			return sqldb.NewBool(rng.Intn(2) == 0)
		}
	}
	for iter := 0; iter < 200; iter++ {
		cols := 1 + rng.Intn(5)
		res := &sqldb.Result{Columns: make([]string, cols)}
		for j := range res.Columns {
			res.Columns[j] = string(rune('a' + j))
		}
		for i := 0; i < rng.Intn(12); i++ {
			row := make(sqldb.Row, cols)
			for j := range row {
				row[j] = randValue()
			}
			res.Rows = append(res.Rows, row)
		}

		compact := hopFetchReply(t, &fetchReply{Columns: res.Columns, Cols: encodeCols(res)})
		compactRows, err := compact.rows()
		if err != nil {
			t.Fatalf("iter %d: compact decode: %v", iter, err)
		}
		assertRowsEqual(t, compactRows, res.Rows)

		tagged := hopFetchReply(t, &fetchReply{Columns: res.Columns, Rows: encodeRows(res)})
		taggedRows, err := tagged.rows()
		if err != nil {
			t.Fatalf("iter %d: tagged decode: %v", iter, err)
		}
		assertRowsEqual(t, taggedRows, res.Rows)
	}
}

func TestCompactRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		cols []wireColumn
	}{
		{"row count mismatch", []wireColumn{
			{Kinds: "ii", Ints: []int64{1, 2}},
			{Kinds: "i", Ints: []int64{3}},
		}},
		{"short int array", []wireColumn{{Kinds: "ii", Ints: []int64{1}}}},
		{"short float array", []wireColumn{{Kinds: "f"}}},
		{"short text array", []wireColumn{{Kinds: "ss", Texts: []string{"x"}}}},
		{"short bool array", []wireColumn{{Kinds: "b"}}},
		{"long typed array", []wireColumn{{Kinds: "i", Ints: []int64{1, 2}}}},
		{"unknown kind byte", []wireColumn{{Kinds: "z"}}},
		{"nulls with stray values", []wireColumn{{Kinds: "nn", Ints: []int64{7}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := decodeCols(tc.cols); err == nil {
				t.Fatalf("malformed columns accepted: %+v", tc.cols)
			}
		})
	}
}

// FuzzCompactCols hammers the decoder with arbitrary column payloads:
// it must either reject them or produce a rows slice consistent with
// the kind strings — never panic.
func FuzzCompactCols(f *testing.F) {
	f.Add("ii", []byte(`[1,2]`), "ff")
	f.Add("nsb", []byte(`[]`), "")
	f.Add("z", []byte(`[1]`), "i")
	f.Fuzz(func(t *testing.T, kinds1 string, intsJSON []byte, kinds2 string) {
		var ints []int64
		_ = json.Unmarshal(intsJSON, &ints)
		cols := []wireColumn{
			{Kinds: kinds1, Ints: ints, Floats: []float64{1.5}, Texts: []string{"t"}, Bools: []bool{true}},
			{Kinds: kinds2},
		}
		rows, err := decodeCols(cols)
		if err != nil {
			return
		}
		if len(rows) != len(kinds1) {
			t.Fatalf("decoded %d rows from %d kind bytes", len(rows), len(kinds1))
		}
	})
}
