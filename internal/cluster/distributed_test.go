package cluster

import (
	"encoding/json"
	"testing"
	"time"

	"github.com/qamarket/qamarket/internal/sqldb"
)

// splitFederation builds two nodes with disjoint tables so a join
// across them is evaluable nowhere as a whole.
func splitFederation(t *testing.T, mech Mechanism) (*Client, []*Node) {
	t.Helper()
	mk := func(ddl ...string) *sqldb.DB {
		db := sqldb.Open()
		for _, q := range ddl {
			if _, _, err := db.Exec(q); err != nil {
				t.Fatalf("seed %q: %v", q, err)
			}
		}
		return db
	}
	dbA := mk(
		"CREATE TABLE orders (id INT, cust INT, amount FLOAT)",
		"INSERT INTO orders VALUES (1, 10, 5.0), (2, 10, 7.5), (3, 20, 1.0), (4, 30, 9.0)",
	)
	dbB := mk(
		"CREATE TABLE customers (id INT, name TEXT, vip BOOL)",
		"INSERT INTO customers VALUES (10, 'ada', TRUE), (20, 'bob', FALSE), (30, 'cyd', TRUE)",
	)
	var nodes []*Node
	var addrs []string
	for _, db := range []*sqldb.DB{dbA, dbB} {
		n, err := StartNode("127.0.0.1:0", NodeConfig{DB: db, MsPerCostUnit: 0.01, PeriodMs: 50})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { n.Close() })
		nodes = append(nodes, n)
		addrs = append(addrs, n.Addr())
	}
	client, err := NewClient(ClientConfig{Addrs: addrs, Mechanism: mech, PeriodMs: 50, Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	return client, nodes
}

func TestDistributedJoinAcrossNodes(t *testing.T) {
	client, _ := splitFederation(t, MechGreedy)
	d := NewDistributor(client)
	sql := `SELECT customers.name, SUM(orders.amount) AS total
		FROM orders JOIN customers ON orders.cust = customers.id
		WHERE customers.vip = TRUE AND orders.amount > 2.0
		GROUP BY customers.name ORDER BY customers.name`
	out, err := d.Run(1, sql)
	if err != nil {
		t.Fatalf("distributed run: %v", err)
	}
	if out.Subqueries != 2 {
		t.Errorf("subqueries = %d, want 2 (one per node)", out.Subqueries)
	}
	if len(out.PerNode) != 2 {
		t.Errorf("fragments from %d nodes, want 2", len(out.PerNode))
	}
	// Reference result computed on a single database holding everything.
	ref := sqldb.Open()
	for _, q := range []string{
		"CREATE TABLE orders (id INT, cust INT, amount FLOAT)",
		"INSERT INTO orders VALUES (1, 10, 5.0), (2, 10, 7.5), (3, 20, 1.0), (4, 30, 9.0)",
		"CREATE TABLE customers (id INT, name TEXT, vip BOOL)",
		"INSERT INTO customers VALUES (10, 'ada', TRUE), (20, 'bob', FALSE), (30, 'cyd', TRUE)",
	} {
		if _, _, err := ref.Exec(q); err != nil {
			t.Fatal(err)
		}
	}
	want, err := ref.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, out.Result, want)
}

func assertSameResult(t *testing.T, got, want *sqldb.Result) {
	t.Helper()
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("rows = %d, want %d (%v vs %v)", len(got.Rows), len(want.Rows), got.Rows, want.Rows)
	}
	for i := range want.Rows {
		for j := range want.Rows[i] {
			if !sqldb.Equal(got.Rows[i][j], want.Rows[i][j]) {
				t.Errorf("row %d col %d: %v != %v", i, j, got.Rows[i][j], want.Rows[i][j])
			}
		}
	}
}

func TestDistributedPredicatePushdownShrinksFragments(t *testing.T) {
	client, _ := splitFederation(t, MechGreedy)
	d := NewDistributor(client)
	// Only 1 of 4 orders survives the pushed predicate.
	out, err := d.Run(2, `SELECT orders.id FROM orders
		JOIN customers ON orders.cust = customers.id
		WHERE orders.amount > 8.0`)
	if err != nil {
		t.Fatal(err)
	}
	// Fragments: orders (1 row after pushdown) + customers (3 rows).
	if out.FragmentRows != 4 {
		t.Errorf("fragment rows = %d, want 4 (pushdown failed?)", out.FragmentRows)
	}
	if len(out.Result.Rows) != 1 || out.Result.Rows[0][0].Int != 4 {
		t.Errorf("result = %v, want order 4", out.Result.Rows)
	}
}

func TestDistributedFastPathSingleNode(t *testing.T) {
	client, nodes := splitFederation(t, MechGreedy)
	d := NewDistributor(client)
	// orders lives wholly on node 0: no decomposition needed.
	out, err := d.Run(3, "SELECT COUNT(*) FROM orders")
	if err != nil {
		t.Fatal(err)
	}
	if out.Subqueries != 1 {
		t.Errorf("subqueries = %d, want 1 (fast path)", out.Subqueries)
	}
	if out.Result.Rows[0][0].Int != 4 {
		t.Errorf("count = %v, want 4", out.Result.Rows[0][0])
	}
	if nodes[0].Executed() == 0 {
		t.Error("node 0 executed nothing")
	}
}

func TestDistributedUnderQANT(t *testing.T) {
	client, _ := splitFederation(t, MechQANT)
	d := NewDistributor(client)
	// The market gates subquery admission; with idle nodes everything
	// must eventually be served.
	for i := 0; i < 4; i++ {
		out, err := d.Run(int64(10+i), `SELECT customers.name FROM orders
			JOIN customers ON orders.cust = customers.id WHERE orders.id = 1`)
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if len(out.Result.Rows) != 1 || out.Result.Rows[0][0].Str != "ada" {
			t.Errorf("run %d result = %v", i, out.Result.Rows)
		}
	}
}

func TestDistributedRejectsNonSelect(t *testing.T) {
	client, _ := splitFederation(t, MechGreedy)
	d := NewDistributor(client)
	if _, err := d.Run(1, "INSERT INTO orders VALUES (9, 9, 9.0)"); err == nil {
		t.Error("non-SELECT accepted")
	}
	if _, err := d.Run(1, "SELECT * FROM nowhere JOIN customers ON nowhere.id = customers.id"); err == nil {
		t.Error("unknown relation accepted")
	}
}

func TestWireRoundTrip(t *testing.T) {
	vals := []sqldb.Value{
		sqldb.Null,
		sqldb.NewInt(0),
		sqldb.NewInt(-42),
		sqldb.NewInt(1 << 40),
		sqldb.NewFloat(3.25),
		sqldb.NewFloat(-0.5),
		sqldb.NewText(""),
		sqldb.NewText("it's"),
		sqldb.NewBool(true),
		sqldb.NewBool(false),
	}
	for _, v := range vals {
		// Simulate the JSON hop: marshal the wire form and decode it as
		// generic JSON the way the receiver sees it.
		got, err := fromWire(jsonHop(t, toWire(v)))
		if err != nil {
			t.Fatalf("fromWire(%v): %v", v, err)
		}
		if got.Kind != v.Kind || !sqldb.Equal(got, v) {
			t.Errorf("round trip %v -> %v", v, got)
		}
	}
	if _, err := fromWire("naked string"); err == nil {
		t.Error("malformed wire value accepted")
	}
	if _, err := fromWire(map[string]any{"z": 1.0}); err == nil {
		t.Error("unknown wire kind accepted")
	}
	if _, err := fromWire(map[string]any{"i": 1.5}); err == nil {
		t.Error("fractional wire int accepted")
	}
}

func jsonHop(t *testing.T, v any) any {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	var out any
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestFragmentTypeInference(t *testing.T) {
	db := sqldb.Open()
	rows := []sqldb.Row{
		{sqldb.Null, sqldb.NewFloat(1.5), sqldb.NewText("x"), sqldb.NewBool(true)},
		{sqldb.NewInt(2), sqldb.Null, sqldb.Null, sqldb.Null},
	}
	var blk ColBlock
	blk.FillFromRows([]string{"a", "b", "c", "d"}, rows)
	var loader fragmentLoader
	loader.reset()
	if err := loader.add(&blk); err != nil {
		t.Fatalf("loader.add: %v", err)
	}
	if err := loader.load(db, "frag"); err != nil {
		t.Fatalf("loader.load: %v", err)
	}
	res, err := db.Query("SELECT a, b, c, d FROM frag WHERE a IS NOT NULL")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int != 2 {
		t.Errorf("fragment rows = %v", res.Rows)
	}
	// Empty fragments still create the table: the columns arrive via the
	// fetch envelope when no block carried any.
	loader.reset()
	loader.ensureColumns([]string{"a"})
	if err := loader.load(db, "empty"); err != nil {
		t.Fatal(err)
	}
	if !db.HasRelation("empty") {
		t.Error("empty fragment table missing")
	}
	// A loader is reused across fragments; a reset must fully clear the
	// partial text a severed stream left behind.
	loader.reset()
	blk.FillFromRows([]string{"a"}, []sqldb.Row{{sqldb.NewInt(7)}})
	if err := loader.add(&blk); err != nil {
		t.Fatal(err)
	}
	loader.reset()
	blk.FillFromRows([]string{"a"}, []sqldb.Row{{sqldb.NewInt(9)}})
	if err := loader.add(&blk); err != nil {
		t.Fatal(err)
	}
	if err := loader.load(db, "retried"); err != nil {
		t.Fatal(err)
	}
	res, err = db.Query("SELECT a FROM retried")
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0].Int != 9 {
		t.Fatalf("retried fragment = %v (err %v), want one row 9", res, err)
	}
}

// TestScratchPoolReuse pins the distributed layer's scratch-database
// pooling: a returned database comes back reset (no relation leaks into
// the next query's join), and the steady-state get/put cycle stays
// allocation-free instead of paying a fresh sqldb.Open per query.
func TestScratchPoolReuse(t *testing.T) {
	db := getScratch()
	if _, _, err := db.Exec("CREATE TABLE leak (a INT)"); err != nil {
		t.Fatal(err)
	}
	putScratch(db)
	got := getScratch()
	defer putScratch(got)
	if got.HasRelation("leak") {
		t.Fatal("scratch database returned to the pool still holds relations")
	}
	if raceEnabled {
		// sync.Pool deliberately bypasses itself at random under the race
		// detector, so pooled allocation counts are nondeterministic there.
		return
	}
	allocs := testing.AllocsPerRun(100, func() {
		putScratch(getScratch())
	})
	if allocs > 2 {
		t.Fatalf("scratch get/put costs %.0f allocs/op; pooling should make it ~free", allocs)
	}
}

func TestSplitConjuncts(t *testing.T) {
	stmt, err := sqldb.Parse(`SELECT a.x FROM t AS a JOIN u AS b ON a.k = b.k
		WHERE a.x > 1 AND b.y < 2 AND a.z + b.w = 3`)
	if err != nil {
		t.Fatal(err)
	}
	sel := stmt.(*sqldb.SelectStmt)
	pushed, residual := splitConjuncts(sel)
	if len(pushed[0]) != 1 || pushed[0][0].String() != "(a.x > 1)" {
		t.Errorf("pushed[a] = %v", exprStrings(pushed[0]))
	}
	if len(pushed[1]) != 1 || pushed[1][0].String() != "(b.y < 2)" {
		t.Errorf("pushed[b] = %v", exprStrings(pushed[1]))
	}
	if len(residual) != 1 {
		t.Errorf("residual = %v", exprStrings(residual))
	}
}

func exprStrings(es []sqldb.Expr) []string {
	out := make([]string, len(es))
	for i, e := range es {
		out[i] = e.String()
	}
	return out
}
