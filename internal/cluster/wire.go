package cluster

import (
	"fmt"
	"math"

	"github.com/qamarket/qamarket/internal/sqldb"
)

// Wire encoding of sqldb values for fetch replies. JSON alone cannot
// distinguish int64 from float64 or NULL from false, so every non-null
// value travels as a single-key object tagging its kind:
//
//	nil            -> NULL
//	{"i": 5}       -> INT
//	{"f": 1.5}     -> FLOAT
//	{"s": "x"}     -> TEXT
//	{"b": true}    -> BOOL

// toWire encodes one value.
func toWire(v sqldb.Value) any {
	switch v.Kind {
	case sqldb.KindNull:
		return nil
	case sqldb.KindInt:
		return map[string]any{"i": v.Int}
	case sqldb.KindFloat:
		return map[string]any{"f": v.Float}
	case sqldb.KindText:
		return map[string]any{"s": v.Str}
	case sqldb.KindBool:
		return map[string]any{"b": v.Bool}
	default:
		return nil
	}
}

// fromWire decodes one value. JSON numbers arrive as float64; integers
// round-trip exactly up to 2^53, far beyond the synthetic datasets.
func fromWire(raw any) (sqldb.Value, error) {
	if raw == nil {
		return sqldb.Null, nil
	}
	m, ok := raw.(map[string]any)
	if !ok || len(m) != 1 {
		return sqldb.Null, fmt.Errorf("cluster: malformed wire value %v", raw)
	}
	for k, v := range m {
		switch k {
		case "i":
			f, ok := v.(float64)
			if !ok || f != math.Trunc(f) {
				return sqldb.Null, fmt.Errorf("cluster: malformed wire int %v", v)
			}
			return sqldb.NewInt(int64(f)), nil
		case "f":
			f, ok := v.(float64)
			if !ok {
				return sqldb.Null, fmt.Errorf("cluster: malformed wire float %v", v)
			}
			return sqldb.NewFloat(f), nil
		case "s":
			s, ok := v.(string)
			if !ok {
				return sqldb.Null, fmt.Errorf("cluster: malformed wire string %v", v)
			}
			return sqldb.NewText(s), nil
		case "b":
			b, ok := v.(bool)
			if !ok {
				return sqldb.Null, fmt.Errorf("cluster: malformed wire bool %v", v)
			}
			return sqldb.NewBool(b), nil
		}
	}
	return sqldb.Null, fmt.Errorf("cluster: unknown wire kind in %v", raw)
}

// encodeRows converts a result to wire rows.
func encodeRows(res *sqldb.Result) [][]any {
	out := make([][]any, len(res.Rows))
	for i, row := range res.Rows {
		wr := make([]any, len(row))
		for j, v := range row {
			wr[j] = toWire(v)
		}
		out[i] = wr
	}
	return out
}

// decodeRows converts wire rows back to values.
func decodeRows(raw [][]any) ([]sqldb.Row, error) {
	out := make([]sqldb.Row, len(raw))
	for i, wr := range raw {
		row := make(sqldb.Row, len(wr))
		for j, rv := range wr {
			v, err := fromWire(rv)
			if err != nil {
				return nil, fmt.Errorf("row %d col %d: %w", i, j, err)
			}
			row[j] = v
		}
		out[i] = row
	}
	return out, nil
}

// Compact columnar encoding (encCompact). Instead of one tagged map per
// cell, each column ships a kind string (one byte per row: 'n' null,
// 'i' int, 'f' float, 's' text, 'b' bool) plus typed arrays holding the
// non-null values of that type in row order. Decoding allocates O(cols)
// slices instead of O(rows×cols) maps, and int64s ride a typed []int64
// field so they round-trip exactly (no float64 2^53 ceiling).

// Column kind bytes used in wireColumn.Kinds.
const (
	kindByteNull  = 'n'
	kindByteInt   = 'i'
	kindByteFloat = 'f'
	kindByteText  = 's'
	kindByteBool  = 'b'
)

// wireColumn is one column of an encCompact fetch reply.
type wireColumn struct {
	Kinds  string    `json:"k"` // one kind byte per row
	Ints   []int64   `json:"i,omitempty"`
	Floats []float64 `json:"f,omitempty"`
	Texts  []string  `json:"s,omitempty"`
	Bools  []bool    `json:"b,omitempty"`
}

// encodeCols converts a result to compact columns.
func encodeCols(res *sqldb.Result) []wireColumn {
	if len(res.Columns) == 0 {
		return nil
	}
	cols := make([]wireColumn, len(res.Columns))
	kinds := make([]byte, len(res.Rows))
	for j := range cols {
		c := &cols[j]
		for i, row := range res.Rows {
			v := row[j]
			switch v.Kind {
			case sqldb.KindInt:
				kinds[i] = kindByteInt
				c.Ints = append(c.Ints, v.Int)
			case sqldb.KindFloat:
				kinds[i] = kindByteFloat
				c.Floats = append(c.Floats, v.Float)
			case sqldb.KindText:
				kinds[i] = kindByteText
				c.Texts = append(c.Texts, v.Str)
			case sqldb.KindBool:
				kinds[i] = kindByteBool
				c.Bools = append(c.Bools, v.Bool)
			default:
				kinds[i] = kindByteNull
			}
		}
		c.Kinds = string(kinds)
	}
	return cols
}

// encodeColsBlock converts a driver block to compact columns. The
// block already holds exactly this layout, so encoding is a per-column
// kind-string conversion plus typed-array aliasing — no row walk.
func encodeColsBlock(blk *ColBlock) []wireColumn {
	if len(blk.Columns) == 0 {
		return nil
	}
	cols := make([]wireColumn, len(blk.Cols))
	for j := range cols {
		c := &blk.Cols[j]
		cols[j] = wireColumn{
			Kinds:  string(c.Kinds),
			Ints:   c.Ints,
			Floats: c.Floats,
			Texts:  c.Texts,
			Bools:  c.Bools,
		}
	}
	return cols
}

// encodeRowsBlock converts a driver block to legacy tagged wire rows,
// for clients that predate encCompact.
func encodeRowsBlock(blk *ColBlock) ([][]any, error) {
	rows, err := blk.AppendRows(nil)
	if err != nil {
		return nil, err
	}
	out := make([][]any, len(rows))
	for i, row := range rows {
		wr := make([]any, len(row))
		for j, v := range row {
			wr[j] = toWire(v)
		}
		out[i] = wr
	}
	return out, nil
}

// decodeCols converts compact columns back to rows, validating that
// every column agrees on the row count and that each typed array holds
// exactly as many values as its kind string promises.
func decodeCols(cols []wireColumn) ([]sqldb.Row, error) {
	if len(cols) == 0 {
		return nil, nil
	}
	nRows := len(cols[0].Kinds)
	for j := range cols {
		if len(cols[j].Kinds) != nRows {
			return nil, fmt.Errorf("cluster: column %d has %d rows, column 0 has %d",
				j, len(cols[j].Kinds), nRows)
		}
	}
	rows := make([]sqldb.Row, nRows)
	cells := make([]sqldb.Value, nRows*len(cols))
	for i := range rows {
		rows[i], cells = cells[:len(cols):len(cols)], cells[len(cols):]
	}
	for j := range cols {
		c := &cols[j]
		var ni, nf, ns, nb int
		for i := 0; i < nRows; i++ {
			switch c.Kinds[i] {
			case kindByteNull:
				rows[i][j] = sqldb.Null
			case kindByteInt:
				if ni >= len(c.Ints) {
					return nil, fmt.Errorf("cluster: column %d short int array", j)
				}
				rows[i][j] = sqldb.NewInt(c.Ints[ni])
				ni++
			case kindByteFloat:
				if nf >= len(c.Floats) {
					return nil, fmt.Errorf("cluster: column %d short float array", j)
				}
				rows[i][j] = sqldb.NewFloat(c.Floats[nf])
				nf++
			case kindByteText:
				if ns >= len(c.Texts) {
					return nil, fmt.Errorf("cluster: column %d short text array", j)
				}
				rows[i][j] = sqldb.NewText(c.Texts[ns])
				ns++
			case kindByteBool:
				if nb >= len(c.Bools) {
					return nil, fmt.Errorf("cluster: column %d short bool array", j)
				}
				rows[i][j] = sqldb.NewBool(c.Bools[nb])
				nb++
			default:
				return nil, fmt.Errorf("cluster: column %d row %d unknown kind byte %q",
					j, i, c.Kinds[i])
			}
		}
		if ni != len(c.Ints) || nf != len(c.Floats) || ns != len(c.Texts) || nb != len(c.Bools) {
			return nil, fmt.Errorf("cluster: column %d typed arrays longer than kind string", j)
		}
	}
	return rows, nil
}

// rows decodes a fetch reply's payload regardless of which encoding the
// server chose: Cols (encCompact) wins when present, otherwise the
// legacy tagged Rows. An old server that ignored the Enc field simply
// never sets Cols, so mixed-version federations keep working.
func (fr *fetchReply) rows() ([]sqldb.Row, error) {
	if fr.streamed {
		return fr.decoded, nil
	}
	if fr.Cols != nil {
		return decodeCols(fr.Cols)
	}
	return decodeRows(fr.Rows)
}
