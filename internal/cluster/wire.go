package cluster

import (
	"fmt"
	"math"

	"github.com/qamarket/qamarket/internal/sqldb"
)

// Wire encoding of sqldb values for fetch replies. JSON alone cannot
// distinguish int64 from float64 or NULL from false, so every non-null
// value travels as a single-key object tagging its kind:
//
//	nil            -> NULL
//	{"i": 5}       -> INT
//	{"f": 1.5}     -> FLOAT
//	{"s": "x"}     -> TEXT
//	{"b": true}    -> BOOL

// toWire encodes one value.
func toWire(v sqldb.Value) any {
	switch v.Kind {
	case sqldb.KindNull:
		return nil
	case sqldb.KindInt:
		return map[string]any{"i": v.Int}
	case sqldb.KindFloat:
		return map[string]any{"f": v.Float}
	case sqldb.KindText:
		return map[string]any{"s": v.Str}
	case sqldb.KindBool:
		return map[string]any{"b": v.Bool}
	default:
		return nil
	}
}

// fromWire decodes one value. JSON numbers arrive as float64; integers
// round-trip exactly up to 2^53, far beyond the synthetic datasets.
func fromWire(raw any) (sqldb.Value, error) {
	if raw == nil {
		return sqldb.Null, nil
	}
	m, ok := raw.(map[string]any)
	if !ok || len(m) != 1 {
		return sqldb.Null, fmt.Errorf("cluster: malformed wire value %v", raw)
	}
	for k, v := range m {
		switch k {
		case "i":
			f, ok := v.(float64)
			if !ok || f != math.Trunc(f) {
				return sqldb.Null, fmt.Errorf("cluster: malformed wire int %v", v)
			}
			return sqldb.NewInt(int64(f)), nil
		case "f":
			f, ok := v.(float64)
			if !ok {
				return sqldb.Null, fmt.Errorf("cluster: malformed wire float %v", v)
			}
			return sqldb.NewFloat(f), nil
		case "s":
			s, ok := v.(string)
			if !ok {
				return sqldb.Null, fmt.Errorf("cluster: malformed wire string %v", v)
			}
			return sqldb.NewText(s), nil
		case "b":
			b, ok := v.(bool)
			if !ok {
				return sqldb.Null, fmt.Errorf("cluster: malformed wire bool %v", v)
			}
			return sqldb.NewBool(b), nil
		}
	}
	return sqldb.Null, fmt.Errorf("cluster: unknown wire kind in %v", raw)
}

// encodeRows converts a result to wire rows.
func encodeRows(res *sqldb.Result) [][]any {
	out := make([][]any, len(res.Rows))
	for i, row := range res.Rows {
		wr := make([]any, len(row))
		for j, v := range row {
			wr[j] = toWire(v)
		}
		out[i] = wr
	}
	return out
}

// decodeRows converts wire rows back to values.
func decodeRows(raw [][]any) ([]sqldb.Row, error) {
	out := make([]sqldb.Row, len(raw))
	for i, wr := range raw {
		row := make(sqldb.Row, len(wr))
		for j, rv := range wr {
			v, err := fromWire(rv)
			if err != nil {
				return nil, fmt.Errorf("row %d col %d: %w", i, j, err)
			}
			row[j] = v
		}
		out[i] = row
	}
	return out, nil
}
