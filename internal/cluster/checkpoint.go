package cluster

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// WriteFileAtomic writes data to path via a temp file in the same
// directory plus a rename, so a crash mid-write can never leave a torn
// checkpoint behind: readers see either the old file or the new one.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return fmt.Errorf("cluster: checkpoint temp file: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("cluster: writing checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("cluster: syncing checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("cluster: closing checkpoint: %w", err)
	}
	if err := os.Chmod(tmpName, perm); err != nil {
		return fmt.Errorf("cluster: checkpoint permissions: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("cluster: publishing checkpoint: %w", err)
	}
	return nil
}

// RestoreNodeFromCheckpoint loads the market-state checkpoint at path
// into the node. A missing file is a clean first boot, reported as
// (false, nil); a present-but-invalid file is an error, because
// silently discarding a learned price table defeats the point of
// checkpointing.
func RestoreNodeFromCheckpoint(n *Node, path string) (bool, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("cluster: reading checkpoint %s: %w", path, err)
	}
	if err := n.RestoreMarketState(data); err != nil {
		return false, fmt.Errorf("cluster: checkpoint %s: %w", path, err)
	}
	return true, nil
}

// Checkpointer periodically persists a node's market state so a
// restarted node resumes its learned price table instead of relearning
// demand from scratch. Writes are atomic (temp + rename).
type Checkpointer struct {
	node  *Node
	path  string
	every time.Duration
	logf  func(format string, args ...any)

	stopCh   chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// StartCheckpointer begins checkpointing the node's market state to
// path every interval. Stop writes one final checkpoint.
func StartCheckpointer(n *Node, path string, every time.Duration) (*Checkpointer, error) {
	if path == "" {
		return nil, errors.New("cluster: empty checkpoint path")
	}
	if every <= 0 {
		return nil, fmt.Errorf("cluster: checkpoint interval %v not positive", every)
	}
	c := &Checkpointer{
		node:   n,
		path:   path,
		every:  every,
		logf:   n.cfg.Logf,
		stopCh: make(chan struct{}),
		done:   make(chan struct{}),
	}
	go c.loop()
	return c, nil
}

func (c *Checkpointer) loop() {
	defer close(c.done)
	t := time.NewTicker(c.every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if err := c.Checkpoint(); err != nil {
				// Keep serving; a missed checkpoint only widens the
				// recovery gap, visible as checkpoint_age_ms in stats.
				c.logf("cluster: checkpoint: %v", err)
			}
		case <-c.stopCh:
			return
		}
	}
}

// Checkpoint captures and writes the node's market state once.
func (c *Checkpointer) Checkpoint() error {
	data, err := c.node.MarketState()
	if err != nil {
		return err
	}
	if err := WriteFileAtomic(c.path, data, 0o644); err != nil {
		return err
	}
	c.node.noteCheckpoint()
	return nil
}

// Stop halts the periodic loop and writes a final checkpoint, capturing
// whatever the node learned up to (and during) its drain. Safe to call
// after the node is closed: market state stays readable.
func (c *Checkpointer) Stop() error {
	c.stopOnce.Do(func() { close(c.stopCh) })
	<-c.done
	return c.Checkpoint()
}
