package cluster

import (
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/qamarket/qamarket/internal/sqldb"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal(msg)
}

// startGossipNode is startTestFederation's membership-aware sibling:
// explicit node ID, join seeds, and a compressed gossip clock.
func startGossipNode(t *testing.T, db *sqldb.DB, id string, seeds []string, slowdown float64) *Node {
	t.Helper()
	n, err := StartNode("127.0.0.1:0", NodeConfig{
		DB:                 db,
		Slowdown:           slowdown,
		MsPerCostUnit:      0.01,
		PeriodMs:           25,
		NodeID:             id,
		Seeds:              seeds,
		GossipPeriodMs:     15,
		SuspectAfterRounds: 3,
		EvictAfterRounds:   3,
		MembershipSeed:     int64(len(id)) + int64(id[len(id)-1]),
	})
	if err != nil {
		t.Fatalf("node %s: %v", id, err)
	}
	t.Cleanup(func() { n.Close() })
	return n
}

// liveIDs snapshots the IDs a node currently lists as live.
func liveIDs(n *Node) map[string]bool {
	out := make(map[string]bool)
	for _, m := range n.Members() {
		if m.State.Live() {
			out[m.ID] = true
		}
	}
	return out
}

// clientHasLive reports whether the client's view holds the member in a
// live gossiped state.
func clientHasLive(c *Client, id string) bool {
	for _, m := range c.Members() {
		if m.ID == id && (m.State == "alive" || m.State == "suspect") {
			return true
		}
	}
	return false
}

func clientHas(c *Client, id string) bool {
	for _, m := range c.Members() {
		if m.ID == id {
			return true
		}
	}
	return false
}

// TestChurnJoinAndEviction is the end-to-end acceptance scenario: a
// client seeded with a single address discovers a 3-node federation
// through gossip, a 4th (faster) node joins live and starts receiving
// allocations with no client restart, and a crashed node is suspected,
// evicted, and pruned from the client's view within bounded gossip
// rounds.
func TestChurnJoinAndEviction(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	ds, err := GenerateDataset(DatasetParams{
		Nodes: 4, Tables: 6, Views: 10, RowsPerTable: 60,
		MinCopies: 3, MaxCopies: 4,
	}, rng)
	if err != nil {
		t.Fatalf("dataset: %v", err)
	}

	// Founding members: n0 starts a federation of one, n1 and n2 join it.
	n0 := startGossipNode(t, ds.DBs[0], "n0", nil, 4)
	n1 := startGossipNode(t, ds.DBs[1], "n1", []string{n0.Addr()}, 4)
	n2 := startGossipNode(t, ds.DBs[2], "n2", []string{n0.Addr()}, 4)
	waitFor(t, 5*time.Second, func() bool {
		ids := liveIDs(n0)
		return ids["n0"] && ids["n1"] && ids["n2"]
	}, "founding members never converged on n0's table")

	// The client knows one seed address; gossip must hand it the rest.
	client, err := NewClient(ClientConfig{
		Addrs:       []string{n0.Addr()},
		Mechanism:   MechGreedy,
		PeriodMs:    25,
		MaxRetries:  50,
		Timeout:     2 * time.Second,
		ViewRefresh: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	waitFor(t, 5*time.Second, func() bool {
		return clientHasLive(client, "n1") && clientHasLive(client, "n2")
	}, "client never discovered n1/n2 from its single seed")

	templates, err := ds.GenerateTemplates(4, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	for qi := 0; qi < 6; qi++ {
		if out := client.Run(int64(qi), templates[qi%len(templates)].Instantiate(rng)); out.Err != nil {
			t.Fatalf("pre-join query %d: %v", qi, out.Err)
		}
	}

	// Elastic entry: a faster node joins the live market. The client must
	// pick it up and start routing work to it without a restart.
	n3 := startGossipNode(t, ds.DBs[3], "n3", []string{n0.Addr()}, 1)
	waitFor(t, 5*time.Second, func() bool { return clientHasLive(client, "n3") },
		"client never discovered the late joiner n3")
	for _, m := range client.Members() {
		if m.ID == "n3" && m.CatalogDigest == "" {
			t.Error("joiner's catalog digest not gossiped to the client")
		}
	}
	joinerHits := 0
	for qi := 100; qi < 120; qi++ {
		out := client.Run(int64(qi), templates[qi%len(templates)].Instantiate(rng))
		if out.Err != nil {
			t.Fatalf("post-join query %d: %v", qi, out.Err)
		}
		if out.Node == "n3" {
			joinerHits++
		}
	}
	if joinerHits == 0 {
		t.Error("the fast late joiner received no allocations")
	}
	t.Logf("late joiner n3 took %d/20 post-join queries", joinerHits)

	// Crash (no drain, no goodbye): the failure detector must suspect
	// and evict n1, and the client view must follow.
	n1.CloseNow()
	waitFor(t, 10*time.Second, func() bool { return !liveIDs(n0)["n1"] },
		"crashed n1 never evicted from n0's table")
	waitFor(t, 10*time.Second, func() bool { return !clientHas(client, "n1") },
		"crashed n1 never pruned from the client view")

	// The surviving market keeps serving, and nothing lands on the corpse.
	completed := 0
	for qi := 200; qi < 212; qi++ {
		out := client.Run(int64(qi), templates[qi%len(templates)].Instantiate(rng))
		if out.Err != nil {
			continue // relations hosted only on n1 fail legitimately
		}
		if out.Node == "n1" {
			t.Errorf("query %d allocated to the evicted node", qi)
		}
		completed++
	}
	if completed < 8 {
		t.Errorf("only %d/12 queries completed after eviction", completed)
	}
	_ = n2
	_ = n3
}

// TestGracefulLeavePrunesBeforeEviction: a drained departure announces
// itself, so peers mark the node left (not merely suspect) and a
// dynamic client prunes it ahead of the failure detector's timeout.
func TestGracefulLeavePrunesBeforeEviction(t *testing.T) {
	db := sqldb.Open()
	if _, _, err := db.Exec("CREATE TABLE t (a INT)"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.Exec("INSERT INTO t VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	n0 := startGossipNode(t, db, "g0", nil, 1)
	n1 := startGossipNode(t, db, "g1", []string{n0.Addr()}, 1)
	waitFor(t, 5*time.Second, func() bool { return liveIDs(n0)["g1"] },
		"g1 never joined")

	client, err := NewClient(ClientConfig{
		Addrs:       []string{n0.Addr()},
		PeriodMs:    25,
		Timeout:     2 * time.Second,
		ViewRefresh: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	waitFor(t, 5*time.Second, func() bool { return clientHasLive(client, "g1") },
		"client never saw g1")

	// Graceful leave: the goodbye gossip must mark g1 left on g0 without
	// waiting for suspicion, and the client view follows.
	if err := n1.Close(); err != nil {
		t.Fatal(err)
	}
	var leftSeen atomic.Bool
	waitFor(t, 5*time.Second, func() bool {
		for _, m := range n0.Members() {
			if m.ID == "g1" {
				if m.State.String() == "left" {
					leftSeen.Store(true)
				}
				return leftSeen.Load()
			}
		}
		return leftSeen.Load() // tombstone may already have expired
	}, "g0 never learned g1's goodbye")
	waitFor(t, 5*time.Second, func() bool { return !clientHas(client, "g1") },
		"client never pruned the departed g1")
}

// TestDistributorRetriesAcrossDeparture is the satellite's regression:
// a subquery's winning node departs between negotiation and fetch; the
// Distributor must renegotiate on the surviving view and complete.
func TestDistributorRetriesAcrossDeparture(t *testing.T) {
	seed := func(stmts ...string) *sqldb.DB {
		db := sqldb.Open()
		for _, s := range stmts {
			if _, _, err := db.Exec(s); err != nil {
				t.Fatalf("%s: %v", s, err)
			}
		}
		return db
	}
	ordersA := seed(
		"CREATE TABLE orders (id INT, cust INT, amount FLOAT)",
		"INSERT INTO orders VALUES (1, 10, 25.0), (2, 20, 14.5), (3, 10, 99.0)",
	)
	ordersB := seed(
		"CREATE TABLE orders (id INT, cust INT, amount FLOAT)",
		"INSERT INTO orders VALUES (1, 10, 25.0), (2, 20, 14.5), (3, 10, 99.0)",
	)
	customers := seed(
		"CREATE TABLE customers (id INT, name TEXT)",
		"INSERT INTO customers VALUES (10, 'ada'), (20, 'bob')",
	)

	// Disjoint placement: no node holds both relations, so the full join
	// always decomposes (no fast path to mask the failure window).
	nodes := make([]*Node, 3)
	addrs := make([]string, 3)
	for i, db := range []*sqldb.DB{ordersA, ordersB, customers} {
		n, err := StartNode("127.0.0.1:0", NodeConfig{
			DB: db, MsPerCostUnit: 0.01, PeriodMs: 25, NodeID: []string{"dA", "dB", "dC"}[i],
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
		addrs[i] = n.Addr()
		t.Cleanup(func() { n.Close() })
	}
	client, err := NewClient(ClientConfig{
		Addrs: addrs, Mechanism: MechGreedy, PeriodMs: 25,
		MaxRetries: 50, Timeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// Kill the first node that wins an orders subquery, in the window
	// between winning the negotiation and the fetch.
	var killed atomic.Value
	killed.Store("")
	d := NewDistributor(client)
	d.afterNegotiate = func(nodeID, sql string) {
		if !strings.Contains(sql, "orders") || killed.Load().(string) != "" {
			return
		}
		for _, n := range nodes {
			if n.ID() == nodeID {
				killed.Store(nodeID)
				n.CloseNow()
				return
			}
		}
	}

	out, err := d.Run(1, `SELECT customers.name, SUM(orders.amount) AS total
		FROM orders JOIN customers ON orders.cust = customers.id
		GROUP BY customers.name ORDER BY customers.name`)
	if err != nil {
		t.Fatalf("distributed run across departure: %v", err)
	}
	victim := killed.Load().(string)
	if victim == "" {
		t.Fatal("the departure hook never fired")
	}
	if _, hit := out.PerNode[victim]; hit {
		t.Errorf("killed node %s still credited with a fragment: %v", victim, out.PerNode)
	}
	survivor := "dA"
	if victim == "dA" {
		survivor = "dB"
	}
	if out.PerNode[survivor] == 0 {
		t.Errorf("orders subquery not re-allocated to the survivor %s: %v", survivor, out.PerNode)
	}
	if len(out.Result.Rows) != 2 {
		t.Fatalf("result rows = %d, want 2", len(out.Result.Rows))
	}
}

// TestClientResolvesStableIDs: a static client keys breakers and
// histograms by the stable node ID its first reply carries, and Stats
// resolves both ID and address.
func TestClientResolvesStableIDs(t *testing.T) {
	db := sqldb.Open()
	if _, _, err := db.Exec("CREATE TABLE t (a INT)"); err != nil {
		t.Fatal(err)
	}
	node, err := StartNode("127.0.0.1:0", NodeConfig{DB: db, NodeID: "stable-1", MsPerCostUnit: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	client, err := NewClient(ClientConfig{Addrs: []string{node.Addr()}})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// Before any exchange the view entry is the provisional seed address.
	if got := client.Members(); len(got) != 1 || got[0].ID != node.Addr() {
		t.Fatalf("provisional view = %+v, want one entry keyed by address", got)
	}
	if _, err := client.Stats(node.Addr()); err != nil {
		t.Fatal(err)
	}
	got := client.Members()
	if len(got) != 1 || got[0].ID != "stable-1" || got[0].Addr != node.Addr() {
		t.Fatalf("resolved view = %+v, want ID stable-1", got)
	}
	// Both ID and address address the same node.
	if _, err := client.Stats("stable-1"); err != nil {
		t.Fatalf("Stats by ID: %v", err)
	}
	if _, err := client.Stats("no-such-node"); err == nil {
		t.Error("unknown node accepted")
	}
	// Latency histograms follow the stable ID.
	lat := client.Latencies()
	if _, ok := lat["stats"]["stable-1"]; !ok {
		t.Errorf("stats latencies not keyed by stable ID: %v", lat)
	}
}

// TestStaticViewIgnoresDraining pins the compatibility contract: with
// ViewRefresh off, a draining reply trips the breaker but never prunes
// the view (the pre-membership behavior resilience tests depend on).
func TestStaticViewIgnoresDraining(t *testing.T) {
	addr := startDrainingStub(t)
	c, err := NewClient(ClientConfig{Addrs: []string{addr}, Timeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, _, err := c.negotiateAll("SELECT 1 FROM t", nil, time.Time{}); err == nil {
		t.Fatal("draining stub negotiated successfully")
	}
	if len(c.nodes()) != 1 {
		t.Fatalf("static view pruned a draining node: %d members left", len(c.nodes()))
	}
	if st := c.nodes()[0].breaker.snapshot(); st != breakerOpen {
		t.Fatalf("breaker = %v, want open", st)
	}
}
