package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/qamarket/qamarket/internal/driver"
	"github.com/qamarket/qamarket/internal/metrics"
	"github.com/qamarket/qamarket/internal/sqldb"
)

// This file holds the two halves of a streamed fetch: the server's
// frame writer (streamFetch, invoked by serveConn when the fetch
// handler negotiated frames) and the client's frame consumer
// (fetchStream, fed by mconn.stream or freshStream).
//
// Memory stays O(batch) on both sides by construction: the server
// appends one batch into a pooled buffer and flushes it before
// building the next, and the client decodes each frame into one
// reusable ColBlock handed to the caller's sink. When the sink is
// slow, the client's demux blocks, its socket reads stop, and TCP
// backpressure stalls the server's flush — the transport itself is the
// flow control.

// frameStream carries an accepted fetch result from the handler to
// serveConn's writer goroutine, which streams it as binary frames.
type frameStream struct {
	res    *ColBlock
	execMs float64
	batch  int // max rows per batch frame
}

// errStreamAbort wraps an error returned by a streamed fetch's sink:
// the consumer itself refused the data. Transport and peer stay
// healthy, so the failure is terminal for the query, not the node.
var errStreamAbort = errors.New("cluster: fetch sink aborted stream")

// writeFrame flushes the frame bytes appended to buf since start,
// under the connection's shared write lock. Taking the lock per frame
// (not per stream) keeps the multiplexed connection live for other
// replies between batches of a long stream.
func writeFrame(w *bufio.Writer, wmu *sync.Mutex, frame []byte) error {
	wmu.Lock()
	defer wmu.Unlock()
	if _, err := w.Write(frame); err != nil {
		return err
	}
	return w.Flush()
}

// streamFetch writes one accepted fetch result as a frame stream:
// header, bounded batches, terminal end frame. A hard shutdown mid-
// stream truncates it with an end frame carrying msgNodeStopping, so
// the client knows the delivered prefix is incomplete; the PR 6
// classification (node stopping = safe to resubmit elsewhere) holds
// for partial streams too. The write buffer is pooled and reused
// across streams.
func (n *Node) streamFetch(conn net.Conn, w *bufio.Writer, wmu *sync.Mutex, id uint64, fs *frameStream) error {
	fb := getFrameBuf()
	defer func() {
		putFrameBuf(fb)
	}()
	res := fs.res
	if res == nil {
		res = &ColBlock{}
	}
	total := res.Rows
	buf := appendFetchHeader(fb.b[:0], id, res.Columns, fs.execMs, fs.batch, total)
	fb.b = buf[:0]
	if err := writeFrame(w, wmu, buf); err != nil {
		return err
	}
	n.health.Add(metrics.FetchBytesTotal, int64(len(buf)))

	// The result is already columnar: NextBatch re-slices the driver
	// block's typed arrays per batch and appendFetchBatchCols copies
	// them straight onto the wire — no row materialization anywhere on
	// the server's hot path.
	var (
		sent    uint64
		batches int
		errMsg  string
		cur     driver.Cursor
		batch   ColBlock
	)
	for res.NextBatch(&cur, fs.batch, &batch) {
		select {
		case <-n.stopCh:
			errMsg = msgNodeStopping
		default:
		}
		if errMsg != "" {
			break
		}
		if cut := n.frameSever.Load(); cut > 0 && int32(batches) >= cut {
			// Test hook: simulate a connection lost mid-stream. One-shot
			// so the retransmit after re-dial streams cleanly.
			n.frameSever.Store(0)
			conn.Close()
			return fmt.Errorf("cluster: frame stream severed by test hook")
		}
		buf = appendFetchBatchCols(fb.b[:0], id, &batch)
		fb.b = buf[:0]
		if err := writeFrame(w, wmu, buf); err != nil {
			return err
		}
		sent += uint64(batch.Rows)
		batches++
		n.health.Inc(metrics.FetchBatchesTotal)
		n.health.Add(metrics.FetchBytesTotal, int64(len(buf)))
	}

	buf = appendFetchEnd(fb.b[:0], id, sent, batches, errMsg)
	fb.b = buf[:0]
	if err := writeFrame(w, wmu, buf); err != nil {
		return err
	}
	n.health.Add(metrics.FetchBytesTotal, int64(len(buf)))
	return nil
}

// --- Client side ------------------------------------------------------

// fetchSink receives a fetch result however it arrives: block gets
// streamed batches as reusable ColBlocks (buffers overwritten between
// calls — copy out anything retained), rows gets a JSON downgrade's
// decoded result whole. Each caller wires both so old and new servers
// feed the same consumer.
type fetchSink struct {
	block func(*ColBlock) error
	rows  func(columns []string, rows []sqldb.Row) error
}

// fetchStream decodes one streamed fetch reply: header, then batch
// frames delivered to the sink, then the terminal end frame. skip
// drops that many leading rows before delivery — the resume path,
// where a dedup replay re-streams the identical full result and the
// client discards the prefix a previous attempt already delivered.
type fetchStream struct {
	sink      fetchSink
	skip      int64
	header    frameHeader
	gotHeader bool
	block     ColBlock
	recv      uint64 // rows received off the wire (pre-skip)
	delivered int64  // rows handed to the sink
	batches   int
	done      bool
	end       frameEnd
}

// onFrame consumes one frame; it is the callback handed to
// mconn.stream / freshStream. done=true ends the stream.
func (fs *fetchStream) onFrame(typ byte, payload []byte) (bool, error) {
	switch typ {
	case frameTypeHeader:
		if fs.gotHeader {
			return false, fmt.Errorf("%w: duplicate header frame", errFrameDecode)
		}
		if err := decodeFetchHeader(payload, &fs.header); err != nil {
			return false, err
		}
		fs.gotHeader = true
		fs.block.Columns = fs.header.columns
		return false, nil
	case frameTypeBatch:
		if !fs.gotHeader {
			return false, fmt.Errorf("%w: batch frame before header", errFrameDecode)
		}
		if err := decodeFetchBatch(payload, &fs.block); err != nil {
			return false, err
		}
		fs.batches++
		fs.recv += uint64(fs.block.Rows)
		if fs.skip > 0 {
			if int64(fs.block.Rows) <= fs.skip {
				fs.skip -= int64(fs.block.Rows)
				return false, nil
			}
			fs.block.Drop(int(fs.skip))
			fs.skip = 0
		}
		if fs.block.Rows == 0 {
			return false, nil
		}
		fs.delivered += int64(fs.block.Rows)
		if err := fs.sink.block(&fs.block); err != nil {
			return false, fmt.Errorf("%w: %v", errStreamAbort, err)
		}
		return false, nil
	case frameTypeEnd:
		if !fs.gotHeader {
			return false, fmt.Errorf("%w: end frame before header", errFrameDecode)
		}
		end, err := decodeFetchEnd(payload)
		if err != nil {
			return false, err
		}
		if end.errMsg == "" && end.rows != fs.recv {
			return false, fmt.Errorf("%w: end frame claims %d rows, received %d", errFrameDecode, end.rows, fs.recv)
		}
		fs.end = end
		fs.done = true
		return true, nil
	}
	return false, fmt.Errorf("%w: unexpected frame type %d", errFrameDecode, typ)
}

// envelope synthesizes the fetchReply a JSON exchange would have
// produced, for the classification ladder above fetchAttempt. The rows
// already went through the sink, so the envelope carries none.
func (fs *fetchStream) envelope() *fetchReply {
	return &fetchReply{
		Accepted: fs.header.accepted,
		Columns:  append([]string(nil), fs.header.columns...),
		ExecMs:   fs.header.execMs,
		Err:      fs.end.errMsg,
		streamed: true,
	}
}

// freshStream is the fresh-transport analogue of mconn.stream: dial,
// send the request, then demux by peeking the first byte of each
// message — frames feed onFrame, a JSON reply lands in rep
// (jsonReply=true). The per-message read deadline is a progress bound,
// like the pooled path's per-frame timer.
func freshStream(addr string, req *request, rep *reply, timeout time.Duration, onFrame func(typ byte, payload []byte) (bool, error), wc *wireCounter) (jsonReply bool, err error) {
	conn, err := dial(addr, timeout)
	if err != nil {
		return false, fmt.Errorf("%w: %v", errNotSent, err)
	}
	defer conn.Close()
	if wc != nil {
		conn = &countedConn{Conn: conn, wc: wc}
	}
	if err := conn.SetWriteDeadline(time.Now().Add(timeout)); err != nil {
		return false, err
	}
	w := bufio.NewWriter(conn)
	if err := writeMsg(w, req); err != nil {
		return false, err
	}
	r := bufio.NewReader(conn)
	for {
		if err := conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
			return false, err
		}
		first, err := r.Peek(1)
		if err != nil {
			return false, err
		}
		if first[0] != frameMagic {
			return true, readMsg(r, rep)
		}
		fm, err := readFrame(r)
		if err != nil {
			return false, err
		}
		done, ferr := onFrame(fm.typ, fm.payload)
		fm.release()
		if ferr != nil {
			return false, ferr
		}
		if done {
			return false, nil
		}
	}
}
