package cluster

import (
	"bufio"
	"encoding/json"
	"errors"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/qamarket/qamarket/internal/faultnet"
	"github.com/qamarket/qamarket/internal/market"
	"github.com/qamarket/qamarket/internal/metrics"
)

// protectionQuery returns a one-node federation plus a query that is
// feasible on it, the shared fixture of the protection tests.
func protectionQuery(t *testing.T) (*Dataset, *Node, string, string) {
	t.Helper()
	ds, nodes, addrs := startTestFederation(t, []float64{1})
	rng := rand.New(rand.NewSource(41))
	templates, err := ds.GenerateTemplates(4, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	return ds, nodes[0], addrs[0], templates[0].Instantiate(rng)
}

// TestSeveredReplyRetryExecutesOnce is the regression test the at-most-
// once tentpole exists for: a faultnet proxy drops the execute reply on
// the floor (the server ran the query, the client saw a timeout), and
// the client's retransmit to the same node must return the original
// outcome from the dedup window instead of executing the query again.
// Before the dedup window existed, the retry re-ran the query and the
// node's executed count came back 2.
func TestSeveredReplyRetryExecutesOnce(t *testing.T) {
	_, node, addr, sql := protectionQuery(t)
	p, err := faultnet.Start("127.0.0.1:0", addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c, err := NewClient(ClientConfig{
		Addrs: []string{p.Addr()}, Transport: TransportFresh,
		Timeout: 100 * time.Millisecond, ExecTimeoutFactor: 2,
		AtMostOnce: true, ExecRetries: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ns := c.nodes()[0]

	// Sever the reply lane: the request arrives and executes, the answer
	// vanishes. The client must classify this as a lost (not unsent)
	// attempt — the query may have run.
	p.Partition(faultnet.ServerToClient)
	rep, kind, err := c.executeOn(ns, 1, sql, nil, time.Time{})
	if kind != attemptLost {
		t.Fatalf("severed reply: kind = %v err = %v, want attemptLost", kind, err)
	}
	if rep != nil {
		t.Fatalf("severed reply returned a payload: %+v", rep)
	}

	// Heal and retransmit the same query id: the dedup window replays
	// the original outcome; the executor must not run the query again.
	p.Heal()
	rep, kind, err = c.executeOn(ns, 1, sql, nil, time.Time{})
	if kind != attemptOK || err != nil {
		t.Fatalf("retransmit after heal: kind = %v err = %v, want attemptOK", kind, err)
	}
	if !rep.Accepted {
		t.Fatalf("retransmit not accepted: %+v", rep)
	}
	if got := node.Executed(); got != 1 {
		t.Fatalf("node executed %d times, want exactly 1 (retry must dedup)", got)
	}
	if got := node.health.Snapshot()[metrics.DedupHitsTotal]; got != 1 {
		t.Fatalf("dedup_hits_total = %g, want 1", got)
	}

	// Under a partition that never heals, execAttempt's same-node
	// retransmits exhaust and the client reports the outcome unknown
	// instead of failing over — the query still ran exactly once.
	p.Partition(faultnet.ServerToClient)
	_, kind, err = c.execAttempt(ns, 3, sql, nil, time.Time{}, func() bool { return true })
	if kind != attemptLost || !errors.Is(err, ErrOutcomeUnknown) {
		t.Fatalf("unhealed partition: kind = %v err = %v, want attemptLost/ErrOutcomeUnknown", kind, err)
	}
	p.Heal()
	rep, kind, err = c.executeOn(ns, 3, sql, nil, time.Time{})
	if kind != attemptOK || err != nil || !rep.Accepted {
		t.Fatalf("post-heal retransmit: kind = %v err = %v rep = %+v", kind, err, rep)
	}
	if got := node.Executed(); got != 2 {
		t.Fatalf("node executed %d times across 2 queries, want exactly 2", got)
	}
}

// startWinningStub runs a server that always wins negotiation (a
// near-zero estimate) and then refuses every execute with a typed
// overload — the deterministic bait for the failover ladder.
func startWinningStub(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				r := bufio.NewReader(conn)
				w := bufio.NewWriter(conn)
				for {
					var req request
					if err := readMsg(r, &req); err != nil {
						return
					}
					rep := reply{ID: req.ID, NodeID: "stub"}
					if req.Op == "negotiate" {
						rep.Negotiate = &negotiateReply{
							Feasible: true, Offer: true, EstimateMs: 0.001, Signature: "stub",
						}
					} else {
						rep.Err = msgOverloaded
						rep.Code = CodeOverload
					}
					if err := writeMsg(w, &rep); err != nil {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String()
}

// TestFailoverToRunnerUp drives the runner-up ladder end to end: the
// negotiation winner refuses the execute with a typed overload, and the
// client must execute on the runner-up from the same proposal round —
// one failover, no renegotiation, no breaker trip.
func TestFailoverToRunnerUp(t *testing.T) {
	_, node, addr, sql := protectionQuery(t)
	stub := startWinningStub(t)
	c, err := NewClient(ClientConfig{
		Addrs: []string{stub, addr}, Transport: TransportFresh,
		Timeout: 2 * time.Second, BreakerThreshold: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	out := c.Run(1, sql)
	if out.Err != nil {
		t.Fatalf("run failed: %v", out.Err)
	}
	if out.Node != node.ID() {
		t.Fatalf("executed on %q, want runner-up %q", out.Node, node.ID())
	}
	if got := c.Health()[metrics.FailoversTotal]; got != 1 {
		t.Fatalf("failovers_total = %g, want 1", got)
	}
	if got := node.Executed(); got != 1 {
		t.Fatalf("runner-up executed %d times, want 1", got)
	}
	// The overloaded winner is a live market participant, not a fault.
	if st := c.lookup("stub").breaker.snapshot(); st != breakerClosed {
		t.Fatalf("winner breaker = %v after typed overload, want closed", st)
	}
}

// TestAdmissionOverloadTypedReply saturates a MaxInflight=1 node with
// concurrent executes: exactly the admitted ones run, every refused one
// gets the typed overload (never a hang, never a transport error), and
// the books balance.
func TestAdmissionOverloadTypedReply(t *testing.T) {
	ds, _, _, _ := protectionQuery(t)
	rng := rand.New(rand.NewSource(43))
	templates, err := ds.GenerateTemplates(4, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	sql := templates[0].Instantiate(rng)
	node, err := StartNode("127.0.0.1:0", NodeConfig{
		DB: ds.DBs[0], Slowdown: 30, MsPerCostUnit: 0.02, PeriodMs: 50,
		Market: market.DefaultConfig(1), MaxInflight: 1, MaxQueue: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	c, err := NewClient(ClientConfig{
		Addrs: []string{node.Addr()}, Transport: TransportFresh, Timeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ns := c.nodes()[0]

	const callers = 6
	var (
		start    sync.WaitGroup
		done     sync.WaitGroup
		mu       sync.Mutex
		ok, over int
		unexpect []error
	)
	start.Add(1)
	done.Add(callers)
	for i := 0; i < callers; i++ {
		go func(qid int64) {
			defer done.Done()
			start.Wait()
			_, kind, err := c.executeOn(ns, qid, sql, nil, time.Time{})
			mu.Lock()
			defer mu.Unlock()
			switch {
			case kind == attemptOK:
				ok++
			case kind == attemptRefused && errors.Is(err, ErrOverloaded):
				over++
			default:
				unexpect = append(unexpect, err)
			}
		}(int64(i))
	}
	start.Done()
	done.Wait()
	if len(unexpect) > 0 {
		t.Fatalf("unexpected outcomes: %v", unexpect)
	}
	if over == 0 {
		t.Fatal("no caller was refused; MaxInflight=1 admission gate never fired")
	}
	if ok == 0 {
		t.Fatal("no caller succeeded; the admitted lane starved")
	}
	if ok+over != callers {
		t.Fatalf("outcomes do not balance: ok=%d over=%d of %d", ok, over, callers)
	}
	if got := node.Executed(); got != ok {
		t.Fatalf("node executed %d, want %d (one per accepted caller)", got, ok)
	}
	if got := node.health.Snapshot()[metrics.OverloadTotal]; got != float64(over) {
		t.Fatalf("overload_total = %g, want %d", got, over)
	}
}

// TestDeadlineShedsBeforeExecution covers both deadline layers: a
// budget the node cannot meet is refused with the typed expired reply
// at admission, and a client-side QueryTimeout turns into a terminal
// ErrExpired instead of a retry storm.
func TestDeadlineShedsBeforeExecution(t *testing.T) {
	ds, _, _, _ := protectionQuery(t)
	rng := rand.New(rand.NewSource(47))
	templates, err := ds.GenerateTemplates(4, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	sql := templates[0].Instantiate(rng)
	// Slowdown 50 puts every estimate far above the budgets below.
	node, err := StartNode("127.0.0.1:0", NodeConfig{
		DB: ds.DBs[0], Slowdown: 50, MsPerCostUnit: 0.02, PeriodMs: 20,
		Market: market.DefaultConfig(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	c, err := NewClient(ClientConfig{
		Addrs: []string{node.Addr()}, Timeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, kind, err := c.executeOn(c.nodes()[0], 1, sql, nil, time.Now().Add(2*time.Millisecond))
	if kind != attemptRefused || !errors.Is(err, ErrExpired) {
		t.Fatalf("tiny budget: kind = %v err = %v, want refused/ErrExpired", kind, err)
	}
	if got := node.health.Snapshot()[metrics.ExpiredTotal]; got < 1 {
		t.Fatalf("expired_total = %g, want >= 1", got)
	}
	if got := node.Executed(); got != 0 {
		t.Fatalf("node executed %d shed queries", got)
	}

	tc, err := NewClient(ClientConfig{
		Addrs: []string{node.Addr()}, Timeout: 2 * time.Second,
		PeriodMs: 10, QueryTimeout: 40 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tc.Close()
	out := tc.Run(2, sql)
	if !errors.Is(out.Err, ErrExpired) {
		t.Fatalf("QueryTimeout run: err = %v, want ErrExpired", out.Err)
	}
	if out.TotalMs > 1000 {
		t.Fatalf("expired query burned %.0fms; deadline did not bound the retries", out.TotalMs)
	}
}

// TestQueuedJobExpiresAtDequeue checks the executor-side guard: a job
// whose deadline passed while it sat in the queue is dropped at dequeue
// with the expired error instead of burning executor time.
func TestQueuedJobExpiresAtDequeue(t *testing.T) {
	_, node, _, sql := protectionQuery(t)
	job := &execJob{
		sql: sql, reply: make(chan executeReply, 1), estMs: 1,
		queued: time.Now().Add(-10 * time.Millisecond), deadline: time.Now().Add(-5 * time.Millisecond),
	}
	node.execCh <- job
	select {
	case rep := <-job.reply:
		if rep.Err != msgExpired {
			t.Fatalf("expired queued job answered %+v, want %q", rep, msgExpired)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("expired queued job never answered")
	}
	if got := node.health.Snapshot()[metrics.ExpiredTotal]; got != 1 {
		t.Fatalf("expired_total = %g, want 1", got)
	}
	if got := node.Executed(); got != 0 {
		t.Fatalf("node executed %d expired jobs", got)
	}
}

// legacyRequest is the wire request an old (pre-deadline) node decodes:
// the deadline_ms and run_id fields do not exist in its schema.
type legacyRequest struct {
	ID      uint64 `json:"id,omitempty"`
	Op      string `json:"op"`
	SQL     string `json:"sql,omitempty"`
	QueryID int64  `json:"query_id,omitempty"`
}

// startLegacyStub runs an "old node": it decodes requests into the
// legacy schema (unknown JSON fields like deadline_ms are dropped, as
// encoding/json guarantees) and answers without envelope codes.
func startLegacyStub(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				sc := bufio.NewScanner(conn)
				w := bufio.NewWriter(conn)
				for sc.Scan() {
					var req legacyRequest
					if err := json.Unmarshal(sc.Bytes(), &req); err != nil {
						return
					}
					rep := reply{ID: req.ID, NodeID: "legacy"}
					switch req.Op {
					case "negotiate":
						rep.Negotiate = &negotiateReply{
							Feasible: true, Offer: true, EstimateMs: 5, Signature: "legacy",
						}
					case "execute":
						rep.Execute = &executeReply{Accepted: true, Rows: 1}
					}
					if err := writeMsg(w, &rep); err != nil {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String()
}

// TestDeadlineInterop is the mixed-fleet acceptance check: a deadline-
// carrying client works against an old node that has never heard of
// deadline_ms, and an old client's requests (no deadline_ms, no run_id)
// work against a new node — no shedding, no dedup, no typed codes.
func TestDeadlineInterop(t *testing.T) {
	t.Run("new-client-old-node", func(t *testing.T) {
		addr := startLegacyStub(t)
		c, err := NewClient(ClientConfig{
			Addrs: []string{addr}, Transport: TransportFresh, Timeout: time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		deadline := time.Now().Add(5 * time.Second)
		pr, _, err := c.negotiateAll("SELECT 1 FROM t", nil, deadline)
		if err != nil || pr.best() == nil {
			t.Fatalf("negotiate with deadline against old node: pr=%+v err=%v", pr, err)
		}
		rep, kind, err := c.executeOn(pr.best(), 1, "SELECT 1 FROM t", nil, deadline)
		if kind != attemptOK || err != nil || !rep.Accepted {
			t.Fatalf("execute with deadline against old node: kind=%v err=%v rep=%+v", kind, err, rep)
		}
	})
	t.Run("old-client-new-node", func(t *testing.T) {
		_, node, addr, sql := protectionQuery(t)
		conn, err := net.DialTimeout("tcp", addr, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		conn.SetDeadline(time.Now().Add(5 * time.Second))
		w := bufio.NewWriter(conn)
		r := bufio.NewReader(conn)
		// An old client's request never carries deadline_ms or run_id;
		// the zero-valued fields are omitempty, so this is byte-for-byte
		// the legacy wire format.
		var rep reply
		if err := writeMsg(w, &request{Op: "negotiate", SQL: sql}); err != nil {
			t.Fatal(err)
		}
		if err := readMsg(r, &rep); err != nil {
			t.Fatal(err)
		}
		if rep.Code != "" || rep.Negotiate == nil || !rep.Negotiate.Feasible {
			t.Fatalf("legacy negotiate against new node: %+v", rep)
		}
		rep = reply{}
		if err := writeMsg(w, &request{Op: "execute", QueryID: 7, SQL: sql}); err != nil {
			t.Fatal(err)
		}
		if err := readMsg(r, &rep); err != nil {
			t.Fatal(err)
		}
		if rep.Code != "" || rep.Execute == nil || !rep.Execute.Accepted {
			t.Fatalf("legacy execute against new node: %+v", rep)
		}
		if got := node.Executed(); got != 1 {
			t.Fatalf("node executed %d, want 1", got)
		}
		// No run_id means no dedup entry: old-client retries keep the
		// pre-protection semantics.
		if got := node.dedup.size(); got != 0 {
			t.Fatalf("dedup window holds %d entries for an id-less client", got)
		}
	})
}

// TestRetryBudgetExhausted proves the client-wide token bucket turns a
// dead federation into a fast typed failure instead of MaxRetries
// rounds of timeouts.
func TestRetryBudgetExhausted(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // dials are refused instantly

	c, err := NewClient(ClientConfig{
		Addrs: []string{addr}, Timeout: 200 * time.Millisecond,
		PeriodMs: 10, MaxRetries: 50, BreakerThreshold: 1,
		RetryBudget: 0.0001, RetryBurst: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	out := c.Run(1, "SELECT 1 FROM t")
	if !errors.Is(out.Err, ErrRetryBudget) {
		t.Fatalf("err = %v, want ErrRetryBudget", out.Err)
	}
	if out.Retries != 2 {
		t.Fatalf("retries = %d, want 2 (one funded, one refused)", out.Retries)
	}
	if got := c.Health()[metrics.RetryBudgetExhaustedTotal]; got != 1 {
		t.Fatalf("retry_budget_exhausted_total = %g, want 1", got)
	}
}
