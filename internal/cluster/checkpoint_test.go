package cluster

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/qamarket/qamarket/internal/metrics"
)

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")
	if err := WriteFileAtomic(path, []byte("one"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("two"), 0o644); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "two" {
		t.Fatalf("read back %q, %v", data, err)
	}
	// No temp droppings left behind.
	leftovers, err := filepath.Glob(filepath.Join(dir, ".ckpt-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(leftovers) != 0 {
		t.Errorf("temp files left behind: %v", leftovers)
	}
}

func TestRestoreNodeFromCheckpointMissingFile(t *testing.T) {
	node := startSingleNode(t, nil)
	restored, err := RestoreNodeFromCheckpoint(node, filepath.Join(t.TempDir(), "absent.json"))
	if err != nil {
		t.Fatalf("missing checkpoint treated as error: %v", err)
	}
	if restored {
		t.Error("restored=true for a missing checkpoint")
	}
}

func TestRestoreNodeFromCheckpointRejectsCorruption(t *testing.T) {
	node := startSingleNode(t, nil)
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := RestoreNodeFromCheckpoint(node, path); err == nil {
		t.Error("corrupt checkpoint silently accepted")
	}
}

func TestCheckpointerRejectsBadConfig(t *testing.T) {
	node := startSingleNode(t, nil)
	if _, err := StartCheckpointer(node, "", time.Second); err == nil {
		t.Error("empty path accepted")
	}
	if _, err := StartCheckpointer(node, filepath.Join(t.TempDir(), "x"), 0); err == nil {
		t.Error("zero interval accepted")
	}
}

// TestCrashRestartResumesPriceTable is the snapshot round-trip: a QA-NT
// node is killed mid-workload (hard stop, no drain) and restarted from
// its checkpoint. The restored node must resume the exact learned price
// table recorded in the checkpoint and keep trading without a market
// reset.
func TestCrashRestartResumesPriceTable(t *testing.T) {
	ds, nodes, addrs := startTestFederation(t, []float64{1, 2})
	client, err := NewClient(ClientConfig{
		Addrs: addrs, Mechanism: MechQANT, PeriodMs: 50, MaxRetries: 100, Timeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "node0.json")
	ckpt, err := StartCheckpointer(nodes[0], path, 25*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(91))
	templates, err := ds.GenerateTemplates(3, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	for qi := 0; qi < 12; qi++ {
		if out := client.Run(int64(qi), templates[qi%len(templates)].Instantiate(rng)); out.Err != nil {
			t.Fatalf("query %d: %v", qi, out.Err)
		}
	}
	// Let the periodic writer tick at least once, then verify its
	// heartbeat is visible through the stats op.
	time.Sleep(60 * time.Millisecond)
	preCrash, err := client.Stats(addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(preCrash.Prices) == 0 {
		t.Skip("node 0 learned no classes in this layout")
	}
	if age, ok := preCrash.Health[metrics.CheckpointAgeMs]; !ok {
		t.Fatal("periodic checkpointer never reported an age")
	} else if age > 10_000 {
		t.Fatalf("checkpoint age %gms; periodic writes not happening", age)
	}
	if preCrash.Health[metrics.CheckpointsTotal] < 1 {
		t.Fatal("no periodic checkpoint recorded")
	}

	// Freeze the writer (final atomic write) and crash the node. The
	// file now holds exactly the crash-moment market state.
	if err := ckpt.Stop(); err != nil {
		t.Fatal(err)
	}
	fileState, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	nodes[0].CloseNow()

	// Restart over the same data and restore. The huge market period
	// parks the restored node's price clock so the assertions below are
	// not racing a period tick.
	restarted, err := StartNode("127.0.0.1:0", NodeConfig{
		DB: ds.DBs[0], MsPerCostUnit: 0.02, PeriodMs: 60_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer restarted.Close()
	restored, err := RestoreNodeFromCheckpoint(restarted, path)
	if err != nil {
		t.Fatal(err)
	}
	if !restored {
		t.Fatal("checkpoint file missing after periodic writes")
	}
	gotState, err := restarted.MarketState()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotState, fileState) {
		t.Errorf("restored market state differs from the checkpoint:\n got %s\nfile %s", gotState, fileState)
	}

	// The restored price table must be byte-for-byte the checkpointed
	// one, visible through the normal stats op.
	var ckptState struct {
		Pricer PricerState `json:"pricer"`
	}
	if err := json.Unmarshal(fileState, &ckptState); err != nil {
		t.Fatal(err)
	}
	client2, err := NewClient(ClientConfig{
		Addrs: []string{restarted.Addr(), addrs[1]}, Mechanism: MechQANT,
		PeriodMs: 50, MaxRetries: 100, Timeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	postRestore, err := client2.Stats(restarted.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if len(postRestore.Prices) != len(ckptState.Pricer.Classes) {
		t.Fatalf("restored %d classes, checkpoint has %d", len(postRestore.Prices), len(ckptState.Pricer.Classes))
	}
	for sig, idx := range ckptState.Pricer.Classes {
		if got, ok := postRestore.Prices[sig]; !ok || got != ckptState.Pricer.Prices[idx] {
			t.Errorf("class %s: restored price %g, want %g", sig, got, ckptState.Pricer.Prices[idx])
		}
	}

	// The market must resume trading, not reset: more queries complete
	// against the restored federation.
	completed := 0
	for qi := 100; qi < 108; qi++ {
		if out := client2.Run(int64(qi), templates[qi%len(templates)].Instantiate(rng)); out.Err == nil {
			completed++
		}
	}
	if completed < 6 {
		t.Errorf("only %d/8 queries completed after restore", completed)
	}
}
