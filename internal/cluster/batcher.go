package cluster

import (
	"errors"
	"sync"
	"time"

	"github.com/qamarket/qamarket/internal/metrics"
)

// negotiator coalesces same-class call-for-proposals into batched
// negotiate RPCs: the first query of a class to need a CFP opens a
// window and leads it; queries of the class arriving within BatchWindow
// ride along; the sealed window fans out ONE RPC per probed node (the
// negotiate request's additive batch field) and every rider gets its
// own ranked proposal ladder back. Nodes that predate the batch field
// answer the lead query only — the window detects that (no batch array
// in the reply), marks the node, and renegotiates the riders against it
// individually, so mixed fleets degrade to exactly the old wire
// behavior. A window of one omits the batch field entirely and is
// byte-identical to an unbatched negotiate.
type negotiator struct {
	c       *Client
	mu      sync.Mutex
	windows map[string]*batchWindow
}

// batchItem is one query's seat in a window; the window writes the
// query's proposals (or error) before closing done.
type batchItem struct {
	queryID  int64
	sql      string
	tc       *traceCtx
	deadline time.Time

	pr      proposals
	elapsed time.Duration
	err     error
}

// batchWindow is one open coalescing window for a class. items is
// guarded by the negotiator's mu until the window leaves the map; after
// that only the leader touches it.
type batchWindow struct {
	items []*batchItem
	full  chan struct{} // closed when BatchLimit seals the window early
	done  chan struct{} // closed when every item's result is in place
}

func newNegotiator(c *Client) *negotiator {
	return &negotiator{c: c, windows: make(map[string]*batchWindow)}
}

// negotiate gets one query its proposal round through the class's
// window: opening and leading one if none is accepting, riding
// otherwise. Blocks until the round completes (at most BatchWindow plus
// the fan-out itself).
func (g *negotiator) negotiate(queryID int64, sql, class string, tc *traceCtx, deadline time.Time) (proposals, time.Duration, error) {
	it := &batchItem{queryID: queryID, sql: sql, tc: tc, deadline: deadline}
	g.mu.Lock()
	if w := g.windows[class]; w != nil {
		// Ride the open window.
		w.items = append(w.items, it)
		if len(w.items) >= g.c.cfg.BatchLimit {
			// Full: seal now and stop admitting; the leader fans out.
			delete(g.windows, class)
			close(w.full)
		}
		g.mu.Unlock()
		g.c.health.Inc(metrics.BatchCoalescedTotal)
		<-w.done
		return it.pr, it.elapsed, it.err
	}
	w := &batchWindow{items: []*batchItem{it}, full: make(chan struct{}), done: make(chan struct{})}
	g.windows[class] = w
	g.mu.Unlock()
	// Lead: hold the window open for late same-class arrivals, then seal.
	timer := time.NewTimer(g.c.cfg.BatchWindow)
	select {
	case <-timer.C:
	case <-w.full:
	}
	timer.Stop()
	g.mu.Lock()
	if g.windows[class] == w {
		delete(g.windows, class)
	}
	items := w.items
	g.mu.Unlock()
	g.fanout(items)
	close(w.done)
	return it.pr, it.elapsed, it.err
}

// fanout runs one sealed window's proposal round: one batched CFP per
// probed node, per-query classification, per-query ranking.
func (g *negotiator) fanout(items []*batchItem) {
	c := g.c
	start := time.Now()
	c.health.Inc(metrics.BatchWindowsTotal)
	// Same class ⇒ same relations: probe once for the whole window.
	members := c.probeSet(items[0].sql)
	if len(members) == 0 {
		for _, it := range items {
			it.err = errors.New("cluster: membership view is empty")
		}
		return
	}
	// grid[qi][mi] is query qi's outcome at member mi.
	grid := make([][]negOutcome, len(items))
	for qi := range grid {
		grid[qi] = make([]negOutcome, len(members))
	}
	var wg sync.WaitGroup
	for mi, ns := range members {
		if !ns.breaker.allow() {
			for qi := range grid {
				grid[qi][mi] = negOutcome{err: errBreakerOpen}
			}
			continue
		}
		wg.Add(1)
		go func(mi int, ns *nodeState) {
			defer wg.Done()
			g.askNode(items, ns, grid, mi)
		}(mi, ns)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for qi, it := range items {
		it.elapsed = elapsed
		pr, reachable := rankOffers(members, grid[qi])
		if !reachable {
			it.err = aggregateNodeErrors(members, outcomeErrors(grid[qi]))
			continue
		}
		it.pr = pr
	}
}

// askNode sends one node its share of the window: the batched CFP, or
// per-query CFPs when the node is known to predate batching.
func (g *negotiator) askNode(items []*batchItem, ns *nodeState, grid [][]negOutcome, mi int) {
	c := g.c
	ns.mu.Lock()
	noBatch := ns.noBatch
	ns.mu.Unlock()
	if noBatch && len(items) > 1 {
		g.askPerQuery(items, ns, grid, mi, 0)
		return
	}
	lead := items[0]
	req := &request{
		Op: "negotiate", SQL: lead.sql, Mechanism: c.cfg.Mechanism, Trace: lead.tc,
		DeadlineMs: remainingMs(lead.deadline),
	}
	for _, it := range items[1:] {
		req.Batch = append(req.Batch, batchQuery{
			QueryID: it.queryID, SQL: it.sql, DeadlineMs: remainingMs(it.deadline),
		})
	}
	var rep reply
	if err := c.rpcOn(ns, req, &rep, c.cfg.Timeout); err != nil {
		ns.breaker.failure()
		for qi := range grid {
			grid[qi][mi] = negOutcome{err: err}
		}
		return
	}
	lead0 := c.classifyNegotiate(ns, rep.Negotiate, rep.Code, rep.Err)
	grid[0][mi] = lead0
	if len(items) == 1 {
		return
	}
	if rep.Code == CodeDraining {
		// The whole node is going away (classify already tripped its
		// breaker and pruned it); every rider sees the same refusal.
		for qi := 1; qi < len(grid); qi++ {
			grid[qi][mi] = negOutcome{err: errDraining}
		}
		return
	}
	if rep.Batch == nil {
		// An old node: it ignored the batch field and answered the lead
		// query only. Remember that, and give the riders the individual
		// CFPs they would have sent pre-batching.
		ns.mu.Lock()
		ns.noBatch = true
		ns.mu.Unlock()
		g.askPerQuery(items, ns, grid, mi, 1)
		return
	}
	for j := range items[1:] {
		qi := j + 1
		if j >= len(rep.Batch) {
			grid[qi][mi] = negOutcome{err: errors.New("cluster: short batch reply")}
			continue
		}
		bp := rep.Batch[j]
		grid[qi][mi] = c.classifyNegotiate(ns, bp.Negotiate, bp.Code, bp.Err)
	}
}

// askPerQuery negotiates items[from:] with one node individually — the
// degradation path for nodes without batch support.
func (g *negotiator) askPerQuery(items []*batchItem, ns *nodeState, grid [][]negOutcome, mi, from int) {
	c := g.c
	for qi := from; qi < len(items); qi++ {
		it := items[qi]
		var rep reply
		err := c.rpcOn(ns, &request{
			Op: "negotiate", SQL: it.sql, Mechanism: c.cfg.Mechanism, Trace: it.tc,
			DeadlineMs: remainingMs(it.deadline),
		}, &rep, c.cfg.Timeout)
		if err != nil {
			ns.breaker.failure()
			grid[qi][mi] = negOutcome{err: err}
			continue
		}
		grid[qi][mi] = c.classifyNegotiate(ns, rep.Negotiate, rep.Code, rep.Err)
	}
}
