package cluster

import (
	"fmt"
	"hash/fnv"
	"sync"
	"time"
)

// dedupOutcome is one cached execute/fetch result: the executeReply,
// the fetchReply when the op shipped rows, and the envelope code the
// original reply carried. For fetches the raw result is cached too, so
// a retransmit is re-encoded under its *own* request's negotiation
// (JSON vs frames, batch size) — which also makes the frame stream a
// replay of identical rows, letting a client resume a partial stream
// by skipping the rows it already delivered.
type dedupOutcome struct {
	exec   executeReply
	fetch  *fetchReply
	result *ColBlock
	code   string
}

// dedupEntry is one in-flight or settled outcome. done is closed when
// the owner settles; waiters then read out/cacheable under the window
// lock.
type dedupEntry struct {
	done      chan struct{}
	out       dedupOutcome
	cacheable bool
	settled   bool
	at        time.Time // settle time, for TTL eviction
}

// dedupWindow gives execute/fetch at-most-once semantics: the first
// request for a key becomes the owner and runs the query; concurrent or
// later duplicates (a client retransmitting after a lost reply) wait
// for — or read — the owner's outcome instead of re-running it.
//
// Only outcomes that represent completed work (the query ran, or the
// engine rejected its SQL deterministically) are cacheable. Refusals —
// overload, expired, supply race, node stopping — settle uncacheable:
// the entry is deleted once waiters are released, so a later retry with
// fresh budget is re-admitted instead of being served a stale refusal.
type dedupWindow struct {
	mu      sync.Mutex
	entries map[string]*dedupEntry
	ttl     time.Duration
}

func newDedupWindow(ttl time.Duration) *dedupWindow {
	return &dedupWindow{entries: make(map[string]*dedupEntry), ttl: ttl}
}

// dedupKey builds the window key. QueryID alone is not unique — the
// distributed subquery layer reuses one query id across its fetch
// subqueries — so the SQL hash disambiguates within a query.
func dedupKey(runID, op string, queryID int64, sql string) string {
	h := fnv.New64a()
	h.Write([]byte(sql))
	return fmt.Sprintf("%s|%s|%d|%x", runID, op, queryID, h.Sum64())
}

// claim resolves a key: the first caller becomes the owner (claim
// returns owner=true) and must call settle exactly once; duplicates
// block until the owner settles (or stop closes) and get the cached
// outcome with hit=true. A duplicate of an uncacheable outcome gets
// hit=false after the entry is cleared and becomes the new owner.
func (d *dedupWindow) claim(key string, stop <-chan struct{}) (out dedupOutcome, hit, owner bool) {
	for {
		d.mu.Lock()
		e, ok := d.entries[key]
		if !ok {
			d.entries[key] = &dedupEntry{done: make(chan struct{})}
			d.mu.Unlock()
			return dedupOutcome{}, false, true
		}
		if e.settled {
			out, cacheable := e.out, e.cacheable
			if !cacheable {
				// Refusal entries are transient; clear and re-own.
				delete(d.entries, key)
				d.mu.Unlock()
				return dedupOutcome{}, false, true
			}
			d.mu.Unlock()
			return out, true, false
		}
		d.mu.Unlock()
		select {
		case <-e.done:
			// Loop: re-read the settled entry (or re-own if it was an
			// uncacheable refusal and got cleared).
		case <-stop:
			return dedupOutcome{exec: executeReply{Err: msgNodeStopping}}, true, false
		}
	}
}

// settle publishes the owner's outcome and releases waiters. A
// cacheable outcome stays in the window until the TTL sweep; an
// uncacheable one (a refusal) is deleted immediately, so released
// waiters loop back, find no entry, and re-own — retrying a refusal
// re-admits the query rather than replaying the stale refusal.
func (d *dedupWindow) settle(key string, out dedupOutcome, cacheable bool) {
	d.mu.Lock()
	e, ok := d.entries[key]
	if !ok || e.settled {
		d.mu.Unlock()
		return
	}
	e.out = out
	e.cacheable = cacheable
	e.settled = true
	e.at = time.Now()
	close(e.done)
	if !cacheable {
		// Keep the settled entry visible only through the waiters'
		// claim loop: delete now; a waiter looping back finds no entry
		// and re-owns, which is exactly the retry-a-refusal semantics
		// we want.
		delete(d.entries, key)
	}
	d.mu.Unlock()
}

// sweep evicts settled entries older than the TTL. Called from the
// node's period loop; unsettled (in-flight) entries are never evicted.
func (d *dedupWindow) sweep(now time.Time) {
	d.mu.Lock()
	for k, e := range d.entries {
		if e.settled && now.Sub(e.at) > d.ttl {
			delete(d.entries, k)
		}
	}
	d.mu.Unlock()
}

// size reports the current entry count (tests and gauges).
func (d *dedupWindow) size() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.entries)
}
