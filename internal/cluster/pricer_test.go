package cluster

import (
	"testing"

	"github.com/qamarket/qamarket/internal/market"
)

// carryOf reads the pricer's capacity-carry account.
func carryOf(p *pricer) float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.carry
}

// agentOf reads the pricer's current market agent (identity tracks
// rebuilds: observe swaps the pointer when the class universe or a
// cost estimate changes).
func agentOf(p *pricer) *market.Agent {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.agent
}

// TestCarrySurvivesMidPeriodRebuild is the regression test for the
// carry-accounting bug: a mid-period agent rebuild (class discovery or
// cost drift) used to replace the agent and call BeginPeriod, zeroing
// Accepted — the next tick then computed used=0 and credited carry
// with capacity that was actually spent. Carry must be identical
// whether or not a rebuild happened mid-period.
func TestCarrySurvivesMidPeriodRebuild(t *testing.T) {
	const periodMs = 100
	drive := func(rebuild func(p *pricer)) float64 {
		p := newPricer(market.DefaultConfig(1), periodMs)
		for i := 0; i < 3; i++ {
			if !p.offer("classA", 20) {
				t.Fatalf("offer %d refused with supply available", i)
			}
			if !p.accept("classA") {
				t.Fatalf("accept %d failed with supply available", i)
			}
		}
		if rebuild != nil {
			rebuild(p)
		}
		p.tick()
		return carryOf(p)
	}
	base := drive(nil) // 3×20ms accepted: carry = 100 − 60 = 40
	cases := []struct {
		name    string
		rebuild func(p *pricer)
	}{
		{"class arrival", func(p *pricer) { p.observe("classB", 10) }},
		// Drift refreshes the estimate, but the work already accepted was
		// priced (and performed) under the old estimate: used must still
		// charge 3×20ms, not 3×40ms and not zero.
		{"cost drift", func(p *pricer) { p.observe("classA", 40) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			before := drive(tc.rebuild)
			if before != base {
				t.Fatalf("mid-period rebuild (%s) changed carry: %.1f, want %.1f",
					tc.name, before, base)
			}
		})
	}
}

// TestRebuildReplansRemainingCapacity checks the other half of the
// carry fix: the rebuilt agent must plan only the capacity still
// unspent this period, not a fresh full budget on top of work already
// accepted.
func TestRebuildReplansRemainingCapacity(t *testing.T) {
	p := newPricer(market.DefaultConfig(1), 100)
	for i := 0; i < 3; i++ {
		if !p.offer("classA", 20) || !p.accept("classA") {
			t.Fatalf("warm-up accept %d failed", i)
		}
	}
	p.observe("classB", 10) // rebuild with 60ms already spent
	p.mu.Lock()
	planned := p.agent.PlannedSupply()
	costs := append([]float64(nil), p.costs...)
	p.mu.Unlock()
	plannedMs := 0.0
	for c, n := range planned {
		plannedMs += float64(n) * costs[c]
	}
	if plannedMs > 40+1e-9 {
		t.Fatalf("rebuilt agent planned %.1fms with only 40ms of the period left", plannedMs)
	}
}

// TestDriftFloorZeroCostClass is the regression test for the drift
// threshold: with a stored cost of 0 the pure relative test
// |Δ| > cost·0.25 degenerates to |Δ| > 0, so any nonzero estimate
// rebuilt the agent on every single request. Sub-floor jitter must not
// rebuild; genuine drift still must.
func TestDriftFloorZeroCostClass(t *testing.T) {
	p := newPricer(market.DefaultConfig(1), 100)
	p.offer("free", 0)
	before := agentOf(p)
	for i := 0; i < 8; i++ {
		p.offer("free", 0.2) // estimate jitter below the absolute floor
	}
	if agentOf(p) != before {
		t.Fatalf("sub-floor cost jitter on a zero-cost class rebuilt the agent")
	}
	p.offer("free", 50) // real drift: both floor and relative bands exceeded
	if agentOf(p) == before {
		t.Fatalf("genuine cost drift no longer rebuilds the agent")
	}
}
