package cluster

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/qamarket/qamarket/internal/catalog"
)

func TestClassKey(t *testing.T) {
	cases := []struct{ sql, want string }{
		{"SELECT v FROM t03 WHERE v > 17", "SELECT v FROM t03 WHERE v > #"},
		{"SELECT v FROM t03 WHERE v > 42", "SELECT v FROM t03 WHERE v > #"},
		{"SELECT a FROM v12 WHERE b < 3.25 GROUP BY a", "SELECT a FROM v12 WHERE b < # GROUP BY a"},
		{"SELECT * FROM t00", "SELECT * FROM t00"},
		{"7 + x2", "# + x2"},
	}
	for _, tc := range cases {
		if got := classKey(tc.sql); got != tc.want {
			t.Errorf("classKey(%q) = %q, want %q", tc.sql, got, tc.want)
		}
	}
	if classKey("SELECT v FROM t03 WHERE v > 17") != classKey("SELECT v FROM t03 WHERE v > 990") {
		t.Error("same template, different literals landed in different classes")
	}
	if classKey("SELECT v FROM t03") == classKey("SELECT v FROM t04") {
		t.Error("different relations landed in the same class")
	}
}

func TestRelationsIn(t *testing.T) {
	cases := []struct {
		sql  string
		want []string
	}{
		{"SELECT a FROM t03", []string{"t03"}},
		{"SELECT a FROM t03 WHERE a > 1", []string{"t03"}},
		{"SELECT a FROM t1, t2 WHERE t1.a = t2.a", []string{"t1", "t2"}},
		{"SELECT a FROM t1 x, t2 y WHERE x.a = y.a", []string{"t1", "t2"}},
		{"SELECT a FROM t1 JOIN t2 ON t1.a = t2.a", []string{"t1", "t2"}},
		{"SELECT a FROM t1 GROUP BY a", []string{"t1"}},
		// Shapes the extractor must refuse to guess about.
		{"SELECT a FROM (SELECT a FROM t1) s", nil},
		{"SELECT 1", nil},
	}
	for _, tc := range cases {
		got := relationsIn(tc.sql)
		if len(got) != len(tc.want) {
			t.Errorf("relationsIn(%q) = %v, want %v", tc.sql, got, tc.want)
			continue
		}
		for i := range tc.want {
			if got[i] != tc.want[i] {
				t.Errorf("relationsIn(%q) = %v, want %v", tc.sql, got, tc.want)
				break
			}
		}
	}
}

// scriptedServer is a minimal wire-speaking fake node for interop
// tests: it records every request line verbatim and answers from a
// tiny script. With batchAware false it behaves like a pre-batching
// build — it ignores the request's batch field entirely and answers
// the envelope's own query only, which is exactly what encoding/json
// does to unknown fields on an old struct.
type scriptedServer struct {
	t  *testing.T
	ln net.Listener

	mu    sync.Mutex
	lines [][]byte

	batchAware bool
	execCode   string // typed code execute replies carry ("" accepts)
}

func startScriptedServer(t *testing.T, batchAware bool, execCode string) *scriptedServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &scriptedServer{t: t, ln: ln, batchAware: batchAware, execCode: execCode}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go s.serve(conn)
		}
	}()
	return s
}

func (s *scriptedServer) serve(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		line, err := r.ReadBytes('\n')
		if err != nil {
			return
		}
		s.mu.Lock()
		s.lines = append(s.lines, bytes.TrimRight(line, "\n"))
		s.mu.Unlock()
		var req request
		if err := json.Unmarshal(line, &req); err != nil {
			return
		}
		rep := reply{ID: req.ID, NodeID: "scripted"}
		switch req.Op {
		case "negotiate":
			rep.Negotiate = &negotiateReply{Feasible: true, Offer: true, EstimateMs: 5}
			if s.batchAware {
				for _, bq := range req.Batch {
					rep.Batch = append(rep.Batch, batchProposal{
						QueryID:   bq.QueryID,
						Negotiate: &negotiateReply{Feasible: true, Offer: true, EstimateMs: 5},
					})
				}
			}
		case "execute":
			if s.execCode != "" {
				rep.Code = s.execCode
				rep.Err = "scripted refusal"
			} else {
				rep.Execute = &executeReply{Accepted: true, Rows: 1, ExecMs: 1}
			}
		default:
			rep.Err = "scripted server: unknown op " + req.Op
		}
		if err := writeMsg(w, &rep); err != nil {
			return
		}
	}
}

// requestLines snapshots the recorded raw request lines.
func (s *scriptedServer) requestLines() [][]byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([][]byte, len(s.lines))
	copy(out, s.lines)
	return out
}

// TestSingleQueryWindowIsByteIdentical proves the new client's batched
// path degrades to the legacy wire format with nothing to coalesce: the
// request a window-of-one sends is byte-for-byte the request an
// unbatched client sends for the same query.
func TestSingleQueryWindowIsByteIdentical(t *testing.T) {
	sql := "SELECT a FROM t1 WHERE a > 7"
	srv := startScriptedServer(t, false, "")
	legacy, err := NewClient(ClientConfig{
		Addrs: []string{srv.ln.Addr().String()}, Mechanism: MechGreedy, Transport: TransportFresh,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := legacy.negotiateAll(sql, nil, time.Time{}); err != nil {
		t.Fatalf("legacy negotiate: %v", err)
	}
	batched, err := NewClient(ClientConfig{
		Addrs: []string{srv.ln.Addr().String()}, Mechanism: MechGreedy, Transport: TransportFresh,
		BatchWindow: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := batched.batches.negotiate(1, sql, classKey(sql), nil, time.Time{}); err != nil {
		t.Fatalf("batched negotiate: %v", err)
	}
	lines := srv.requestLines()
	if len(lines) != 2 {
		t.Fatalf("recorded %d request lines, want 2", len(lines))
	}
	if !bytes.Equal(lines[0], lines[1]) {
		t.Errorf("single-query window not byte-identical to legacy negotiate:\n legacy: %s\nbatched: %s", lines[0], lines[1])
	}
}

// TestNewClientOldServerDegrades proves a coalesced window against a
// pre-batching node falls back to per-query negotiation: the riders
// still get proposals, the node is remembered as batch-unaware, and
// later windows never offer it a batch again.
func TestNewClientOldServerDegrades(t *testing.T) {
	srv := startScriptedServer(t, false, "")
	c, err := NewClient(ClientConfig{
		Addrs: []string{srv.ln.Addr().String()}, Mechanism: MechGreedy, Transport: TransportFresh,
		BatchWindow: 200 * time.Millisecond, BatchLimit: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	window := func(sqlA, sqlB string) {
		t.Helper()
		var wg sync.WaitGroup
		results := make([]proposals, 2)
		errs := make([]error, 2)
		for i, sql := range []string{sqlA, sqlB} {
			wg.Add(1)
			go func(i int, sql string) {
				defer wg.Done()
				results[i], _, errs[i] = c.batches.negotiate(int64(i), sql, classKey(sql), nil, time.Time{})
			}(i, sql)
			time.Sleep(20 * time.Millisecond) // second call rides the first's window
		}
		wg.Wait()
		for i := range results {
			if errs[i] != nil {
				t.Fatalf("window query %d: %v", i, errs[i])
			}
			if len(results[i].ranked) != 1 {
				t.Fatalf("window query %d got %d candidates, want 1", i, len(results[i].ranked))
			}
		}
	}
	window("SELECT a FROM t1 WHERE a > 1", "SELECT a FROM t1 WHERE a > 2")
	first := srv.requestLines()
	// One batched CFP (ignored by the old server), then the rider's
	// individual renegotiation.
	if len(first) != 2 {
		t.Fatalf("first window sent %d requests, want 2 (batched + rider fallback): %s", len(first), first)
	}
	if !bytes.Contains(first[0], []byte(`"batch"`)) {
		t.Errorf("first request carried no batch field: %s", first[0])
	}
	if bytes.Contains(first[1], []byte(`"batch"`)) {
		t.Errorf("rider fallback still batched: %s", first[1])
	}
	ns := c.lookup(srv.ln.Addr().String())
	ns.mu.Lock()
	noBatch := ns.noBatch
	ns.mu.Unlock()
	if !noBatch {
		t.Fatal("old server not remembered as batch-unaware")
	}
	// The next window must go per-query from the start.
	window("SELECT a FROM t1 WHERE a > 3", "SELECT a FROM t1 WHERE a > 4")
	for _, line := range srv.requestLines()[2:] {
		if bytes.Contains(line, []byte(`"batch"`)) {
			t.Errorf("batch offered to a known batch-unaware node: %s", line)
		}
	}
}

// rawExchange sends one raw request line to addr and returns the raw
// reply line — the old-client view of a new server.
func rawExchange(t *testing.T, addr string, req any) []byte {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	w := bufio.NewWriter(conn)
	if err := writeMsg(w, req); err != nil {
		t.Fatal(err)
	}
	line, err := bufio.NewReader(conn).ReadBytes('\n')
	if err != nil {
		t.Fatal(err)
	}
	return bytes.TrimRight(line, "\n")
}

// TestOldClientNewServerUnchanged proves a batch-aware server answers
// an unbatched negotiate with the legacy reply shape: no batch key
// leaks into the envelope an old client will decode.
func TestOldClientNewServerUnchanged(t *testing.T) {
	ds, _, addrs := startTestFederation(t, []float64{1})
	rng := rand.New(rand.NewSource(11))
	templates, err := ds.GenerateTemplates(1, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	sql := templates[0].Instantiate(rng)
	raw := rawExchange(t, addrs[0], &request{Op: "negotiate", SQL: sql, Mechanism: MechGreedy})
	if bytes.Contains(raw, []byte(`"batch"`)) {
		t.Fatalf("unbatched negotiate reply leaked a batch field: %s", raw)
	}
	var rep reply
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Negotiate == nil || !rep.Negotiate.Feasible {
		t.Fatalf("unbatched negotiate broken on batch-aware server: %s", raw)
	}
	// And the same server solves a batched CFP positionally.
	var rep2 reply
	raw2 := rawExchange(t, addrs[0], &request{
		Op: "negotiate", SQL: sql, Mechanism: MechGreedy,
		Batch: []batchQuery{{QueryID: 7, SQL: sql}, {QueryID: 8, SQL: "SELECT nope FROM missing"}},
	})
	if err := json.Unmarshal(raw2, &rep2); err != nil {
		t.Fatal(err)
	}
	if len(rep2.Batch) != 2 {
		t.Fatalf("batched negotiate answered %d of 2 batch queries: %s", len(rep2.Batch), raw2)
	}
	if rep2.Batch[0].Negotiate == nil || !rep2.Batch[0].Negotiate.Feasible {
		t.Errorf("batch query 0 got no proposal: %s", raw2)
	}
	if rep2.Batch[1].Negotiate != nil && rep2.Batch[1].Negotiate.Feasible {
		t.Errorf("infeasible batch query reported feasible: %s", raw2)
	}
}

// seedBidClient builds a cache-enabled client against addr (no RPCs
// are made) and returns it with the seed node's state.
func seedBidClient(t *testing.T, addr string, ttl time.Duration) (*Client, *nodeState) {
	t.Helper()
	c, err := NewClient(ClientConfig{Addrs: []string{addr}, BidCacheTTL: ttl})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	ns := c.lookup(addr)
	if ns == nil {
		t.Fatal("seed node missing from view")
	}
	return c, ns
}

func TestBidCacheEpochBumpInvalidates(t *testing.T) {
	c, ns := seedBidClient(t, "127.0.0.1:9", time.Minute)
	ns.mu.Lock()
	ns.epoch = 3
	ns.mu.Unlock()
	class := classKey("SELECT a FROM t1 WHERE a > 5")
	c.bids.put(class, []*nodeState{ns})
	if got := c.cachedLadder(class); len(got) != 1 || got[0] != ns {
		t.Fatalf("fresh entry not returned: %v", got)
	}
	// The node gossips a new market period: the stamp no longer holds.
	ns.mu.Lock()
	ns.epoch = 4
	ns.mu.Unlock()
	if got := c.cachedLadder(class); got != nil {
		t.Fatalf("epoch bump did not invalidate: %v", got)
	}
	if n := c.health.Counter("bid_cache_invalidations_total"); n != 1 {
		t.Errorf("invalidations = %d, want 1", n)
	}
	// The stale entry is gone, not just hidden: the next lookup is a
	// plain miss.
	c.bids.mu.Lock()
	left := len(c.bids.entries)
	c.bids.mu.Unlock()
	if left != 0 {
		t.Errorf("%d stale entries survived invalidation", left)
	}
}

func TestBidCacheMemberEvictionInvalidates(t *testing.T) {
	c, ns := seedBidClient(t, "127.0.0.1:9", time.Minute)
	class := classKey("SELECT a FROM t1")
	c.bids.put(class, []*nodeState{ns})
	c.viewMu.Lock()
	c.pruneLocked(ns.nodeID(), 1)
	c.viewMu.Unlock()
	if got := c.cachedLadder(class); got != nil {
		t.Fatalf("member eviction did not invalidate: %v", got)
	}
	if n := c.health.Counter("bid_cache_invalidations_total"); n != 1 {
		t.Errorf("invalidations = %d, want 1", n)
	}
}

func TestBidCacheTTLExpires(t *testing.T) {
	c, ns := seedBidClient(t, "127.0.0.1:9", time.Millisecond)
	class := classKey("SELECT a FROM t1")
	c.bids.put(class, []*nodeState{ns})
	time.Sleep(5 * time.Millisecond)
	if got := c.cachedLadder(class); got != nil {
		t.Fatalf("TTL did not expire the entry: %v", got)
	}
}

// TestBidCacheTypedRefusalsInvalidate drives a cached admission into
// each typed refusal and checks the cached ladder dies: the refusal
// says the market moved under the cache.
func TestBidCacheTypedRefusalsInvalidate(t *testing.T) {
	for _, code := range []string{CodeOverload, CodeExpired, CodeDraining} {
		t.Run(code, func(t *testing.T) {
			srv := startScriptedServer(t, true, code)
			c, err := NewClient(ClientConfig{
				Addrs: []string{srv.ln.Addr().String()}, Mechanism: MechGreedy,
				Transport: TransportFresh, BidCacheTTL: time.Minute,
				PeriodMs: 1, MaxRetries: 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			sql := "SELECT a FROM t1 WHERE a > 5"
			class := classKey(sql)
			// Seed the cache the way a successful round would.
			c.bids.put(class, []*nodeState{c.lookup(srv.ln.Addr().String())})
			out := c.Run(1, sql)
			if out.Err == nil {
				t.Fatal("refused query reported success")
			}
			c.bids.mu.Lock()
			_, alive := c.bids.entries[class]
			c.bids.mu.Unlock()
			if alive {
				t.Fatalf("cached ladder survived a typed %s refusal", code)
			}
			if n := c.health.Counter("bid_cache_invalidations_total"); n == 0 {
				t.Error("no invalidation counted")
			}
		})
	}
}

// TestBidCacheHitSkipsNegotiate is the amortization property end to
// end: with a valid cached ladder, a follow-up query of the class costs
// zero negotiate RPCs.
func TestBidCacheHitSkipsNegotiate(t *testing.T) {
	srv := startScriptedServer(t, true, "")
	c, err := NewClient(ClientConfig{
		Addrs: []string{srv.ln.Addr().String()}, Mechanism: MechGreedy,
		Transport: TransportFresh, BidCacheTTL: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if out := c.Run(1, "SELECT a FROM t1 WHERE a > 5"); out.Err != nil {
		t.Fatalf("first run: %v", out.Err)
	}
	afterFirst := c.RPCCounts()["negotiate"]
	if afterFirst == 0 {
		t.Fatal("first run negotiated nothing")
	}
	// Same class, different literal: must ride the cached ladder.
	if out := c.Run(2, "SELECT a FROM t1 WHERE a > 99"); out.Err != nil {
		t.Fatalf("second run: %v", out.Err)
	}
	if got := c.RPCCounts()["negotiate"]; got != afterFirst {
		t.Errorf("cached admission still negotiated: %d -> %d RPCs", afterFirst, got)
	}
	if hits := c.health.Counter("bid_cache_hits_total"); hits != 1 {
		t.Errorf("cache hits = %d, want 1", hits)
	}
	if execs := c.RPCCounts()["execute"]; execs != 2 {
		t.Errorf("execute RPCs = %d, want 2", execs)
	}
}

// TestBatchedWindowSharesOneRPC proves the tentpole arithmetic on the
// wire: a window of three same-class queries against a batch-aware
// node costs one negotiate RPC, not three.
func TestBatchedWindowSharesOneRPC(t *testing.T) {
	srv := startScriptedServer(t, true, "")
	c, err := NewClient(ClientConfig{
		Addrs: []string{srv.ln.Addr().String()}, Mechanism: MechGreedy, Transport: TransportFresh,
		BatchWindow: 300 * time.Millisecond, BatchLimit: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sql := "SELECT a FROM t1 WHERE a > 5"
			_, _, errs[i] = c.batches.negotiate(int64(i), sql, classKey(sql), nil, time.Time{})
		}(i)
		time.Sleep(20 * time.Millisecond)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	if got := c.RPCCounts()["negotiate"]; got != 1 {
		t.Errorf("window of 3 cost %d negotiate RPCs, want 1", got)
	}
	if n := c.health.Counter("batch_coalesced_total"); n != 2 {
		t.Errorf("coalesced = %d, want 2", n)
	}
	lines := srv.requestLines()
	if len(lines) != 1 || !bytes.Contains(lines[0], []byte(`"batch"`)) {
		t.Errorf("expected one batched request, got %d: %s", len(lines), lines)
	}
}

// TestShardProbeSkipsInfeasibleNodes checks the probe set honors
// gossiped relation filters: a member whose filter excludes the query's
// relation is skipped, members without filters are kept, and an
// all-excluded round falls back to the full view.
func TestShardProbeSkipsInfeasibleNodes(t *testing.T) {
	c, err := NewClient(ClientConfig{Addrs: []string{"127.0.0.1:7", "127.0.0.1:8", "127.0.0.1:9"}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	setFilter := func(addr string, rels []string) {
		ns := c.lookup(addr)
		ns.mu.Lock()
		ns.filter = catalog.NewRelationFilter(rels)
		ns.mu.Unlock()
	}
	setFilter("127.0.0.1:7", []string{"t1", "t2"})
	setFilter("127.0.0.1:8", []string{"v9"})
	// 127.0.0.1:9 advertises no filter: always probed.
	got := c.probeSet("SELECT a FROM t1 WHERE a > 5")
	if len(got) != 2 {
		t.Fatalf("probe set size = %d, want 2 (holder + unfiltered)", len(got))
	}
	for _, ns := range got {
		if ns.address() == "127.0.0.1:8" {
			t.Error("provably infeasible node probed")
		}
	}
	if n := c.health.Counter("shard_skips_total"); n != 1 {
		t.Errorf("shard skips = %d, want 1", n)
	}
	// Unparseable shape: full fan-out.
	if got := c.probeSet("SELECT a FROM (SELECT a FROM t1) s"); len(got) != 3 {
		t.Errorf("unparseable query probe set = %d, want full view of 3", len(got))
	}
	// All excluded: fall back to the full view rather than starving.
	setFilter("127.0.0.1:9", []string{"t9"})
	if got := c.probeSet("SELECT a FROM zz"); len(got) != 3 {
		t.Errorf("all-excluded probe set = %d, want full view of 3", len(got))
	}
	// Probing off: full view regardless of filters.
	c.cfg.NoShardProbe = true
	if got := c.probeSet("SELECT a FROM t1"); len(got) != 3 {
		t.Errorf("NoShardProbe probe set = %d, want 3", len(got))
	}
}
