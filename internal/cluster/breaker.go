package cluster

import (
	"sync"
	"time"
)

// breakerState is the circuit breaker's position.
type breakerState int

// Breaker states: closed (traffic flows), open (all calls
// short-circuit), half-open (exactly one probe in flight).
const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	default:
		return "half-open"
	}
}

// breaker is a per-node circuit breaker. A dead node must cost the
// client one timeout per breaker window, not one per query: after
// threshold consecutive failures the breaker opens and every call
// short-circuits without touching the network. Once cooldown elapses
// the breaker goes half-open and admits a single probe; a probe
// success closes the circuit, a probe failure reopens it for another
// cooldown.
type breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time            // injectable clock for tests
	onChange  func(from, to breakerState) // optional transition hook

	mu       sync.Mutex
	state    breakerState
	failures int       // consecutive failures while closed
	openedAt time.Time // when the breaker last opened
	probing  bool      // a half-open probe is in flight
}

func newBreaker(threshold int, cooldown time.Duration, onChange func(from, to breakerState)) *breaker {
	return &breaker{
		threshold: threshold,
		cooldown:  cooldown,
		now:       time.Now,
		onChange:  onChange,
	}
}

// allow reports whether a call may go to the node right now. In
// half-open it admits exactly one probe; callers must follow up with
// success or failure.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.transitionLocked(breakerHalfOpen)
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// success records a successful call: the node is healthy, close the
// circuit.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures = 0
	b.probing = false
	if b.state != breakerClosed {
		b.transitionLocked(breakerClosed)
	}
}

// failure records a failed call: count toward the threshold while
// closed, reopen from half-open.
func (b *breaker) failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	switch b.state {
	case breakerClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.openLocked()
		}
	case breakerHalfOpen:
		b.openLocked()
	case breakerOpen:
		// A straggling concurrent failure; the window is already open.
	}
}

// trip opens the circuit immediately, bypassing the failure count. The
// client uses it when a node *says* it is going away (a typed draining
// reply): no point burning threshold timeouts on an announced death.
func (b *breaker) trip() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	if b.state != breakerOpen {
		b.openLocked()
	}
}

// snapshot returns the current state for observability.
func (b *breaker) snapshot() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

func (b *breaker) openLocked() {
	b.openedAt = b.now()
	b.failures = 0
	b.transitionLocked(breakerOpen)
}

func (b *breaker) transitionLocked(to breakerState) {
	from := b.state
	b.state = to
	if b.onChange != nil && from != to {
		b.onChange(from, to)
	}
}
