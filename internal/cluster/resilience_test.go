package cluster

import (
	"strings"
	"testing"
	"time"

	"github.com/qamarket/qamarket/internal/faultnet"
	"github.com/qamarket/qamarket/internal/metrics"
	"github.com/qamarket/qamarket/internal/sqldb"
)

// startSingleNode builds one node over a tiny table with the given
// config tweaks applied on top of test defaults.
func startSingleNode(t *testing.T, mutate func(*NodeConfig)) *Node {
	t.Helper()
	db := sqldb.Open()
	if _, _, err := db.Exec("CREATE TABLE t (a INT, b INT)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, _, err := db.Exec("INSERT INTO t VALUES (1, 2)"); err != nil {
			t.Fatal(err)
		}
	}
	cfg := NodeConfig{DB: db, MsPerCostUnit: 0.01, PeriodMs: 50}
	if mutate != nil {
		mutate(&cfg)
	}
	n, err := StartNode("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	return n
}

func TestExecTimeoutFactorValidation(t *testing.T) {
	c, err := NewClient(ClientConfig{Addrs: []string{"127.0.0.1:9"}})
	if err != nil {
		t.Fatal(err)
	}
	if c.cfg.ExecTimeoutFactor != 20 {
		t.Errorf("default ExecTimeoutFactor = %d, want 20", c.cfg.ExecTimeoutFactor)
	}
	if got, want := c.cfg.execTimeout(), 20*c.cfg.Timeout; got != want {
		t.Errorf("execTimeout = %v, want %v", got, want)
	}
	c, err = NewClient(ClientConfig{Addrs: []string{"127.0.0.1:9"}, ExecTimeoutFactor: 5, Timeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.cfg.execTimeout(); got != 5*time.Second {
		t.Errorf("execTimeout = %v, want 5s", got)
	}
	if _, err := NewClient(ClientConfig{Addrs: []string{"127.0.0.1:9"}, ExecTimeoutFactor: -1}); err == nil {
		t.Error("negative ExecTimeoutFactor accepted")
	}
	if _, err := NewClient(ClientConfig{Addrs: []string{"127.0.0.1:9"}, BreakerThreshold: -2}); err == nil {
		t.Error("negative BreakerThreshold accepted")
	}
	if _, err := NewClient(ClientConfig{Addrs: []string{"127.0.0.1:9"}, PeriodMs: 100, MaxBackoffMs: 50}); err == nil {
		t.Error("MaxBackoffMs below PeriodMs accepted")
	}
}

func TestBackoffDelayBounds(t *testing.T) {
	c, err := NewClient(ClientConfig{Addrs: []string{"127.0.0.1:9"}, PeriodMs: 20, MaxBackoffMs: 160})
	if err != nil {
		t.Fatal(err)
	}
	wantTarget := []time.Duration{
		20 * time.Millisecond, 40 * time.Millisecond, 80 * time.Millisecond,
		160 * time.Millisecond, 160 * time.Millisecond, // capped
	}
	for round, target := range wantTarget {
		for trial := 0; trial < 50; trial++ {
			d := c.backoffDelay(round)
			if d < target/2 || d > target {
				t.Fatalf("round %d delay %v outside [%v, %v]", round, d, target/2, target)
			}
		}
	}
	// Huge round numbers must not overflow past the cap.
	if d := c.backoffDelay(200); d > 160*time.Millisecond {
		t.Errorf("round 200 delay %v above cap", d)
	}
}

// TestRetryAgainstFlakyServer reproduces the deterministic flaky-server
// scenario: the node's link refuses the first 4 connections and then
// recovers. The client must retry through the failures with bounded
// backoff and complete the query.
func TestRetryAgainstFlakyServer(t *testing.T) {
	node := startSingleNode(t, nil)
	proxy, err := faultnet.Start("127.0.0.1:0", node.Addr(), faultnet.RefuseFirst(4))
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	client, err := NewClient(ClientConfig{
		Addrs: []string{proxy.Addr()}, Mechanism: MechGreedy,
		PeriodMs: 20, MaxBackoffMs: 80, MaxRetries: 20,
		// Keep the breaker out of the way: this test isolates the
		// backoff path.
		BreakerThreshold: 100,
		Timeout:          2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	out := client.Run(1, "SELECT COUNT(*) FROM t")
	elapsed := time.Since(start)
	if out.Err != nil {
		t.Fatalf("query through flaky link failed: %v", out.Err)
	}
	if out.Retries != 4 {
		t.Errorf("Retries = %d, want 4 (one per refused connection)", out.Retries)
	}
	health := client.Health()
	if got := health[metrics.RetriesTotal]; got != 4 {
		t.Errorf("retries_total = %g, want 4", got)
	}
	// Backoff targets for rounds 0..3 are 20, 40, 80, 80ms; jitter keeps
	// each sleep in [1/2, 1] of its target, so the total slept must land
	// in [110, 220]ms (with a little slack for ms truncation).
	slept := health[metrics.BackoffMsTotal]
	if slept < 100 || slept > 230 {
		t.Errorf("backoff_ms_total = %g, want within [110, 220]", slept)
	}
	if elapsed < 100*time.Millisecond {
		t.Errorf("query completed in %v; backoff sleeps not applied", elapsed)
	}
	// 4 refused + 1 negotiate + 1 execute.
	if got := proxy.Accepted(); got != 6 {
		t.Errorf("proxy accepted %d connections, want 6", got)
	}
}

// TestBreakerLimitsDialsToDeadNode verifies the core breaker economy: a
// dead node costs one timeout per breaker window, not one per query.
func TestBreakerLimitsDialsToDeadNode(t *testing.T) {
	node := startSingleNode(t, nil)
	dead, err := faultnet.Start("127.0.0.1:0", node.Addr(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer dead.Close()
	dead.SetBlackhole(true) // crashed-but-routable: every dial times out

	client, err := NewClient(ClientConfig{
		Addrs: []string{node.Addr(), dead.Addr()}, Mechanism: MechGreedy,
		PeriodMs: 20, MaxRetries: 5,
		BreakerThreshold: 2, BreakerCooldown: time.Minute,
		Timeout: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	for qi := 0; qi < 12; qi++ {
		if out := client.Run(int64(qi), "SELECT COUNT(*) FROM t"); out.Err != nil {
			t.Fatalf("query %d: %v", qi, out.Err)
		}
	}
	// Threshold 2 and a one-minute window: exactly 2 timeouts total, no
	// matter how many queries ran.
	if got := dead.Accepted(); got != 2 {
		t.Errorf("dead node was dialed %d times, want 2 (breaker threshold)", got)
	}
	health := client.Health()
	if got := health[metrics.BreakerOpenTotal]; got != 1 {
		t.Errorf("breaker_open_total = %g, want 1", got)
	}
}

// TestGracefulDrainFinishesInFlight drives the drain protocol: a query
// running when Close starts must complete, while new work is refused
// with the typed draining reply.
func TestGracefulDrainFinishesInFlight(t *testing.T) {
	// Expensive enough (~hundreds of ms) that the drain demonstrably
	// overlaps the execution.
	node := startSingleNode(t, func(cfg *NodeConfig) { cfg.MsPerCostUnit = 3; cfg.DrainTimeout = 5 * time.Second })
	client, err := NewClient(ClientConfig{Addrs: []string{node.Addr()}, Mechanism: MechGreedy, Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan Outcome, 1)
	go func() { done <- client.Run(1, "SELECT COUNT(*) FROM t") }()
	time.Sleep(60 * time.Millisecond) // let the query reach execution

	closed := make(chan struct{})
	go func() { node.Close(); close(closed) }()
	time.Sleep(30 * time.Millisecond) // let the drain begin
	if !node.Draining() {
		t.Fatal("node not draining after Close started")
	}

	// New work during the drain: typed refusal, terminal for a
	// single-node federation.
	late, err := NewClient(ClientConfig{
		Addrs: []string{node.Addr()}, Mechanism: MechGreedy,
		PeriodMs: 10, MaxRetries: 2, Timeout: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	out2 := late.Run(2, "SELECT COUNT(*) FROM t")
	if out2.Err == nil {
		t.Error("draining node accepted new work")
	} else if msg := out2.Err.Error(); !strings.Contains(msg, "draining") && !strings.Contains(msg, "breaker open") {
		// Round one sees the typed draining reply (and trips the
		// breaker); later rounds may see the open breaker instead.
		t.Errorf("draining refusal not surfaced: %v", out2.Err)
	}

	out := <-done
	if out.Err != nil {
		t.Errorf("in-flight query killed by drain: %v", out.Err)
	}
	<-closed
	if got := node.health.Counter(metrics.DrainsTotal); got != 1 {
		t.Errorf("drains_total = %d, want 1", got)
	}
	if got := node.health.Counter(metrics.DrainTimeoutsTotal); got != 0 {
		t.Errorf("drain_timeouts_total = %d, want 0 (in-flight work fit the budget)", got)
	}
}

// TestAggregatedUnreachableError checks "no node reachable" names every
// node's failure instead of just the first one.
func TestAggregatedUnreachableError(t *testing.T) {
	client, err := NewClient(ClientConfig{
		Addrs: []string{"127.0.0.1:1", "127.0.0.1:2"}, Mechanism: MechGreedy,
		PeriodMs: 10, MaxRetries: 1, Timeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := client.Run(1, "SELECT 1 FROM t")
	if out.Err == nil {
		t.Fatal("dead federation produced a result")
	}
	msg := out.Err.Error()
	for _, want := range []string{"no node reachable", "node 127.0.0.1:1", "node 127.0.0.1:2"} {
		if !strings.Contains(msg, want) {
			t.Errorf("aggregate error missing %q: %v", want, msg)
		}
	}
}

// TestStatsHealthExposed verifies the failure-domain counters ride the
// existing stats op.
func TestStatsHealthExposed(t *testing.T) {
	node := startSingleNode(t, nil)
	client, err := NewClient(ClientConfig{Addrs: []string{node.Addr()}})
	if err != nil {
		t.Fatal(err)
	}
	node.noteCheckpoint()
	st, err := client.Stats(node.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if st.Health == nil {
		t.Fatal("stats reply carries no health map")
	}
	if st.Health[metrics.CheckpointsTotal] != 1 {
		t.Errorf("checkpoints_total = %g, want 1", st.Health[metrics.CheckpointsTotal])
	}
	if age, ok := st.Health[metrics.CheckpointAgeMs]; !ok || age < 0 || age > 60_000 {
		t.Errorf("checkpoint_age_ms = %g (present=%v)", age, ok)
	}
}
