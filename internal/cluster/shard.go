package cluster

import (
	"strings"

	"github.com/qamarket/qamarket/internal/alloc"
	"github.com/qamarket/qamarket/internal/metrics"
)

// This file holds the client's per-class market sharding: queries are
// grouped into classes (the paper's Q_k, recovered from SQL shape by
// classKey), and the call-for-proposals fan-out for a class is trimmed
// to the members whose gossiped relation filters can actually hold the
// query's relations — the simulator's FeasibleNodes index lifted into
// the live federation. Everything here errs toward inclusion: a query
// whose relations cannot be extracted, or a member without a filter,
// falls back to the full fan-out, so sharding can only remove RPCs that
// were provably wasted.

// classKey normalizes a query to its class: numeric literals are
// collapsed to '#' so "SELECT v FROM t03 WHERE v > 17" and "... v > 42"
// share a class, while digits inside identifiers (t03, v12) survive —
// they name the relations that define the class.
func classKey(sql string) string {
	var b strings.Builder
	b.Grow(len(sql))
	for i := 0; i < len(sql); {
		c := sql[i]
		if c >= '0' && c <= '9' && (i == 0 || !isIdentByte(sql[i-1])) {
			j := i
			for j < len(sql) && (sql[j] >= '0' && sql[j] <= '9' || sql[j] == '.') {
				j++
			}
			b.WriteByte('#')
			i = j
			continue
		}
		b.WriteByte(c)
		i++
	}
	return b.String()
}

// isIdentByte reports whether c can appear inside an identifier.
func isIdentByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_'
}

// relationsIn extracts the relation names a query references: the
// identifiers after FROM (comma lists included, aliases skipped) and
// after each JOIN. It is deliberately conservative — any construct it
// does not understand (a subquery, a parenthesized source) returns nil,
// which callers treat as "probe everyone".
func relationsIn(sql string) []string {
	toks := sqlTokens(sql)
	var rels []string
	for i := 0; i < len(toks); i++ {
		lower := strings.ToLower(toks[i])
		if lower != "from" && lower != "join" {
			continue
		}
		j := i + 1
		for {
			if j >= len(toks) || !isIdentToken(toks[j]) {
				return nil // subquery or shape we don't parse: full fan-out
			}
			rels = append(rels, toks[j])
			j++
			// Skip one alias-shaped identifier (which may also be the next
			// clause's keyword — either way the list ends unless a comma
			// follows).
			if lower == "from" && j < len(toks) && isIdentToken(toks[j]) && !isKeyword(toks[j]) {
				j++
			}
			if lower != "from" || j >= len(toks) || toks[j] != "," {
				break
			}
			j++
		}
		i = j - 1
	}
	return rels
}

// sqlTokens splits SQL into identifier/number runs and single-byte
// punctuation, discarding whitespace. String literals are kept as one
// opaque token so quoted commas cannot masquerade as list separators.
func sqlTokens(sql string) []string {
	var toks []string
	for i := 0; i < len(sql); {
		c := sql[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case isIdentByte(c):
			j := i
			for j < len(sql) && isIdentByte(sql[j]) {
				j++
			}
			toks = append(toks, sql[i:j])
			i = j
		case c == '\'':
			j := i + 1
			for j < len(sql) && sql[j] != '\'' {
				j++
			}
			if j < len(sql) {
				j++
			}
			toks = append(toks, sql[i:j])
			i = j
		default:
			toks = append(toks, sql[i:i+1])
			i++
		}
	}
	return toks
}

// isIdentToken reports whether tok is an identifier starting with a
// letter or underscore.
func isIdentToken(tok string) bool {
	if tok == "" {
		return false
	}
	c := tok[0]
	if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_') {
		return false
	}
	for i := 1; i < len(tok); i++ {
		if !isIdentByte(tok[i]) {
			return false
		}
	}
	return true
}

// isKeyword reports whether an identifier-shaped token is a clause
// keyword that ends a FROM list rather than aliasing a relation.
func isKeyword(tok string) bool {
	switch strings.ToLower(tok) {
	case "where", "group", "order", "limit", "having", "join", "inner",
		"left", "right", "full", "cross", "on", "union", "as":
		return true
	}
	return false
}

// probeSet returns the members the CFP for sql should fan out to. With
// shard probing on, members whose gossiped relation filter provably
// lacks one of the query's relations are skipped (the filter has no
// false negatives, so exclusion is always safe); members without a
// filter — old nodes, or static views that never refreshed — are always
// probed. When every member would be excluded the full view is returned
// instead: an all-excluded round smells like a parsing artifact, and
// the market's own refusals are the authority on infeasibility.
func (c *Client) probeSet(sql string) []*nodeState {
	members := c.nodes()
	if c.cfg.NoShardProbe || len(members) < 2 {
		return members
	}
	rels := relationsIn(sql)
	if len(rels) == 0 {
		return members
	}
	idx := alloc.ScanFeasible(len(members), func(i int) bool {
		ns := members[i]
		ns.mu.Lock()
		f := ns.filter
		ns.mu.Unlock()
		return f == nil || f.HoldsAll(rels)
	})
	if len(idx) == 0 || len(idx) == len(members) {
		return members
	}
	out := make([]*nodeState, len(idx))
	for k, i := range idx {
		out[k] = members[i]
	}
	c.health.Add(metrics.ShardSkipsTotal, int64(len(members)-len(idx)))
	return out
}
