package cluster

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/qamarket/qamarket/internal/faultnet"
	"github.com/qamarket/qamarket/internal/market"
	"github.com/qamarket/qamarket/internal/metrics"
)

// TestChaosPartitionCrashRestart is the failure-domain acceptance test:
// a 3-node QA-NT federation where one node suffers a one-way partition
// that heals, and another crashes mid-workload and restarts from its
// checkpoint. Throughout, the client must keep completing queries
// (every relation has 2 copies, so any single outage leaves everything
// feasible), the breaker must bound how many timeouts the dead node
// charges, and the restarted node must resume its checkpointed price
// table.
func TestChaosPartitionCrashRestart(t *testing.T) {
	ds, nodes, addrs := startTestFederation(t, []float64{1, 1, 1})

	// Node 1 sits behind a partitionable link; node 2 behind a link that
	// will blackhole while the node is down (crashed-but-routable).
	p1, err := faultnet.Start("127.0.0.1:0", addrs[1], nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p1.Close()
	p2, err := faultnet.Start("127.0.0.1:0", addrs[2], nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()

	ckptPath := filepath.Join(t.TempDir(), "node2.json")
	ckpt, err := StartCheckpointer(nodes[2], ckptPath, 25*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}

	const (
		timeout   = 200 * time.Millisecond
		threshold = 2
		cooldown  = 300 * time.Millisecond
	)
	client, err := NewClient(ClientConfig{
		Addrs: []string{addrs[0], p1.Addr(), p2.Addr()}, Mechanism: MechQANT,
		PeriodMs: 20, MaxBackoffMs: 160, MaxRetries: 300,
		BreakerThreshold: threshold, BreakerCooldown: cooldown,
		Timeout: timeout,
	})
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(23))
	templates, err := ds.GenerateTemplates(4, 1, rng)
	if err != nil {
		t.Fatal(err)
	}

	var (
		crashStart    time.Time
		dialsAtCrash  int
		dialsInWindow int
		windowElapsed time.Duration
		fileState     []byte
	)
	const total = 34
	completedAfterRecovery := 0
	for qi := 0; qi < total; qi++ {
		switch qi {
		case 8:
			// One-way partition: requests to node 1 vanish in flight.
			p1.Partition(faultnet.ClientToServer)
		case 16:
			p1.Heal()
		case 20:
			// Crash node 2 hard. The checkpointer's final write freezes
			// the market state the restart must resume.
			if err := ckpt.Stop(); err != nil {
				t.Fatal(err)
			}
			if fileState, err = os.ReadFile(ckptPath); err != nil {
				t.Fatal(err)
			}
			nodes[2].CloseNow()
			p2.SetBlackhole(true)
			crashStart = time.Now()
			dialsAtCrash = p2.Accepted()
		case 27:
			// Restart node 2 over the same data, resuming the checkpoint.
			// The long market period parks its price clock so the
			// resume assertion is not racing a period tick.
			windowElapsed = time.Since(crashStart)
			dialsInWindow = p2.Accepted() - dialsAtCrash
			restarted, err := StartNode("127.0.0.1:0", NodeConfig{
				DB: ds.DBs[2], MsPerCostUnit: 0.02, PeriodMs: 60_000,
				Market: market.DefaultConfig(1),
			})
			if err != nil {
				t.Fatal(err)
			}
			defer restarted.Close()
			ok, err := RestoreNodeFromCheckpoint(restarted, ckptPath)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatal("checkpoint file vanished")
			}
			gotState, err := restarted.MarketState()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(gotState, fileState) {
				t.Errorf("restarted node did not resume the checkpointed price table:\n got %s\nfile %s", gotState, fileState)
			}
			p2.SetTarget(restarted.Addr())
			p2.SetBlackhole(false)
		}
		out := client.Run(int64(qi), templates[qi%len(templates)].Instantiate(rng))
		if out.Err != nil {
			// Every relation has two copies and at most one node is ever
			// down, so nothing is infeasible: any failure is a bug.
			t.Errorf("query %d failed: %v", qi, out.Err)
			continue
		}
		if qi >= 27 {
			completedAfterRecovery++
		}
	}

	// Breaker economy: during the crash window the dead node may charge
	// at most `threshold` timeouts to open the circuit plus one half-open
	// probe per cooldown interval — not one timeout per query/round.
	maxDials := threshold + int(windowElapsed/cooldown) + 1
	if dialsInWindow > maxDials {
		t.Errorf("dead node dialed %d times in a %v window, want <= %d (threshold %d + probes)",
			dialsInWindow, windowElapsed, maxDials, threshold)
	}
	if dialsInWindow < 1 {
		t.Error("crash window saw no dials at all; fault injection not exercised")
	}

	health := client.Health()
	// Both faulted nodes must have tripped their breakers, and at least
	// one circuit must have re-closed after recovery (node 1 heals while
	// queries are still flowing).
	if got := health[metrics.BreakerOpenTotal]; got < 2 {
		t.Errorf("breaker_open_total = %g, want >= 2 (partition + crash)", got)
	}
	if got := health[metrics.BreakerCloseTotal]; got < 1 {
		t.Errorf("breaker_close_total = %g, want >= 1 (recovery re-closes the circuit)", got)
	}
	if completedAfterRecovery != total-27 {
		t.Errorf("only %d/%d queries completed after full recovery", completedAfterRecovery, total-27)
	}
	t.Logf("window=%v dials=%d (cap %d) health=%v", windowElapsed, dialsInWindow, maxDials, health)
}
