package cluster

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// runTransportWorkload stands up a fresh 3-node federation, drives it
// with nClients goroutines × nQueries sequential queries each, and
// returns each query's result cardinality keyed by query id. The
// dataset, templates, and per-goroutine SQL streams are all seeded, so
// two invocations see byte-identical workloads.
func runTransportWorkload(t *testing.T, transport Transport, nClients, nQueries int) map[int64]int {
	t.Helper()
	ds, nodes, addrs := startTestFederation(t, []float64{1, 2, 3})
	templates, err := ds.GenerateTemplates(8, 2, rand.New(rand.NewSource(23)))
	if err != nil {
		t.Fatalf("templates: %v", err)
	}
	client, err := NewClient(ClientConfig{
		Addrs:     addrs,
		Mechanism: MechGreedy, // always offers: results depend only on the data
		PeriodMs:  25,
		Timeout:   5 * time.Second,
		Transport: transport,
	})
	if err != nil {
		t.Fatal(err)
	}

	rows := make(map[int64]int)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < nClients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + g)))
			for q := 0; q < nQueries; q++ {
				id := int64(g*nQueries + q)
				sql := templates[rng.Intn(len(templates))].Instantiate(rng)
				out := client.Run(id, sql)
				if out.Err != nil {
					t.Errorf("transport %s query %d: %v", transport, id, out.Err)
					return
				}
				mu.Lock()
				rows[id] = out.Rows
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()

	// No leaked connections: closing the client must drop every tracked
	// server-side connection (the fresh transport already hung up per
	// RPC; the pooled one severs its persistent conns here).
	client.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		open := 0
		for _, n := range nodes {
			open += n.OpenConns()
		}
		if open == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("transport %s: %d connections still open after Close", transport, open)
		}
		time.Sleep(5 * time.Millisecond)
	}
	return rows
}

// TestConcurrentTransportsAgree is the stress satellite: N goroutines ×
// M RPCs against a 3-node federation, race-clean, with fresh-dial and
// pooled transports producing identical results and leaking nothing.
func TestConcurrentTransportsAgree(t *testing.T) {
	const nClients, nQueries = 8, 5
	pooled := runTransportWorkload(t, TransportPooled, nClients, nQueries)
	fresh := runTransportWorkload(t, TransportFresh, nClients, nQueries)
	if len(pooled) != nClients*nQueries || len(fresh) != nClients*nQueries {
		t.Fatalf("completed pooled=%d fresh=%d, want %d", len(pooled), len(fresh), nClients*nQueries)
	}
	for id, want := range fresh {
		if got := pooled[id]; got != want {
			t.Errorf("query %d: pooled rows=%d fresh rows=%d", id, got, want)
		}
	}
}

// TestPooledReusesConnections pins the point of the pool: a burst of
// sequential RPCs must not dial per RPC. With PoolSize 2 and two lanes
// the client needs at most 4 connections to one node, where the fresh
// transport would have dialed once per exchange.
func TestPooledReusesConnections(t *testing.T) {
	_, nodes, addrs := startTestFederation(t, []float64{1})
	client, err := NewClient(ClientConfig{
		Addrs: addrs, Mechanism: MechGreedy, PeriodMs: 25,
		Timeout: 5 * time.Second, Transport: TransportPooled,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	for i := 0; i < 20; i++ {
		if _, err := client.Stats(addrs[0]); err != nil {
			t.Fatal(err)
		}
	}
	if open := nodes[0].OpenConns(); open > 4 {
		t.Fatalf("pooled transport holds %d conns after 20 RPCs, want <= 4", open)
	}
	// The latency histogram saw every exchange.
	sum, ok := client.OpLatencies()["stats"]
	if !ok || sum.Count != 20 {
		t.Fatalf("stats latency summary = %+v, want 20 observations", sum)
	}
	if sum.P50Ms <= 0 || sum.P99Ms < sum.P50Ms || sum.MaxMs < sum.P99Ms {
		t.Fatalf("implausible latency summary %v", sum)
	}
}

// TestMultiplexedPipelining drives many concurrent RPCs through a
// single-connection pool and checks every caller gets its own reply —
// the demux-by-id property, exercised directly.
func TestMultiplexedPipelining(t *testing.T) {
	_, _, addrs := startTestFederation(t, []float64{1})
	client, err := NewClient(ClientConfig{
		Addrs: addrs, Mechanism: MechGreedy, PeriodMs: 25,
		Timeout: 5 * time.Second, Transport: TransportPooled, PoolSize: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st, err := client.Stats(addrs[0])
			if err != nil {
				errs <- err
				return
			}
			if st.Prices == nil && st.Executed == 0 && st.Offers == 0 {
				// A stats reply is always well-formed; a zero-value with nil
				// map would mean a crossed or dropped demux.
				errs <- fmt.Errorf("empty stats reply")
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
