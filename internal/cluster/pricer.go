package cluster

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"github.com/qamarket/qamarket/internal/economics"
	"github.com/qamarket/qamarket/internal/market"
	"github.com/qamarket/qamarket/internal/vector"
)

// pricer is a node's dynamic QA-NT market agent for the real cluster.
//
// Unlike the simulator, a real node does not know the query-class
// universe upfront: it discovers classes as plan signatures arrive
// (Section 2.1 — each node keeps its own private classification). The
// pricer grows its class table on demand, rebuilding the underlying
// fixed-K market agent while preserving learned prices, and runs the
// same rolling capacity-carry accounting as the simulator adapter so
// classes costing more than one period remain suppliable.
type pricer struct {
	mu       sync.Mutex
	cfg      market.Config
	periodMs float64

	classes map[string]int // signature -> class index
	costs   []float64      // estimated ms per class
	agent   *market.Agent
	carry   float64
	// usedMs is the period-to-date work accepted by agents that were
	// replaced mid-period. A rebuild starts the fresh agent on a new
	// (empty) period, so its Accepted vector forgets work already
	// performed; the fold into usedMs keeps the capacity account exact —
	// tick charges it against carry and the rebuilt agent plans only the
	// remaining budget.
	usedMs float64
}

// driftFloorMs is the absolute half of the cost-drift test: estimate
// jitter below it never triggers a rebuild, no matter how small the
// stored cost. Without it a stored cost of 0 makes the relative
// threshold degenerate (|Δ| > 0), rebuilding the agent on every
// request; a quarter millisecond is far below anything the supply
// solve is sensitive to.
const driftFloorMs = 0.25

// newPricer builds an empty pricer; classes appear via observe.
func newPricer(cfg market.Config, periodMs float64) *pricer {
	return &pricer{
		cfg:      cfg,
		periodMs: periodMs,
		classes:  make(map[string]int),
	}
}

// observe registers (or refreshes) the class behind a plan signature
// with its current cost estimate, returning its index. Rebuilding the
// agent on a class-universe change keeps learned prices.
func (p *pricer) observe(signature string, costMs float64) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if idx, ok := p.classes[signature]; ok {
		if d := math.Abs(p.costs[idx] - costMs); d > driftFloorMs && d > p.costs[idx]*0.25 {
			// Cost estimate drifted (history refined it): refresh the
			// supply set; prices stay. Work already accepted was performed
			// under the old estimate, so fold it before the cost changes.
			p.foldAcceptedLocked()
			p.costs[idx] = costMs
			p.rebuildLocked(p.agent.Prices())
		}
		return idx
	}
	idx := len(p.costs)
	p.costs = append(p.costs, costMs)
	p.classes[signature] = idx
	var prices vector.Prices
	if p.agent != nil {
		p.foldAcceptedLocked()
		prices = append(p.agent.Prices(), p.initialPrice())
	}
	p.rebuildLocked(prices)
	return idx
}

// foldAcceptedLocked banks the current agent's period-to-date accepted
// work into usedMs, charged at the cost estimates it was accepted
// under. Call before any rebuild: the replacement agent starts a fresh
// period with a zero Accepted vector.
func (p *pricer) foldAcceptedLocked() {
	if p.agent == nil {
		return
	}
	for c, cnt := range p.agent.Accepted() {
		if cnt > 0 {
			p.usedMs += float64(cnt) * p.costs[c]
		}
	}
}

func (p *pricer) initialPrice() float64 {
	if p.cfg.InitialPrice > 0 {
		return p.cfg.InitialPrice
	}
	return 1
}

// rebuildLocked replaces the agent for the current class universe,
// seeding it with the given prices (nil = all initial).
func (p *pricer) rebuildLocked(prices vector.Prices) {
	cfg := p.cfg
	cfg.Classes = len(p.costs)
	agent, err := market.NewAgent(p.supplySetLocked(), cfg)
	if err != nil {
		// Config was validated at construction; only a programming error
		// can land here.
		panic(fmt.Sprintf("cluster: rebuilding agent: %v", err))
	}
	if prices != nil {
		if err := agent.SetPrices(prices); err != nil {
			panic(fmt.Sprintf("cluster: carrying prices: %v", err))
		}
	}
	agent.BeginPeriod()
	p.agent = agent
}

func (p *pricer) supplySetLocked() economics.SupplySet {
	// usedMs is nonzero only between a mid-period rebuild and the next
	// tick: the replacement agent may plan only what is left of the
	// period, not a fresh budget on top of work already performed.
	budget := p.periodMs + p.carry - p.usedMs
	if budget < 0 {
		budget = 0
	}
	return economics.TimeBudgetSupplySet{
		Cost:   append([]float64(nil), p.costs...),
		Budget: budget,
	}
}

// offer runs the QA-NT server-side decision for one request of the
// given signature/cost. It returns whether the node offers.
func (p *pricer) offer(signature string, costMs float64) bool {
	idx := p.observe(signature, costMs)
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.agent.Offer(idx)
}

// accept burns one unit of supply; false when supply ran out since the
// offer (another client took it).
func (p *pricer) accept(signature string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	idx, ok := p.classes[signature]
	if !ok {
		return false
	}
	return p.agent.Accept(idx) == nil
}

// tick advances one market period: settle the capacity account, cut
// unsold prices, re-solve the supply problem.
func (p *pricer) tick() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.agent == nil {
		return
	}
	// The period's spend is what mid-period-replaced agents banked plus
	// what the current agent accepted since the last rebuild.
	used := p.usedMs
	for c, cnt := range p.agent.Accepted() {
		if cnt > 0 {
			used += float64(cnt) * p.costs[c]
		}
	}
	p.usedMs = 0
	p.carry += p.periodMs - used
	maxCost := p.periodMs
	for _, c := range p.costs {
		if c > maxCost {
			maxCost = c
		}
	}
	if p.carry > maxCost {
		p.carry = maxCost
	}
	p.agent.EndPeriod()
	if err := p.agent.SetSupplySet(p.supplySetLocked()); err != nil {
		panic(fmt.Sprintf("cluster: refreshing supply set: %v", err))
	}
	p.agent.BeginPeriod()
}

// prices snapshots the private price table keyed by signature.
func (p *pricer) prices() map[string]float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]float64, len(p.classes))
	if p.agent == nil {
		return out
	}
	pr := p.agent.Prices()
	for sig, idx := range p.classes {
		out[sig] = pr[idx]
	}
	return out
}

// stats snapshots the agent counters.
func (p *pricer) stats() market.Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.agent == nil {
		return market.Stats{}
	}
	return p.agent.Stats()
}

// ClassTelemetry is the observable market state of one query class,
// keyed by the node's private plan signature.
type ClassTelemetry struct {
	Signature string  `json:"signature"`
	CostMs    float64 `json:"cost_ms"`
	Price     float64 `json:"price"`
	Planned   int     `json:"planned"`
	Remaining int     `json:"remaining"`
	Accepted  int     `json:"accepted"`
}

// MarketTelemetry is a per-period snapshot of one node's market state
// for the exposition layer: every known class with its price and
// supply picture, plus the agent's lifetime trading counters. Classes
// are sorted by signature so repeated scrapes render identically.
type MarketTelemetry struct {
	// Epoch is the market's age in pricer periods; the Node accessor
	// stamps it (the pricer itself does not count ticks).
	Epoch   uint64           `json:"epoch"`
	Active  bool             `json:"active"`
	CarryMs float64          `json:"carry_ms"`
	Classes []ClassTelemetry `json:"classes"`
	Stats   market.Stats     `json:"stats"`
}

// telemetry snapshots the pricer's market state. A pricer that has not
// yet observed any class returns an empty (but non-nil-stats) snapshot.
func (p *pricer) telemetry() MarketTelemetry {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := MarketTelemetry{CarryMs: p.carry}
	if p.agent == nil {
		return out
	}
	tel := p.agent.Telemetry()
	out.Active = tel.Active
	out.Stats = market.Stats{
		Periods:  tel.Periods,
		Offers:   tel.Offers,
		Accepts:  tel.Accepts,
		Rejects:  tel.Rejects,
		Unsold:   tel.Unsold,
		PriceUps: tel.PriceUps,
		PriceDns: tel.PriceDns,
	}
	out.Classes = make([]ClassTelemetry, 0, len(p.classes))
	for sig, idx := range p.classes {
		out.Classes = append(out.Classes, ClassTelemetry{
			Signature: sig,
			CostMs:    p.costs[idx],
			Price:     tel.Prices[idx],
			Planned:   tel.Planned[idx],
			Remaining: tel.Remaining[idx],
			Accepted:  tel.Accepted[idx],
		})
	}
	sort.Slice(out.Classes, func(i, j int) bool {
		return out.Classes[i].Signature < out.Classes[j].Signature
	})
	return out
}

// PricerState is the serializable market state of one node: the
// private classification (plan signature -> class), the learned cost
// estimates and prices, and the capacity carry. qanode checkpoints it
// across restarts so a node does not relearn its market position.
type PricerState struct {
	Classes map[string]int `json:"classes"`
	Costs   []float64      `json:"costs"`
	Prices  []float64      `json:"prices"`
	Carry   float64        `json:"carry"`
	// Stats carries the agent's lifetime counters across restarts so a
	// recovered node's observability does not reset to zero.
	Stats market.Stats `json:"stats"`
}

// snapshot captures the pricer's persistent state.
func (p *pricer) snapshot() PricerState {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := PricerState{
		Classes: make(map[string]int, len(p.classes)),
		Costs:   append([]float64(nil), p.costs...),
		Carry:   p.carry,
	}
	for sig, idx := range p.classes {
		st.Classes[sig] = idx
	}
	if p.agent != nil {
		st.Prices = p.agent.Prices()
		st.Stats = p.agent.Stats()
	}
	return st
}

// restore installs a previously captured state, rebuilding the agent
// with the learned prices.
func (p *pricer) restore(st PricerState) error {
	if len(st.Costs) != len(st.Classes) || (st.Prices != nil && len(st.Prices) != len(st.Costs)) {
		return fmt.Errorf("cluster: inconsistent pricer state (%d classes, %d costs, %d prices)",
			len(st.Classes), len(st.Costs), len(st.Prices))
	}
	for sig, idx := range st.Classes {
		if idx < 0 || idx >= len(st.Costs) {
			return fmt.Errorf("cluster: pricer state class %q has index %d out of range", sig, idx)
		}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.classes = make(map[string]int, len(st.Classes))
	for sig, idx := range st.Classes {
		p.classes[sig] = idx
	}
	p.costs = append([]float64(nil), st.Costs...)
	p.carry = st.Carry
	p.usedMs = 0 // a restore starts a fresh period
	if len(p.costs) == 0 {
		p.agent = nil
		return nil
	}
	if st.Prices == nil {
		// Legacy checkpoint without prices: rebuild at initial prices.
		p.rebuildLocked(nil)
		return nil
	}
	// market.Restore resumes both the learned prices and the lifetime
	// counters; the supply set is rebuilt fresh (capacity may have
	// changed across the restart).
	cfg := p.cfg
	cfg.Classes = len(p.costs)
	agent, err := market.Restore(p.supplySetLocked(), cfg, market.Snapshot{
		Prices: append([]float64(nil), st.Prices...),
		Stats:  st.Stats,
	})
	if err != nil {
		return fmt.Errorf("cluster: restoring market agent: %w", err)
	}
	agent.BeginPeriod()
	p.agent = agent
	return nil
}
