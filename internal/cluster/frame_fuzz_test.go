package cluster

import (
	"bufio"
	"bytes"
	"testing"
)

// FuzzFrameDecode throws arbitrary bytes at the full frame read path:
// readFrame's header validation, then whichever payload decoder the
// type byte selects, then row materialization. The invariant is
// "error, never panic, never unbounded allocation" — the same promise
// maxLineBytes makes on the JSON lane. Seeded with the golden frames
// of a mixed-kind result so mutations start from valid streams.
func FuzzFrameDecode(f *testing.F) {
	res := frameTestResult(9)
	f.Add(appendFetchHeader(nil, 1, res.Columns, 2.5, 4, 9))
	f.Add(appendFetchBatch(nil, 1, res, 0, 9))
	f.Add(appendFetchBatch(nil, 1, res, 3, 5))
	f.Add(appendFetchEnd(nil, 1, 9, 3, ""))
	f.Add(appendFetchEnd(nil, 1, 4, 1, msgNodeStopping))
	// A whole stream concatenated, and some degenerate inputs.
	stream := appendFetchHeader(nil, 7, res.Columns, 1, 2, 9)
	for lo := 0; lo < 9; lo += 2 {
		hi := lo + 2
		if hi > 9 {
			hi = 9
		}
		stream = appendFetchBatch(stream, 7, res, lo, hi)
	}
	f.Add(appendFetchEnd(stream, 7, 9, 5, ""))
	f.Add([]byte{frameMagic})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bufio.NewReader(bytes.NewReader(data))
		var (
			h   frameHeader
			blk ColBlock
		)
		for {
			fm, err := readFrame(r)
			if err != nil {
				return
			}
			switch fm.typ {
			case frameTypeHeader:
				if decodeFetchHeader(fm.payload, &h) == nil && len(h.columns) > 1<<20 {
					t.Fatalf("header decoded %d columns from %d bytes", len(h.columns), len(fm.payload))
				}
			case frameTypeBatch:
				if decodeFetchBatch(fm.payload, &blk) == nil {
					if blk.Rows*len(blk.Cols) > len(fm.payload) {
						t.Fatalf("batch decoded %d cells from %d bytes", blk.Rows*len(blk.Cols), len(fm.payload))
					}
					if _, err := blk.AppendRows(nil); err != nil {
						t.Fatalf("decoded batch failed to materialize: %v", err)
					}
				}
			case frameTypeEnd:
				decodeFetchEnd(fm.payload)
			}
			fm.release()
		}
	})
}
