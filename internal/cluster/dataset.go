package cluster

import (
	"fmt"
	"math/rand"
	"strings"

	"github.com/qamarket/qamarket/internal/sqldb"
)

// DatasetParams describe the Section 5.2 experiment's data layer: base
// tables, select-project views over them, and 2–4 copies of each
// relation spread over the federation's nodes.
type DatasetParams struct {
	Nodes        int // 5 in the paper
	Tables       int // 20
	Views        int // 80
	RowsPerTable int // scaled down from the paper's 1 GB tablespace
	MinCopies    int // 2
	MaxCopies    int // 4
}

// Figure7Params returns the paper's Section 5.2 layout with a row count
// scaled for fast test runs.
func Figure7Params() DatasetParams {
	return DatasetParams{
		Nodes:        5,
		Tables:       20,
		Views:        80,
		RowsPerTable: 300,
		MinCopies:    2,
		MaxCopies:    4,
	}
}

// Dataset is the generated federation data layer.
type Dataset struct {
	// DBs holds one database per node with that node's copies loaded.
	DBs []*sqldb.DB
	// Relations lists every relation name (tables then views).
	Relations []string
	// Holders maps relation name to the node indices holding a copy.
	Holders map[string][]int
}

// tableName and viewName give the synthetic schema's naming scheme.
func tableName(i int) string { return fmt.Sprintf("t%02d", i) }
func viewName(i int) string  { return fmt.Sprintf("v%02d", i) }

// GenerateDataset builds the per-node databases. Every base table has
// the star-schema shape (id, k, v, grp): k is the join key shared by
// the whole schema, grp the grouping attribute, v the measure. Views
// are select-project restrictions of a random table. Each relation is
// copied onto MinCopies..MaxCopies random nodes; a view's copies are
// placed only on nodes holding its base table.
func GenerateDataset(p DatasetParams, rng *rand.Rand) (*Dataset, error) {
	if p.Nodes <= 0 || p.Tables <= 0 || p.RowsPerTable <= 0 {
		return nil, fmt.Errorf("cluster: bad dataset params %+v", p)
	}
	if p.MinCopies <= 0 || p.MaxCopies < p.MinCopies || p.MaxCopies > p.Nodes {
		return nil, fmt.Errorf("cluster: bad copy range [%d,%d] for %d nodes", p.MinCopies, p.MaxCopies, p.Nodes)
	}
	ds := &Dataset{
		DBs:     make([]*sqldb.DB, p.Nodes),
		Holders: make(map[string][]int),
	}
	for i := range ds.DBs {
		ds.DBs[i] = sqldb.Open()
	}
	for ti := 0; ti < p.Tables; ti++ {
		name := tableName(ti)
		copies := p.MinCopies + rng.Intn(p.MaxCopies-p.MinCopies+1)
		nodes := rng.Perm(p.Nodes)[:copies]
		ddl := fmt.Sprintf("CREATE TABLE %s (id INT, k INT, v FLOAT, grp INT)", name)
		rows := buildRows(name, p.RowsPerTable, rng)
		for _, node := range nodes {
			if _, _, err := ds.DBs[node].Exec(ddl); err != nil {
				return nil, err
			}
			if _, _, err := ds.DBs[node].Exec(rows); err != nil {
				return nil, err
			}
		}
		ds.Relations = append(ds.Relations, name)
		ds.Holders[name] = nodes
	}
	for vi := 0; vi < p.Views; vi++ {
		name := viewName(vi)
		base := tableName(rng.Intn(p.Tables))
		threshold := rng.Intn(50)
		ddl := fmt.Sprintf("CREATE VIEW %s AS SELECT id, k, v, grp FROM %s WHERE v > %d", name, base, threshold)
		baseNodes := ds.Holders[base]
		copies := p.MinCopies + rng.Intn(p.MaxCopies-p.MinCopies+1)
		if copies > len(baseNodes) {
			copies = len(baseNodes)
		}
		order := rng.Perm(len(baseNodes))[:copies]
		var nodes []int
		for _, oi := range order {
			node := baseNodes[oi]
			if _, _, err := ds.DBs[node].Exec(ddl); err != nil {
				return nil, err
			}
			nodes = append(nodes, node)
		}
		ds.Relations = append(ds.Relations, name)
		ds.Holders[name] = nodes
	}
	return ds, nil
}

// buildRows emits one INSERT with RowsPerTable synthetic rows. Keys are
// drawn from a small domain so star joins have fan-out; the measure v
// is uniform in [0,100).
func buildRows(table string, n int, rng *rand.Rand) string {
	var b strings.Builder
	fmt.Fprintf(&b, "INSERT INTO %s VALUES ", table)
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "(%d, %d, %.2f, %d)", i, rng.Intn(64), rng.Float64()*100, rng.Intn(8))
	}
	return b.String()
}

// QueryTemplate is one star-query family of the workload: a fixed join
// shape over co-located relations with a varying selection constant.
type QueryTemplate struct {
	Relations []string
	SQLFormat string // one %d placeholder for the selection constant
}

// Instantiate renders one query of the template.
func (qt QueryTemplate) Instantiate(rng *rand.Rand) string {
	return fmt.Sprintf(qt.SQLFormat, rng.Intn(60))
}

// GenerateTemplates synthesizes count star-query templates, each
// joining joins+1 relations co-located on at least one node, projecting
// the measure, grouping on grp — the "select-join-project-group
// star-queries" of Section 5.2.
func (ds *Dataset) GenerateTemplates(count, joins int, rng *rand.Rand) ([]QueryTemplate, error) {
	if joins < 0 {
		return nil, fmt.Errorf("cluster: negative join count")
	}
	byNode := make([][]string, len(ds.DBs))
	for _, rel := range ds.Relations {
		for _, n := range ds.Holders[rel] {
			byNode[n] = append(byNode[n], rel)
		}
	}
	var out []QueryTemplate
	for len(out) < count {
		node := rng.Intn(len(ds.DBs))
		local := byNode[node]
		if len(local) < joins+1 {
			continue
		}
		idx := rng.Perm(len(local))[:joins+1]
		rels := make([]string, 0, joins+1)
		seen := map[string]bool{}
		dup := false
		for _, i := range idx {
			if seen[local[i]] {
				dup = true
				break
			}
			seen[local[i]] = true
			rels = append(rels, local[i])
		}
		if dup {
			continue
		}
		var b strings.Builder
		hub := rels[0]
		fmt.Fprintf(&b, "SELECT %s.grp, COUNT(*) AS n, SUM(%s.v) AS total FROM %s", hub, hub, hub)
		for _, r := range rels[1:] {
			fmt.Fprintf(&b, " JOIN %s ON %s.k = %s.k", r, hub, r)
		}
		fmt.Fprintf(&b, " WHERE %s.v > %%d GROUP BY %s.grp ORDER BY %s.grp", hub, hub, hub)
		out = append(out, QueryTemplate{Relations: rels, SQLFormat: b.String()})
	}
	return out, nil
}
