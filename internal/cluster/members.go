package cluster

import (
	"errors"
	"time"

	"github.com/qamarket/qamarket/internal/catalog"
	"github.com/qamarket/qamarket/internal/membership"
)

// MemberInfo is one row of the client's membership view, for operator
// tools (qactl -members) and tests.
type MemberInfo struct {
	// ID is the member's stable node identity (the seed address until
	// the node's first reply resolves it).
	ID string
	// Addr is the member's dial address.
	Addr string
	// State is the last gossiped membership state ("seed" before the
	// first view refresh).
	State string
	// Incarnation and Epoch mirror the gossiped member row.
	Incarnation uint64
	Epoch       uint64
	// CatalogDigest is the member's advertised placement digest.
	CatalogDigest string
	// CatalogFilter is the member's advertised relation filter, hex
	// encoded ("" when the member predates filters or hosts nothing).
	CatalogFilter string
	// Driver is the member's advertised storage executor ("row",
	// "vector", "mock:row"; "" on old nodes).
	Driver string
	// Breaker is the client-side circuit state for the member
	// (closed, open, half-open).
	Breaker string
}

// Members snapshots the client's current view, sorted by node ID.
func (c *Client) Members() []MemberInfo {
	nodes := c.nodes()
	out := make([]MemberInfo, 0, len(nodes))
	for _, ns := range nodes {
		ns.mu.Lock()
		info := MemberInfo{
			ID:            ns.id,
			Addr:          ns.addr,
			State:         ns.state,
			Incarnation:   ns.incarnation,
			Epoch:         ns.epoch,
			CatalogDigest: ns.catalog,
			CatalogFilter: ns.filterEnc,
			Driver:        ns.driver,
		}
		ns.mu.Unlock()
		info.Breaker = ns.breaker.snapshot().String()
		out = append(out, info)
	}
	return out
}

// RefreshView fetches a live node's merged membership table and folds
// it into the client's view: new live members are added (with fresh
// breakers, pools, and histograms keyed by their stable ID), members
// gossiped as left or dead are pruned. The background refresher calls
// this every ViewRefresh; tools can call it once for an on-demand
// view. The first reachable node wins — its table is already the
// merged federation view.
func (c *Client) RefreshView() error {
	var lastErr error
	for _, ns := range c.nodes() {
		var rep reply
		if err := c.rpcOn(ns, &request{Op: "members"}, &rep, c.cfg.Timeout); err != nil {
			lastErr = err
			continue
		}
		if rep.Members == nil {
			if rep.Err != "" {
				lastErr = errors.New(rep.Err)
			} else {
				lastErr = errors.New("cluster: malformed members reply")
			}
			continue
		}
		c.applyMembers(rep.Members)
		return nil
	}
	if lastErr == nil {
		lastErr = errors.New("cluster: membership view is empty")
	}
	return lastErr
}

// refreshLoop polls the membership view every ViewRefresh until Close.
func (c *Client) refreshLoop() {
	defer c.refreshWG.Done()
	t := time.NewTicker(c.cfg.ViewRefresh)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			// Errors are transient by construction (every node was
			// unreachable this tick); the next tick retries.
			_ = c.RefreshView()
		case <-c.stopRefresh:
			return
		}
	}
}

// applyMembers folds one node's merged table into the client view.
func (c *Client) applyMembers(mr *membersReply) {
	members := fromWireMembers(mr.Members)
	c.viewMu.Lock()
	defer c.viewMu.Unlock()
	// Index resolved IDs and provisional (seed-address) entries so a
	// gossiped row can claim the entry created for its address.
	byAddr := make(map[string]*nodeState, len(c.view))
	for _, ns := range c.view {
		ns.mu.Lock()
		if !ns.resolved {
			byAddr[ns.addr] = ns
		}
		ns.mu.Unlock()
	}
	for _, m := range members {
		if m.ID == "" {
			continue
		}
		if !m.State.Live() {
			// Left or dead: prune, and remember the incarnation so a
			// slower peer's stale "alive" row cannot resurrect it.
			c.pruneLocked(m.ID, m.Incarnation)
			if ns, ok := byAddr[m.Addr]; ok {
				c.pruneLocked(ns.id, m.Incarnation)
			}
			continue
		}
		ns, ok := c.view[m.ID]
		if !ok {
			if prov, hit := byAddr[m.Addr]; hit {
				// The seed-address entry is this member; resolve it.
				ns, ok = prov, true
				ns.mu.Lock()
				old := ns.id
				ns.id, ns.resolved = m.ID, true
				ns.mu.Unlock()
				if c.view[old] == ns {
					delete(c.view, old)
				}
				c.view[m.ID] = ns
			}
		}
		if !ok {
			if inc, removed := c.removedInc[m.ID]; removed && m.Incarnation <= inc {
				continue // stale resurrection of a pruned member
			}
			delete(c.removedInc, m.ID)
			ns = c.newNodeState(m.ID, m.Addr, true)
			c.view[m.ID] = ns
		}
		c.updateMember(ns, m)
	}
	if len(c.view) == 0 {
		// The whole federation gossiped itself away. Fall back to the
		// configured seeds so a later (re)start is rediscovered.
		for _, addr := range c.cfg.Addrs {
			if _, dup := c.view[addr]; dup {
				continue
			}
			c.view[addr] = c.newNodeState(addr, addr, false)
		}
	}
}

// updateMember refreshes one entry's gossiped fields, rebuilding the
// pooled transport when the member moved to a new address.
func (c *Client) updateMember(ns *nodeState, m membership.Member) {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	if ns.addr != m.Addr && m.Addr != "" {
		if ns.transport != nil {
			c.retired = append(c.retired, ns.transport)
			ns.transport = nil
		}
		ns.addr = m.Addr
		if c.cfg.Transport == TransportPooled {
			ns.transport = newNodeTransport(m.Addr, c.cfg.PoolSize, c.wire)
		}
	}
	ns.state = m.State.String()
	ns.incarnation = m.Incarnation
	ns.epoch = m.Epoch
	ns.catalog = m.CatalogDigest
	ns.driver = m.Driver
	if m.CatalogFilter != ns.filterEnc {
		ns.filterEnc = m.CatalogFilter
		// A malformed advertisement decodes to nil: the member is probed
		// for everything rather than wrongly excluded.
		ns.filter = catalog.DecodeRelationFilter(m.CatalogFilter)
	}
}
