package cluster

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"github.com/qamarket/qamarket/internal/driver"
	"github.com/qamarket/qamarket/internal/market"
	"github.com/qamarket/qamarket/internal/sqldb"
)

// startBenchNode stands up one federation node over a tiny seeded
// dataset for transport benchmarks.
func startBenchNode(b *testing.B) (*Node, string) {
	b.Helper()
	ds, err := GenerateDataset(DatasetParams{
		Nodes: 1, Tables: 2, Views: 2, RowsPerTable: 20, MinCopies: 1, MaxCopies: 1,
	}, rand.New(rand.NewSource(17)))
	if err != nil {
		b.Fatal(err)
	}
	n, err := StartNode("127.0.0.1:0", NodeConfig{
		DB: ds.DBs[0], MsPerCostUnit: 0.001, PeriodMs: 50, Market: market.DefaultConfig(1),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { n.Close() })
	return n, n.Addr()
}

func benchClient(b *testing.B, addr string, transport Transport) *Client {
	b.Helper()
	c, err := NewClient(ClientConfig{
		Addrs: []string{addr}, Timeout: 5 * time.Second, Transport: transport,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(c.Close)
	return c
}

// BenchmarkTransportRPC measures one sequential stats exchange: the
// pooled transport saves the dial round trip the fresh one pays per op.
func BenchmarkTransportRPC(b *testing.B) {
	for _, transport := range []Transport{TransportFresh, TransportPooled} {
		b.Run(string(transport), func(b *testing.B) {
			_, addr := startBenchNode(b)
			c := benchClient(b, addr, transport)
			if _, err := c.Stats(addr); err != nil { // warm the pool / plan caches
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Stats(addr); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTransportConcurrent is the acceptance benchmark's shape:
// 8 concurrent callers per proc hammering one node. Multiplexing lets
// the pooled transport overlap RPCs on a handful of connections where
// the fresh transport pays a dial each.
func BenchmarkTransportConcurrent(b *testing.B) {
	for _, transport := range []Transport{TransportFresh, TransportPooled} {
		b.Run(string(transport), func(b *testing.B) {
			_, addr := startBenchNode(b)
			c := benchClient(b, addr, transport)
			if _, err := c.Stats(addr); err != nil {
				b.Fatal(err)
			}
			b.SetParallelism(8)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := c.Stats(addr); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// benchResult builds the acceptance criterion's 1,000-row, 4-column
// result (int, float, text, bool; every tenth row has a NULL).
func benchResult() *sqldb.Result {
	res := &sqldb.Result{Columns: []string{"id", "score", "name", "ok"}}
	for i := 0; i < 1000; i++ {
		row := sqldb.Row{
			sqldb.NewInt(int64(i)),
			sqldb.NewFloat(float64(i) * 1.5),
			sqldb.NewText(fmt.Sprintf("name-%d", i)),
			sqldb.NewBool(i%2 == 0),
		}
		if i%10 == 0 {
			row[1] = sqldb.Null
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// benchEncodingRoundTrip measures the full fetch path cost of an
// encoding: server-side encode, the JSON hop, client-side decode.
func benchEncodingRoundTrip(b *testing.B, enc int) {
	res := benchResult()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fr := &fetchReply{Accepted: true, Columns: res.Columns}
		if enc >= encCompact {
			fr.Cols = encodeCols(res)
		} else {
			fr.Rows = encodeRows(res)
		}
		data, err := json.Marshal(fr)
		if err != nil {
			b.Fatal(err)
		}
		got := new(fetchReply)
		if err := json.Unmarshal(data, got); err != nil {
			b.Fatal(err)
		}
		rows, err := got.rows()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != len(res.Rows) {
			b.Fatalf("decoded %d rows", len(rows))
		}
	}
}

func BenchmarkFetchEncodingTagged(b *testing.B)  { benchEncodingRoundTrip(b, encTagged) }
func BenchmarkFetchEncodingCompact(b *testing.B) { benchEncodingRoundTrip(b, encCompact) }

// resetFetchStream rewinds a fetchStream for the next decode while
// keeping its reusable header/block buffers warm.
func resetFetchStream(fs *fetchStream) {
	fs.gotHeader, fs.done = false, false
	fs.recv, fs.delivered, fs.batches, fs.skip = 0, 0, 0, 0
	fs.end = frameEnd{}
}

// benchFrameRoundTrip is one full frame-path fetch: server-side encode
// of header + batches + end into a pooled buffer, then client-side
// decode through fetchStream into reusable column blocks. The input is
// a driver block — the same columnar shape a storage driver's Execute
// returns — so the encode half exercises the zero-transposition path
// the server runs in production. Returns the rows delivered to the
// sink.
func benchFrameRoundTrip(blk *ColBlock, fb *frameBuf, src *bytes.Reader, br *bufio.Reader, fs *fetchStream, cur *driver.Cursor, chunk *ColBlock) (int64, error) {
	const batch = 256
	buf := appendFetchHeader(fb.b[:0], 1, blk.Columns, 1, batch, blk.Rows)
	cur.Row = 0
	for blk.NextBatch(cur, batch, chunk) {
		buf = appendFetchBatchCols(buf, 1, chunk)
	}
	buf = appendFetchEnd(buf, 1, uint64(blk.Rows), (blk.Rows+batch-1)/batch, "")
	fb.b = buf
	src.Reset(buf)
	br.Reset(src)
	resetFetchStream(fs)
	for !fs.done {
		fm, err := readFrame(br)
		if err != nil {
			return fs.delivered, err
		}
		_, err = fs.onFrame(fm.typ, fm.payload)
		fm.release()
		if err != nil {
			return fs.delivered, err
		}
	}
	return fs.delivered, nil
}

// BenchmarkFetchFrameRoundTrip is the binary lane's counterpart to the
// JSON encoding benchmarks above: the same 1,000-row result through
// frame encode + streamed decode. The acceptance criterion for the
// framing tentpole is <= 16 allocs/op here (the JSON compact path
// costs ~1,120), asserted by TestFetchFrameAllocs.
func BenchmarkFetchFrameRoundTrip(b *testing.B) {
	res := benchResult()
	blk := driver.FromResult(res)
	fb := getFrameBuf()
	defer putFrameBuf(fb)
	var (
		src bytes.Reader
		sum int64
	)
	br := bufio.NewReader(&src)
	var (
		cur   driver.Cursor
		chunk ColBlock
	)
	fs := &fetchStream{sink: fetchSink{block: func(blk *ColBlock) error {
		for _, v := range blk.Cols[0].Ints {
			sum += v
		}
		return nil
	}}}
	b.ReportAllocs()
	b.ResetTimer()
	var bytesPerOp int
	for i := 0; i < b.N; i++ {
		n, err := benchFrameRoundTrip(blk, fb, &src, br, fs, &cur, &chunk)
		if err != nil {
			b.Fatal(err)
		}
		if n != int64(blk.Rows) {
			b.Fatalf("delivered %d rows", n)
		}
		bytesPerOp = len(fb.b)
	}
	b.SetBytes(int64(bytesPerOp))
}

// TestFetchFrameAllocs pins the framing tentpole's allocation budget:
// a 1,000-row frame-path fetch must stay at or under 16 allocs — the
// remaining steady-state allocations are the per-batch text blob and
// the header's column-name strings.
func TestFetchFrameAllocs(t *testing.T) {
	if raceEnabled {
		// sync.Pool deliberately bypasses itself at random under the
		// race detector, so pooled-path allocation counts are
		// nondeterministic there.
		t.Skip("allocation counts are not deterministic under -race")
	}
	res := benchResult()
	blk := driver.FromResult(res)
	fb := getFrameBuf()
	defer putFrameBuf(fb)
	var src bytes.Reader
	br := bufio.NewReader(&src)
	var sum int64
	var (
		cur   driver.Cursor
		chunk ColBlock
	)
	fs := &fetchStream{sink: fetchSink{block: func(blk *ColBlock) error {
		for _, v := range blk.Cols[0].Ints {
			sum += v
		}
		return nil
	}}}
	allocs := testing.AllocsPerRun(50, func() {
		if n, err := benchFrameRoundTrip(blk, fb, &src, br, fs, &cur, &chunk); err != nil || n != int64(blk.Rows) {
			t.Fatalf("round trip: n=%d err=%v", n, err)
		}
	})
	if allocs > 16 {
		t.Fatalf("frame fetch round trip costs %.0f allocs/op, budget is 16", allocs)
	}
}
