package cluster

import (
	"bufio"
	"math/rand"
	"net"
	"strings"
	"testing"
	"time"

	"github.com/qamarket/qamarket/internal/sqldb"
)

// TestNodeFailureMidWorkload kills one node partway through a workload
// and verifies the client keeps completing queries on the survivors.
func TestNodeFailureMidWorkload(t *testing.T) {
	ds, nodes, addrs := startTestFederation(t, []float64{1, 1, 1})
	client, err := NewClient(ClientConfig{
		Addrs: addrs, Mechanism: MechGreedy, PeriodMs: 50, Timeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(41))
	templates, err := ds.GenerateTemplates(6, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	completed, failed := 0, 0
	for qi := 0; qi < 30; qi++ {
		if qi == 10 {
			nodes[2].Close() // node 2 dies mid-run
		}
		out := client.Run(int64(qi), templates[qi%len(templates)].Instantiate(rng))
		if out.Err != nil {
			failed++
			continue
		}
		completed++
		if qi > 10 && out.Node == nodes[2].ID() {
			t.Errorf("query %d assigned to the dead node", qi)
		}
	}
	// Queries answerable by the survivors must keep completing. Some
	// relations may have lived only on node 2; those fail legitimately.
	if completed < 15 {
		t.Errorf("only %d/30 completed after one node died", completed)
	}
	t.Logf("completed=%d failed=%d after mid-run node loss", completed, failed)
}

// TestAllNodesDown verifies a clean client error when nobody answers.
func TestAllNodesDown(t *testing.T) {
	client, err := NewClient(ClientConfig{
		Addrs: []string{"127.0.0.1:1", "127.0.0.1:2"}, Mechanism: MechGreedy,
		PeriodMs: 20, MaxRetries: 1, Timeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := client.Run(1, "SELECT 1 FROM t")
	if out.Err == nil {
		t.Fatal("dead federation produced a result")
	}
	if !strings.Contains(out.Err.Error(), "no node reachable") {
		t.Errorf("unexpected error: %v", out.Err)
	}
}

// TestMalformedRequests throws protocol garbage at a node and checks
// it survives and keeps serving well-formed clients.
func TestMalformedRequests(t *testing.T) {
	db := sqldb.Open()
	if _, _, err := db.Exec("CREATE TABLE t (a INT)"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.Exec("INSERT INTO t VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	node, err := StartNode("127.0.0.1:0", NodeConfig{DB: db, MsPerCostUnit: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	garbage := []string{
		"this is not json\n",
		"{\"op\": 12}\n",
		"{\"op\": \"nonsense\"}\n",
		"{\"op\": \"execute\"}\n",                     // missing SQL
		"{\"op\": \"negotiate\", \"sql\": \"???\"}\n", // unparseable SQL
		strings.Repeat("x", 1<<16) + "\n",
		// Over the request-line cap: a hostile client streaming an
		// endless line must be cut off at maxLineBytes, not buffered.
		"{\"op\": \"negotiate\", \"sql\": \"" + strings.Repeat("y", maxLineBytes+1024) + "\"}\n",
	}
	for i, g := range garbage {
		conn, err := net.DialTimeout("tcp", node.Addr(), time.Second)
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		if _, err := conn.Write([]byte(g)); err == nil {
			// Read whatever comes back (error reply or close) and move on.
			conn.SetReadDeadline(time.Now().Add(500 * time.Millisecond))
			bufio.NewReader(conn).ReadBytes('\n')
		}
		conn.Close()
	}
	// The node must still answer a healthy client.
	client, err := NewClient(ClientConfig{Addrs: []string{node.Addr()}, Mechanism: MechGreedy})
	if err != nil {
		t.Fatal(err)
	}
	out := client.Run(1, "SELECT COUNT(*) FROM t")
	if out.Err != nil {
		t.Fatalf("node unhealthy after garbage: %v", out.Err)
	}
}

// TestReadMsgLineCap exercises the request-line bound directly: lines
// up to maxLineBytes parse, anything longer is rejected without being
// accumulated.
func TestReadMsgLineCap(t *testing.T) {
	okLine := `{"sql": "` + strings.Repeat("a", 4096) + `"}` + "\n"
	var req request
	if err := readMsg(bufio.NewReaderSize(strings.NewReader(okLine), 64), &req); err != nil {
		t.Fatalf("multi-fragment line under the cap rejected: %v", err)
	}
	if len(req.SQL) != 4096 {
		t.Fatalf("payload truncated to %d bytes", len(req.SQL))
	}
	longLine := strings.Repeat("b", maxLineBytes+1) + "\n"
	if err := readMsg(bufio.NewReaderSize(strings.NewReader(longLine), 64), &req); err != errLineTooLong {
		t.Fatalf("over-limit line: got %v, want errLineTooLong", err)
	}
}

// TestConcurrentClientsShareOneMarket runs several clients against the
// same QA-NT federation at once; accounting must stay exact.
func TestConcurrentClientsShareOneMarket(t *testing.T) {
	ds, nodes, addrs := startTestFederation(t, []float64{1, 2})
	rng := rand.New(rand.NewSource(55))
	templates, err := ds.GenerateTemplates(4, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	const clients = 4
	const perClient = 8
	done := make(chan Outcome, clients*perClient)
	for c := 0; c < clients; c++ {
		go func(c int) {
			client, err := NewClient(ClientConfig{
				Addrs: addrs, Mechanism: MechQANT, PeriodMs: 50,
				MaxRetries: 100, Timeout: 5 * time.Second,
			})
			if err != nil {
				panic(err)
			}
			crng := rand.New(rand.NewSource(int64(100 + c)))
			for q := 0; q < perClient; q++ {
				done <- client.Run(int64(c*perClient+q), templates[crng.Intn(len(templates))].Instantiate(crng))
			}
		}(c)
	}
	completed := 0
	for i := 0; i < clients*perClient; i++ {
		out := <-done
		if out.Err != nil {
			t.Errorf("query %d: %v", out.QueryID, out.Err)
			continue
		}
		completed++
	}
	total := 0
	for _, n := range nodes {
		total += n.Executed()
	}
	if total != completed {
		t.Errorf("nodes executed %d, clients completed %d", total, completed)
	}
}
