package cluster

import (
	"testing"
	"time"
)

// TestBidCacheDeterministicExpiry drives TTL expiry with a manual
// clock: before the deadline the ladder is served, one tick past it
// the entry dies (and reports the drop so the invalidation counter can
// fire). The wall clock is never consulted.
func TestBidCacheDeterministicExpiry(t *testing.T) {
	now := time.Unix(1000, 0)
	cache := newBidCache(50*time.Millisecond, func() time.Time { return now })
	ns := &nodeState{id: "n1", epoch: 3}
	always := func(*nodeState, uint64) bool { return true }

	cache.put("classA", []*nodeState{ns})
	if ranked, dropped := cache.get("classA", always); len(ranked) != 1 || dropped {
		t.Fatalf("fresh entry: got %d rungs, dropped=%v; want 1, false", len(ranked), dropped)
	}

	now = now.Add(50 * time.Millisecond) // exactly at the deadline: still valid
	if ranked, _ := cache.get("classA", always); len(ranked) != 1 {
		t.Fatalf("entry died at its deadline instead of after it")
	}

	now = now.Add(time.Nanosecond) // one tick past: expired
	if ranked, dropped := cache.get("classA", always); ranked != nil || !dropped {
		t.Fatalf("expired entry: got %v, dropped=%v; want nil, true", ranked, dropped)
	}
	if ranked, dropped := cache.get("classA", always); ranked != nil || dropped {
		t.Fatalf("second lookup after expiry: got %v, dropped=%v; want nil, false (already gone)", ranked, dropped)
	}
}

// TestBidCacheEpochStampInvalidation pins the stamp-revalidation rule
// under the injected clock: a single stale rung kills the whole
// ladder even well inside the TTL.
func TestBidCacheEpochStampInvalidation(t *testing.T) {
	now := time.Unix(2000, 0)
	cache := newBidCache(time.Hour, func() time.Time { return now })
	a := &nodeState{id: "a", epoch: 1}
	b := &nodeState{id: "b", epoch: 7}
	cache.put("classA", []*nodeState{a, b})

	b.mu.Lock()
	b.epoch = 8 // b started a new pricing period since the stamp
	b.mu.Unlock()
	valid := func(ns *nodeState, epoch uint64) bool {
		ns.mu.Lock()
		defer ns.mu.Unlock()
		return ns.epoch == epoch
	}
	if ranked, dropped := cache.get("classA", valid); ranked != nil || !dropped {
		t.Fatalf("stale-stamped ladder survived: got %v, dropped=%v", ranked, dropped)
	}
}
