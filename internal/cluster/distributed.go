package cluster

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/qamarket/qamarket/internal/metrics"
	"github.com/qamarket/qamarket/internal/sqldb"
)

// Distributor evaluates queries that no single node can answer — the
// setting the paper's Section 2.1 delegates to distributed query
// optimizers like MARIPOSA and the Query/Process Trading framework
// [13,14]. It decomposes a select-join query into one subquery per
// referenced relation, allocates each subquery through the same
// call-for-proposals negotiation as whole queries (so QA-NT's supply
// vectors keep gating admission at the subquery granularity, exactly
// the compatibility Section 4 claims), pulls the fragments, and joins
// them in a local scratch database.
//
// Single-relation predicates from the WHERE clause are pushed into the
// corresponding subquery so fragments shrink before travelling.
type Distributor struct {
	client *Client
	// afterNegotiate, when set, runs between winning a negotiation and
	// fetching from the winner, with the winner's node ID and the
	// subquery SQL. Tests use it to kill a node in exactly that window
	// and assert the retry path re-allocates on the surviving view.
	afterNegotiate func(nodeID, sql string)
}

// NewDistributor wraps a federation client.
func NewDistributor(c *Client) *Distributor { return &Distributor{client: c} }

// DistOutcome describes one distributed evaluation.
type DistOutcome struct {
	Result       *sqldb.Result
	Subqueries   int
	FragmentRows int
	AssignMs     float64 // summed negotiation time across subqueries
	TotalMs      float64
	PerNode      map[string]int // fragments fetched per node, by stable node ID
}

// Run evaluates the query, decomposing if needed. Queries a single
// node can answer are delegated to the ordinary protocol (result rows
// are still fetched, since the caller wants them).
func (d *Distributor) Run(queryID int64, sql string) (DistOutcome, error) {
	start := time.Now()
	stmt, err := sqldb.Parse(sql)
	if err != nil {
		return DistOutcome{}, err
	}
	sel, ok := stmt.(*sqldb.SelectStmt)
	if !ok {
		return DistOutcome{}, errors.New("cluster: distributor handles SELECT only")
	}
	out := DistOutcome{PerNode: make(map[string]int)}
	root := d.client.startSpan(queryID, "", "run")
	tc := childCtx(&traceCtx{V: traceV, ID: queryID}, root)
	if root == nil {
		tc = nil
	}
	defer root.Finish()

	// A distributed evaluation shares one deadline across its
	// subqueries, stamped on every negotiate/fetch RPC.
	var deadline time.Time
	if d.client.cfg.QueryTimeout > 0 {
		deadline = start.Add(d.client.cfg.QueryTimeout)
	}

	// Fast path: some node can run the whole query.
	pr, _, err := d.client.negotiateAll(sql, tc, deadline)
	if node := pr.best(); err == nil && node != nil {
		if d.afterNegotiate != nil {
			d.afterNegotiate(node.nodeID(), sql)
		}
		fr, _, ferr := d.client.fetchOn(node, queryID, sql, tc, deadline)
		if ferr == nil && fr.Accepted {
			rows, derr := fr.rows()
			if derr != nil {
				return DistOutcome{}, derr
			}
			out.Result = &sqldb.Result{Columns: fr.Columns, Rows: rows}
			out.Subqueries = 1
			out.FragmentRows = len(rows)
			out.PerNode[node.nodeID()]++
			out.TotalMs = msSince(start)
			return out, nil
		}
	}

	// Decompose: one subquery per FROM entry, with its single-relation
	// conjuncts pushed down. Fragments stream into the loader block by
	// block — literal text is rendered straight off each batch's typed
	// columns, so fragment rows are never materialized as value slices
	// on this side of the wire.
	scratch := getScratch()
	defer putScratch(scratch)
	pushed, residual := splitConjuncts(sel)
	var loader fragmentLoader
	for i, ref := range sel.From {
		name := ref.Name()
		sub := buildSubquery(ref, pushed[i])
		loader.reset()
		frNode, err := d.allocateFetch(queryID, sub, tc, deadline, &loader)
		if err != nil {
			return DistOutcome{}, fmt.Errorf("cluster: subquery for %s: %w", name, err)
		}
		out.Subqueries++
		out.PerNode[frNode.nodeID()]++
		out.FragmentRows += loader.rows
		if err := loader.load(scratch, name); err != nil {
			return DistOutcome{}, err
		}
	}
	// Re-run the original query shape against the local fragments: the
	// fragment tables are named after the FROM aliases, so only the
	// table names (and the already-pushed WHERE) change.
	local := rewriteLocal(sel, residual)
	res, err := scratch.Select(local)
	if err != nil {
		return DistOutcome{}, fmt.Errorf("cluster: local join: %w", err)
	}
	out.Result = res // result rows are fresh slices, safe past the pool
	out.TotalMs = msSince(start)
	return out, nil
}

// allocateFetch negotiates a subquery and streams it from the best
// offer into the loader, retrying through the market's periods like
// Client.Run. The failover ladder walks the round's runner-ups when
// the winner refused or was unreachable before the request went out; a
// lost reply or a fatal engine error surfaces exactly like in Run.
// Every attempt resets the loader first, so a stream lost mid-fragment
// discards the partial text and the retry starts clean.
func (d *Distributor) allocateFetch(queryID int64, sql string, tc *traceCtx, deadline time.Time, loader *fragmentLoader) (*nodeState, error) {
	for attempt := 0; attempt <= d.client.cfg.MaxRetries; attempt++ {
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			return nil, fmt.Errorf("subquery %q: %w", sql, ErrExpired)
		}
		pr, _, err := d.client.negotiateAll(sql, tc, deadline)
		if err != nil {
			return nil, err
		}
		if len(pr.ranked) == 0 {
			time.Sleep(time.Duration(d.client.cfg.PeriodMs) * time.Millisecond)
			continue
		}
		renegotiated := false
		for ci, node := range pr.ranked {
			if ci > 0 {
				if !d.client.takeRetryToken() {
					return nil, fmt.Errorf("subquery %q: %w", sql, ErrRetryBudget)
				}
				d.client.health.Inc(metrics.FailoversTotal)
			}
			if d.afterNegotiate != nil {
				d.afterNegotiate(node.nodeID(), sql)
			}
			loader.reset()
			fr, kind, err := d.client.fetchBlocksOn(node, queryID, sql, tc, deadline, loader.add)
			switch kind {
			case attemptOK:
				if !fr.Accepted {
					renegotiated = true // lost the supply race; this round is stale
				}
			case attemptFatal:
				return nil, err
			case attemptRefused, attemptNotSent:
				continue // next candidate is safe: the subquery did not run here
			case attemptLost:
				// Fetches are read-only fragment pulls: re-running one is
				// wasteful but never incorrect, so the availability-first
				// renegotiate is always the right call here.
				renegotiated = true
			}
			if renegotiated {
				break
			}
			loader.ensureColumns(fr.Columns)
			return node, nil
		}
	}
	return nil, fmt.Errorf("cluster: subquery %q refused by all nodes", sql)
}

// scratchPool recycles the local scratch databases distributed joins
// assemble fragments in. A decomposed query used to pay a fresh
// sqldb.Open per evaluation; pooling with Reset keeps the map/slice
// backbone warm across queries on the coordinator's hot path.
var scratchPool = sync.Pool{New: func() any { return sqldb.Open() }}

func getScratch() *sqldb.DB { return scratchPool.Get().(*sqldb.DB) }

func putScratch(db *sqldb.DB) {
	db.Reset()
	scratchPool.Put(db)
}

// splitConjuncts partitions the WHERE clause's AND-conjuncts into
// per-FROM-entry pushdown lists (conjuncts referencing exactly one
// binding) and the residual evaluated after the local join.
func splitConjuncts(sel *sqldb.SelectStmt) (pushed [][]sqldb.Expr, residual []sqldb.Expr) {
	pushed = make([][]sqldb.Expr, len(sel.From))
	if sel.Where == nil {
		return pushed, nil
	}
	names := make(map[string]int, len(sel.From))
	for i, f := range sel.From {
		names[f.Name()] = i
	}
	for _, c := range conjuncts(sel.Where) {
		quals := map[string]bool{}
		unqualified := false
		collectQuals(c, quals, &unqualified)
		if !unqualified && len(quals) == 1 {
			for q := range quals {
				if i, ok := names[q]; ok {
					pushed[i] = append(pushed[i], c)
					quals = nil
					break
				}
			}
			if quals == nil {
				continue
			}
		}
		residual = append(residual, c)
	}
	return pushed, residual
}

// conjuncts flattens a chain of ANDs.
func conjuncts(e sqldb.Expr) []sqldb.Expr {
	if b, ok := e.(*sqldb.BinaryExpr); ok && b.Op == "AND" {
		return append(conjuncts(b.Left), conjuncts(b.Right)...)
	}
	return []sqldb.Expr{e}
}

// collectQuals gathers the table qualifiers referenced by an
// expression; unqualified column references make pushdown unsafe.
func collectQuals(e sqldb.Expr, quals map[string]bool, unqualified *bool) {
	switch x := e.(type) {
	case *sqldb.ColumnRef:
		if x.Table == "" {
			*unqualified = true
		} else {
			quals[x.Table] = true
		}
	case *sqldb.BinaryExpr:
		collectQuals(x.Left, quals, unqualified)
		collectQuals(x.Right, quals, unqualified)
	case *sqldb.UnaryExpr:
		collectQuals(x.X, quals, unqualified)
	case *sqldb.AggExpr:
		if x.Arg != nil {
			collectQuals(x.Arg, quals, unqualified)
		}
	case *sqldb.InExpr:
		collectQuals(x.X, quals, unqualified)
		for _, item := range x.List {
			collectQuals(item, quals, unqualified)
		}
	case *sqldb.BetweenExpr:
		collectQuals(x.X, quals, unqualified)
		collectQuals(x.Lo, quals, unqualified)
		collectQuals(x.Hi, quals, unqualified)
	case *sqldb.LikeExpr:
		collectQuals(x.X, quals, unqualified)
		collectQuals(x.Pattern, quals, unqualified)
	case *sqldb.IsNullExpr:
		collectQuals(x.X, quals, unqualified)
	}
}

// buildSubquery renders "SELECT * FROM rel [WHERE pushed...]" with the
// pushed conjuncts rewritten against the bare relation.
func buildSubquery(ref sqldb.TableRef, pushed []sqldb.Expr) string {
	var b strings.Builder
	fmt.Fprintf(&b, "SELECT * FROM %s", ref.Table)
	if ref.Alias != "" && ref.Alias != ref.Table {
		fmt.Fprintf(&b, " AS %s", ref.Alias)
	}
	if len(pushed) > 0 {
		b.WriteString(" WHERE ")
		for i, c := range pushed {
			if i > 0 {
				b.WriteString(" AND ")
			}
			b.WriteString(c.String())
		}
	}
	return b.String()
}

// fragmentLoader turns a streamed fragment into local DDL + one bulk
// INSERT without ever materializing rows: each arriving ColBlock is
// rendered to SQL literal text straight off its typed arrays (one
// cursor per array), and column types are inferred from the first
// non-null kind byte seen per column (all-null fragments default to
// INT, which can hold NULLs anyway). reset discards any partial
// fragment so a failover retry starts clean.
type fragmentLoader struct {
	columns []string
	types   []sqldb.Type
	typed   []bool
	rows    int
	ins     strings.Builder
}

func (l *fragmentLoader) reset() {
	l.columns = l.columns[:0]
	l.types = l.types[:0]
	l.typed = l.typed[:0]
	l.rows = 0
	l.ins.Reset()
}

// add consumes one block of the fragment stream. It is handed to
// fetchBlocksOn, so the block's buffers are only valid for the call —
// everything retained is copied into the loader's builder.
func (l *fragmentLoader) add(blk *ColBlock) error {
	if len(l.columns) == 0 {
		l.columns = append(l.columns, blk.Columns...)
		for range blk.Columns {
			l.types = append(l.types, sqldb.TInt)
			l.typed = append(l.typed, false)
		}
	}
	if len(blk.Cols) != len(l.columns) {
		return fmt.Errorf("cluster: fragment block has %d columns, header promised %d", len(blk.Cols), len(l.columns))
	}
	for j := range blk.Cols {
		if l.typed[j] {
			continue
		}
		for _, k := range blk.Cols[j].Kinds {
			switch k {
			case kindByteInt:
				l.types[j], l.typed[j] = sqldb.TInt, true
			case kindByteFloat:
				l.types[j], l.typed[j] = sqldb.TFloat, true
			case kindByteText:
				l.types[j], l.typed[j] = sqldb.TText, true
			case kindByteBool:
				l.types[j], l.typed[j] = sqldb.TBool, true
			}
			if l.typed[j] {
				break
			}
		}
	}
	// Render the block's rows as literal tuples. One cursor per typed
	// array per column; the kind bytes drive which array each cell
	// reads, mirroring the wire decode.
	ncols := len(l.columns)
	offs := make([]struct{ i, f, s, b int }, ncols)
	var num [32]byte
	for r := 0; r < blk.Rows; r++ {
		if l.rows > 0 || r > 0 {
			l.ins.WriteByte(',')
		}
		l.ins.WriteByte('(')
		for j := 0; j < ncols; j++ {
			if j > 0 {
				l.ins.WriteByte(',')
			}
			col := &blk.Cols[j]
			off := &offs[j]
			switch col.Kinds[r] {
			case kindByteInt:
				l.ins.Write(strconv.AppendInt(num[:0], col.Ints[off.i], 10))
				off.i++
			case kindByteFloat:
				l.ins.Write(strconv.AppendFloat(num[:0], col.Floats[off.f], 'g', -1, 64))
				off.f++
			case kindByteText:
				l.ins.WriteByte('\'')
				l.ins.WriteString(col.Texts[off.s])
				l.ins.WriteByte('\'')
				off.s++
			case kindByteBool:
				if col.Bools[off.b] {
					l.ins.WriteString("TRUE")
				} else {
					l.ins.WriteString("FALSE")
				}
				off.b++
			default:
				l.ins.WriteString("NULL")
			}
		}
		l.ins.WriteByte(')')
	}
	l.rows += blk.Rows
	return nil
}

// ensureColumns seeds the column list from the fetch envelope when no
// block carried one — a zero-row fragment still needs its table shape.
func (l *fragmentLoader) ensureColumns(columns []string) {
	if len(l.columns) > 0 {
		return
	}
	l.columns = append(l.columns, columns...)
	for range columns {
		l.types = append(l.types, sqldb.TInt)
		l.typed = append(l.typed, false)
	}
}

// load materializes the accumulated fragment as a local table named
// after the FROM binding.
func (l *fragmentLoader) load(db *sqldb.DB, name string) error {
	var ddl strings.Builder
	fmt.Fprintf(&ddl, "CREATE TABLE %s (", name)
	for j, c := range l.columns {
		if j > 0 {
			ddl.WriteString(", ")
		}
		fmt.Fprintf(&ddl, "%s %s", c, l.types[j])
	}
	ddl.WriteString(")")
	if _, _, err := db.Exec(ddl.String()); err != nil {
		return err
	}
	if l.rows == 0 {
		return nil
	}
	if _, _, err := db.Exec("INSERT INTO " + name + " VALUES " + l.ins.String()); err != nil {
		return err
	}
	return nil
}

// rewriteLocal adapts the original SELECT to the scratch database: the
// FROM entries point at the fragment tables (named by binding), and
// the WHERE keeps only the residual conjuncts.
func rewriteLocal(sel *sqldb.SelectStmt, residual []sqldb.Expr) *sqldb.SelectStmt {
	local := *sel
	local.From = make([]sqldb.TableRef, len(sel.From))
	for i, f := range sel.From {
		local.From[i] = sqldb.TableRef{Table: f.Name()}
	}
	local.Where = nil
	for _, c := range residual {
		if local.Where == nil {
			local.Where = c
		} else {
			local.Where = &sqldb.BinaryExpr{Op: "AND", Left: local.Where, Right: c}
		}
	}
	return &local
}

func msSince(t time.Time) float64 {
	return float64(time.Since(t)) / float64(time.Millisecond)
}
