package cluster

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"github.com/qamarket/qamarket/internal/metrics"
	"github.com/qamarket/qamarket/internal/sqldb"
)

// Distributor evaluates queries that no single node can answer — the
// setting the paper's Section 2.1 delegates to distributed query
// optimizers like MARIPOSA and the Query/Process Trading framework
// [13,14]. It decomposes a select-join query into one subquery per
// referenced relation, allocates each subquery through the same
// call-for-proposals negotiation as whole queries (so QA-NT's supply
// vectors keep gating admission at the subquery granularity, exactly
// the compatibility Section 4 claims), pulls the fragments, and joins
// them in a local scratch database.
//
// Single-relation predicates from the WHERE clause are pushed into the
// corresponding subquery so fragments shrink before travelling.
type Distributor struct {
	client *Client
	// afterNegotiate, when set, runs between winning a negotiation and
	// fetching from the winner, with the winner's node ID and the
	// subquery SQL. Tests use it to kill a node in exactly that window
	// and assert the retry path re-allocates on the surviving view.
	afterNegotiate func(nodeID, sql string)
}

// NewDistributor wraps a federation client.
func NewDistributor(c *Client) *Distributor { return &Distributor{client: c} }

// DistOutcome describes one distributed evaluation.
type DistOutcome struct {
	Result       *sqldb.Result
	Subqueries   int
	FragmentRows int
	AssignMs     float64 // summed negotiation time across subqueries
	TotalMs      float64
	PerNode      map[string]int // fragments fetched per node, by stable node ID
}

// Run evaluates the query, decomposing if needed. Queries a single
// node can answer are delegated to the ordinary protocol (result rows
// are still fetched, since the caller wants them).
func (d *Distributor) Run(queryID int64, sql string) (DistOutcome, error) {
	start := time.Now()
	stmt, err := sqldb.Parse(sql)
	if err != nil {
		return DistOutcome{}, err
	}
	sel, ok := stmt.(*sqldb.SelectStmt)
	if !ok {
		return DistOutcome{}, errors.New("cluster: distributor handles SELECT only")
	}
	out := DistOutcome{PerNode: make(map[string]int)}
	root := d.client.startSpan(queryID, "", "run")
	tc := childCtx(&traceCtx{V: traceV, ID: queryID}, root)
	if root == nil {
		tc = nil
	}
	defer root.Finish()

	// A distributed evaluation shares one deadline across its
	// subqueries, stamped on every negotiate/fetch RPC.
	var deadline time.Time
	if d.client.cfg.QueryTimeout > 0 {
		deadline = start.Add(d.client.cfg.QueryTimeout)
	}

	// Fast path: some node can run the whole query.
	pr, _, err := d.client.negotiateAll(sql, tc, deadline)
	if node := pr.best(); err == nil && node != nil {
		if d.afterNegotiate != nil {
			d.afterNegotiate(node.nodeID(), sql)
		}
		fr, _, ferr := d.client.fetchOn(node, queryID, sql, tc, deadline)
		if ferr == nil && fr.Accepted {
			rows, derr := fr.rows()
			if derr != nil {
				return DistOutcome{}, derr
			}
			out.Result = &sqldb.Result{Columns: fr.Columns, Rows: rows}
			out.Subqueries = 1
			out.FragmentRows = len(rows)
			out.PerNode[node.nodeID()]++
			out.TotalMs = msSince(start)
			return out, nil
		}
	}

	// Decompose: one subquery per FROM entry, with its single-relation
	// conjuncts pushed down.
	scratch := sqldb.Open()
	pushed, residual := splitConjuncts(sel)
	for i, ref := range sel.From {
		name := ref.Name()
		sub := buildSubquery(ref, pushed[i])
		frNode, fr, err := d.allocateFetch(queryID, sub, tc, deadline)
		if err != nil {
			return DistOutcome{}, fmt.Errorf("cluster: subquery for %s: %w", name, err)
		}
		out.Subqueries++
		out.PerNode[frNode.nodeID()]++
		rows, err := fr.rows()
		if err != nil {
			return DistOutcome{}, err
		}
		out.FragmentRows += len(rows)
		if err := loadFragment(scratch, name, fr.Columns, rows); err != nil {
			return DistOutcome{}, err
		}
	}
	// Re-run the original query shape against the local fragments: the
	// fragment tables are named after the FROM aliases, so only the
	// table names (and the already-pushed WHERE) change.
	local := rewriteLocal(sel, residual)
	res, err := scratch.Select(local)
	if err != nil {
		return DistOutcome{}, fmt.Errorf("cluster: local join: %w", err)
	}
	out.Result = res
	out.TotalMs = msSince(start)
	return out, nil
}

// allocateFetch negotiates a subquery and fetches it from the best
// offer, retrying through the market's periods like Client.Run. The
// failover ladder walks the round's runner-ups when the winner refused
// or was unreachable before the request went out; a lost reply or a
// fatal engine error surfaces exactly like in Run.
func (d *Distributor) allocateFetch(queryID int64, sql string, tc *traceCtx, deadline time.Time) (*nodeState, *fetchReply, error) {
	for attempt := 0; attempt <= d.client.cfg.MaxRetries; attempt++ {
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			return nil, nil, fmt.Errorf("subquery %q: %w", sql, ErrExpired)
		}
		pr, _, err := d.client.negotiateAll(sql, tc, deadline)
		if err != nil {
			return nil, nil, err
		}
		if len(pr.ranked) == 0 {
			time.Sleep(time.Duration(d.client.cfg.PeriodMs) * time.Millisecond)
			continue
		}
		renegotiated := false
		for ci, node := range pr.ranked {
			if ci > 0 {
				if !d.client.takeRetryToken() {
					return nil, nil, fmt.Errorf("subquery %q: %w", sql, ErrRetryBudget)
				}
				d.client.health.Inc(metrics.FailoversTotal)
			}
			if d.afterNegotiate != nil {
				d.afterNegotiate(node.nodeID(), sql)
			}
			fr, kind, err := d.client.fetchOn(node, queryID, sql, tc, deadline)
			switch kind {
			case attemptOK:
				if !fr.Accepted {
					renegotiated = true // lost the supply race; this round is stale
				}
			case attemptFatal:
				return nil, nil, err
			case attemptRefused, attemptNotSent:
				continue // next candidate is safe: the subquery did not run here
			case attemptLost:
				// Fetches are read-only fragment pulls: re-running one is
				// wasteful but never incorrect, so the availability-first
				// renegotiate is always the right call here.
				renegotiated = true
			}
			if renegotiated {
				break
			}
			return node, fr, nil
		}
	}
	return nil, nil, fmt.Errorf("cluster: subquery %q refused by all nodes", sql)
}

// splitConjuncts partitions the WHERE clause's AND-conjuncts into
// per-FROM-entry pushdown lists (conjuncts referencing exactly one
// binding) and the residual evaluated after the local join.
func splitConjuncts(sel *sqldb.SelectStmt) (pushed [][]sqldb.Expr, residual []sqldb.Expr) {
	pushed = make([][]sqldb.Expr, len(sel.From))
	if sel.Where == nil {
		return pushed, nil
	}
	names := make(map[string]int, len(sel.From))
	for i, f := range sel.From {
		names[f.Name()] = i
	}
	for _, c := range conjuncts(sel.Where) {
		quals := map[string]bool{}
		unqualified := false
		collectQuals(c, quals, &unqualified)
		if !unqualified && len(quals) == 1 {
			for q := range quals {
				if i, ok := names[q]; ok {
					pushed[i] = append(pushed[i], c)
					quals = nil
					break
				}
			}
			if quals == nil {
				continue
			}
		}
		residual = append(residual, c)
	}
	return pushed, residual
}

// conjuncts flattens a chain of ANDs.
func conjuncts(e sqldb.Expr) []sqldb.Expr {
	if b, ok := e.(*sqldb.BinaryExpr); ok && b.Op == "AND" {
		return append(conjuncts(b.Left), conjuncts(b.Right)...)
	}
	return []sqldb.Expr{e}
}

// collectQuals gathers the table qualifiers referenced by an
// expression; unqualified column references make pushdown unsafe.
func collectQuals(e sqldb.Expr, quals map[string]bool, unqualified *bool) {
	switch x := e.(type) {
	case *sqldb.ColumnRef:
		if x.Table == "" {
			*unqualified = true
		} else {
			quals[x.Table] = true
		}
	case *sqldb.BinaryExpr:
		collectQuals(x.Left, quals, unqualified)
		collectQuals(x.Right, quals, unqualified)
	case *sqldb.UnaryExpr:
		collectQuals(x.X, quals, unqualified)
	case *sqldb.AggExpr:
		if x.Arg != nil {
			collectQuals(x.Arg, quals, unqualified)
		}
	case *sqldb.InExpr:
		collectQuals(x.X, quals, unqualified)
		for _, item := range x.List {
			collectQuals(item, quals, unqualified)
		}
	case *sqldb.BetweenExpr:
		collectQuals(x.X, quals, unqualified)
		collectQuals(x.Lo, quals, unqualified)
		collectQuals(x.Hi, quals, unqualified)
	case *sqldb.LikeExpr:
		collectQuals(x.X, quals, unqualified)
		collectQuals(x.Pattern, quals, unqualified)
	case *sqldb.IsNullExpr:
		collectQuals(x.X, quals, unqualified)
	}
}

// buildSubquery renders "SELECT * FROM rel [WHERE pushed...]" with the
// pushed conjuncts rewritten against the bare relation.
func buildSubquery(ref sqldb.TableRef, pushed []sqldb.Expr) string {
	var b strings.Builder
	fmt.Fprintf(&b, "SELECT * FROM %s", ref.Table)
	if ref.Alias != "" && ref.Alias != ref.Table {
		fmt.Fprintf(&b, " AS %s", ref.Alias)
	}
	if len(pushed) > 0 {
		b.WriteString(" WHERE ")
		for i, c := range pushed {
			if i > 0 {
				b.WriteString(" AND ")
			}
			b.WriteString(c.String())
		}
	}
	return b.String()
}

// loadFragment materializes a fetched fragment as a local table named
// after the FROM binding. Column types are inferred from the first
// non-null value per column (all-null columns default to INT, which
// can hold NULLs anyway).
func loadFragment(db *sqldb.DB, name string, columns []string, rows []sqldb.Row) error {
	types := make([]sqldb.Type, len(columns))
	for j := range columns {
		types[j] = sqldb.TInt
		for _, row := range rows {
			switch row[j].Kind {
			case sqldb.KindNull:
				continue
			case sqldb.KindInt:
				types[j] = sqldb.TInt
			case sqldb.KindFloat:
				types[j] = sqldb.TFloat
			case sqldb.KindText:
				types[j] = sqldb.TText
			case sqldb.KindBool:
				types[j] = sqldb.TBool
			}
			break
		}
	}
	var ddl strings.Builder
	fmt.Fprintf(&ddl, "CREATE TABLE %s (", name)
	for j, c := range columns {
		if j > 0 {
			ddl.WriteString(", ")
		}
		fmt.Fprintf(&ddl, "%s %s", c, types[j])
	}
	ddl.WriteString(")")
	if _, _, err := db.Exec(ddl.String()); err != nil {
		return err
	}
	if len(rows) == 0 {
		return nil
	}
	var ins strings.Builder
	fmt.Fprintf(&ins, "INSERT INTO %s VALUES ", name)
	for i, row := range rows {
		if i > 0 {
			ins.WriteByte(',')
		}
		ins.WriteByte('(')
		for j, v := range row {
			if j > 0 {
				ins.WriteByte(',')
			}
			ins.WriteString(v.String())
		}
		ins.WriteByte(')')
	}
	if _, _, err := db.Exec(ins.String()); err != nil {
		return err
	}
	return nil
}

// rewriteLocal adapts the original SELECT to the scratch database: the
// FROM entries point at the fragment tables (named by binding), and
// the WHERE keeps only the residual conjuncts.
func rewriteLocal(sel *sqldb.SelectStmt, residual []sqldb.Expr) *sqldb.SelectStmt {
	local := *sel
	local.From = make([]sqldb.TableRef, len(sel.From))
	for i, f := range sel.From {
		local.From[i] = sqldb.TableRef{Table: f.Name()}
	}
	local.Where = nil
	for _, c := range residual {
		if local.Where == nil {
			local.Where = c
		} else {
			local.Where = &sqldb.BinaryExpr{Op: "AND", Left: local.Where, Right: c}
		}
	}
	return &local
}

func msSince(t time.Time) float64 {
	return float64(time.Since(t)) / float64(time.Millisecond)
}
