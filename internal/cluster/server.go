package cluster

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/qamarket/qamarket/internal/catalog"
	"github.com/qamarket/qamarket/internal/driver"
	"github.com/qamarket/qamarket/internal/market"
	"github.com/qamarket/qamarket/internal/membership"
	"github.com/qamarket/qamarket/internal/metrics"
	"github.com/qamarket/qamarket/internal/sqldb"
	"github.com/qamarket/qamarket/internal/trace"
)

// NodeConfig parameterizes one federation server.
type NodeConfig struct {
	// DB is the node's local database (tables, views, data). When
	// Driver is nil it is wrapped in the row-at-a-time legacy driver;
	// callers that set Driver directly may leave DB nil.
	DB *sqldb.DB
	// Driver is the node's storage executor. Every query the node
	// plans or runs goes through it: Prepare supplies the cost hints
	// the QA-NT estimator prices, Execute produces the columnar block
	// the frame lane ships. Nil selects the legacy row driver over DB.
	Driver driver.Driver
	// Slowdown models node heterogeneity: the node's execution time is
	// Slowdown times the baseline (the paper's slowest PC was ~14x the
	// fastest on the same star queries). Must be >= 1.
	Slowdown float64
	// IOSlowdown and CPUSlowdown, when positive, replace Slowdown with
	// independent factors for the plan's scan (I/O) and non-scan (CPU)
	// cost components. Machines rarely scale uniformly — a node may have
	// fast disks but a slow processor — and this is what gives query
	// classes different *relative* costs across nodes, the comparative
	// advantage the query market exploits.
	IOSlowdown, CPUSlowdown float64
	// MsPerCostUnit converts planner cost units into baseline execution
	// milliseconds. It scales the whole experiment's time axis; tests
	// use small values so runs take seconds, not minutes.
	MsPerCostUnit float64
	// PeriodMs is the market period T for the node's QA-NT agent.
	PeriodMs int64
	// LinkLatency is added to every reply, modeling the paper's one
	// wireless node. Zero for wired nodes.
	LinkLatency time.Duration
	// ExecNoise makes execution times vary by ±ExecNoise (fraction)
	// around the plan-derived target, modeling the buffer-cache effects
	// that made the paper's EXPLAIN estimates "usually incorrect"
	// (Section 5.2). Zero disables it.
	ExecNoise float64
	// ShareQueueState makes negotiate replies include the node's
	// current backlog. A real autonomous DBMS does not expose its queue
	// to clients — the paper's implementation estimated execution time
	// only (EXPLAIN + history) — so this defaults to false; enable it
	// for the information-structure ablation.
	ShareQueueState bool
	// ExplainFraction delays every negotiate reply by this fraction of
	// the query's estimated execution time on this node, reproducing
	// the paper's observation that "the slowest of the PCs took up to 3
	// seconds to evaluate an EXPLAIN PLAN statement". Zero disables it.
	ExplainFraction float64
	// NoiseSeed seeds the node's private noise stream.
	NoiseSeed int64
	// DrainTimeout bounds the graceful drain on Close: the node keeps
	// answering connections but refuses new work with a typed
	// "draining" reply, and gives in-flight queries this long to finish
	// before hard-stopping. Default 5s.
	DrainTimeout time.Duration
	// MaxInflight bounds how many work requests (negotiate/execute/
	// fetch) the node handles concurrently across all connections;
	// excess requests are refused with a typed "overload" reply instead
	// of blocking. Replaces the old hardcoded per-connection semaphore.
	// Default 256.
	MaxInflight int
	// MaxQueue bounds the executor's FIFO backlog (jobs accepted but
	// not yet running); an execute/fetch that finds the queue full is
	// refused with a typed "overload" reply. Default 256.
	MaxQueue int
	// DedupWindow is how long the node remembers execute/fetch outcomes
	// for at-most-once retransmits (keyed by the client's run id).
	// Default 60s.
	DedupWindow time.Duration
	// FetchBatchRows bounds one binary fetch-stream batch: a frame-
	// negotiated fetch result is shipped in frames of at most this many
	// rows, so neither side ever buffers more than one batch of a huge
	// result. Clients may request smaller batches (request.FetchBatch);
	// larger asks are clamped here. Default 4096.
	FetchBatchRows int
	// NodeID is the node's stable identity in the membership registry,
	// constant across address changes. Empty generates a random one.
	NodeID string
	// Seeds lists addresses of existing federation members to announce
	// this node to on startup (qanode -join). Empty starts a new
	// federation of one.
	Seeds []string
	// GossipPeriodMs is the anti-entropy gossip round length (default
	// 250ms). Each round the node ticks its failure detector and
	// push-pulls its member table with GossipFanout random live peers.
	GossipPeriodMs int64
	// GossipFanout is how many peers each gossip round contacts
	// (default 2).
	GossipFanout int
	// SuspectAfterRounds is how many gossip rounds without heartbeat
	// progress mark a member suspect (default 3); EvictAfterRounds is
	// how many further stalled rounds evict it (default 3).
	SuspectAfterRounds, EvictAfterRounds int
	// MembershipSeed seeds the gossip target-selection RNG. Zero
	// derives a per-node seed from NodeID, so a fixed topology gossips
	// deterministically.
	MembershipSeed int64
	// Market configures the QA-NT agent (Classes is managed dynamically
	// and may be left zero).
	Market market.Config
	// Logf, when set, receives diagnostic messages.
	Logf func(format string, args ...any)
}

func (c *NodeConfig) validate() error {
	if c.Driver == nil {
		if c.DB == nil {
			return errors.New("cluster: NodeConfig.DB is nil")
		}
		c.Driver = driver.NewLegacy(c.DB)
	}
	if c.Slowdown < 1 {
		c.Slowdown = 1
	}
	if c.IOSlowdown <= 0 {
		c.IOSlowdown = c.Slowdown
	}
	if c.CPUSlowdown <= 0 {
		c.CPUSlowdown = c.Slowdown
	}
	if c.MsPerCostUnit <= 0 {
		c.MsPerCostUnit = 1
	}
	if c.PeriodMs <= 0 {
		c.PeriodMs = 500
	}
	if c.Market.Lambda == 0 {
		c.Market = market.DefaultConfig(1)
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 5 * time.Second
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 256
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 256
	}
	if c.DedupWindow <= 0 {
		c.DedupWindow = 60 * time.Second
	}
	if c.FetchBatchRows <= 0 {
		c.FetchBatchRows = 4096
	}
	if c.GossipPeriodMs <= 0 {
		c.GossipPeriodMs = 250
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return nil
}

// Node is one running federation server.
type Node struct {
	cfg    NodeConfig
	ln     net.Listener
	pricer *pricer
	health *metrics.Health
	reg    *membership.Registry
	epoch  atomic.Uint64 // pricer periods elapsed (the market's age)

	// tracer retains recent query-lifecycle spans in a ring buffer;
	// qactl -trace collects them via the "spans" op. Spans record only
	// for requests carrying a trace context, so untraced traffic pays
	// nothing beyond a nil check.
	tracer *trace.Recorder
	// opHist tracks server-side handling latency per op for the
	// /metrics exposition endpoint.
	histMu sync.Mutex
	opHist map[string]*metrics.Histogram

	mu        sync.Mutex
	backlogMs float64
	executed  int
	history   map[string]float64 // plan signature -> EMA of observed ms
	noise     *rand.Rand         // guarded by mu; nil when ExecNoise is 0

	connMu sync.Mutex
	conns  map[net.Conn]struct{} // live client connections, severed on hard stop

	draining       atomic.Bool  // drain started: refuse new work, finish in-flight
	inflight       atomic.Int64 // requests being handled (drain waits on this)
	working        atomic.Int64 // work ops admitted (bounded by MaxInflight)
	lastCheckpoint atomic.Int64 // unix ms of the last market-state checkpoint; 0 = never

	// dedup is the at-most-once window for execute/fetch retransmits.
	dedup *dedupWindow

	// noFrames (test hook) answers every fetch in JSON even when the
	// client negotiated frames, simulating a pre-frame node; frameSever
	// (test hook) severs the stream's connection after that many batch
	// frames, for partial-stream resume tests. Both zero in production.
	noFrames   atomic.Bool
	frameSever atomic.Int32

	execCh   chan *execJob
	stopCh   chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

type execJob struct {
	sql      string
	reply    chan executeReply
	estMs    float64
	withRows bool      // fetch: ship result rows back
	result   *ColBlock // filled when withRows and no error
	trace    *traceCtx // non-nil when the query is being traced
	queued   time.Time // when the job entered the executor queue
	deadline time.Time // zero = no deadline; expired jobs are dropped at dequeue
}

// historyAlpha is the EMA weight of the newest observation in the
// past-execution estimator.
const historyAlpha = 0.4

// StartNode listens on addr (use "127.0.0.1:0" for an ephemeral port)
// and serves until Close.
func StartNode(addr string, cfg NodeConfig) (*Node, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: listen %s: %w", addr, err)
	}
	if cfg.NodeID == "" {
		cfg.NodeID = fallbackNodeID(ln.Addr().String())
	}
	n := &Node{
		cfg:     cfg,
		ln:      ln,
		pricer:  newPricer(cfg.Market, float64(cfg.PeriodMs)),
		health:  metrics.NewHealth(),
		tracer:  trace.NewRecorder(cfg.NodeID, trace.DefaultCapacity, time.Now),
		opHist:  make(map[string]*metrics.Histogram),
		history: make(map[string]float64),
		conns:   make(map[net.Conn]struct{}),
		dedup:   newDedupWindow(cfg.DedupWindow),
		execCh:  make(chan *execJob, cfg.MaxQueue),
		stopCh:  make(chan struct{}),
	}
	if cfg.ExecNoise > 0 {
		n.noise = rand.New(rand.NewSource(cfg.NoiseSeed))
	}
	seed := cfg.MembershipSeed
	if seed == 0 {
		h := fnv.New64a()
		h.Write([]byte(cfg.NodeID))
		seed = int64(h.Sum64())
	}
	n.reg, err = membership.New(membership.Config{
		Self: membership.Member{
			ID:            cfg.NodeID,
			Addr:          ln.Addr().String(),
			CatalogDigest: catalogDigest(cfg.Driver),
			CatalogFilter: catalogFilter(cfg.Driver),
			Driver:        cfg.Driver.Name(),
		},
		Fanout:       cfg.GossipFanout,
		SuspectAfter: cfg.SuspectAfterRounds,
		EvictAfter:   cfg.EvictAfterRounds,
		Rand:         rand.New(rand.NewSource(seed)),
	})
	if err != nil {
		ln.Close()
		return nil, err
	}
	n.wg.Add(4)
	go n.acceptLoop()
	go n.execLoop()
	go n.periodLoop()
	go n.gossipLoop()
	return n, nil
}

// nodeIDSeq disambiguates fallback NodeIDs minted in one process (tests
// start many nodes on 127.0.0.1 ephemeral ports).
var nodeIDSeq atomic.Uint64

// fallbackNodeID derives a NodeID for configs that left it empty. It
// used to be rand.Uint32() from the unseeded global source, which made
// node identities — and everything keyed off them, like the per-node
// membership RNG seed — differ run to run. Hashing the listen address
// plus a process-local counter is deterministic for a fixed topology
// and still unique within a process.
func fallbackNodeID(addr string) string {
	h := fnv.New32a()
	h.Write([]byte(addr))
	return fmt.Sprintf("n-%08x-%d", h.Sum32(), nodeIDSeq.Add(1))
}

// catalogDigest hashes the sorted relation names a node hosts into the
// compact placement advertisement gossiped with its member row.
func catalogDigest(d driver.Driver) string {
	var names []string
	names = append(names, d.Tables()...)
	names = append(names, d.Views()...)
	sort.Strings(names)
	h := fnv.New64a()
	for _, name := range names {
		h.Write([]byte(name))
		h.Write([]byte{0})
	}
	return fmt.Sprintf("%d:%08x", len(names), h.Sum64())
}

// catalogFilter builds the relation-name Bloom filter advertised with
// the member row, the per-class feasibility detail behind the digest.
func catalogFilter(d driver.Driver) string {
	names := append(d.Tables(), d.Views()...)
	return catalog.NewRelationFilter(names).Encode()
}

// Addr returns the node's listen address.
func (n *Node) Addr() string { return n.ln.Addr().String() }

// ID returns the node's stable membership identity.
func (n *Node) ID() string { return n.cfg.NodeID }

// Members snapshots the node's membership table (tombstones included).
func (n *Node) Members() []membership.Member { return n.reg.Members() }

// gossipLoop drives the anti-entropy rounds: announce to the join
// seeds, then every period tick the failure detector and push-pull the
// member table with a few random live peers.
func (n *Node) gossipLoop() {
	defer n.wg.Done()
	for _, seed := range n.cfg.Seeds {
		if seed != "" && seed != n.Addr() {
			go n.gossipWith(seed)
		}
	}
	t := time.NewTicker(time.Duration(n.cfg.GossipPeriodMs) * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			sum := n.reg.Tick()
			n.health.Inc(metrics.GossipRoundsTotal)
			if sum.Evicted > 0 {
				n.health.Add(metrics.MembershipEvictionsTotal, int64(sum.Evicted))
			}
			n.health.SetGauge(metrics.MembersLive, float64(len(n.reg.Live())))
			for _, m := range n.reg.Targets() {
				go n.gossipWith(m.Addr)
			}
		case <-n.stopCh:
			return
		}
	}
}

// gossipWith runs one push-pull exchange: send our table, merge the
// peer's. Exchanges ride fresh connections — gossip is rare and tiny,
// and must not compete with query traffic for pooled lanes.
func (n *Node) gossipWith(addr string) {
	req := &request{Op: "gossip", Gossip: &gossipPayload{
		V:       gossipV,
		From:    n.cfg.NodeID,
		Members: toWireMembers(n.reg.Members()),
	}}
	timeout := 2 * time.Duration(n.cfg.GossipPeriodMs) * time.Millisecond
	if timeout < 200*time.Millisecond {
		timeout = 200 * time.Millisecond
	}
	var rep reply
	if err := freshRPC(addr, req, &rep, timeout); err != nil {
		n.health.Inc(metrics.GossipFailuresTotal)
		return
	}
	if rep.Gossip != nil {
		n.reg.Merge(fromWireMembers(rep.Gossip.Members))
	}
}

// broadcastLeave tombstones the local member and pushes the goodbye to
// every live peer, so departing supply is pruned from the market ahead
// of the failure detector. Best effort with a short timeout: a peer
// that misses it still converges through regular gossip.
func (n *Node) broadcastLeave() {
	n.reg.Leave()
	peers := n.reg.Live()
	req := &request{Op: "gossip", Gossip: &gossipPayload{
		V:       gossipV,
		From:    n.cfg.NodeID,
		Members: toWireMembers(n.reg.Members()),
	}}
	var wg sync.WaitGroup
	for _, m := range peers {
		if m.ID == n.cfg.NodeID {
			continue
		}
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			var rep reply
			_ = freshRPC(addr, req, &rep, 250*time.Millisecond)
		}(m.Addr)
	}
	wg.Wait()
}

// Close stops the node gracefully: new work is refused with a typed
// draining reply (clients keep connecting, so their breakers learn the
// node is going away instead of guessing from dial failures), in-flight
// queries get up to DrainTimeout to finish, then the node hard-stops.
// It is safe to call more than once.
func (n *Node) Close() error { return n.shutdown(n.cfg.DrainTimeout) }

// CloseNow stops the node without draining: in-flight queries get a
// "node shutting down" reply. Tests use it to simulate a crash.
func (n *Node) CloseNow() error { return n.shutdown(0) }

// Draining reports whether the node is refusing new work.
func (n *Node) Draining() bool { return n.draining.Load() }

func (n *Node) shutdown(drainFor time.Duration) error {
	var err error
	n.stopOnce.Do(func() {
		n.draining.Store(true)
		n.health.Inc(metrics.DrainsTotal)
		if drainFor > 0 {
			// Graceful leave: tombstone ourselves and tell the peers,
			// so the membership layer prunes our supply immediately
			// instead of waiting out suspicion. A hard stop (drainFor
			// zero, the crash path) stays silent on purpose.
			n.broadcastLeave()
		}
		// The listener stays open through the drain so clients receive
		// the typed refusal rather than dial errors; only work stops.
		if drainFor > 0 && !n.waitIdle(drainFor) {
			n.health.Inc(metrics.DrainTimeoutsTotal)
			n.cfg.Logf("cluster: drain deadline hit with %d queries in flight", n.inflight.Load())
		}
		err = n.ln.Close()
		close(n.stopCh)
		n.closeConns()
		n.wg.Wait()
	})
	return err
}

// waitIdle polls until no query is in flight or the budget runs out.
func (n *Node) waitIdle(budget time.Duration) bool {
	deadline := time.Now().Add(budget)
	for time.Now().Before(deadline) {
		if n.inflight.Load() == 0 {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return n.inflight.Load() == 0
}

func (n *Node) trackConn(c net.Conn) {
	n.connMu.Lock()
	n.conns[c] = struct{}{}
	n.connMu.Unlock()
}

func (n *Node) untrackConn(c net.Conn) {
	n.connMu.Lock()
	delete(n.conns, c)
	n.connMu.Unlock()
}

// closeConns severs every live client connection so serveConn readers
// unblock during hard stop even against clients that never hang up.
func (n *Node) closeConns() {
	n.connMu.Lock()
	for c := range n.conns {
		c.Close()
	}
	n.connMu.Unlock()
}

// OpenConns reports how many client connections the node currently
// tracks. Tests use it to assert pooled transports do not leak.
func (n *Node) OpenConns() int {
	n.connMu.Lock()
	defer n.connMu.Unlock()
	return len(n.conns)
}

// Executed returns how many queries the node has run.
func (n *Node) Executed() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.executed
}

// MarketState serializes the node's market position (private classes,
// prices, capacity carry) plus its execution-history estimator, for
// checkpointing across restarts.
func (n *Node) MarketState() ([]byte, error) {
	n.mu.Lock()
	history := make(map[string]float64, len(n.history))
	for k, v := range n.history {
		history[k] = v
	}
	n.mu.Unlock()
	self := n.reg.Self()
	return json.Marshal(struct {
		Pricer     PricerState        `json:"pricer"`
		History    map[string]float64 `json:"history"`
		Membership membershipState    `json:"membership"`
	}{n.pricer.snapshot(), history, membershipState{
		Incarnation: self.Incarnation,
		Epoch:       self.Epoch,
	}})
}

// membershipState is the membership slice of a market-state
// checkpoint: enough for a rejoining node to re-announce itself at its
// persisted incarnation (peers' stale tombstones are then refuted by
// the registry's incarnation bump) and to keep advertising its true
// market age.
type membershipState struct {
	Incarnation uint64 `json:"incarnation"`
	Epoch       uint64 `json:"epoch"`
}

// RestoreMarketState installs a checkpoint produced by MarketState.
func (n *Node) RestoreMarketState(data []byte) error {
	var st struct {
		Pricer     PricerState        `json:"pricer"`
		History    map[string]float64 `json:"history"`
		Membership membershipState    `json:"membership"`
	}
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("cluster: parsing market state: %w", err)
	}
	if err := n.pricer.restore(st.Pricer); err != nil {
		return err
	}
	n.mu.Lock()
	n.history = make(map[string]float64, len(st.History))
	for k, v := range st.History {
		n.history[k] = v
	}
	n.mu.Unlock()
	// Membership is restored exactly as persisted (pre-membership
	// checkpoints carry zeros, which are ignored): the incarnation is
	// NOT bumped here, so a freshly restored node's market state stays
	// byte-identical to its checkpoint. Stale left/dead tombstones at
	// the persisted incarnation are refuted organically by the
	// registry the first time a peer gossips them back.
	n.reg.SetIncarnation(st.Membership.Incarnation)
	if st.Membership.Epoch > 0 {
		n.epoch.Store(st.Membership.Epoch)
		n.reg.SetEpoch(st.Membership.Epoch)
	}
	return nil
}

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			if n.draining.Load() {
				return // drain closed the listener
			}
			select {
			case <-n.stopCh:
				return
			default:
				n.cfg.Logf("cluster: accept: %v", err)
				return
			}
		}
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.serveConn(conn)
		}()
	}
}

// serveConn handles one client connection. Requests are dispatched to
// their own goroutines so a multiplexing client can keep many RPCs in
// flight on one connection; replies echo the request's id (the client
// demuxes by it) and share the connection's writer under a mutex.
// Replies therefore complete in finish order, not arrival order — the
// legacy one-at-a-time framing (id 0) is unaffected because such
// clients never pipeline. Work-op concurrency is bounded node-wide by
// the MaxInflight admission gate in handle (excess answered with a
// typed overload refusal), not by per-connection backpressure: a
// refused market participant should learn the node is saturated, not
// wait blind on a stalled TCP window.
func (n *Node) serveConn(conn net.Conn) {
	n.trackConn(conn)
	defer n.untrackConn(conn)
	var handlers sync.WaitGroup
	defer conn.Close()
	defer handlers.Wait() // let in-flight replies hit the wire before Close
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	var wmu sync.Mutex // serializes writeMsg across handler goroutines
	for {
		var req request
		if err := readMsg(r, &req); err != nil {
			if errors.Is(err, ErrTooLarge) {
				// Answer the typed refusal before dropping: the stream
				// position is mid-line so the connection cannot continue,
				// but the client should learn its message was refused for
				// size — a healthy-node condition that must not read as
				// unreachability.
				wmu.Lock()
				writeMsg(w, &reply{Err: err.Error(), Code: CodeTooLarge, NodeID: n.cfg.NodeID})
				wmu.Unlock()
			}
			return // client closed, oversized line, or protocol error; drop the conn
		}
		// Count the whole request as in flight until its reply is on the
		// wire, so a drain never severs a connection mid-reply.
		n.inflight.Add(1)
		handlers.Add(1)
		go func(req request) {
			defer handlers.Done()
			rep := n.handle(&req)
			rep.ID = req.ID
			if n.cfg.LinkLatency > 0 {
				time.Sleep(n.cfg.LinkLatency)
			}
			var err error
			if rep.stream != nil {
				// Frame-negotiated fetch: the result streams as binary
				// frames, taking wmu per frame so other replies interleave.
				err = n.streamFetch(conn, w, &wmu, req.ID, rep.stream)
			} else {
				wmu.Lock()
				err = writeMsg(w, rep)
				wmu.Unlock()
			}
			n.inflight.Add(-1)
			if err != nil {
				// The write path is broken; close the conn so the reader
				// unblocks and the remaining handlers drain.
				conn.Close()
			}
		}(req)
	}
}

// handle runs one request through the drain gate and its op handler,
// recording server-side handling latency per op.
func (n *Node) handle(req *request) *reply {
	start := time.Now()
	defer func() { n.observeOp(req.Op, msSince(start)) }()
	var rep reply
	rep.NodeID = n.cfg.NodeID
	switch {
	case n.draining.Load() && req.Op != "stats" && req.Op != "gossip" && req.Op != "members" && req.Op != "spans":
		// Stats and spans stay readable during drain for observability, and the
		// membership ops keep answering so the leave tombstone (and the
		// final view behind it) can still propagate; every other op
		// gets the typed refusal the client breaker trips on.
		rep.Err = "node draining"
		rep.Code = CodeDraining
		n.health.Inc(metrics.DrainRejectsTotal)
	default:
		switch req.Op {
		case "negotiate", "execute", "fetch":
			n.handleWork(req, &rep)
		case "stats":
			sr := n.nodeStats()
			rep.Stats = &sr
		case "gossip":
			rep.Gossip = n.handleGossip(req)
		case "members":
			rep.Members = n.handleMembers()
		case "spans":
			rep.Spans = n.handleSpans(req)
		default:
			rep.Err = fmt.Sprintf("unknown op %q", req.Op)
		}
	}
	return &rep
}

// handleWork runs one work op (negotiate/execute/fetch) through the
// node-wide admission gate. Past MaxInflight the request is refused
// with a typed overload reply — a market refusal, answered promptly,
// that clients must not confuse with unreachability.
func (n *Node) handleWork(req *request, rep *reply) {
	if n.working.Add(1) > int64(n.cfg.MaxInflight) {
		n.working.Add(-1)
		n.health.Inc(metrics.OverloadTotal)
		rep.Err = msgOverloaded
		rep.Code = CodeOverload
		return
	}
	defer n.working.Add(-1)
	switch req.Op {
	case "negotiate":
		nr, code := n.negotiate(req)
		rep.Code = code
		if code == "" {
			rep.Negotiate = &nr
		} else {
			rep.Err = nr.Err
		}
		// A batched CFP's extra queries are solved in the same admission
		// pass: one working slot, one wire exchange, per-query proposals.
		// The loop runs even when the first query was refused — each
		// query carries its own deadline, so one expired query must not
		// starve its window-mates.
		for _, bq := range req.Batch {
			sub := request{
				Op: "negotiate", SQL: bq.SQL, QueryID: bq.QueryID,
				Mechanism: req.Mechanism, DeadlineMs: bq.DeadlineMs, Trace: req.Trace,
			}
			bnr, bcode := n.negotiate(&sub)
			bp := batchProposal{QueryID: bq.QueryID, Code: bcode}
			if bcode == "" {
				cp := bnr
				bp.Negotiate = &cp
			} else {
				bp.Err = bnr.Err
			}
			rep.Batch = append(rep.Batch, bp)
		}
	case "execute":
		er, code := n.execute(req)
		rep.Execute = &er
		rep.Code = code
	case "fetch":
		fr, blk, code := n.fetch(req)
		rep.Code = code
		if code == "" && fr.Err == "" && fr.Accepted && req.Frame >= frameV1 && !n.noFrames.Load() {
			// Frame-negotiated success: defer encoding to the stream
			// writer. Refusals, errors, and old clients stay JSON.
			n.health.Inc(metrics.FrameNegotiatedCounter(frameV1))
			rep.stream = &frameStream{res: blk, execMs: fr.ExecMs, batch: n.fetchBatchRows(req)}
			return
		}
		if blk != nil {
			fr.Columns = blk.Columns
			// The client advertised the newest encoding it decodes; ship
			// compact columns to encCompact-aware clients and the legacy
			// tagged rows to everyone older.
			if req.Enc >= encCompact {
				fr.Cols = encodeColsBlock(blk)
			} else {
				rows, rerr := encodeRowsBlock(blk)
				if rerr != nil {
					fr.Err = rerr.Error()
				} else {
					fr.Rows = rows
				}
			}
		}
		rep.Fetch = &fr
	}
}

// fetchBatchRows resolves the streamed-fetch batch bound for one
// request: the node's configured cap, tightened by the client's ask.
func (n *Node) fetchBatchRows(req *request) int {
	b := n.cfg.FetchBatchRows
	if req.FetchBatch > 0 && req.FetchBatch < b {
		b = req.FetchBatch
	}
	return b
}

// handleGossip is the receiving half of a push-pull exchange: merge
// the sender's table, answer with ours.
func (n *Node) handleGossip(req *request) *gossipPayload {
	if req.Gossip != nil {
		n.reg.Merge(fromWireMembers(req.Gossip.Members))
	}
	return &gossipPayload{
		V:       gossipV,
		From:    n.cfg.NodeID,
		Members: toWireMembers(n.reg.Members()),
	}
}

// handleMembers serves the node's merged membership view.
func (n *Node) handleMembers() *membersReply {
	return &membersReply{Self: n.cfg.NodeID, Members: toWireMembers(n.reg.Members())}
}

// handleSpans serves the node's retained spans for one trace (or the
// whole ring when QueryID is zero).
func (n *Node) handleSpans(req *request) *spansReply {
	var spans []trace.Span
	if req.QueryID != 0 {
		spans = n.tracer.Spans(req.QueryID)
	} else {
		spans = n.tracer.All()
	}
	return &spansReply{Origin: n.tracer.Origin(), Spans: spans}
}

// traceStart opens a server-side span under the caller's span for a
// traced request. Untraced requests get a nil *trace.Active, whose
// methods are no-ops, so normal traffic pays only this nil check.
func (n *Node) traceStart(req *request, name string) *trace.Active {
	if req.Trace == nil || req.Trace.V < 1 {
		return nil
	}
	return n.tracer.Start(req.Trace.ID, req.Trace.Span, name)
}

// observeOp records one request's server-side handling latency.
func (n *Node) observeOp(op string, ms float64) {
	n.histMu.Lock()
	h, ok := n.opHist[op]
	if !ok {
		h = metrics.NewHistogram()
		n.opHist[op] = h
	}
	n.histMu.Unlock()
	h.Observe(ms)
}

// opLatencyBuckets snapshots the per-op handling histograms for the
// exposition endpoint.
func (n *Node) opLatencyBuckets() map[string]metrics.BucketSnapshot {
	n.histMu.Lock()
	defer n.histMu.Unlock()
	out := make(map[string]metrics.BucketSnapshot, len(n.opHist))
	for op, h := range n.opHist {
		out[op] = h.Buckets()
	}
	return out
}

// Epoch returns the market's age in pricer periods.
func (n *Node) Epoch() uint64 { return n.epoch.Load() }

// MarketTelemetry snapshots the node's per-period market state —
// per-class prices, the supply picture, and the lifetime trading
// counters — stamped with the current market epoch.
func (n *Node) MarketTelemetry() MarketTelemetry {
	tel := n.pricer.telemetry()
	tel.Epoch = n.epoch.Load()
	return tel
}

// hintsTargetMs is the node's true baseline execution time for a
// prepared statement: the driver's scan-cost hint scaled by the node's
// I/O speed plus the remaining cost scaled by its CPU speed.
func (n *Node) hintsTargetMs(h driver.CostHints) float64 {
	return (h.IOCost*n.cfg.IOSlowdown + h.CPUCost*n.cfg.CPUSlowdown) * n.cfg.MsPerCostUnit
}

// estimate plans the SQL through the storage driver and produces the
// node's execution-time estimate: the paper's EXPLAIN-then-history
// scheme, with the driver's cost hints standing in for EXPLAIN.
func (n *Node) estimate(sql string) (sig string, estMs float64, fromHistory bool, err error) {
	st, err := n.cfg.Driver.Prepare(sql)
	if err != nil {
		return "", 0, false, err
	}
	h := st.Hints()
	sig = h.Signature
	n.mu.Lock()
	ema, ok := n.history[sig]
	n.mu.Unlock()
	if ok {
		return sig, ema, true, nil
	}
	return sig, n.hintsTargetMs(h), false, nil
}

func (n *Node) negotiate(req *request) (negotiateReply, string) {
	sp := n.traceStart(req, "solve")
	defer sp.Finish()
	sig, estMs, fromHistory, err := n.estimate(req.SQL)
	if err != nil {
		// Unknown relations (or malformed SQL) mean "cannot evaluate".
		sp.Annotate("infeasible: %s", err)
		return negotiateReply{Feasible: false, Err: err.Error()}, ""
	}
	if code := n.shedExpired(req, estMs); code != "" {
		// The remaining budget cannot cover this node's backlog plus the
		// query itself: refuse before burning market supply on an offer.
		sp.Annotate("expired: backlog cannot meet %dms budget", req.DeadlineMs)
		return negotiateReply{Err: msgExpired}, code
	}
	if n.cfg.ExplainFraction > 0 && !fromHistory {
		// Planning a query shape for the first time takes real time on
		// a slow machine; clients waiting for every node's reply absorb
		// the slowest planner's latency. Repeats hit the plan cache.
		time.Sleep(time.Duration(estMs * n.cfg.ExplainFraction * float64(time.Millisecond)))
	}
	offer := true
	if req.Mechanism == MechQANT {
		offer = n.pricer.offer(sig, estMs)
	}
	queue := 0.0
	if n.cfg.ShareQueueState {
		n.mu.Lock()
		queue = n.backlogMs
		n.mu.Unlock()
	}
	sp.Annotate("sig=%s offer=%v est=%.2fms", sig, offer, estMs)
	return negotiateReply{
		Feasible:   true,
		Offer:      offer,
		EstimateMs: estMs,
		QueueMs:    queue,
		Signature:  sig,
		FromCache:  fromHistory,
	}, ""
}

// shedExpired decides whether a deadline-carrying request must be shed:
// the node's current backlog estimate plus the query's own estimated
// execution time exceeds the remaining budget. Requests without a
// deadline (old clients, or none set) are never shed.
func (n *Node) shedExpired(req *request, estMs float64) string {
	if req.DeadlineMs <= 0 {
		return ""
	}
	n.mu.Lock()
	backlog := n.backlogMs
	n.mu.Unlock()
	if backlog+estMs <= float64(req.DeadlineMs) {
		return ""
	}
	n.health.Inc(metrics.ExpiredTotal)
	return CodeExpired
}

// jobDeadline converts the request's relative budget into the absolute
// instant the executor checks at dequeue.
func jobDeadline(req *request) time.Time {
	if req.DeadlineMs <= 0 {
		return time.Time{}
	}
	return time.Now().Add(time.Duration(req.DeadlineMs) * time.Millisecond)
}

// cacheableOutcome decides whether an execute/fetch outcome may be
// served to retransmits from the dedup window. Completed work — the
// query ran, or the engine rejected its SQL deterministically — is
// cacheable. Refusals (overload, expired, supply race, node stopping)
// are not: a retry with fresh budget must be re-admitted, not fed a
// stale refusal.
func cacheableOutcome(rep executeReply, code string) bool {
	if code != "" || rep.Err == msgNodeStopping {
		return false
	}
	return rep.Accepted || rep.Err != ""
}

func (n *Node) execute(req *request) (executeReply, string) {
	if req.RunID != "" {
		key := dedupKey(req.RunID, "execute", req.QueryID, req.SQL)
		if out, hit, _ := n.dedup.claim(key, n.stopCh); hit {
			n.health.Inc(metrics.DedupHitsTotal)
			return out.exec, out.code
		}
		rep, code := n.executeOnce(req)
		n.dedup.settle(key, dedupOutcome{exec: rep, code: code}, cacheableOutcome(rep, code))
		return rep, code
	}
	return n.executeOnce(req)
}

func (n *Node) executeOnce(req *request) (executeReply, string) {
	sig, estMs, _, err := n.estimate(req.SQL)
	if err != nil {
		return executeReply{Err: err.Error()}, ""
	}
	job, rep, code := n.admit(req, sig, estMs, false)
	if code != "" || rep.Err != "" || job == nil {
		return rep, code
	}
	select {
	case rep := <-job.reply:
		return rep, expiredCode(rep)
	case <-n.stopCh:
		return executeReply{Err: msgNodeStopping}, ""
	}
}

// fetch is execute plus result shipping: the distributed subquery
// layer pulls relation fragments through it. The raw result is
// returned un-encoded (and cached un-encoded in the dedup window) so
// the caller — handleWork — encodes per the *current* request's
// negotiation: a retransmit from a differently-negotiated client, or a
// frame-stream resume, re-encodes the identical rows its own way.
func (n *Node) fetch(req *request) (fetchReply, *ColBlock, string) {
	if req.RunID != "" {
		key := dedupKey(req.RunID, "fetch", req.QueryID, req.SQL)
		if out, hit, _ := n.dedup.claim(key, n.stopCh); hit {
			n.health.Inc(metrics.DedupHitsTotal)
			if out.fetch != nil {
				return *out.fetch, out.result, out.code
			}
			return fetchReply{Err: out.exec.Err, Accepted: out.exec.Accepted}, nil, out.code
		}
		fr, res, code := n.fetchOnce(req)
		cacheable := cacheableOutcome(executeReply{Accepted: fr.Accepted, Err: fr.Err}, code)
		n.dedup.settle(key, dedupOutcome{fetch: &fr, result: res, code: code}, cacheable)
		return fr, res, code
	}
	return n.fetchOnce(req)
}

func (n *Node) fetchOnce(req *request) (fetchReply, *ColBlock, string) {
	sig, estMs, _, err := n.estimate(req.SQL)
	if err != nil {
		return fetchReply{Err: err.Error()}, nil, ""
	}
	job, rep, code := n.admit(req, sig, estMs, true)
	if code != "" || rep.Err != "" || job == nil {
		return fetchReply{Accepted: rep.Accepted, Err: rep.Err}, nil, code
	}
	select {
	case rep := <-job.reply:
		if rep.Err != "" {
			return fetchReply{Err: rep.Err}, nil, expiredCode(rep)
		}
		return fetchReply{Accepted: true, ExecMs: rep.ExecMs}, job.result, ""
	case <-n.stopCh:
		return fetchReply{Err: msgNodeStopping}, nil, ""
	}
}

// expiredCode maps the executor's queued-too-long drop onto the typed
// expired envelope code.
func expiredCode(rep executeReply) string {
	if rep.Err == msgExpired {
		return CodeExpired
	}
	return ""
}

// admit runs the shared execute/fetch admission path: deadline shed,
// bounded-queue overload check, market accept, enqueue. On refusal the
// returned job is nil and rep/code carry the typed reply. The queue-
// full check runs before pricer.accept so a shed query does not burn
// QA-NT supply; the later non-blocking enqueue can still lose a rare
// race, which costs one accepted unit of supply — bounded, and far
// cheaper than blocking every admitted request behind a full queue.
func (n *Node) admit(req *request, sig string, estMs float64, withRows bool) (*execJob, executeReply, string) {
	if code := n.shedExpired(req, estMs); code != "" {
		return nil, executeReply{Err: msgExpired}, code
	}
	if len(n.execCh) >= cap(n.execCh) {
		n.health.Inc(metrics.OverloadTotal)
		return nil, executeReply{Err: msgOverloaded}, CodeOverload
	}
	if req.Mechanism == MechQANT && !n.pricer.accept(sig) {
		// Supply sold out since the offer (another client won the race).
		return nil, executeReply{Accepted: false}, ""
	}
	job := &execJob{sql: req.SQL, reply: make(chan executeReply, 1), estMs: estMs,
		withRows: withRows, trace: req.Trace, queued: time.Now(), deadline: jobDeadline(req)}
	n.mu.Lock()
	n.backlogMs += estMs
	n.mu.Unlock()
	select {
	case n.execCh <- job:
		return job, executeReply{}, ""
	case <-n.stopCh:
		n.dropBacklog(estMs)
		return nil, executeReply{Err: msgNodeStopping}, ""
	default:
		// Queue filled between the pre-check and the enqueue.
		n.dropBacklog(estMs)
		n.health.Inc(metrics.OverloadTotal)
		return nil, executeReply{Err: msgOverloaded}, CodeOverload
	}
}

// dropBacklog reverses an admission's backlog charge after a refusal.
func (n *Node) dropBacklog(estMs float64) {
	n.mu.Lock()
	n.backlogMs -= estMs
	if n.backlogMs < 0 {
		n.backlogMs = 0
	}
	n.mu.Unlock()
}

// execLoop is the node's single query executor: one query at a time,
// FIFO, like the sequential RDBMS worker the experiments assume.
func (n *Node) execLoop() {
	defer n.wg.Done()
	for {
		select {
		case job := <-n.execCh:
			n.runJob(job)
		case <-n.stopCh:
			return
		}
	}
}

func (n *Node) runJob(job *execJob) {
	queued := time.Now()
	if !job.deadline.IsZero() && queued.After(job.deadline) {
		// The deadline passed while the job sat queued: running it now
		// would waste executor time on an answer nobody is waiting for.
		n.health.Inc(metrics.ExpiredTotal)
		n.finishJob(job, executeReply{Err: msgExpired})
		return
	}
	st, err := n.cfg.Driver.Prepare(job.sql)
	if err != nil {
		n.recordJobError(job, queued, err)
		n.finishJob(job, executeReply{Err: err.Error()})
		return
	}
	hints := st.Hints()
	start := time.Now()
	blk, err := st.Execute()
	if err != nil {
		n.recordJobError(job, queued, err)
		n.finishJob(job, executeReply{Err: err.Error()})
		return
	}
	// The real work of the embedded engine is tiny; stretch it to the
	// node's simulated speed so heterogeneity (Slowdown) is observable,
	// exactly like running the same star query on a slower PC.
	targetMs := n.hintsTargetMs(hints)
	if n.noise != nil {
		n.mu.Lock()
		targetMs *= 1 + n.cfg.ExecNoise*(2*n.noise.Float64()-1)
		n.mu.Unlock()
	}
	target := time.Duration(targetMs * float64(time.Millisecond))
	if elapsed := time.Since(start); elapsed < target {
		time.Sleep(target - elapsed)
	}
	execMs := float64(time.Since(start)) / float64(time.Millisecond)
	if job.withRows {
		job.result = blk
	}
	sig := hints.Signature
	n.mu.Lock()
	if ema, ok := n.history[sig]; ok {
		n.history[sig] = (1-historyAlpha)*ema + historyAlpha*execMs
	} else {
		n.history[sig] = execMs
	}
	n.backlogMs -= job.estMs
	if n.backlogMs < 0 {
		n.backlogMs = 0
	}
	n.executed++
	n.mu.Unlock()
	if job.trace != nil && job.trace.V >= 1 {
		// The queue span covers enqueue -> dequeue+plan; the exec span is
		// the engine run (including the heterogeneity stretch).
		qstart := job.queued
		if qstart.IsZero() {
			qstart = queued
		}
		n.tracer.Record(job.trace.ID, job.trace.Span, "queue", qstart,
			float64(start.Sub(qstart))/float64(time.Millisecond), "")
		n.tracer.Record(job.trace.ID, job.trace.Span, "exec", start, execMs,
			fmt.Sprintf("sig=%s rows=%d", sig, blk.Rows))
	}
	n.finishJob(job, executeReply{
		Accepted: true,
		Rows:     blk.Rows,
		ExecMs:   execMs,
		WaitMs:   float64(start.Sub(queued)) / float64(time.Millisecond),
	})
}

// recordJobError attaches a failed traced job's exec span so the trace
// tree shows where the query died.
func (n *Node) recordJobError(job *execJob, queued time.Time, err error) {
	if job.trace == nil || job.trace.V < 1 {
		return
	}
	n.tracer.Record(job.trace.ID, job.trace.Span, "exec", queued, msSince(queued), "error: "+err.Error())
}

func (n *Node) finishJob(job *execJob, rep executeReply) {
	if rep.Err != "" {
		n.mu.Lock()
		n.backlogMs -= job.estMs
		if n.backlogMs < 0 {
			n.backlogMs = 0
		}
		n.mu.Unlock()
	}
	job.reply <- rep
}

// periodLoop drives the QA-NT market clock.
func (n *Node) periodLoop() {
	defer n.wg.Done()
	t := time.NewTicker(time.Duration(n.cfg.PeriodMs) * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			n.pricer.tick()
			// The market epoch the member row advertises is the count
			// of pricer periods this agent has lived through.
			n.reg.SetEpoch(n.epoch.Add(1))
			n.dedup.sweep(time.Now())
		case <-n.stopCh:
			return
		}
	}
}

// noteCheckpoint records a successful market-state checkpoint for the
// checkpoint-age gauge. The Checkpointer calls it after each write.
func (n *Node) noteCheckpoint() {
	n.lastCheckpoint.Store(time.Now().UnixMilli())
	n.health.Inc(metrics.CheckpointsTotal)
}

func (n *Node) nodeStats() NodeStats {
	st := n.pricer.stats()
	n.mu.Lock()
	executed := n.executed
	n.mu.Unlock()
	n.health.SetGauge(metrics.InflightWork, float64(n.working.Load()))
	n.health.SetGauge(metrics.QueueDepth, float64(len(n.execCh)))
	health := n.health.Snapshot()
	if ts := n.lastCheckpoint.Load(); ts > 0 {
		health[metrics.CheckpointAgeMs] = float64(time.Now().UnixMilli() - ts)
	}
	tel := n.MarketTelemetry()
	return NodeStats{
		Executed: executed,
		Offers:   st.Offers,
		Rejects:  st.Rejects,
		Prices:   n.pricer.prices(),
		Health:   health,
		Market:   &tel,
	}
}
