package cluster

import (
	"io"
	"math/rand"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/qamarket/qamarket/internal/trace"
)

// TestFallbackNodeIDDeterministic pins the fix for the nondeterministic
// fallback NodeID: it used to come from the unseeded global rand, so a
// fixed topology got fresh identities — and fresh membership RNG seeds
// — every run. Now it derives from the listen address plus a
// process-local counter.
func TestFallbackNodeIDDeterministic(t *testing.T) {
	a := fallbackNodeID("10.0.0.7:4001")
	b := fallbackNodeID("10.0.0.7:4001")
	c := fallbackNodeID("10.0.0.8:4001")
	prefix := func(id string) string { return id[:strings.LastIndex(id, "-")] }
	if prefix(a) != prefix(b) {
		t.Errorf("same address, different hash prefix: %s vs %s", a, b)
	}
	if prefix(a) == prefix(c) {
		t.Errorf("different addresses, same hash prefix: %s vs %s", a, c)
	}
	if a == b {
		t.Errorf("process-local counter failed to disambiguate: %s", a)
	}
	for _, id := range []string{a, b, c} {
		if !strings.HasPrefix(id, "n-") {
			t.Errorf("fallback ID %q lost the n- convention", id)
		}
	}
}

func TestStartNodeDerivesStableFallbackID(t *testing.T) {
	_, nodes, _ := startTestFederation(t, []float64{1, 1})
	if nodes[0].ID() == nodes[1].ID() {
		t.Fatalf("two nodes share fallback ID %s", nodes[0].ID())
	}
	for _, n := range nodes {
		if !strings.HasPrefix(n.ID(), "n-") {
			t.Errorf("node ID %q not derived", n.ID())
		}
	}
}

// TestBackoffJitterSeeded pins the seeded-jitter fix: backoff used the
// global rand.Float64, so retry schedules were unreproducible. Two
// clients sharing a seed must now produce identical delay sequences.
func TestBackoffJitterSeeded(t *testing.T) {
	mk := func(seed int64) *Client {
		c, err := NewClient(ClientConfig{
			Addrs:  []string{"127.0.0.1:1"},
			Jitter: rand.New(rand.NewSource(seed)),
		})
		if err != nil {
			t.Fatalf("NewClient: %v", err)
		}
		t.Cleanup(c.Close)
		return c
	}
	c1, c2, c3 := mk(7), mk(7), mk(8)
	for round := 0; round < 6; round++ {
		d1, d2, d3 := c1.backoffDelay(round), c2.backoffDelay(round), c3.backoffDelay(round)
		if d1 != d2 {
			t.Fatalf("round %d: same seed diverged: %v vs %v", round, d1, d2)
		}
		if round == 0 && d1 == d3 {
			t.Errorf("distinct seeds produced identical first delay %v", d1)
		}
		base := time.Duration(c1.cfg.PeriodMs) * time.Millisecond
		ceil := time.Duration(c1.cfg.MaxBackoffMs) * time.Millisecond
		if d1 < base/2 || d1 > ceil {
			t.Fatalf("round %d: delay %v outside [base/2, cap]", round, d1)
		}
	}
}

func TestBackoffJitterDefaultsSeeded(t *testing.T) {
	cfg := ClientConfig{Addrs: []string{"127.0.0.1:1"}}
	if err := cfg.validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.Jitter == nil {
		t.Fatal("validate left Jitter nil")
	}
}

// TestQueryTraceEndToEnd drives one traced query through a two-node
// federation and asserts the assembled cross-process span tree: the
// client's run/negotiate/execute spans plus the winning server's
// solve/queue/exec spans, parented across the wire trace context.
func TestQueryTraceEndToEnd(t *testing.T) {
	ds, nodes, addrs := startTestFederation(t, []float64{1, 4})
	tracer := trace.NewRecorder("client", 0, nil)
	client, err := NewClient(ClientConfig{
		Addrs:     addrs,
		Mechanism: MechGreedy,
		PeriodMs:  50,
		Tracer:    tracer,
		Jitter:    rand.New(rand.NewSource(1)),
	})
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	defer client.Close()

	sql := "SELECT * FROM " + ds.Relations[0]
	const qid = 42
	out := client.Run(qid, sql)
	if out.Err != nil {
		t.Fatalf("Run: %v", out.Err)
	}

	spans := client.TraceSpans(qid)
	byName := map[string][]trace.Span{}
	for _, s := range spans {
		if s.TraceID != qid {
			t.Fatalf("span %s carries trace %d, want %d", s.ID, s.TraceID, qid)
		}
		byName[s.Name] = append(byName[s.Name], s)
	}
	for _, name := range []string{"run", "negotiate", "execute", "solve", "queue", "exec"} {
		if len(byName[name]) == 0 {
			t.Errorf("no %q span in trace: %v", name, byName)
		}
	}
	// Both nodes answered the call-for-proposals, so both solved.
	if len(byName["solve"]) != 2 {
		t.Errorf("want one solve span per node, got %d", len(byName["solve"]))
	}
	// Server spans parent under client spans across the wire.
	ids := map[string]trace.Span{}
	for _, s := range spans {
		ids[s.ID] = s
	}
	for _, s := range byName["solve"] {
		p, ok := ids[s.Parent]
		if !ok || p.Name != "negotiate" || p.Origin != "client" {
			t.Errorf("solve span parents under %+v, want client negotiate", p)
		}
	}
	for _, s := range byName["exec"] {
		if p := ids[s.Parent]; p.Name != "execute" {
			t.Errorf("exec span parents under %q, want execute", p.Name)
		}
	}

	rendered := trace.RenderTree(spans)
	for _, want := range []string{"run", "negotiate", "solve", "exec", "[client]"} {
		if !strings.Contains(rendered, want) {
			t.Errorf("rendered tree missing %q:\n%s", want, rendered)
		}
	}

	// Untraced clients leave no server-side spans: the trace field is
	// omitted and id-less requests still execute (old-client interop).
	plain, err := NewClient(ClientConfig{Addrs: addrs, PeriodMs: 50})
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	defer plain.Close()
	before := len(nodes[0].tracer.All()) + len(nodes[1].tracer.All())
	if out := plain.Run(43, sql); out.Err != nil {
		t.Fatalf("untraced Run: %v", out.Err)
	}
	after := len(nodes[0].tracer.All()) + len(nodes[1].tracer.All())
	if after != before {
		t.Errorf("untraced query grew server span rings: %d -> %d", before, after)
	}
	if got := plain.TraceSpans(43); len(got) != 0 {
		t.Errorf("untraced query produced %d spans", len(got))
	}
}

// TestTraceContextIgnoredByValue checks the additive-field contract
// from the old-server side: a request carrying an unknown trace version
// still negotiates normally (the server only acts on V >= 1, and
// decoding unknown JSON fields never fails).
func TestTraceContextIgnoredByValue(t *testing.T) {
	ds, nodes, _ := startTestFederation(t, []float64{1})
	req := &request{Op: "negotiate", SQL: "SELECT * FROM " + ds.Relations[0],
		Trace: &traceCtx{V: 0, ID: 7, Span: "x-1"}}
	rep := nodes[0].handle(req)
	if rep.Negotiate == nil || !rep.Negotiate.Feasible {
		t.Fatalf("negotiate with v0 trace ctx failed: %+v", rep)
	}
	if got := nodes[0].tracer.Spans(7); len(got) != 0 {
		t.Errorf("v0 trace ctx recorded %d spans", len(got))
	}
}

func TestMetricsHandlerExposition(t *testing.T) {
	ds, nodes, addrs := startTestFederation(t, []float64{1})
	client, err := NewClient(ClientConfig{Addrs: addrs, Mechanism: MechQANT, PeriodMs: 50})
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	defer client.Close()
	sql := "SELECT * FROM " + ds.Relations[0]
	if out := client.Run(1, sql); out.Err != nil {
		t.Fatalf("Run: %v", out.Err)
	}

	srv := httptest.NewServer(nodes[0].MetricsHandler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	for _, want := range []string{
		"# TYPE qa_queries_executed_total counter",
		"qa_queries_executed_total{node=",
		"# TYPE qa_op_handle_ms histogram",
		`qa_op_handle_ms_bucket{le="+Inf"`,
		`op="negotiate"`,
		`op="execute"`,
		"# TYPE qa_market_price gauge",
		"qa_market_price{class=",
		"qa_market_offers_total",
		"qa_market_rejects_total",
		"qa_market_epoch",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// Deterministic rendering: a second scrape with no traffic in
	// between orders families and labels identically (only gauge values
	// like checkpoint age may differ, so compare structure).
	resp2, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	body2, _ := io.ReadAll(resp2.Body)
	strip := func(s string) []string {
		var names []string
		for _, line := range strings.Split(s, "\n") {
			if f := strings.Fields(line); len(f) > 0 {
				names = append(names, f[0])
			}
		}
		return names
	}
	n1, n2 := strip(text), strip(string(body2))
	if len(n1) != len(n2) {
		t.Fatalf("scrape shape changed: %d vs %d lines", len(n1), len(n2))
	}
	for i := range n1 {
		if n1[i] != n2[i] {
			t.Fatalf("scrape order differs at line %d: %q vs %q", i, n1[i], n2[i])
		}
	}
}
