// Package cluster is the "real implementation" of the paper's Section
// 5.2: a federation of server nodes, each wrapping an embedded sqldb
// instance and a private QA-NT market agent, talking to clients over
// TCP. Clients negotiate each query with every node (call-for-proposals,
// exactly like the paper's implementation, which "waited for a reply
// from all nodes before deciding"), then send it to the best offer.
//
// Execution-time estimation follows the paper's two-stage scheme: the
// node first plans the query (EXPLAIN) and then overrides the plan-cost
// estimate with past execution times of queries with the same plan
// signature.
package cluster

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"time"

	"github.com/qamarket/qamarket/internal/membership"
	"github.com/qamarket/qamarket/internal/sqldb"
	"github.com/qamarket/qamarket/internal/trace"
)

// Mechanism selects the allocation protocol a client runs.
type Mechanism string

// Supported allocation mechanisms for the real cluster.
const (
	MechGreedy Mechanism = "greedy"
	MechQANT   Mechanism = "qa-nt"
)

// request is one RPC from client to server.
type request struct {
	// ID tags the request for multiplexed connections: the server echoes
	// it on the reply so many RPCs can be in flight per connection and
	// the client can demux. Zero (omitted) keeps the legacy one-at-a-time
	// framing, where replies match requests by order.
	ID        uint64    `json:"id,omitempty"`
	Op        string    `json:"op"` // "negotiate", "execute", "stats"
	SQL       string    `json:"sql,omitempty"`
	QueryID   int64     `json:"query_id,omitempty"`
	Mechanism Mechanism `json:"mechanism,omitempty"`
	// Enc advertises the newest fetch-row encoding the client decodes
	// (see encTagged/encCompact). Servers reply with min(Enc, newest they
	// speak); old servers ignore the field and reply tagged, so mixed
	// fleets interoperate during rollout.
	Enc int `json:"enc,omitempty"`
	// Gossip carries the sender's membership table on a "gossip" op
	// (anti-entropy push-pull; the reply carries the receiver's table
	// back). Versioned like Enc: the payload's V field lets future
	// table formats coexist with old nodes.
	Gossip *gossipPayload `json:"gossip,omitempty"`
	// Trace carries the client's trace context when the query is being
	// traced. Additive and versioned like Enc and Gossip: old servers
	// ignore the unknown field (the query still runs, untraced on that
	// node), and old clients omit it, so mixed fleets interoperate.
	Trace *traceCtx `json:"trace,omitempty"`
	// DeadlineMs is the query's remaining time budget in milliseconds
	// when the request left the client. It is relative, not a wall-clock
	// instant, so federations need no clock sync; the cost is that time
	// on the wire is not charged. Zero means "no deadline". Additive
	// like Enc and Trace: old servers ignore it (the query just isn't
	// shed server-side), old clients omit it, so mixed fleets
	// interoperate.
	DeadlineMs int64 `json:"deadline_ms,omitempty"`
	// RunID names the client run for at-most-once dedup: the server
	// caches execute/fetch outcomes keyed by (RunID, op, QueryID, SQL
	// hash) so a retransmit after a lost reply returns the original
	// outcome instead of re-running the query. Empty disables dedup
	// (old clients), and old servers ignore the field.
	RunID string `json:"run_id,omitempty"`
	// Batch carries the additional queries of a batched
	// call-for-proposals on a "negotiate" op: the request's own
	// SQL/QueryID/DeadlineMs fields describe the first query exactly as
	// an unbatched negotiate would, and Batch holds the rest of the
	// coalesced window. Additive like Enc, Trace, and DeadlineMs: an
	// old server ignores the unknown field and answers the first query
	// alone (the client then renegotiates the remainder per query), and
	// a single-query window omits the field entirely, making the
	// request byte-identical to a legacy negotiate.
	Batch []batchQuery `json:"batch,omitempty"`
	// Frame advertises the newest binary fetch-frame version the client
	// decodes (see frameV1). A frame-speaking server answers an accepted
	// fetch by streaming length-prefixed binary frames instead of one
	// JSON reply; everything else (refusals, errors, other ops) stays
	// JSON. Additive like Enc: old servers ignore the field and reply
	// JSON, old clients omit it and are never sent a frame, so mixed
	// fleets interoperate byte-identically.
	Frame int `json:"frame,omitempty"`
	// FetchBatch asks the server to bound streamed fetch batches to this
	// many rows. Servers clamp it to their own FetchBatchRows config;
	// zero accepts the server default. Meaningless without Frame.
	FetchBatch int `json:"fetch_batch,omitempty"`
}

// batchQuery is one additional query of a batched call-for-proposals.
type batchQuery struct {
	QueryID int64  `json:"query_id,omitempty"`
	SQL     string `json:"sql"`
	// DeadlineMs is the query's own remaining budget (the batch's
	// queries may carry different deadlines).
	DeadlineMs int64 `json:"deadline_ms,omitempty"`
}

// batchProposal answers one batchQuery: the proposal, or the typed
// refusal code the envelope would have carried for an unbatched
// negotiate of that query.
type batchProposal struct {
	QueryID   int64           `json:"query_id,omitempty"`
	Negotiate *negotiateReply `json:"negotiate,omitempty"`
	Err       string          `json:"error,omitempty"`
	Code      string          `json:"code,omitempty"`
}

// traceV is the newest trace-context version this build speaks.
const traceV = 1

// traceCtx links a server's spans into the client's query trace: the
// trace ID names the traced query, Span is the client-side span that
// server spans hang under in the assembled tree.
type traceCtx struct {
	V    int    `json:"v"`
	ID   int64  `json:"id"`
	Span string `json:"span,omitempty"`
}

// spansReply answers the "spans" op with the node's retained spans for
// one trace (request.QueryID; zero returns everything in the ring).
// qactl -trace fans this out to assemble the cross-node span tree.
type spansReply struct {
	Origin string       `json:"origin"`
	Spans  []trace.Span `json:"spans"`
}

// gossipV is the newest gossip payload version this build speaks. The
// member rows are additive JSON, so a v1 node merges whatever fields it
// understands from a newer payload — V exists to make that negotiation
// explicit, exactly like the fetch-row Enc field.
const gossipV = 1

// wireMember is one membership-table row on the wire.
type wireMember struct {
	ID          string `json:"id"`
	Addr        string `json:"addr"`
	Incarnation uint64 `json:"inc"`
	Heartbeat   uint64 `json:"hb"`
	State       string `json:"state"`
	// Catalog is the compact catalog digest: a hash over the sorted
	// relation names the node hosts, so peers detect placement changes
	// without shipping schemas.
	Catalog string `json:"catalog,omitempty"`
	// CatalogFilter is the hex-encoded relation-name Bloom filter
	// behind the digest (catalog.RelationFilter): clients use it to
	// skip CFP fan-out to nodes provably infeasible for a query's
	// relations. Additive like Catalog — old rows omit it and stay
	// fully probed.
	CatalogFilter string `json:"cf,omitempty"`
	// Driver names the member's storage executor ("row", "vector",
	// "mock:row"). Additive: old rows omit it.
	Driver string `json:"drv,omitempty"`
	// Epoch is the member's market age in pricer periods.
	Epoch uint64 `json:"epoch,omitempty"`
}

// gossipPayload rides both directions of a push-pull gossip exchange.
type gossipPayload struct {
	V       int          `json:"v"`
	From    string       `json:"from"`
	Members []wireMember `json:"members"`
}

// membersReply answers the "members" op with the node's merged view,
// for clients refreshing their live view and for qactl -members.
type membersReply struct {
	Self    string       `json:"self"`
	Members []wireMember `json:"members"`
}

// toWireMembers converts a registry snapshot for the wire.
func toWireMembers(ms []membership.Member) []wireMember {
	out := make([]wireMember, len(ms))
	for i, m := range ms {
		out[i] = wireMember{
			ID:            m.ID,
			Addr:          m.Addr,
			Incarnation:   m.Incarnation,
			Heartbeat:     m.Heartbeat,
			State:         m.State.String(),
			Catalog:       m.CatalogDigest,
			CatalogFilter: m.CatalogFilter,
			Driver:        m.Driver,
			Epoch:         m.Epoch,
		}
	}
	return out
}

// fromWireMembers parses wire rows back into registry members.
func fromWireMembers(ws []wireMember) []membership.Member {
	out := make([]membership.Member, len(ws))
	for i, w := range ws {
		out[i] = membership.Member{
			ID:            w.ID,
			Addr:          w.Addr,
			Incarnation:   w.Incarnation,
			Heartbeat:     w.Heartbeat,
			State:         membership.ParseState(w.State),
			CatalogDigest: w.Catalog,
			CatalogFilter: w.CatalogFilter,
			Driver:        w.Driver,
			Epoch:         w.Epoch,
		}
	}
	return out
}

// Fetch-row encodings, in negotiation order. The request's Enc field
// carries the client's newest supported version.
const (
	// encTagged is the v0 per-cell encoding: every non-null value is a
	// single-key {"kind": value} object (see toWire).
	encTagged = 0
	// encCompact is the v1 columnar encoding: one kind byte per row plus
	// typed per-column arrays (see encodeCols), cutting decode work from
	// O(rows×cols) map allocations to O(cols) slices.
	encCompact = 1
)

// negotiateReply answers a call-for-proposals.
type negotiateReply struct {
	Feasible   bool    `json:"feasible"`        // node holds the data
	Offer      bool    `json:"offer"`           // node offers to evaluate (QA-NT supply)
	EstimateMs float64 `json:"estimate_ms"`     // predicted execution time
	QueueMs    float64 `json:"queue_ms"`        // predicted wait before execution
	Signature  string  `json:"signature"`       // plan signature (query class)
	FromCache  bool    `json:"from_history"`    // estimate came from past executions
	Err        string  `json:"error,omitempty"` // parse/plan failure
}

// executeReply answers an execution request.
type executeReply struct {
	Accepted bool    `json:"accepted"` // false when QA-NT supply ran out meanwhile
	Rows     int     `json:"rows"`
	ExecMs   float64 `json:"exec_ms"`
	WaitMs   float64 `json:"wait_ms"`
	Err      string  `json:"error,omitempty"`
}

// fetchReply answers a fetch request: like execute, but the result
// rows travel back to the client. Used by the distributed subquery
// layer (Distributor) to pull relation fragments for local joining.
type fetchReply struct {
	Accepted bool     `json:"accepted"`
	Columns  []string `json:"columns"`
	Rows     [][]any  `json:"rows,omitempty"` // encTagged values, see toWire
	// Cols is the encCompact representation: one entry per column, row
	// count carried by each column's Kinds string. Exactly one of Rows
	// and Cols is populated on a non-empty result; which one depends on
	// the request's negotiated Enc.
	Cols   []wireColumn `json:"cols,omitempty"`
	ExecMs float64      `json:"exec_ms"`
	Err    string       `json:"error,omitempty"`

	// streamed marks an envelope the client synthesized from a binary
	// frame stream: the rows never rode JSON, they were decoded into
	// decoded as the frames arrived. Unexported — never marshalled.
	streamed bool
	decoded  []sqldb.Row
}

// NodeStats reports a node's market state for observability.
type NodeStats struct {
	Executed int                `json:"executed"`
	Offers   int                `json:"offers"`
	Rejects  int                `json:"rejects"`
	Prices   map[string]float64 `json:"prices"`
	// Health carries the node's failure-domain counters and gauges
	// (drains, drain rejects, checkpoints, checkpoint age — see the
	// metrics package constants).
	Health map[string]float64 `json:"health,omitempty"`
	// Market is the node's per-period market telemetry snapshot —
	// per-class prices/supply and lifetime trading counters, epoch
	// stamped. Additive: nodes that predate it omit the field and old
	// clients ignore it. The autoscaler's control signal rides here
	// (the stats op stays answerable while draining, so a departing
	// member keeps reporting until it is gone).
	Market *MarketTelemetry `json:"market,omitempty"`
}

// Typed reply codes. Codes classify envelope-level errors so clients
// can react mechanically (the breaker trips on a draining node) instead
// of parsing error strings.
const (
	// CodeDraining marks a node that is gracefully shutting down: it
	// finishes in-flight work but refuses new requests. Clients must
	// open the node's circuit immediately rather than burning timeouts.
	CodeDraining = "draining"
	// CodeOverload marks a work request shed at admission: the node's
	// inflight gate or executor queue is full. A market refusal, not
	// unreachability — the node answered promptly — so clients must NOT
	// trip the breaker; they resubmit elsewhere or next period.
	CodeOverload = "overload"
	// CodeExpired marks a query shed because its remaining deadline
	// budget cannot cover the node's backlog estimate (or the deadline
	// passed while the job sat queued). Also a market refusal: the node
	// is healthy, the query just can't make it here in time.
	CodeExpired = "expired"
	// CodeTooLarge marks a message refused for exceeding the wire size
	// limit: an oversized request line, or a JSON fetch reply that only
	// fits on the binary frame lane. The answering node is healthy and
	// said so in a well-formed reply, so clients must NOT trip the
	// breaker — but a retry of the same message cannot succeed either,
	// so the error is terminal, not a resubmit.
	CodeTooLarge = "too_large"
)

// msgNodeStopping is reported inside an execute/fetch reply when a hard
// shutdown interrupts a queued query. The query was not run; clients
// may safely resubmit it elsewhere.
const msgNodeStopping = "node shutting down"

// msgOverloaded and msgExpired are the human-readable halves of the
// typed overload/expired refusals.
const (
	msgOverloaded = "node overloaded"
	msgExpired    = "deadline cannot be met"
)

// reply is the union envelope sent back by the server.
type reply struct {
	// ID echoes the request's ID (zero for legacy ordered framing).
	ID        uint64          `json:"id,omitempty"`
	Negotiate *negotiateReply `json:"negotiate,omitempty"`
	// Batch answers the request's Batch queries positionally. Only
	// batch-aware servers populate it; its absence after a batched CFP
	// tells the client the node is old and the remainder of the window
	// must be negotiated per query.
	Batch   []batchProposal `json:"batch,omitempty"`
	Execute *executeReply   `json:"execute,omitempty"`
	Fetch   *fetchReply     `json:"fetch,omitempty"`
	Stats   *NodeStats      `json:"stats,omitempty"`
	Gossip  *gossipPayload  `json:"gossip,omitempty"`
	Members *membersReply   `json:"members,omitempty"`
	Spans   *spansReply     `json:"spans,omitempty"`
	Err     string          `json:"error,omitempty"`
	Code    string          `json:"code,omitempty"`
	// NodeID stamps every reply with the answering node's stable
	// identity, so clients learn seed addresses' IDs passively from
	// their first exchange (old nodes omit it and stay addressed by
	// seed address).
	NodeID string `json:"node_id,omitempty"`

	// stream, when set by the fetch handler, tells serveConn to answer
	// with a binary frame stream instead of marshalling this envelope.
	// Unexported — never rides the JSON wire.
	stream *frameStream
}

// writeMsg sends one newline-delimited JSON message. The delimiter is
// written separately: append(b, '\n') would copy the whole marshalled
// message whenever the buffer is exactly full, and the bufio.Writer
// coalesces the two writes anyway.
//
// Messages over maxLineBytes are refused before anything is written —
// the peer would reject the line anyway, and failing pre-write keeps
// the connection clean so the sender can answer (or receive) a typed
// too_large refusal instead of losing the stream mid-line.
func writeMsg(w *bufio.Writer, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("cluster: encoding message: %w", err)
	}
	if len(b)+1 > maxLineBytes {
		return fmt.Errorf("%w: %d-byte message", ErrTooLarge, len(b)+1)
	}
	if _, err := w.Write(b); err != nil {
		return err
	}
	if err := w.WriteByte('\n'); err != nil {
		return err
	}
	return w.Flush()
}

// maxLineBytes bounds one newline-delimited message. Without a cap a
// misbehaving client could stream an endless line and grow server
// memory without ever triggering a parse error.
const maxLineBytes = 1 << 20

// ErrTooLarge reports a message over the wire size limit, in either
// direction: an incoming line past maxLineBytes, or an outgoing message
// refused by writeMsg's pre-write check. It classifies as terminal for
// the offending message but says nothing bad about the peer, so the
// circuit breaker must not trip on it.
var ErrTooLarge = errors.New("cluster: message exceeds wire size limit")

// errLineTooLong reports an incoming message exceeding maxLineBytes.
// The connection is unrecoverable afterwards (the stream position is
// mid-line), so after answering a typed too_large refusal the server
// drops it.
var errLineTooLong = fmt.Errorf("%w: line over %d bytes", ErrTooLarge, maxLineBytes)

// readMsg receives one newline-delimited JSON message, refusing lines
// over maxLineBytes.
func readMsg(r *bufio.Reader, v any) error {
	var line []byte
	for {
		frag, err := r.ReadSlice('\n')
		if err != nil && err != bufio.ErrBufferFull {
			return err
		}
		if len(line)+len(frag) > maxLineBytes {
			return errLineTooLong
		}
		line = append(line, frag...)
		if err == nil {
			break
		}
	}
	return json.Unmarshal(line, v)
}

// dial connects with a timeout.
func dial(addr string, timeout time.Duration) (net.Conn, error) {
	return net.DialTimeout("tcp", addr, timeout)
}
