package cluster

import (
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for breaker tests.
type fakeClock struct{ t time.Time }

func (f *fakeClock) now() time.Time          { return f.t }
func (f *fakeClock) advance(d time.Duration) { f.t = f.t.Add(d) }

func newTestBreaker(threshold int, cooldown time.Duration) (*breaker, *fakeClock, *[]string) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	var transitions []string
	b := newBreaker(threshold, cooldown, func(from, to breakerState) {
		transitions = append(transitions, from.String()+">"+to.String())
	})
	b.now = clk.now
	return b, clk, &transitions
}

func TestBreakerOpensAfterThreshold(t *testing.T) {
	b, _, trans := newTestBreaker(3, time.Second)
	for i := 0; i < 2; i++ {
		if !b.allow() {
			t.Fatalf("closed breaker refused call %d", i)
		}
		b.failure()
	}
	if b.snapshot() != breakerClosed {
		t.Fatal("breaker opened below threshold")
	}
	b.allow()
	b.failure() // third consecutive failure
	if b.snapshot() != breakerOpen {
		t.Fatal("breaker not open after threshold failures")
	}
	if b.allow() {
		t.Error("open breaker admitted a call before cooldown")
	}
	if len(*trans) != 1 || (*trans)[0] != "closed>open" {
		t.Errorf("transitions = %v", *trans)
	}
}

func TestBreakerSuccessResetsFailureCount(t *testing.T) {
	b, _, _ := newTestBreaker(3, time.Second)
	b.failure()
	b.failure()
	b.success()
	b.failure()
	b.failure()
	if b.snapshot() != breakerClosed {
		t.Error("success did not reset the consecutive-failure count")
	}
}

func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	b, clk, _ := newTestBreaker(1, time.Second)
	b.failure()
	if b.snapshot() != breakerOpen {
		t.Fatal("threshold-1 breaker not open after one failure")
	}
	clk.advance(1100 * time.Millisecond)
	if !b.allow() {
		t.Fatal("cooldown elapsed but probe refused")
	}
	if b.snapshot() != breakerHalfOpen {
		t.Fatal("breaker not half-open during probe")
	}
	if b.allow() {
		t.Error("second concurrent probe admitted in half-open")
	}
	b.success()
	if b.snapshot() != breakerClosed {
		t.Error("probe success did not close the breaker")
	}
}

func TestBreakerProbeFailureReopens(t *testing.T) {
	b, clk, trans := newTestBreaker(1, time.Second)
	b.failure()
	clk.advance(2 * time.Second)
	b.allow()
	b.failure() // probe fails
	if b.snapshot() != breakerOpen {
		t.Fatal("failed probe did not reopen the breaker")
	}
	if b.allow() {
		t.Error("reopened breaker admitted a call before a fresh cooldown")
	}
	clk.advance(1100 * time.Millisecond)
	if !b.allow() {
		t.Error("fresh cooldown elapsed but probe refused")
	}
	want := []string{"closed>open", "open>half-open", "half-open>open", "open>half-open"}
	if len(*trans) != len(want) {
		t.Fatalf("transitions = %v, want %v", *trans, want)
	}
	for i := range want {
		if (*trans)[i] != want[i] {
			t.Fatalf("transitions = %v, want %v", *trans, want)
		}
	}
}

func TestBreakerTripOpensImmediately(t *testing.T) {
	b, _, _ := newTestBreaker(5, time.Second)
	if !b.allow() {
		t.Fatal("fresh breaker refused")
	}
	b.trip() // node announced it is draining
	if b.snapshot() != breakerOpen {
		t.Error("trip did not open the breaker")
	}
	if b.allow() {
		t.Error("tripped breaker admitted a call")
	}
}
