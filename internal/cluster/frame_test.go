package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/qamarket/qamarket/internal/driver"
	"github.com/qamarket/qamarket/internal/metrics"
	"github.com/qamarket/qamarket/internal/sqldb"
)

// frameTestResult builds a deterministic mixed-kind result: every value
// kind, nulls sprinkled through every column, unicode and empty
// strings — the codec's worst case.
func frameTestResult(rows int) *sqldb.Result {
	res := &sqldb.Result{Columns: []string{"id", "score", "name", "ok"}}
	for i := 0; i < rows; i++ {
		row := sqldb.Row{
			sqldb.NewInt(int64(i * 3)),
			sqldb.NewFloat(float64(i) * 1.5),
			sqldb.NewText(fmt.Sprintf("näme-%d-✓", i)),
			sqldb.NewBool(i%3 == 0),
		}
		switch i % 5 {
		case 1:
			row[0] = sqldb.Null
		case 2:
			row[1] = sqldb.Null
		case 3:
			row[2] = sqldb.NewText("")
		case 4:
			row[3] = sqldb.Null
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

func TestFrameBatchRoundTrip(t *testing.T) {
	for _, rows := range []int{0, 1, 7, 100} {
		res := frameTestResult(rows)
		buf := appendFetchBatch(nil, 42, res, 0, rows)

		fm := mustReadOneFrame(t, buf)
		if fm.typ != frameTypeBatch || fm.id != 42 {
			t.Fatalf("frame typ=%d id=%d", fm.typ, fm.id)
		}
		var blk ColBlock
		if err := decodeFetchBatch(fm.payload, &blk); err != nil {
			t.Fatalf("decode %d rows: %v", rows, err)
		}
		if blk.Rows != rows {
			t.Fatalf("decoded %d rows, want %d", blk.Rows, rows)
		}
		got, err := blk.AppendRows(nil)
		if err != nil {
			t.Fatalf("AppendRows: %v", err)
		}
		if !reflect.DeepEqual([]sqldb.Row(res.Rows), got) && rows > 0 {
			t.Fatalf("round trip mismatch at %d rows:\n got %v\nwant %v", rows, got, res.Rows)
		}
		// The cell accessor must agree with the materialized rows.
		for i := 0; i < blk.Rows; i++ {
			for j := range blk.Cols {
				v, err := blk.Value(i, j)
				if err != nil {
					t.Fatalf("value(%d,%d): %v", i, j, err)
				}
				if v != res.Rows[i][j] {
					t.Fatalf("value(%d,%d) = %v, want %v", i, j, v, res.Rows[i][j])
				}
			}
		}
	}
}

func TestFrameHeaderEndRoundTrip(t *testing.T) {
	cols := []string{"a", "long_column_name", "ünïcode"}
	buf := appendFetchHeader(nil, 7, cols, 12.25, 512, 9001)
	fm := mustReadOneFrame(t, buf)
	var h frameHeader
	if err := decodeFetchHeader(fm.payload, &h); err != nil {
		t.Fatalf("decode header: %v", err)
	}
	if !h.accepted || h.execMs != 12.25 || h.batchRows != 512 || h.totalRows != 9001 ||
		!reflect.DeepEqual(h.columns, cols) {
		t.Fatalf("header round trip: %+v", h)
	}

	buf = appendFetchEnd(nil, 7, 9001, 18, msgNodeStopping)
	fm = mustReadOneFrame(t, buf)
	end, err := decodeFetchEnd(fm.payload)
	if err != nil {
		t.Fatalf("decode end: %v", err)
	}
	if end.rows != 9001 || end.batches != 18 || end.errMsg != msgNodeStopping {
		t.Fatalf("end round trip: %+v", end)
	}
}

func mustReadOneFrame(t *testing.T, buf []byte) frameMsg {
	t.Helper()
	fm, err := readFrame(bufio.NewReader(strings.NewReader(string(buf))))
	if err != nil {
		t.Fatalf("readFrame: %v", err)
	}
	return fm
}

// TestFrameDecodeRejectsMalformed truncates and corrupts golden frames
// at every byte: the decoders must answer errFrameDecode (or an IO
// error for short reads), never panic and never accept.
func TestFrameDecodeRejectsMalformed(t *testing.T) {
	res := frameTestResult(9)
	batch := appendFetchBatch(nil, 1, res, 0, 9)
	header := appendFetchHeader(nil, 1, res.Columns, 1, 4, 9)
	end := appendFetchEnd(nil, 1, 9, 3, "")

	for name, golden := range map[string][]byte{"header": header, "batch": batch, "end": end} {
		for cut := 0; cut < len(golden); cut++ {
			r := bufio.NewReader(strings.NewReader(string(golden[:cut])))
			if fm, err := readFrame(r); err == nil {
				// A truncated payload length can still form a complete
				// shorter frame; the payload decoder must then reject it.
				if decodeAny(fm) == nil {
					t.Fatalf("%s truncated at %d accepted", name, cut)
				}
			}
		}
		// Corrupt each payload byte and require the decoder to stay
		// panic-free (it may accept — some bytes are value bits).
		for i := frameHdrLen; i < len(golden); i++ {
			mut := append([]byte(nil), golden...)
			mut[i] ^= 0xFF
			if fm, err := readFrame(bufio.NewReader(strings.NewReader(string(mut)))); err == nil {
				decodeAny(fm)
			}
		}
	}

	// A corrupt length prefix must be refused before allocation.
	huge := append([]byte(nil), batch...)
	huge[12], huge[13], huge[14], huge[15] = 0xFF, 0xFF, 0xFF, 0x7F
	if _, err := readFrame(bufio.NewReader(strings.NewReader(string(huge)))); !errors.Is(err, errFrameDecode) {
		t.Fatalf("oversized payload length: %v", err)
	}
}

func decodeAny(fm frameMsg) error {
	switch fm.typ {
	case frameTypeHeader:
		var h frameHeader
		return decodeFetchHeader(fm.payload, &h)
	case frameTypeBatch:
		var blk ColBlock
		if err := decodeFetchBatch(fm.payload, &blk); err != nil {
			return err
		}
		_, err := blk.AppendRows(nil)
		return err
	case frameTypeEnd:
		_, err := decodeFetchEnd(fm.payload)
		return err
	}
	return errFrameDecode
}

// TestStreamedFetchBoundedMemory is the tentpole's memory guarantee: a
// 1M-row result crosses the wire without either side ever buffering
// more than O(batch). The server half streams from a materialized
// result (the engine's output), so the bound under test is the wire
// path: every frame payload and every decoded block must stay batch-
// sized, while all 1M rows arrive exactly once.
func TestStreamedFetchBoundedMemory(t *testing.T) {
	const totalRows = 1_000_000
	const batch = 2048
	res := &sqldb.Result{Columns: []string{"n", "label"}}
	res.Rows = make([]sqldb.Row, totalRows)
	for i := range res.Rows {
		res.Rows[i] = sqldb.Row{sqldb.NewInt(int64(i)), sqldb.NewText("r")}
	}

	srv := &Node{health: metrics.NewHealth()}
	cliConn, srvConn := net.Pipe()
	defer cliConn.Close()
	var wmu sync.Mutex
	errCh := make(chan error, 1)
	go func() {
		defer srvConn.Close()
		w := bufio.NewWriter(srvConn)
		errCh <- srv.streamFetch(srvConn, w, &wmu, 3, &frameStream{res: driver.FromResult(res), execMs: 1, batch: batch})
	}()

	var (
		delivered int64
		sum       int64
		maxRows   int
	)
	fs := &fetchStream{sink: fetchSink{
		block: func(blk *ColBlock) error {
			if blk.Rows > maxRows {
				maxRows = blk.Rows
			}
			delivered += int64(blk.Rows)
			for _, v := range blk.Cols[0].Ints {
				sum += v
			}
			return nil
		},
	}}
	r := bufio.NewReader(cliConn)
	maxPayload := 0
	for {
		fm, err := readFrame(r)
		if err != nil {
			t.Fatalf("readFrame after %d rows: %v", delivered, err)
		}
		if len(fm.payload) > maxPayload {
			maxPayload = len(fm.payload)
		}
		done, err := fs.onFrame(fm.typ, fm.payload)
		fm.release()
		if err != nil {
			t.Fatalf("onFrame: %v", err)
		}
		if done {
			break
		}
	}
	if err := <-errCh; err != nil {
		t.Fatalf("streamFetch: %v", err)
	}
	if delivered != totalRows || fs.end.errMsg != "" {
		t.Fatalf("delivered %d rows (end=%+v), want %d", delivered, fs.end, totalRows)
	}
	if want := int64(totalRows) * (totalRows - 1) / 2; sum != want {
		t.Fatalf("row content sum %d, want %d", sum, want)
	}
	if maxRows > batch {
		t.Fatalf("a block carried %d rows, batch bound is %d", maxRows, batch)
	}
	// One batch is ~18 bytes/row here; anything near the full result
	// size would mean the stream buffered everything in one frame.
	if bound := batch * 64; maxPayload > bound {
		t.Fatalf("a frame carried %d bytes, per-batch bound is %d", maxPayload, bound)
	}
	if got := srv.health.Snapshot()[metrics.FetchBatchesTotal]; got != float64((totalRows+batch-1)/batch) {
		t.Fatalf("fetch_batches_total = %v", got)
	}
}

// fetchFederation starts one fast node and returns a fetch-capable
// client plus a query and its locally-computed expected result.
func fetchFederation(t *testing.T, ccfg ClientConfig) (*Node, *Client, string, *sqldb.Result) {
	t.Helper()
	ds, nodes, addrs := startTestFederation(t, []float64{1})
	rng := rand.New(rand.NewSource(23))
	templates, err := ds.GenerateTemplates(4, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	sql := templates[0].Instantiate(rng)
	want, err := ds.DBs[0].Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	ccfg.Addrs = addrs
	if ccfg.PeriodMs == 0 {
		ccfg.PeriodMs = 50
	}
	c, err := NewClient(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return nodes[0], c, sql, want
}

// TestFetchFrameMatchesJSON is the interop acceptance matrix: the same
// query fetched over the binary frame stream, over compact JSON
// (frame-declining server), and by a legacy client (no frame field,
// tagged encoding) must produce identical results — and the non-fetch
// ops keep working in every pairing.
func TestFetchFrameMatchesJSON(t *testing.T) {
	cases := []struct {
		name      string
		cfg       ClientConfig
		noFrames  bool
		wantFrame bool
	}{
		{name: "frame-client-frame-server", wantFrame: true},
		{name: "frame-client-json-server", noFrames: true},
		{name: "legacy-client-new-server", cfg: ClientConfig{FrameV: -1, FetchEnc: -1}},
		{name: "compact-client-new-server", cfg: ClientConfig{FrameV: -1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			node, c, sql, want := fetchFederation(t, tc.cfg)
			node.noFrames.Store(tc.noFrames)

			// All four ops against this pairing: negotiate + execute via
			// Run, fetch via Fetch, stats via Stats.
			if out := c.Run(1, sql); out.Err != nil {
				t.Fatalf("Run: %v", out.Err)
			}
			res, out := c.Fetch(2, sql)
			if out.Err != nil {
				t.Fatalf("Fetch: %v", out.Err)
			}
			if !reflect.DeepEqual(res.Columns, want.Columns) || !reflect.DeepEqual(res.Rows, want.Rows) {
				t.Fatalf("fetched result differs:\n got %v %v\nwant %v %v", res.Columns, res.Rows, want.Columns, want.Rows)
			}
			if out.Rows != len(want.Rows) {
				t.Fatalf("outcome rows %d, want %d", out.Rows, len(want.Rows))
			}
			if _, err := c.Stats(node.ID()); err != nil {
				t.Fatalf("Stats: %v", err)
			}
			negotiated := node.health.Snapshot()[metrics.FrameNegotiatedCounter(frameV1)]
			if tc.wantFrame && negotiated == 0 {
				t.Fatal("expected a frame-negotiated fetch, counter is 0")
			}
			if !tc.wantFrame && negotiated != 0 {
				t.Fatalf("expected pure JSON, frame_negotiated=%v", negotiated)
			}
		})
	}
}

// TestFetchEachStreamsBatches drives the callback API end to end over
// a real federation and checks the rows arrive in order, once each.
func TestFetchEachStreamsBatches(t *testing.T) {
	_, c, sql, want := fetchFederation(t, ClientConfig{FetchBatchRows: 2})
	var got []sqldb.Row
	blocks := 0
	out := c.FetchEach(1, sql, func(blk *ColBlock) error {
		blocks++
		if blk.Rows > 2 {
			t.Fatalf("block carried %d rows, requested bound 2", blk.Rows)
		}
		var err error
		got, err = blk.AppendRows(got)
		return err
	})
	if out.Err != nil {
		t.Fatalf("FetchEach: %v", out.Err)
	}
	if !reflect.DeepEqual(got, []sqldb.Row(want.Rows)) {
		t.Fatalf("streamed rows differ:\n got %v\nwant %v", got, want.Rows)
	}
	if len(want.Rows) > 2 && blocks < 2 {
		t.Fatalf("%d rows arrived in %d blocks; batching not honored", len(want.Rows), blocks)
	}
	if out.Rows != len(want.Rows) {
		t.Fatalf("outcome rows %d, want %d", out.Rows, len(want.Rows))
	}
}

// TestFetchSinkAbortKeepsConnectionUsable: a sink that refuses the
// stream kills that query terminally (errStreamAbort) but must not
// poison the pooled connection or the breaker — the next fetch on the
// same client succeeds.
func TestFetchSinkAbortKeepsConnectionUsable(t *testing.T) {
	_, c, sql, want := fetchFederation(t, ClientConfig{FetchBatchRows: 1})
	boom := errors.New("sink full")
	out := c.FetchEach(1, sql, func(*ColBlock) error { return boom })
	if out.Err == nil || !strings.Contains(out.Err.Error(), "sink") {
		t.Fatalf("aborted fetch err = %v", out.Err)
	}
	if st := c.nodes()[0].breaker.snapshot(); st != breakerClosed {
		t.Fatalf("breaker %v after sink abort, want closed", st)
	}
	res, out := c.Fetch(2, sql)
	if out.Err != nil {
		t.Fatalf("fetch after abort: %v", out.Err)
	}
	if !reflect.DeepEqual(res.Rows, want.Rows) {
		t.Fatal("fetch after abort returned wrong rows")
	}
}

// TestPartialStreamResume is the exactly-once acceptance test for
// callback-mode delivery: the server severs the connection after the
// first streamed batch; the client must resume on the same node via
// the dedup window's replay, skipping the delivered prefix, so the
// caller sees every row exactly once.
func TestPartialStreamResume(t *testing.T) {
	node, c, sql, want := fetchFederation(t, ClientConfig{
		FetchBatchRows: 1, ExecRetries: 3, Timeout: 2 * time.Second,
	})
	if len(want.Rows) < 2 {
		t.Skipf("need a multi-row result, got %d", len(want.Rows))
	}
	node.frameSever.Store(1) // cut the stream after one batch

	var got []sqldb.Row
	out := c.FetchEach(1, sql, func(blk *ColBlock) error {
		var err error
		got, err = blk.AppendRows(got)
		return err
	})
	if out.Err != nil {
		t.Fatalf("FetchEach with severed stream: %v", out.Err)
	}
	if !reflect.DeepEqual(got, []sqldb.Row(want.Rows)) {
		t.Fatalf("resume delivered wrong rows:\n got %v\nwant %v", got, want.Rows)
	}
	if out.Retries == 0 {
		t.Fatal("resume should have charged a retry")
	}
	if hits := node.health.Snapshot()[metrics.DedupHitsTotal]; hits == 0 {
		t.Fatal("resume should have replayed from the dedup window")
	}
}

// TestOversizedRequestTypedRefusal is the satellite regression test: a
// request over maxLineBytes gets a typed too_large JSON refusal before
// the server hangs up, the client classifies it as terminal, and the
// breaker never trips (the node is healthy; retrying cannot shrink the
// request).
func TestOversizedRequestTypedRefusal(t *testing.T) {
	_, node, addr, _ := protectionQuery(t)

	t.Run("raw-wire", func(t *testing.T) {
		conn, err := net.DialTimeout("tcp", addr, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		conn.SetDeadline(time.Now().Add(5 * time.Second))
		// Handcraft a >1MiB request that a current client's own pre-write
		// check would refuse to send.
		big := fmt.Sprintf(`{"op":"negotiate","sql":"SELECT 1 FROM t WHERE x = '%s'"}`+"\n",
			strings.Repeat("a", maxLineBytes))
		if _, err := conn.Write([]byte(big)); err != nil {
			t.Fatal(err)
		}
		var rep reply
		if err := readMsg(bufio.NewReader(conn), &rep); err != nil {
			t.Fatalf("expected a typed refusal before close, got %v", err)
		}
		if rep.Code != CodeTooLarge || rep.NodeID != node.ID() {
			t.Fatalf("refusal = %+v, want code %q", rep, CodeTooLarge)
		}
	})

	t.Run("client-classification", func(t *testing.T) {
		c, err := NewClient(ClientConfig{Addrs: []string{addr}, PeriodMs: 50})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		bigSQL := "SELECT 1 FROM t WHERE x = '" + strings.Repeat("a", maxLineBytes) + "'"
		ns := c.nodes()[0]
		_, kind, err := c.executeOn(ns, 1, bigSQL, nil, time.Time{})
		if kind != attemptFatal || !errors.Is(err, ErrTooLarge) {
			t.Fatalf("oversized execute: kind=%v err=%v", kind, err)
		}
		if st := ns.breaker.snapshot(); st != breakerClosed {
			t.Fatalf("breaker %v after too-large refusal, want closed", st)
		}
		out := c.Run(2, bigSQL)
		if !errors.Is(out.Err, ErrTooLarge) {
			t.Fatalf("Run with oversized query: %v", out.Err)
		}
		if out.Retries != 0 {
			t.Fatalf("too-large failed after %d retries, want fast fail", out.Retries)
		}
	})
}

// TestFrameMetricsExposition: the per-version negotiation counters
// render as one qa_frame_negotiated_total family with a version label,
// alongside the stream counters.
func TestFrameMetricsExposition(t *testing.T) {
	node, c, sql, _ := fetchFederation(t, ClientConfig{})
	if _, out := c.Fetch(1, sql); out.Err != nil {
		t.Fatalf("Fetch: %v", out.Err)
	}
	srv := httptest.NewServer(node.MetricsHandler())
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	rec := string(body)
	for _, want := range []string{
		`qa_frame_negotiated_total{node="` + node.ID() + `",version="1"} 1`,
		"qa_fetch_batches_total{",
		"qa_fetch_bytes_total{",
	} {
		if !strings.Contains(rec, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if strings.Contains(rec, "frame_negotiated_v1") {
		t.Error("raw per-version counter name leaked into the exposition")
	}
}
