package cluster

import (
	"math/rand"
	"testing"
	"time"
)

// TestMarketStateCheckpoint verifies a node's learned market position
// (classes, prices, history) survives a save/restore cycle onto a
// fresh node.
func TestMarketStateCheckpoint(t *testing.T) {
	ds, nodes, addrs := startTestFederation(t, []float64{1, 2})
	client, err := NewClient(ClientConfig{
		Addrs: addrs, Mechanism: MechQANT, PeriodMs: 50, MaxRetries: 50, Timeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	templates, err := ds.GenerateTemplates(3, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	for qi := 0; qi < 10; qi++ {
		if out := client.Run(int64(qi), templates[qi%len(templates)].Instantiate(rng)); out.Err != nil {
			t.Fatalf("query %d: %v", qi, out.Err)
		}
	}
	st0, err := client.Stats(addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(st0.Prices) == 0 {
		t.Skip("node 0 learned no classes in this layout")
	}
	data, err := nodes[0].MarketState()
	if err != nil {
		t.Fatalf("MarketState: %v", err)
	}

	// Fresh node over the same data, restored from the checkpoint.
	restored, err := StartNode("127.0.0.1:0", NodeConfig{
		DB: ds.DBs[0], MsPerCostUnit: 0.02, PeriodMs: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if err := restored.RestoreMarketState(data); err != nil {
		t.Fatalf("RestoreMarketState: %v", err)
	}
	client2, err := NewClient(ClientConfig{Addrs: []string{restored.Addr()}, Mechanism: MechQANT})
	if err != nil {
		t.Fatal(err)
	}
	st1, err := client2.Stats(restored.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if len(st1.Prices) != len(st0.Prices) {
		t.Fatalf("restored %d classes, want %d", len(st1.Prices), len(st0.Prices))
	}
	for sig, p := range st0.Prices {
		if got, ok := st1.Prices[sig]; !ok || got != p {
			t.Errorf("class %s: restored price %g, want %g", sig, got, p)
		}
	}
}

func TestRestoreMarketStateRejectsGarbage(t *testing.T) {
	_, nodes, _ := startTestFederation(t, []float64{1})
	if err := nodes[0].RestoreMarketState([]byte("{broken")); err == nil {
		t.Error("broken JSON accepted")
	}
	if err := nodes[0].RestoreMarketState([]byte(`{"pricer":{"classes":{"a":0},"costs":[],"prices":[]}}`)); err == nil {
		t.Error("inconsistent state accepted")
	}
	if err := nodes[0].RestoreMarketState([]byte(`{"pricer":{"classes":{"a":5},"costs":[10],"prices":[1]}}`)); err == nil {
		t.Error("out-of-range class index accepted")
	}
	// Empty state resets cleanly.
	if err := nodes[0].RestoreMarketState([]byte(`{"pricer":{"classes":{},"costs":[],"prices":[]}}`)); err != nil {
		t.Errorf("empty state rejected: %v", err)
	}
}
