package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync"
	"time"

	"github.com/qamarket/qamarket/internal/metrics"
)

// ClientConfig parameterizes a federation client.
type ClientConfig struct {
	// Addrs lists the server nodes' TCP addresses.
	Addrs []string
	// Mechanism selects the allocation protocol (greedy or qa-nt).
	Mechanism Mechanism
	// PeriodMs is the base wait before renegotiating a query every
	// server refused (QA-NT resubmission). Consecutive refusals back
	// off exponentially from this base up to MaxBackoffMs.
	PeriodMs int64
	// MaxBackoffMs caps the exponential retry backoff. Defaults to
	// 8*PeriodMs.
	MaxBackoffMs int64
	// MaxRetries caps resubmissions before the query fails.
	MaxRetries int
	// Timeout bounds each RPC except execution.
	Timeout time.Duration
	// ExecTimeoutFactor multiplies Timeout for execution RPCs, which
	// block for the query's whole run time. Default 20; must not be
	// negative.
	ExecTimeoutFactor int
	// BreakerThreshold is how many consecutive failures open a node's
	// circuit breaker (default 3). While open, the node is skipped
	// entirely until BreakerCooldown elapses and a single probe is
	// admitted, so a dead node costs one timeout per breaker window
	// instead of one per query.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker waits before probing
	// the node again (default 2s).
	BreakerCooldown time.Duration
	// Transport selects the RPC transport: TransportPooled (default)
	// keeps persistent multiplexed connections per node, TransportFresh
	// dials per RPC (the v0 behavior, kept for comparison).
	Transport Transport
	// PoolSize is how many connections each per-node, per-lane pool
	// holds under TransportPooled (default 2). The client keeps two
	// lanes per node — control (negotiate/stats) and data
	// (execute/fetch) — so a short RPC timing out never evicts a
	// connection carrying a long execution.
	PoolSize int
}

func (c *ClientConfig) validate() error {
	if len(c.Addrs) == 0 {
		return errors.New("cluster: no server addresses")
	}
	if c.Mechanism == "" {
		c.Mechanism = MechGreedy
	}
	if c.PeriodMs <= 0 {
		c.PeriodMs = 500
	}
	if c.MaxBackoffMs <= 0 {
		c.MaxBackoffMs = 8 * c.PeriodMs
	}
	if c.MaxBackoffMs < c.PeriodMs {
		return fmt.Errorf("cluster: MaxBackoffMs %d below PeriodMs %d", c.MaxBackoffMs, c.PeriodMs)
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 40
	}
	if c.Timeout <= 0 {
		c.Timeout = 5 * time.Second
	}
	if c.ExecTimeoutFactor < 0 {
		return fmt.Errorf("cluster: ExecTimeoutFactor %d is negative", c.ExecTimeoutFactor)
	}
	if c.ExecTimeoutFactor == 0 {
		c.ExecTimeoutFactor = 20
	}
	if c.BreakerThreshold < 0 {
		return fmt.Errorf("cluster: BreakerThreshold %d is negative", c.BreakerThreshold)
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 2 * time.Second
	}
	switch c.Transport {
	case "":
		c.Transport = TransportPooled
	case TransportPooled, TransportFresh:
	default:
		return fmt.Errorf("cluster: unknown transport %q", c.Transport)
	}
	if c.PoolSize <= 0 {
		c.PoolSize = 2
	}
	return nil
}

// execTimeout is the budget for an execution RPC.
func (c *ClientConfig) execTimeout() time.Duration {
	return time.Duration(c.ExecTimeoutFactor) * c.Timeout
}

// Client negotiates and dispatches queries against the federation.
type Client struct {
	cfg      ClientConfig
	breakers []*breaker
	health   *metrics.Health

	// Pooled transport: one two-lane pool set per node, plus the addr
	// lookup that routes rpc(addr, ...) onto the right pools. Both are
	// nil/empty under TransportFresh.
	transports []*nodeTransport
	addrIndex  map[string]int

	// Per-op, per-node RPC latency histograms, populated lazily.
	latMu sync.Mutex
	lat   map[latKey]*metrics.Histogram
}

// latKey indexes one latency histogram.
type latKey struct {
	op   string
	node int
}

// NewClient builds a client. Under the default pooled transport the
// client owns persistent connections; call Close when done with it.
func NewClient(cfg ClientConfig) (*Client, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	c := &Client{cfg: cfg, health: metrics.NewHealth(), lat: make(map[latKey]*metrics.Histogram)}
	c.breakers = make([]*breaker, len(cfg.Addrs))
	for i := range c.breakers {
		c.breakers[i] = newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, c.noteTransition)
	}
	if cfg.Transport == TransportPooled {
		c.transports = make([]*nodeTransport, len(cfg.Addrs))
		c.addrIndex = make(map[string]int, len(cfg.Addrs))
		for i, addr := range cfg.Addrs {
			c.transports[i] = newNodeTransport(addr, cfg.PoolSize)
			c.addrIndex[addr] = i
		}
	}
	return c, nil
}

// Close shuts the client's pooled connections down. Safe to call more
// than once, and a no-op under TransportFresh.
func (c *Client) Close() {
	for _, nt := range c.transports {
		nt.close()
	}
}

// noteTransition feeds breaker state changes into the health counters.
func (c *Client) noteTransition(_, to breakerState) {
	switch to {
	case breakerOpen:
		c.health.Inc(metrics.BreakerOpenTotal)
	case breakerHalfOpen:
		c.health.Inc(metrics.BreakerHalfOpenTotal)
	case breakerClosed:
		c.health.Inc(metrics.BreakerCloseTotal)
	}
}

// Health snapshots the client's failure-domain counters: breaker
// transitions, retry rounds, accumulated backoff.
func (c *Client) Health() map[string]float64 { return c.health.Snapshot() }

// Outcome reports one query's journey through the federation.
type Outcome struct {
	QueryID   int64
	Node      int     // index into Addrs
	AssignMs  float64 // negotiation time (the paper's "time to assign")
	TotalMs   float64 // assignment + queueing + execution
	ExecMs    float64 // server-side execution time
	Rows      int     // result cardinality
	Retries   int     // resubmission rounds
	Err       error   // terminal failure, if any
	Submitted time.Time
}

// errBreakerOpen marks a node skipped because its circuit is open: the
// client never touched the network for it this round.
var errBreakerOpen = errors.New("breaker open")

// errDraining marks a node that answered with a typed draining reply.
var errDraining = errors.New("draining")

// Run evaluates one query: negotiate with every reachable node (waiting
// for all replies, as the paper's implementation did), send it to the
// best offer, and return the outcome. Refusals and transient transport
// failures are retried with capped exponential backoff up to
// MaxRetries; per-node circuit breakers keep dead nodes from charging
// a timeout on every round.
func (c *Client) Run(queryID int64, sql string) Outcome {
	start := time.Now()
	out := Outcome{QueryID: queryID, Node: -1, Submitted: start}
	finish := func(err error) Outcome {
		out.Err = err
		out.TotalMs = float64(time.Since(start)) / float64(time.Millisecond)
		return out
	}
	noteRetry := func() {
		out.Retries++
		c.health.Inc(metrics.RetriesTotal)
	}
	// unreachableRounds counts consecutive rounds where no node answered
	// at all; it drives the exponential backoff and resets the moment
	// the federation responds. Market refusals keep the paper's
	// resubmit-next-period cadence (a jittered single period) so the
	// QA-NT price dynamics are untouched by the resilience layer.
	unreachableRounds := 0
	for attempt := 0; ; attempt++ {
		node, assignDur, err := c.negotiateAll(sql)
		out.AssignMs += float64(assignDur) / float64(time.Millisecond)
		if err != nil {
			// Whole federation unreachable this round: transient until
			// proven otherwise (a partition heals, a breaker re-probes).
			if attempt >= c.cfg.MaxRetries {
				return finish(fmt.Errorf("cluster: query %d after %d rounds: %w", queryID, attempt+1, err))
			}
			noteRetry()
			c.sleepBackoff(unreachableRounds)
			unreachableRounds++
			continue
		}
		unreachableRounds = 0
		if node < 0 {
			// Nobody offered: resubmit next period (Section 3.3 client
			// protocol).
			if attempt >= c.cfg.MaxRetries {
				return finish(fmt.Errorf("cluster: query %d refused by all nodes after %d rounds", queryID, attempt))
			}
			noteRetry()
			c.sleepBackoff(0)
			continue
		}
		rep, retryable, err := c.executeOn(node, queryID, sql)
		if err != nil {
			if !retryable {
				return finish(err)
			}
			// The node died or drained mid-execute; the query never ran,
			// so renegotiate it elsewhere.
			if attempt >= c.cfg.MaxRetries {
				return finish(fmt.Errorf("cluster: query %d after %d rounds: %w", queryID, attempt+1, err))
			}
			noteRetry()
			continue
		}
		if !rep.Accepted {
			// Lost the race for the last supply unit: renegotiate.
			if attempt >= c.cfg.MaxRetries {
				return finish(fmt.Errorf("cluster: query %d starved after %d rounds", queryID, attempt))
			}
			noteRetry()
			continue
		}
		out.Node = node
		out.ExecMs = rep.ExecMs
		out.Rows = rep.Rows
		return finish(nil)
	}
}

// sleepBackoff waits the capped exponential backoff for the given retry
// round: PeriodMs doubled per round, capped at MaxBackoffMs, jittered
// into [1/2, 1] of the target so synchronized clients desynchronize.
func (c *Client) sleepBackoff(round int) {
	d := c.backoffDelay(round)
	c.health.Add(metrics.BackoffMsTotal, int64(d/time.Millisecond))
	time.Sleep(d)
}

func (c *Client) backoffDelay(round int) time.Duration {
	base := float64(c.cfg.PeriodMs)
	ceil := float64(c.cfg.MaxBackoffMs)
	target := base * math.Pow(2, float64(round))
	if target > ceil || math.IsInf(target, 1) {
		target = ceil
	}
	jitter := 0.5 + 0.5*rand.Float64()
	return time.Duration(target * jitter * float64(time.Millisecond))
}

// negotiateAll broadcasts the call-for-proposals and picks the node
// with the earliest estimated completion among those offering. It
// returns -1 when no node offers, and an aggregate error naming every
// node's failure when none is reachable.
func (c *Client) negotiateAll(sql string) (int, time.Duration, error) {
	start := time.Now()
	replies := make([]negotiateReply, len(c.cfg.Addrs))
	errs := make([]error, len(c.cfg.Addrs))
	var wg sync.WaitGroup
	for i := range c.cfg.Addrs {
		if !c.breakers[i].allow() {
			errs[i] = errBreakerOpen
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var rep reply
			err := c.rpcNode(i, &request{Op: "negotiate", SQL: sql, Mechanism: c.cfg.Mechanism}, &rep, c.cfg.Timeout)
			switch {
			case err != nil:
				c.breakers[i].failure()
				errs[i] = err
			case rep.Code == CodeDraining:
				// The node told us it is going away: open its circuit now
				// instead of discovering the death one timeout at a time.
				c.breakers[i].trip()
				errs[i] = errDraining
			case rep.Err != "":
				c.breakers[i].success()
				errs[i] = errors.New(rep.Err)
			default:
				c.breakers[i].success()
				if rep.Negotiate != nil {
					replies[i] = *rep.Negotiate
				}
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	best, bestNode := math.Inf(1), -1
	reachable := false
	for i := range replies {
		if errs[i] != nil {
			continue
		}
		reachable = true
		r := replies[i]
		if !r.Feasible || !r.Offer {
			continue
		}
		if finish := r.QueueMs + r.EstimateMs; finish < best {
			best, bestNode = finish, i
		}
	}
	if !reachable {
		return -1, elapsed, aggregateNodeErrors(c.cfg.Addrs, errs)
	}
	return bestNode, elapsed, nil
}

// aggregateNodeErrors folds per-node failures into one error naming
// every node, so "no node reachable" is diagnosable instead of hiding
// everything behind the first node's error.
func aggregateNodeErrors(addrs []string, errs []error) error {
	parts := make([]string, 0, len(errs))
	for i, err := range errs {
		if err != nil {
			parts = append(parts, fmt.Sprintf("node %d (%s): %v", i, addrs[i], err))
		}
	}
	return fmt.Errorf("no node reachable: %s", strings.Join(parts, "; "))
}

// executeOn dispatches the query to the chosen node. retryable reports
// whether a failure left the query unexecuted (transport loss, node
// draining or stopping), in which case the caller may renegotiate it.
func (c *Client) executeOn(node int, queryID int64, sql string) (*executeReply, bool, error) {
	var rep reply
	err := c.rpcNode(node, &request{
		Op: "execute", SQL: sql, QueryID: queryID, Mechanism: c.cfg.Mechanism,
	}, &rep, c.cfg.execTimeout())
	if err != nil {
		c.breakers[node].failure()
		return nil, true, fmt.Errorf("cluster: execute on node %d: %w", node, err)
	}
	if rep.Code == CodeDraining {
		c.breakers[node].trip()
		return nil, true, fmt.Errorf("cluster: node %d: %w", node, errDraining)
	}
	if rep.Err != "" {
		return nil, false, errors.New(rep.Err)
	}
	if rep.Execute == nil {
		return nil, false, errors.New("cluster: malformed execute reply")
	}
	if rep.Execute.Err == msgNodeStopping {
		c.breakers[node].trip()
		return nil, true, fmt.Errorf("cluster: node %d: %s", node, msgNodeStopping)
	}
	if rep.Execute.Err != "" {
		return nil, false, errors.New(rep.Execute.Err)
	}
	c.breakers[node].success()
	return rep.Execute, false, nil
}

// rpc performs one request/reply exchange. Under the pooled transport,
// known addresses ride a persistent multiplexed connection from the
// op's lane; unknown addresses (and TransportFresh) fall back to a
// fresh dial per RPC.
func (c *Client) rpc(addr string, req *request, rep *reply, timeout time.Duration) error {
	if c.transports != nil {
		if i, ok := c.addrIndex[addr]; ok {
			mc, err := c.transports[i].lane(req.Op).get(timeout)
			if err != nil {
				return err
			}
			return mc.call(req, rep, timeout)
		}
	}
	return freshRPC(addr, req, rep, timeout)
}

// freshRPC is the v0 transport: dial, one exchange, hang up.
func freshRPC(addr string, req *request, rep *reply, timeout time.Duration) error {
	conn, err := dial(addr, timeout)
	if err != nil {
		return err
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		return err
	}
	w := bufio.NewWriter(conn)
	if err := writeMsg(w, req); err != nil {
		return err
	}
	return readMsg(bufio.NewReader(conn), rep)
}

// rpcNode is rpc addressed by node index, recording the exchange's
// latency (successful RPCs only — failures are already counted by the
// breaker and retry metrics) in the per-op, per-node histogram.
func (c *Client) rpcNode(node int, req *request, rep *reply, timeout time.Duration) error {
	start := time.Now()
	err := c.rpc(c.cfg.Addrs[node], req, rep, timeout)
	if err == nil {
		c.observeLatency(req.Op, node, msSince(start))
	}
	return err
}

func (c *Client) observeLatency(op string, node int, ms float64) {
	k := latKey{op, node}
	c.latMu.Lock()
	h := c.lat[k]
	if h == nil {
		h = metrics.NewHistogram()
		c.lat[k] = h
	}
	c.latMu.Unlock()
	h.Observe(ms)
}

// Latencies snapshots the client's RPC latency histograms, keyed by op
// then node index.
func (c *Client) Latencies() map[string]map[int]metrics.HistSummary {
	c.latMu.Lock()
	defer c.latMu.Unlock()
	out := make(map[string]map[int]metrics.HistSummary)
	for k, h := range c.lat {
		m := out[k.op]
		if m == nil {
			m = make(map[int]metrics.HistSummary)
			out[k.op] = m
		}
		m[k.node] = h.Summary()
	}
	return out
}

// OpLatencies merges each op's per-node histograms into one summary.
func (c *Client) OpLatencies() map[string]metrics.HistSummary {
	c.latMu.Lock()
	merged := make(map[string]*metrics.Histogram)
	for k, h := range c.lat {
		m := merged[k.op]
		if m == nil {
			m = metrics.NewHistogram()
			merged[k.op] = m
		}
		m.Merge(h)
	}
	c.latMu.Unlock()
	out := make(map[string]metrics.HistSummary, len(merged))
	for op, h := range merged {
		out[op] = h.Summary()
	}
	return out
}

// Stats fetches one node's market counters. Stats is an out-of-band
// observability op, so it leaves the breaker's failure accounting alone
// — except for a typed draining reply, which trips the breaker exactly
// like it does on negotiate/execute/fetch (the node told us it is going
// away; there is no reason to keep paying timeouts to learn it again).
func (c *Client) Stats(node int) (*NodeStats, error) {
	var rep reply
	if err := c.rpcNode(node, &request{Op: "stats"}, &rep, c.cfg.Timeout); err != nil {
		return nil, err
	}
	if rep.Code == CodeDraining {
		c.breakers[node].trip()
		return nil, fmt.Errorf("cluster: node %d: %w", node, errDraining)
	}
	if rep.Err != "" {
		return nil, errors.New(rep.Err)
	}
	if rep.Stats == nil {
		return nil, errors.New("cluster: malformed stats reply")
	}
	return rep.Stats, nil
}

// fetchOn dispatches a fetch (execute + result shipping) to the chosen
// node, advertising the compact row encoding. Same retryable semantics
// as executeOn: a transport loss, drain, or hard stop leaves the query
// unexecuted and the caller may renegotiate it elsewhere.
func (c *Client) fetchOn(node int, queryID int64, sql string) (*fetchReply, bool, error) {
	var rep reply
	err := c.rpcNode(node, &request{
		Op: "fetch", SQL: sql, QueryID: queryID, Mechanism: c.cfg.Mechanism, Enc: encCompact,
	}, &rep, c.cfg.execTimeout())
	if err != nil {
		c.breakers[node].failure()
		return nil, true, fmt.Errorf("cluster: fetch on node %d: %w", node, err)
	}
	if rep.Code == CodeDraining {
		c.breakers[node].trip()
		return nil, true, fmt.Errorf("cluster: node %d: %w", node, errDraining)
	}
	if rep.Err != "" {
		return nil, false, errors.New(rep.Err)
	}
	if rep.Fetch == nil {
		return nil, false, errors.New("cluster: malformed fetch reply")
	}
	if rep.Fetch.Err == msgNodeStopping {
		c.breakers[node].trip()
		return nil, true, fmt.Errorf("cluster: node %d: %s", node, msgNodeStopping)
	}
	if rep.Fetch.Err != "" {
		return nil, false, errors.New(rep.Fetch.Err)
	}
	c.breakers[node].success()
	return rep.Fetch, false, nil
}
