package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/qamarket/qamarket/internal/catalog"
	"github.com/qamarket/qamarket/internal/metrics"
	"github.com/qamarket/qamarket/internal/sqldb"
	"github.com/qamarket/qamarket/internal/trace"
)

// ClientConfig parameterizes a federation client.
type ClientConfig struct {
	// Addrs seeds the client's membership view with server addresses.
	// With ViewRefresh enabled the view then tracks the federation's
	// gossip: nodes joining later are discovered and departing nodes
	// are pruned, no client restart needed. Without it the view stays
	// exactly these seeds (the static pre-membership behavior).
	Addrs []string
	// Mechanism selects the allocation protocol (greedy or qa-nt).
	Mechanism Mechanism
	// PeriodMs is the base wait before renegotiating a query every
	// server refused (QA-NT resubmission). Consecutive refusals back
	// off exponentially from this base up to MaxBackoffMs.
	PeriodMs int64
	// MaxBackoffMs caps the exponential retry backoff. Defaults to
	// 8*PeriodMs.
	MaxBackoffMs int64
	// MaxRetries caps resubmissions before the query fails.
	MaxRetries int
	// Timeout bounds each RPC except execution.
	Timeout time.Duration
	// ExecTimeoutFactor multiplies Timeout for execution RPCs, which
	// block for the query's whole run time. Default 20; must not be
	// negative.
	ExecTimeoutFactor int
	// BreakerThreshold is how many consecutive failures open a node's
	// circuit breaker (default 3). While open, the node is skipped
	// entirely until BreakerCooldown elapses and a single probe is
	// admitted, so a dead node costs one timeout per breaker window
	// instead of one per query.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker waits before probing
	// the node again (default 2s).
	BreakerCooldown time.Duration
	// Transport selects the RPC transport: TransportPooled (default)
	// keeps persistent multiplexed connections per node, TransportFresh
	// dials per RPC (the v0 behavior, kept for comparison).
	Transport Transport
	// PoolSize is how many connections each per-node, per-lane pool
	// holds under TransportPooled (default 2). The client keeps two
	// lanes per node — control (negotiate/stats) and data
	// (execute/fetch) — so a short RPC timing out never evicts a
	// connection carrying a long execution.
	PoolSize int
	// ViewRefresh, when positive, makes the client poll a live node's
	// merged membership table (the "members" op) this often and fold
	// it into its view: joiners are added, left/dead members pruned
	// (breakers, pools, and histograms follow the stable node ID). A
	// node answering with a draining reply is pruned immediately. Zero
	// keeps the static seed view.
	ViewRefresh time.Duration
	// Jitter is the RNG behind retry-backoff jitter. Backoff used to
	// draw from the unseeded global rand, which made retry schedules
	// unreproducible and immune to the repo's seeded-determinism
	// policy; now tests inject a seeded source and get identical
	// schedules. Nil defaults to a time-seeded private source. The
	// client serializes access; the source need not be concurrency-safe.
	Jitter *rand.Rand
	// Tracer, when set, records client-side query-lifecycle spans
	// (run/negotiate/execute/fetch) and stamps traced requests with a
	// wire trace context so server spans parent under them. Nil
	// disables tracing at zero cost beyond a nil check.
	Tracer *trace.Recorder
	// QueryTimeout is the end-to-end budget for one Run: negotiation,
	// queueing, execution, and every retry round. The remaining budget
	// rides each RPC as the wire's deadline_ms field, so servers shed
	// queries that cannot finish in time instead of running them for
	// nobody. Zero (the default) disables deadlines.
	QueryTimeout time.Duration
	// RunID names this client run for server-side at-most-once dedup:
	// servers cache execute/fetch outcomes under (RunID, query id, SQL)
	// so a retransmit after a lost reply replays the original outcome.
	// Empty derives a process-unique id.
	RunID string
	// AtMostOnce selects the lost-reply policy. When false (default,
	// the pre-protection behavior) a lost execute reply makes the
	// client renegotiate the query elsewhere — maximally available, but
	// the query may run twice if the first node actually executed it.
	// When true the client retransmits to the *same* node (where the
	// dedup window makes the retry safe) up to ExecRetries times, and
	// declares the outcome unknown rather than risk a double execution.
	AtMostOnce bool
	// ExecRetries bounds the same-node retransmits of a lost execute/
	// fetch reply under AtMostOnce (default 2).
	ExecRetries int
	// RetryBudget is a client-wide token-bucket refill rate (tokens per
	// second) charged for every retry round, failover, and retransmit,
	// so retries cannot amplify an overload. Zero (default) disables
	// the budget.
	RetryBudget float64
	// RetryBurst is the retry bucket's capacity (default 16 when
	// RetryBudget is set). The bucket starts full.
	RetryBurst float64
	// BatchWindow, when positive, coalesces same-class queries that
	// need a call-for-proposals within this window into ONE batched CFP
	// per node (the negotiate request's additive batch field): the
	// first arrival leads the window, later arrivals ride it, and every
	// query still receives its own per-node proposal. Zero (default)
	// negotiates every query individually, the pre-batching behavior.
	BatchWindow time.Duration
	// BatchLimit caps how many queries one window coalesces (default
	// 16); a full window seals and fans out immediately.
	BatchLimit int
	// BidCacheTTL, when positive, enables the winning-bid cache: each
	// negotiation round's ranked proposals are cached per query class,
	// stamped with every bidder's gossiped market epoch, and follow-up
	// queries of the class are admitted straight to execute while the
	// stamp holds. The entry dies on epoch bump, membership change, a
	// typed refusal (overload/expired/draining), or this TTL — whichever
	// comes first. Set it to the federation's market period: the paper
	// prices per period, so a winning bid is valid for at most one
	// epoch. Zero (default) disables the cache.
	BidCacheTTL time.Duration
	// NoShardProbe disables per-class shard probing. By default the
	// client tests each member's gossiped relation filter against the
	// query's referenced relations and skips the CFP fan-out to nodes
	// provably unable to evaluate it — the sim-side FeasibleNodes index
	// lifted into the live client. Members without a filter (old nodes,
	// static views that never refreshed) are always probed, so the
	// default is safe in mixed fleets.
	NoShardProbe bool
	// FrameV selects the binary fetch-frame version advertised on fetch
	// requests: 0 (the default) advertises the newest this build speaks
	// (frameV1), -1 disables frames so fetch replies stay JSON (the
	// pre-frame wire, for rollback and benchmarks). After validation the
	// field holds the wire value.
	FrameV int
	// FetchEnc selects the JSON fetch-row encoding advertised: 0 (the
	// default) the newest (encCompact), -1 the v0 tagged encoding.
	// Frames bypass it; it governs JSON fetch replies (old servers, or
	// FrameV -1). After validation the field holds the wire value.
	FetchEnc int
	// FetchBatchRows asks servers to bound streamed fetch batches to
	// this many rows (servers clamp to their own FetchBatchRows config).
	// Zero accepts the server default.
	FetchBatchRows int
}

func (c *ClientConfig) validate() error {
	if len(c.Addrs) == 0 {
		return errors.New("cluster: no server addresses")
	}
	if c.Mechanism == "" {
		c.Mechanism = MechGreedy
	}
	if c.PeriodMs <= 0 {
		c.PeriodMs = 500
	}
	if c.MaxBackoffMs <= 0 {
		c.MaxBackoffMs = 8 * c.PeriodMs
	}
	if c.MaxBackoffMs < c.PeriodMs {
		return fmt.Errorf("cluster: MaxBackoffMs %d below PeriodMs %d", c.MaxBackoffMs, c.PeriodMs)
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 40
	}
	if c.Timeout <= 0 {
		c.Timeout = 5 * time.Second
	}
	if c.ExecTimeoutFactor < 0 {
		return fmt.Errorf("cluster: ExecTimeoutFactor %d is negative", c.ExecTimeoutFactor)
	}
	if c.ExecTimeoutFactor == 0 {
		c.ExecTimeoutFactor = 20
	}
	if c.BreakerThreshold < 0 {
		return fmt.Errorf("cluster: BreakerThreshold %d is negative", c.BreakerThreshold)
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 2 * time.Second
	}
	switch c.Transport {
	case "":
		c.Transport = TransportPooled
	case TransportPooled, TransportFresh:
	default:
		return fmt.Errorf("cluster: unknown transport %q", c.Transport)
	}
	if c.PoolSize <= 0 {
		c.PoolSize = 2
	}
	if c.ViewRefresh < 0 {
		return fmt.Errorf("cluster: ViewRefresh %v is negative", c.ViewRefresh)
	}
	if c.Jitter == nil {
		c.Jitter = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	if c.QueryTimeout < 0 {
		return fmt.Errorf("cluster: QueryTimeout %v is negative", c.QueryTimeout)
	}
	if c.RunID == "" {
		c.RunID = fmt.Sprintf("r-%d-%d", time.Now().UnixNano(), runIDSeq.Add(1))
	}
	if c.ExecRetries <= 0 {
		c.ExecRetries = 2
	}
	if c.RetryBudget < 0 {
		return fmt.Errorf("cluster: RetryBudget %g is negative", c.RetryBudget)
	}
	if c.RetryBurst <= 0 {
		c.RetryBurst = 16
	}
	if c.BatchWindow < 0 {
		return fmt.Errorf("cluster: BatchWindow %v is negative", c.BatchWindow)
	}
	if c.BatchLimit <= 0 {
		c.BatchLimit = 16
	}
	if c.BidCacheTTL < 0 {
		return fmt.Errorf("cluster: BidCacheTTL %v is negative", c.BidCacheTTL)
	}
	switch {
	case c.FrameV == 0 || c.FrameV > frameV1:
		c.FrameV = frameV1
	case c.FrameV < 0:
		c.FrameV = 0 // frames disabled: the field stays off the wire
	}
	switch {
	case c.FetchEnc == 0 || c.FetchEnc > encCompact:
		c.FetchEnc = encCompact
	case c.FetchEnc < 0:
		c.FetchEnc = encTagged
	}
	if c.FetchBatchRows < 0 {
		return fmt.Errorf("cluster: FetchBatchRows %d is negative", c.FetchBatchRows)
	}
	return nil
}

// runIDSeq disambiguates derived run ids minted in one process.
var runIDSeq atomic.Uint64

// execTimeout is the budget for an execution RPC.
func (c *ClientConfig) execTimeout() time.Duration {
	return time.Duration(c.ExecTimeoutFactor) * c.Timeout
}

// nodeState is everything the client keeps per federation member:
// identity, circuit breaker, pooled transport, latency histograms. The
// state is keyed (and carried) by stable node ID, not slice position,
// so it survives membership churn — a node keeps its breaker history
// and histograms across view refreshes, and error messages stay
// attributable.
type nodeState struct {
	breaker *breaker

	// mu guards the identity fields below. A node enters the view
	// provisionally keyed by its seed address; the first reply's
	// NodeID stamp resolves the real ID and re-keys the entry, state
	// intact.
	mu          sync.Mutex
	id          string
	addr        string
	resolved    bool
	state       string // last gossiped membership state; "seed" until learned
	incarnation uint64
	epoch       uint64
	catalog     string
	// driver is the member's gossiped storage-executor name ("" until
	// a view refresh carries one).
	driver string
	// filter is the member's parsed relation filter (nil until a view
	// refresh carries one; nil means "probe for everything"), and
	// filterEnc the advertised encoding it was parsed from.
	filter    *catalog.RelationFilter
	filterEnc string
	// noBatch records that this node answered a batched CFP without a
	// batch reply: it predates the negotiate batch field, so coalesced
	// windows stop offering it batches and negotiate per query instead.
	noBatch bool

	// transport is the two-lane pooled transport (nil under
	// TransportFresh). Guarded by mu because a member can move to a
	// new address across a restart.
	transport *nodeTransport

	// Per-op RPC latency histograms, populated lazily.
	latMu sync.Mutex
	lat   map[string]*metrics.Histogram
}

// nodeID returns the node's current (possibly provisional) ID.
func (ns *nodeState) nodeID() string {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	return ns.id
}

// address returns the node's current dial address.
func (ns *nodeState) address() string {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	return ns.addr
}

// label names the node for error messages: stable ID plus address once
// resolved, bare address before the first exchange.
func (ns *nodeState) label() string {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	if ns.resolved && ns.id != ns.addr {
		return fmt.Sprintf("node %s (%s)", ns.id, ns.addr)
	}
	return fmt.Sprintf("node %s", ns.addr)
}

// observe records one successful RPC's latency.
func (ns *nodeState) observe(op string, ms float64) {
	ns.latMu.Lock()
	h := ns.lat[op]
	if h == nil {
		h = metrics.NewHistogram()
		ns.lat[op] = h
	}
	ns.latMu.Unlock()
	h.Observe(ms)
}

// Client negotiates and dispatches queries against the federation.
type Client struct {
	cfg    ClientConfig
	health *metrics.Health

	// view is the membership view, keyed by stable node ID (seed
	// address until the node's first reply resolves it). removedInc
	// remembers the incarnation at which a member was pruned, so a
	// slower peer's stale table cannot resurrect it. retired holds
	// transports of pruned members until Close — in-flight RPCs on
	// them finish or fail on their own.
	viewMu     sync.RWMutex
	view       map[string]*nodeState
	removedInc map[string]uint64
	retired    []*nodeTransport

	// jitterMu serializes the backoff RNG (rand.Rand is not
	// concurrency-safe and concurrent Runs may back off together).
	jitterMu sync.Mutex

	// retry is the client-wide retry token bucket; nil when RetryBudget
	// is zero (unlimited retries, the pre-protection behavior).
	retry *tokenBucket

	// bids is the winning-bid cache (nil with BidCacheTTL zero) and
	// batches the per-class CFP coalescer (nil with BatchWindow zero).
	bids    *bidCache
	batches *negotiator

	// rpcMu guards rpcCounts, the per-op count of RPC attempts (sent or
	// failed), the numerator of the amortization metric qaload reports.
	rpcMu     sync.Mutex
	rpcCounts map[string]int64

	// wire tallies bytes on every client-owned connection (pooled and
	// fresh), the denominator-free raw wire cost qaload's per-encoding
	// bytes_per_query report divides down.
	wire *wireCounter

	stopRefresh chan struct{}
	refreshWG   sync.WaitGroup
	closeOnce   sync.Once
}

// NewClient builds a client. Under the default pooled transport the
// client owns persistent connections; call Close when done with it.
func NewClient(cfg ClientConfig) (*Client, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	c := &Client{
		cfg:         cfg,
		health:      metrics.NewHealth(),
		view:        make(map[string]*nodeState, len(cfg.Addrs)),
		removedInc:  make(map[string]uint64),
		rpcCounts:   make(map[string]int64),
		wire:        &wireCounter{},
		stopRefresh: make(chan struct{}),
	}
	if cfg.RetryBudget > 0 {
		c.retry = newTokenBucket(cfg.RetryBudget, cfg.RetryBurst)
	}
	if cfg.BidCacheTTL > 0 {
		c.bids = newBidCache(cfg.BidCacheTTL, nil)
	}
	if cfg.BatchWindow > 0 {
		c.batches = newNegotiator(c)
	}
	for _, addr := range cfg.Addrs {
		if _, dup := c.view[addr]; dup {
			continue
		}
		c.view[addr] = c.newNodeState(addr, addr, false)
	}
	if cfg.ViewRefresh > 0 {
		c.refreshWG.Add(1)
		go c.refreshLoop()
	}
	return c, nil
}

// newNodeState builds the per-member state (breaker, transport,
// histograms) for a node entering the view.
func (c *Client) newNodeState(id, addr string, resolved bool) *nodeState {
	ns := &nodeState{
		breaker:  newBreaker(c.cfg.BreakerThreshold, c.cfg.BreakerCooldown, c.noteTransition),
		id:       id,
		addr:     addr,
		resolved: resolved,
		state:    "seed",
		lat:      make(map[string]*metrics.Histogram),
	}
	if c.cfg.Transport == TransportPooled {
		ns.transport = newNodeTransport(addr, c.cfg.PoolSize, c.wire)
	}
	return ns
}

// WireBytes reports the total bytes read and written on the client's
// connections (pooled and per-RPC fresh dials alike) since creation.
func (c *Client) WireBytes() (in, out int64) {
	return c.wire.in.Load(), c.wire.out.Load()
}

// Close stops the view refresher and shuts the client's pooled
// connections down. Safe to call more than once, and a no-op for
// transports under TransportFresh.
func (c *Client) Close() {
	c.closeOnce.Do(func() {
		close(c.stopRefresh)
		c.refreshWG.Wait()
		c.viewMu.Lock()
		transports := c.retired
		c.retired = nil
		for _, ns := range c.view {
			ns.mu.Lock()
			if ns.transport != nil {
				transports = append(transports, ns.transport)
			}
			ns.mu.Unlock()
		}
		c.viewMu.Unlock()
		for _, nt := range transports {
			nt.close()
		}
	})
}

// nodes snapshots the current view, sorted by ID so fan-outs and
// aggregated errors are deterministically ordered.
func (c *Client) nodes() []*nodeState {
	c.viewMu.RLock()
	out := make([]*nodeState, 0, len(c.view))
	for _, ns := range c.view {
		out = append(out, ns)
	}
	c.viewMu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].nodeID() < out[j].nodeID() })
	return out
}

// lookup finds a view member by node ID or address.
func (c *Client) lookup(key string) *nodeState {
	c.viewMu.RLock()
	defer c.viewMu.RUnlock()
	if ns, ok := c.view[key]; ok {
		return ns
	}
	for _, ns := range c.view {
		ns.mu.Lock()
		hit := ns.addr == key || ns.id == key
		ns.mu.Unlock()
		if hit {
			return ns
		}
	}
	return nil
}

// learnID re-keys a provisionally addressed member under the stable
// node ID its reply carried. The nodeState pointer (breaker, pools,
// histograms) is preserved; only the map key and label change.
func (c *Client) learnID(ns *nodeState, id string) {
	ns.mu.Lock()
	already := ns.resolved && ns.id == id
	ns.mu.Unlock()
	if already || id == "" {
		return
	}
	c.viewMu.Lock()
	defer c.viewMu.Unlock()
	ns.mu.Lock()
	old := ns.id
	ns.id = id
	ns.resolved = true
	ns.mu.Unlock()
	if other, ok := c.view[id]; ok && other != ns {
		// Two seed addresses resolved to the same node: keep the entry
		// that answered, retire the duplicate's transport.
		other.mu.Lock()
		if other.transport != nil {
			c.retired = append(c.retired, other.transport)
			other.transport = nil
		}
		other.mu.Unlock()
	}
	if c.view[old] == ns {
		delete(c.view, old)
	}
	c.view[id] = ns
}

// noteTransition feeds breaker state changes into the health counters.
func (c *Client) noteTransition(_, to breakerState) {
	switch to {
	case breakerOpen:
		c.health.Inc(metrics.BreakerOpenTotal)
	case breakerHalfOpen:
		c.health.Inc(metrics.BreakerHalfOpenTotal)
	case breakerClosed:
		c.health.Inc(metrics.BreakerCloseTotal)
	}
}

// Health snapshots the client's failure-domain counters: breaker
// transitions, retry rounds, accumulated backoff.
func (c *Client) Health() map[string]float64 { return c.health.Snapshot() }

// Outcome reports one query's journey through the federation.
type Outcome struct {
	QueryID   int64
	Node      string  // stable ID of the executing node ("" when none)
	NodeAddr  string  // its address at execution time
	AssignMs  float64 // negotiation time (the paper's "time to assign")
	TotalMs   float64 // assignment + queueing + execution
	ExecMs    float64 // server-side execution time
	Rows      int     // result cardinality
	Retries   int     // resubmission rounds
	Err       error   // terminal failure, if any
	Submitted time.Time
}

// errBreakerOpen marks a node skipped because its circuit is open: the
// client never touched the network for it this round.
var errBreakerOpen = errors.New("breaker open")

// errDraining marks a node that answered with a typed draining reply.
var errDraining = errors.New("draining")

// Typed terminal errors callers classify with errors.Is: load tools
// separate shed work (refusals, deadlines) from real failures.
var (
	// ErrOverloaded reports a query shed because every offering node
	// answered a typed overload refusal until the retry limit.
	ErrOverloaded = errors.New("overloaded")
	// ErrExpired reports a query whose deadline ran out — client-side,
	// or shed by servers with typed expired refusals.
	ErrExpired = errors.New("deadline exceeded")
	// ErrRetryBudget reports a query abandoned because the client-wide
	// retry token bucket ran dry.
	ErrRetryBudget = errors.New("retry budget exhausted")
	// ErrOutcomeUnknown reports an execute whose reply was lost under
	// AtMostOnce after the retransmit limit: the query may or may not
	// have run; the client refuses to risk a double execution.
	ErrOutcomeUnknown = errors.New("execute outcome unknown")
)

// errNotSent wraps transport failures that happened before the request
// could reach the node (dial refused, pool closed): the query certainly
// did not run there, so failing over to another node is always safe.
var errNotSent = errors.New("request not sent")

// tokenBucket is the client-wide retry budget: `rate` tokens per second
// refill up to `burst`; every retry round, runner-up failover, and
// retransmit takes one token. Time-based rather than count-based so a
// long run earns back its budget while a retry storm cannot.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

func newTokenBucket(rate, burst float64) *tokenBucket {
	return &tokenBucket{rate: rate, burst: burst, tokens: burst, last: time.Now()}
}

// take consumes one token, reporting false when the bucket is dry.
func (tb *tokenBucket) take() bool {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	now := time.Now()
	tb.tokens += now.Sub(tb.last).Seconds() * tb.rate
	if tb.tokens > tb.burst {
		tb.tokens = tb.burst
	}
	tb.last = now
	if tb.tokens < 1 {
		return false
	}
	tb.tokens--
	return true
}

// takeRetryToken charges one retry against the budget (always allowed
// with the budget disabled).
func (c *Client) takeRetryToken() bool {
	if c.retry == nil {
		return true
	}
	if c.retry.take() {
		return true
	}
	c.health.Inc(metrics.RetryBudgetExhaustedTotal)
	return false
}

// attemptKind classifies one execute/fetch attempt for the retry and
// failover logic.
type attemptKind int

const (
	// attemptOK: a well-formed reply arrived (the query ran, or the
	// supply race was lost — the caller inspects Accepted).
	attemptOK attemptKind = iota
	// attemptFatal: a terminal engine/protocol error; retrying cannot
	// help.
	attemptFatal
	// attemptRefused: a typed refusal (overload/expired/draining) or a
	// hard-stop interruption. The query did not run; another candidate
	// may be tried immediately and the breaker saw a live node.
	attemptRefused
	// attemptNotSent: the request never reached the node (dial failed);
	// trying the next candidate is always safe.
	attemptNotSent
	// attemptLost: the request was sent but the reply never arrived —
	// the query may or may not have executed.
	attemptLost
)

// startSpan opens a client-side span when tracing is on; nil otherwise
// (a nil *trace.Active no-ops everywhere).
func (c *Client) startSpan(traceID int64, parent, name string) *trace.Active {
	if c.cfg.Tracer == nil {
		return nil
	}
	return c.cfg.Tracer.Start(traceID, parent, name)
}

// childCtx derives the wire trace context requests under sp should
// carry. With tracing off locally (sp == nil) the caller's context is
// forwarded unchanged, so a relay without its own recorder still links
// server spans into the trace.
func childCtx(tc *traceCtx, sp *trace.Active) *traceCtx {
	if tc == nil || sp == nil {
		return tc
	}
	return &traceCtx{V: traceV, ID: tc.ID, Span: sp.ID()}
}

// Run evaluates one query: negotiate with every node in the live view
// (waiting for all replies, as the paper's implementation did), send it
// to the best offer, and return the outcome. Refusals and transient
// transport failures are retried with capped exponential backoff up to
// MaxRetries; per-node circuit breakers keep dead nodes from charging
// a timeout on every round. When the winning bidder fails without
// having run the query, the runner-up from the same proposal round is
// tried before paying a full renegotiation fan-out; every retry round,
// failover, and retransmit is charged against the retry budget.
func (c *Client) Run(queryID int64, sql string) Outcome {
	start := time.Now()
	var deadline time.Time
	if c.cfg.QueryTimeout > 0 {
		deadline = start.Add(c.cfg.QueryTimeout)
	}
	out := Outcome{QueryID: queryID, Submitted: start}
	root := c.startSpan(queryID, "", "run")
	tc := childCtx(&traceCtx{V: traceV, ID: queryID}, root)
	if root == nil {
		tc = nil // tracing off: requests stay id-less on the wire
	}
	finish := func(err error) Outcome {
		out.Err = err
		out.TotalMs = float64(time.Since(start)) / float64(time.Millisecond)
		if err != nil {
			root.Annotate("error: %v", err)
		} else {
			root.Annotate("node=%s retries=%d", out.Node, out.Retries)
		}
		root.Finish()
		return out
	}
	noteRetry := func() bool {
		out.Retries++
		c.health.Inc(metrics.RetriesTotal)
		return c.takeRetryToken()
	}
	budgetErr := func() error {
		return fmt.Errorf("cluster: query %d: %w", queryID, ErrRetryBudget)
	}
	// class is the query's market class, the key of both the winning-bid
	// cache and the CFP coalescing windows ("" with both disabled).
	var class string
	if c.bids != nil || c.batches != nil {
		class = classKey(sql)
	}
	// unreachableRounds counts consecutive rounds where no node answered
	// at all; it drives the exponential backoff and resets the moment
	// the federation responds. Market refusals keep the paper's
	// resubmit-next-period cadence (a jittered single period) so the
	// QA-NT price dynamics are untouched by the resilience layer.
	unreachableRounds := 0
	for attempt := 0; ; attempt++ {
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			return finish(fmt.Errorf("cluster: query %d: %w after %d rounds", queryID, ErrExpired, attempt))
		}
		// Cached admission: a still-valid ladder for the class skips the
		// negotiate fan-out entirely — execute burns supply on its own, so
		// the market stays consistent; a lost supply race below drops the
		// entry and renegotiates.
		var (
			pr        proposals
			err       error
			fromCache = false
		)
		if ranked := c.cachedLadder(class); ranked != nil {
			pr, fromCache = proposals{ranked: ranked}, true
			root.Annotate("bid cache hit (%d candidates)", len(ranked))
		} else {
			var assignDur time.Duration
			if c.batches != nil {
				pr, assignDur, err = c.batches.negotiate(queryID, sql, class, tc, deadline)
			} else {
				pr, assignDur, err = c.negotiateAll(sql, tc, deadline)
			}
			out.AssignMs += float64(assignDur) / float64(time.Millisecond)
			if err == nil && c.bids != nil && len(pr.ranked) > 0 {
				c.bids.put(class, pr.ranked)
			}
		}
		if err != nil {
			if errors.Is(err, ErrTooLarge) {
				// The request itself exceeds the wire limit; no amount of
				// retrying changes its size.
				return finish(fmt.Errorf("cluster: query %d: %w", queryID, err))
			}
			// Whole federation unreachable this round: transient until
			// proven otherwise (a partition heals, a breaker re-probes).
			if attempt >= c.cfg.MaxRetries {
				return finish(fmt.Errorf("cluster: query %d after %d rounds: %w", queryID, attempt+1, err))
			}
			if !noteRetry() {
				return finish(budgetErr())
			}
			c.sleepBackoff(unreachableRounds, deadline)
			unreachableRounds++
			continue
		}
		unreachableRounds = 0
		if len(pr.ranked) == 0 {
			// Nobody offered: resubmit next period (Section 3.3 client
			// protocol). Typed refusals flavor the terminal error so shed
			// work is distinguishable from starvation.
			if attempt >= c.cfg.MaxRetries {
				if re := pr.refusalError(); re != nil {
					return finish(fmt.Errorf("cluster: query %d refused by all nodes after %d rounds: %w", queryID, attempt, re))
				}
				return finish(fmt.Errorf("cluster: query %d refused by all nodes after %d rounds", queryID, attempt))
			}
			if !noteRetry() {
				return finish(budgetErr())
			}
			c.sleepBackoff(0, deadline)
			continue
		}
		// Failover ladder: the winner first, then the runner-ups from the
		// same still-fresh proposal round. Each step past the winner is a
		// failover, charged one retry token.
		var (
			win         *executeReply
			winner      *nodeState
			terminal    error
			renegotiate bool
		)
	ladder:
		for ci, cand := range pr.ranked {
			if ci > 0 {
				if !c.takeRetryToken() {
					terminal = budgetErr()
					break
				}
				c.health.Inc(metrics.FailoversTotal)
			}
			rep, kind, err := c.execAttempt(cand, queryID, sql, tc, deadline, noteRetry)
			switch kind {
			case attemptOK:
				if !rep.Accepted {
					// Lost the race for the last supply unit; this round's
					// other offers may be stale too, so renegotiate (and
					// drop the cached ladder they came from or fed).
					c.dropBids(class)
					renegotiate = true
					break ladder
				}
				win, winner = rep, cand
				break ladder
			case attemptFatal:
				if fromCache {
					// A fatal answer to a cache-admitted query (e.g. the
					// node dropped the relation since it bid) impeaches the
					// cache, not the query: renegotiate it at the market
					// rather than failing it.
					c.dropBids(class)
					renegotiate = true
					break ladder
				}
				terminal = err
				break ladder
			case attemptRefused, attemptNotSent:
				// The query did not run on this candidate; the runner-up
				// is safe to try immediately. A typed refusal also says
				// the market moved since the class's proposals were
				// ranked, so the cached ladder (if any) is stale.
				if kind == attemptRefused {
					c.dropBids(class)
				}
				continue
			case attemptLost:
				if c.cfg.AtMostOnce {
					// Retransmits (inside execAttempt) did not resolve it:
					// the outcome is unknown and running it elsewhere could
					// execute it twice.
					terminal = err
					break ladder
				}
				// Legacy availability-first semantics: assume the query did
				// not run and renegotiate it elsewhere. It may have — only
				// the same-node dedup window can tell, and we are leaving
				// the node.
				renegotiate = true
				break ladder
			}
		}
		switch {
		case win != nil:
			out.Node = winner.nodeID()
			out.NodeAddr = winner.address()
			out.ExecMs = win.ExecMs
			out.Rows = win.Rows
			return finish(nil)
		case terminal != nil:
			return finish(terminal)
		}
		if fromCache && !renegotiate {
			// A cached ladder that produced no winner says nothing about
			// the live market — the cache was stale, the market was never
			// asked. Drop the entry and renegotiate immediately instead of
			// sleeping out a market period we never saw refuse us.
			c.dropBids(class)
			renegotiate = true
		}
		// Ladder exhausted (every candidate refused or unreachable) or a
		// renegotiation was requested: back to the market.
		if attempt >= c.cfg.MaxRetries {
			return finish(fmt.Errorf("cluster: query %d starved after %d rounds", queryID, attempt))
		}
		if !noteRetry() {
			return finish(budgetErr())
		}
		if !renegotiate {
			// All candidates refused: wait out the market period like any
			// other refusal round.
			c.sleepBackoff(0, deadline)
		}
	}
}

// execAttempt runs one execute attempt against a candidate plus, under
// AtMostOnce, the same-node retransmits a lost reply gets: the node's
// dedup window replays the original outcome if the query ran. A
// returned attemptLost therefore means "outcome unknown" when
// AtMostOnce is on. A refused or unsent retransmit does NOT prove the
// original never ran (the admission gate answers before the dedup
// window), so those keep retransmitting rather than failing over.
func (c *Client) execAttempt(ns *nodeState, queryID int64, sql string, tc *traceCtx, deadline time.Time, noteRetry func() bool) (*executeReply, attemptKind, error) {
	rep, kind, err := c.executeOn(ns, queryID, sql, tc, deadline)
	if kind != attemptLost || !c.cfg.AtMostOnce {
		return rep, kind, err
	}
	for r := 0; r < c.cfg.ExecRetries; r++ {
		if !noteRetry() {
			return nil, attemptFatal, fmt.Errorf("cluster: %w with execute outcome unknown on %s", ErrRetryBudget, ns.label())
		}
		rep, kind, err = c.executeOn(ns, queryID, sql, tc, deadline)
		if kind == attemptOK || kind == attemptFatal {
			return rep, kind, err
		}
	}
	return nil, attemptLost, fmt.Errorf("cluster: %w on %s: %v", ErrOutcomeUnknown, ns.label(), err)
}

// sleepBackoff waits the capped exponential backoff for the given retry
// round: PeriodMs doubled per round, capped at MaxBackoffMs, jittered
// into [1/2, 1] of the target so synchronized clients desynchronize.
// With a deadline set the sleep is clipped to the remaining budget —
// sleeping past the deadline would just discover the expiry later.
func (c *Client) sleepBackoff(round int, deadline time.Time) {
	d := c.backoffDelay(round)
	if !deadline.IsZero() {
		if rem := time.Until(deadline); rem < d {
			d = rem
		}
	}
	if d <= 0 {
		return
	}
	c.health.Add(metrics.BackoffMsTotal, int64(d/time.Millisecond))
	time.Sleep(d)
}

func (c *Client) backoffDelay(round int) time.Duration {
	base := float64(c.cfg.PeriodMs)
	ceil := float64(c.cfg.MaxBackoffMs)
	target := base * math.Pow(2, float64(round))
	if target > ceil || math.IsInf(target, 1) {
		target = ceil
	}
	c.jitterMu.Lock()
	jitter := 0.5 + 0.5*c.cfg.Jitter.Float64()
	c.jitterMu.Unlock()
	return time.Duration(target * jitter * float64(time.Millisecond))
}

// proposals is one negotiation round's outcome: the offering nodes
// ranked by earliest estimated completion (winner first, runner-up
// next — the failover ladder), plus counts of the typed refusals seen.
// A typed overload/expired refusal came from a live, answering node, so
// it counts as reachable without producing a candidate.
type proposals struct {
	ranked    []*nodeState
	overloads int
	expireds  int
}

// best returns the winning bidder (nil when nobody offered).
func (p proposals) best() *nodeState {
	if len(p.ranked) == 0 {
		return nil
	}
	return p.ranked[0]
}

// refusalError maps a round's typed refusals onto the client's typed
// terminal errors, nil when the round saw none.
func (p proposals) refusalError() error {
	switch {
	case p.overloads > 0:
		return ErrOverloaded
	case p.expireds > 0:
		return ErrExpired
	}
	return nil
}

// remainingMs converts an absolute deadline into the relative budget a
// request carries on the wire. A set-but-already-passed deadline
// travels as 1ms — still shed server-side — rather than 0, which would
// mean "no deadline".
func remainingMs(deadline time.Time) int64 {
	if deadline.IsZero() {
		return 0
	}
	rem := time.Until(deadline)
	if rem < time.Millisecond {
		return 1
	}
	return int64(rem / time.Millisecond)
}

// negOutcome is one node's answer to a call-for-proposals for one
// query: an offer (rep), a typed refusal, or a failure. The batched
// path produces a grid of these (one per query per node); the unbatched
// path one row.
type negOutcome struct {
	rep     negotiateReply
	hasRep  bool
	refusal string // CodeOverload or CodeExpired
	err     error
}

// classifyNegotiate folds one negotiate answer — a top-level reply or a
// batched sub-proposal, whose (neg, code, errText) triples are shaped
// identically — into a negOutcome, driving the node's breaker exactly
// like the pre-batching path did. Transport failures never reach here;
// the caller records those (with a breaker failure) directly.
func (c *Client) classifyNegotiate(ns *nodeState, neg *negotiateReply, code, errText string) negOutcome {
	switch {
	case code == CodeDraining:
		// The node told us it is going away: open its circuit now
		// instead of discovering the death one timeout at a time,
		// and — under a dynamic view — prune its supply from the
		// market ahead of gossip eviction.
		ns.breaker.trip()
		c.noteDraining(ns)
		return negOutcome{err: errDraining}
	case code == CodeOverload, code == CodeExpired:
		// A market refusal from a live node: no offer this round,
		// but emphatically not a failure — the breaker must stay
		// closed so the node is renegotiated next period.
		ns.breaker.success()
		return negOutcome{refusal: code}
	case errText != "":
		ns.breaker.success()
		return negOutcome{err: errors.New(errText)}
	default:
		ns.breaker.success()
		out := negOutcome{hasRep: neg != nil}
		if neg != nil {
			out.rep = *neg
		}
		return out
	}
}

// rankOffers turns one query's per-node outcomes into the ranked
// proposal ladder (earliest estimated completion first) plus refusal
// counts, reporting whether any node was reachable at all — typed
// refusals count as reachable.
func rankOffers(members []*nodeState, outs []negOutcome) (proposals, bool) {
	var pr proposals
	type scored struct {
		ns     *nodeState
		finish float64
	}
	var offers []scored
	reachable := false
	for i, o := range outs {
		switch {
		case o.refusal == CodeOverload:
			reachable = true
			pr.overloads++
			continue
		case o.refusal == CodeExpired:
			reachable = true
			pr.expireds++
			continue
		case o.err != nil:
			continue
		}
		reachable = true
		if !o.hasRep || !o.rep.Feasible || !o.rep.Offer {
			continue
		}
		offers = append(offers, scored{members[i], o.rep.QueueMs + o.rep.EstimateMs})
	}
	sort.SliceStable(offers, func(i, j int) bool { return offers[i].finish < offers[j].finish })
	for _, o := range offers {
		pr.ranked = append(pr.ranked, o.ns)
	}
	return pr, reachable
}

// outcomeErrors projects the per-node errors out of one query's round.
func outcomeErrors(outs []negOutcome) []error {
	errs := make([]error, len(outs))
	for i, o := range outs {
		errs[i] = o.err
	}
	return errs
}

// negotiateAll broadcasts the call-for-proposals to the current probe
// set (the live view, shard-trimmed by the query's relations) and ranks
// the offering nodes by estimated completion. It returns an aggregate
// error naming every node's failure when none is reachable; typed
// overload/expired refusals count as reachable.
func (c *Client) negotiateAll(sql string, tc *traceCtx, deadline time.Time) (proposals, time.Duration, error) {
	start := time.Now()
	var sp *trace.Active
	if tc != nil {
		sp = c.startSpan(tc.ID, tc.Span, "negotiate")
		defer sp.Finish()
		tc = childCtx(tc, sp)
	}
	members := c.probeSet(sql)
	if len(members) == 0 {
		return proposals{}, 0, errors.New("cluster: membership view is empty")
	}
	outs := make([]negOutcome, len(members))
	var wg sync.WaitGroup
	for i, ns := range members {
		if !ns.breaker.allow() {
			outs[i] = negOutcome{err: errBreakerOpen}
			continue
		}
		wg.Add(1)
		go func(i int, ns *nodeState) {
			defer wg.Done()
			var rep reply
			err := c.rpcOn(ns, &request{
				Op: "negotiate", SQL: sql, Mechanism: c.cfg.Mechanism, Trace: tc,
				DeadlineMs: remainingMs(deadline),
			}, &rep, c.cfg.Timeout)
			if err != nil {
				if !errors.Is(err, ErrTooLarge) {
					ns.breaker.failure()
				}
				outs[i] = negOutcome{err: err}
				return
			}
			outs[i] = c.classifyNegotiate(ns, rep.Negotiate, rep.Code, rep.Err)
		}(i, ns)
	}
	wg.Wait()
	elapsed := time.Since(start)
	pr, reachable := rankOffers(members, outs)
	if !reachable {
		sp.Annotate("no node reachable")
		agg := aggregateNodeErrors(members, outcomeErrors(outs))
		for _, o := range outs {
			if errors.Is(o.err, ErrTooLarge) {
				// An oversized request fails identically everywhere;
				// typing the aggregate lets Run fail fast instead of
				// burning its retry rounds on a hopeless resubmit.
				agg = fmt.Errorf("%w: %v", ErrTooLarge, agg)
				break
			}
		}
		return proposals{}, elapsed, agg
	}
	if best := pr.best(); best != nil {
		sp.Annotate("winner=%s of %d nodes (%d offers)", best.nodeID(), len(members), len(pr.ranked))
	} else {
		sp.Annotate("no offer from %d nodes (%d overloaded, %d expired)", len(members), pr.overloads, pr.expireds)
	}
	return pr, elapsed, nil
}

// noteDraining reacts to a typed draining reply. Under a dynamic view
// the member is pruned immediately — a graceful leave removes supply
// from the market before suspicion could; the membership refresh would
// only rediscover the tombstone later. A static view keeps the entry
// (its breaker is already open) so a node restarting on the same
// address is found again by the breaker's probe.
func (c *Client) noteDraining(ns *nodeState) {
	if c.cfg.ViewRefresh <= 0 {
		return
	}
	ns.mu.Lock()
	id, inc := ns.id, ns.incarnation
	ns.mu.Unlock()
	c.viewMu.Lock()
	defer c.viewMu.Unlock()
	c.pruneLocked(id, inc)
}

// pruneLocked removes a member from the view, remembering the
// incarnation so stale gossip cannot resurrect it. Callers hold viewMu.
func (c *Client) pruneLocked(id string, incarnation uint64) {
	ns, ok := c.view[id]
	if !ok {
		return
	}
	delete(c.view, id)
	if prev, ok := c.removedInc[id]; !ok || incarnation > prev {
		c.removedInc[id] = incarnation
	}
	ns.mu.Lock()
	if ns.transport != nil {
		c.retired = append(c.retired, ns.transport)
		ns.transport = nil
	}
	ns.mu.Unlock()
}

// aggregateNodeErrors folds per-node failures into one error naming
// every node by stable ID and address, so "no node reachable" stays
// diagnosable and correctly attributed across membership changes.
func aggregateNodeErrors(members []*nodeState, errs []error) error {
	parts := make([]string, 0, len(errs))
	for i, err := range errs {
		if err != nil {
			parts = append(parts, fmt.Sprintf("%s: %v", members[i].label(), err))
		}
	}
	return fmt.Errorf("no node reachable: %s", strings.Join(parts, "; "))
}

// executeOn dispatches the query to the chosen node and classifies the
// attempt: OK (reply in hand), a typed refusal (safe to try the next
// candidate, breaker untouched or tripped-by-type), a transport loss
// (the query may have run), a never-sent dial failure, or a fatal
// engine error.
func (c *Client) executeOn(ns *nodeState, queryID int64, sql string, tc *traceCtx, deadline time.Time) (*executeReply, attemptKind, error) {
	var sp *trace.Active
	if tc != nil {
		sp = c.startSpan(tc.ID, tc.Span, "execute")
		sp.Annotate("node=%s", ns.nodeID())
		defer sp.Finish()
		tc = childCtx(tc, sp)
	}
	var rep reply
	err := c.rpcOn(ns, &request{
		Op: "execute", SQL: sql, QueryID: queryID, Mechanism: c.cfg.Mechanism, Trace: tc,
		DeadlineMs: remainingMs(deadline), RunID: c.cfg.RunID,
	}, &rep, c.cfg.execTimeout())
	if err != nil {
		if errors.Is(err, ErrTooLarge) {
			// The message was refused pre-write for size; the node was
			// never even bothered. Terminal for the query, invisible to
			// the breaker.
			return nil, attemptFatal, fmt.Errorf("cluster: execute on %s: %w", ns.label(), err)
		}
		ns.breaker.failure()
		kind := attemptLost
		if errors.Is(err, errNotSent) {
			kind = attemptNotSent
		}
		return nil, kind, fmt.Errorf("cluster: execute on %s: %w", ns.label(), err)
	}
	switch rep.Code {
	case CodeDraining:
		ns.breaker.trip()
		c.noteDraining(ns)
		return nil, attemptRefused, fmt.Errorf("cluster: %s: %w", ns.label(), errDraining)
	case CodeOverload:
		ns.breaker.success()
		return nil, attemptRefused, fmt.Errorf("cluster: %s: %w", ns.label(), ErrOverloaded)
	case CodeExpired:
		ns.breaker.success()
		return nil, attemptRefused, fmt.Errorf("cluster: %s: %w", ns.label(), ErrExpired)
	case CodeTooLarge:
		// The node answered — healthy — but this message can never fit.
		ns.breaker.success()
		return nil, attemptFatal, fmt.Errorf("cluster: %s: %w", ns.label(), ErrTooLarge)
	}
	if rep.Err != "" {
		return nil, attemptFatal, errors.New(rep.Err)
	}
	if rep.Execute == nil {
		return nil, attemptFatal, errors.New("cluster: malformed execute reply")
	}
	if rep.Execute.Err == msgNodeStopping {
		ns.breaker.trip()
		return nil, attemptRefused, fmt.Errorf("cluster: %s: %s", ns.label(), msgNodeStopping)
	}
	if rep.Execute.Err != "" {
		return nil, attemptFatal, errors.New(rep.Execute.Err)
	}
	ns.breaker.success()
	return rep.Execute, attemptOK, nil
}

// rpc performs one request/reply exchange by address. Known view
// members ride their pooled transport; unknown addresses (and
// TransportFresh) fall back to a fresh dial per RPC.
func (c *Client) rpc(addr string, req *request, rep *reply, timeout time.Duration) error {
	if ns := c.lookup(addr); ns != nil {
		return c.rpcOn(ns, req, rep, timeout)
	}
	return freshRPCCounted(addr, req, rep, timeout, c.wire)
}

// freshRPC is the v0 transport: dial, one exchange, hang up. A dial
// failure is wrapped errNotSent: the request never reached the node,
// which the failover ladder uses to fail over without double-execution
// risk.
func freshRPC(addr string, req *request, rep *reply, timeout time.Duration) error {
	return freshRPCCounted(addr, req, rep, timeout, nil)
}

// freshRPCCounted is freshRPC with the connection's traffic tallied on
// wc (nil disables accounting — server-side gossip exchanges are not a
// client's wire cost).
func freshRPCCounted(addr string, req *request, rep *reply, timeout time.Duration, wc *wireCounter) error {
	conn, err := dial(addr, timeout)
	if err != nil {
		return fmt.Errorf("%w: %v", errNotSent, err)
	}
	defer conn.Close()
	if wc != nil {
		conn = &countedConn{Conn: conn, wc: wc}
	}
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		return err
	}
	w := bufio.NewWriter(conn)
	if err := writeMsg(w, req); err != nil {
		return err
	}
	return readMsg(bufio.NewReader(conn), rep)
}

// rpcOn performs one exchange with a view member, recording the
// latency of successful RPCs (failures are already counted by the
// breaker and retry metrics) in the member's per-op histogram, and
// resolving the member's stable ID from the reply's NodeID stamp.
func (c *Client) rpcOn(ns *nodeState, req *request, rep *reply, timeout time.Duration) error {
	start := time.Now()
	c.countRPC(req.Op)
	ns.mu.Lock()
	nt, addr := ns.transport, ns.addr
	ns.mu.Unlock()
	var err error
	if nt != nil {
		var mc *mconn
		if mc, err = nt.lane(req.Op).get(timeout); err != nil {
			// Pool get failures are dial-stage: the request was not sent.
			err = fmt.Errorf("%w: %v", errNotSent, err)
		} else {
			err = mc.call(req, rep, timeout)
		}
	} else {
		err = freshRPCCounted(addr, req, rep, timeout, c.wire)
	}
	if err == nil {
		ns.observe(req.Op, msSince(start))
		if rep.NodeID != "" {
			c.learnID(ns, rep.NodeID)
		}
	}
	return err
}

// countRPC tallies one RPC attempt under its op. Unlike the latency
// histograms (successful exchanges only), the counts include failures:
// they are the true wire cost the amortization work drives down.
func (c *Client) countRPC(op string) {
	c.rpcMu.Lock()
	c.rpcCounts[op]++
	c.rpcMu.Unlock()
}

// RPCCounts snapshots how many RPC attempts the client has made per op
// (negotiate/execute/fetch/members/...), failures included. Load tools
// divide by completed queries to report amortized RPCs per query.
func (c *Client) RPCCounts() map[string]int64 {
	c.rpcMu.Lock()
	defer c.rpcMu.Unlock()
	out := make(map[string]int64, len(c.rpcCounts))
	for op, n := range c.rpcCounts {
		out[op] = n
	}
	return out
}

// Latencies snapshots the client's RPC latency histograms, keyed by op
// then stable node ID.
func (c *Client) Latencies() map[string]map[string]metrics.HistSummary {
	out := make(map[string]map[string]metrics.HistSummary)
	for _, ns := range c.nodes() {
		id := ns.nodeID()
		ns.latMu.Lock()
		for op, h := range ns.lat {
			m := out[op]
			if m == nil {
				m = make(map[string]metrics.HistSummary)
				out[op] = m
			}
			m[id] = h.Summary()
		}
		ns.latMu.Unlock()
	}
	return out
}

// OpLatencies merges each op's per-node histograms into one summary.
func (c *Client) OpLatencies() map[string]metrics.HistSummary {
	merged := make(map[string]*metrics.Histogram)
	for _, ns := range c.nodes() {
		ns.latMu.Lock()
		for op, h := range ns.lat {
			m := merged[op]
			if m == nil {
				m = metrics.NewHistogram()
				merged[op] = m
			}
			m.Merge(h)
		}
		ns.latMu.Unlock()
	}
	out := make(map[string]metrics.HistSummary, len(merged))
	for op, h := range merged {
		out[op] = h.Summary()
	}
	return out
}

// Stats fetches one node's market counters, addressed by stable node
// ID or address. Stats is an out-of-band observability op, so it
// leaves the breaker's failure accounting alone — except for a typed
// draining reply, which trips the breaker exactly like it does on
// negotiate/execute/fetch (the node told us it is going away; there is
// no reason to keep paying timeouts to learn it again).
func (c *Client) Stats(node string) (*NodeStats, error) {
	ns := c.lookup(node)
	if ns == nil {
		return nil, fmt.Errorf("cluster: unknown node %q", node)
	}
	var rep reply
	if err := c.rpcOn(ns, &request{Op: "stats"}, &rep, c.cfg.Timeout); err != nil {
		return nil, err
	}
	if rep.Code == CodeDraining {
		ns.breaker.trip()
		return nil, fmt.Errorf("cluster: %s: %w", ns.label(), errDraining)
	}
	if rep.Err != "" {
		return nil, errors.New(rep.Err)
	}
	if rep.Stats == nil {
		return nil, errors.New("cluster: malformed stats reply")
	}
	return rep.Stats, nil
}

// TraceSpans assembles one trace's spans from across the federation:
// the client's own recorder plus every reachable node's span ring,
// collected via the "spans" op. Unreachable nodes (and old nodes that
// answer the unknown op with an error) are skipped — a lossy
// collection still renders, with orphaned spans becoming tree roots.
func (c *Client) TraceSpans(traceID int64) []trace.Span {
	members := c.nodes()
	collected := make([][]trace.Span, len(members))
	var wg sync.WaitGroup
	for i, ns := range members {
		wg.Add(1)
		go func(i int, ns *nodeState) {
			defer wg.Done()
			var rep reply
			if err := c.rpcOn(ns, &request{Op: "spans", QueryID: traceID}, &rep, c.cfg.Timeout); err != nil {
				return
			}
			if rep.Err == "" && rep.Spans != nil {
				collected[i] = rep.Spans.Spans
			}
		}(i, ns)
	}
	wg.Wait()
	out := c.cfg.Tracer.Spans(traceID)
	for _, spans := range collected {
		out = append(out, spans...)
	}
	return out
}

// fetchOn dispatches a fetch (execute + result shipping) to the chosen
// node and accumulates the whole result. Same attempt semantics as
// executeOn; the rows arrive as a binary frame stream when the server
// speaks frames and as one JSON reply otherwise, and either way the
// returned envelope carries them pre-decoded (fetchReply.rows).
func (c *Client) fetchOn(ns *nodeState, queryID int64, sql string, tc *traceCtx, deadline time.Time) (*fetchReply, attemptKind, error) {
	var rows []sqldb.Row
	sink := fetchSink{
		block: func(blk *ColBlock) error {
			var err error
			rows, err = blk.AppendRows(rows)
			return err
		},
		rows: func(_ []string, rs []sqldb.Row) error {
			rows = append(rows, rs...)
			return nil
		},
	}
	fr, _, kind, err := c.fetchAttempt(ns, queryID, sql, tc, deadline, 0, sink)
	if fr != nil {
		fr.streamed = true
		fr.decoded = rows
	}
	return fr, kind, err
}

// fetchBlocksOn is fetchOn's block-native sibling: one fetch attempt
// against the chosen node that delivers the result to onBlock batch by
// batch, never materializing rows. Streamed frames hand their decoded
// ColBlocks straight through; a JSON downgrade is bridged through one
// reusable block (FillFromRows), so the caller sees a single columnar
// interface regardless of the server's generation. The block's buffers
// are reused between calls — onBlock must copy out anything retained.
func (c *Client) fetchBlocksOn(ns *nodeState, queryID int64, sql string, tc *traceCtx, deadline time.Time, onBlock func(*ColBlock) error) (*fetchReply, attemptKind, error) {
	var bridge ColBlock
	sink := fetchSink{
		block: onBlock,
		rows: func(columns []string, rs []sqldb.Row) error {
			bridge.FillFromRows(columns, rs)
			if bridge.Rows == 0 {
				return nil
			}
			return onBlock(&bridge)
		},
	}
	fr, _, kind, err := c.fetchAttempt(ns, queryID, sql, tc, deadline, 0, sink)
	if fr != nil {
		fr.streamed = true
	}
	return fr, kind, err
}

// streamRPC is rpcOn's streamed-fetch sibling: the exchange ends either
// with frames fully consumed by onFrame (jsonReply=false) or a JSON
// envelope in rep. A streamed success carries no NodeID stamp, so
// passive ID learning only happens on the JSON path — harmless, since
// fetches target nodes the client already negotiated with.
func (c *Client) streamRPC(ns *nodeState, req *request, rep *reply, timeout time.Duration, onFrame func(typ byte, payload []byte) (bool, error)) (jsonReply bool, err error) {
	start := time.Now()
	c.countRPC(req.Op)
	ns.mu.Lock()
	nt, addr := ns.transport, ns.addr
	ns.mu.Unlock()
	if nt != nil {
		var mc *mconn
		if mc, err = nt.lane(req.Op).get(timeout); err != nil {
			err = fmt.Errorf("%w: %v", errNotSent, err)
		} else {
			jsonReply, err = mc.stream(req, rep, timeout, onFrame)
		}
	} else {
		jsonReply, err = freshStream(addr, req, rep, timeout, onFrame, c.wire)
	}
	if err == nil {
		ns.observe(req.Op, msSince(start))
		if jsonReply && rep.NodeID != "" {
			c.learnID(ns, rep.NodeID)
		}
	}
	return jsonReply, err
}

// fetchAttempt runs one fetch attempt against a candidate, delivering
// the result through sink however it arrives: streamed batch frames
// (sink.block, reusable ColBlocks) from a frame-speaking server, or a
// JSON reply decoded whole (sink.rows) from everyone older. skip drops
// that many leading rows before delivery — the resume path after a
// partial stream, where the server's dedup window replays the identical
// result. delivered counts rows handed to the sink this attempt; on
// attemptLost it may be nonzero (the stream died mid-result) and the
// caller decides between a same-node resume and a discard-and-restart.
func (c *Client) fetchAttempt(ns *nodeState, queryID int64, sql string, tc *traceCtx, deadline time.Time, skip int64, sink fetchSink) (fr *fetchReply, delivered int64, kind attemptKind, err error) {
	var sp *trace.Active
	if tc != nil {
		sp = c.startSpan(tc.ID, tc.Span, "fetch")
		sp.Annotate("node=%s", ns.nodeID())
		defer sp.Finish()
		tc = childCtx(tc, sp)
	}
	req := &request{
		Op: "fetch", SQL: sql, QueryID: queryID, Mechanism: c.cfg.Mechanism,
		Enc: c.cfg.FetchEnc, Frame: c.cfg.FrameV, FetchBatch: c.cfg.FetchBatchRows,
		Trace: tc, DeadlineMs: remainingMs(deadline), RunID: c.cfg.RunID,
	}
	var rep reply
	if c.cfg.FrameV >= frameV1 {
		fs := &fetchStream{sink: sink, skip: skip}
		jsonReply, serr := c.streamRPC(ns, req, &rep, c.cfg.execTimeout(), fs.onFrame)
		if serr != nil {
			switch {
			case errors.Is(serr, ErrTooLarge):
				return nil, fs.delivered, attemptFatal, fmt.Errorf("cluster: fetch on %s: %w", ns.label(), serr)
			case errors.Is(serr, errStreamAbort):
				// Our own sink refused the data; the node and transport
				// are fine.
				ns.breaker.success()
				return nil, fs.delivered, attemptFatal, fmt.Errorf("cluster: fetch on %s: %w", ns.label(), serr)
			case errors.Is(serr, errNotSent):
				ns.breaker.failure()
				return nil, 0, attemptNotSent, fmt.Errorf("cluster: fetch on %s: %w", ns.label(), serr)
			default:
				ns.breaker.failure()
				return nil, fs.delivered, attemptLost, fmt.Errorf("cluster: fetch on %s: %w", ns.label(), serr)
			}
		}
		if !jsonReply {
			// The stream completed through its end frame.
			switch fs.end.errMsg {
			case "":
				ns.breaker.success()
				return fs.envelope(), fs.delivered, attemptOK, nil
			case msgNodeStopping:
				// The stream was truncated by a shutdown: the delivered
				// prefix is incomplete, classified exactly like a JSON
				// node-stopping refusal.
				ns.breaker.trip()
				return nil, fs.delivered, attemptRefused, fmt.Errorf("cluster: %s: %s", ns.label(), msgNodeStopping)
			default:
				return nil, fs.delivered, attemptFatal, errors.New(fs.end.errMsg)
			}
		}
		// JSON downgrade: classify the envelope below, like any non-frame
		// exchange. The server never mixes frames and a JSON reply for
		// one request, so nothing was delivered yet.
	} else {
		if err := c.rpcOn(ns, req, &rep, c.cfg.execTimeout()); err != nil {
			if errors.Is(err, ErrTooLarge) {
				return nil, 0, attemptFatal, fmt.Errorf("cluster: fetch on %s: %w", ns.label(), err)
			}
			ns.breaker.failure()
			kind := attemptLost
			if errors.Is(err, errNotSent) {
				kind = attemptNotSent
			}
			return nil, 0, kind, fmt.Errorf("cluster: fetch on %s: %w", ns.label(), err)
		}
	}
	switch rep.Code {
	case CodeDraining:
		ns.breaker.trip()
		c.noteDraining(ns)
		return nil, 0, attemptRefused, fmt.Errorf("cluster: %s: %w", ns.label(), errDraining)
	case CodeOverload:
		ns.breaker.success()
		return nil, 0, attemptRefused, fmt.Errorf("cluster: %s: %w", ns.label(), ErrOverloaded)
	case CodeExpired:
		ns.breaker.success()
		return nil, 0, attemptRefused, fmt.Errorf("cluster: %s: %w", ns.label(), ErrExpired)
	case CodeTooLarge:
		// The result only fits on the frame lane and this exchange was
		// JSON: terminal for the query, healthy node.
		ns.breaker.success()
		return nil, 0, attemptFatal, fmt.Errorf("cluster: %s: %w", ns.label(), ErrTooLarge)
	}
	if rep.Err != "" {
		return nil, 0, attemptFatal, errors.New(rep.Err)
	}
	if rep.Fetch == nil {
		return nil, 0, attemptFatal, errors.New("cluster: malformed fetch reply")
	}
	if rep.Fetch.Err == msgNodeStopping {
		ns.breaker.trip()
		return nil, 0, attemptRefused, fmt.Errorf("cluster: %s: %s", ns.label(), msgNodeStopping)
	}
	if rep.Fetch.Err != "" {
		return nil, 0, attemptFatal, errors.New(rep.Fetch.Err)
	}
	ns.breaker.success()
	if !rep.Fetch.Accepted {
		// Supply race: no rows shipped; the caller renegotiates.
		return &fetchReply{streamed: true}, 0, attemptOK, nil
	}
	rows, derr := rep.Fetch.rows()
	if derr != nil {
		return nil, 0, attemptFatal, derr
	}
	if skip > 0 {
		if skip >= int64(len(rows)) {
			rows = nil
		} else {
			rows = rows[skip:]
		}
	}
	if len(rows) > 0 {
		if serr := sink.rows(rep.Fetch.Columns, rows); serr != nil {
			return nil, 0, attemptFatal, fmt.Errorf("%w: %v", errStreamAbort, serr)
		}
	}
	fr = &fetchReply{
		Accepted: true,
		Columns:  rep.Fetch.Columns,
		ExecMs:   rep.Fetch.ExecMs,
		streamed: true,
	}
	return fr, int64(len(rows)), attemptOK, nil
}

// Fetch runs one query through the market like Run, but ships the
// result back to the caller: negotiate with the federation, fetch from
// the best offer through the failover ladder, and accumulate the rows
// (streamed binary frames from new nodes, one JSON reply from old ones
// — the caller cannot tell which). For results too large to hold in
// memory, use FetchEach.
func (c *Client) Fetch(queryID int64, sql string) (*sqldb.Result, Outcome) {
	res := &sqldb.Result{}
	sink := fetchSink{
		block: func(blk *ColBlock) error {
			var err error
			res.Rows, err = blk.AppendRows(res.Rows)
			return err
		},
		rows: func(_ []string, rs []sqldb.Row) error {
			res.Rows = append(res.Rows, rs...)
			return nil
		},
	}
	// Accumulate mode owns the buffer, so a stream lost mid-result can
	// simply be discarded and refetched anywhere.
	reset := func() { res.Rows = res.Rows[:0] }
	out, columns := c.fetchLoop(queryID, sql, sink, reset)
	if out.Err != nil {
		return nil, out
	}
	res.Columns = columns
	out.Rows = len(res.Rows)
	return res, out
}

// FetchEach runs one query through the market and streams its result to
// fn in bounded batches: against a frame-speaking node the whole result
// is never resident on either side — memory stays O(FetchBatchRows).
// The ColBlock's buffers are reused between calls; fn must copy out
// anything it retains. A non-nil error from fn aborts the fetch and
// surfaces in the outcome.
//
// Delivery is exactly-once per row even across a connection lost mid-
// stream: rows already handed to fn cannot be taken back, so the client
// resumes only by retransmitting to the same node — whose dedup window
// replays the identical result — and skipping the delivered prefix. If
// that node stays unreachable the fetch fails rather than re-deliver.
func (c *Client) FetchEach(queryID int64, sql string, fn func(*ColBlock) error) Outcome {
	var bridge ColBlock
	sink := fetchSink{
		block: fn,
		rows: func(columns []string, rs []sqldb.Row) error {
			// JSON downgrade: the old node sent the result whole; present
			// it through the same batch interface.
			bridge.FillFromRows(columns, rs)
			if bridge.Rows == 0 {
				return nil
			}
			return fn(&bridge)
		},
	}
	out, _ := c.fetchLoop(queryID, sql, sink, nil)
	return out
}

// fetchLoop is the market loop under Fetch and FetchEach: negotiate,
// walk the failover ladder, resubmit next period on refusal — Run's
// shape, minus the bid/batch amortization layers (fetches ship results,
// so admission staleness costs bandwidth, not just a refused execute).
//
// reset distinguishes the two delivery modes. Non-nil (accumulate):
// rows delivered so far are client-owned, so a lost stream discards
// them and renegotiates anywhere — re-pulling a read-only fragment is
// wasteful but never incorrect. Nil (callback): delivered rows already
// escaped to the caller, so after partial delivery only the same node's
// dedup replay (skip=delivered) may continue the stream; resume
// retransmits up to ExecRetries, then the fetch is terminal.
func (c *Client) fetchLoop(queryID int64, sql string, sink fetchSink, reset func()) (Outcome, []string) {
	start := time.Now()
	var deadline time.Time
	if c.cfg.QueryTimeout > 0 {
		deadline = start.Add(c.cfg.QueryTimeout)
	}
	out := Outcome{QueryID: queryID, Submitted: start}
	root := c.startSpan(queryID, "", "fetch-run")
	tc := childCtx(&traceCtx{V: traceV, ID: queryID}, root)
	if root == nil {
		tc = nil
	}
	var columns []string
	finish := func(err error) (Outcome, []string) {
		out.Err = err
		out.TotalMs = msSince(start)
		if err != nil {
			root.Annotate("error: %v", err)
		} else {
			root.Annotate("node=%s rows=%d retries=%d", out.Node, out.Rows, out.Retries)
		}
		root.Finish()
		return out, columns
	}
	noteRetry := func() bool {
		out.Retries++
		c.health.Inc(metrics.RetriesTotal)
		return c.takeRetryToken()
	}
	budgetErr := func() error {
		return fmt.Errorf("cluster: query %d: %w", queryID, ErrRetryBudget)
	}
	// delivered counts rows handed to the sink across all attempts; it is
	// the resume offset for callback mode and the discard size for
	// accumulate mode.
	var delivered int64
	unreachableRounds := 0
	for attempt := 0; ; attempt++ {
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			return finish(fmt.Errorf("cluster: query %d: %w after %d rounds", queryID, ErrExpired, attempt))
		}
		pr, assignDur, err := c.negotiateAll(sql, tc, deadline)
		out.AssignMs += float64(assignDur) / float64(time.Millisecond)
		if err != nil {
			if errors.Is(err, ErrTooLarge) {
				return finish(fmt.Errorf("cluster: query %d: %w", queryID, err))
			}
			if attempt >= c.cfg.MaxRetries {
				return finish(fmt.Errorf("cluster: query %d after %d rounds: %w", queryID, attempt+1, err))
			}
			if !noteRetry() {
				return finish(budgetErr())
			}
			c.sleepBackoff(unreachableRounds, deadline)
			unreachableRounds++
			continue
		}
		unreachableRounds = 0
		if len(pr.ranked) == 0 {
			if attempt >= c.cfg.MaxRetries {
				if re := pr.refusalError(); re != nil {
					return finish(fmt.Errorf("cluster: query %d refused by all nodes after %d rounds: %w", queryID, attempt, re))
				}
				return finish(fmt.Errorf("cluster: query %d refused by all nodes after %d rounds", queryID, attempt))
			}
			if !noteRetry() {
				return finish(budgetErr())
			}
			c.sleepBackoff(0, deadline)
			continue
		}
		var (
			win         *fetchReply
			winner      *nodeState
			terminal    error
			renegotiate bool
		)
	ladder:
		for ci, cand := range pr.ranked {
			if ci > 0 {
				if !c.takeRetryToken() {
					terminal = budgetErr()
					break
				}
				c.health.Inc(metrics.FailoversTotal)
			}
			if delivered > 0 && reset == nil && cand.nodeID() != out.Node {
				// Callback mode, partially delivered: only the node that
				// streamed the prefix can replay and resume it. Runner-ups
				// cannot help this query anymore.
				continue
			}
			fr, n, kind, err := c.fetchAttempt(cand, queryID, sql, tc, deadline, delivered, sink)
			delivered += n
			if kind == attemptOK || n > 0 {
				out.Node = cand.nodeID()
				out.NodeAddr = cand.address()
			}
			switch kind {
			case attemptOK:
				if !fr.Accepted {
					renegotiate = true // lost the supply race; the round is stale
					break ladder
				}
				win, winner = fr, cand
				break ladder
			case attemptFatal:
				terminal = err
				break ladder
			case attemptRefused, attemptNotSent:
				continue
			case attemptLost:
				if delivered > 0 && reset == nil {
					// Rows already escaped to the caller: retransmit to the
					// same node, skipping the delivered prefix the dedup
					// replay will resend.
					fr, kind, err = c.fetchResume(cand, queryID, sql, tc, deadline, &delivered, sink, noteRetry)
					if kind == attemptOK && fr.Accepted {
						win, winner = fr, cand
					} else {
						terminal = err
					}
					break ladder
				}
				if reset != nil && delivered > 0 {
					reset()
					delivered = 0
				}
				renegotiate = true
				break ladder
			}
		}
		switch {
		case win != nil:
			out.Node = winner.nodeID()
			out.NodeAddr = winner.address()
			out.ExecMs = win.ExecMs
			out.Rows = int(delivered)
			columns = win.Columns
			return finish(nil)
		case terminal != nil:
			return finish(terminal)
		}
		if attempt >= c.cfg.MaxRetries {
			return finish(fmt.Errorf("cluster: query %d starved after %d rounds", queryID, attempt))
		}
		if !noteRetry() {
			return finish(budgetErr())
		}
		if !renegotiate {
			c.sleepBackoff(0, deadline)
		}
	}
}

// fetchResume retransmits a partially-delivered streamed fetch to the
// same node, resuming at *delivered via the dedup window's replay. Up
// to ExecRetries retransmits, like execAttempt's outcome-unknown loop;
// if none completes the stream, the fetch is terminal — failing over
// would re-deliver rows the caller already consumed.
func (c *Client) fetchResume(ns *nodeState, queryID int64, sql string, tc *traceCtx, deadline time.Time, delivered *int64, sink fetchSink, noteRetry func() bool) (*fetchReply, attemptKind, error) {
	var (
		fr   *fetchReply
		kind attemptKind
		err  error
	)
	for r := 0; r < c.cfg.ExecRetries; r++ {
		if !noteRetry() {
			return nil, attemptFatal, fmt.Errorf("cluster: %w resuming fetch on %s", ErrRetryBudget, ns.label())
		}
		var n int64
		fr, n, kind, err = c.fetchAttempt(ns, queryID, sql, tc, deadline, *delivered, sink)
		*delivered += n
		switch kind {
		case attemptOK, attemptFatal:
			return fr, kind, err
		case attemptRefused, attemptNotSent, attemptLost:
			// The admission gate can refuse a retransmit before the dedup
			// window sees it; keep trying the same node.
		}
	}
	return nil, attemptFatal, fmt.Errorf("cluster: partially-streamed fetch on %s not resumable: %v", ns.label(), err)
}
