package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/qamarket/qamarket/internal/metrics"
	"github.com/qamarket/qamarket/internal/trace"
)

// ClientConfig parameterizes a federation client.
type ClientConfig struct {
	// Addrs seeds the client's membership view with server addresses.
	// With ViewRefresh enabled the view then tracks the federation's
	// gossip: nodes joining later are discovered and departing nodes
	// are pruned, no client restart needed. Without it the view stays
	// exactly these seeds (the static pre-membership behavior).
	Addrs []string
	// Mechanism selects the allocation protocol (greedy or qa-nt).
	Mechanism Mechanism
	// PeriodMs is the base wait before renegotiating a query every
	// server refused (QA-NT resubmission). Consecutive refusals back
	// off exponentially from this base up to MaxBackoffMs.
	PeriodMs int64
	// MaxBackoffMs caps the exponential retry backoff. Defaults to
	// 8*PeriodMs.
	MaxBackoffMs int64
	// MaxRetries caps resubmissions before the query fails.
	MaxRetries int
	// Timeout bounds each RPC except execution.
	Timeout time.Duration
	// ExecTimeoutFactor multiplies Timeout for execution RPCs, which
	// block for the query's whole run time. Default 20; must not be
	// negative.
	ExecTimeoutFactor int
	// BreakerThreshold is how many consecutive failures open a node's
	// circuit breaker (default 3). While open, the node is skipped
	// entirely until BreakerCooldown elapses and a single probe is
	// admitted, so a dead node costs one timeout per breaker window
	// instead of one per query.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker waits before probing
	// the node again (default 2s).
	BreakerCooldown time.Duration
	// Transport selects the RPC transport: TransportPooled (default)
	// keeps persistent multiplexed connections per node, TransportFresh
	// dials per RPC (the v0 behavior, kept for comparison).
	Transport Transport
	// PoolSize is how many connections each per-node, per-lane pool
	// holds under TransportPooled (default 2). The client keeps two
	// lanes per node — control (negotiate/stats) and data
	// (execute/fetch) — so a short RPC timing out never evicts a
	// connection carrying a long execution.
	PoolSize int
	// ViewRefresh, when positive, makes the client poll a live node's
	// merged membership table (the "members" op) this often and fold
	// it into its view: joiners are added, left/dead members pruned
	// (breakers, pools, and histograms follow the stable node ID). A
	// node answering with a draining reply is pruned immediately. Zero
	// keeps the static seed view.
	ViewRefresh time.Duration
	// Jitter is the RNG behind retry-backoff jitter. Backoff used to
	// draw from the unseeded global rand, which made retry schedules
	// unreproducible and immune to the repo's seeded-determinism
	// policy; now tests inject a seeded source and get identical
	// schedules. Nil defaults to a time-seeded private source. The
	// client serializes access; the source need not be concurrency-safe.
	Jitter *rand.Rand
	// Tracer, when set, records client-side query-lifecycle spans
	// (run/negotiate/execute/fetch) and stamps traced requests with a
	// wire trace context so server spans parent under them. Nil
	// disables tracing at zero cost beyond a nil check.
	Tracer *trace.Recorder
}

func (c *ClientConfig) validate() error {
	if len(c.Addrs) == 0 {
		return errors.New("cluster: no server addresses")
	}
	if c.Mechanism == "" {
		c.Mechanism = MechGreedy
	}
	if c.PeriodMs <= 0 {
		c.PeriodMs = 500
	}
	if c.MaxBackoffMs <= 0 {
		c.MaxBackoffMs = 8 * c.PeriodMs
	}
	if c.MaxBackoffMs < c.PeriodMs {
		return fmt.Errorf("cluster: MaxBackoffMs %d below PeriodMs %d", c.MaxBackoffMs, c.PeriodMs)
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 40
	}
	if c.Timeout <= 0 {
		c.Timeout = 5 * time.Second
	}
	if c.ExecTimeoutFactor < 0 {
		return fmt.Errorf("cluster: ExecTimeoutFactor %d is negative", c.ExecTimeoutFactor)
	}
	if c.ExecTimeoutFactor == 0 {
		c.ExecTimeoutFactor = 20
	}
	if c.BreakerThreshold < 0 {
		return fmt.Errorf("cluster: BreakerThreshold %d is negative", c.BreakerThreshold)
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 2 * time.Second
	}
	switch c.Transport {
	case "":
		c.Transport = TransportPooled
	case TransportPooled, TransportFresh:
	default:
		return fmt.Errorf("cluster: unknown transport %q", c.Transport)
	}
	if c.PoolSize <= 0 {
		c.PoolSize = 2
	}
	if c.ViewRefresh < 0 {
		return fmt.Errorf("cluster: ViewRefresh %v is negative", c.ViewRefresh)
	}
	if c.Jitter == nil {
		c.Jitter = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	return nil
}

// execTimeout is the budget for an execution RPC.
func (c *ClientConfig) execTimeout() time.Duration {
	return time.Duration(c.ExecTimeoutFactor) * c.Timeout
}

// nodeState is everything the client keeps per federation member:
// identity, circuit breaker, pooled transport, latency histograms. The
// state is keyed (and carried) by stable node ID, not slice position,
// so it survives membership churn — a node keeps its breaker history
// and histograms across view refreshes, and error messages stay
// attributable.
type nodeState struct {
	breaker *breaker

	// mu guards the identity fields below. A node enters the view
	// provisionally keyed by its seed address; the first reply's
	// NodeID stamp resolves the real ID and re-keys the entry, state
	// intact.
	mu          sync.Mutex
	id          string
	addr        string
	resolved    bool
	state       string // last gossiped membership state; "seed" until learned
	incarnation uint64
	epoch       uint64
	catalog     string

	// transport is the two-lane pooled transport (nil under
	// TransportFresh). Guarded by mu because a member can move to a
	// new address across a restart.
	transport *nodeTransport

	// Per-op RPC latency histograms, populated lazily.
	latMu sync.Mutex
	lat   map[string]*metrics.Histogram
}

// nodeID returns the node's current (possibly provisional) ID.
func (ns *nodeState) nodeID() string {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	return ns.id
}

// address returns the node's current dial address.
func (ns *nodeState) address() string {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	return ns.addr
}

// label names the node for error messages: stable ID plus address once
// resolved, bare address before the first exchange.
func (ns *nodeState) label() string {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	if ns.resolved && ns.id != ns.addr {
		return fmt.Sprintf("node %s (%s)", ns.id, ns.addr)
	}
	return fmt.Sprintf("node %s", ns.addr)
}

// observe records one successful RPC's latency.
func (ns *nodeState) observe(op string, ms float64) {
	ns.latMu.Lock()
	h := ns.lat[op]
	if h == nil {
		h = metrics.NewHistogram()
		ns.lat[op] = h
	}
	ns.latMu.Unlock()
	h.Observe(ms)
}

// Client negotiates and dispatches queries against the federation.
type Client struct {
	cfg    ClientConfig
	health *metrics.Health

	// view is the membership view, keyed by stable node ID (seed
	// address until the node's first reply resolves it). removedInc
	// remembers the incarnation at which a member was pruned, so a
	// slower peer's stale table cannot resurrect it. retired holds
	// transports of pruned members until Close — in-flight RPCs on
	// them finish or fail on their own.
	viewMu     sync.RWMutex
	view       map[string]*nodeState
	removedInc map[string]uint64
	retired    []*nodeTransport

	// jitterMu serializes the backoff RNG (rand.Rand is not
	// concurrency-safe and concurrent Runs may back off together).
	jitterMu sync.Mutex

	stopRefresh chan struct{}
	refreshWG   sync.WaitGroup
	closeOnce   sync.Once
}

// NewClient builds a client. Under the default pooled transport the
// client owns persistent connections; call Close when done with it.
func NewClient(cfg ClientConfig) (*Client, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	c := &Client{
		cfg:         cfg,
		health:      metrics.NewHealth(),
		view:        make(map[string]*nodeState, len(cfg.Addrs)),
		removedInc:  make(map[string]uint64),
		stopRefresh: make(chan struct{}),
	}
	for _, addr := range cfg.Addrs {
		if _, dup := c.view[addr]; dup {
			continue
		}
		c.view[addr] = c.newNodeState(addr, addr, false)
	}
	if cfg.ViewRefresh > 0 {
		c.refreshWG.Add(1)
		go c.refreshLoop()
	}
	return c, nil
}

// newNodeState builds the per-member state (breaker, transport,
// histograms) for a node entering the view.
func (c *Client) newNodeState(id, addr string, resolved bool) *nodeState {
	ns := &nodeState{
		breaker:  newBreaker(c.cfg.BreakerThreshold, c.cfg.BreakerCooldown, c.noteTransition),
		id:       id,
		addr:     addr,
		resolved: resolved,
		state:    "seed",
		lat:      make(map[string]*metrics.Histogram),
	}
	if c.cfg.Transport == TransportPooled {
		ns.transport = newNodeTransport(addr, c.cfg.PoolSize)
	}
	return ns
}

// Close stops the view refresher and shuts the client's pooled
// connections down. Safe to call more than once, and a no-op for
// transports under TransportFresh.
func (c *Client) Close() {
	c.closeOnce.Do(func() {
		close(c.stopRefresh)
		c.refreshWG.Wait()
		c.viewMu.Lock()
		transports := c.retired
		c.retired = nil
		for _, ns := range c.view {
			ns.mu.Lock()
			if ns.transport != nil {
				transports = append(transports, ns.transport)
			}
			ns.mu.Unlock()
		}
		c.viewMu.Unlock()
		for _, nt := range transports {
			nt.close()
		}
	})
}

// nodes snapshots the current view, sorted by ID so fan-outs and
// aggregated errors are deterministically ordered.
func (c *Client) nodes() []*nodeState {
	c.viewMu.RLock()
	out := make([]*nodeState, 0, len(c.view))
	for _, ns := range c.view {
		out = append(out, ns)
	}
	c.viewMu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].nodeID() < out[j].nodeID() })
	return out
}

// lookup finds a view member by node ID or address.
func (c *Client) lookup(key string) *nodeState {
	c.viewMu.RLock()
	defer c.viewMu.RUnlock()
	if ns, ok := c.view[key]; ok {
		return ns
	}
	for _, ns := range c.view {
		ns.mu.Lock()
		hit := ns.addr == key || ns.id == key
		ns.mu.Unlock()
		if hit {
			return ns
		}
	}
	return nil
}

// learnID re-keys a provisionally addressed member under the stable
// node ID its reply carried. The nodeState pointer (breaker, pools,
// histograms) is preserved; only the map key and label change.
func (c *Client) learnID(ns *nodeState, id string) {
	ns.mu.Lock()
	already := ns.resolved && ns.id == id
	ns.mu.Unlock()
	if already || id == "" {
		return
	}
	c.viewMu.Lock()
	defer c.viewMu.Unlock()
	ns.mu.Lock()
	old := ns.id
	ns.id = id
	ns.resolved = true
	ns.mu.Unlock()
	if other, ok := c.view[id]; ok && other != ns {
		// Two seed addresses resolved to the same node: keep the entry
		// that answered, retire the duplicate's transport.
		other.mu.Lock()
		if other.transport != nil {
			c.retired = append(c.retired, other.transport)
			other.transport = nil
		}
		other.mu.Unlock()
	}
	if c.view[old] == ns {
		delete(c.view, old)
	}
	c.view[id] = ns
}

// noteTransition feeds breaker state changes into the health counters.
func (c *Client) noteTransition(_, to breakerState) {
	switch to {
	case breakerOpen:
		c.health.Inc(metrics.BreakerOpenTotal)
	case breakerHalfOpen:
		c.health.Inc(metrics.BreakerHalfOpenTotal)
	case breakerClosed:
		c.health.Inc(metrics.BreakerCloseTotal)
	}
}

// Health snapshots the client's failure-domain counters: breaker
// transitions, retry rounds, accumulated backoff.
func (c *Client) Health() map[string]float64 { return c.health.Snapshot() }

// Outcome reports one query's journey through the federation.
type Outcome struct {
	QueryID   int64
	Node      string  // stable ID of the executing node ("" when none)
	NodeAddr  string  // its address at execution time
	AssignMs  float64 // negotiation time (the paper's "time to assign")
	TotalMs   float64 // assignment + queueing + execution
	ExecMs    float64 // server-side execution time
	Rows      int     // result cardinality
	Retries   int     // resubmission rounds
	Err       error   // terminal failure, if any
	Submitted time.Time
}

// errBreakerOpen marks a node skipped because its circuit is open: the
// client never touched the network for it this round.
var errBreakerOpen = errors.New("breaker open")

// errDraining marks a node that answered with a typed draining reply.
var errDraining = errors.New("draining")

// startSpan opens a client-side span when tracing is on; nil otherwise
// (a nil *trace.Active no-ops everywhere).
func (c *Client) startSpan(traceID int64, parent, name string) *trace.Active {
	if c.cfg.Tracer == nil {
		return nil
	}
	return c.cfg.Tracer.Start(traceID, parent, name)
}

// childCtx derives the wire trace context requests under sp should
// carry. With tracing off locally (sp == nil) the caller's context is
// forwarded unchanged, so a relay without its own recorder still links
// server spans into the trace.
func childCtx(tc *traceCtx, sp *trace.Active) *traceCtx {
	if tc == nil || sp == nil {
		return tc
	}
	return &traceCtx{V: traceV, ID: tc.ID, Span: sp.ID()}
}

// Run evaluates one query: negotiate with every node in the live view
// (waiting for all replies, as the paper's implementation did), send it
// to the best offer, and return the outcome. Refusals and transient
// transport failures are retried with capped exponential backoff up to
// MaxRetries; per-node circuit breakers keep dead nodes from charging
// a timeout on every round.
func (c *Client) Run(queryID int64, sql string) Outcome {
	start := time.Now()
	out := Outcome{QueryID: queryID, Submitted: start}
	root := c.startSpan(queryID, "", "run")
	tc := childCtx(&traceCtx{V: traceV, ID: queryID}, root)
	if root == nil {
		tc = nil // tracing off: requests stay id-less on the wire
	}
	finish := func(err error) Outcome {
		out.Err = err
		out.TotalMs = float64(time.Since(start)) / float64(time.Millisecond)
		if err != nil {
			root.Annotate("error: %v", err)
		} else {
			root.Annotate("node=%s retries=%d", out.Node, out.Retries)
		}
		root.Finish()
		return out
	}
	noteRetry := func() {
		out.Retries++
		c.health.Inc(metrics.RetriesTotal)
	}
	// unreachableRounds counts consecutive rounds where no node answered
	// at all; it drives the exponential backoff and resets the moment
	// the federation responds. Market refusals keep the paper's
	// resubmit-next-period cadence (a jittered single period) so the
	// QA-NT price dynamics are untouched by the resilience layer.
	unreachableRounds := 0
	for attempt := 0; ; attempt++ {
		ns, assignDur, err := c.negotiateAll(sql, tc)
		out.AssignMs += float64(assignDur) / float64(time.Millisecond)
		if err != nil {
			// Whole federation unreachable this round: transient until
			// proven otherwise (a partition heals, a breaker re-probes).
			if attempt >= c.cfg.MaxRetries {
				return finish(fmt.Errorf("cluster: query %d after %d rounds: %w", queryID, attempt+1, err))
			}
			noteRetry()
			c.sleepBackoff(unreachableRounds)
			unreachableRounds++
			continue
		}
		unreachableRounds = 0
		if ns == nil {
			// Nobody offered: resubmit next period (Section 3.3 client
			// protocol).
			if attempt >= c.cfg.MaxRetries {
				return finish(fmt.Errorf("cluster: query %d refused by all nodes after %d rounds", queryID, attempt))
			}
			noteRetry()
			c.sleepBackoff(0)
			continue
		}
		rep, retryable, err := c.executeOn(ns, queryID, sql, tc)
		if err != nil {
			if !retryable {
				return finish(err)
			}
			// The node died or drained mid-execute; the query never ran,
			// so renegotiate it elsewhere.
			if attempt >= c.cfg.MaxRetries {
				return finish(fmt.Errorf("cluster: query %d after %d rounds: %w", queryID, attempt+1, err))
			}
			noteRetry()
			continue
		}
		if !rep.Accepted {
			// Lost the race for the last supply unit: renegotiate.
			if attempt >= c.cfg.MaxRetries {
				return finish(fmt.Errorf("cluster: query %d starved after %d rounds", queryID, attempt))
			}
			noteRetry()
			continue
		}
		out.Node = ns.nodeID()
		out.NodeAddr = ns.address()
		out.ExecMs = rep.ExecMs
		out.Rows = rep.Rows
		return finish(nil)
	}
}

// sleepBackoff waits the capped exponential backoff for the given retry
// round: PeriodMs doubled per round, capped at MaxBackoffMs, jittered
// into [1/2, 1] of the target so synchronized clients desynchronize.
func (c *Client) sleepBackoff(round int) {
	d := c.backoffDelay(round)
	c.health.Add(metrics.BackoffMsTotal, int64(d/time.Millisecond))
	time.Sleep(d)
}

func (c *Client) backoffDelay(round int) time.Duration {
	base := float64(c.cfg.PeriodMs)
	ceil := float64(c.cfg.MaxBackoffMs)
	target := base * math.Pow(2, float64(round))
	if target > ceil || math.IsInf(target, 1) {
		target = ceil
	}
	c.jitterMu.Lock()
	jitter := 0.5 + 0.5*c.cfg.Jitter.Float64()
	c.jitterMu.Unlock()
	return time.Duration(target * jitter * float64(time.Millisecond))
}

// negotiateAll broadcasts the call-for-proposals to the current live
// view and picks the node with the earliest estimated completion among
// those offering. It returns nil when no node offers, and an aggregate
// error naming every node's failure when none is reachable.
func (c *Client) negotiateAll(sql string, tc *traceCtx) (*nodeState, time.Duration, error) {
	start := time.Now()
	var sp *trace.Active
	if tc != nil {
		sp = c.startSpan(tc.ID, tc.Span, "negotiate")
		defer sp.Finish()
		tc = childCtx(tc, sp)
	}
	members := c.nodes()
	if len(members) == 0 {
		return nil, 0, errors.New("cluster: membership view is empty")
	}
	replies := make([]negotiateReply, len(members))
	errs := make([]error, len(members))
	var wg sync.WaitGroup
	for i, ns := range members {
		if !ns.breaker.allow() {
			errs[i] = errBreakerOpen
			continue
		}
		wg.Add(1)
		go func(i int, ns *nodeState) {
			defer wg.Done()
			var rep reply
			err := c.rpcOn(ns, &request{Op: "negotiate", SQL: sql, Mechanism: c.cfg.Mechanism, Trace: tc}, &rep, c.cfg.Timeout)
			switch {
			case err != nil:
				ns.breaker.failure()
				errs[i] = err
			case rep.Code == CodeDraining:
				// The node told us it is going away: open its circuit now
				// instead of discovering the death one timeout at a time,
				// and — under a dynamic view — prune its supply from the
				// market ahead of gossip eviction.
				ns.breaker.trip()
				c.noteDraining(ns)
				errs[i] = errDraining
			case rep.Err != "":
				ns.breaker.success()
				errs[i] = errors.New(rep.Err)
			default:
				ns.breaker.success()
				if rep.Negotiate != nil {
					replies[i] = *rep.Negotiate
				}
			}
		}(i, ns)
	}
	wg.Wait()
	elapsed := time.Since(start)
	best := math.Inf(1)
	var bestNode *nodeState
	reachable := false
	for i := range replies {
		if errs[i] != nil {
			continue
		}
		reachable = true
		r := replies[i]
		if !r.Feasible || !r.Offer {
			continue
		}
		if finish := r.QueueMs + r.EstimateMs; finish < best {
			best, bestNode = finish, members[i]
		}
	}
	if !reachable {
		sp.Annotate("no node reachable")
		return nil, elapsed, aggregateNodeErrors(members, errs)
	}
	if bestNode != nil {
		sp.Annotate("winner=%s of %d nodes", bestNode.nodeID(), len(members))
	} else {
		sp.Annotate("no offer from %d nodes", len(members))
	}
	return bestNode, elapsed, nil
}

// noteDraining reacts to a typed draining reply. Under a dynamic view
// the member is pruned immediately — a graceful leave removes supply
// from the market before suspicion could; the membership refresh would
// only rediscover the tombstone later. A static view keeps the entry
// (its breaker is already open) so a node restarting on the same
// address is found again by the breaker's probe.
func (c *Client) noteDraining(ns *nodeState) {
	if c.cfg.ViewRefresh <= 0 {
		return
	}
	ns.mu.Lock()
	id, inc := ns.id, ns.incarnation
	ns.mu.Unlock()
	c.viewMu.Lock()
	defer c.viewMu.Unlock()
	c.pruneLocked(id, inc)
}

// pruneLocked removes a member from the view, remembering the
// incarnation so stale gossip cannot resurrect it. Callers hold viewMu.
func (c *Client) pruneLocked(id string, incarnation uint64) {
	ns, ok := c.view[id]
	if !ok {
		return
	}
	delete(c.view, id)
	if prev, ok := c.removedInc[id]; !ok || incarnation > prev {
		c.removedInc[id] = incarnation
	}
	ns.mu.Lock()
	if ns.transport != nil {
		c.retired = append(c.retired, ns.transport)
		ns.transport = nil
	}
	ns.mu.Unlock()
}

// aggregateNodeErrors folds per-node failures into one error naming
// every node by stable ID and address, so "no node reachable" stays
// diagnosable and correctly attributed across membership changes.
func aggregateNodeErrors(members []*nodeState, errs []error) error {
	parts := make([]string, 0, len(errs))
	for i, err := range errs {
		if err != nil {
			parts = append(parts, fmt.Sprintf("%s: %v", members[i].label(), err))
		}
	}
	return fmt.Errorf("no node reachable: %s", strings.Join(parts, "; "))
}

// executeOn dispatches the query to the chosen node. retryable reports
// whether a failure left the query unexecuted (transport loss, node
// draining or stopping), in which case the caller may renegotiate it.
func (c *Client) executeOn(ns *nodeState, queryID int64, sql string, tc *traceCtx) (*executeReply, bool, error) {
	var sp *trace.Active
	if tc != nil {
		sp = c.startSpan(tc.ID, tc.Span, "execute")
		sp.Annotate("node=%s", ns.nodeID())
		defer sp.Finish()
		tc = childCtx(tc, sp)
	}
	var rep reply
	err := c.rpcOn(ns, &request{
		Op: "execute", SQL: sql, QueryID: queryID, Mechanism: c.cfg.Mechanism, Trace: tc,
	}, &rep, c.cfg.execTimeout())
	if err != nil {
		ns.breaker.failure()
		return nil, true, fmt.Errorf("cluster: execute on %s: %w", ns.label(), err)
	}
	if rep.Code == CodeDraining {
		ns.breaker.trip()
		c.noteDraining(ns)
		return nil, true, fmt.Errorf("cluster: %s: %w", ns.label(), errDraining)
	}
	if rep.Err != "" {
		return nil, false, errors.New(rep.Err)
	}
	if rep.Execute == nil {
		return nil, false, errors.New("cluster: malformed execute reply")
	}
	if rep.Execute.Err == msgNodeStopping {
		ns.breaker.trip()
		return nil, true, fmt.Errorf("cluster: %s: %s", ns.label(), msgNodeStopping)
	}
	if rep.Execute.Err != "" {
		return nil, false, errors.New(rep.Execute.Err)
	}
	ns.breaker.success()
	return rep.Execute, false, nil
}

// rpc performs one request/reply exchange by address. Known view
// members ride their pooled transport; unknown addresses (and
// TransportFresh) fall back to a fresh dial per RPC.
func (c *Client) rpc(addr string, req *request, rep *reply, timeout time.Duration) error {
	if ns := c.lookup(addr); ns != nil {
		return c.rpcOn(ns, req, rep, timeout)
	}
	return freshRPC(addr, req, rep, timeout)
}

// freshRPC is the v0 transport: dial, one exchange, hang up.
func freshRPC(addr string, req *request, rep *reply, timeout time.Duration) error {
	conn, err := dial(addr, timeout)
	if err != nil {
		return err
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		return err
	}
	w := bufio.NewWriter(conn)
	if err := writeMsg(w, req); err != nil {
		return err
	}
	return readMsg(bufio.NewReader(conn), rep)
}

// rpcOn performs one exchange with a view member, recording the
// latency of successful RPCs (failures are already counted by the
// breaker and retry metrics) in the member's per-op histogram, and
// resolving the member's stable ID from the reply's NodeID stamp.
func (c *Client) rpcOn(ns *nodeState, req *request, rep *reply, timeout time.Duration) error {
	start := time.Now()
	ns.mu.Lock()
	nt, addr := ns.transport, ns.addr
	ns.mu.Unlock()
	var err error
	if nt != nil {
		var mc *mconn
		if mc, err = nt.lane(req.Op).get(timeout); err == nil {
			err = mc.call(req, rep, timeout)
		}
	} else {
		err = freshRPC(addr, req, rep, timeout)
	}
	if err == nil {
		ns.observe(req.Op, msSince(start))
		if rep.NodeID != "" {
			c.learnID(ns, rep.NodeID)
		}
	}
	return err
}

// Latencies snapshots the client's RPC latency histograms, keyed by op
// then stable node ID.
func (c *Client) Latencies() map[string]map[string]metrics.HistSummary {
	out := make(map[string]map[string]metrics.HistSummary)
	for _, ns := range c.nodes() {
		id := ns.nodeID()
		ns.latMu.Lock()
		for op, h := range ns.lat {
			m := out[op]
			if m == nil {
				m = make(map[string]metrics.HistSummary)
				out[op] = m
			}
			m[id] = h.Summary()
		}
		ns.latMu.Unlock()
	}
	return out
}

// OpLatencies merges each op's per-node histograms into one summary.
func (c *Client) OpLatencies() map[string]metrics.HistSummary {
	merged := make(map[string]*metrics.Histogram)
	for _, ns := range c.nodes() {
		ns.latMu.Lock()
		for op, h := range ns.lat {
			m := merged[op]
			if m == nil {
				m = metrics.NewHistogram()
				merged[op] = m
			}
			m.Merge(h)
		}
		ns.latMu.Unlock()
	}
	out := make(map[string]metrics.HistSummary, len(merged))
	for op, h := range merged {
		out[op] = h.Summary()
	}
	return out
}

// Stats fetches one node's market counters, addressed by stable node
// ID or address. Stats is an out-of-band observability op, so it
// leaves the breaker's failure accounting alone — except for a typed
// draining reply, which trips the breaker exactly like it does on
// negotiate/execute/fetch (the node told us it is going away; there is
// no reason to keep paying timeouts to learn it again).
func (c *Client) Stats(node string) (*NodeStats, error) {
	ns := c.lookup(node)
	if ns == nil {
		return nil, fmt.Errorf("cluster: unknown node %q", node)
	}
	var rep reply
	if err := c.rpcOn(ns, &request{Op: "stats"}, &rep, c.cfg.Timeout); err != nil {
		return nil, err
	}
	if rep.Code == CodeDraining {
		ns.breaker.trip()
		return nil, fmt.Errorf("cluster: %s: %w", ns.label(), errDraining)
	}
	if rep.Err != "" {
		return nil, errors.New(rep.Err)
	}
	if rep.Stats == nil {
		return nil, errors.New("cluster: malformed stats reply")
	}
	return rep.Stats, nil
}

// TraceSpans assembles one trace's spans from across the federation:
// the client's own recorder plus every reachable node's span ring,
// collected via the "spans" op. Unreachable nodes (and old nodes that
// answer the unknown op with an error) are skipped — a lossy
// collection still renders, with orphaned spans becoming tree roots.
func (c *Client) TraceSpans(traceID int64) []trace.Span {
	members := c.nodes()
	collected := make([][]trace.Span, len(members))
	var wg sync.WaitGroup
	for i, ns := range members {
		wg.Add(1)
		go func(i int, ns *nodeState) {
			defer wg.Done()
			var rep reply
			if err := c.rpcOn(ns, &request{Op: "spans", QueryID: traceID}, &rep, c.cfg.Timeout); err != nil {
				return
			}
			if rep.Err == "" && rep.Spans != nil {
				collected[i] = rep.Spans.Spans
			}
		}(i, ns)
	}
	wg.Wait()
	out := c.cfg.Tracer.Spans(traceID)
	for _, spans := range collected {
		out = append(out, spans...)
	}
	return out
}

// fetchOn dispatches a fetch (execute + result shipping) to the chosen
// node, advertising the compact row encoding. Same retryable semantics
// as executeOn: a transport loss, drain, or hard stop leaves the query
// unexecuted and the caller may renegotiate it elsewhere.
func (c *Client) fetchOn(ns *nodeState, queryID int64, sql string, tc *traceCtx) (*fetchReply, bool, error) {
	var sp *trace.Active
	if tc != nil {
		sp = c.startSpan(tc.ID, tc.Span, "fetch")
		sp.Annotate("node=%s", ns.nodeID())
		defer sp.Finish()
		tc = childCtx(tc, sp)
	}
	var rep reply
	err := c.rpcOn(ns, &request{
		Op: "fetch", SQL: sql, QueryID: queryID, Mechanism: c.cfg.Mechanism, Enc: encCompact, Trace: tc,
	}, &rep, c.cfg.execTimeout())
	if err != nil {
		ns.breaker.failure()
		return nil, true, fmt.Errorf("cluster: fetch on %s: %w", ns.label(), err)
	}
	if rep.Code == CodeDraining {
		ns.breaker.trip()
		c.noteDraining(ns)
		return nil, true, fmt.Errorf("cluster: %s: %w", ns.label(), errDraining)
	}
	if rep.Err != "" {
		return nil, false, errors.New(rep.Err)
	}
	if rep.Fetch == nil {
		return nil, false, errors.New("cluster: malformed fetch reply")
	}
	if rep.Fetch.Err == msgNodeStopping {
		ns.breaker.trip()
		return nil, true, fmt.Errorf("cluster: %s: %s", ns.label(), msgNodeStopping)
	}
	if rep.Fetch.Err != "" {
		return nil, false, errors.New(rep.Fetch.Err)
	}
	ns.breaker.success()
	return rep.Fetch, false, nil
}
