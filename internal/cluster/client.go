package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"
)

// ClientConfig parameterizes a federation client.
type ClientConfig struct {
	// Addrs lists the server nodes' TCP addresses.
	Addrs []string
	// Mechanism selects the allocation protocol (greedy or qa-nt).
	Mechanism Mechanism
	// PeriodMs is the wait before renegotiating a query every server
	// refused (QA-NT resubmission).
	PeriodMs int64
	// MaxRetries caps resubmissions before the query fails.
	MaxRetries int
	// Timeout bounds each RPC. Execution RPCs get 20x this budget since
	// they block for the query's whole run time.
	Timeout time.Duration
}

func (c *ClientConfig) validate() error {
	if len(c.Addrs) == 0 {
		return errors.New("cluster: no server addresses")
	}
	if c.Mechanism == "" {
		c.Mechanism = MechGreedy
	}
	if c.PeriodMs <= 0 {
		c.PeriodMs = 500
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 40
	}
	if c.Timeout <= 0 {
		c.Timeout = 5 * time.Second
	}
	return nil
}

// Client negotiates and dispatches queries against the federation.
type Client struct {
	cfg ClientConfig
}

// NewClient builds a client.
func NewClient(cfg ClientConfig) (*Client, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Client{cfg: cfg}, nil
}

// Outcome reports one query's journey through the federation.
type Outcome struct {
	QueryID   int64
	Node      int     // index into Addrs
	AssignMs  float64 // negotiation time (the paper's "time to assign")
	TotalMs   float64 // assignment + queueing + execution
	ExecMs    float64 // server-side execution time
	Rows      int     // result cardinality
	Retries   int     // resubmission rounds
	Err       error   // terminal failure, if any
	Submitted time.Time
}

// Run evaluates one query: negotiate with every node (waiting for all
// replies, as the paper's implementation did), send it to the best
// offer, and return the outcome. It retries in the next period when no
// node offers.
func (c *Client) Run(queryID int64, sql string) Outcome {
	start := time.Now()
	out := Outcome{QueryID: queryID, Node: -1, Submitted: start}
	for attempt := 0; ; attempt++ {
		node, assignDur, err := c.negotiateAll(sql)
		out.AssignMs += float64(assignDur) / float64(time.Millisecond)
		if err != nil {
			out.Err = err
			return out
		}
		if node < 0 {
			// Nobody offered: resubmit next period (Section 3.3 client
			// protocol).
			if attempt >= c.cfg.MaxRetries {
				out.Err = fmt.Errorf("cluster: query %d refused by all nodes after %d rounds", queryID, attempt)
				out.TotalMs = float64(time.Since(start)) / float64(time.Millisecond)
				return out
			}
			out.Retries++
			time.Sleep(time.Duration(c.cfg.PeriodMs) * time.Millisecond)
			continue
		}
		rep, err := c.executeOn(node, queryID, sql)
		if err != nil {
			out.Err = err
			out.TotalMs = float64(time.Since(start)) / float64(time.Millisecond)
			return out
		}
		if !rep.Accepted {
			// Lost the race for the last supply unit: renegotiate.
			out.Retries++
			if attempt >= c.cfg.MaxRetries {
				out.Err = fmt.Errorf("cluster: query %d starved after %d rounds", queryID, attempt)
				out.TotalMs = float64(time.Since(start)) / float64(time.Millisecond)
				return out
			}
			continue
		}
		out.Node = node
		out.ExecMs = rep.ExecMs
		out.Rows = rep.Rows
		out.TotalMs = float64(time.Since(start)) / float64(time.Millisecond)
		return out
	}
}

// negotiateAll broadcasts the call-for-proposals and picks the node
// with the earliest estimated completion among those offering. It
// returns -1 when no node offers.
func (c *Client) negotiateAll(sql string) (int, time.Duration, error) {
	start := time.Now()
	replies := make([]negotiateReply, len(c.cfg.Addrs))
	errs := make([]error, len(c.cfg.Addrs))
	var wg sync.WaitGroup
	for i, addr := range c.cfg.Addrs {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			var rep reply
			errs[i] = c.rpc(addr, &request{Op: "negotiate", SQL: sql, Mechanism: c.cfg.Mechanism}, &rep, c.cfg.Timeout)
			if errs[i] == nil && rep.Negotiate != nil {
				replies[i] = *rep.Negotiate
			}
		}(i, addr)
	}
	wg.Wait()
	elapsed := time.Since(start)
	best, bestNode := math.Inf(1), -1
	reachable := false
	for i := range replies {
		if errs[i] != nil {
			continue
		}
		reachable = true
		r := replies[i]
		if !r.Feasible || !r.Offer {
			continue
		}
		if finish := r.QueueMs + r.EstimateMs; finish < best {
			best, bestNode = finish, i
		}
	}
	if !reachable {
		return -1, elapsed, fmt.Errorf("cluster: no node reachable: %v", errs[0])
	}
	return bestNode, elapsed, nil
}

func (c *Client) executeOn(node int, queryID int64, sql string) (*executeReply, error) {
	var rep reply
	err := c.rpc(c.cfg.Addrs[node], &request{
		Op: "execute", SQL: sql, QueryID: queryID, Mechanism: c.cfg.Mechanism,
	}, &rep, 20*c.cfg.Timeout)
	if err != nil {
		return nil, err
	}
	if rep.Err != "" {
		return nil, errors.New(rep.Err)
	}
	if rep.Execute == nil {
		return nil, errors.New("cluster: malformed execute reply")
	}
	if rep.Execute.Err != "" {
		return nil, errors.New(rep.Execute.Err)
	}
	return rep.Execute, nil
}

// rpc performs one request/reply exchange on a fresh connection.
func (c *Client) rpc(addr string, req *request, rep *reply, timeout time.Duration) error {
	conn, err := dial(addr, timeout)
	if err != nil {
		return err
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		return err
	}
	w := bufio.NewWriter(conn)
	if err := writeMsg(w, req); err != nil {
		return err
	}
	return readMsg(bufio.NewReader(conn), rep)
}

// Stats fetches one node's market counters.
func (c *Client) Stats(node int) (*NodeStats, error) {
	var rep reply
	if err := c.rpc(c.cfg.Addrs[node], &request{Op: "stats"}, &rep, c.cfg.Timeout); err != nil {
		return nil, err
	}
	if rep.Stats == nil {
		return nil, errors.New("cluster: malformed stats reply")
	}
	return rep.Stats, nil
}
