package qtrade

import (
	"testing"

	"github.com/qamarket/qamarket/internal/economics"
	"github.com/qamarket/qamarket/internal/market"
)

func TestAuctionPicksBestBid(t *testing.T) {
	sellers := []Seller{
		&CostSeller{ID: 0, CostMs: []float64{400}},
		&CostSeller{ID: 1, CostMs: []float64{450}, BacklogMs: 0},
		&CostSeller{ID: 2, CostMs: []float64{100}, BacklogMs: 1000},
	}
	a, err := NewAuction(sellers, EarliestDelivery, 1)
	if err != nil {
		t.Fatal(err)
	}
	bid, ok := a.Award(CFP{QueryID: 1, Class: 0}, nil)
	if !ok {
		t.Fatal("no award")
	}
	// Earliest delivery: seller 0 at 400 ms (seller 2 is cheap but
	// backlogged to 1100 ms).
	if bid.Seller != 0 {
		t.Errorf("award to seller %d, want 0", bid.Seller)
	}
	// Cheapest price prefers seller 2.
	b, _ := NewAuction(sellers, CheapestPrice, 1)
	bid, _ = b.Award(CFP{QueryID: 2, Class: 0}, nil)
	if bid.Seller != 2 {
		t.Errorf("cheapest award to seller %d, want 2", bid.Seller)
	}
}

func TestAuctionValidation(t *testing.T) {
	if _, err := NewAuction(nil, EarliestDelivery, 1); err == nil {
		t.Error("no sellers accepted")
	}
	if _, err := NewAuction([]Seller{&CostSeller{}}, nil, 1); err == nil {
		t.Error("nil valuation accepted")
	}
}

func TestAuctionAbstentionAndRounds(t *testing.T) {
	// A seller with no capability for the class abstains; with every
	// seller abstaining, the CFP is re-issued and onRound fires.
	sellers := []Seller{&CostSeller{ID: 0, CostMs: []float64{0}}}
	a, _ := NewAuction(sellers, EarliestDelivery, 3)
	rounds := 0
	_, ok := a.Award(CFP{Class: 0}, func(int) { rounds++ })
	if ok {
		t.Fatal("award from incapable sellers")
	}
	if rounds != 2 {
		t.Errorf("onRound fired %d times, want 2 (between 3 rounds)", rounds)
	}
	cfps, bids, awards := a.Stats()
	if cfps != 3 || bids != 0 || awards != 0 {
		t.Errorf("stats = %d/%d/%d", cfps, bids, awards)
	}
	// Out-of-range classes abstain rather than panic.
	if _, ok := (&CostSeller{CostMs: []float64{100}}).Bid(CFP{Class: 7}); ok {
		t.Error("out-of-range class got a bid")
	}
}

func TestWeightedValuation(t *testing.T) {
	fast := Bid{DeliveryMs: 100, Price: 10}
	cheap := Bid{DeliveryMs: 1000, Price: 1}
	cfp := CFP{}
	deliveryHeavy := Weighted(1, 0)
	priceHeavy := Weighted(0, 1)
	if deliveryHeavy(cfp, fast) <= deliveryHeavy(cfp, cheap) {
		t.Error("delivery-heavy valuation mis-ranks")
	}
	if priceHeavy(cfp, cheap) <= priceHeavy(cfp, fast) {
		t.Error("price-heavy valuation mis-ranks")
	}
}

// marketSellerFixture builds the Figure 1 N1 node as a market seller.
func marketSellerFixture(t *testing.T) *MarketSeller {
	t.Helper()
	agent, err := market.NewAgent(
		economics.TimeBudgetSupplySet{Cost: []float64{400, 100}, Budget: 500},
		market.DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	agent.BeginPeriod()
	return &MarketSeller{
		Base:  &CostSeller{ID: 0, CostMs: []float64{400, 100}},
		Agent: agent,
	}
}

func TestMarketSellerGatesBids(t *testing.T) {
	s := marketSellerFixture(t)
	// With equal prices the agent supplies only class 1 (five q2).
	if _, ok := s.Bid(CFP{Class: 0}); ok {
		t.Error("bid on a class outside the supply vector")
	}
	for i := 0; i < 5; i++ {
		bid, ok := s.Bid(CFP{Class: 1})
		if !ok {
			t.Fatalf("bid %d refused with supply remaining", i)
		}
		if bid.Price != 100 {
			t.Errorf("bid price %g", bid.Price)
		}
		if err := s.Awarded(CFP{Class: 1}); err != nil {
			t.Fatal(err)
		}
	}
	// Supply exhausted: abstain (and the refusal raised the price).
	if _, ok := s.Bid(CFP{Class: 1}); ok {
		t.Error("bid with exhausted supply")
	}
	if s.Agent.Stats().Rejects == 0 {
		t.Error("refusals did not reach the agent")
	}
}

// TestMarketAuctionConvergesLikeQANT runs the full composition: an
// auction over two market sellers with the Figure 1 economics must
// steer the allocation toward N1-serves-q2 / N2-serves-q1.
func TestMarketAuctionConvergesLikeQANT(t *testing.T) {
	mk := func(id int, costs []float64) *MarketSeller {
		agent, err := market.NewAgent(
			economics.TimeBudgetSupplySet{Cost: costs, Budget: 500},
			market.DefaultConfig(2))
		if err != nil {
			t.Fatal(err)
		}
		agent.BeginPeriod()
		return &MarketSeller{Base: &CostSeller{ID: id, CostMs: costs}, Agent: agent}
	}
	n1 := mk(0, []float64{400, 100})
	n2 := mk(1, []float64{450, 500})
	auction, err := NewAuction([]Seller{n1, n2}, EarliestDelivery, 4)
	if err != nil {
		t.Fatal(err)
	}
	period := func() {
		for _, s := range []*MarketSeller{n1, n2} {
			s.Agent.EndPeriod()
			s.Agent.BeginPeriod()
		}
	}
	served := map[int][2]int{} // seller -> [q1, q2] awards
	var queryID int64
	for p := 0; p < 30; p++ {
		// Per-period demand: 1×q1 + 5×q2.
		for _, class := range []int{0, 1, 1, 1, 1, 1} {
			queryID++
			bid, ok := auction.Award(CFP{QueryID: queryID, Class: class}, func(int) { period() })
			if !ok {
				continue
			}
			winner := bid.Seller
			ms := n1
			if winner == 1 {
				ms = n2
			}
			if err := ms.Awarded(CFP{Class: class}); err != nil {
				t.Fatal(err)
			}
			counts := served[winner]
			counts[class]++
			served[winner] = counts
		}
		period()
	}
	// N2 must end up carrying the q1 traffic and N1 the bulk of q2 —
	// the paper's QA allocation.
	if served[1][0] == 0 {
		t.Error("N2 never served q1")
	}
	if served[0][1] < served[1][1] {
		t.Errorf("N1 should dominate q2 service: %v", served)
	}
	cfps, bids, awards := auction.Stats()
	if awards == 0 || bids < awards || cfps < awards {
		t.Errorf("stats inconsistent: %d/%d/%d", cfps, bids, awards)
	}
}

func TestRankBids(t *testing.T) {
	bids := []Bid{
		{Seller: 0, DeliveryMs: 300},
		{Seller: 1, DeliveryMs: 100},
		{Seller: 2, DeliveryMs: 200},
	}
	ranked := RankBids(CFP{}, bids, EarliestDelivery)
	if ranked[0].Seller != 1 || ranked[1].Seller != 2 || ranked[2].Seller != 0 {
		t.Errorf("ranked = %v", ranked)
	}
	// Original slice untouched.
	if bids[0].Seller != 0 {
		t.Error("RankBids mutated its input")
	}
}
