// Package qtrade is a compact version of the Query and Process Trading
// framework ([13,14] in the paper; Mariposa [15] is the same shape):
// buyers issue calls-for-proposals for (sub)queries, sellers answer
// with bids carrying a price and a delivery estimate, and the buyer
// awards the query to the bid its valuation ranks best, with multiple
// rounds when nobody bids.
//
// Section 4 of the paper positions QA-NT as *compatible* with such
// distributed query optimizers — it only restricts which CFPs a seller
// bids on (admission control through the supply vector), never how
// queries are valued or split. MarketSeller realizes exactly that
// composition: it wraps a QA-NT agent in front of any base seller.
package qtrade

import (
	"errors"
	"fmt"
	"sort"

	"github.com/qamarket/qamarket/internal/market"
)

// CFP is a call-for-proposals for one (sub)query.
type CFP struct {
	QueryID int64
	Class   int
	// Round counts re-issues of the same CFP (0 on first issue).
	// Sellers may loosen their own constraints on later rounds.
	Round int
}

// Bid is a seller's answer to a CFP.
type Bid struct {
	Seller     int     // seller identifier assigned at registration
	Price      float64 // the seller's asking price (virtual currency)
	DeliveryMs float64 // estimated completion time
}

// Seller answers CFPs. Implementations must be deterministic given
// their own state.
type Seller interface {
	// Bid returns the seller's offer and true, or false to abstain.
	Bid(cfp CFP) (Bid, bool)
}

// Valuation scores a bid for a CFP; the highest score wins. The
// classic choices live below.
type Valuation func(cfp CFP, bid Bid) float64

// EarliestDelivery prefers the bid completing soonest (the paper's
// client behaviour: take the best offer by estimated time).
func EarliestDelivery(_ CFP, b Bid) float64 { return -b.DeliveryMs }

// CheapestPrice prefers the lowest asking price (Mariposa's budget
// shoppers).
func CheapestPrice(_ CFP, b Bid) float64 { return -b.Price }

// Weighted blends delivery and price with the given weights.
func Weighted(deliveryWeight, priceWeight float64) Valuation {
	return func(_ CFP, b Bid) float64 {
		return -(deliveryWeight*b.DeliveryMs + priceWeight*b.Price)
	}
}

// Auction runs CFP/bid/award rounds over a set of sellers.
type Auction struct {
	sellers   []Seller
	valuation Valuation
	maxRounds int

	// Stats.
	cfps   int
	bids   int
	awards int
}

// NewAuction builds an auction over the sellers. maxRounds bounds
// re-issues of an unanswered CFP (the paper's clients resubmit in the
// next time period; callers advance their market periods between
// rounds via the onRound callback of Award).
func NewAuction(sellers []Seller, valuation Valuation, maxRounds int) (*Auction, error) {
	if len(sellers) == 0 {
		return nil, errors.New("qtrade: no sellers")
	}
	if valuation == nil {
		return nil, errors.New("qtrade: nil valuation")
	}
	if maxRounds <= 0 {
		maxRounds = 1
	}
	return &Auction{sellers: sellers, valuation: valuation, maxRounds: maxRounds}, nil
}

// Award runs the auction for one CFP: collect bids from every seller,
// pick the valuation's favourite, and return it. When no seller bids,
// the CFP is re-issued up to maxRounds times; onRound (optional) runs
// between rounds — the natural place to advance market periods.
// It returns ok=false when every round ends bidless.
func (a *Auction) Award(cfp CFP, onRound func(round int)) (Bid, bool) {
	for round := 0; round < a.maxRounds; round++ {
		cfp.Round = round
		a.cfps++
		var best Bid
		bestScore := 0.0
		found := false
		for _, s := range a.sellers {
			bid, ok := s.Bid(cfp)
			if !ok {
				continue
			}
			a.bids++
			score := a.valuation(cfp, bid)
			if !found || score > bestScore {
				best, bestScore, found = bid, score, true
			}
		}
		if found {
			a.awards++
			return best, true
		}
		if onRound != nil && round+1 < a.maxRounds {
			onRound(round)
		}
	}
	return Bid{}, false
}

// Stats reports the auction's lifetime counters: CFPs issued (counting
// re-issues), bids received, and awards made.
func (a *Auction) Stats() (cfps, bids, awards int) {
	return a.cfps, a.bids, a.awards
}

// CostSeller is the baseline seller: it always bids, asking its
// estimated cost and quoting backlog + cost as delivery — a greedy
// server with no admission control.
type CostSeller struct {
	ID int
	// CostMs maps query class to this seller's execution estimate; a
	// missing class (or non-positive cost) means "cannot evaluate".
	CostMs []float64
	// BacklogMs is the seller's current queued work, updated by the
	// caller as awards land.
	BacklogMs float64
}

// Bid implements Seller.
func (s *CostSeller) Bid(cfp CFP) (Bid, bool) {
	if cfp.Class < 0 || cfp.Class >= len(s.CostMs) || s.CostMs[cfp.Class] <= 0 {
		return Bid{}, false
	}
	c := s.CostMs[cfp.Class]
	return Bid{Seller: s.ID, Price: c, DeliveryMs: s.BacklogMs + c}, true
}

// MarketSeller composes QA-NT admission control in front of a base
// seller: it consults the market agent first and abstains whenever the
// agent refuses (which also raises the refused class's private price —
// the non-tâtonnement signal). Awards must be reported back through
// Awarded so the supply vector burns down.
type MarketSeller struct {
	Base  Seller
	Agent *market.Agent
}

// Bid implements Seller.
func (s *MarketSeller) Bid(cfp CFP) (Bid, bool) {
	if !s.Agent.Offer(cfp.Class) {
		return Bid{}, false
	}
	bid, ok := s.Base.Bid(cfp)
	if !ok {
		// The base seller cannot serve what the agent offered — a
		// configuration error worth surfacing in the bid stream.
		s.Agent.Decline(cfp.Class)
		return Bid{}, false
	}
	return bid, true
}

// Awarded burns one unit of the agent's supply after winning a CFP.
func (s *MarketSeller) Awarded(cfp CFP) error {
	if err := s.Agent.Accept(cfp.Class); err != nil {
		return fmt.Errorf("qtrade: award bookkeeping: %w", err)
	}
	return nil
}

// Declined tells the agent its offer lost (no price movement; only
// trading failures move prices).
func (s *MarketSeller) Declined(cfp CFP) { s.Agent.Decline(cfp.Class) }

// RankBids orders bids best-first under a valuation (a helper for
// callers implementing their own award protocols, e.g. k-redundant
// subquery placement).
func RankBids(cfp CFP, bids []Bid, v Valuation) []Bid {
	out := append([]Bid(nil), bids...)
	sort.SliceStable(out, func(i, j int) bool {
		return v(cfp, out[i]) > v(cfp, out[j])
	})
	return out
}
