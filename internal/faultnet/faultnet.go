// Package faultnet is a deterministic fault-injection TCP proxy for
// testing the federation's failure domains without sleeps or real
// crashes. A Proxy sits between a cluster client and one server node
// and injects faults at two levels:
//
//   - A per-connection Plan, chosen by a Schedule from the connection's
//     arrival index (and nothing else), so a seeded test replays the
//     exact same fault sequence every run: refuse the dial, black-hole
//     all traffic, add latency, or truncate the reply after N bytes.
//   - Dynamic proxy-wide switches flipped mid-test: one-way partitions
//     (drop every byte traveling one direction while the connection
//     stays open, like an asymmetric link failure) and black-holing of
//     new connections (accept, then never forward — the client pays a
//     full timeout, like a crashed-but-routable host).
//
// The proxy target is retargetable (SetTarget), so a test can "restart"
// a backend on a new ephemeral port while clients keep dialing the same
// frontend address.
package faultnet

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Direction names a traffic direction through the proxy.
type Direction int

// Traffic directions for partitions and truncation.
const (
	// ClientToServer is traffic from the dialing client toward the
	// proxied backend.
	ClientToServer Direction = iota
	// ServerToClient is reply traffic from the backend to the client.
	ServerToClient
)

func (d Direction) String() string {
	if d == ClientToServer {
		return "client->server"
	}
	return "server->client"
}

// Plan is the fault schedule for one proxied connection.
type Plan struct {
	// Refuse closes the accepted connection immediately without dialing
	// the backend: the client sees a connection reset.
	Refuse bool
	// Blackhole accepts the connection and reads (discarding) client
	// bytes but never dials the backend nor replies: the client blocks
	// until its own deadline fires.
	Blackhole bool
	// Latency is added before each chunk is forwarded, per direction.
	Latency time.Duration
	// TruncateReplyAfter, when positive, forwards only that many
	// server->client bytes and then closes both sides, modeling a
	// mid-reply connection loss.
	TruncateReplyAfter int
}

// Schedule picks the Plan for the i-th accepted connection (0-based).
// It must be a pure function of the index so runs are reproducible; any
// seeding is baked into the closure by the caller.
type Schedule func(conn int) Plan

// PassThrough is the no-fault schedule.
func PassThrough(int) Plan { return Plan{} }

// RefuseFirst refuses the first n connections and passes the rest.
func RefuseFirst(n int) Schedule {
	return func(conn int) Plan { return Plan{Refuse: conn < n} }
}

// Proxy is one running fault-injection proxy.
type Proxy struct {
	ln net.Listener

	mu       sync.Mutex
	target   string
	schedule Schedule
	conns    map[net.Conn]struct{}
	accepted int

	dropC2S  atomic.Bool // one-way partition: drop client->server bytes
	dropS2C  atomic.Bool // one-way partition: drop server->client bytes
	blackole atomic.Bool // black-hole every new connection
	refuse   atomic.Bool // refuse (close) every new connection at accept

	dialTimeout time.Duration
	stopCh      chan struct{}
	stopOnce    sync.Once
	wg          sync.WaitGroup
}

// Start listens on addr (use "127.0.0.1:0" for an ephemeral port) and
// proxies every accepted connection to target under the given schedule
// (nil = PassThrough).
func Start(addr, target string, schedule Schedule) (*Proxy, error) {
	if target == "" {
		return nil, errors.New("faultnet: empty target address")
	}
	if schedule == nil {
		schedule = PassThrough
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("faultnet: listen %s: %w", addr, err)
	}
	p := &Proxy{
		ln:          ln,
		target:      target,
		schedule:    schedule,
		conns:       make(map[net.Conn]struct{}),
		dialTimeout: 2 * time.Second,
		stopCh:      make(chan struct{}),
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's frontend address, the one clients dial.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Accepted returns how many connections the proxy has accepted so far.
func (p *Proxy) Accepted() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.accepted
}

// SetTarget retargets future connections, e.g. onto a restarted backend
// listening on a new ephemeral port. In-flight connections keep their
// old backend.
func (p *Proxy) SetTarget(target string) {
	p.mu.Lock()
	p.target = target
	p.mu.Unlock()
}

// Partition starts dropping all bytes traveling in the given direction
// while connections stay open — an asymmetric link failure.
func (p *Proxy) Partition(d Direction) {
	if d == ClientToServer {
		p.dropC2S.Store(true)
	} else {
		p.dropS2C.Store(true)
	}
}

// Heal removes all partitions.
func (p *Proxy) Heal() {
	p.dropC2S.Store(false)
	p.dropS2C.Store(false)
}

// SetBlackhole toggles black-holing of new connections: accepted but
// never forwarded nor answered, like a crashed host that still routes.
func (p *Proxy) SetBlackhole(on bool) { p.blackole.Store(on) }

// SetRefuse toggles refusing new connections: accepted then closed
// immediately, so the dialer sees a fast connection reset — a crashed
// process whose host is still up, the cheap-failure counterpart to the
// full-timeout blackhole.
func (p *Proxy) SetRefuse(on bool) { p.refuse.Store(on) }

// Sever closes every currently proxied connection while the listener
// keeps running: an instantaneous crash of all established streams.
// Combine with SetRefuse to keep the "process" down, or leave new
// dials passing to model a blip that killed in-flight replies only.
func (p *Proxy) Sever() {
	p.mu.Lock()
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
}

// Close stops the proxy and severs every proxied connection.
func (p *Proxy) Close() error {
	var err error
	p.stopOnce.Do(func() {
		close(p.stopCh)
		err = p.ln.Close()
		p.mu.Lock()
		for c := range p.conns {
			c.Close()
		}
		p.mu.Unlock()
		p.wg.Wait()
	})
	return err
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		p.mu.Lock()
		idx := p.accepted
		p.accepted++
		target := p.target
		plan := p.schedule(idx)
		p.mu.Unlock()
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.serve(conn, target, plan)
		}()
	}
}

func (p *Proxy) serve(client net.Conn, target string, plan Plan) {
	if plan.Refuse || p.refuse.Load() {
		client.Close()
		return
	}
	if plan.Blackhole || p.blackole.Load() {
		p.track(client)
		defer p.untrack(client)
		defer client.Close()
		// Swallow client bytes until it gives up or the proxy closes.
		io.Copy(io.Discard, client)
		return
	}
	server, err := net.DialTimeout("tcp", target, p.dialTimeout)
	if err != nil {
		client.Close()
		return
	}
	p.track(client)
	p.track(server)
	defer p.untrack(client)
	defer p.untrack(server)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		p.pump(server, client, ClientToServer, plan, 0)
	}()
	go func() {
		defer wg.Done()
		p.pump(client, server, ServerToClient, plan, plan.TruncateReplyAfter)
	}()
	wg.Wait()
	client.Close()
	server.Close()
}

// pump forwards src -> dst in direction d, honoring latency, dynamic
// partitions, and an optional byte budget (0 = unlimited) after which
// both sides are severed.
func (p *Proxy) pump(dst, src net.Conn, d Direction, plan Plan, budget int) {
	buf := make([]byte, 32<<10)
	sent := 0
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if p.partitioned(d) {
				// Swallow the bytes: the connection stays up, the data
				// never arrives.
			} else {
				chunk := buf[:n]
				if plan.Latency > 0 {
					select {
					case <-time.After(plan.Latency):
					case <-p.stopCh:
						return
					}
				}
				if budget > 0 && sent+len(chunk) >= budget {
					dst.Write(chunk[:budget-sent])
					dst.Close()
					src.Close()
					return
				}
				if _, werr := dst.Write(chunk); werr != nil {
					return
				}
				sent += len(chunk)
			}
		}
		if err != nil {
			// Propagate EOF/teardown to the other side's reader.
			if tc, ok := dst.(*net.TCPConn); ok {
				tc.CloseWrite()
			}
			return
		}
	}
}

func (p *Proxy) partitioned(d Direction) bool {
	if d == ClientToServer {
		return p.dropC2S.Load()
	}
	return p.dropS2C.Load()
}

func (p *Proxy) track(c net.Conn) {
	p.mu.Lock()
	p.conns[c] = struct{}{}
	p.mu.Unlock()
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}
