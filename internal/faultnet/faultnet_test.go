package faultnet

import (
	"bufio"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// startEcho runs a line-echo TCP server and returns its address plus a
// closer.
func startEcho(t *testing.T) (string, func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer conn.Close()
				r := bufio.NewReader(conn)
				for {
					line, err := r.ReadString('\n')
					if err != nil {
						return
					}
					if _, err := conn.Write([]byte(line)); err != nil {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String(), func() { ln.Close(); wg.Wait() }
}

func roundTrip(t *testing.T, addr, msg string, timeout time.Duration) (string, error) {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return "", err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(timeout))
	if _, err := conn.Write([]byte(msg + "\n")); err != nil {
		return "", err
	}
	return bufio.NewReader(conn).ReadString('\n')
}

func TestPassThrough(t *testing.T) {
	addr, stop := startEcho(t)
	defer stop()
	p, err := Start("127.0.0.1:0", addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	got, err := roundTrip(t, p.Addr(), "hello", time.Second)
	if err != nil || got != "hello\n" {
		t.Fatalf("roundTrip: %q, %v", got, err)
	}
	if p.Accepted() != 1 {
		t.Errorf("accepted %d connections, want 1", p.Accepted())
	}
}

func TestRefuseFirstIsDeterministic(t *testing.T) {
	addr, stop := startEcho(t)
	defer stop()
	p, err := Start("127.0.0.1:0", addr, RefuseFirst(3))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	failures := 0
	for i := 0; i < 5; i++ {
		if _, err := roundTrip(t, p.Addr(), "x", time.Second); err != nil {
			failures++
		}
	}
	if failures != 3 {
		t.Errorf("schedule refused %d connections, want exactly 3", failures)
	}
}

func TestLatencyInjection(t *testing.T) {
	addr, stop := startEcho(t)
	defer stop()
	p, err := Start("127.0.0.1:0", addr, func(int) Plan {
		return Plan{Latency: 50 * time.Millisecond}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	start := time.Now()
	if _, err := roundTrip(t, p.Addr(), "slow", 2*time.Second); err != nil {
		t.Fatal(err)
	}
	// 50ms each way.
	if elapsed := time.Since(start); elapsed < 90*time.Millisecond {
		t.Errorf("latency not injected: round trip took %v", elapsed)
	}
}

func TestOneWayPartitionAndHeal(t *testing.T) {
	addr, stop := startEcho(t)
	defer stop()
	p, err := Start("127.0.0.1:0", addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.Partition(ClientToServer)
	if _, err := roundTrip(t, p.Addr(), "lost", 200*time.Millisecond); err == nil {
		t.Error("request crossed a client->server partition")
	}
	p.Heal()
	got, err := roundTrip(t, p.Addr(), "back", time.Second)
	if err != nil || got != "back\n" {
		t.Fatalf("after heal: %q, %v", got, err)
	}
}

func TestBlackholeTimesOutClient(t *testing.T) {
	addr, stop := startEcho(t)
	defer stop()
	p, err := Start("127.0.0.1:0", addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.SetBlackhole(true)
	start := time.Now()
	if _, err := roundTrip(t, p.Addr(), "void", 150*time.Millisecond); err == nil {
		t.Fatal("blackholed connection produced a reply")
	}
	if elapsed := time.Since(start); elapsed < 100*time.Millisecond {
		t.Errorf("client failed fast (%v); blackhole must force a timeout", elapsed)
	}
	p.SetBlackhole(false)
	if _, err := roundTrip(t, p.Addr(), "alive", time.Second); err != nil {
		t.Fatalf("after blackhole lifted: %v", err)
	}
}

func TestTruncateReply(t *testing.T) {
	addr, stop := startEcho(t)
	defer stop()
	p, err := Start("127.0.0.1:0", addr, func(int) Plan {
		return Plan{TruncateReplyAfter: 4}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	got, err := roundTrip(t, p.Addr(), strings.Repeat("z", 64), time.Second)
	if err == nil {
		t.Fatalf("truncated reply parsed as a full line: %q", got)
	}
	if len(got) > 4 {
		t.Errorf("received %d bytes through a 4-byte truncation", len(got))
	}
}

func TestSetTargetRetargetsNewConnections(t *testing.T) {
	addrA, stopA := startEcho(t)
	defer stopA()
	p, err := Start("127.0.0.1:0", addrA, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, err := roundTrip(t, p.Addr(), "a", time.Second); err != nil {
		t.Fatal(err)
	}
	stopA() // backend "crashes"
	addrB, stopB := startEcho(t)
	defer stopB()
	p.SetTarget(addrB) // backend "restarts" on a new port
	got, err := roundTrip(t, p.Addr(), "b", time.Second)
	if err != nil || got != "b\n" {
		t.Fatalf("after retarget: %q, %v", got, err)
	}
}

func TestStartRejectsEmptyTarget(t *testing.T) {
	if _, err := Start("127.0.0.1:0", "", nil); err == nil {
		t.Error("empty target accepted")
	}
}
