package experiments

import (
	"fmt"
	"math/rand"

	"github.com/qamarket/qamarket/internal/metrics"
	"github.com/qamarket/qamarket/internal/workload"
)

// Figure3Result is the example sinusoid workload plot: queries entering
// the system per half second, one series per query class.
type Figure3Result struct {
	Q1PerHalfSecond []int
	Q2PerHalfSecond []int
}

// Figure3 generates the paper's example workload (0.05 Hz sinusoids,
// Q1 peak twice Q2's, 900° phase difference) and buckets arrivals per
// half second.
func Figure3(s Scale) (Figure3Result, error) {
	f, err := newTwoClassFixture(s)
	if err != nil {
		return Figure3Result{}, err
	}
	rng := rand.New(rand.NewSource(s.Seed + 100))
	durationMs := int64(s.DurationS) * 1000
	as := f.sinusoidArrivals(s, 0.05, 0.9, durationMs, rng)
	var q1, q2 []workload.Arrival
	for _, a := range as {
		if a.Class == 0 {
			q1 = append(q1, a)
		} else {
			q2 = append(q2, a)
		}
	}
	return Figure3Result{
		Q1PerHalfSecond: workload.HalfSecondCounts(q1, durationMs),
		Q2PerHalfSecond: workload.HalfSecondCounts(q2, durationMs),
	}, nil
}

// Figure4Result reports the normalized average query response time of
// every mechanism under the 0.05 Hz sinusoid with peak load slightly
// below system capacity (normalized by QA-NT's mean: 1.0 = QA-NT).
type Figure4Result struct {
	Normalized map[string]float64
	MeanMs     map[string]float64
}

// Figure4 runs all six mechanisms over the same arrival stream.
func Figure4(s Scale) (Figure4Result, error) {
	f, err := newTwoClassFixture(s)
	if err != nil {
		return Figure4Result{}, err
	}
	rng := rand.New(rand.NewSource(s.Seed + 200))
	durationMs := int64(s.DurationS) * 1000
	// Peak slightly below capacity means average load around 1/π of
	// peak; the paper describes "peek load slightly below total system
	// capacity".
	peakFrac := 0.95
	as := f.sinusoidArrivals(s, 0.05, peakFrac/3.1416, durationMs, rng)
	// All six mechanisms replay the same arrival stream; each run is an
	// independent task on the pool.
	names := mechanismNames
	perName := make([]float64, len(names))
	err = forEach(s.workers(), len(names), func(i int) error {
		sum, _, err := runOne(s, f.cat, f.templates, mechanisms(s.Seed)[names[i]], as)
		if err != nil {
			return fmt.Errorf("figure 4 (%s): %w", names[i], err)
		}
		perName[i] = sum.MeanRespMs
		return nil
	})
	if err != nil {
		return Figure4Result{}, err
	}
	means := make(map[string]float64, len(names))
	for i, name := range names {
		means[name] = perName[i]
	}
	norm, err := metrics.Normalize(means, "qa-nt")
	if err != nil {
		return Figure4Result{}, err
	}
	return Figure4Result{Normalized: norm, MeanMs: means}, nil
}

// Figure5aResult is Greedy's normalized response time (vs QA-NT) as
// average workload varies from 10% to 300% of system capacity.
type Figure5aResult struct {
	Points []Point // X = load fraction of capacity, Y = greedy/qa-nt
}

// Figure5aLoads are the sweep points (fraction of total capacity).
var Figure5aLoads = []float64{0.10, 0.25, 0.50, 0.75, 1.00, 1.50, 2.00, 2.50, 3.00}

// Figure5a sweeps the workload amplitude.
func Figure5a(s Scale) (Figure5aResult, error) {
	f, err := newTwoClassFixture(s)
	if err != nil {
		return Figure5aResult{}, err
	}
	durationMs := int64(s.DurationS) * 1000
	ys, err := ratioSweep(s, f.cat, f.templates, len(Figure5aLoads), func(i int) ([]workload.Arrival, error) {
		rng := rand.New(rand.NewSource(s.Seed + 300 + int64(i)))
		return f.sinusoidArrivals(s, 0.05, Figure5aLoads[i], durationMs, rng), nil
	})
	if err != nil {
		return Figure5aResult{}, err
	}
	var out Figure5aResult
	for i, load := range Figure5aLoads {
		out.Points = append(out.Points, Point{X: load, Y: ys[i]})
	}
	return out, nil
}

// Figure5bResult is Greedy's normalized response time as the sinusoid
// frequency varies from 0.05 Hz to 2 Hz at 80% average load.
type Figure5bResult struct {
	Points []Point // X = frequency Hz, Y = greedy/qa-nt
}

// Figure5bFreqs are the sweep points.
var Figure5bFreqs = []float64{0.05, 0.1, 0.2, 0.5, 1.0, 2.0}

// Figure5b sweeps the workload frequency.
func Figure5b(s Scale) (Figure5bResult, error) {
	f, err := newTwoClassFixture(s)
	if err != nil {
		return Figure5bResult{}, err
	}
	durationMs := int64(s.DurationS) * 1000
	ys, err := ratioSweep(s, f.cat, f.templates, len(Figure5bFreqs), func(i int) ([]workload.Arrival, error) {
		rng := rand.New(rand.NewSource(s.Seed + 400 + int64(i)))
		return f.sinusoidArrivals(s, Figure5bFreqs[i], 0.8, durationMs, rng), nil
	})
	if err != nil {
		return Figure5bResult{}, err
	}
	var out Figure5bResult
	for i, freq := range Figure5bFreqs {
		out.Points = append(out.Points, Point{X: freq, Y: ys[i]})
	}
	return out, nil
}

// Figure5cResult tracks, per half second, Q1 arrivals and the number
// of Q1 queries each mechanism completed — the load-following plot.
type Figure5cResult struct {
	Arrivals  []int
	QANTDone  []int
	GreedyDon []int
}

// Figure5c runs a near-capacity sinusoid and compares how closely each
// mechanism's Q1 completions follow the Q1 arrival curve.
func Figure5c(s Scale) (Figure5cResult, error) {
	f, err := newTwoClassFixture(s)
	if err != nil {
		return Figure5cResult{}, err
	}
	rng := rand.New(rand.NewSource(s.Seed + 500))
	durationMs := int64(s.DurationS) * 1000
	as := f.sinusoidArrivals(s, 0.05, 0.95, durationMs, rng)
	var q1 []workload.Arrival
	for _, a := range as {
		if a.Class == 0 {
			q1 = append(q1, a)
		}
	}
	horizon := durationMs + 15000 // allow queue drain past the last arrival
	series := make([][]int, 2)
	err = forEach(s.workers(), 2, func(i int) error {
		name := [...]string{"qa-nt", "greedy"}[i]
		_, col, err := runOne(s, f.cat, f.templates, mechanisms(s.Seed)[name], as)
		if err != nil {
			return err
		}
		series[i] = col.ExecutedPerBucket(500, horizon, 0)
		return nil
	})
	if err != nil {
		return Figure5cResult{}, err
	}
	qant, greedy := series[0], series[1]
	return Figure5cResult{
		Arrivals:  workload.HalfSecondCounts(q1, horizon),
		QANTDone:  qant,
		GreedyDon: greedy,
	}, nil
}

// TrackingError quantifies Figure 5c: the mean absolute difference
// between arrivals and completions per bucket (lower = mechanism
// follows the load more closely).
func (r Figure5cResult) TrackingError() (qant, greedy float64) {
	n := len(r.Arrivals)
	if len(r.QANTDone) < n {
		n = len(r.QANTDone)
	}
	if len(r.GreedyDon) < n {
		n = len(r.GreedyDon)
	}
	var sq, sg float64
	for i := 0; i < n; i++ {
		sq += absf(float64(r.Arrivals[i] - r.QANTDone[i]))
		sg += absf(float64(r.Arrivals[i] - r.GreedyDon[i]))
	}
	return sq / float64(n), sg / float64(n)
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
