package experiments

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"github.com/qamarket/qamarket/internal/cluster"
	"github.com/qamarket/qamarket/internal/engine"
	"github.com/qamarket/qamarket/internal/market"
)

// Figure7Options sizes the real-cluster experiment. The paper ran 300
// queries with uniform inter-arrival averaging 300 ms and 400 ms over
// 5 heterogeneous PCs (fastest ~1 s per query, slowest ~14 s); the
// defaults compress the time axis ~20x so the experiment finishes in
// seconds while preserving the heterogeneity ratios.
type Figure7Options struct {
	Nodes         int
	Queries       int
	Interarrivals []time.Duration // one experiment run per entry
	MsPerCostUnit float64
	PeriodMs      int64
	Slowdowns     []float64 // per-node heterogeneity, len == Nodes
	// IOSlowdowns and CPUSlowdowns, when set, give each node independent
	// disk and processor factors (comparative advantage between scan-
	// heavy and join-heavy query classes). When nil, Slowdowns applies
	// uniformly.
	IOSlowdowns  []float64
	CPUSlowdowns []float64
	WirelessNode int // index of the node behind the slow link, -1 = none
	LinkLatency  time.Duration
	// ExecNoise is the per-query execution-time variability (fraction),
	// modeling the buffer effects that made the paper's EXPLAIN
	// estimates unreliable.
	ExecNoise float64
	// TemplatesPerJoin controls workload diversity: this many templates
	// are generated at each join count 0–3.
	TemplatesPerJoin int
	// ActivationThreshold, when positive, enables the Section 5.1
	// deployment mode: nodes track prices continuously but restrict
	// supply only once a class price exceeds the threshold (their local
	// overload signal).
	ActivationThreshold float64
	// ExplainFraction is the planning latency as a fraction of the
	// query's execution time on the node (the paper's slow PC needed up
	// to 3 s per EXPLAIN).
	ExplainFraction float64
	// Driver names the storage executor every node runs ("", "row",
	// "vector", "mock:row", "mock:vector") — the -driver flag.
	Driver string
	Seed   int64
}

// DefaultFigure7 mirrors the paper's setup, time-compressed.
func DefaultFigure7() Figure7Options {
	return Figure7Options{
		Nodes:   5,
		Queries: 300,
		// The paper's 300/400 ms inter-arrivals kept the federation in
		// mild overload; these gaps preserve that regime on the
		// compressed time axis.
		Interarrivals:       []time.Duration{40 * time.Millisecond, 50 * time.Millisecond},
		MsPerCostUnit:       0.03,
		PeriodMs:            100,
		Slowdowns:           []float64{1, 2, 4, 8, 14},
		IOSlowdowns:         []float64{1, 6, 2, 3, 14},
		CPUSlowdowns:        []float64{1, 2, 6, 8, 3},
		WirelessNode:        4,
		LinkLatency:         5 * time.Millisecond,
		ExecNoise:           0.5,
		TemplatesPerJoin:    4,
		ActivationThreshold: 2.0,
		ExplainFraction:     0.15,
		Seed:                1,
	}
}

// Figure7Run is one bar group of Figure 7.
type Figure7Run struct {
	Interarrival time.Duration
	Mechanism    cluster.Mechanism
	MeanAssignMs float64 // time to pick the executing node
	MeanTotalMs  float64 // assignment + queue + execution
	MeanExecMs   float64 // pure execution time at the chosen node
	Completed    int
	Failed       int
	// PerNode counts executed queries per node (allocation spread).
	PerNode []int
}

// Figure7Result is both experiment runs for both mechanisms.
type Figure7Result struct {
	Runs []Figure7Run
}

// Figure7 stands up a real TCP federation (one sqldb per node) and
// replays the paper's workload under Greedy and QA-NT.
func Figure7(opt Figure7Options) (Figure7Result, error) {
	if opt.Nodes <= 0 || len(opt.Slowdowns) != opt.Nodes {
		return Figure7Result{}, fmt.Errorf("experiments: figure 7 needs %d slowdowns", opt.Nodes)
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	p := cluster.Figure7Params()
	p.Nodes = opt.Nodes
	p.RowsPerTable = 200
	ds, err := cluster.GenerateDataset(p, rng)
	if err != nil {
		return Figure7Result{}, err
	}
	// Mixed join counts give the workload the cost diversity of the
	// paper's star queries (~1 s on the fastest PC, ~14 s on the
	// slowest): the market exploits it by steering cheap classes to
	// slow nodes.
	perJoin := opt.TemplatesPerJoin
	if perJoin <= 0 {
		perJoin = 8
	}
	var templates []cluster.QueryTemplate
	for _, joins := range []int{0, 1, 2, 3} {
		ts, err := ds.GenerateTemplates(perJoin, joins, rng)
		if err != nil {
			return Figure7Result{}, err
		}
		templates = append(templates, ts...)
	}
	var result Figure7Result
	for _, mech := range []cluster.Mechanism{cluster.MechGreedy, cluster.MechQANT} {
		for _, gap := range opt.Interarrivals {
			run, err := figure7Run(opt, ds, templates, mech, gap)
			if err != nil {
				return Figure7Result{}, err
			}
			result.Runs = append(result.Runs, run)
		}
	}
	return result, nil
}

func figure7Run(opt Figure7Options, ds *cluster.Dataset, templates []cluster.QueryTemplate, mech cluster.Mechanism, gap time.Duration) (Figure7Run, error) {
	// Fresh servers per run so market state and history don't leak
	// between mechanisms.
	addrs := make([]string, opt.Nodes)
	nodes := make([]*cluster.Node, opt.Nodes)
	for i := 0; i < opt.Nodes; i++ {
		mcfg := market.DefaultConfig(1)
		mcfg.ActivationThreshold = opt.ActivationThreshold
		cfg := cluster.NodeConfig{
			DB:              ds.DBs[i],
			Slowdown:        opt.Slowdowns[i],
			MsPerCostUnit:   opt.MsPerCostUnit,
			PeriodMs:        opt.PeriodMs,
			Market:          mcfg,
			ExecNoise:       opt.ExecNoise,
			NoiseSeed:       opt.Seed + int64(i),
			ExplainFraction: opt.ExplainFraction,
		}
		if len(opt.IOSlowdowns) == opt.Nodes {
			cfg.IOSlowdown = opt.IOSlowdowns[i]
		}
		if len(opt.CPUSlowdowns) == opt.Nodes {
			cfg.CPUSlowdown = opt.CPUSlowdowns[i]
		}
		if i == opt.WirelessNode {
			cfg.LinkLatency = opt.LinkLatency
		}
		drv, err := engine.SelectDriver(opt.Driver, ds.DBs[i])
		if err != nil {
			return Figure7Run{}, err
		}
		cfg.Driver = drv
		n, err := cluster.StartNode("127.0.0.1:0", cfg)
		if err != nil {
			return Figure7Run{}, err
		}
		nodes[i] = n
		addrs[i] = n.Addr()
	}
	defer func() {
		for _, n := range nodes {
			n.Close()
		}
	}()
	client, err := cluster.NewClient(cluster.ClientConfig{
		Addrs:      addrs,
		Mechanism:  mech,
		PeriodMs:   opt.PeriodMs,
		MaxRetries: 200,
		Timeout:    10 * time.Second,
	})
	if err != nil {
		return Figure7Run{}, err
	}
	defer client.Close()
	rng := rand.New(rand.NewSource(opt.Seed + int64(gap)))
	outcomes := make([]cluster.Outcome, opt.Queries)
	var wg sync.WaitGroup
	for qi := 0; qi < opt.Queries; qi++ {
		// Uniform inter-arrival with the requested mean (paper: uniform
		// distribution, 300/400 ms average).
		time.Sleep(time.Duration(rng.Int63n(int64(2 * gap))))
		wg.Add(1)
		go func(qi int, sql string) {
			defer wg.Done()
			outcomes[qi] = client.Run(int64(qi), sql)
		}(qi, templates[rng.Intn(len(templates))].Instantiate(rng))
	}
	wg.Wait()
	run := Figure7Run{Interarrival: gap, Mechanism: mech, PerNode: make([]int, opt.Nodes)}
	// Outcomes name nodes by stable membership ID; map them back onto
	// the figure's positional axes.
	nodeIndex := make(map[string]int, opt.Nodes)
	for i, n := range nodes {
		nodeIndex[n.ID()] = i
	}
	var assign, total, exec float64
	for _, out := range outcomes {
		if out.Err != nil {
			run.Failed++
			continue
		}
		run.Completed++
		assign += out.AssignMs
		total += out.TotalMs
		exec += out.ExecMs
		if i, ok := nodeIndex[out.Node]; ok {
			run.PerNode[i]++
		}
	}
	if run.Completed > 0 {
		run.MeanAssignMs = assign / float64(run.Completed)
		run.MeanTotalMs = total / float64(run.Completed)
		run.MeanExecMs = exec / float64(run.Completed)
	}
	return run, nil
}
