package experiments

import (
	"github.com/qamarket/qamarket/internal/economics"
	"github.com/qamarket/qamarket/internal/vector"
)

// Figure1Result re-enacts the paper's motivating example (Figure 1):
// two nodes, workload of 2×q1 + 6×q2, comparing the greedy
// load-balancing assignment (LB) against the throughput-optimal one
// (QA). The paper reports LB averaging 662 ms per query versus QA's
// 431 ms, with LB prolonging the overload period by 50% (N1 idle after
// 900 ms instead of 600 ms).
type Figure1Result struct {
	LBMeanMs float64 // 662.5 in the paper
	QAMeanMs float64 // 431.25
	// LBBusyMs / QABusyMs report when node N1 goes idle under each
	// mechanism (the overload-duration comparison).
	LBBusyN1Ms float64 // 900
	QABusyN1Ms float64 // 600
	LBBusyN2Ms float64 // 950
	QABusyN2Ms float64 // 900
}

// figure1Cost are the per-node execution times of q1 and q2 (ms).
var figure1Cost = [2][2]float64{
	{400, 100}, // N1
	{450, 500}, // N2
}

// Figure1 replays the example's two allocation strategies and computes
// per-query response times analytically (sequential execution per
// node, all queries arriving at t=0).
func Figure1() Figure1Result {
	// LB assignment from the paper's narrative: q1→N1, q1→N2, then
	// q2 → N1, N1, N1, N2, N1, N1.
	lbAssign := [][2]int{ // {class, node}
		{0, 0}, {0, 1}, {1, 0}, {1, 0}, {1, 0}, {1, 1}, {1, 0}, {1, 0},
	}
	// QA assignment: N1 takes only q2 (all six), N2 takes both q1.
	qaAssign := [][2]int{
		{0, 1}, {0, 1}, {1, 0}, {1, 0}, {1, 0}, {1, 0}, {1, 0}, {1, 0},
	}
	lbMean, lbBusy := replay(lbAssign)
	qaMean, qaBusy := replay(qaAssign)
	return Figure1Result{
		LBMeanMs:   lbMean,
		QAMeanMs:   qaMean,
		LBBusyN1Ms: lbBusy[0],
		QABusyN1Ms: qaBusy[0],
		LBBusyN2Ms: lbBusy[1],
		QABusyN2Ms: qaBusy[1],
	}
}

// replay computes the mean response time and per-node busy horizon of
// a fixed assignment, FIFO per node.
func replay(assign [][2]int) (mean float64, busy [2]float64) {
	var sum float64
	for _, a := range assign {
		class, node := a[0], a[1]
		busy[node] += figure1Cost[node][class]
		sum += busy[node] // response = completion (arrival at t=0)
	}
	return sum / float64(len(assign)), busy
}

// Figure2Result reproduces the aggregate demand/supply/consumption
// analysis of Figure 2: the first 500 ms period of the example.
type Figure2Result struct {
	Demand    vector.Quantity // aggregate d = (2, 6)
	LBSupply  vector.Quantity // (2, 1): 3 queries consumed
	QASupply  vector.Quantity // (1, 5): 6 queries consumed
	LBExcess  vector.Quantity // z under LB
	QAExcess  vector.Quantity // z under QA
	LBPareto  bool            // false in the paper
	QAPareto  bool            // true
	Dominates bool            // QA Pareto-dominates LB
}

// Figure2 verifies the vectors with the economics machinery rather
// than hardcoding the paper's conclusions.
func Figure2() Figure2Result {
	demand := []vector.Quantity{{1, 6}, {1, 0}}
	sets := []economics.EnumerableSupplySet{
		economics.TimeBudgetSupplySet{Cost: figure1Cost[0][:], Budget: 500},
		economics.TimeBudgetSupplySet{Cost: figure1Cost[1][:], Budget: 500},
	}
	prefs := []economics.Preference{economics.ThroughputPreference, economics.ThroughputPreference}

	lb := economics.Allocation{
		Supply:      []vector.Quantity{{1, 1}, {1, 0}},
		Consumption: []vector.Quantity{{1, 1}, {1, 0}},
	}
	qa := economics.Allocation{
		Supply:      []vector.Quantity{{0, 5}, {1, 0}},
		Consumption: []vector.Quantity{{0, 5}, {1, 0}},
	}
	res := Figure2Result{
		Demand:   vector.Sum(demand),
		LBSupply: lb.AggregateSupply(),
		QASupply: qa.AggregateSupply(),
		LBExcess: economics.ExcessDemand(demand, lb.Supply),
		QAExcess: economics.ExcessDemand(demand, qa.Supply),
		LBPareto: economics.IsParetoOptimal(lb, demand, sets, prefs),
		QAPareto: economics.IsParetoOptimal(qa, demand, sets, prefs),
	}
	res.Dominates = economics.Dominates(qa, lb, prefs)
	return res
}
