package experiments

import (
	"math"
	"testing"
)

func TestFigure1MatchesPaper(t *testing.T) {
	r := Figure1()
	if math.Abs(r.LBMeanMs-662.5) > 0.01 {
		t.Errorf("LB mean = %.2f, paper reports 662.5", r.LBMeanMs)
	}
	if math.Abs(r.QAMeanMs-431.25) > 0.01 {
		t.Errorf("QA mean = %.2f, paper reports 431.25", r.QAMeanMs)
	}
	if r.LBBusyN1Ms != 900 || r.QABusyN1Ms != 600 {
		t.Errorf("N1 busy: LB %.0f (want 900), QA %.0f (want 600)", r.LBBusyN1Ms, r.QABusyN1Ms)
	}
	if r.LBBusyN2Ms != 950 || r.QABusyN2Ms != 900 {
		t.Errorf("N2 busy: LB %.0f (want 950), QA %.0f (want 900)", r.LBBusyN2Ms, r.QABusyN2Ms)
	}
}

func TestFigure2MatchesPaper(t *testing.T) {
	r := Figure2()
	if r.Demand.String() != "(2, 6)" {
		t.Errorf("aggregate demand %v, want (2, 6)", r.Demand)
	}
	if r.LBSupply.Total() != 3 || r.QASupply.Total() != 6 {
		t.Errorf("supply totals LB=%d QA=%d, want 3 and 6", r.LBSupply.Total(), r.QASupply.Total())
	}
	if r.LBPareto {
		t.Error("LB allocation must not be Pareto optimal")
	}
	if !r.QAPareto {
		t.Error("QA allocation must be Pareto optimal")
	}
	if !r.Dominates {
		t.Error("QA must Pareto-dominate LB")
	}
	// Excess demand shrinks under QA.
	if qa, lb := r.QAExcess.Total(), r.LBExcess.Total(); qa >= lb {
		t.Errorf("QA excess %d not below LB excess %d", qa, lb)
	}
}

func TestFigure3Shape(t *testing.T) {
	s := Quick()
	r, err := Figure3(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Q1PerHalfSecond) != s.DurationS*2 {
		t.Fatalf("buckets = %d, want %d", len(r.Q1PerHalfSecond), s.DurationS*2)
	}
	peak1, peak2, total1, total2 := 0, 0, 0, 0
	for i := range r.Q1PerHalfSecond {
		if r.Q1PerHalfSecond[i] > peak1 {
			peak1 = r.Q1PerHalfSecond[i]
		}
		if r.Q2PerHalfSecond[i] > peak2 {
			peak2 = r.Q2PerHalfSecond[i]
		}
		total1 += r.Q1PerHalfSecond[i]
		total2 += r.Q2PerHalfSecond[i]
	}
	// Q1's peak arrival rate is twice Q2's.
	ratio := float64(total1) / float64(total2)
	if ratio < 1.5 || ratio > 2.6 {
		t.Errorf("Q1/Q2 volume ratio %.2f, want ~2", ratio)
	}
	// The 900° phase shift separates the crests: during Q1's first
	// crest, Q2 must be near zero.
	crest := indexOfMax(r.Q1PerHalfSecond[:20])
	if r.Q2PerHalfSecond[crest] > peak2/3 {
		t.Errorf("phase shift missing: Q2=%d at Q1's crest (Q2 peak %d)", r.Q2PerHalfSecond[crest], peak2)
	}
}

func indexOfMax(xs []int) int {
	best, at := -1, 0
	for i, v := range xs {
		if v > best {
			best, at = v, i
		}
	}
	return at
}

func TestFigure4Ordering(t *testing.T) {
	s := Quick()
	r, err := Figure4(s)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("figure 4 normalized: %v", r.Normalized)
	if r.Normalized["qa-nt"] != 1 {
		t.Fatalf("normalization broken: qa-nt = %g", r.Normalized["qa-nt"])
	}
	// The paper's ordering: QA-NT and Greedy clearly beat the load
	// balancers; random and round-robin are worst.
	for _, lb := range []string{"random", "round-robin"} {
		if r.Normalized[lb] < 1.2 {
			t.Errorf("%s normalized %.2f, expected clearly above QA-NT", lb, r.Normalized[lb])
		}
		if r.Normalized[lb] < r.Normalized["greedy"] {
			t.Errorf("%s (%.2f) should be worse than greedy (%.2f)", lb, r.Normalized[lb], r.Normalized["greedy"])
		}
	}
}

func TestFigure5aCrossover(t *testing.T) {
	s := Quick()
	r, err := Figure5a(s)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("figure 5a: %v", r.Points)
	if len(r.Points) != len(Figure5aLoads) {
		t.Fatalf("points = %d", len(r.Points))
	}
	// Below ~75% capacity Greedy is competitive (ratio can dip below
	// 1); above it QA-NT must win (ratio > 1).
	var low, high float64
	var nLow, nHigh int
	for _, p := range r.Points {
		if p.X <= 0.5 {
			low += p.Y
			nLow++
		}
		if p.X >= 1.5 {
			high += p.Y
			nHigh++
		}
	}
	low /= float64(nLow)
	high /= float64(nHigh)
	if high <= 1.0 {
		t.Errorf("overload mean ratio %.3f: QA-NT should win above capacity", high)
	}
	if high <= low {
		t.Errorf("QA-NT advantage should grow with load: low %.3f, high %.3f", low, high)
	}
	// The paper's small-load regime: Greedy within ~±15% of QA-NT.
	if low < 0.7 || low > 1.3 {
		t.Errorf("low-load ratio %.3f far from parity", low)
	}
}

func TestFigure5bImprovementShrinksWithFrequency(t *testing.T) {
	s := Quick()
	r, err := Figure5b(s)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("figure 5b: %v", r.Points)
	if len(r.Points) != len(Figure5bFreqs) {
		t.Fatalf("points = %d", len(r.Points))
	}
	first := r.Points[0].Y
	last := r.Points[len(r.Points)-1].Y
	// At 0.05 Hz QA-NT has time to track the load; at 2 Hz the period
	// undersamples the wave and the advantage shrinks.
	if first < 1.0 {
		t.Errorf("QA-NT should win at 0.05 Hz: ratio %.3f", first)
	}
	if last > first {
		t.Errorf("advantage should shrink with frequency: %.3f -> %.3f", first, last)
	}
}

func TestFigure5cTracking(t *testing.T) {
	s := Quick()
	r, err := Figure5c(s)
	if err != nil {
		t.Fatal(err)
	}
	qant, greedy := r.TrackingError()
	t.Logf("figure 5c tracking error: qa-nt %.2f, greedy %.2f", qant, greedy)
	if qant > greedy {
		t.Errorf("QA-NT tracking error %.2f worse than greedy %.2f", qant, greedy)
	}
}

func TestFigure6Shape(t *testing.T) {
	s := Quick()
	r, err := Figure6(s)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("figure 6: %v", r.Points)
	if len(r.Points) != len(Figure6Gaps) {
		t.Fatalf("points = %d", len(r.Points))
	}
	// Overloaded regime (small gaps): QA-NT wins.
	mid := r.Points[2] // 1,000 ms gap
	if mid.Y <= 1.0 {
		t.Errorf("QA-NT should win under load: ratio %.3f at %g ms", mid.Y, mid.X)
	}
	// Unloaded regime (large gaps): no meaningful gain.
	last := r.Points[len(r.Points)-1]
	if last.Y > 1.25 || last.Y < 0.75 {
		t.Errorf("unloaded ratio %.3f should be near parity", last.Y)
	}
}

func TestTable2RowsMatchPaper(t *testing.T) {
	rows := Table2()
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	byName := map[string]Table2Row{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	if !byName["qa-nt"].Traits.RespectsAutonomy || byName["qa-nt"].Traits.ConflictsWithQueryOpt {
		t.Error("QA-NT row wrong")
	}
	if byName["markov"].Traits.WorkloadType != "Static" || byName["markov"].Traits.Performance != "Excellent" {
		t.Error("Markov row wrong")
	}
	if byName["greedy"].Traits.RespectsAutonomy {
		t.Error("greedy must violate autonomy")
	}
	out := RenderTable2()
	if len(out) == 0 {
		t.Error("RenderTable2 empty")
	}
}

func TestTable3StatsAtQuickScale(t *testing.T) {
	s := Quick()
	st, err := Table3(s)
	if err != nil {
		t.Fatal(err)
	}
	if st.Nodes != s.Nodes || st.Relations != s.Relations || st.Classes != s.Classes {
		t.Errorf("shape: %+v", st)
	}
	if st.MeanCPUGHz < 1.8 || st.MeanCPUGHz > 2.8 {
		t.Errorf("mean CPU %.2f, want ~2.3", st.MeanCPUGHz)
	}
	if st.MeanRelationMB < 8 || st.MeanRelationMB > 13 {
		t.Errorf("mean relation size %.1f, want ~10.5", st.MeanRelationMB)
	}
	if math.Abs(st.MeanBestExecMs-2000) > 100 {
		t.Errorf("mean best exec %.0f ms, want ~2000", st.MeanBestExecMs)
	}
}
