package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/qamarket/qamarket/internal/cluster"
)

// ChurnOptions sizes the elastic-membership experiment: a founding
// federation of slow nodes serves a workload, a faster node joins the
// live market through gossip, and the same workload is replayed. The
// allocation mass shifting onto the joiner — with no client restart —
// is the market absorbing new supply, the elasticity the paper's
// autonomic framing promises (nodes "can enter and leave the market at
// will").
type ChurnOptions struct {
	// Nodes is the founding federation size.
	Nodes int
	// QueriesPerPhase is the workload length replayed before and after
	// the join.
	QueriesPerPhase int
	// FounderSlowdown and JoinerSlowdown set the speed gap the market
	// should exploit.
	FounderSlowdown, JoinerSlowdown float64
	MsPerCostUnit                   float64
	PeriodMs                        int64
	// GossipPeriodMs compresses the membership clock like PeriodMs
	// compresses the market clock.
	GossipPeriodMs int64
	Mechanism      cluster.Mechanism
	Seed           int64
}

// DefaultChurn keeps the experiment in the seconds range.
func DefaultChurn() ChurnOptions {
	return ChurnOptions{
		Nodes:           3,
		QueriesPerPhase: 30,
		FounderSlowdown: 4,
		JoinerSlowdown:  1,
		MsPerCostUnit:   0.01,
		PeriodMs:        25,
		GossipPeriodMs:  15,
		Mechanism:       cluster.MechGreedy,
		Seed:            17,
	}
}

// ChurnResult reports the allocation spread around the join.
type ChurnResult struct {
	// PrePerNode and PostPerNode count completed allocations per stable
	// node ID in each phase.
	PrePerNode, PostPerNode map[string]int
	// JoinerID names the late joiner.
	JoinerID string
	// JoinerShare is the joiner's fraction of phase-two completions.
	JoinerShare float64
	// DiscoveryMs is how long the (already running) client took to see
	// the joiner alive in its gossip-fed view.
	DiscoveryMs                 float64
	PreCompleted, PostCompleted int
}

// Churn runs the elastic-entry experiment over a real TCP federation.
func Churn(opt ChurnOptions) (ChurnResult, error) {
	if opt.Nodes <= 0 {
		return ChurnResult{}, fmt.Errorf("experiments: churn needs at least one founding node")
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	ds, err := cluster.GenerateDataset(cluster.DatasetParams{
		Nodes: opt.Nodes + 1, Tables: 6, Views: 10, RowsPerTable: 60,
		MinCopies: opt.Nodes, MaxCopies: opt.Nodes + 1,
	}, rng)
	if err != nil {
		return ChurnResult{}, err
	}
	templates, err := ds.GenerateTemplates(4, 1, rng)
	if err != nil {
		return ChurnResult{}, err
	}

	start := func(i int, id string, seeds []string, slowdown float64) (*cluster.Node, error) {
		return cluster.StartNode("127.0.0.1:0", cluster.NodeConfig{
			DB:             ds.DBs[i],
			Slowdown:       slowdown,
			MsPerCostUnit:  opt.MsPerCostUnit,
			PeriodMs:       opt.PeriodMs,
			NodeID:         id,
			Seeds:          seeds,
			GossipPeriodMs: opt.GossipPeriodMs,
			MembershipSeed: opt.Seed + int64(i),
		})
	}
	var nodes []*cluster.Node
	defer func() {
		for _, n := range nodes {
			n.Close()
		}
	}()
	var seeds []string
	for i := 0; i < opt.Nodes; i++ {
		n, err := start(i, fmt.Sprintf("f%02d", i), seeds, opt.FounderSlowdown)
		if err != nil {
			return ChurnResult{}, err
		}
		nodes = append(nodes, n)
		if len(seeds) == 0 {
			seeds = []string{n.Addr()}
		}
	}

	client, err := cluster.NewClient(cluster.ClientConfig{
		Addrs:       seeds, // one seed: the rest arrives by gossip
		Mechanism:   opt.Mechanism,
		PeriodMs:    opt.PeriodMs,
		MaxRetries:  100,
		Timeout:     5 * time.Second,
		ViewRefresh: time.Duration(opt.GossipPeriodMs) * time.Millisecond,
	})
	if err != nil {
		return ChurnResult{}, err
	}
	defer client.Close()
	if err := awaitLive(client, opt.Nodes, 5*time.Second); err != nil {
		return ChurnResult{}, err
	}

	res := ChurnResult{
		PrePerNode:  make(map[string]int),
		PostPerNode: make(map[string]int),
		JoinerID:    "joiner",
	}
	phase := func(base int, perNode map[string]int) int {
		completed := 0
		for qi := 0; qi < opt.QueriesPerPhase; qi++ {
			out := client.Run(int64(base+qi), templates[qi%len(templates)].Instantiate(rng))
			if out.Err != nil {
				continue
			}
			completed++
			perNode[out.Node]++
		}
		return completed
	}
	res.PreCompleted = phase(0, res.PrePerNode)

	// Elastic entry: the faster node announces itself to one seed and
	// rides gossip from there into the running client's view.
	joined := time.Now()
	joiner, err := start(opt.Nodes, res.JoinerID, seeds, opt.JoinerSlowdown)
	if err != nil {
		return ChurnResult{}, err
	}
	nodes = append(nodes, joiner)
	if err := awaitLive(client, opt.Nodes+1, 5*time.Second); err != nil {
		return ChurnResult{}, err
	}
	res.DiscoveryMs = float64(time.Since(joined)) / float64(time.Millisecond)

	res.PostCompleted = phase(1000, res.PostPerNode)
	if res.PostCompleted > 0 {
		res.JoinerShare = float64(res.PostPerNode[res.JoinerID]) / float64(res.PostCompleted)
	}
	return res, nil
}

// awaitLive polls until the client's view holds want live members.
func awaitLive(c *cluster.Client, want int, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	for time.Now().Before(deadline) {
		live := 0
		for _, m := range c.Members() {
			if m.State == "alive" || m.State == "suspect" {
				live++
			}
		}
		if live >= want {
			return nil
		}
		time.Sleep(5 * time.Millisecond)
	}
	return fmt.Errorf("experiments: client view never reached %d live members", want)
}
