package experiments

import "testing"

// TestChurnShiftsAllocationOntoJoiner runs the elastic-entry experiment
// at test scale: the fast late joiner must be discovered by the running
// client and take a meaningful share of the post-join workload.
func TestChurnShiftsAllocationOntoJoiner(t *testing.T) {
	opt := DefaultChurn()
	opt.QueriesPerPhase = 16
	res, err := Churn(opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.PreCompleted == 0 || res.PostCompleted == 0 {
		t.Fatalf("phases completed %d/%d queries", res.PreCompleted, res.PostCompleted)
	}
	if got := res.PrePerNode[res.JoinerID]; got != 0 {
		t.Errorf("joiner credited with %d pre-join allocations", got)
	}
	if res.PostPerNode[res.JoinerID] == 0 {
		t.Errorf("no allocation shifted onto the joiner: %v", res.PostPerNode)
	}
	if res.JoinerShare <= 0 {
		t.Errorf("joiner share = %g", res.JoinerShare)
	}
	if res.DiscoveryMs <= 0 || res.DiscoveryMs > 5000 {
		t.Errorf("implausible discovery time %gms", res.DiscoveryMs)
	}
	t.Logf("joiner took %.0f%% of post-join allocations, discovered in %.0fms",
		100*res.JoinerShare, res.DiscoveryMs)
}

func TestChurnRejectsBadOptions(t *testing.T) {
	if _, err := Churn(ChurnOptions{}); err == nil {
		t.Error("zero-node churn accepted")
	}
}
