// Package experiments regenerates every table and figure of the
// paper's evaluation (Section 5). Each FigureN/TableN function runs the
// corresponding experiment on the simulator (or the real TCP cluster
// for Figure 7) and returns the series the paper plots; cmd/qabench
// prints them and EXPERIMENTS.md records paper-vs-measured.
//
// Experiments accept a Scale so tests and benches can run a reduced
// federation quickly while cmd/qabench -paper reproduces the full
// Table 3 setup (100 nodes, 1,000 relations, 10,000 queries).
package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/qamarket/qamarket/internal/alloc"
	"github.com/qamarket/qamarket/internal/catalog"
	"github.com/qamarket/qamarket/internal/costmodel"
	"github.com/qamarket/qamarket/internal/market"
	"github.com/qamarket/qamarket/internal/metrics"
	"github.com/qamarket/qamarket/internal/sim"
	"github.com/qamarket/qamarket/internal/workload"
)

// Scale sizes an experiment.
type Scale struct {
	Nodes     int   // federation size (paper: 100)
	Relations int   // catalog size (paper: 1,000)
	Queries   int   // Zipf workload size (paper: 10,000)
	Classes   int   // Zipf class universe (paper: 100)
	MaxJoins  int   // joins per query upper bound (paper: 49)
	DurationS int   // sinusoid experiment length in seconds
	Seed      int64 // master RNG seed
	PeriodMs  int64 // allocation period T (paper: 500)
	// Parallel is the worker-pool width used to fan a figure's
	// independent sweep points across goroutines: 0 means GOMAXPROCS,
	// 1 strictly sequential. Any width produces byte-identical series
	// because every sweep point's RNG seed is derived from Seed alone.
	Parallel int
}

// Quick is the reduced scale used by tests and benches (seconds per
// experiment instead of minutes).
func Quick() Scale {
	return Scale{
		Nodes: 24, Relations: 150, Queries: 1200, Classes: 25, MaxJoins: 6,
		DurationS: 40, Seed: 1, PeriodMs: 500,
	}
}

// Paper is the full Table 3 parameterization.
func Paper() Scale {
	return Scale{
		Nodes: 100, Relations: 1000, Queries: 10000, Classes: 100, MaxJoins: 49,
		DurationS: 120, Seed: 1, PeriodMs: 500,
	}
}

// twoClassFixture builds the first experiment set's federation: query
// class Q1 (avg execution 1,000 ms) evaluable on every node, Q2 (500
// ms) evaluable on half of them.
type twoClassFixture struct {
	cat       *catalog.Catalog
	templates []costmodel.Template
	capacity  float64 // queries/second for the Q1:Q2 = 2:1 blend
}

func newTwoClassFixture(s Scale) (*twoClassFixture, error) {
	rng := rand.New(rand.NewSource(s.Seed))
	p := catalog.Table3()
	p.Nodes = s.Nodes
	p.Relations = max(2, s.Relations/10)
	p.HashJoinNodes = s.Nodes * 95 / 100
	cat, err := catalog.Generate(p, rng)
	if err != nil {
		return nil, err
	}
	// Q1's relation (0) everywhere; Q2's relation (1) on half the nodes.
	for _, n := range cat.Nodes {
		n.Holds[0] = true
		delete(n.Holds, 1)
	}
	for _, n := range cat.Nodes[:s.Nodes/2] {
		n.Holds[1] = true
	}
	ts := []costmodel.Template{
		{Class: 0, Relations: []int{0}, Selectivity: 1, Sort: true},
		{Class: 1, Relations: []int{1}, Selectivity: 1, Sort: true},
	}
	model := costmodel.New(cat)
	for i, target := range []float64{1000, 500} {
		sum, n := 0.0, 0
		for _, node := range cat.Nodes {
			if c := model.Estimate(node, ts[i]); !math.IsInf(c, 1) {
				sum += c
				n++
			}
		}
		ts[i].CostScale = target / (sum / float64(n))
	}
	capacity := sim.EstimateCapacity(cat, ts, []float64{2, 1})
	return &twoClassFixture{cat: cat, templates: ts, capacity: capacity}, nil
}

// sinusoidArrivals builds the paper's workload shape: Q1 and Q2
// sinusoids with a 900° phase difference and Q1's peak twice Q2's.
// loadFrac is the *average* system load as a fraction of capacity.
func (f *twoClassFixture) sinusoidArrivals(s Scale, freqHz, loadFrac float64, durationMs int64, rng *rand.Rand) []workload.Arrival {
	// The half-wave rectified sinusoid averages 1/π of its peak; the
	// blend splits 2:1 between Q1 and Q2.
	totalPeak := loadFrac * f.capacity * math.Pi
	q1 := workload.Sinusoid{
		Class: 0, Origin: -1, OriginCount: s.Nodes, Freq: freqHz,
		PeakRate: totalPeak * 2 / 3, PhaseDeg: 0, Duration: durationMs,
	}
	q2 := workload.Sinusoid{
		Class: 1, Origin: -1, OriginCount: s.Nodes, Freq: freqHz,
		PeakRate: totalPeak / 3, PhaseDeg: 900, Duration: durationMs,
	}
	as := append(q1.Generate(rng), q2.Generate(rng)...)
	workload.Sort(as)
	return as
}

// runOne executes one mechanism over the arrivals and returns its
// summary.
func runOne(s Scale, cat *catalog.Catalog, ts []costmodel.Template, mech alloc.Mechanism, arrivals []workload.Arrival) (metrics.Summary, *metrics.Collector, error) {
	fed, err := sim.New(sim.Config{
		Catalog: cat, Templates: ts, PeriodMs: s.PeriodMs,
	}, mech)
	if err != nil {
		return metrics.Summary{}, nil, err
	}
	col, err := fed.Run(arrivals)
	if err != nil {
		return metrics.Summary{}, nil, err
	}
	return col.Summarize(), col, nil
}

// mechanisms returns fresh instances of all six mechanisms, seeded
// deterministically.
func mechanisms(seed int64) map[string]alloc.Mechanism {
	return map[string]alloc.Mechanism{
		"qa-nt":             alloc.NewQANT(market.DefaultConfig(1)),
		"greedy":            alloc.NewGreedy(nil, 0),
		"random":            alloc.NewRandom(rand.New(rand.NewSource(seed))),
		"round-robin":       alloc.NewRoundRobin(),
		"bnqrd":             alloc.NewBNQRD(),
		"two-random-probes": alloc.NewTwoRandomProbes(rand.New(rand.NewSource(seed + 1))),
	}
}

// mechanismNames lists the mechanisms() keys in deterministic order.
var mechanismNames = []string{
	"bnqrd", "greedy", "qa-nt", "random", "round-robin", "two-random-probes",
}

// ratioSweep powers the Greedy-vs-QA-NT sweep figures: for each of n
// sweep points it runs both mechanisms over that point's arrival stream
// and returns Y[i] = greedy mean / qa-nt mean. Every (point, mechanism)
// pair is an independent task fanned across the worker pool; arrivalsFor
// must be pure (it is invoked once per task, possibly concurrently) and
// must derive any randomness from Scale.Seed so the series are identical
// at every pool width.
func ratioSweep(s Scale, cat *catalog.Catalog, ts []costmodel.Template, n int, arrivalsFor func(i int) ([]workload.Arrival, error)) ([]float64, error) {
	qant := make([]float64, n)
	greedy := make([]float64, n)
	err := forEach(s.workers(), 2*n, func(task int) error {
		i, name, slot := task/2, "qa-nt", qant
		if task%2 == 1 {
			name, slot = "greedy", greedy
		}
		as, err := arrivalsFor(i)
		if err != nil {
			return err
		}
		sum, _, err := runOne(s, cat, ts, mechanisms(s.Seed)[name], as)
		if err != nil {
			return err
		}
		slot[i] = sum.MeanRespMs
		return nil
	})
	if err != nil {
		return nil, err
	}
	ys := make([]float64, n)
	for i := range ys {
		ys[i] = greedy[i] / qant[i]
	}
	return ys, nil
}

// Point is one (x, y) sample of a figure's series.
type Point struct {
	X float64
	Y float64
}

func (p Point) String() string { return fmt.Sprintf("(%g, %.3f)", p.X, p.Y) }
