package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"github.com/qamarket/qamarket/internal/autoscale"
	"github.com/qamarket/qamarket/internal/cluster"
)

// FlashCrowdOptions sizes the elasticity experiment: the same
// flash-crowd workload — quiet, a sudden arrival spike, quiet again —
// is driven twice over a real TCP federation, once against a static
// fleet and once with the market-driven autoscaler closing the
// telemetry loop. The comparison the ROADMAP asks for is the peak
// phase's tail latency: the static fleet saturates (queues, rejects,
// retries), the scaled fleet recruits supply and holds response time
// roughly flat.
type FlashCrowdOptions struct {
	// BaseNodes is the founding fleet — and the static baseline's
	// permanent size.
	BaseNodes int
	// MaxNodes caps the autoscaler (the dataset is replicated across
	// this many node slots up front).
	MaxNodes int
	// PhaseConcurrency is the flash-crowd shape: concurrent requesters
	// per wave in each phase, e.g. {2, 12, 2}.
	PhaseConcurrency []int
	// WavesPerPhase is how many synchronous waves each phase fires.
	WavesPerPhase int
	// Slowdown scales every node's execution cost (the knob that makes
	// the spike saturate a small fleet).
	Slowdown      float64
	MsPerCostUnit float64
	PeriodMs      int64
	// GossipPeriodMs compresses the membership clock like PeriodMs
	// compresses the market clock.
	GossipPeriodMs int64
	// Cooldown/MaxStep are the controller guardrails under test.
	Cooldown, MaxStep int
	Seed              int64
}

// DefaultFlashCrowd keeps the experiment in the seconds range.
func DefaultFlashCrowd() FlashCrowdOptions {
	return FlashCrowdOptions{
		BaseNodes:        1,
		MaxNodes:         5,
		PhaseConcurrency: []int{2, 12, 2},
		WavesPerPhase:    8,
		Slowdown:         3,
		MsPerCostUnit:    0.01,
		PeriodMs:         25,
		GossipPeriodMs:   15,
		Cooldown:         2,
		MaxStep:          1,
		Seed:             23,
	}
}

// FlashCrowdResult reports both legs and the scaler's conduct.
type FlashCrowdResult struct {
	BaseNodes int `json:"base_nodes"`
	// PeakReplicas is the largest live-member count the scaled leg
	// reached.
	PeakReplicas int `json:"peak_replicas"`
	// StaticPeakP99Ms and ScaledPeakP99Ms are the spike phase's p99
	// end-to-end latency, static vs autoscaled.
	StaticPeakP99Ms float64 `json:"static_peak_p99_ms"`
	ScaledPeakP99Ms float64 `json:"scaled_peak_p99_ms"`
	// Completions per leg (every phase).
	StaticCompleted int `json:"static_completed"`
	ScaledCompleted int `json:"scaled_completed"`
	// Launched/Drained are the controller's lifetime actuations.
	Launched int64 `json:"launched"`
	Drained  int64 `json:"drained"`
	// MaxStepObserved is the largest |action| any decision took, and
	// CooldownRespected whether all actions kept the configured
	// spacing — the guardrail conduct the smoke asserts.
	MaxStepObserved   int  `json:"max_step_observed"`
	CooldownRespected bool `json:"cooldown_respected"`
	Decisions         int  `json:"decisions"`
}

// ReplicaPool is the in-process actuator for experiments and smokes:
// Launch starts real cluster nodes that join the federation by
// gossiping a seed, Drain retires the youngest pool-owned replica
// through the graceful drain path. Founders are not pool-owned — the
// scaler can only remove supply it added.
type ReplicaPool struct {
	// Start builds and starts replica number seq (the caller wires the
	// dataset, seeds, and node configuration).
	Start func(seq int) (*cluster.Node, error)

	mu    sync.Mutex
	seq   int
	live  []*cluster.Node
	gone  []*cluster.Node // drained replicas, kept for executed-once audits
	fails int
}

// Launch implements autoscale.Actuator.
func (p *ReplicaPool) Launch(n int) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := 0; i < n; i++ {
		node, err := p.Start(p.seq)
		if err != nil {
			p.fails++
			return fmt.Errorf("experiments: launching replica %d: %w", p.seq, err)
		}
		p.seq++
		p.live = append(p.live, node)
	}
	return nil
}

// Drain implements autoscale.Actuator: youngest first, gracefully.
func (p *ReplicaPool) Drain(n int) error {
	p.mu.Lock()
	var victims []*cluster.Node
	for i := 0; i < n && len(p.live) > 0; i++ {
		v := p.live[len(p.live)-1]
		p.live = p.live[:len(p.live)-1]
		p.gone = append(p.gone, v)
		victims = append(victims, v)
	}
	p.mu.Unlock()
	if len(victims) < n {
		return fmt.Errorf("experiments: only %d of %d requested replicas were pool-owned", len(victims), n)
	}
	for _, v := range victims {
		if err := v.Close(); err != nil {
			return fmt.Errorf("experiments: draining replica %s: %w", v.ID(), err)
		}
	}
	return nil
}

// Nodes returns every replica the pool ever started (live and
// drained), for executed-once audits.
func (p *ReplicaPool) Nodes() []*cluster.Node {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := append([]*cluster.Node(nil), p.live...)
	return append(out, p.gone...)
}

// Live returns the pool's currently live replicas.
func (p *ReplicaPool) Live() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.live)
}

// CloseAll shuts down whatever the pool still owns.
func (p *ReplicaPool) CloseAll() {
	p.mu.Lock()
	live := append([]*cluster.Node(nil), p.live...)
	p.live = nil
	p.mu.Unlock()
	for _, n := range live {
		n.CloseNow()
	}
}

// FlashCrowd runs the elasticity experiment: the same flash-crowd
// workload over a static fleet and over an autoscaled one.
func FlashCrowd(opt FlashCrowdOptions) (FlashCrowdResult, error) {
	if opt.BaseNodes <= 0 || opt.MaxNodes < opt.BaseNodes {
		return FlashCrowdResult{}, fmt.Errorf("experiments: need 1 <= BaseNodes <= MaxNodes")
	}
	if len(opt.PhaseConcurrency) == 0 || opt.WavesPerPhase <= 0 {
		return FlashCrowdResult{}, fmt.Errorf("experiments: flash crowd needs phases and waves")
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	// Full replication across every node slot: any replica can serve
	// any query, so recruited supply is immediately useful.
	ds, err := cluster.GenerateDataset(cluster.DatasetParams{
		Nodes: opt.MaxNodes, Tables: 6, Views: 10, RowsPerTable: 60,
		MinCopies: opt.MaxNodes, MaxCopies: opt.MaxNodes,
	}, rng)
	if err != nil {
		return FlashCrowdResult{}, err
	}
	templates, err := ds.GenerateTemplates(4, 1, rng)
	if err != nil {
		return FlashCrowdResult{}, err
	}
	res := FlashCrowdResult{BaseNodes: opt.BaseNodes, CooldownRespected: true}
	staticP99, staticDone, err := flashCrowdLeg(opt, ds, templates, rng.Int63(), false, &res)
	if err != nil {
		return res, fmt.Errorf("static leg: %w", err)
	}
	scaledP99, scaledDone, err := flashCrowdLeg(opt, ds, templates, rng.Int63(), true, &res)
	if err != nil {
		return res, fmt.Errorf("scaled leg: %w", err)
	}
	res.StaticPeakP99Ms, res.StaticCompleted = staticP99, staticDone
	res.ScaledPeakP99Ms, res.ScaledCompleted = scaledP99, scaledDone
	return res, nil
}

// flashCrowdLeg drives one leg and returns the peak phase's p99 and
// the leg's total completions. The scaled leg additionally fills in
// the controller-conduct fields of res.
func flashCrowdLeg(opt FlashCrowdOptions, ds *cluster.Dataset, templates []cluster.QueryTemplate,
	seed int64, scaled bool, res *FlashCrowdResult) (p99 float64, completed int, err error) {
	rng := rand.New(rand.NewSource(seed))
	start := func(i int, id string, seeds []string) (*cluster.Node, error) {
		return cluster.StartNode("127.0.0.1:0", cluster.NodeConfig{
			DB:             ds.DBs[i],
			Slowdown:       opt.Slowdown,
			MsPerCostUnit:  opt.MsPerCostUnit,
			PeriodMs:       opt.PeriodMs,
			NodeID:         id,
			Seeds:          seeds,
			GossipPeriodMs: opt.GossipPeriodMs,
			MembershipSeed: opt.Seed + int64(i),
		})
	}
	var founders []*cluster.Node
	defer func() {
		for _, n := range founders {
			n.CloseNow()
		}
	}()
	var seeds []string
	for i := 0; i < opt.BaseNodes; i++ {
		n, err := start(i, fmt.Sprintf("f%02d", i), seeds)
		if err != nil {
			return 0, 0, err
		}
		founders = append(founders, n)
		if len(seeds) == 0 {
			seeds = []string{n.Addr()}
		}
	}
	client, err := cluster.NewClient(cluster.ClientConfig{
		Addrs:       seeds,
		Mechanism:   cluster.MechQANT,
		PeriodMs:    opt.PeriodMs,
		MaxRetries:  100,
		Timeout:     5 * time.Second,
		ViewRefresh: time.Duration(opt.GossipPeriodMs) * time.Millisecond,
	})
	if err != nil {
		return 0, 0, err
	}
	defer client.Close()
	if err := awaitLive(client, opt.BaseNodes, 5*time.Second); err != nil {
		return 0, 0, err
	}

	pool := &ReplicaPool{Start: func(seq int) (*cluster.Node, error) {
		idx := opt.BaseNodes + seq
		if idx >= opt.MaxNodes {
			return nil, fmt.Errorf("replica slot %d beyond MaxNodes %d", idx, opt.MaxNodes)
		}
		return start(idx, fmt.Sprintf("r%02d", seq), seeds)
	}}
	defer pool.CloseAll()

	var ctl *autoscale.Controller
	if scaled {
		ctl, err = autoscale.New(autoscale.Config{
			Min:        opt.BaseNodes,
			Max:        opt.MaxNodes,
			CapacityMs: float64(opt.PeriodMs),
			Alpha:      0.5,
			Warmup:     1,
			Cooldown:   opt.Cooldown,
			MaxStep:    opt.MaxStep,
		}, autoscale.ClientSource{Client: client}, pool)
		if err != nil {
			return 0, 0, err
		}
	}

	peak := 0
	for i, c := range opt.PhaseConcurrency {
		if c > opt.PhaseConcurrency[peak] {
			peak = i
		}
	}
	var peakLat []float64
	qid := int64(0)
	for pi, conc := range opt.PhaseConcurrency {
		for w := 0; w < opt.WavesPerPhase; w++ {
			lats := make([]float64, conc)
			oks := make([]bool, conc)
			var wg sync.WaitGroup
			for ci := 0; ci < conc; ci++ {
				wg.Add(1)
				sql := templates[rng.Intn(len(templates))].Instantiate(rng)
				id := qid
				qid++
				go func(slot int, id int64, sql string) {
					defer wg.Done()
					out := client.Run(id, sql)
					if out.Err == nil {
						lats[slot] = out.TotalMs
						oks[slot] = true
					}
				}(ci, id, sql)
			}
			wg.Wait()
			for slot, ok := range oks {
				if !ok {
					continue
				}
				completed++
				if pi == peak {
					peakLat = append(peakLat, lats[slot])
				}
			}
			if ctl != nil {
				d := ctl.Tick()
				if d.Current > res.PeakReplicas {
					res.PeakReplicas = d.Current
				}
			}
			// Let a market period (and gossip) advance between waves.
			time.Sleep(time.Duration(opt.PeriodMs) * time.Millisecond)
		}
	}
	if ctl != nil {
		res.Launched, res.Drained = ctl.Totals()
		decisions := ctl.Decisions()
		res.Decisions = len(decisions)
		last := -1 << 30
		for _, d := range decisions {
			a := d.Action
			if a < 0 {
				a = -a
			}
			if a > res.MaxStepObserved {
				res.MaxStepObserved = a
			}
			if d.Action != 0 {
				if d.Tick-last < opt.Cooldown {
					res.CooldownRespected = false
				}
				last = d.Tick
			}
		}
	}
	return p99Of(peakLat), completed, nil
}

// p99Of returns the 99th-percentile (nearest-rank) of the samples, 0
// when empty.
func p99Of(samples []float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	idx := (len(s)*99 + 99) / 100
	if idx > len(s) {
		idx = len(s)
	}
	return s[idx-1]
}
