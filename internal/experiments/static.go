package experiments

import (
	"math/rand"

	"github.com/qamarket/qamarket/internal/alloc"
	"github.com/qamarket/qamarket/internal/market"
	"github.com/qamarket/qamarket/internal/metrics"
	"github.com/qamarket/qamarket/internal/workload"
)

// StaticResult compares mechanisms under a *static* workload — the
// regime where Section 4 grants the centralized Markov reference [4]
// its "Excellent" rating and claims QA-NT "comes close".
type StaticResult struct {
	MeanMs     map[string]float64
	Normalized map[string]float64 // vs the Markov reference
}

// StaticWorkload runs a constant-rate two-class workload at the given
// fraction of system capacity through QA-NT, Greedy, Random and the
// Markov reference.
func StaticWorkload(s Scale, loadFrac float64) (StaticResult, error) {
	f, err := newTwoClassFixture(s)
	if err != nil {
		return StaticResult{}, err
	}
	rng := rand.New(rand.NewSource(s.Seed + 900))
	durationMs := int64(s.DurationS) * 1000
	// Constant Poisson-ish arrivals: class 0 at 2/3 of the blended
	// rate, class 1 at 1/3 (the experiments' 2:1 mix).
	rate := loadFrac * f.capacity // queries per second
	var arrivals []workload.Arrival
	for class, share := range []float64{2.0 / 3, 1.0 / 3} {
		classRate := rate * share
		if classRate <= 0 {
			continue
		}
		gap := 1000 / classRate // ms
		for at := gap * rng.Float64(); at < float64(durationMs); {
			arrivals = append(arrivals, workload.Arrival{
				At: int64(at), Class: class, Origin: rng.Intn(s.Nodes),
			})
			// Exponential gaps give a memoryless (static) stream.
			at += gap * expVariate(rng)
		}
	}
	workload.Sort(arrivals)

	// The Markov reference is centralized and receives the true class
	// rates — the autonomy-violating knowledge Section 4 criticizes.
	rates := []float64{rate * 2 / 3, rate / 3}
	names := []string{"greedy", "markov", "qa-nt", "random"}
	newMech := func(name string) alloc.Mechanism {
		switch name {
		case "qa-nt":
			return alloc.NewQANT(market.DefaultConfig(2))
		case "greedy":
			return alloc.NewGreedy(nil, 0)
		case "random":
			return alloc.NewRandom(rand.New(rand.NewSource(s.Seed)))
		default:
			return alloc.NewMarkov(rates)
		}
	}
	means := make([]float64, len(names))
	err = forEach(s.workers(), len(names), func(i int) error {
		sum, _, err := runOne(s, f.cat, f.templates, newMech(names[i]), arrivals)
		if err != nil {
			return err
		}
		means[i] = sum.MeanRespMs
		return nil
	})
	if err != nil {
		return StaticResult{}, err
	}
	res := StaticResult{MeanMs: make(map[string]float64, len(names))}
	for i, name := range names {
		res.MeanMs[name] = means[i]
	}
	norm, err := metrics.Normalize(res.MeanMs, "markov")
	if err != nil {
		return StaticResult{}, err
	}
	res.Normalized = norm
	return res, nil
}

// expVariate draws a unit-mean exponential variate.
func expVariate(rng *rand.Rand) float64 {
	return rng.ExpFloat64()
}
