package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"github.com/qamarket/qamarket/internal/alloc"
	"github.com/qamarket/qamarket/internal/catalog"
	"github.com/qamarket/qamarket/internal/costmodel"
	"github.com/qamarket/qamarket/internal/workload"
)

// Table2Row is one mechanism's qualitative profile (Table 2).
type Table2Row struct {
	Name   string
	Traits alloc.Traits
}

// Table2 collects the Traits the mechanisms report about themselves,
// in the paper's row order.
func Table2() []Table2Row {
	order := []string{"qa-nt", "greedy", "random", "round-robin", "bnqrd", "markov"}
	mechs := mechanisms(1)
	mechs["markov"] = alloc.NewMarkov(nil)
	var out []Table2Row
	for _, name := range order {
		out = append(out, Table2Row{Name: name, Traits: mechs[name].Traits()})
	}
	return out
}

// RenderTable2 formats Table 2 like the paper.
func RenderTable2() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-12s %-10s %-9s %-9s %s\n",
		"Mechanism", "Distributed", "Workload", "Conflict", "Autonomy", "Performance")
	for _, row := range Table2() {
		fmt.Fprintf(&b, "%-12s %-12s %-10s %-9s %-9s %s\n",
			row.Name, yn(row.Traits.Distributed), row.Traits.WorkloadType,
			yn(row.Traits.ConflictsWithQueryOpt), yn(row.Traits.RespectsAutonomy),
			row.Traits.Performance)
	}
	return b.String()
}

func yn(v bool) string {
	if v {
		return "X"
	}
	return "-"
}

// Table3Stats verifies the generated environment against the Table 3
// parameters: it reports the realized statistics of a generated
// catalog and workload.
type Table3Stats struct {
	Nodes            int
	Relations        int
	HashJoinNodes    int
	MeanCPUGHz       float64
	MeanIOMBps       float64
	MeanBufferMB     float64
	MeanRelationMB   float64
	MeanMirrors      float64
	Classes          int
	MeanJoins        float64
	MeanBestExecMs   float64
	RelationsPerNode float64
}

// Table3 generates a catalog + class universe at the given scale and
// measures the realized parameter statistics.
func Table3(s Scale) (Table3Stats, error) {
	rng := rand.New(rand.NewSource(s.Seed))
	p := catalog.Table3()
	p.Nodes = s.Nodes
	p.Relations = s.Relations
	p.HashJoinNodes = s.Nodes * 95 / 100
	cat, err := catalog.Generate(p, rng)
	if err != nil {
		return Table3Stats{}, err
	}
	model := costmodel.New(cat)
	tp := workload.Table3Templates()
	tp.Classes = s.Classes
	tp.MaxJoins = s.MaxJoins
	ts, err := workload.GenerateTemplates(cat, model, tp, rng)
	if err != nil {
		return Table3Stats{}, err
	}
	var st Table3Stats
	st.Nodes = len(cat.Nodes)
	st.Relations = len(cat.Relations)
	var cpu, io, buf, mirrors, perNode float64
	for _, n := range cat.Nodes {
		if n.HashJoin {
			st.HashJoinNodes++
		}
		cpu += n.CPUGHz
		io += n.IOMBps
		buf += n.BufferMB
		perNode += float64(len(n.Holds))
		mirrors += float64(len(n.Holds))
	}
	st.MeanCPUGHz = cpu / float64(st.Nodes)
	st.MeanIOMBps = io / float64(st.Nodes)
	st.MeanBufferMB = buf / float64(st.Nodes)
	st.MeanMirrors = mirrors / float64(st.Relations)
	st.RelationsPerNode = perNode / float64(st.Nodes)
	var size float64
	for _, r := range cat.Relations {
		size += r.SizeMB
	}
	st.MeanRelationMB = size / float64(st.Relations)
	st.Classes = len(ts)
	var joins, best float64
	for _, t := range ts {
		joins += float64(t.Joins())
		b, _ := model.EstimateBest(t)
		best += b
	}
	st.MeanJoins = joins / float64(st.Classes)
	st.MeanBestExecMs = best / float64(st.Classes)
	return st, nil
}

// SortedKeys returns map keys in sorted order (stable printing).
func SortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
