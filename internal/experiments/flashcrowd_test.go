package experiments

import "testing"

// TestFlashCrowdScalesAndBehaves runs the elasticity experiment at test
// scale and asserts the structural promises that hold regardless of
// machine noise: both legs complete work, the scaled leg actually grew
// past the static fleet during the spike, every controller action was
// bounded by max-step, and the cooldown spacing held. The p99 ordering
// itself is a real-time measurement and belongs to the benchmark
// trajectory, not a unit test.
func TestFlashCrowdScalesAndBehaves(t *testing.T) {
	opt := DefaultFlashCrowd()
	opt.WavesPerPhase = 5
	res, err := FlashCrowd(opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.StaticCompleted == 0 || res.ScaledCompleted == 0 {
		t.Fatalf("legs completed %d/%d queries", res.StaticCompleted, res.ScaledCompleted)
	}
	if res.PeakReplicas <= opt.BaseNodes {
		t.Errorf("spike never grew the federation: peak %d replicas from base %d",
			res.PeakReplicas, opt.BaseNodes)
	}
	if res.Launched == 0 {
		t.Error("controller never launched")
	}
	if res.MaxStepObserved > opt.MaxStep {
		t.Errorf("a decision moved %d replicas, max step is %d", res.MaxStepObserved, opt.MaxStep)
	}
	if !res.CooldownRespected {
		t.Error("actions violated the cooldown spacing")
	}
	if res.Decisions == 0 {
		t.Error("no decisions retained")
	}
	t.Logf("peak %d replicas (%d launched, %d drained), %d decisions, p99 static %.0fms scaled %.0fms",
		res.PeakReplicas, res.Launched, res.Drained, res.Decisions,
		res.StaticPeakP99Ms, res.ScaledPeakP99Ms)
}

func TestFlashCrowdRejectsBadOptions(t *testing.T) {
	if _, err := FlashCrowd(FlashCrowdOptions{}); err == nil {
		t.Error("zero-node flash crowd accepted")
	}
	bad := DefaultFlashCrowd()
	bad.MaxNodes = 0
	if _, err := FlashCrowd(bad); err == nil {
		t.Error("MaxNodes below BaseNodes accepted")
	}
}
