package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Parallel execution of sweep points.
//
// Every figure's sweep is a set of *independent* simulation runs: each
// (sweep point, mechanism) pair derives its RNG seed from Scale.Seed
// through a fixed offset, builds fresh mechanism state, and runs its own
// Federation. The only shared state is the read-only fixture (catalog +
// templates). forEach fans those tasks across a bounded worker pool and
// writes every result into a pre-assigned slot, so the assembled series
// are byte-identical to a sequential run at any worker count — the same
// independence WALRAS-style market simulators exploit to scale auction
// rounds.

// workers resolves Scale.Parallel: 0 picks GOMAXPROCS, anything below
// that floor runs strictly sequentially.
func (s Scale) workers() int {
	if s.Parallel == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if s.Parallel < 1 {
		return 1
	}
	return s.Parallel
}

// forEach runs fn(0) … fn(n-1) on up to workers goroutines and returns
// the lowest-index error (deterministic regardless of completion order).
// With workers <= 1 it degenerates to the plain sequential loop.
func forEach(workers, n int, fn func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
