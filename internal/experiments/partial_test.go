package experiments

import "testing"

// TestPartialAdoption probes the Section 4 claim that QA-NT can run on
// a subset of nodes. Full adoption must clearly beat no adoption under
// overload. Partial adoption turns out to be non-monotone in our
// reproduction — adopters protect themselves and push the overflow
// onto the unprotected nodes, which hurts when clients already
// allocate well — an honest divergence recorded in EXPERIMENTS.md
// (the paper's claim presumes information-poor clients, for which
// self-protection is the only load signal).
func TestPartialAdoption(t *testing.T) {
	r, err := PartialAdoption(Quick())
	if err != nil {
		t.Fatal(err)
	}
	none := r.MeanMs[0]
	half := r.MeanMs[0.5]
	full := r.MeanMs[1.0]
	t.Logf("mean response: 0%%=%.0f ms, 50%%=%.0f ms, 100%%=%.0f ms", none, half, full)
	if full >= none {
		t.Errorf("full adoption (%.0f ms) not better than none (%.0f ms)", full, none)
	}
	if half <= 0 {
		t.Error("half-adoption run produced no data")
	}
	// Zero adoption must behave exactly like the greedy client (every
	// node always offers): completing the workload, not deadlocking.
	if none <= 0 {
		t.Error("zero-adoption run produced no data")
	}
}
