package experiments

import (
	"testing"
	"time"

	"github.com/qamarket/qamarket/internal/cluster"
)

// testFigure7Options shrinks the experiment so the test finishes in a
// few seconds of wall-clock time.
func testFigure7Options() Figure7Options {
	opt := DefaultFigure7()
	opt.Queries = 80
	opt.Interarrivals = []time.Duration{40 * time.Millisecond}
	opt.LinkLatency = 2 * time.Millisecond
	return opt
}

func TestFigure7RealCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("real-cluster experiment skipped in -short mode")
	}
	r, err := Figure7(testFigure7Options())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Runs) != 2 {
		t.Fatalf("runs = %d, want 2", len(r.Runs))
	}
	byMech := map[cluster.Mechanism]Figure7Run{}
	for _, run := range r.Runs {
		t.Logf("%-8s gap=%v assign=%.1fms total=%.1fms completed=%d failed=%d",
			run.Mechanism, run.Interarrival, run.MeanAssignMs, run.MeanTotalMs,
			run.Completed, run.Failed)
		if run.Completed < 75 {
			t.Errorf("%s completed only %d/80", run.Mechanism, run.Completed)
		}
		if run.MeanAssignMs <= 0 {
			t.Errorf("%s has zero assignment time", run.Mechanism)
		}
		// The paper highlights that assignment takes a visible fraction
		// of total time because clients wait for all EXPLAIN replies.
		if run.MeanAssignMs >= run.MeanTotalMs {
			t.Errorf("%s assignment %.1f >= total %.1f", run.Mechanism, run.MeanAssignMs, run.MeanTotalMs)
		}
		byMech[run.Mechanism] = run
	}
	// The headline: QA-NT's total time does not lose badly to Greedy.
	g, q := byMech[cluster.MechGreedy], byMech[cluster.MechQANT]
	if q.MeanTotalMs > g.MeanTotalMs*1.6 {
		t.Errorf("QA-NT total %.1fms much worse than Greedy %.1fms", q.MeanTotalMs, g.MeanTotalMs)
	}
}

func TestFigure7RejectsBadOptions(t *testing.T) {
	opt := DefaultFigure7()
	opt.Slowdowns = []float64{1}
	if _, err := Figure7(opt); err == nil {
		t.Error("mismatched slowdowns accepted")
	}
}
