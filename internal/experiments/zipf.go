package experiments

import (
	"fmt"
	"math/rand"

	"github.com/qamarket/qamarket/internal/catalog"
	"github.com/qamarket/qamarket/internal/costmodel"
	"github.com/qamarket/qamarket/internal/workload"
)

// Figure6Result is the heterogeneous-workload experiment: Greedy's
// normalized response time (vs QA-NT) as the mean query inter-arrival
// time varies. The paper reports QA-NT winning 13–26% under overload
// and the gain vanishing above ~17 s inter-arrival.
type Figure6Result struct {
	Points []Point // X = mean inter-arrival ms (per class), Y = greedy/qa-nt
}

// Figure6Gaps are the sweep points in milliseconds. The paper sweeps
// 10 ms – 20,000 ms; inter-arrival here is per class.
var Figure6Gaps = []float64{10, 100, 1000, 5000, 10000, 17000, 20000}

// figure6Fixture builds the Table 3 catalog and Zipf class universe.
func figure6Fixture(s Scale) (*catalog.Catalog, []costmodel.Template, error) {
	rng := rand.New(rand.NewSource(s.Seed + 600))
	p := catalog.Table3()
	p.Nodes = s.Nodes
	p.Relations = s.Relations
	p.HashJoinNodes = s.Nodes * 95 / 100
	cat, err := catalog.Generate(p, rng)
	if err != nil {
		return nil, nil, err
	}
	model := costmodel.New(cat)
	tp := workload.Table3Templates()
	tp.Classes = s.Classes
	tp.MaxJoins = s.MaxJoins
	ts, err := workload.GenerateTemplates(cat, model, tp, rng)
	if err != nil {
		return nil, nil, err
	}
	return cat, ts, nil
}

// Figure6 sweeps the Zipf workload intensity. Queries per sweep point
// scale down for short gaps so each point's virtual horizon stays
// bounded.
func Figure6(s Scale) (Figure6Result, error) {
	cat, ts, err := figure6Fixture(s)
	if err != nil {
		return Figure6Result{}, err
	}
	ys, err := ratioSweep(s, cat, ts, len(Figure6Gaps), func(i int) ([]workload.Arrival, error) {
		gap := Figure6Gaps[i]
		rng := rand.New(rand.NewSource(s.Seed + 700 + int64(i)))
		z := workload.Zipf{
			Classes:     s.Classes,
			NumQueries:  s.Queries,
			A:           1,
			MeanGapMs:   gap,
			MaxGapMs:    30000,
			OriginCount: s.Nodes,
		}
		as, err := z.Generate(rng)
		if err != nil {
			return nil, fmt.Errorf("figure 6 gap %g: %w", gap, err)
		}
		return as, nil
	})
	if err != nil {
		return Figure6Result{}, err
	}
	var out Figure6Result
	for i, gap := range Figure6Gaps {
		out.Points = append(out.Points, Point{X: gap, Y: ys[i]})
	}
	return out, nil
}
