package experiments

import (
	"math/rand"

	"github.com/qamarket/qamarket/internal/alloc"
	"github.com/qamarket/qamarket/internal/market"
)

// PartialAdoptionResult verifies the Section 4 claim that QA-NT keeps
// optimizing global throughput even when only a subset of nodes adopts
// it (the rest behave like ordinary always-accepting servers).
type PartialAdoptionResult struct {
	// MeanMs maps adoption fraction (0, 0.5, 1.0) to the mean query
	// response time under an overloaded sinusoid.
	MeanMs map[float64]float64
}

// PartialAdoption runs the overload workload with 0%, 50% and 100% of
// nodes running QA-NT agents.
func PartialAdoption(s Scale) (PartialAdoptionResult, error) {
	f, err := newTwoClassFixture(s)
	if err != nil {
		return PartialAdoptionResult{}, err
	}
	rng := rand.New(rand.NewSource(s.Seed + 950))
	durationMs := int64(s.DurationS) * 1000
	as := f.sinusoidArrivals(s, 0.05, 2.0, durationMs, rng)

	fracs := []float64{0, 0.5, 1.0}
	means := make([]float64, len(fracs))
	err = forEach(s.workers(), len(fracs), func(fi int) error {
		mech := alloc.NewQANT(market.DefaultConfig(2))
		// Stripe the adopters across the node range so adoption is not
		// confounded with data placement (the fixture puts Q2's data on
		// the first half of the nodes).
		adopters := make(map[int]bool, s.Nodes)
		want := int(fracs[fi] * float64(s.Nodes))
		for i := 0; i < want; i++ {
			adopters[(i*2)%s.Nodes+(i*2)/s.Nodes] = true
		}
		mech.Adopters = adopters
		sum, _, err := runOne(s, f.cat, f.templates, mech, as)
		if err != nil {
			return err
		}
		means[fi] = sum.MeanRespMs
		return nil
	})
	if err != nil {
		return PartialAdoptionResult{}, err
	}
	res := PartialAdoptionResult{MeanMs: make(map[float64]float64, len(fracs))}
	for i, frac := range fracs {
		res.MeanMs[frac] = means[i]
	}
	return res, nil
}
