package experiments

import "testing"

// TestStaticWorkloadShape checks the static-load regime of Table 2:
// QA-NT stays in the same performance class as the centralized static
// reference (the paper: "comes close to the Markov-based algorithm
// under static ones"), while the load balancers collapse.
//
// Note our Markov reference is the rate-proportional static router,
// not the full queueing-theoretic optimizer of [4]; with accurate
// backlog knowledge the dynamic mechanisms can even edge past it.
func TestStaticWorkloadShape(t *testing.T) {
	r, err := StaticWorkload(Quick(), 0.8)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("static 80%% load, normalized to markov: %v", r.Normalized)
	q := r.Normalized["qa-nt"]
	if q < 0.5 || q > 1.5 {
		t.Errorf("QA-NT %.2f not in the Markov reference's class [0.5, 1.5]", q)
	}
	if r.Normalized["random"] < 2 {
		t.Errorf("random (%.2f) should collapse under a static heterogeneous load", r.Normalized["random"])
	}
	if r.MeanMs["qa-nt"] <= 0 {
		t.Error("missing mean for qa-nt")
	}
}

func TestStaticWorkloadOverload(t *testing.T) {
	r, err := StaticWorkload(Quick(), 1.5)
	if err != nil {
		t.Fatal(err)
	}
	// In static overload QA-NT must not fall behind the static
	// reference: it reallocates continuously while the reference's
	// split is frozen.
	if r.Normalized["qa-nt"] > 1.1 {
		t.Errorf("QA-NT %.2f behind the static reference under overload", r.Normalized["qa-nt"])
	}
}
