package experiments

import (
	"errors"
	"reflect"
	"sync/atomic"
	"testing"
)

// parallelScale is small enough to run two figures twice each in a few
// seconds while still exercising queueing at multiple sweep points.
func parallelScale(parallel int) Scale {
	return Scale{
		Nodes: 12, Relations: 60, Queries: 300, Classes: 10, MaxJoins: 4,
		DurationS: 10, Seed: 1, PeriodMs: 500, Parallel: parallel,
	}
}

// TestParallelMatchesSequentialFigure5a is the determinism guarantee:
// the worker pool must produce byte-identical series to the sequential
// path because every sweep point regenerates its own arrival stream
// from a Scale.Seed-derived seed.
func TestParallelMatchesSequentialFigure5a(t *testing.T) {
	seq, err := Figure5a(parallelScale(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := Figure5a(parallelScale(8))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("figure 5a parallel != sequential:\nseq %v\npar %v", seq, par)
	}
}

func TestParallelMatchesSequentialFigure6(t *testing.T) {
	seq, err := Figure6(parallelScale(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := Figure6(parallelScale(8))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("figure 6 parallel != sequential:\nseq %v\npar %v", seq, par)
	}
}

func TestForEachCoversAllIndexesOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		const n = 41
		counts := make([]int64, n)
		err := forEach(workers, n, func(i int) error {
			atomic.AddInt64(&counts[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

// TestForEachReturnsLowestIndexError pins the deterministic error
// choice: whichever goroutine finishes last, the caller always sees the
// failure of the lowest task index.
func TestForEachReturnsLowestIndexError(t *testing.T) {
	errLow, errHigh := errors.New("low"), errors.New("high")
	for _, workers := range []int{1, 4} {
		err := forEach(workers, 10, func(i int) error {
			switch i {
			case 3:
				return errLow
			case 7:
				return errHigh
			}
			return nil
		})
		if err != errLow {
			t.Fatalf("workers=%d: got %v, want %v", workers, err, errLow)
		}
	}
}
