// Package costmodel estimates the execution cost of select-join-project-
// sort queries on the heterogeneous simulated RDBMSs of internal/catalog.
// It plays the role of the per-node EXPLAIN PLAN estimator of Section 5.2
// inside the simulator: both the allocation mechanisms and the simulated
// executors price queries through it, so estimates and "actual" simulated
// run times agree by construction (the real-cluster packages relax this).
package costmodel

import (
	"fmt"
	"math"

	"github.com/qamarket/qamarket/internal/catalog"
)

// Template is a query template/class (Section 2.1): a family of
// select-join-project-sort queries touching the same relations with the
// same join count, differing only in selection constants. All queries of
// one template cost the same on a given node.
type Template struct {
	// Class is the template's index in the workload's class universe Q.
	Class int
	// Relations lists the base relations the query joins, in join order;
	// len(Relations)-1 is the number of joins (0–49 in Table 3).
	Relations []int
	// Selectivity in (0,1] scales intermediate result sizes.
	Selectivity float64
	// Sort indicates a final ORDER BY over the result.
	Sort bool
	// CostScale multiplies the estimated cost; 0 means 1. Workload
	// generators use it to calibrate the class universe to the paper's
	// 2,000 ms average best execution time (Table 3).
	CostScale float64
}

func (t Template) scale() float64 {
	if t.CostScale <= 0 {
		return 1
	}
	return t.CostScale
}

// Joins returns the number of joins in the template.
func (t Template) Joins() int {
	if len(t.Relations) == 0 {
		return 0
	}
	return len(t.Relations) - 1
}

// Validate checks structural sanity of the template.
func (t Template) Validate(c *catalog.Catalog) error {
	if len(t.Relations) == 0 {
		return fmt.Errorf("costmodel: template %d has no relations", t.Class)
	}
	if t.Selectivity <= 0 || t.Selectivity > 1 {
		return fmt.Errorf("costmodel: template %d selectivity %g outside (0,1]", t.Class, t.Selectivity)
	}
	for _, r := range t.Relations {
		if r < 0 || r >= len(c.Relations) {
			return fmt.Errorf("costmodel: template %d references unknown relation %d", t.Class, r)
		}
	}
	return nil
}

// Model estimates execution times against one catalog.
type Model struct {
	cat *catalog.Catalog
}

// New builds a cost model over the catalog.
func New(c *catalog.Catalog) *Model { return &Model{cat: c} }

// Infeasible is returned by Estimate when the node cannot evaluate the
// template (it lacks some relation); it is +Inf so comparisons against
// real costs behave naturally.
var Infeasible = math.Inf(1)

// cpuMsPerMB is the per-MB CPU cost, in milliseconds, of streaming
// tuples through a single operator on a 1 GHz node. The constant is
// calibrated so that the Table 3 workload (24 joins avg, 10.5 MB
// relations avg) lands near the paper's 2,000 ms average best execution
// time; see CalibrationFactor in the workload package tests.
const cpuMsPerMB = 6.0

// Estimate returns the estimated execution time, in milliseconds, of
// one query of template t on node. It returns Infeasible if the node
// lacks any referenced relation.
//
// The model is a classical textbook estimator:
//
//   - scanning a relation costs size/IOspeed (I/O) plus a CPU term;
//   - each join is executed with the cheaper of merge-scan (always
//     available: sort both inputs, with an n·log n CPU factor and spill
//     I/O when an input exceeds the sort buffer) and hash join (only on
//     hash-capable nodes, linear CPU, spill I/O when the build side
//     exceeds the hash buffer);
//   - intermediate results shrink geometrically with the template's
//     selectivity;
//   - an optional final sort costs like a merge-sort pass of the result.
func (m *Model) Estimate(node *catalog.Node, t Template) float64 {
	if !node.HasRelations(t.Relations) {
		return Infeasible
	}
	left := m.cat.Relations[t.Relations[0]].SizeMB
	total := m.scanCost(node, left)
	for _, rid := range t.Relations[1:] {
		right := m.cat.Relations[rid].SizeMB
		total += m.scanCost(node, right)
		total += m.joinCost(node, left, right)
		// The join output feeds the next join; selectivity shrinks it.
		left = (left + right) * t.Selectivity
		if left < 0.01 {
			left = 0.01
		}
	}
	if t.Sort {
		total += m.sortCost(node, left)
	}
	return total * t.scale()
}

// EstimateBest returns the minimum estimate over all nodes together with
// the best node's ID, or (Infeasible, -1) when no node can evaluate t.
func (m *Model) EstimateBest(t Template) (float64, int) {
	best, at := Infeasible, -1
	for _, n := range m.cat.Nodes {
		if c := m.Estimate(n, t); c < best {
			best, at = c, n.ID
		}
	}
	return best, at
}

// Feasible reports whether node can evaluate template t at all.
func (m *Model) Feasible(node *catalog.Node, t Template) bool {
	return node.HasRelations(t.Relations)
}

// scanCost is the cost of reading sizeMB sequentially plus per-tuple CPU.
func (m *Model) scanCost(n *catalog.Node, sizeMB float64) float64 {
	io := sizeMB / n.IOMBps * 1000 // ms
	cpu := sizeMB * cpuMsPerMB / n.CPUGHz
	return io + cpu
}

// sortCost models an external merge sort of sizeMB with the node's
// buffer: in-memory when it fits, one spill pass otherwise.
func (m *Model) sortCost(n *catalog.Node, sizeMB float64) float64 {
	cpu := sizeMB * cpuMsPerMB * log2(1+sizeMB) / n.CPUGHz
	if sizeMB <= n.BufferMB {
		return cpu
	}
	spill := 2 * sizeMB / n.IOMBps * 1000 // write + re-read run files
	return cpu + spill
}

// joinCost picks the cheaper available join method for inputs of the
// given sizes.
func (m *Model) joinCost(n *catalog.Node, leftMB, rightMB float64) float64 {
	merge := m.sortCost(n, leftMB) + m.sortCost(n, rightMB) +
		(leftMB+rightMB)*cpuMsPerMB/n.CPUGHz
	if !n.HashJoin {
		return merge
	}
	build := math.Min(leftMB, rightMB)
	probe := math.Max(leftMB, rightMB)
	hash := (2*build + probe) * cpuMsPerMB / n.CPUGHz
	if build > n.BufferMB {
		hash += 2 * (leftMB + rightMB) / n.IOMBps * 1000 // partition spill
	}
	return math.Min(merge, hash)
}

func log2(x float64) float64 { return math.Log2(x) }
