package costmodel

import (
	"math"
	"math/rand"
	"testing"

	"github.com/qamarket/qamarket/internal/catalog"
)

func testCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	p := catalog.Table3()
	p.Nodes = 10
	p.Relations = 50
	p.HashJoinNodes = 9
	c, err := catalog.Generate(p, rand.New(rand.NewSource(21)))
	if err != nil {
		t.Fatalf("catalog: %v", err)
	}
	return c
}

func TestEstimateInfeasibleWithoutData(t *testing.T) {
	c := testCatalog(t)
	m := New(c)
	n := c.Nodes[0]
	// Find a relation the node does not hold.
	missing := -1
	for id := range c.Relations {
		if !n.Holds[id] {
			missing = id
			break
		}
	}
	if missing < 0 {
		t.Skip("node holds everything")
	}
	tmpl := Template{Relations: []int{missing}, Selectivity: 0.5}
	if got := m.Estimate(n, tmpl); !math.IsInf(got, 1) {
		t.Errorf("Estimate = %g, want +Inf for missing data", got)
	}
	if m.Feasible(n, tmpl) {
		t.Error("Feasible true for missing data")
	}
}

func TestEstimatePositiveAndFinite(t *testing.T) {
	c := testCatalog(t)
	m := New(c)
	for _, n := range c.Nodes {
		for id := range n.Holds {
			tmpl := Template{Relations: []int{id}, Selectivity: 0.5, Sort: true}
			got := m.Estimate(n, tmpl)
			if got <= 0 || math.IsInf(got, 0) || math.IsNaN(got) {
				t.Fatalf("node %d relation %d: estimate %g", n.ID, id, got)
			}
		}
	}
}

func TestMoreJoinsCostMore(t *testing.T) {
	c := testCatalog(t)
	m := New(c)
	// Pick a node with at least 3 relations.
	for _, n := range c.Nodes {
		if len(n.Holds) < 3 {
			continue
		}
		var rels []int
		for id := range n.Holds {
			rels = append(rels, id)
			if len(rels) == 3 {
				break
			}
		}
		one := m.Estimate(n, Template{Relations: rels[:1], Selectivity: 0.5})
		two := m.Estimate(n, Template{Relations: rels[:2], Selectivity: 0.5})
		three := m.Estimate(n, Template{Relations: rels, Selectivity: 0.5})
		if !(one < two && two < three) {
			t.Errorf("costs not increasing with joins: %g, %g, %g", one, two, three)
		}
		return
	}
	t.Skip("no node with 3 relations")
}

func TestFasterNodeIsCheaper(t *testing.T) {
	c := &catalog.Catalog{
		Relations: []catalog.Relation{{ID: 0, SizeMB: 10, Attrs: 10}, {ID: 1, SizeMB: 10, Attrs: 10}},
		Nodes: []*catalog.Node{
			{ID: 0, CPUGHz: 3.5, IOMBps: 80, BufferMB: 10, HashJoin: true, Holds: map[int]bool{0: true, 1: true}},
			{ID: 1, CPUGHz: 1.0, IOMBps: 5, BufferMB: 2, HashJoin: true, Holds: map[int]bool{0: true, 1: true}},
		},
	}
	m := New(c)
	tmpl := Template{Relations: []int{0, 1}, Selectivity: 0.5, Sort: true}
	fast := m.Estimate(c.Nodes[0], tmpl)
	slow := m.Estimate(c.Nodes[1], tmpl)
	if fast >= slow {
		t.Errorf("fast node %g not cheaper than slow node %g", fast, slow)
	}
	best, at := m.EstimateBest(tmpl)
	if at != 0 || best != fast {
		t.Errorf("EstimateBest = (%g, %d), want (%g, 0)", best, at, fast)
	}
}

func TestHashJoinHelps(t *testing.T) {
	mk := func(hash bool) *catalog.Node {
		return &catalog.Node{CPUGHz: 2, IOMBps: 40, BufferMB: 10, HashJoin: hash,
			Holds: map[int]bool{0: true, 1: true}}
	}
	c := &catalog.Catalog{
		Relations: []catalog.Relation{{ID: 0, SizeMB: 8, Attrs: 10}, {ID: 1, SizeMB: 8, Attrs: 10}},
		Nodes:     []*catalog.Node{mk(true), mk(false)},
	}
	m := New(c)
	tmpl := Template{Relations: []int{0, 1}, Selectivity: 0.5}
	withHash := m.Estimate(c.Nodes[0], tmpl)
	without := m.Estimate(c.Nodes[1], tmpl)
	if withHash >= without {
		t.Errorf("hash join (%g) should be cheaper than merge-scan only (%g)", withHash, without)
	}
}

func TestCostScale(t *testing.T) {
	c := testCatalog(t)
	m := New(c)
	var n *catalog.Node
	var rel int
	for _, cand := range c.Nodes {
		for id := range cand.Holds {
			n, rel = cand, id
			break
		}
		if n != nil {
			break
		}
	}
	base := Template{Relations: []int{rel}, Selectivity: 0.5}
	scaled := base
	scaled.CostScale = 2.5
	a := m.Estimate(n, base)
	b := m.Estimate(n, scaled)
	if math.Abs(b-2.5*a) > 1e-9 {
		t.Errorf("CostScale: %g vs %g (want 2.5x)", b, a)
	}
}

func TestEstimateBestInfeasibleTemplate(t *testing.T) {
	c := testCatalog(t)
	m := New(c)
	tmpl := Template{Relations: []int{9999}, Selectivity: 0.5}
	if err := tmpl.Validate(c); err == nil {
		t.Error("Validate accepted unknown relation")
	}
	// All-holding check is per node; an unknown id means no node holds it.
	for _, n := range c.Nodes {
		if !math.IsInf(m.Estimate(n, Template{Relations: []int{len(c.Relations) - 1, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, Selectivity: 0.5}), 1) {
			// Some node may genuinely hold all ten; only structure is
			// under test here.
			break
		}
	}
}

func TestTemplateValidate(t *testing.T) {
	c := testCatalog(t)
	cases := []struct {
		t  Template
		ok bool
	}{
		{Template{Relations: []int{0}, Selectivity: 0.5}, true},
		{Template{Relations: nil, Selectivity: 0.5}, false},
		{Template{Relations: []int{0}, Selectivity: 0}, false},
		{Template{Relations: []int{0}, Selectivity: 1.5}, false},
		{Template{Relations: []int{-1}, Selectivity: 0.5}, false},
		{Template{Relations: []int{len(c.Relations)}, Selectivity: 0.5}, false},
	}
	for i, cse := range cases {
		err := cse.t.Validate(c)
		if (err == nil) != cse.ok {
			t.Errorf("case %d: err=%v want ok=%t", i, err, cse.ok)
		}
	}
}

func TestJoins(t *testing.T) {
	if (Template{}).Joins() != 0 {
		t.Error("empty template joins != 0")
	}
	if (Template{Relations: []int{1}}).Joins() != 0 {
		t.Error("single relation joins != 0")
	}
	if (Template{Relations: []int{1, 2, 3}}).Joins() != 2 {
		t.Error("three relations joins != 2")
	}
}

func TestSortAddsCost(t *testing.T) {
	c := testCatalog(t)
	m := New(c)
	for _, n := range c.Nodes {
		for id := range n.Holds {
			plain := m.Estimate(n, Template{Relations: []int{id}, Selectivity: 0.5})
			sorted := m.Estimate(n, Template{Relations: []int{id}, Selectivity: 0.5, Sort: true})
			if sorted <= plain {
				t.Fatalf("sort did not add cost: %g vs %g", sorted, plain)
			}
			return
		}
	}
}
