package costmodel

import (
	"math/rand"
	"testing"

	"github.com/qamarket/qamarket/internal/catalog"
)

// mkNode builds a node holding the given relations with explicit
// hardware parameters.
func mkNode(cpu, io, buf float64, hash bool, rels ...int) *catalog.Node {
	holds := map[int]bool{}
	for _, r := range rels {
		holds[r] = true
	}
	return &catalog.Node{CPUGHz: cpu, IOMBps: io, BufferMB: buf, HashJoin: hash, Holds: holds}
}

// TestQuickCostMonotoneInHardware: making any hardware dimension
// strictly better never increases a query's estimated cost.
func TestQuickCostMonotoneInHardware(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		rels := []catalog.Relation{
			{ID: 0, SizeMB: 1 + rng.Float64()*19, Attrs: 10},
			{ID: 1, SizeMB: 1 + rng.Float64()*19, Attrs: 10},
			{ID: 2, SizeMB: 1 + rng.Float64()*19, Attrs: 10},
		}
		cpu := 1 + rng.Float64()*2
		io := 5 + rng.Float64()*70
		buf := 2 + rng.Float64()*8
		hash := rng.Float64() < 0.5
		base := mkNode(cpu, io, buf, hash, 0, 1, 2)
		variants := []*catalog.Node{
			mkNode(cpu*1.5, io, buf, hash, 0, 1, 2), // faster CPU
			mkNode(cpu, io*1.5, buf, hash, 0, 1, 2), // faster disk
			mkNode(cpu, io, buf*1.5, hash, 0, 1, 2), // bigger buffer
			mkNode(cpu, io, buf, true, 0, 1, 2),     // hash join capable
		}
		c := &catalog.Catalog{Relations: rels, Nodes: append([]*catalog.Node{base}, variants...)}
		m := New(c)
		tmpl := Template{
			Relations:   []int{0, 1, 2},
			Selectivity: 0.2 + rng.Float64()*0.7,
			Sort:        rng.Float64() < 0.5,
		}
		baseCost := m.Estimate(base, tmpl)
		for vi, v := range variants {
			if got := m.Estimate(v, tmpl); got > baseCost+1e-9 {
				t.Fatalf("trial %d variant %d: better hardware costs more (%.2f > %.2f)",
					trial, vi, got, baseCost)
			}
		}
	}
}

// TestQuickCostMonotoneInData: growing a relation never makes the
// query cheaper.
func TestQuickCostMonotoneInData(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 100; trial++ {
		size := 1 + rng.Float64()*10
		small := &catalog.Catalog{
			Relations: []catalog.Relation{{ID: 0, SizeMB: size, Attrs: 10}, {ID: 1, SizeMB: 5, Attrs: 10}},
			Nodes:     []*catalog.Node{mkNode(2, 40, 6, true, 0, 1)},
		}
		big := &catalog.Catalog{
			Relations: []catalog.Relation{{ID: 0, SizeMB: size * 2, Attrs: 10}, {ID: 1, SizeMB: 5, Attrs: 10}},
			Nodes:     []*catalog.Node{mkNode(2, 40, 6, true, 0, 1)},
		}
		tmpl := Template{Relations: []int{0, 1}, Selectivity: 0.5, Sort: true}
		a := New(small).Estimate(small.Nodes[0], tmpl)
		b := New(big).Estimate(big.Nodes[0], tmpl)
		if b < a {
			t.Fatalf("trial %d: doubling a relation reduced cost %.2f -> %.2f", trial, a, b)
		}
	}
}

// TestEstimateBestIsMinimum: EstimateBest returns the true minimum over
// nodes.
func TestEstimateBestIsMinimum(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	p := catalog.Table3()
	p.Nodes = 15
	p.Relations = 60
	p.HashJoinNodes = 14
	c, err := catalog.Generate(p, rng)
	if err != nil {
		t.Fatal(err)
	}
	m := New(c)
	// Pick a relation with several mirrors.
	for rel := range c.Relations {
		holders := c.Holders([]int{rel})
		if len(holders) < 3 {
			continue
		}
		tmpl := Template{Relations: []int{rel}, Selectivity: 0.5, Sort: true}
		best, at := m.EstimateBest(tmpl)
		for _, n := range c.Nodes {
			if got := m.Estimate(n, tmpl); got < best {
				t.Fatalf("node %d beats EstimateBest: %.2f < %.2f (chosen %d)", n.ID, got, best, at)
			}
		}
		return
	}
	t.Skip("no relation with 3+ mirrors")
}
