package economics

import (
	"testing"

	"github.com/qamarket/qamarket/internal/vector"
)

func TestSupportingPricesFigure1(t *testing.T) {
	n1 := TimeBudgetSupplySet{Cost: []float64{400, 100}, Budget: 500}
	n2 := TimeBudgetSupplySet{Cost: []float64{450, 500}, Budget: 500}

	// N1's QA target (0,5): supported by any prices with q2 denser.
	p, ok := SupportingPrices(n1, vector.Quantity{0, 5}, 24)
	if !ok {
		t.Fatal("N1 target (0,5) not supportable")
	}
	if got := n1.BestResponse(p); got.Value(p) != (vector.Quantity{0, 5}).Value(p) {
		t.Errorf("prices %v do not support (0,5): best response %v", p, got)
	}
	// N2's QA target (1,0): supported when q1's density wins.
	if _, ok := SupportingPrices(n2, vector.Quantity{1, 0}, 24); !ok {
		t.Fatal("N2 target (1,0) not supportable")
	}
	// N1's mixed vertex (1,1) is also a knapsack optimum for prices
	// where q1's density dominates.
	if _, ok := SupportingPrices(n1, vector.Quantity{1, 1}, 24); !ok {
		t.Error("N1 target (1,1) not supportable")
	}
}

func TestSupportingPricesRejectsDominatedVertex(t *testing.T) {
	// Budget 500, costs (200, 100): the vector (1,3) is feasible and on
	// the budget frontier, but it is never a knapsack optimum for any
	// prices (it is dominated by the (2,1)/(0,5) mixture) — the
	// non-convexity that limits STWE over integer supply sets.
	set := TimeBudgetSupplySet{Cost: []float64{200, 100}, Budget: 500}
	if _, ok := SupportingPrices(set, vector.Quantity{1, 3}, 32); ok {
		t.Error("dominated vertex (1,3) reported supportable")
	}
	// Infeasible targets are never supportable.
	if _, ok := SupportingPrices(set, vector.Quantity{3, 0}, 16); ok {
		t.Error("infeasible target supportable")
	}
}

func TestVerifySTWEWholeAllocation(t *testing.T) {
	sets := []SupplySet{
		TimeBudgetSupplySet{Cost: []float64{400, 100}, Budget: 500},
		TimeBudgetSupplySet{Cost: []float64{450, 500}, Budget: 500},
	}
	// The Figure 2 QA allocation: N1 (0,5), N2 (1,0).
	targets := []vector.Quantity{{0, 5}, {1, 0}}
	prices, bad, ok := VerifySTWE(sets, targets, 24)
	if !ok {
		t.Fatalf("QA allocation unsupportable at node %d", bad)
	}
	for i, p := range prices {
		best := sets[i].BestResponse(p)
		if best.Value(p) != targets[i].Value(p) {
			t.Errorf("node %d: prices %v give best response %v, target %v", i, p, best, targets[i])
		}
	}
	// An allocation with a dominated vertex fails with its index.
	badSets := []SupplySet{TimeBudgetSupplySet{Cost: []float64{200, 100}, Budget: 500}}
	if _, idx, ok := VerifySTWE(badSets, []vector.Quantity{{1, 3}}, 24); ok || idx != 0 {
		t.Errorf("dominated allocation verified (idx %d)", idx)
	}
}

func TestSupportingPricesZeroClasses(t *testing.T) {
	set := TimeBudgetSupplySet{Cost: nil, Budget: 500}
	if _, ok := SupportingPrices(set, vector.Quantity{}, 8); ok {
		t.Error("zero-dimensional target supportable")
	}
}
