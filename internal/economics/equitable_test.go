package economics

import (
	"math"
	"math/rand"
	"testing"

	"github.com/qamarket/qamarket/internal/vector"
)

func TestSatisfaction(t *testing.T) {
	if s := Satisfaction(vector.Quantity{1, 1}, vector.Quantity{2, 2}); s != 0.5 {
		t.Errorf("satisfaction = %g, want 0.5", s)
	}
	if s := Satisfaction(vector.Quantity{0, 0}, vector.Quantity{0, 0}); s != 1 {
		t.Errorf("zero-demand satisfaction = %g, want 1", s)
	}
}

func TestEquitablePreference(t *testing.T) {
	pref := EquitablePreference(vector.Quantity{4, 0})
	if pref(vector.Quantity{3, 0}, vector.Quantity{2, 0}) != 1 {
		t.Error("higher satisfaction not preferred")
	}
	if pref(vector.Quantity{2, 0}, vector.Quantity{2, 0}) != 0 {
		t.Error("equal satisfaction not indifferent")
	}
	if pref(vector.Quantity{1, 0}, vector.Quantity{2, 0}) != -1 {
		t.Error("lower satisfaction not dispreferred")
	}
}

func TestEquitableSplitEqualDemands(t *testing.T) {
	demand := []vector.Quantity{{4}, {4}}
	cons := EquitableSplit(vector.Quantity{6}, demand)
	if cons[0].Total() != 3 || cons[1].Total() != 3 {
		t.Errorf("split = %v/%v, want 3/3", cons[0], cons[1])
	}
}

func TestEquitableSplitUnequalDemands(t *testing.T) {
	// Node 0 wants 8, node 1 wants 2; supply is 5. Max-min fairness on
	// *satisfaction* serves node 1 fully (2, reaching 100%) only after
	// node 0 has matched its ratio: the greedy walk equalizes ratios,
	// giving node 0 roughly 4 and node 1 roughly 1 (40% vs 50%)... the
	// exact outcome is checked against the invariant below instead of a
	// hardcoded split.
	demand := []vector.Quantity{{8}, {2}}
	cons := EquitableSplit(vector.Quantity{5}, demand)
	if got := cons[0].Total() + cons[1].Total(); got != 5 {
		t.Fatalf("total consumed %d, want 5", got)
	}
	s0 := Satisfaction(cons[0], demand[0])
	s1 := Satisfaction(cons[1], demand[1])
	// Satisfactions must be within one unit's worth of each other.
	if math.Abs(s0-s1) > 1.0/2+1e-9 {
		t.Errorf("satisfactions diverge: %.2f vs %.2f (%v, %v)", s0, s1, cons[0], cons[1])
	}
}

func TestEquitableSplitRespectsClassAvailability(t *testing.T) {
	// Node 0 only wants class 0, node 1 only class 1; supply has only
	// class 1. All of it must go to node 1.
	demand := []vector.Quantity{{3, 0}, {0, 3}}
	cons := EquitableSplit(vector.Quantity{0, 2}, demand)
	if !cons[0].IsZero() {
		t.Errorf("node 0 consumed %v from an unavailable class", cons[0])
	}
	if cons[1].Total() != 2 {
		t.Errorf("node 1 consumed %v, want 2", cons[1])
	}
}

// TestEquitableVsThroughput exhibits the trade-off the paper's §6
// anticipates: throughput-optimal allocations may starve a node that
// equitable allocations serve.
func TestEquitableVsThroughput(t *testing.T) {
	demand := []vector.Quantity{{6}, {2}}
	agg := vector.Quantity{4}
	eq := EquitableSplit(agg, demand)
	// Under equitable split both nodes get something.
	if eq[0].Total() == 0 || eq[1].Total() == 0 {
		t.Errorf("equitable split starved a node: %v", eq)
	}
	// A throughput-only allocation could give all 4 to node 0; its min
	// satisfaction would be 0, strictly worse than equitable's.
	throughputMin := MinSatisfaction([]vector.Quantity{{4}, {0}}, demand)
	equitableMin := MinSatisfaction(eq, demand)
	if equitableMin <= throughputMin {
		t.Errorf("equitable min %.2f not above throughput-greedy min %.2f", equitableMin, throughputMin)
	}
}

// Property: the split never exceeds demand or supply, and the minimum
// satisfaction cannot be improved by moving one unit between nodes.
func TestQuickEquitableSplitInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(3)
		k := 1 + rng.Intn(3)
		demand := make([]vector.Quantity, n)
		for i := range demand {
			demand[i] = vector.New(k)
			for c := range demand[i] {
				demand[i][c] = rng.Intn(6)
			}
		}
		agg := vector.New(k)
		for c := range agg {
			agg[c] = rng.Intn(10)
		}
		cons := EquitableSplit(agg, demand)
		used := vector.Sum(cons)
		for c := 0; c < k; c++ {
			if used[c] > agg[c] {
				t.Fatalf("trial %d: class %d oversupplied (%d > %d)", trial, c, used[c], agg[c])
			}
		}
		for i := range cons {
			if !cons[i].LEQ(demand[i]) {
				t.Fatalf("trial %d: node %d consumed beyond demand", trial, i)
			}
		}
		// Exchange optimality: taking one unit from a richer node and
		// giving it to a poorer one (same class) must not raise the min
		// satisfaction by more than numerical slack — i.e. the greedy
		// result is locally max-min optimal.
		base := MinSatisfaction(cons, demand)
		for from := 0; from < n; from++ {
			for to := 0; to < n; to++ {
				if from == to {
					continue
				}
				for c := 0; c < k; c++ {
					if cons[from][c] == 0 || cons[to][c] >= demand[to][c] {
						continue
					}
					alt := make([]vector.Quantity, n)
					for i := range cons {
						alt[i] = cons[i].Clone()
					}
					alt[from][c]--
					alt[to][c]++
					if MinSatisfaction(alt, demand) > base+1e-9 {
						t.Fatalf("trial %d: moving a unit %d->%d class %d improves min satisfaction", trial, from, to, c)
					}
				}
			}
		}
	}
}
