package economics

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/qamarket/qamarket/internal/vector"
)

// figure1Sets builds the supply sets of the paper's motivating example
// for one 500 ms period: N1 evaluates q1 in 400 ms and q2 in 100 ms,
// N2 in 450 ms and 500 ms.
func figure1Sets() []EnumerableSupplySet {
	return []EnumerableSupplySet{
		TimeBudgetSupplySet{Cost: []float64{400, 100}, Budget: 500},
		TimeBudgetSupplySet{Cost: []float64{450, 500}, Budget: 500},
	}
}

func TestThroughputPreference(t *testing.T) {
	a := vector.Quantity{5, 0}
	b := vector.Quantity{2, 2}
	if ThroughputPreference(a, b) != 1 {
		t.Error("5 queries should beat 4")
	}
	if ThroughputPreference(b, a) != -1 {
		t.Error("4 queries should lose to 5")
	}
	if ThroughputPreference(a, vector.Quantity{0, 5}) != 0 {
		t.Error("equal totals should be indifferent")
	}
}

func TestExcessDemand(t *testing.T) {
	// Def. 2 with the paper's example: demand (2,6), supply (2,4) gives
	// z = (0,2).
	d := []vector.Quantity{{1, 6}, {1, 0}}
	s := []vector.Quantity{{0, 4}, {2, 0}}
	z := ExcessDemand(d, s)
	if want := (vector.Quantity{0, 2}); !z.Equal(want) {
		t.Errorf("ExcessDemand = %v, want %v", z, want)
	}
	if InEquilibrium(d, s) {
		t.Error("nonzero excess demand reported as equilibrium")
	}
	if !InEquilibrium(d, []vector.Quantity{{1, 6}, {1, 0}}) {
		t.Error("exact match not reported as equilibrium")
	}
}

func TestAllocationValid(t *testing.T) {
	demand := []vector.Quantity{{1, 6}, {1, 0}}
	ok := Allocation{
		Supply:      []vector.Quantity{{0, 5}, {1, 0}},
		Consumption: []vector.Quantity{{1, 5}, {0, 0}},
	}
	if err := ok.Valid(demand); err != nil {
		t.Errorf("valid allocation rejected: %v", err)
	}
	overconsume := Allocation{
		Supply:      []vector.Quantity{{2, 0}, {0, 0}},
		Consumption: []vector.Quantity{{2, 0}, {0, 0}},
	}
	if err := overconsume.Valid(demand); err == nil {
		t.Error("consumption beyond demand accepted")
	}
	unbalanced := Allocation{
		Supply:      []vector.Quantity{{1, 0}, {0, 0}},
		Consumption: []vector.Quantity{{0, 0}, {0, 0}},
	}
	if err := unbalanced.Valid(demand); err == nil {
		t.Error("supply != consumption accepted")
	}
	negative := Allocation{
		Supply:      []vector.Quantity{{-1, 0}, {1, 0}},
		Consumption: []vector.Quantity{{0, 0}, {0, 0}},
	}
	if err := negative.Valid(demand); err == nil {
		t.Error("negative supply accepted")
	}
}

func TestDominates(t *testing.T) {
	prefs := []Preference{ThroughputPreference, ThroughputPreference}
	// The paper's Section 2.2 comparison: QA (5,1) dominates LB (2,1).
	lb := Allocation{Consumption: []vector.Quantity{{1, 1}, {1, 0}}}
	qa := Allocation{Consumption: []vector.Quantity{{0, 5}, {1, 0}}}
	if !Dominates(qa, lb, prefs) {
		t.Error("QA allocation should dominate LB (Section 2.2)")
	}
	if Dominates(lb, qa, prefs) {
		t.Error("LB should not dominate QA")
	}
	if Dominates(qa, qa, prefs) {
		t.Error("an allocation must not dominate itself")
	}
}

func TestFigure1LBNotParetoQAPareto(t *testing.T) {
	// Demand of the first 500 ms period: N1 wants 1×q1 + 6×q2, N2 wants
	// 1×q1.
	demand := []vector.Quantity{{1, 6}, {1, 0}}
	sets := figure1Sets()
	prefs := []Preference{ThroughputPreference, ThroughputPreference}

	// LB consumed (1,1) at N1 and (1,0) at N2 (3 queries total).
	lb := Allocation{
		Supply:      []vector.Quantity{{1, 1}, {1, 0}},
		Consumption: []vector.Quantity{{1, 1}, {1, 0}},
	}
	if err := lb.Valid(demand); err != nil {
		t.Fatalf("LB allocation invalid: %v", err)
	}
	if IsParetoOptimal(lb, demand, sets, prefs) {
		t.Error("the paper states the LB allocation is not Pareto optimal")
	}

	// QA had N1 supply only q2 (5 of them fit 500 ms) and N2 supply q1.
	// Per Figure 2, N1 consumes 5 queries and N2 consumes 1.
	qa := Allocation{
		Supply:      []vector.Quantity{{0, 5}, {1, 0}},
		Consumption: []vector.Quantity{{0, 5}, {1, 0}},
	}
	if err := qa.Valid(demand); err != nil {
		t.Fatalf("QA allocation invalid: %v", err)
	}
	if !IsParetoOptimal(qa, demand, sets, prefs) {
		t.Error("the QA allocation should be Pareto optimal")
	}
}

func TestTimeBudgetFeasible(t *testing.T) {
	set := TimeBudgetSupplySet{Cost: []float64{400, 100}, Budget: 500}
	cases := []struct {
		s    vector.Quantity
		want bool
	}{
		{vector.Quantity{0, 0}, true},
		{vector.Quantity{1, 1}, true},  // 500 exactly
		{vector.Quantity{0, 5}, true},  // 500 exactly
		{vector.Quantity{1, 2}, false}, // 600
		{vector.Quantity{0, 6}, false},
		{vector.Quantity{-1, 0}, false},
		{vector.Quantity{0}, false}, // wrong dimension
	}
	for _, c := range cases {
		if got := set.Feasible(c.s); got != c.want {
			t.Errorf("Feasible(%v) = %t, want %t", c.s, got, c.want)
		}
	}
	// A class with non-positive cost is not evaluable at all.
	missing := TimeBudgetSupplySet{Cost: []float64{0, 100}, Budget: 500}
	if missing.Feasible(vector.Quantity{1, 0}) {
		t.Error("class with cost 0 should be infeasible")
	}
}

func TestBestResponseFollowsPrices(t *testing.T) {
	set := TimeBudgetSupplySet{Cost: []float64{400, 100}, Budget: 500}
	// Equal prices: q2 has 4x the value density, fill with q2.
	s := set.BestResponse(vector.Prices{1, 1})
	if want := (vector.Quantity{0, 5}); !s.Equal(want) {
		t.Errorf("BestResponse(1,1) = %v, want %v", s, want)
	}
	// Price of q1 high enough to flip the density order.
	s = set.BestResponse(vector.Prices{10, 1})
	if want := (vector.Quantity{1, 1}); !s.Equal(want) {
		t.Errorf("BestResponse(10,1) = %v, want %v", s, want)
	}
}

func TestBestResponseAlwaysFeasible(t *testing.T) {
	f := func(c1, c2, c3 uint8, p1, p2, p3 uint8) bool {
		set := TimeBudgetSupplySet{
			Cost:   []float64{float64(c1), float64(c2), float64(c3)},
			Budget: 500,
		}
		p := vector.Prices{float64(p1) + 1, float64(p2) + 1, float64(p3) + 1}
		return set.Feasible(set.BestResponse(p))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTatonnementConvergesSimpleMarket(t *testing.T) {
	// One buyer demands 5×q2 and 1×q1; two sellers as in Figure 1. The
	// system can exactly produce that demand, so equilibrium exists.
	demand := []vector.Quantity{{1, 5}, {0, 0}}
	sets := []SupplySet{
		TimeBudgetSupplySet{Cost: []float64{400, 100}, Budget: 500},
		TimeBudgetSupplySet{Cost: []float64{450, 500}, Budget: 500},
	}
	res, err := Tatonnement(demand, sets, vector.NewPrices(2, 1), DefaultTatonnement())
	if err != nil {
		t.Fatalf("tâtonnement failed after %d iterations: excess %v", res.Iterations, res.Excess)
	}
	if !res.Excess.IsZero() {
		t.Errorf("converged with nonzero excess %v", res.Excess)
	}
	agg := vector.Sum(res.Supply)
	if want := (vector.Quantity{1, 5}); !agg.Equal(want) {
		t.Errorf("equilibrium supply %v, want %v", agg, want)
	}
}

func TestTatonnementRejectsBadInput(t *testing.T) {
	if _, err := Tatonnement(nil, nil, vector.NewPrices(1, 1), DefaultTatonnement()); err == nil {
		t.Error("empty market accepted")
	}
	demand := []vector.Quantity{{1}}
	sets := []SupplySet{TimeBudgetSupplySet{Cost: []float64{100}, Budget: 500}}
	cfg := DefaultTatonnement()
	cfg.Lambda = 0
	if _, err := Tatonnement(demand, sets, vector.NewPrices(1, 1), cfg); err == nil {
		t.Error("zero lambda accepted")
	}
}

func TestTatonnementNoConvergence(t *testing.T) {
	// Demand that can never be met (10 queries of a class that fits at
	// most 1 per period in the whole system) cannot reach z=0.
	demand := []vector.Quantity{{10}}
	sets := []SupplySet{TimeBudgetSupplySet{Cost: []float64{400}, Budget: 500}}
	cfg := DefaultTatonnement()
	cfg.MaxIterations = 50
	_, err := Tatonnement(demand, sets, vector.NewPrices(1, 1), cfg)
	if err != ErrNoConvergence {
		t.Errorf("err = %v, want ErrNoConvergence", err)
	}
}

func TestTradeCheck(t *testing.T) {
	seller := TimeBudgetSupplySet{Cost: []float64{400, 100}, Budget: 500}
	tc := TradeCheck{Seller: seller}
	zero := vector.New(2)

	// Infeasible trade: two q1 (800ms) break rule 1.
	if tc.Allowed(zero, vector.Quantity{2, 0}, vector.Quantity{2, 0}) {
		t.Error("infeasible trade allowed")
	}
	// Trade of 1×q1 while the buyer still wants q2 the seller could add:
	// violates rule 2 (does not exhaust other trade).
	if tc.Allowed(zero, vector.Quantity{1, 0}, vector.Quantity{1, 3}) {
		t.Error("non-exhaustive trade allowed")
	}
	// Trade of 1×q1 + 1×q2 saturates the seller: allowed.
	if !tc.Allowed(zero, vector.Quantity{1, 1}, vector.Quantity{1, 3}) {
		t.Error("exhaustive trade rejected")
	}
	// Trade covering the buyer's whole remaining demand: allowed even if
	// the seller has slack.
	if !tc.Allowed(zero, vector.Quantity{0, 2}, vector.Quantity{0, 2}) {
		t.Error("demand-covering trade rejected")
	}
}

func TestEnumerateMatchesFeasible(t *testing.T) {
	set := TimeBudgetSupplySet{Cost: []float64{400, 100}, Budget: 500}
	all := set.Enumerate()
	seen := map[string]bool{}
	for _, s := range all {
		if !set.Feasible(s) {
			t.Errorf("enumerated infeasible vector %v", s)
		}
		if seen[s.String()] {
			t.Errorf("duplicate vector %v", s)
		}
		seen[s.String()] = true
	}
	// (1,1), (1,0), (0,0..5): 8 vectors total.
	if len(all) != 8 {
		t.Errorf("enumerated %d vectors, want 8", len(all))
	}
}

// Property: FindDominating never returns an allocation that fails
// Valid or fails to dominate.
func TestQuickFindDominatingSound(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		demand := []vector.Quantity{
			{rng.Intn(3), rng.Intn(6)},
			{rng.Intn(3), rng.Intn(3)},
		}
		sets := []EnumerableSupplySet{
			TimeBudgetSupplySet{Cost: []float64{float64(100 + rng.Intn(400)), float64(50 + rng.Intn(200))}, Budget: 500},
			TimeBudgetSupplySet{Cost: []float64{float64(100 + rng.Intn(400)), float64(50 + rng.Intn(200))}, Budget: 500},
		}
		prefs := []Preference{ThroughputPreference, ThroughputPreference}
		base := Allocation{
			Supply:      []vector.Quantity{{0, 0}, {0, 0}},
			Consumption: []vector.Quantity{{0, 0}, {0, 0}},
		}
		dom := FindDominating(base, demand, sets, prefs)
		if dom == nil {
			continue
		}
		if err := dom.Valid(demand); err != nil {
			t.Fatalf("trial %d: dominating allocation invalid: %v", trial, err)
		}
		if !Dominates(*dom, base, prefs) {
			t.Fatalf("trial %d: returned allocation does not dominate", trial)
		}
	}
}
