package economics

import (
	"github.com/qamarket/qamarket/internal/vector"
)

// EnumerableSupplySet extends SupplySet with exhaustive enumeration of
// its elements, enabling brute-force Pareto verification on small
// markets (used by tests and by the Figure 1/2 re-enactments).
type EnumerableSupplySet interface {
	SupplySet
	// Enumerate returns every feasible supply vector. The slice must not
	// be mutated by callers.
	Enumerate() []vector.Quantity
}

// IsParetoOptimal reports whether alloc is Pareto optimal (Def. 1) with
// respect to the given demand vectors, enumerable supply sets and
// preference relations, by exhaustively searching for a dominating
// feasible allocation. Exponential in the number of nodes; intended for
// the small instances used in verification.
func IsParetoOptimal(alloc Allocation, demand []vector.Quantity, sets []EnumerableSupplySet, prefs []Preference) bool {
	dom := FindDominating(alloc, demand, sets, prefs)
	return dom == nil
}

// FindDominating searches for a feasible allocation that Pareto
// dominates alloc; it returns nil if none exists. Feasibility follows
// Section 2.2: each node's supply comes from its supply set, the
// aggregate supply equals the aggregate consumption, and each node's
// consumption is bounded by its demand.
func FindDominating(alloc Allocation, demand []vector.Quantity, sets []EnumerableSupplySet, prefs []Preference) *Allocation {
	choices := make([][]vector.Quantity, len(sets))
	for i, s := range sets {
		choices[i] = s.Enumerate()
	}
	idx := make([]int, len(sets))
	supply := make([]vector.Quantity, len(sets))
	for {
		for i := range sets {
			supply[i] = choices[i][idx[i]]
		}
		agg := vector.Sum(supply)
		if cons := findDominatingSplit(agg, demand, alloc.Consumption, prefs); cons != nil {
			cand := Allocation{Supply: supply, Consumption: cons}
			if Dominates(cand, alloc, prefs) {
				out := cand.Clone()
				return &out
			}
		}
		if !advance(idx, choices) {
			return nil
		}
	}
}

// findDominatingSplit exhaustively searches for a split of the
// aggregate supply agg into per-node consumption vectors c_i <= d_i
// with sum c_i = agg such that every node weakly prefers its share over
// base[i] and at least one strictly prefers it. It returns nil when no
// such split exists. Exponential in nodes × classes × quantities;
// strictly a verification tool for small instances.
func findDominatingSplit(agg vector.Quantity, demand, base []vector.Quantity, prefs []Preference) []vector.Quantity {
	n := len(demand)
	k := agg.Len()
	cons := make([]vector.Quantity, n)
	var rec func(node int, left vector.Quantity) bool
	rec = func(node int, left vector.Quantity) bool {
		if node == n-1 {
			// The last node must absorb exactly the remainder so that
			// aggregate consumption equals aggregate supply (eq. 3).
			if !left.LEQ(demand[node]) {
				return false
			}
			cons[node] = left.Clone()
			for i := range cons {
				if prefs[i](cons[i], base[i]) < 0 {
					return false
				}
			}
			for i := range cons {
				if prefs[i](cons[i], base[i]) > 0 {
					return true
				}
			}
			return false // weakly equal everywhere: no domination
		}
		cap := left.Min(demand[node])
		cur := vector.New(k)
		var enum func(class int) bool
		enum = func(class int) bool {
			if class == k {
				cons[node] = cur.Clone()
				return rec(node+1, left.Sub(cur))
			}
			for v := 0; v <= cap[class]; v++ {
				cur[class] = v
				if enum(class + 1) {
					return true
				}
			}
			cur[class] = 0
			return false
		}
		return enum(0)
	}
	if n == 0 || !rec(0, agg.Clone()) {
		return nil
	}
	return cons
}

func advance(idx []int, choices [][]vector.Quantity) bool {
	for i := 0; i < len(idx); i++ {
		idx[i]++
		if idx[i] < len(choices[i]) {
			return true
		}
		idx[i] = 0
	}
	return false
}

// TimeBudgetSupplySet is the canonical supply set used throughout the
// experiments: during one period of length Budget (milliseconds of
// processing time), a node can evaluate any mix of queries whose summed
// per-class costs fit the budget. Cost[k] <= 0 marks a class the node
// cannot evaluate at all (e.g. it lacks the data), matching the
// heterogeneous-schema setting of Section 5.1.
type TimeBudgetSupplySet struct {
	Cost   []float64 // per-class execution cost on this node, ms
	Budget float64   // period capacity, ms
}

// Feasible implements SupplySet.
func (t TimeBudgetSupplySet) Feasible(s vector.Quantity) bool {
	if len(s) != len(t.Cost) || !s.IsValid() {
		return false
	}
	used := 0.0
	for k, n := range s {
		if n == 0 {
			continue
		}
		if t.Cost[k] <= 0 {
			return false
		}
		used += float64(n) * t.Cost[k]
	}
	return used <= t.Budget+1e-9
}

// BestResponse implements SupplySet by solving the bounded knapsack of
// eq. (4) greedily by value density p_k / cost_k. The greedy solution is
// the integer rounding of the exact continuous optimum (which puts the
// whole budget on the densest class); Section 5.1 attributes QA-NT's
// small-load losses to exactly this integer rounding.
func (t TimeBudgetSupplySet) BestResponse(p vector.Prices) vector.Quantity {
	k := len(t.Cost)
	s := vector.New(k)
	order := densityOrder(p, t.Cost)
	budget := t.Budget
	for _, c := range order {
		if t.Cost[c] <= 0 || t.Cost[c] > budget {
			continue
		}
		n := int(budget / t.Cost[c])
		s[c] = n
		budget -= float64(n) * t.Cost[c]
	}
	return s
}

// Enumerate implements EnumerableSupplySet by depth-first enumeration of
// all feasible integer mixes. Only safe for small budgets/class counts.
func (t TimeBudgetSupplySet) Enumerate() []vector.Quantity {
	var out []vector.Quantity
	cur := vector.New(len(t.Cost))
	var rec func(class int, budget float64)
	rec = func(class int, budget float64) {
		if class == len(t.Cost) {
			out = append(out, cur.Clone())
			return
		}
		rec(class+1, budget) // zero of this class
		if t.Cost[class] <= 0 {
			return
		}
		for n := 1; float64(n)*t.Cost[class] <= budget+1e-9; n++ {
			cur[class] = n
			rec(class+1, budget-float64(n)*t.Cost[class])
		}
		cur[class] = 0
	}
	rec(0, t.Budget)
	return out
}

// densityOrder returns class indices sorted by decreasing p[k]/cost[k],
// skipping un-evaluable classes. Ties break toward the lower class index
// so the solver is deterministic.
func densityOrder(p vector.Prices, cost []float64) []int {
	order := make([]int, 0, len(cost))
	for c := range cost {
		if cost[c] > 0 {
			order = append(order, c)
		}
	}
	// Insertion sort: K is small in the supply solver's hot path and the
	// ordering must be stable for determinism.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0; j-- {
			a, b := order[j-1], order[j]
			da := p[a] / cost[a]
			db := p[b] / cost[b]
			if db > da {
				order[j-1], order[j] = b, a
			} else {
				break
			}
		}
	}
	return order
}
