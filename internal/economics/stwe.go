package economics

import (
	"math"

	"github.com/qamarket/qamarket/internal/vector"
)

// Second Theorem of Welfare Economics (Section 3.3's closing remark):
// any Pareto-optimal allocation can be realized as a market equilibrium
// after suitable lump-sum redistribution. In the query market the
// redistribution takes the form of *personalized prices*: a coordinator
// wanting to steer the federation into a specific Pareto-optimal
// allocation hands each node its own price vector under which the
// node's target supply vector is already profit-maximal — so the
// selfish QA-NT best response reproduces the target.
//
// Integer supply sets are non-convex, so not every Pareto-optimal
// vertex is supportable by prices (the same rounding phenomenon behind
// Section 5.1's small-load losses); SupportingPrices reports whether
// support exists.

// SupportingPrices searches for a strictly positive price vector under
// which target is a best response of the supply set. The search walks
// a geometric grid of relative prices (sufficient for the low-
// dimensional markets of the experiments; resolution is the number of
// grid points per axis). It returns ok=false when no grid point
// supports the target — either because the target is not optimal for
// any prices (non-convexity) or the resolution is too coarse.
func SupportingPrices(set SupplySet, target vector.Quantity, resolution int) (vector.Prices, bool) {
	k := target.Len()
	if k == 0 {
		return nil, false
	}
	if resolution < 2 {
		resolution = 16
	}
	// Grid over log-spaced relative prices in [1/64, 64] with the first
	// class pinned to 1 (only relative prices matter).
	levels := make([]float64, resolution)
	lo, hi := 1.0/64, 64.0
	ratio := math.Pow(hi/lo, 1/float64(resolution-1))
	v := lo
	for i := range levels {
		levels[i] = v
		v *= ratio
	}
	prices := vector.NewPrices(k, 1)
	var rec func(class int) (vector.Prices, bool)
	rec = func(class int) (vector.Prices, bool) {
		if class == k {
			best := set.BestResponse(prices)
			if best.Value(prices) == target.Value(prices) && set.Feasible(target) {
				return prices.Clone(), true
			}
			return nil, false
		}
		if class == 0 {
			prices[0] = 1 // normalization
			return rec(1)
		}
		for _, level := range levels {
			prices[class] = level
			if p, ok := rec(class + 1); ok {
				return p, true
			}
		}
		return nil, false
	}
	return rec(0)
}

// VerifySTWE checks the theorem's conclusion for a whole allocation:
// every node's target supply vector must be supportable by some
// personalized price vector. It returns the per-node prices, or false
// with the index of the first unsupportable node.
func VerifySTWE(sets []SupplySet, targets []vector.Quantity, resolution int) ([]vector.Prices, int, bool) {
	out := make([]vector.Prices, len(sets))
	for i, set := range sets {
		p, ok := SupportingPrices(set, targets[i], resolution)
		if !ok {
			return nil, i, false
		}
		out[i] = p
	}
	return out, -1, true
}
