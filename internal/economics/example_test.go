package economics_test

import (
	"fmt"

	"github.com/qamarket/qamarket/internal/economics"
	"github.com/qamarket/qamarket/internal/vector"
)

// ExampleTatonnement finds equilibrium prices for the paper's Figure 1
// two-node market under a steady demand of one q1 and five q2.
func ExampleTatonnement() {
	demand := []vector.Quantity{{1, 5}, {0, 0}}
	sets := []economics.SupplySet{
		economics.TimeBudgetSupplySet{Cost: []float64{400, 100}, Budget: 500}, // N1
		economics.TimeBudgetSupplySet{Cost: []float64{450, 500}, Budget: 500}, // N2
	}
	res, err := economics.Tatonnement(demand, sets, vector.NewPrices(2, 1), economics.DefaultTatonnement())
	if err != nil {
		fmt.Println("no equilibrium:", err)
		return
	}
	fmt.Println("aggregate supply:", vector.Sum(res.Supply))
	fmt.Println("excess demand:", res.Excess)
	// Output:
	// aggregate supply: (1, 5)
	// excess demand: (0, 0)
}

// ExampleEquitableSplit shows the Section 6 extension: max-min fair
// division of a scarce aggregate supply.
func ExampleEquitableSplit() {
	demand := []vector.Quantity{{4}, {4}}
	cons := economics.EquitableSplit(vector.Quantity{6}, demand)
	fmt.Println("node 0:", cons[0], "node 1:", cons[1])
	fmt.Printf("min satisfaction: %.2f\n", economics.MinSatisfaction(cons, demand))
	// Output:
	// node 0: (3) node 1: (3)
	// min satisfaction: 0.75
}

// ExampleDominates verifies the paper's Section 2.2 claim that the QA
// allocation Pareto-dominates the load balancer's.
func ExampleDominates() {
	prefs := []economics.Preference{economics.ThroughputPreference, economics.ThroughputPreference}
	lb := economics.Allocation{Consumption: []vector.Quantity{{1, 1}, {1, 0}}}
	qa := economics.Allocation{Consumption: []vector.Quantity{{0, 5}, {1, 0}}}
	fmt.Println(economics.Dominates(qa, lb, prefs))
	// Output:
	// true
}
