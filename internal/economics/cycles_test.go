package economics

import (
	"testing"

	"github.com/qamarket/qamarket/internal/vector"
)

// TestTatonnementLambdaTradeoff reproduces the λ trade-off of eq. (6)
// and the convergence caveats of Mukherji [11]: with a small step the
// umpire converges; with an absurdly large one the price recursion
// overshoots and cycles, exhausting the iteration budget.
func TestTatonnementLambdaTradeoff(t *testing.T) {
	demand := []vector.Quantity{{1, 5}, {0, 0}}
	sets := []SupplySet{
		TimeBudgetSupplySet{Cost: []float64{400, 100}, Budget: 500},
		TimeBudgetSupplySet{Cost: []float64{450, 500}, Budget: 500},
	}
	small := TatonnementConfig{Lambda: 0.05, MaxIterations: 5000, Tolerance: 0}
	resSmall, err := Tatonnement(demand, sets, vector.NewPrices(2, 1), small)
	if err != nil {
		t.Fatalf("small lambda failed to converge: %v (excess %v)", err, resSmall.Excess)
	}

	// Integer supply sets flip between knapsack vertices; a huge step
	// bounces the prices across the flip boundary every iteration.
	huge := TatonnementConfig{Lambda: 64, MaxIterations: 400, Tolerance: 0}
	// Use a demand no vertex matches so the process must balance two
	// classes at once — the regime where overshoot cycles.
	hardDemand := []vector.Quantity{{1, 3}, {0, 0}}
	hardSets := []SupplySet{TimeBudgetSupplySet{Cost: []float64{200, 100}, Budget: 500}}
	if _, err := Tatonnement(hardDemand, hardSets, vector.NewPrices(2, 1), huge); err == nil {
		t.Error("vertex-incompatible demand with huge lambda should not converge")
	}
	// The same impossible demand also fails with a small step (it is
	// unreachable, not merely unstable) — the paper's rounding-error
	// discussion in Section 5.1.
	if _, err := Tatonnement(hardDemand, hardSets, vector.NewPrices(2, 1), small); err == nil {
		t.Error("vertex-incompatible demand should be unreachable at any lambda")
	}
}

// TestTatonnementIterationCount confirms the monotone part of the
// trade-off: a larger (but still stable) step reaches equilibrium in
// fewer iterations on the Figure 1 market.
func TestTatonnementIterationCount(t *testing.T) {
	demand := []vector.Quantity{{1, 5}, {0, 0}}
	sets := []SupplySet{
		TimeBudgetSupplySet{Cost: []float64{400, 100}, Budget: 500},
		TimeBudgetSupplySet{Cost: []float64{450, 500}, Budget: 500},
	}
	// Make the starting point far from equilibrium so iterations matter.
	p0 := vector.Prices{8, 0.1}
	iters := func(lambda float64) int {
		cfg := TatonnementConfig{Lambda: lambda, MaxIterations: 100000, Tolerance: 0}
		res, err := Tatonnement(demand, sets, p0, cfg)
		if err != nil {
			t.Fatalf("lambda %g: %v", lambda, err)
		}
		return res.Iterations
	}
	slow := iters(0.01)
	fast := iters(0.2)
	if fast >= slow {
		t.Errorf("larger lambda not faster: %d iterations at 0.2 vs %d at 0.01", fast, slow)
	}
}
