// Package economics implements the microeconomic machinery of Section 3
// of the paper: excess demand (Def. 2), market competitive equilibrium
// (Def. 3), the centralized tâtonnement process of eq. (6), the
// non-tâtonnement trading rule (Def. 4) and Pareto dominance/optimality
// (Def. 1).
//
// The package is deliberately independent of query processing: it works
// on abstract supply sets and preference relations so its properties can
// be tested against textbook examples as well as the query market built
// on top of it by internal/market.
package economics

import (
	"errors"
	"fmt"

	"github.com/qamarket/qamarket/internal/vector"
)

// SupplySet describes the feasible supply vectors S_i of one node
// (Section 2.2). Implementations must be deterministic.
type SupplySet interface {
	// Feasible reports whether s is an element of the supply set.
	Feasible(s vector.Quantity) bool
	// BestResponse solves eq. (4): it returns a supply vector in the set
	// maximizing p·s (a profit-maximizing "first order conditions"
	// solution). Ties may be broken arbitrarily but deterministically.
	BestResponse(p vector.Prices) vector.Quantity
}

// Preference is a preference relation over consumption vectors
// (the >=_i of Section 2.2). It returns:
//
//	+1 if a is strictly preferred to b,
//	 0 if the node is indifferent,
//	-1 if b is strictly preferred to a.
type Preference func(a, b vector.Quantity) int

// ThroughputPreference is the preference relation the paper adopts:
// a node prefers consuming as many queries as possible regardless of
// their class (c >=_i c' iff sum(c) >= sum(c')).
func ThroughputPreference(a, b vector.Quantity) int {
	ta, tb := a.Total(), b.Total()
	switch {
	case ta > tb:
		return 1
	case ta < tb:
		return -1
	default:
		return 0
	}
}

// Allocation is a candidate solution <[s_i],[c_i]> to the QA problem.
type Allocation struct {
	Supply      []vector.Quantity // s_i, one per node
	Consumption []vector.Quantity // c_i, one per node
}

// Clone deep-copies the allocation.
func (a Allocation) Clone() Allocation {
	out := Allocation{
		Supply:      make([]vector.Quantity, len(a.Supply)),
		Consumption: make([]vector.Quantity, len(a.Consumption)),
	}
	for i := range a.Supply {
		out.Supply[i] = a.Supply[i].Clone()
	}
	for i := range a.Consumption {
		out.Consumption[i] = a.Consumption[i].Clone()
	}
	return out
}

// AggregateSupply returns s = sum_i s_i (eq. 1).
func (a Allocation) AggregateSupply() vector.Quantity { return vector.Sum(a.Supply) }

// AggregateConsumption returns c = sum_i c_i (eq. 1).
func (a Allocation) AggregateConsumption() vector.Quantity { return vector.Sum(a.Consumption) }

// Valid checks the structural feasibility constraints of eq. (3) against
// the given demand vectors: every c_i <= d_i component-wise, every vector
// is in N^K, and aggregate supply equals aggregate consumption.
func (a Allocation) Valid(demand []vector.Quantity) error {
	if len(a.Supply) != len(a.Consumption) {
		return fmt.Errorf("economics: %d supply vs %d consumption vectors", len(a.Supply), len(a.Consumption))
	}
	if len(demand) != len(a.Consumption) {
		return fmt.Errorf("economics: %d demand vs %d consumption vectors", len(demand), len(a.Consumption))
	}
	for i, c := range a.Consumption {
		if !c.IsValid() {
			return fmt.Errorf("economics: node %d consumption %v outside N^K", i, c)
		}
		if !c.LEQ(demand[i]) {
			return fmt.Errorf("economics: node %d consumes %v beyond demand %v", i, c, demand[i])
		}
	}
	for i, s := range a.Supply {
		if !s.IsValid() {
			return fmt.Errorf("economics: node %d supply %v outside N^K", i, s)
		}
	}
	if s, c := a.AggregateSupply(), a.AggregateConsumption(); !s.Equal(c) {
		return fmt.Errorf("economics: aggregate supply %v != aggregate consumption %v", s, c)
	}
	return nil
}

// Dominates implements Def. 1: allocation a Pareto dominates b under the
// given per-node preferences iff every node weakly prefers a's
// consumption vector and at least one strictly prefers it.
func Dominates(a, b Allocation, prefs []Preference) bool {
	if len(a.Consumption) != len(b.Consumption) || len(prefs) != len(a.Consumption) {
		return false
	}
	strict := false
	for i := range a.Consumption {
		switch prefs[i](a.Consumption[i], b.Consumption[i]) {
		case -1:
			return false
		case 1:
			strict = true
		}
	}
	return strict
}

// ExcessDemand computes z(p) of Def. 2 given per-node demand and supply
// vectors: z_k = sum_i d_ik - s_ik. Note that prices enter only through
// the supply vectors, which callers obtain from SupplySet.BestResponse.
func ExcessDemand(demand, supply []vector.Quantity) vector.Quantity {
	d := vector.Sum(demand)
	s := vector.Sum(supply)
	return d.Sub(s)
}

// InEquilibrium reports whether the market is in competitive equilibrium
// (Def. 3): excess demand is zero in every class.
func InEquilibrium(demand, supply []vector.Quantity) bool {
	return ExcessDemand(demand, supply).IsZero()
}

// TatonnementConfig controls the centralized umpire iteration of eq. (6).
type TatonnementConfig struct {
	// Lambda is the price-adjustment step λ of eq. (6). Must be > 0.
	Lambda float64
	// MaxIterations bounds the umpire loop.
	MaxIterations int
	// Tolerance stops the loop once every |z_k| <= Tolerance. The classic
	// process demands z = 0 exactly; with integer supply sets a small
	// residual may persist, mirroring the rounding errors Section 5.1
	// discusses.
	Tolerance int
}

// DefaultTatonnement returns the configuration used by the reference
// experiments: λ=0.05, at most 10,000 iterations, exact equilibrium.
func DefaultTatonnement() TatonnementConfig {
	return TatonnementConfig{Lambda: 0.05, MaxIterations: 10000, Tolerance: 0}
}

// ErrNoConvergence is returned by Tatonnement when the iteration budget
// is exhausted before reaching (approximate) equilibrium.
var ErrNoConvergence = errors.New("economics: tâtonnement did not converge")

// TatonnementResult reports the outcome of the umpire process.
type TatonnementResult struct {
	Prices     vector.Prices     // final price vector p*
	Supply     []vector.Quantity // best responses at p*
	Excess     vector.Quantity   // residual excess demand z(p*)
	Iterations int
}

// Tatonnement runs the classical centralized price-adjustment process of
// eq. (6): the umpire announces prices, collects best-response supply
// vectors, and sets p(t+1) = p(t) + λ z(p(t)) until excess demand
// vanishes. It exists as the centralized reference against which the
// decentralized QA-NT agent (internal/market) is validated.
//
// Demanded quantities are capped at demand when computing excess so that
// over-supplied classes push prices down, matching Def. 2 with the
// convention s_ik counts offered capacity.
func Tatonnement(demand []vector.Quantity, sets []SupplySet, p0 vector.Prices, cfg TatonnementConfig) (TatonnementResult, error) {
	if cfg.Lambda <= 0 {
		return TatonnementResult{}, errors.New("economics: lambda must be positive")
	}
	if len(demand) == 0 || len(sets) == 0 {
		return TatonnementResult{}, errors.New("economics: need at least one node")
	}
	p := p0.Clone()
	k := p.Len()
	var res TatonnementResult
	for it := 0; it < cfg.MaxIterations; it++ {
		supply := make([]vector.Quantity, len(sets))
		for i, s := range sets {
			supply[i] = s.BestResponse(p)
		}
		z := ExcessDemand(demand, supply)
		res = TatonnementResult{Prices: p.Clone(), Supply: supply, Excess: z, Iterations: it + 1}
		if maxAbs(z) <= cfg.Tolerance {
			return res, nil
		}
		for j := 0; j < k; j++ {
			// Multiplicative form of eq. (6): the step is proportional to
			// the current price so prices cannot cross zero.
			p[j] += cfg.Lambda * p[j] * sign(z[j])
			if p[j] < 1e-9 {
				p[j] = 1e-9
			}
		}
		p.Normalize()
	}
	return res, ErrNoConvergence
}

// TradeCheck implements the non-tâtonnement trading rule of Def. 4.
// It reports whether buyer i and seller j may increase their consumption
// and supply vectors by delta at the current state:
//
//  1. the seller's new supply vector must remain feasible, and
//  2. the trade must exhaust all possibilities of other trade: no
//     feasible extension epsilon of the seller's supply would leave the
//     buyer strictly better off than trading delta.
//
// Rule 2 is verified against the buyer's residual demand: a trade
// exhausts other possibilities iff either the buyer's demand for the
// traded classes is fully covered or the seller cannot feasibly supply
// more of a class the buyer still wants.
type TradeCheck struct {
	Seller SupplySet
}

// Allowed evaluates Def. 4 for a proposed trade delta given the seller's
// current supply commitment sj and the buyer's remaining (unmet) demand.
func (tc TradeCheck) Allowed(sj, delta, remaining vector.Quantity) bool {
	next := sj.Add(delta)
	if !next.IsValid() || !tc.Seller.Feasible(next) {
		return false // rule 1
	}
	// Rule 2: if the buyer still wants more of some class and the seller
	// could feasibly add one more unit of it on top of the trade, the
	// trade does not exhaust all possibilities.
	for k := range remaining {
		if remaining[k] > delta[k] {
			probe := next.Clone()
			probe[k]++
			if tc.Seller.Feasible(probe) {
				return false
			}
		}
	}
	return true
}

func maxAbs(q vector.Quantity) int {
	m := 0
	for _, v := range q {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}

func sign(v int) float64 {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	default:
		return 0
	}
}
