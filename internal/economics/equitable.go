package economics

import (
	"math"
	"sort"

	"github.com/qamarket/qamarket/internal/vector"
)

// Equitable allocation — the first future-work extension of the
// paper's Section 6: instead of maximizing raw throughput, equalize
// the *utility (satisfaction)* of all nodes, where a node's
// satisfaction is the fraction of its demand that gets consumed.

// Satisfaction returns a node's utility under the equitable criterion:
// consumed / demanded queries (1 when it demanded nothing).
func Satisfaction(consumption, demand vector.Quantity) float64 {
	d := demand.Total()
	if d == 0 {
		return 1
	}
	return float64(consumption.Total()) / float64(d)
}

// EquitablePreference builds a preference relation under which a node
// with the given demand prefers the consumption vector giving it the
// higher satisfaction. With identical demands it coincides with
// ThroughputPreference; with unequal demands it rescales.
func EquitablePreference(demand vector.Quantity) Preference {
	return func(a, b vector.Quantity) int {
		sa := Satisfaction(a, demand)
		sb := Satisfaction(b, demand)
		switch {
		case sa > sb+1e-12:
			return 1
		case sb > sa+1e-12:
			return -1
		default:
			return 0
		}
	}
}

// EquitableSplit distributes an aggregate supply vector to nodes so as
// to maximize the minimum satisfaction (a max-min fair allocation):
// units are handed out one at a time, always to the least-satisfied
// node that still has unmet demand for a class with remaining supply.
// Ties break toward the lower node index, so the split is
// deterministic. The returned vectors satisfy c_i <= d_i and
// sum c_i <= agg component-wise.
func EquitableSplit(agg vector.Quantity, demand []vector.Quantity) []vector.Quantity {
	n := len(demand)
	k := agg.Len()
	cons := make([]vector.Quantity, n)
	for i := range cons {
		cons[i] = vector.New(k)
	}
	left := agg.Clone()
	greedyEquitable(cons, demand, left)
	repairEquitable(cons, demand)
	return cons
}

// greedyEquitable is the water-filling first pass of EquitableSplit.
func greedyEquitable(cons, demand []vector.Quantity, left vector.Quantity) {
	n := len(demand)
	k := left.Len()
	for {
		best := -1
		bestSat := math.Inf(1)
		for i := 0; i < n; i++ {
			if !hasServableDemand(cons[i], demand[i], left) {
				continue
			}
			if s := Satisfaction(cons[i], demand[i]); s < bestSat {
				bestSat, best = s, i
			}
		}
		if best < 0 {
			return
		}
		// Give the least-satisfied node one unit of the servable class
		// with the most slack (remaining supply minus the other nodes'
		// unmet demand for it), so contested classes are preserved for
		// the nodes that have no alternative. Ties break toward the
		// lower class index, keeping the split deterministic.
		bestClass, bestSlack := -1, math.Inf(-1)
		for c := 0; c < k; c++ {
			if left[c] == 0 || cons[best][c] >= demand[best][c] {
				continue
			}
			others := 0
			for i := 0; i < n; i++ {
				if i != best {
					others += demand[i][c] - cons[i][c]
				}
			}
			if slack := float64(left[c] - others); slack > bestSlack {
				bestSlack, bestClass = slack, c
			}
		}
		cons[best][bestClass]++
		left[bestClass]--
	}
}

// repairEquitable applies single-unit moves between nodes while they
// lexicographically improve the sorted satisfaction profile (the
// standard max-min betterment). Each applied move strictly improves a
// value from a finite set, so the loop terminates.
func repairEquitable(cons, demand []vector.Quantity) {
	n := len(cons)
	if n == 0 {
		return
	}
	k := cons[0].Len()
	for improved := true; improved; {
		improved = false
		base := sortedSats(cons, demand)
		for from := 0; from < n && !improved; from++ {
			for to := 0; to < n && !improved; to++ {
				if from == to {
					continue
				}
				for c := 0; c < k; c++ {
					if cons[from][c] == 0 || cons[to][c] >= demand[to][c] {
						continue
					}
					cons[from][c]--
					cons[to][c]++
					if lexGreater(sortedSats(cons, demand), base) {
						improved = true
						break
					}
					cons[from][c]++
					cons[to][c]--
				}
			}
		}
	}
}

func sortedSats(cons, demand []vector.Quantity) []float64 {
	out := make([]float64, len(cons))
	for i := range cons {
		out[i] = Satisfaction(cons[i], demand[i])
	}
	sort.Float64s(out)
	return out
}

func lexGreater(a, b []float64) bool {
	for i := range a {
		switch {
		case a[i] > b[i]+1e-12:
			return true
		case a[i] < b[i]-1e-12:
			return false
		}
	}
	return false
}

// hasServableDemand reports whether the node still wants some class
// with remaining aggregate supply.
func hasServableDemand(cons, demand, left vector.Quantity) bool {
	for c := range left {
		if left[c] > 0 && cons[c] < demand[c] {
			return true
		}
	}
	return false
}

// MinSatisfaction returns the smallest satisfaction across nodes — the
// objective EquitableSplit maximizes.
func MinSatisfaction(cons, demand []vector.Quantity) float64 {
	minS := math.Inf(1)
	for i := range cons {
		if s := Satisfaction(cons[i], demand[i]); s < minS {
			minS = s
		}
	}
	if math.IsInf(minS, 1) {
		return 1
	}
	return minS
}
