// Package desim is a minimal discrete-event simulation engine: a virtual
// millisecond clock and a time-ordered event heap. It is the substrate
// on which internal/sim rebuilds the paper's C++ federation simulator.
//
// Events scheduled for the same instant fire in scheduling order (FIFO),
// which keeps simulations deterministic regardless of map iteration or
// goroutine scheduling — there are no goroutines here at all.
//
// The engine is built for the hot path of paper-scale runs (millions of
// events per experiment): the heap is hand-rolled over a []*item slice
// rather than container/heap (no interface dispatch per sift level), and
// fired or cancelled items are recycled through a free list, so a
// steady-state simulation — e.g. a rolling period tick that re-arms
// itself from its own callback — schedules events without allocating.
// A generation counter on each item keeps stale Handles from cancelling
// a recycled slot.
package desim

import "fmt"

// Time is virtual simulation time in milliseconds.
type Time int64

// Event is a callback scheduled to fire at a virtual instant.
type Event func(now Time)

type item struct {
	at   Time
	seq  uint64
	run  Event
	gen  uint32
	dead bool
}

// Handle identifies a scheduled event so it can be cancelled. Handles
// returned by Every track the loop's most recent tick.
type Handle struct {
	it   *item
	gen  uint32
	roll *rollingHandle
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op. For Every loops it stops the next
// pending tick, ending the loop.
func (h Handle) Cancel() {
	if h.it != nil && h.it.gen == h.gen {
		h.it.dead = true
	}
	if h.roll != nil {
		h.roll.cur.Cancel()
	}
}

// Engine owns the clock and the pending-event queue. The zero value is
// ready to use.
type Engine struct {
	now    Time
	seq    uint64
	events []*item // min-heap ordered by (at, seq)
	fired  uint64
	free   []*item // recycled items awaiting reuse
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired returns how many events have executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events still queued (including any
// cancelled events not yet reaped).
func (e *Engine) Pending() int { return len(e.events) }

// At schedules run to fire at absolute time at. Scheduling in the past
// panics: it is always a logic error in a discrete-event model.
func (e *Engine) At(at Time, run Event) Handle {
	if at < e.now {
		panic(fmt.Sprintf("desim: scheduling at %d before now %d", at, e.now))
	}
	if run == nil {
		panic("desim: nil event")
	}
	var it *item
	if n := len(e.free); n > 0 {
		it = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		it.at = at
		it.run = run
		it.dead = false
	} else {
		it = &item{at: at, run: run}
	}
	it.seq = e.seq
	e.seq++
	e.push(it)
	return Handle{it: it, gen: it.gen}
}

// After schedules run to fire delay milliseconds from now.
func (e *Engine) After(delay Time, run Event) Handle {
	if delay < 0 {
		panic(fmt.Sprintf("desim: negative delay %d", delay))
	}
	return e.At(e.now+delay, run)
}

// recycle returns a popped item to the free list. The generation bump
// invalidates every Handle still pointing at it.
func (e *Engine) recycle(it *item) {
	it.run = nil
	it.gen++
	e.free = append(e.free, it)
}

// Step fires the earliest pending event and advances the clock to its
// timestamp. It returns false when the queue is empty.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		it := e.pop()
		if it.dead {
			e.recycle(it)
			continue
		}
		e.now = it.at
		e.fired++
		run := it.run
		// Recycle before running: the common rolling-tick pattern (an
		// event re-arming itself from its own callback) reuses this very
		// item, so steady-state ticking allocates nothing.
		e.recycle(it)
		run(e.now)
		return true
	}
	return false
}

// Run drains the event queue completely and returns the final time.
func (e *Engine) Run() Time {
	for e.Step() {
	}
	return e.now
}

// Every schedules run to fire at now+interval and then every interval
// milliseconds, for as long as run returns true. Returning false stops
// the ticker; Cancel on the returned handle stops the *next* pending
// fire (the common way to tear a ticker down from outside).
func (e *Engine) Every(interval Time, run func(now Time) bool) Handle {
	if interval <= 0 {
		panic(fmt.Sprintf("desim: non-positive interval %d", interval))
	}
	h := &rollingHandle{}
	var tick Event
	tick = func(now Time) {
		if !run(now) {
			return
		}
		h.set(e.After(interval, tick))
	}
	h.set(e.After(interval, tick))
	return Handle{roll: h}
}

// rollingHandle tracks the most recently scheduled tick of an Every
// loop so one Cancel stops the chain.
type rollingHandle struct {
	cur Handle
}

func (r *rollingHandle) set(h Handle) { r.cur = h }

// RunUntil fires events until the clock would pass the deadline; events
// scheduled exactly at the deadline still fire. Remaining events stay
// queued and the clock is left at min(deadline, last fired event).
func (e *Engine) RunUntil(deadline Time) {
	for len(e.events) > 0 {
		root := e.events[0]
		if root.dead {
			e.recycle(e.pop())
			continue
		}
		if root.at > deadline {
			return
		}
		e.Step()
	}
}

// less orders items by (at, seq): time first, FIFO within an instant.
func less(a, b *item) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push appends the item and sifts it up. For an item later than
// everything pending — the rolling-tick case — the first parent
// comparison fails and the push is O(1).
func (e *Engine) push(it *item) {
	e.events = append(e.events, it)
	i := len(e.events) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !less(it, e.events[parent]) {
			break
		}
		e.events[i] = e.events[parent]
		i = parent
	}
	e.events[i] = it
}

// pop removes and returns the heap root.
func (e *Engine) pop() *item {
	h := e.events
	root := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = nil
	e.events = h[:n]
	if n > 0 {
		e.siftDown(last)
	}
	return root
}

// siftDown places it, starting from the root, into heap position.
func (e *Engine) siftDown(it *item) {
	h := e.events
	n := len(h)
	i := 0
	for {
		kid := 2*i + 1
		if kid >= n {
			break
		}
		if right := kid + 1; right < n && less(h[right], h[kid]) {
			kid = right
		}
		if !less(h[kid], it) {
			break
		}
		h[i] = h[kid]
		i = kid
	}
	h[i] = it
}
