// Package desim is a minimal discrete-event simulation engine: a virtual
// millisecond clock and a time-ordered event heap. It is the substrate
// on which internal/sim rebuilds the paper's C++ federation simulator.
//
// Events scheduled for the same instant fire in scheduling order (FIFO),
// which keeps simulations deterministic regardless of map iteration or
// goroutine scheduling — there are no goroutines here at all.
package desim

import (
	"container/heap"
	"fmt"
)

// Time is virtual simulation time in milliseconds.
type Time int64

// Event is a callback scheduled to fire at a virtual instant.
type Event func(now Time)

type item struct {
	at   Time
	seq  uint64
	run  Event
	idx  int
	dead bool
}

type eventHeap []*item

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	it := x.(*item)
	it.idx = len(*h)
	*h = append(*h, it)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// Handle identifies a scheduled event so it can be cancelled. Handles
// returned by Every track the loop's most recent tick.
type Handle struct {
	it   *item
	roll *rollingHandle
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op. For Every loops it stops the next
// pending tick, ending the loop.
func (h Handle) Cancel() {
	if h.it != nil {
		h.it.dead = true
	}
	if h.roll != nil {
		h.roll.cur.Cancel()
	}
}

// Engine owns the clock and the pending-event queue. The zero value is
// ready to use.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
	fired  uint64
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired returns how many events have executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events still queued (including any
// cancelled events not yet reaped).
func (e *Engine) Pending() int { return len(e.events) }

// At schedules run to fire at absolute time at. Scheduling in the past
// panics: it is always a logic error in a discrete-event model.
func (e *Engine) At(at Time, run Event) Handle {
	if at < e.now {
		panic(fmt.Sprintf("desim: scheduling at %d before now %d", at, e.now))
	}
	if run == nil {
		panic("desim: nil event")
	}
	it := &item{at: at, seq: e.seq, run: run}
	e.seq++
	heap.Push(&e.events, it)
	return Handle{it: it}
}

// After schedules run to fire delay milliseconds from now.
func (e *Engine) After(delay Time, run Event) Handle {
	if delay < 0 {
		panic(fmt.Sprintf("desim: negative delay %d", delay))
	}
	return e.At(e.now+delay, run)
}

// Step fires the earliest pending event and advances the clock to its
// timestamp. It returns false when the queue is empty.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		it := heap.Pop(&e.events).(*item)
		if it.dead {
			continue
		}
		e.now = it.at
		e.fired++
		it.run(e.now)
		return true
	}
	return false
}

// Run drains the event queue completely and returns the final time.
func (e *Engine) Run() Time {
	for e.Step() {
	}
	return e.now
}

// Every schedules run to fire at now+interval and then every interval
// milliseconds, for as long as run returns true. Returning false stops
// the ticker; Cancel on the returned handle stops the *next* pending
// fire (the common way to tear a ticker down from outside).
func (e *Engine) Every(interval Time, run func(now Time) bool) Handle {
	if interval <= 0 {
		panic(fmt.Sprintf("desim: non-positive interval %d", interval))
	}
	h := &rollingHandle{}
	var tick Event
	tick = func(now Time) {
		if !run(now) {
			return
		}
		h.set(e.After(interval, tick))
	}
	h.set(e.After(interval, tick))
	return Handle{it: nil, roll: h}
}

// rollingHandle tracks the most recently scheduled tick of an Every
// loop so one Cancel stops the chain.
type rollingHandle struct {
	cur Handle
}

func (r *rollingHandle) set(h Handle) { r.cur = h }

// RunUntil fires events until the clock would pass the deadline; events
// scheduled exactly at the deadline still fire. Remaining events stay
// queued and the clock is left at min(deadline, last fired event).
func (e *Engine) RunUntil(deadline Time) {
	for len(e.events) > 0 {
		// Peek: heap root is the earliest live event.
		root := e.events[0]
		if root.dead {
			heap.Pop(&e.events)
			continue
		}
		if root.at > deadline {
			return
		}
		e.Step()
	}
}
