package desim

import (
	"math/rand"
	"sort"
	"testing"
)

func TestRunsInTimeOrder(t *testing.T) {
	var e Engine
	var got []Time
	for _, at := range []Time{30, 10, 20} {
		at := at
		e.At(at, func(now Time) { got = append(got, now) })
	}
	e.Run()
	want := []Time{10, 20, 30}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d at %d, want %d", i, got[i], want[i])
		}
	}
}

func TestSameInstantFIFO(t *testing.T) {
	var e Engine
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func(Time) { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant order %v not FIFO", order)
		}
	}
}

func TestAfterAdvancesFromNow(t *testing.T) {
	var e Engine
	var at2 Time
	e.At(10, func(now Time) {
		e.After(5, func(now Time) { at2 = now })
	})
	e.Run()
	if at2 != 15 {
		t.Errorf("nested After fired at %d, want 15", at2)
	}
	if e.Now() != 15 {
		t.Errorf("final Now = %d, want 15", e.Now())
	}
}

func TestCancel(t *testing.T) {
	var e Engine
	fired := false
	h := e.At(10, func(Time) { fired = true })
	h.Cancel()
	e.Run()
	if fired {
		t.Error("cancelled event fired")
	}
	h.Cancel() // double cancel is a no-op
}

func TestCancelFromEarlierEvent(t *testing.T) {
	var e Engine
	fired := false
	h := e.At(20, func(Time) { fired = true })
	e.At(10, func(Time) { h.Cancel() })
	e.Run()
	if fired {
		t.Error("event cancelled at t=10 still fired at t=20")
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	var e Engine
	e.At(10, func(Time) {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("At(5) after now=10 did not panic")
		}
	}()
	e.At(5, func(Time) {})
}

func TestNilEventPanics(t *testing.T) {
	var e Engine
	defer func() {
		if recover() == nil {
			t.Fatal("nil event did not panic")
		}
	}()
	e.At(1, nil)
}

func TestNegativeDelayPanics(t *testing.T) {
	var e Engine
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	e.After(-1, func(Time) {})
}

func TestRunUntil(t *testing.T) {
	var e Engine
	var fired []Time
	for _, at := range []Time{5, 10, 15, 20} {
		at := at
		e.At(at, func(now Time) { fired = append(fired, now) })
	}
	e.RunUntil(15)
	if len(fired) != 3 || fired[2] != 15 {
		t.Fatalf("RunUntil(15) fired %v, want [5 10 15]", fired)
	}
	if e.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", e.Pending())
	}
	e.Run()
	if len(fired) != 4 {
		t.Errorf("resumed Run fired %d total, want 4", len(fired))
	}
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	var e Engine
	if e.Step() {
		t.Error("Step on empty engine returned true")
	}
	if e.Fired() != 0 {
		t.Errorf("Fired = %d, want 0", e.Fired())
	}
}

func TestSelfReschedulingTicker(t *testing.T) {
	var e Engine
	count := 0
	var tick func(Time)
	tick = func(now Time) {
		count++
		if count < 5 {
			e.After(100, tick)
		}
	}
	e.After(100, tick)
	end := e.Run()
	if count != 5 {
		t.Errorf("ticker fired %d times, want 5", count)
	}
	if end != 500 {
		t.Errorf("final time %d, want 500", end)
	}
}

func TestEveryFiresOnInterval(t *testing.T) {
	var e Engine
	var fired []Time
	e.Every(100, func(now Time) bool {
		fired = append(fired, now)
		return len(fired) < 4
	})
	e.Run()
	want := []Time{100, 200, 300, 400}
	if len(fired) != len(want) {
		t.Fatalf("fired %v", fired)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
}

func TestEveryCancel(t *testing.T) {
	var e Engine
	count := 0
	h := e.Every(50, func(Time) bool {
		count++
		return true
	})
	e.At(125, func(Time) { h.Cancel() })
	e.RunUntil(1000)
	if count != 2 {
		t.Errorf("ticker fired %d times after cancel at t=125, want 2", count)
	}
}

func TestEveryBadIntervalPanics(t *testing.T) {
	var e Engine
	defer func() {
		if recover() == nil {
			t.Fatal("zero interval did not panic")
		}
	}()
	e.Every(0, func(Time) bool { return false })
}

// TestStaleHandleCannotCancelRecycledSlot pins down the free-list
// semantics: once an event fires, its item may be reused by a later
// schedule, and Cancel on the old handle must not touch the new event.
func TestStaleHandleCannotCancelRecycledSlot(t *testing.T) {
	var e Engine
	h1 := e.At(10, func(Time) {})
	e.Run() // fires and recycles the item
	fired := false
	e.At(20, func(Time) { fired = true }) // reuses the recycled item
	h1.Cancel()                           // stale: must be a no-op
	e.Run()
	if !fired {
		t.Error("stale Cancel killed a recycled event")
	}
}

// TestRollingTickDoesNotGrowFreeList verifies that a self-rearming tick
// cycles through a single pooled item.
func TestRollingTickDoesNotGrowFreeList(t *testing.T) {
	var e Engine
	count := 0
	var tick func(Time)
	tick = func(Time) {
		count++
		if count < 1000 {
			e.After(1, tick)
		}
	}
	e.After(1, tick)
	e.Run()
	if count != 1000 {
		t.Fatalf("ticked %d times, want 1000", count)
	}
	if len(e.free) != 1 {
		t.Errorf("free list holds %d items, want 1 (single recycled slot)", len(e.free))
	}
}

// TestRandomizedOrdering stresses the heap with random schedules and
// verifies global time ordering.
func TestRandomizedOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var e Engine
	var times []Time
	var fired []Time
	for i := 0; i < 2000; i++ {
		at := Time(rng.Intn(10000))
		times = append(times, at)
		e.At(at, func(now Time) { fired = append(fired, now) })
	}
	e.Run()
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	if len(fired) != len(times) {
		t.Fatalf("fired %d, want %d", len(fired), len(times))
	}
	for i := range times {
		if fired[i] != times[i] {
			t.Fatalf("event %d fired at %d, want %d", i, fired[i], times[i])
		}
	}
	if e.Fired() != 2000 {
		t.Errorf("Fired = %d, want 2000", e.Fired())
	}
}
