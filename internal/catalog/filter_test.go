package catalog

import (
	"fmt"
	"testing"
)

func TestRelationFilterHolds(t *testing.T) {
	names := []string{"t00", "t01", "v05", "v17"}
	f := NewRelationFilter(names)
	for _, name := range names {
		if !f.Holds(name) {
			t.Errorf("filter lost %q", name)
		}
	}
	if !f.HoldsAll(names) {
		t.Errorf("HoldsAll(%v) = false", names)
	}
	if f.HoldsAll(append(append([]string(nil), names...), "definitely-absent-relation")) {
		t.Errorf("HoldsAll with an absent name = true")
	}
}

func TestRelationFilterNoFalseNegatives(t *testing.T) {
	var names []string
	for i := 0; i < 100; i++ {
		names = append(names, fmt.Sprintf("rel%03d", i))
	}
	f := NewRelationFilter(names)
	for _, name := range names {
		if !f.Holds(name) {
			t.Fatalf("false negative for %q", name)
		}
	}
}

func TestRelationFilterFalsePositiveRate(t *testing.T) {
	// A federation node hosts a few dozen relations; the 256-bit filter
	// must keep the false-positive rate low enough that shard probing
	// actually shrinks the fan-out.
	var names []string
	for i := 0; i < 20; i++ {
		names = append(names, fmt.Sprintf("t%02d", i))
	}
	f := NewRelationFilter(names)
	fp := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		if f.Holds(fmt.Sprintf("absent%04d", i)) {
			fp++
		}
	}
	if rate := float64(fp) / trials; rate > 0.05 {
		t.Errorf("false-positive rate %.3f above 5%% with 20 names", rate)
	}
}

func TestRelationFilterRoundTrip(t *testing.T) {
	f := NewRelationFilter([]string{"t00", "v03"})
	enc := f.Encode()
	if enc == "" {
		t.Fatalf("non-empty filter encoded to empty string")
	}
	if len(enc) != filterBits/4 {
		t.Fatalf("encoded length %d, want %d", len(enc), filterBits/4)
	}
	g := DecodeRelationFilter(enc)
	if g == nil {
		t.Fatalf("round trip decoded to nil")
	}
	if *g != *f {
		t.Fatalf("round trip changed the filter")
	}
}

func TestRelationFilterDecodeDegenerate(t *testing.T) {
	if DecodeRelationFilter("") != nil {
		t.Errorf("empty string must decode to nil")
	}
	if DecodeRelationFilter("zz") != nil {
		t.Errorf("non-hex input must decode to nil")
	}
	if DecodeRelationFilter("abcd") != nil {
		t.Errorf("short input must decode to nil")
	}
	// An empty filter is a real advertisement ("this node holds
	// nothing"), distinct from the absent string ("no information"): it
	// must round-trip to a filter that excludes every relation.
	zero := DecodeRelationFilter((&RelationFilter{}).Encode())
	if zero == nil {
		t.Fatalf("empty filter must encode to a decodable advertisement")
	}
	if zero.Holds("anything") {
		t.Errorf("empty filter must hold nothing")
	}
}
