package catalog

import (
	"encoding/hex"
	"hash/fnv"
)

// RelationFilter is a compact Bloom-style summary of the relation names
// a node hosts, gossiped alongside the catalog digest so clients can
// probe per-class feasibility without shipping schemas. The filter has
// no false negatives: if Holds returns false for any relation a query
// references, the node provably cannot evaluate the query locally and
// the call-for-proposals may skip it. False positives merely cost one
// extra CFP RPC, answered "infeasible" exactly as today.
//
// The bit layout (filterBits bits, filterHashes probes per name) is a
// wire contract: every build derives the same bits for the same names,
// so a filter produced by one node is interpretable by any other.
type RelationFilter struct {
	bits [filterBits / 8]byte
}

const (
	// filterBits is the filter width. 256 bits keeps the advertisement
	// at 64 hex characters per member row while holding the false-
	// positive rate under ~1% for the few dozen relations a federation
	// node typically hosts.
	filterBits = 256
	// filterHashes is the probe count per name (double hashing).
	filterHashes = 4
)

// probes derives the filterHashes bit positions for one name using the
// standard Kirsch–Mitzenmacher double-hashing construction over one
// 64-bit FNV hash.
func probes(name string, visit func(bit uint32)) {
	h := fnv.New64a()
	h.Write([]byte(name))
	sum := h.Sum64()
	h1 := uint32(sum)
	h2 := uint32(sum>>32) | 1 // odd, so the stride cycles all positions
	for i := uint32(0); i < filterHashes; i++ {
		visit((h1 + i*h2) % filterBits)
	}
}

// NewRelationFilter builds the filter over a set of relation names.
func NewRelationFilter(names []string) *RelationFilter {
	f := &RelationFilter{}
	for _, name := range names {
		probes(name, func(bit uint32) {
			f.bits[bit/8] |= 1 << (bit % 8)
		})
	}
	return f
}

// Holds reports whether the filter may contain name. False is
// definitive (the relation is not hosted); true may be a false
// positive.
func (f *RelationFilter) Holds(name string) bool {
	ok := true
	probes(name, func(bit uint32) {
		if f.bits[bit/8]&(1<<(bit%8)) == 0 {
			ok = false
		}
	})
	return ok
}

// HoldsAll reports whether the filter may contain every name — the
// local-evaluation feasibility test for a query's referenced relations.
func (f *RelationFilter) HoldsAll(names []string) bool {
	for _, name := range names {
		if !f.Holds(name) {
			return false
		}
	}
	return true
}

// Encode renders the filter for a gossip advertisement. A filter with
// no relations encodes to 64 zero characters, NOT "": all-zeros means
// "provably holds nothing" (the node is excludable from every CFP),
// while the absent string means "no information" (a node that predates
// filters, which must always be probed).
func (f *RelationFilter) Encode() string {
	return hex.EncodeToString(f.bits[:])
}

// DecodeRelationFilter parses an advertised filter. Empty or malformed
// input returns nil — the caller must treat a missing filter as "always
// feasible" (old nodes advertise nothing, and exclusion requires proof).
func DecodeRelationFilter(s string) *RelationFilter {
	if s == "" {
		return nil
	}
	raw, err := hex.DecodeString(s)
	if err != nil || len(raw) != filterBits/8 {
		return nil
	}
	f := &RelationFilter{}
	copy(f.bits[:], raw)
	return f
}
