// Package catalog models the federation's data layer from Table 3 of
// the paper: a synthetic set of relations with multi-way mirrors spread
// randomly over heterogeneous RDBMS nodes, each node with its own CPU,
// I/O and buffer characteristics and join capabilities.
package catalog

import (
	"fmt"
	"math/rand"
)

// Relation describes one base relation of the common schema.
type Relation struct {
	ID     int
	SizeMB float64 // 1–20 MB in the paper's dataset
	Attrs  int     // attributes per relation (10 in the paper)
}

// Node describes one autonomous RDBMS of the federation: its hardware
// envelope and the set of relations it locally mirrors.
type Node struct {
	ID       int
	CPUGHz   float64 // 1–3.5 GHz, 2.3 avg
	IOMBps   float64 // 5–80 MB/s, 42.5 avg
	BufferMB float64 // sort/hash buffer per query, 2–10 MB, 6 avg
	HashJoin bool    // 95 of 100 nodes support hash joins
	// Holds marks the relations this node mirrors locally.
	Holds map[int]bool
}

// HasRelations reports whether the node holds every relation in ids.
func (n *Node) HasRelations(ids []int) bool {
	for _, id := range ids {
		if !n.Holds[id] {
			return false
		}
	}
	return true
}

// Catalog is the whole federation's data placement.
type Catalog struct {
	Relations []Relation
	Nodes     []*Node
}

// Params are the dataset/network knobs of Table 3.
type Params struct {
	Nodes         int     // total size of network (100)
	Relations     int     // # of different relations (1,000)
	MinSizeMB     float64 // 1
	MaxSizeMB     float64 // 20
	Attrs         int     // 10
	AvgMirrors    int     // 5
	HashJoinNodes int     // 95
	MinCPUGHz     float64 // 1
	MaxCPUGHz     float64 // 3.5
	MinIOMBps     float64 // 5
	MaxIOMBps     float64 // 80
	MinBufferMB   float64 // 2
	MaxBufferMB   float64 // 10
}

// Table3 returns the exact parameterization of Table 3.
func Table3() Params {
	return Params{
		Nodes:         100,
		Relations:     1000,
		MinSizeMB:     1,
		MaxSizeMB:     20,
		Attrs:         10,
		AvgMirrors:    5,
		HashJoinNodes: 95,
		MinCPUGHz:     1,
		MaxCPUGHz:     3.5,
		MinIOMBps:     5,
		MaxIOMBps:     80,
		MinBufferMB:   2,
		MaxBufferMB:   10,
	}
}

// Validate sanity-checks the parameters.
func (p Params) Validate() error {
	switch {
	case p.Nodes <= 0:
		return fmt.Errorf("catalog: Nodes must be positive, got %d", p.Nodes)
	case p.Relations <= 0:
		return fmt.Errorf("catalog: Relations must be positive, got %d", p.Relations)
	case p.AvgMirrors <= 0 || p.AvgMirrors > p.Nodes:
		return fmt.Errorf("catalog: AvgMirrors %d out of range (1..%d)", p.AvgMirrors, p.Nodes)
	case p.HashJoinNodes < 0 || p.HashJoinNodes > p.Nodes:
		return fmt.Errorf("catalog: HashJoinNodes %d out of range (0..%d)", p.HashJoinNodes, p.Nodes)
	case p.MinSizeMB <= 0 || p.MaxSizeMB < p.MinSizeMB:
		return fmt.Errorf("catalog: bad relation size range [%g,%g]", p.MinSizeMB, p.MaxSizeMB)
	case p.MinCPUGHz <= 0 || p.MaxCPUGHz < p.MinCPUGHz:
		return fmt.Errorf("catalog: bad CPU range [%g,%g]", p.MinCPUGHz, p.MaxCPUGHz)
	case p.MinIOMBps <= 0 || p.MaxIOMBps < p.MinIOMBps:
		return fmt.Errorf("catalog: bad IO range [%g,%g]", p.MinIOMBps, p.MaxIOMBps)
	case p.MinBufferMB <= 0 || p.MaxBufferMB < p.MinBufferMB:
		return fmt.Errorf("catalog: bad buffer range [%g,%g]", p.MinBufferMB, p.MaxBufferMB)
	}
	return nil
}

// Generate builds a random catalog according to p, drawing all
// randomness from rng so that experiments are reproducible. Mirror
// counts are drawn uniformly from [1, 2·AvgMirrors−1] (mean AvgMirrors)
// and placed on distinct random nodes.
func Generate(p Params, rng *rand.Rand) (*Catalog, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	c := &Catalog{
		Relations: make([]Relation, p.Relations),
		Nodes:     make([]*Node, p.Nodes),
	}
	for i := range c.Nodes {
		c.Nodes[i] = &Node{
			ID:       i,
			CPUGHz:   uniform(rng, p.MinCPUGHz, p.MaxCPUGHz),
			IOMBps:   uniform(rng, p.MinIOMBps, p.MaxIOMBps),
			BufferMB: uniform(rng, p.MinBufferMB, p.MaxBufferMB),
			Holds:    make(map[int]bool),
		}
	}
	// Hash-join capability: a random subset of HashJoinNodes nodes.
	for _, i := range rng.Perm(p.Nodes)[:p.HashJoinNodes] {
		c.Nodes[i].HashJoin = true
	}
	for r := range c.Relations {
		c.Relations[r] = Relation{
			ID:     r,
			SizeMB: uniform(rng, p.MinSizeMB, p.MaxSizeMB),
			Attrs:  p.Attrs,
		}
		mirrors := 1
		if p.AvgMirrors > 1 {
			mirrors = 1 + rng.Intn(2*p.AvgMirrors-1) // mean = AvgMirrors
		}
		if mirrors > p.Nodes {
			mirrors = p.Nodes
		}
		for _, n := range rng.Perm(p.Nodes)[:mirrors] {
			c.Nodes[n].Holds[r] = true
		}
	}
	return c, nil
}

// Holders returns the IDs of all nodes holding every relation in ids,
// i.e. the nodes able to evaluate a query over those relations locally.
func (c *Catalog) Holders(ids []int) []int {
	var out []int
	for _, n := range c.Nodes {
		if n.HasRelations(ids) {
			out = append(out, n.ID)
		}
	}
	return out
}

func uniform(rng *rand.Rand, lo, hi float64) float64 {
	if hi == lo {
		return lo
	}
	return lo + rng.Float64()*(hi-lo)
}
