package catalog

import (
	"math/rand"
	"testing"
)

func TestTable3Valid(t *testing.T) {
	if err := Table3().Validate(); err != nil {
		t.Fatalf("Table3 parameters invalid: %v", err)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	base := Table3()
	mutate := []func(*Params){
		func(p *Params) { p.Nodes = 0 },
		func(p *Params) { p.Relations = -1 },
		func(p *Params) { p.AvgMirrors = 0 },
		func(p *Params) { p.AvgMirrors = p.Nodes + 1 },
		func(p *Params) { p.HashJoinNodes = p.Nodes + 1 },
		func(p *Params) { p.MinSizeMB = 0 },
		func(p *Params) { p.MaxSizeMB = p.MinSizeMB - 1 },
		func(p *Params) { p.MinCPUGHz = -1 },
		func(p *Params) { p.MinIOMBps = 0 },
		func(p *Params) { p.MinBufferMB = 0 },
	}
	for i, m := range mutate {
		p := base
		m(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestGenerateShape(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c, err := Generate(Table3(), rng)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if len(c.Nodes) != 100 || len(c.Relations) != 1000 {
		t.Fatalf("got %d nodes, %d relations", len(c.Nodes), len(c.Relations))
	}
	hash := 0
	for _, n := range c.Nodes {
		if n.HashJoin {
			hash++
		}
		if n.CPUGHz < 1 || n.CPUGHz > 3.5 {
			t.Errorf("node %d CPU %g outside [1,3.5]", n.ID, n.CPUGHz)
		}
		if n.IOMBps < 5 || n.IOMBps > 80 {
			t.Errorf("node %d IO %g outside [5,80]", n.ID, n.IOMBps)
		}
		if n.BufferMB < 2 || n.BufferMB > 10 {
			t.Errorf("node %d buffer %g outside [2,10]", n.ID, n.BufferMB)
		}
	}
	if hash != 95 {
		t.Errorf("%d hash-join nodes, want 95", hash)
	}
	// Mirror statistics: mean ~5 per relation, each node ~50 relations.
	totalMirrors := 0
	for _, n := range c.Nodes {
		totalMirrors += len(n.Holds)
	}
	mean := float64(totalMirrors) / 1000
	if mean < 4 || mean > 6 {
		t.Errorf("mean mirrors per relation %.2f, want ~5", mean)
	}
	for _, r := range c.Relations {
		if r.SizeMB < 1 || r.SizeMB > 20 {
			t.Errorf("relation %d size %g outside [1,20]", r.ID, r.SizeMB)
		}
		if r.Attrs != 10 {
			t.Errorf("relation %d attrs %d, want 10", r.ID, r.Attrs)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(Table3(), rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Table3(), rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Nodes {
		if a.Nodes[i].CPUGHz != b.Nodes[i].CPUGHz || len(a.Nodes[i].Holds) != len(b.Nodes[i].Holds) {
			t.Fatalf("node %d differs across identical seeds", i)
		}
	}
	for i := range a.Relations {
		if a.Relations[i].SizeMB != b.Relations[i].SizeMB {
			t.Fatalf("relation %d differs across identical seeds", i)
		}
	}
}

func TestEveryRelationMirroredSomewhere(t *testing.T) {
	c, err := Generate(Table3(), rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	count := make([]int, len(c.Relations))
	for _, n := range c.Nodes {
		for id := range n.Holds {
			count[id]++
		}
	}
	for id, k := range count {
		if k == 0 {
			t.Errorf("relation %d has no mirror", id)
		}
	}
}

func TestHolders(t *testing.T) {
	c := &Catalog{
		Relations: []Relation{{ID: 0}, {ID: 1}},
		Nodes: []*Node{
			{ID: 0, Holds: map[int]bool{0: true, 1: true}},
			{ID: 1, Holds: map[int]bool{0: true}},
			{ID: 2, Holds: map[int]bool{}},
		},
	}
	got := c.Holders([]int{0, 1})
	if len(got) != 1 || got[0] != 0 {
		t.Errorf("Holders([0,1]) = %v, want [0]", got)
	}
	got = c.Holders([]int{0})
	if len(got) != 2 {
		t.Errorf("Holders([0]) = %v, want two nodes", got)
	}
	if got := c.Holders([]int{1, 0}); len(got) != 1 {
		t.Errorf("order must not matter: %v", got)
	}
}

func TestHasRelations(t *testing.T) {
	n := &Node{Holds: map[int]bool{1: true, 2: true}}
	if !n.HasRelations([]int{1, 2}) || !n.HasRelations(nil) {
		t.Error("HasRelations false negative")
	}
	if n.HasRelations([]int{1, 3}) {
		t.Error("HasRelations false positive")
	}
}

func TestGenerateSmallFederation(t *testing.T) {
	p := Table3()
	p.Nodes = 5
	p.Relations = 20
	p.AvgMirrors = 2
	p.HashJoinNodes = 4
	c, err := Generate(p, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatalf("Generate small: %v", err)
	}
	if len(c.Nodes) != 5 {
		t.Fatalf("nodes = %d", len(c.Nodes))
	}
	for _, n := range c.Nodes {
		if len(n.Holds) == 0 {
			continue // possible but unlikely; not an error
		}
	}
}
