package sqldb

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses one SQL statement.
func Parse(input string) (Statement, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, input: input}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	p.accept(tokSymbol, ";")
	if !p.at(tokEOF, "") {
		return nil, p.errorf("trailing input after statement")
	}
	return stmt, nil
}

type parser struct {
	toks  []token
	pos   int
	input string
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(kind tokenKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind, text string) (token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	want := text
	if want == "" {
		want = fmt.Sprintf("token kind %d", kind)
	}
	return token{}, p.errorf("expected %s, found %q", want, p.cur().text)
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("sqldb: parse error at offset %d: %s", p.cur().pos, fmt.Sprintf(format, args...))
}

func (p *parser) parseStatement() (Statement, error) {
	switch {
	case p.accept(tokKeyword, "EXPLAIN"):
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		return &ExplainStmt{Select: sel}, nil
	case p.at(tokKeyword, "SELECT"):
		return p.parseSelect()
	case p.accept(tokKeyword, "CREATE"):
		switch {
		case p.accept(tokKeyword, "TABLE"):
			return p.parseCreateTable()
		case p.accept(tokKeyword, "VIEW"):
			return p.parseCreateView()
		case p.accept(tokKeyword, "INDEX"):
			return p.parseCreateIndex()
		default:
			return nil, p.errorf("expected TABLE, VIEW or INDEX after CREATE")
		}
	case p.accept(tokKeyword, "INSERT"):
		return p.parseInsert()
	case p.accept(tokKeyword, "UPDATE"):
		return p.parseUpdate()
	case p.accept(tokKeyword, "DELETE"):
		return p.parseDelete()
	default:
		return nil, p.errorf("unsupported statement beginning with %q", p.cur().text)
	}
}

func (p *parser) parseCreateTable() (Statement, error) {
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	var cols []ColumnDef
	for {
		cn, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		ct, err := p.parseType()
		if err != nil {
			return nil, err
		}
		cols = append(cols, ColumnDef{Name: cn.text, Type: ct})
		if p.accept(tokSymbol, ",") {
			continue
		}
		break
	}
	if _, err := p.expect(tokSymbol, ")"); err != nil {
		return nil, err
	}
	return &CreateTableStmt{Name: name.text, Columns: cols}, nil
}

func (p *parser) parseType() (Type, error) {
	t := p.next()
	if t.kind != tokKeyword {
		return 0, p.errorf("expected a type, found %q", t.text)
	}
	switch t.text {
	case "INT":
		return TInt, nil
	case "FLOAT":
		return TFloat, nil
	case "TEXT":
		return TText, nil
	case "BOOL":
		return TBool, nil
	default:
		return 0, p.errorf("unknown type %q", t.text)
	}
}

func (p *parser) parseCreateIndex() (Statement, error) {
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "ON"); err != nil {
		return nil, err
	}
	table, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	col, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSymbol, ")"); err != nil {
		return nil, err
	}
	return &CreateIndexStmt{Name: name.text, Table: table.text, Column: col.text}, nil
}

func (p *parser) parseCreateView() (Statement, error) {
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "AS"); err != nil {
		return nil, err
	}
	sel, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	return &CreateViewStmt{Name: name.text, Select: sel}, nil
}

func (p *parser) parseInsert() (Statement, error) {
	if _, err := p.expect(tokKeyword, "INTO"); err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "VALUES"); err != nil {
		return nil, err
	}
	var rows [][]Expr
	for {
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if p.accept(tokSymbol, ",") {
				continue
			}
			break
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		rows = append(rows, row)
		if p.accept(tokSymbol, ",") {
			continue
		}
		break
	}
	return &InsertStmt{Table: name.text, Rows: rows}, nil
}

func (p *parser) parseUpdate() (Statement, error) {
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "SET"); err != nil {
		return nil, err
	}
	var set []Assignment
	for {
		col, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, "="); err != nil {
			return nil, err
		}
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		set = append(set, Assignment{Column: col.text, Value: val})
		if p.accept(tokSymbol, ",") {
			continue
		}
		break
	}
	stmt := &UpdateStmt{Table: name.text, Set: set}
	if p.accept(tokKeyword, "WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}
	return stmt, nil
}

func (p *parser) parseDelete() (Statement, error) {
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	stmt := &DeleteStmt{Table: name.text}
	if p.accept(tokKeyword, "WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}
	return stmt, nil
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if _, err := p.expect(tokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	s := &SelectStmt{Limit: -1}
	s.Distinct = p.accept(tokKeyword, "DISTINCT")
	for {
		if p.accept(tokSymbol, "*") {
			s.Items = append(s.Items, SelectItem{Star: true})
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := SelectItem{Expr: e}
			if p.accept(tokKeyword, "AS") {
				a, err := p.expect(tokIdent, "")
				if err != nil {
					return nil, err
				}
				item.Alias = a.text
			} else if p.at(tokIdent, "") {
				item.Alias = p.next().text
			}
			s.Items = append(s.Items, item)
		}
		if p.accept(tokSymbol, ",") {
			continue
		}
		break
	}
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	ref, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	s.From = append(s.From, ref)
	for {
		p.accept(tokKeyword, "INNER")
		if !p.accept(tokKeyword, "JOIN") {
			break
		}
		ref, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "ON"); err != nil {
			return nil, err
		}
		left, err := p.parseColumnRef()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, "="); err != nil {
			return nil, err
		}
		right, err := p.parseColumnRef()
		if err != nil {
			return nil, err
		}
		s.From = append(s.From, ref)
		s.Joins = append(s.Joins, JoinOn{Left: *left, Right: *right})
	}
	if p.accept(tokKeyword, "WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Where = e
	}
	if p.accept(tokKeyword, "GROUP") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.GroupBy = append(s.GroupBy, e)
			if p.accept(tokSymbol, ",") {
				continue
			}
			break
		}
	}
	if p.accept(tokKeyword, "ORDER") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.accept(tokKeyword, "DESC") {
				item.Desc = true
			} else {
				p.accept(tokKeyword, "ASC")
			}
			s.OrderBy = append(s.OrderBy, item)
			if p.accept(tokSymbol, ",") {
				continue
			}
			break
		}
	}
	if p.accept(tokKeyword, "LIMIT") {
		n, err := p.expect(tokNumber, "")
		if err != nil {
			return nil, err
		}
		limit, err := strconv.Atoi(n.text)
		if err != nil || limit < 0 {
			return nil, p.errorf("bad LIMIT %q", n.text)
		}
		s.Limit = limit
	}
	if p.accept(tokKeyword, "OFFSET") {
		n, err := p.expect(tokNumber, "")
		if err != nil {
			return nil, err
		}
		off, err := strconv.Atoi(n.text)
		if err != nil || off < 0 {
			return nil, p.errorf("bad OFFSET %q", n.text)
		}
		s.Offset = off
	}
	return s, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Table: name.text}
	if p.accept(tokKeyword, "AS") {
		a, err := p.expect(tokIdent, "")
		if err != nil {
			return TableRef{}, err
		}
		ref.Alias = a.text
	} else if p.at(tokIdent, "") {
		ref.Alias = p.next().text
	}
	return ref, nil
}

func (p *parser) parseColumnRef() (*ColumnRef, error) {
	a, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if p.accept(tokSymbol, ".") {
		b, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		return &ColumnRef{Table: a.text, Column: b.text}, nil
	}
	return &ColumnRef{Column: a.text}, nil
}

// Expression grammar, loosest to tightest binding:
// OR, AND, NOT, comparison, +/-, *//, unary minus, primary.
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "OR", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "AND", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.accept(tokKeyword, "NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", X: x}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// IS [NOT] NULL.
	if p.accept(tokKeyword, "IS") {
		neg := p.accept(tokKeyword, "NOT")
		if _, err := p.expect(tokKeyword, "NULL"); err != nil {
			return nil, err
		}
		return &IsNullExpr{X: left, Neg: neg}, nil
	}
	// [NOT] IN / BETWEEN / LIKE.
	neg := false
	if p.at(tokKeyword, "NOT") {
		switch p.toks[p.pos+1].text {
		case "IN", "BETWEEN", "LIKE":
			p.next()
			neg = true
		}
	}
	switch {
	case p.accept(tokKeyword, "IN"):
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		var list []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if p.accept(tokSymbol, ",") {
				continue
			}
			break
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return &InExpr{X: left, List: list, Neg: neg}, nil
	case p.accept(tokKeyword, "BETWEEN"):
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{X: left, Lo: lo, Hi: hi, Neg: neg}, nil
	case p.accept(tokKeyword, "LIKE"):
		pat, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &LikeExpr{X: left, Pattern: pat, Neg: neg}, nil
	}
	if neg {
		return nil, p.errorf("NOT must be followed by IN, BETWEEN or LIKE here")
	}
	for _, op := range []string{"<=", ">=", "<>", "!=", "=", "<", ">"} {
		if p.accept(tokSymbol, op) {
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			if op == "!=" {
				op = "<>"
			}
			return &BinaryExpr{Op: op, Left: left, Right: right}, nil
		}
	}
	return left, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.accept(tokSymbol, "+"):
			op = "+"
		case p.accept(tokSymbol, "-"):
			op = "-"
		default:
			return left, nil
		}
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, Left: left, Right: right}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.accept(tokSymbol, "*"):
			op = "*"
		case p.accept(tokSymbol, "/"):
			op = "/"
		default:
			return left, nil
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, Left: left, Right: right}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.accept(tokSymbol, "-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "-", X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.next()
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errorf("bad number %q", t.text)
			}
			return &Literal{Val: NewFloat(f)}, nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad number %q", t.text)
		}
		return &Literal{Val: NewInt(i)}, nil
	case t.kind == tokString:
		p.next()
		return &Literal{Val: NewText(t.text)}, nil
	case p.accept(tokKeyword, "NULL"):
		return &Literal{Val: Null}, nil
	case p.accept(tokKeyword, "TRUE"):
		return &Literal{Val: NewBool(true)}, nil
	case p.accept(tokKeyword, "FALSE"):
		return &Literal{Val: NewBool(false)}, nil
	case t.kind == tokKeyword && isAggName(t.text):
		p.next()
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		agg := &AggExpr{Func: t.text}
		if p.accept(tokSymbol, "*") {
			if t.text != "COUNT" {
				return nil, p.errorf("%s(*) is not valid", t.text)
			}
			agg.Star = true
		} else {
			arg, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			agg.Arg = arg
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return agg, nil
	case t.kind == tokIdent:
		return p.parseColumnRef()
	case p.accept(tokSymbol, "("):
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return nil, p.errorf("unexpected token %q in expression", t.text)
	}
}

func isAggName(s string) bool {
	switch s {
	case "COUNT", "SUM", "AVG", "MIN", "MAX":
		return true
	default:
		return false
	}
}
