package sqldb

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol  // punctuation and operators
	tokKeyword // reserved words, upper-cased
)

type token struct {
	kind tokenKind
	text string // keywords upper-cased; identifiers lower-cased
	pos  int    // byte offset in the input, for error messages
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "JOIN": true, "ON": true,
	"GROUP": true, "BY": true, "ORDER": true, "ASC": true, "DESC": true,
	"LIMIT": true, "AND": true, "OR": true, "NOT": true, "AS": true,
	"CREATE": true, "TABLE": true, "VIEW": true, "INSERT": true,
	"INTO": true, "VALUES": true, "EXPLAIN": true, "NULL": true,
	"TRUE": true, "FALSE": true, "INT": true, "FLOAT": true, "TEXT": true,
	"BOOL": true, "COUNT": true, "SUM": true, "AVG": true, "MIN": true,
	"MAX": true, "INNER": true, "DISTINCT": true, "UPDATE": true,
	"SET": true, "DELETE": true, "IN": true, "BETWEEN": true,
	"LIKE": true, "OFFSET": true, "IS": true, "INDEX": true,
}

// lex tokenizes a SQL string.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := rune(input[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '-' && i+1 < n && input[i+1] == '-': // line comment
			for i < n && input[i] != '\n' {
				i++
			}
		case unicode.IsDigit(c) || (c == '.' && i+1 < n && unicode.IsDigit(rune(input[i+1]))):
			start := i
			seenDot := false
			for i < n && (unicode.IsDigit(rune(input[i])) || (input[i] == '.' && !seenDot)) {
				if input[i] == '.' {
					seenDot = true
				}
				i++
			}
			toks = append(toks, token{tokNumber, input[start:i], start})
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						i += 2
						continue
					}
					closed = true
					i++
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("sqldb: unterminated string at offset %d", start)
			}
			toks = append(toks, token{tokString, sb.String(), start})
		case isIdentStart(c):
			start := i
			for i < n && isIdentPart(rune(input[i])) {
				i++
			}
			word := input[start:i]
			up := strings.ToUpper(word)
			if keywords[up] {
				toks = append(toks, token{tokKeyword, up, start})
			} else {
				toks = append(toks, token{tokIdent, strings.ToLower(word), start})
			}
		default:
			start := i
			// Two-character operators first.
			if i+1 < n {
				two := input[i : i+2]
				switch two {
				case "<=", ">=", "<>", "!=":
					toks = append(toks, token{tokSymbol, two, start})
					i += 2
					continue
				}
			}
			switch c {
			case '(', ')', ',', '*', '=', '<', '>', '+', '-', '/', '.', ';':
				toks = append(toks, token{tokSymbol, string(c), start})
				i++
			default:
				return nil, fmt.Errorf("sqldb: unexpected character %q at offset %d", c, i)
			}
		}
	}
	toks = append(toks, token{tokEOF, "", n})
	return toks, nil
}

func isIdentStart(c rune) bool {
	return unicode.IsLetter(c) || c == '_'
}

func isIdentPart(c rune) bool {
	return unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_'
}
