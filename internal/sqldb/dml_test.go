package sqldb

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestUpdate(t *testing.T) {
	db := seedDB(t)
	_, n, err := db.Exec("UPDATE emp SET salary = salary * 2 WHERE dept_id = 1")
	if err != nil {
		t.Fatalf("UPDATE: %v", err)
	}
	if n != 2 {
		t.Fatalf("updated %d rows, want 2", n)
	}
	res := queryRows(t, db, "SELECT salary FROM emp WHERE name = 'ann'")
	if res.Rows[0][0].Float != 240 {
		t.Errorf("ann's salary = %v, want 240", res.Rows[0][0])
	}
	// Untouched rows keep their values.
	res = queryRows(t, db, "SELECT salary FROM emp WHERE name = 'eve'")
	if res.Rows[0][0].Float != 60 {
		t.Errorf("eve's salary changed: %v", res.Rows[0][0])
	}
}

func TestUpdateAllRowsAndMultipleColumns(t *testing.T) {
	db := seedDB(t)
	_, n, err := db.Exec("UPDATE dept SET budget = 1.0, name = 'x'")
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("updated %d, want 3", n)
	}
	res := queryRows(t, db, "SELECT DISTINCT name, budget FROM dept")
	if len(res.Rows) != 1 {
		t.Errorf("rows after uniform update: %v", res.Rows)
	}
}

func TestUpdateSelfReference(t *testing.T) {
	// SET expressions see the row's *old* values.
	db := Open()
	mustExec(t, db, "CREATE TABLE t (a INT, b INT)")
	mustExec(t, db, "INSERT INTO t VALUES (1, 10)")
	if _, _, err := db.Exec("UPDATE t SET a = b, b = a"); err != nil {
		t.Fatal(err)
	}
	res := queryRows(t, db, "SELECT a, b FROM t")
	if res.Rows[0][0].Int != 10 || res.Rows[0][1].Int != 1 {
		t.Errorf("swap produced %v, want (10, 1)", res.Rows[0])
	}
}

func TestDelete(t *testing.T) {
	db := seedDB(t)
	_, n, err := db.Exec("DELETE FROM emp WHERE senior = TRUE")
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	if n != 2 {
		t.Fatalf("deleted %d rows, want 2", n)
	}
	res := queryRows(t, db, "SELECT COUNT(*) FROM emp")
	if res.Rows[0][0].Int != 3 {
		t.Errorf("remaining rows = %v, want 3", res.Rows[0][0])
	}
	// DELETE without WHERE empties the table.
	if _, n, err = db.Exec("DELETE FROM emp"); err != nil || n != 3 {
		t.Fatalf("full delete: n=%d err=%v", n, err)
	}
	res = queryRows(t, db, "SELECT COUNT(*) FROM emp")
	if res.Rows[0][0].Int != 0 {
		t.Errorf("table not empty: %v", res.Rows[0][0])
	}
}

func TestInExpr(t *testing.T) {
	db := seedDB(t)
	res := queryRows(t, db, "SELECT name FROM emp WHERE dept_id IN (1, 3) ORDER BY name")
	if len(res.Rows) != 3 {
		t.Fatalf("IN rows = %d, want 3", len(res.Rows))
	}
	res = queryRows(t, db, "SELECT name FROM emp WHERE dept_id NOT IN (1, 3)")
	if len(res.Rows) != 2 {
		t.Fatalf("NOT IN rows = %d, want 2", len(res.Rows))
	}
	// Strings work too.
	res = queryRows(t, db, "SELECT id FROM emp WHERE name IN ('ann', 'eve')")
	if len(res.Rows) != 2 {
		t.Errorf("string IN rows = %d, want 2", len(res.Rows))
	}
}

func TestBetween(t *testing.T) {
	db := seedDB(t)
	res := queryRows(t, db, "SELECT name FROM emp WHERE salary BETWEEN 70 AND 95 ORDER BY name")
	if len(res.Rows) != 3 { // bob 95, cat 80, dan 70 (inclusive bounds)
		t.Fatalf("BETWEEN rows = %v", res.Rows)
	}
	res = queryRows(t, db, "SELECT name FROM emp WHERE salary NOT BETWEEN 70 AND 95")
	if len(res.Rows) != 2 { // ann 120, eve 60
		t.Fatalf("NOT BETWEEN rows = %v", res.Rows)
	}
}

func TestLike(t *testing.T) {
	db := seedDB(t)
	cases := []struct {
		where string
		want  int
	}{
		{"name LIKE 'a%'", 1},  // ann
		{"name LIKE '%n'", 2},  // ann, dan
		{"name LIKE '_a_'", 2}, // cat, dan
		{"name LIKE '%a%'", 3}, // ann, cat, dan
		{"name NOT LIKE '%a%'", 2},
		{"name LIKE 'ann'", 1},
		{"name LIKE '%'", 5},
	}
	for _, c := range cases {
		res := queryRows(t, db, "SELECT name FROM emp WHERE "+c.where)
		if len(res.Rows) != c.want {
			t.Errorf("%s matched %d rows, want %d", c.where, len(res.Rows), c.want)
		}
	}
}

func TestLikeMatchUnit(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"", "", true},
		{"", "%", true},
		{"a", "", false},
		{"abc", "abc", true},
		{"abc", "a%", true},
		{"abc", "%c", true},
		{"abc", "%b%", true},
		{"abc", "a_c", true},
		{"abc", "a_b", false},
		{"abc", "____", false},
		{"abc", "___", true},
		{"aXbXc", "a%b%c", true},
		{"mississippi", "%iss%pi", true}, // second % absorbs "issip"
		{"mississippi", "%iss%ppi", true},
		{"mississippi", "%iss%pix", false},
		{"mississippi", "mi%si_pi", true},
	}
	for _, c := range cases {
		if got := likeMatch(c.s, c.p); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %t, want %t", c.s, c.p, got, c.want)
		}
	}
}

func TestIsNull(t *testing.T) {
	db := Open()
	mustExec(t, db, "CREATE TABLE t (a INT, b INT)")
	mustExec(t, db, "INSERT INTO t VALUES (1, NULL), (2, 5)")
	res := queryRows(t, db, "SELECT a FROM t WHERE b IS NULL")
	if len(res.Rows) != 1 || res.Rows[0][0].Int != 1 {
		t.Errorf("IS NULL rows = %v", res.Rows)
	}
	res = queryRows(t, db, "SELECT a FROM t WHERE b IS NOT NULL")
	if len(res.Rows) != 1 || res.Rows[0][0].Int != 2 {
		t.Errorf("IS NOT NULL rows = %v", res.Rows)
	}
}

func TestOffset(t *testing.T) {
	db := seedDB(t)
	res := queryRows(t, db, "SELECT name FROM emp ORDER BY salary DESC LIMIT 2 OFFSET 1")
	if len(res.Rows) != 2 || res.Rows[0][0].Str != "bob" || res.Rows[1][0].Str != "cat" {
		t.Fatalf("LIMIT/OFFSET rows = %v", res.Rows)
	}
	// Offset past the end yields nothing.
	res = queryRows(t, db, "SELECT name FROM emp ORDER BY salary OFFSET 99")
	if len(res.Rows) != 0 {
		t.Errorf("oversized offset rows = %v", res.Rows)
	}
}

func TestNullInPredicates(t *testing.T) {
	db := Open()
	mustExec(t, db, "CREATE TABLE t (a INT)")
	mustExec(t, db, "INSERT INTO t VALUES (NULL), (1)")
	// NULL IN (...) and NULL BETWEEN ... are NULL, filtered out.
	res := queryRows(t, db, "SELECT a FROM t WHERE a IN (1, 2)")
	if len(res.Rows) != 1 {
		t.Errorf("IN over NULL rows = %v", res.Rows)
	}
	res = queryRows(t, db, "SELECT a FROM t WHERE a BETWEEN 0 AND 5")
	if len(res.Rows) != 1 {
		t.Errorf("BETWEEN over NULL rows = %v", res.Rows)
	}
}

func TestDMLRoundTripStrings(t *testing.T) {
	// The new expressions render back to parseable SQL.
	for _, q := range []string{
		"SELECT a FROM t WHERE a IN (1, 2, 3)",
		"SELECT a FROM t WHERE a NOT IN (1)",
		"SELECT a FROM t WHERE a BETWEEN 1 AND 2",
		"SELECT a FROM t WHERE a NOT BETWEEN 1 AND 2",
		"SELECT a FROM t WHERE b LIKE 'x%'",
		"SELECT a FROM t WHERE b IS NULL",
		"SELECT a FROM t WHERE b IS NOT NULL",
		"SELECT a FROM t LIMIT 5 OFFSET 2",
	} {
		stmt, err := Parse(q)
		if err != nil {
			t.Fatalf("Parse(%q): %v", q, err)
		}
		rendered := stmt.(*SelectStmt).String()
		again, err := Parse(rendered)
		if err != nil {
			t.Fatalf("reparse of %q: %v", rendered, err)
		}
		if again.(*SelectStmt).String() != rendered {
			t.Errorf("unstable round trip: %q vs %q", rendered, again.(*SelectStmt).String())
		}
	}
}

// Property: BETWEEN lo AND hi is equivalent to >= lo AND <= hi.
func TestQuickBetweenEquivalence(t *testing.T) {
	db := Open()
	mustExec(t, db, "CREATE TABLE q (a INT)")
	mustExec(t, db, "INSERT INTO q VALUES (0),(1),(2),(3),(4),(5),(6),(7),(8),(9)")
	f := func(loRaw, hiRaw uint8) bool {
		lo := int(loRaw % 12)
		hi := int(hiRaw % 12)
		a, err := db.Query(fmt.Sprintf("SELECT a FROM q WHERE a BETWEEN %d AND %d", lo, hi))
		if err != nil {
			return false
		}
		b, err := db.Query(fmt.Sprintf("SELECT a FROM q WHERE a >= %d AND a <= %d", lo, hi))
		if err != nil {
			return false
		}
		if len(a.Rows) != len(b.Rows) {
			return false
		}
		for i := range a.Rows {
			if !Equal(a.Rows[i][0], b.Rows[i][0]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
