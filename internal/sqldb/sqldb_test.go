package sqldb

import (
	"strings"
	"testing"
)

// mustExec runs a statement that must succeed.
func mustExec(t *testing.T, db *DB, sql string) {
	t.Helper()
	if _, _, err := db.Exec(sql); err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
}

// seedDB builds a small star schema used across tests.
func seedDB(t *testing.T) *DB {
	t.Helper()
	db := Open()
	mustExec(t, db, "CREATE TABLE dept (id INT, name TEXT, budget FLOAT)")
	mustExec(t, db, "CREATE TABLE emp (id INT, dept_id INT, name TEXT, salary FLOAT, senior BOOL)")
	mustExec(t, db, `INSERT INTO dept VALUES
		(1, 'eng', 100.5), (2, 'sales', 50.0), (3, 'hr', 25.0)`)
	mustExec(t, db, `INSERT INTO emp VALUES
		(10, 1, 'ann', 120.0, TRUE),
		(11, 1, 'bob', 95.0, FALSE),
		(12, 2, 'cat', 80.0, TRUE),
		(13, 2, 'dan', 70.0, FALSE),
		(14, 3, 'eve', 60.0, FALSE)`)
	return db
}

func queryRows(t *testing.T, db *DB, sql string) *Result {
	t.Helper()
	res, err := db.Query(sql)
	if err != nil {
		t.Fatalf("Query(%q): %v", sql, err)
	}
	return res
}

func TestCreateInsertSelectStar(t *testing.T) {
	db := seedDB(t)
	res := queryRows(t, db, "SELECT * FROM dept")
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
	if len(res.Columns) != 3 || res.Columns[0] != "id" || res.Columns[2] != "budget" {
		t.Errorf("columns = %v", res.Columns)
	}
	n, err := db.RowCount("emp")
	if err != nil || n != 5 {
		t.Errorf("RowCount(emp) = %d, %v", n, err)
	}
}

func TestWhereFilters(t *testing.T) {
	db := seedDB(t)
	res := queryRows(t, db, "SELECT name FROM emp WHERE salary > 80 AND senior = TRUE")
	if len(res.Rows) != 1 || res.Rows[0][0].Str != "ann" {
		t.Fatalf("rows = %v", res.Rows)
	}
	res = queryRows(t, db, "SELECT name FROM emp WHERE salary > 80 OR senior = TRUE")
	if len(res.Rows) != 3 {
		t.Fatalf("OR filter rows = %d, want 3", len(res.Rows))
	}
	res = queryRows(t, db, "SELECT name FROM emp WHERE NOT senior = TRUE AND dept_id <> 3")
	if len(res.Rows) != 2 {
		t.Fatalf("NOT filter rows = %d, want 2", len(res.Rows))
	}
}

func TestArithmeticInProjection(t *testing.T) {
	db := seedDB(t)
	res := queryRows(t, db, "SELECT salary * 2 + 1 AS double FROM emp WHERE id = 10")
	if len(res.Rows) != 1 {
		t.Fatal("want one row")
	}
	if got := res.Rows[0][0].Float; got != 241 {
		t.Errorf("salary*2+1 = %g, want 241", got)
	}
	if res.Columns[0] != "double" {
		t.Errorf("alias = %q", res.Columns[0])
	}
	// Integer division stays integral; division by zero errors.
	res = queryRows(t, db, "SELECT 7 / 2 FROM dept LIMIT 1")
	if res.Rows[0][0].Int != 3 {
		t.Errorf("7/2 = %v, want 3", res.Rows[0][0])
	}
	if _, err := db.Query("SELECT 1 / 0 FROM dept"); err == nil {
		t.Error("division by zero did not error")
	}
}

func TestJoin(t *testing.T) {
	db := seedDB(t)
	res := queryRows(t, db, `SELECT emp.name, dept.name FROM emp
		JOIN dept ON emp.dept_id = dept.id WHERE dept.name = 'eng' ORDER BY emp.name`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	if res.Rows[0][0].Str != "ann" || res.Rows[1][0].Str != "bob" {
		t.Errorf("rows = %v", res.Rows)
	}
	// The ON condition may be written in either order.
	res2 := queryRows(t, db, `SELECT emp.name FROM emp
		JOIN dept ON dept.id = emp.dept_id WHERE dept.name = 'eng'`)
	if len(res2.Rows) != 2 {
		t.Errorf("swapped ON order gave %d rows", len(res2.Rows))
	}
}

func TestThreeWayJoinWithAliases(t *testing.T) {
	db := Open()
	mustExec(t, db, "CREATE TABLE t (a INT, b INT)")
	mustExec(t, db, "INSERT INTO t VALUES (1, 2), (2, 3), (3, 4)")
	res := queryRows(t, db, `SELECT x.a, z.b FROM t AS x
		JOIN t AS y ON x.b = y.a
		JOIN t AS z ON y.b = z.a`)
	// Chains: (1,2)->(2,3)->(3,4): exactly one row.
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(res.Rows))
	}
	if res.Rows[0][0].Int != 1 || res.Rows[0][1].Int != 4 {
		t.Errorf("row = %v", res.Rows[0])
	}
}

func TestGroupByAggregates(t *testing.T) {
	db := seedDB(t)
	res := queryRows(t, db, `SELECT dept_id, COUNT(*) AS n, SUM(salary) AS total,
		AVG(salary) AS mean, MIN(salary) AS lo, MAX(salary) AS hi
		FROM emp GROUP BY dept_id ORDER BY dept_id`)
	if len(res.Rows) != 3 {
		t.Fatalf("groups = %d, want 3", len(res.Rows))
	}
	r := res.Rows[0] // dept 1: ann 120, bob 95
	if r[1].Int != 2 || r[2].Float != 215 || r[3].Float != 107.5 || r[4].Float != 95 || r[5].Float != 120 {
		t.Errorf("dept 1 aggregates = %v", r)
	}
}

func TestGlobalAggregate(t *testing.T) {
	db := seedDB(t)
	res := queryRows(t, db, "SELECT COUNT(*), AVG(salary) FROM emp")
	if len(res.Rows) != 1 {
		t.Fatal("global aggregate must return one row")
	}
	if res.Rows[0][0].Int != 5 || res.Rows[0][1].Float != 85 {
		t.Errorf("row = %v", res.Rows[0])
	}
	// Empty input: COUNT is 0, AVG NULL.
	empty := queryRows(t, db, "SELECT COUNT(*), AVG(salary) FROM emp WHERE id = 999")
	if empty.Rows[0][0].Int != 0 || !empty.Rows[0][1].IsNull() {
		t.Errorf("empty aggregate = %v", empty.Rows[0])
	}
}

func TestOrderByDescAndLimit(t *testing.T) {
	db := seedDB(t)
	res := queryRows(t, db, "SELECT name FROM emp ORDER BY salary DESC LIMIT 2")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	if res.Rows[0][0].Str != "ann" || res.Rows[1][0].Str != "bob" {
		t.Errorf("rows = %v", res.Rows)
	}
	// ORDER BY an aggregate alias.
	res = queryRows(t, db, `SELECT dept_id, SUM(salary) AS total FROM emp
		GROUP BY dept_id ORDER BY total DESC LIMIT 1`)
	if res.Rows[0][0].Int != 1 {
		t.Errorf("top dept = %v, want 1", res.Rows[0])
	}
}

func TestDistinct(t *testing.T) {
	db := seedDB(t)
	res := queryRows(t, db, "SELECT DISTINCT senior FROM emp")
	if len(res.Rows) != 2 {
		t.Errorf("distinct rows = %d, want 2", len(res.Rows))
	}
}

func TestViews(t *testing.T) {
	db := seedDB(t)
	mustExec(t, db, "CREATE VIEW seniors AS SELECT id, name, salary FROM emp WHERE senior = TRUE")
	res := queryRows(t, db, "SELECT name FROM seniors ORDER BY name")
	if len(res.Rows) != 2 || res.Rows[0][0].Str != "ann" || res.Rows[1][0].Str != "cat" {
		t.Fatalf("view rows = %v", res.Rows)
	}
	// Views can be joined like tables.
	res = queryRows(t, db, `SELECT seniors.name FROM seniors
		JOIN dept ON seniors.id = dept.id`)
	_ = res // join on unrelated keys; just must not error
	// Views of views.
	mustExec(t, db, "CREATE VIEW rich_seniors AS SELECT name FROM seniors WHERE salary > 100")
	res = queryRows(t, db, "SELECT * FROM rich_seniors")
	if len(res.Rows) != 1 || res.Rows[0][0].Str != "ann" {
		t.Errorf("nested view rows = %v", res.Rows)
	}
	if !db.HasRelation("seniors") || db.HasRelation("nope") {
		t.Error("HasRelation wrong")
	}
	if got := db.Views(); len(got) != 2 {
		t.Errorf("Views() = %v", got)
	}
}

func TestNullSemantics(t *testing.T) {
	db := Open()
	mustExec(t, db, "CREATE TABLE t (a INT, b INT)")
	mustExec(t, db, "INSERT INTO t VALUES (1, NULL), (2, 5)")
	// NULL comparisons are never true.
	res := queryRows(t, db, "SELECT a FROM t WHERE b > 0")
	if len(res.Rows) != 1 || res.Rows[0][0].Int != 2 {
		t.Errorf("NULL filter rows = %v", res.Rows)
	}
	// Aggregates skip NULLs; COUNT(col) counts non-null.
	res = queryRows(t, db, "SELECT COUNT(b), SUM(b) FROM t")
	if res.Rows[0][0].Int != 1 || res.Rows[0][1].Int != 5 {
		t.Errorf("aggregates over NULL = %v", res.Rows[0])
	}
	// NULL join keys never match.
	mustExec(t, db, "CREATE TABLE u (b INT)")
	mustExec(t, db, "INSERT INTO u VALUES (5)")
	res = queryRows(t, db, "SELECT t.a FROM t JOIN u ON t.b = u.b")
	if len(res.Rows) != 1 || res.Rows[0][0].Int != 2 {
		t.Errorf("NULL join rows = %v", res.Rows)
	}
}

func TestTypeChecking(t *testing.T) {
	db := Open()
	mustExec(t, db, "CREATE TABLE t (a INT, s TEXT)")
	if _, _, err := db.Exec("INSERT INTO t VALUES ('str', 'ok')"); err == nil {
		t.Error("string into INT accepted")
	}
	if _, _, err := db.Exec("INSERT INTO t VALUES (1, 2)"); err == nil {
		t.Error("int into TEXT accepted")
	}
	if _, _, err := db.Exec("INSERT INTO t VALUES (1)"); err == nil {
		t.Error("wrong arity accepted")
	}
	// INT literals widen into FLOAT columns.
	mustExec(t, db, "CREATE TABLE f (x FLOAT)")
	mustExec(t, db, "INSERT INTO f VALUES (3)")
	res := queryRows(t, db, "SELECT x FROM f")
	if res.Rows[0][0].Kind != KindFloat || res.Rows[0][0].Float != 3 {
		t.Errorf("widened value = %v", res.Rows[0][0])
	}
}

func TestErrors(t *testing.T) {
	db := seedDB(t)
	bad := []string{
		"SELECT * FROM missing",
		"SELECT nope FROM emp",
		"SELECT name FROM emp WHERE",
		"SELECT name FROM emp JOIN dept ON emp.dept_id = missing.id",
		"INSERT INTO missing VALUES (1)",
		"CREATE TABLE dept (x INT)",                   // duplicate
		"CREATE TABLE bad ()",                         // no columns
		"CREATE TABLE dup (a INT, a INT)",             // duplicate column
		"CREATE VIEW v AS SELECT * FROM missing",      // unknown base
		"SELECT * FROM emp GROUP BY dept_id",          // star with grouping
		"SELECT SUM(name) FROM emp",                   // SUM over text
		"SELECT name FROM emp WHERE salary + 'x' > 1", // bad arithmetic
		"SELECT COUNT(*) FROM emp WHERE COUNT(*) > 1", // aggregate in WHERE
		"SELECT AVG(*) FROM emp",                      // only COUNT takes *
		"DROP TABLE emp",                              // unsupported statement
		"SELECT id FROM emp LIMIT -1",
		"UPDATE emp SET nope = 1",                  // unknown column
		"UPDATE missing SET a = 1",                 // unknown table
		"DELETE FROM missing",                      // unknown table
		"UPDATE emp SET salary = 'x'",              // type mismatch
		"SELECT name FROM emp WHERE NOT IN (1)",    // dangling NOT
		"SELECT name FROM emp WHERE salary LIKE 3", // LIKE over numbers
	}
	for _, sql := range bad {
		if _, _, err := db.Exec(sql); err == nil {
			t.Errorf("accepted bad SQL: %s", sql)
		}
	}
}

func TestAmbiguousColumn(t *testing.T) {
	db := seedDB(t)
	// "name" exists in both emp and dept after the join.
	if _, err := db.Query("SELECT name FROM emp JOIN dept ON emp.dept_id = dept.id"); err == nil {
		t.Error("ambiguous column accepted")
	}
}

func TestExplainTreeAndSignature(t *testing.T) {
	db := seedDB(t)
	plan, err := db.Explain(`SELECT dept_id, COUNT(*) FROM emp
		JOIN dept ON emp.dept_id = dept.id
		WHERE salary > 10 GROUP BY dept_id ORDER BY dept_id`)
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	tree := plan.Tree()
	for _, op := range []string{"scan(emp)", "scan(dept)", "hashjoin", "filter", "group", "sort", "project"} {
		if !strings.Contains(tree, op) {
			t.Errorf("plan tree missing %q:\n%s", op, tree)
		}
	}
	if plan.Cost() <= 0 {
		t.Errorf("cost = %g", plan.Cost())
	}
	// Signature ignores constants: two queries of the same template
	// share it.
	p1, err := db.Explain("SELECT name FROM emp WHERE salary > 100")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := db.Explain("SELECT name FROM emp WHERE salary > 55")
	if err != nil {
		t.Fatal(err)
	}
	if p1.Signature() != p2.Signature() {
		t.Errorf("same-template signatures differ:\n%s\n%s", p1.Signature(), p2.Signature())
	}
	p3, err := db.Explain("SELECT name FROM emp JOIN dept ON emp.dept_id = dept.id WHERE salary > 55")
	if err != nil {
		t.Fatal(err)
	}
	if p1.Signature() == p3.Signature() {
		t.Error("different plans share a signature")
	}
}

func TestExplainStatement(t *testing.T) {
	db := seedDB(t)
	res, _, err := db.Exec("EXPLAIN SELECT * FROM emp WHERE id = 10")
	if err != nil {
		t.Fatalf("EXPLAIN: %v", err)
	}
	if len(res.Rows) != 1 || !strings.Contains(res.Rows[0][0].Str, "scan(emp)") {
		t.Errorf("EXPLAIN output: %v", res.Rows)
	}
}

func TestExplainCostGrowsWithData(t *testing.T) {
	db := Open()
	mustExec(t, db, "CREATE TABLE t (a INT)")
	p0, err := db.Explain("SELECT a FROM t WHERE a > 0")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	sb.WriteString("INSERT INTO t VALUES (0)")
	for i := 1; i < 500; i++ {
		sb.WriteString(",(")
		sb.WriteString(strings.Repeat("1", 1)) // value 1
		sb.WriteString(")")
	}
	mustExec(t, db, sb.String())
	p1, err := db.Explain("SELECT a FROM t WHERE a > 0")
	if err != nil {
		t.Fatal(err)
	}
	if p1.Cost() <= p0.Cost() {
		t.Errorf("cost did not grow with data: %g vs %g", p1.Cost(), p0.Cost())
	}
}

func TestConcurrentReadsAndWrites(t *testing.T) {
	db := seedDB(t)
	done := make(chan error, 20)
	for i := 0; i < 10; i++ {
		go func() {
			_, err := db.Query("SELECT COUNT(*) FROM emp JOIN dept ON emp.dept_id = dept.id")
			done <- err
		}()
		go func() {
			_, _, err := db.Exec("INSERT INTO dept VALUES (99, 'tmp', 1.0)")
			done <- err
		}()
	}
	for i := 0; i < 20; i++ {
		if err := <-done; err != nil {
			t.Fatalf("concurrent op: %v", err)
		}
	}
}

func TestSelectFromViewUsesHasRelation(t *testing.T) {
	db := seedDB(t)
	if db.HasRelation("emp") != true {
		t.Error("emp missing")
	}
	tables := db.Tables()
	if len(tables) != 2 || tables[0] != "dept" {
		t.Errorf("Tables() = %v", tables)
	}
}

func TestStringEscapes(t *testing.T) {
	db := Open()
	mustExec(t, db, "CREATE TABLE s (v TEXT)")
	mustExec(t, db, "INSERT INTO s VALUES ('it''s')")
	res := queryRows(t, db, "SELECT v FROM s")
	if res.Rows[0][0].Str != "it's" {
		t.Errorf("escaped string = %q", res.Rows[0][0].Str)
	}
	if _, err := Parse("SELECT 'unterminated"); err == nil {
		t.Error("unterminated string accepted")
	}
}

func TestParserRoundTrip(t *testing.T) {
	queries := []string{
		"SELECT a, b AS c FROM t WHERE a > 1 ORDER BY b DESC LIMIT 3",
		"SELECT COUNT(*) FROM t GROUP BY a",
		"SELECT DISTINCT a FROM t JOIN u ON t.a = u.b",
		"SELECT a + 1 * 2 FROM t WHERE NOT a = 2 AND b < 3 OR c >= 4",
	}
	for _, q := range queries {
		stmt, err := Parse(q)
		if err != nil {
			t.Fatalf("Parse(%q): %v", q, err)
		}
		sel, ok := stmt.(*SelectStmt)
		if !ok {
			t.Fatalf("Parse(%q) = %T", q, stmt)
		}
		// Re-parsing the rendered form must succeed and be stable.
		again, err := Parse(sel.String())
		if err != nil {
			t.Fatalf("reparse of %q (%q): %v", q, sel.String(), err)
		}
		if again.(*SelectStmt).String() != sel.String() {
			t.Errorf("round trip unstable:\n%s\n%s", sel.String(), again.(*SelectStmt).String())
		}
	}
}

func TestOperatorPrecedence(t *testing.T) {
	db := Open()
	mustExec(t, db, "CREATE TABLE one (x INT)")
	mustExec(t, db, "INSERT INTO one VALUES (1)")
	cases := []struct {
		expr string
		want int64
	}{
		{"1 + 2 * 3", 7},
		{"(1 + 2) * 3", 9},
		{"10 - 4 - 3", 3}, // left associative
		{"-2 * 3", -6},
		{"20 / 2 / 5", 2},
	}
	for _, c := range cases {
		res := queryRows(t, db, "SELECT "+c.expr+" FROM one")
		if got := res.Rows[0][0].Int; got != c.want {
			t.Errorf("%s = %d, want %d", c.expr, got, c.want)
		}
	}
}

func TestComments(t *testing.T) {
	db := seedDB(t)
	res := queryRows(t, db, "SELECT id FROM dept -- trailing comment\nWHERE id = 1")
	if len(res.Rows) != 1 {
		t.Errorf("comment handling broke query: %v", res.Rows)
	}
}
