package sqldb

import (
	"fmt"
	"sort"
)

// This file is the exported surface alternate executors build on. The
// storage-driver seam (internal/driver) lets a federation node front any
// engine, but every engine must agree with this one cell-for-cell —
// drivers are differential-tested against sqldb — so the scalar
// semantics (NULL logic, coercions, hash keys) are exported here as the
// single source of truth instead of being re-implemented per backend.

// GroupKey serializes a value for hash-aggregation and hash-join keys.
// Numeric values of equal magnitude share a key.
func (v Value) GroupKey() string { return v.groupKey() }

// RowKey serializes a whole row for DISTINCT bookkeeping.
func RowKey(r Row) string { return rowKey(r) }

// AsFloat coerces numeric values to float64 for mixed arithmetic,
// reporting false for non-numeric kinds.
func (v Value) AsFloat() (float64, bool) { return v.asFloat() }

// ApplyBinary applies a binary operator (+ - * / = <> < <= > >= AND OR)
// to two already-evaluated operands under this engine's three-valued
// NULL logic. It does not short-circuit; callers that must match the
// executor's lazy AND/OR evaluation handle that before calling.
func ApplyBinary(op string, l, r Value) (Value, error) { return applyBinary(op, l, r) }

// ApplyUnary applies NOT or unary minus.
func ApplyUnary(op string, v Value) (Value, error) { return applyUnary(op, v) }

// LikeMatch implements SQL LIKE: % matches any run (including empty),
// _ matches exactly one byte. Byte-wise and case-sensitive.
func LikeMatch(s, pattern string) bool { return likeMatch(s, pattern) }

// EvalConst evaluates an expression with no column references (INSERT
// values, literal folding).
func EvalConst(e Expr) (Value, error) { return evalConst(e) }

// Coerce converts v to the column type, allowing the usual widenings
// (int literals into FLOAT columns).
func Coerce(v Value, t Type) (Value, error) { return coerce(v, t) }

// NeedsAggregation reports whether the SELECT runs through the grouped
// path: any GROUP BY clause, or an aggregate in the projection.
func NeedsAggregation(s *SelectStmt) bool { return needsAggregation(s) }

// ContainsAgg reports whether the expression contains an aggregate call.
func ContainsAgg(e Expr) bool { return containsAgg(e) }

// OrderKeyExprs returns the ORDER BY key expressions with select
// aliases substituted (ORDER BY total for SELECT SUM(x) AS total).
func OrderKeyExprs(s *SelectStmt) ([]Expr, error) { return substituteAliases(s) }

// ItemName names one projection column: alias, bare column name, or the
// lower-cased expression rendering.
func ItemName(it SelectItem) string { return itemName(it) }

// IndexableEq inspects the WHERE clause for an equality conjunct
// "ref.col = literal" binding only FROM entry refIdx, the condition
// under which the planner prices an index scan.
func IndexableEq(sel *SelectStmt, refIdx int) (string, Value, bool) {
	return indexableEq(sel, refIdx)
}

// MaxViewDepth is the bound on view-over-view recursion every executor
// enforces identically.
const MaxViewDepth = maxViewDepth

// Reset drops every table, view, and index, returning the instance to
// its freshly-opened state. The maps are cleared in place, so a pooled
// scratch instance keeps its buckets instead of reallocating them.
func (db *DB) Reset() {
	db.mu.Lock()
	defer db.mu.Unlock()
	clear(db.tables)
	clear(db.views)
	clear(db.indexes)
	clear(db.tableIndexes)
}

// TableSchema returns the column definitions of a base table.
func (db *DB) TableSchema(name string) ([]ColumnDef, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[name]
	if !ok {
		return nil, false
	}
	return t.cols, true
}

// TableRows returns the current rows of a base table. The slice aliases
// live storage: callers must treat it as read-only and must not retain
// it across writes. It exists so another backend can ingest this
// engine's data without a per-row SQL round trip.
func (db *DB) TableRows(name string) ([]Row, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[name]
	if !ok {
		return nil, false
	}
	return t.rows, true
}

// AppendTableRows bulk-loads already-typed rows into a base table,
// bypassing SQL parsing — the ingestion twin of TableRows. Values are
// coerced to the column types exactly like INSERT, the input rows are
// copied (the caller keeps ownership of its slices), and indexes are
// refreshed once at the end.
func (db *DB) AppendTableRows(name string, rows []Row) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[name]
	if !ok {
		return fmt.Errorf("sqldb: no table %q", name)
	}
	added := make([]Row, 0, len(rows))
	for ri, r := range rows {
		if len(r) != len(t.cols) {
			return fmt.Errorf("sqldb: row %d has %d values, table %q has %d columns",
				ri, len(r), name, len(t.cols))
		}
		row := make(Row, len(r))
		for ci, v := range r {
			cv, err := coerce(v, t.cols[ci].Type)
			if err != nil {
				return fmt.Errorf("sqldb: row %d column %q: %w", ri, t.cols[ci].Name, err)
			}
			row[ci] = cv
		}
		added = append(added, row)
	}
	firstNew := len(t.rows)
	t.rows = append(t.rows, added...)
	db.refreshIndexesAfterInsert(t, firstNew)
	return nil
}

// ViewSelect returns the SELECT a view is defined as.
func (db *DB) ViewSelect(name string) (*SelectStmt, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	v, ok := db.views[name]
	return v, ok
}

// IndexDefs lists (table, column) pairs for every index, in creation
// order per table, so another backend can mirror the access paths that
// feed this engine's plan signatures.
func (db *DB) IndexDefs() [][2]string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.indexes))
	for n := range db.indexes {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([][2]string, 0, len(names))
	for _, name := range names {
		ix := db.indexes[name]
		out = append(out, [2]string{ix.table, ix.column})
	}
	return out
}
