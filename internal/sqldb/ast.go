package sqldb

import (
	"fmt"
	"strings"
)

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// CreateTableStmt is CREATE TABLE name (col TYPE, ...).
type CreateTableStmt struct {
	Name    string
	Columns []ColumnDef
}

// ColumnDef declares one table column.
type ColumnDef struct {
	Name string
	Type Type
}

// CreateViewStmt is CREATE VIEW name AS SELECT ... .
type CreateViewStmt struct {
	Name   string
	Select *SelectStmt
}

// InsertStmt is INSERT INTO name VALUES (...), (...).
type InsertStmt struct {
	Table string
	Rows  [][]Expr
}

// SelectStmt is the SELECT statement AST.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     []TableRef // first entry plus one per JOIN
	Joins    []JoinOn   // len(From)-1 entries; Joins[i] links From[i+1]
	Where    Expr       // nil when absent
	GroupBy  []Expr
	OrderBy  []OrderItem
	Limit    int // -1 when absent
	Offset   int // 0 when absent
}

// SelectItem is one projection: expression or star.
type SelectItem struct {
	Star  bool // SELECT *
	Expr  Expr
	Alias string
}

// TableRef names a base table or view in FROM.
type TableRef struct {
	Table string
	Alias string // defaults to Table
}

// Name returns the binding name of the reference.
func (t TableRef) Name() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Table
}

// JoinOn is the equi-join condition "ON a.x = b.y".
type JoinOn struct {
	Left, Right ColumnRef
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// ExplainStmt wraps a SELECT for EXPLAIN.
type ExplainStmt struct {
	Select *SelectStmt
}

// UpdateStmt is UPDATE t SET col = expr, ... [WHERE expr].
type UpdateStmt struct {
	Table string
	Set   []Assignment
	Where Expr // nil = all rows
}

// Assignment is one SET clause.
type Assignment struct {
	Column string
	Value  Expr
}

// DeleteStmt is DELETE FROM t [WHERE expr].
type DeleteStmt struct {
	Table string
	Where Expr // nil = all rows
}

// CreateIndexStmt is CREATE INDEX name ON table (column): a hash index
// accelerating equality lookups.
type CreateIndexStmt struct {
	Name   string
	Table  string
	Column string
}

func (*CreateTableStmt) stmt() {}
func (*CreateViewStmt) stmt()  {}
func (*InsertStmt) stmt()      {}
func (*SelectStmt) stmt()      {}
func (*ExplainStmt) stmt()     {}
func (*UpdateStmt) stmt()      {}
func (*DeleteStmt) stmt()      {}
func (*CreateIndexStmt) stmt() {}

// Expr is a scalar expression node.
type Expr interface {
	fmt.Stringer
	expr()
}

// Literal is a constant value.
type Literal struct{ Val Value }

// ColumnRef references table.column or column.
type ColumnRef struct {
	Table  string // empty = unqualified
	Column string
}

// BinaryExpr applies Op to two operands. Op is one of
// + - * / = <> < <= > >= AND OR.
type BinaryExpr struct {
	Op          string
	Left, Right Expr
}

// UnaryExpr is NOT x or -x.
type UnaryExpr struct {
	Op string // "NOT" or "-"
	X  Expr
}

// AggExpr is an aggregate call: COUNT/SUM/AVG/MIN/MAX. A nil Arg with
// Star set is COUNT(*).
type AggExpr struct {
	Func string
	Star bool
	Arg  Expr
}

// InExpr is "x [NOT] IN (v1, v2, ...)".
type InExpr struct {
	X    Expr
	List []Expr
	Neg  bool
}

// BetweenExpr is "x [NOT] BETWEEN lo AND hi" (inclusive).
type BetweenExpr struct {
	X, Lo, Hi Expr
	Neg       bool
}

// LikeExpr is "x [NOT] LIKE pattern" with % and _ wildcards.
type LikeExpr struct {
	X       Expr
	Pattern Expr
	Neg     bool
}

// IsNullExpr is "x IS [NOT] NULL".
type IsNullExpr struct {
	X   Expr
	Neg bool
}

func (*Literal) expr()     {}
func (*ColumnRef) expr()   {}
func (*BinaryExpr) expr()  {}
func (*UnaryExpr) expr()   {}
func (*AggExpr) expr()     {}
func (*InExpr) expr()      {}
func (*BetweenExpr) expr() {}
func (*LikeExpr) expr()    {}
func (*IsNullExpr) expr()  {}

func (l *Literal) String() string { return l.Val.String() }

func (c *ColumnRef) String() string {
	if c.Table != "" {
		return c.Table + "." + c.Column
	}
	return c.Column
}

func (b *BinaryExpr) String() string {
	return "(" + b.Left.String() + " " + b.Op + " " + b.Right.String() + ")"
}

func (u *UnaryExpr) String() string {
	if u.Op == "NOT" {
		return "(NOT " + u.X.String() + ")"
	}
	return "(" + u.Op + u.X.String() + ")"
}

func (a *AggExpr) String() string {
	if a.Star {
		return a.Func + "(*)"
	}
	return a.Func + "(" + a.Arg.String() + ")"
}

func (e *InExpr) String() string {
	var b strings.Builder
	b.WriteString(e.X.String())
	if e.Neg {
		b.WriteString(" NOT")
	}
	b.WriteString(" IN (")
	for i, v := range e.List {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteByte(')')
	return b.String()
}

func (e *BetweenExpr) String() string {
	not := ""
	if e.Neg {
		not = " NOT"
	}
	return e.X.String() + not + " BETWEEN " + e.Lo.String() + " AND " + e.Hi.String()
}

func (e *LikeExpr) String() string {
	not := ""
	if e.Neg {
		not = " NOT"
	}
	return e.X.String() + not + " LIKE " + e.Pattern.String()
}

func (e *IsNullExpr) String() string {
	if e.Neg {
		return e.X.String() + " IS NOT NULL"
	}
	return e.X.String() + " IS NULL"
}

// String renders the SELECT back to SQL (used in plan signatures and
// view storage).
func (s *SelectStmt) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		if it.Star {
			b.WriteByte('*')
			continue
		}
		b.WriteString(it.Expr.String())
		if it.Alias != "" {
			b.WriteString(" AS " + it.Alias)
		}
	}
	b.WriteString(" FROM ")
	for i, f := range s.From {
		if i > 0 {
			j := s.Joins[i-1]
			b.WriteString(" JOIN ")
			writeRef(&b, f)
			fmt.Fprintf(&b, " ON %s = %s", j.Left.String(), j.Right.String())
			continue
		}
		writeRef(&b, f)
	}
	if s.Where != nil {
		b.WriteString(" WHERE " + s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, g := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(g.String())
		}
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(o.Expr.String())
			if o.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if s.Limit >= 0 {
		fmt.Fprintf(&b, " LIMIT %d", s.Limit)
	}
	if s.Offset > 0 {
		fmt.Fprintf(&b, " OFFSET %d", s.Offset)
	}
	return b.String()
}

func writeRef(b *strings.Builder, f TableRef) {
	b.WriteString(f.Table)
	if f.Alias != "" && f.Alias != f.Table {
		b.WriteString(" AS " + f.Alias)
	}
}
