package sqldb

import (
	"fmt"
)

// index is a hash index over one column: value key -> row positions.
// Inserts append incrementally; UPDATE and DELETE rebuild the table's
// indexes (simple and correct; these tables are read-mostly).
type index struct {
	name   string
	table  string
	column string
	col    int              // column position
	m      map[string][]int // value groupKey -> row positions
}

func (ix *index) rebuild(t *table) {
	ix.m = make(map[string][]int, len(t.rows))
	for pos, row := range t.rows {
		k := row[ix.col].groupKey()
		ix.m[k] = append(ix.m[k], pos)
	}
}

func (ix *index) add(t *table, from int) {
	for pos := from; pos < len(t.rows); pos++ {
		k := t.rows[pos][ix.col].groupKey()
		ix.m[k] = append(ix.m[k], pos)
	}
}

// createIndex handles CREATE INDEX.
func (db *DB) createIndex(s *CreateIndexStmt) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.indexes[s.Name]; dup {
		return fmt.Errorf("sqldb: index %q already exists", s.Name)
	}
	t, ok := db.tables[s.Table]
	if !ok {
		return fmt.Errorf("sqldb: no table %q", s.Table)
	}
	col, ok := t.idx[s.Column]
	if !ok {
		return fmt.Errorf("sqldb: no column %q in table %q", s.Column, s.Table)
	}
	ix := &index{name: s.Name, table: s.Table, column: s.Column, col: col}
	ix.rebuild(t)
	db.indexes[s.Name] = ix
	db.tableIndexes[s.Table] = append(db.tableIndexes[s.Table], ix)
	return nil
}

// Indexes returns the names of all indexes, sorted by name order of
// creation is not guaranteed; callers sort if needed.
func (db *DB) Indexes() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.indexes))
	for n := range db.indexes {
		out = append(out, n)
	}
	return out
}

// lookupIndex finds an index on (table, column), if any. Caller holds
// at least a read lock.
func (db *DB) lookupIndex(table, column string) *index {
	for _, ix := range db.tableIndexes[table] {
		if ix.column == column {
			return ix
		}
	}
	return nil
}

// refreshIndexesAfterInsert incrementally extends the table's indexes.
// Caller holds the write lock.
func (db *DB) refreshIndexesAfterInsert(t *table, firstNew int) {
	for _, ix := range db.tableIndexes[t.name] {
		ix.add(t, firstNew)
	}
}

// rebuildIndexes recomputes all indexes of a table after UPDATE or
// DELETE. Caller holds the write lock.
func (db *DB) rebuildIndexes(t *table) {
	for _, ix := range db.tableIndexes[t.name] {
		ix.rebuild(t)
	}
}

// indexableEq inspects the WHERE clause for an equality conjunct
// "ref.col = literal" (or reversed) that binds only the given FROM
// entry, returning the column and constant. Unqualified columns only
// count when the query has a single FROM entry.
func indexableEq(sel *SelectStmt, refIdx int) (string, Value, bool) {
	if sel.Where == nil {
		return "", Null, false
	}
	ref := sel.From[refIdx]
	single := len(sel.From) == 1
	for _, c := range andConjuncts(sel.Where) {
		b, ok := c.(*BinaryExpr)
		if !ok || b.Op != "=" {
			continue
		}
		col, lit := asColLit(b.Left, b.Right)
		if col == nil {
			col, lit = asColLit(b.Right, b.Left)
		}
		if col == nil || lit == nil || lit.Val.IsNull() {
			continue
		}
		if col.Table == ref.Name() || (col.Table == "" && single) {
			return col.Column, lit.Val, true
		}
	}
	return "", Null, false
}

func asColLit(a, b Expr) (*ColumnRef, *Literal) {
	col, ok := a.(*ColumnRef)
	if !ok {
		return nil, nil
	}
	lit, ok := b.(*Literal)
	if !ok {
		return nil, nil
	}
	return col, lit
}

func andConjuncts(e Expr) []Expr {
	if b, ok := e.(*BinaryExpr); ok && b.Op == "AND" {
		return append(andConjuncts(b.Left), andConjuncts(b.Right)...)
	}
	return []Expr{e}
}
