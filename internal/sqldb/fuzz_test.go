package sqldb

import (
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzParse feeds arbitrary byte strings through the SQL parser: it
// must never panic, and whatever it accepts must render back to SQL
// that parses to the same rendering (round-trip stability).
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"SELECT * FROM t",
		"SELECT a, b AS c FROM t JOIN u ON t.a = u.b WHERE a > 1 AND b IN (1,2) ORDER BY a DESC LIMIT 3 OFFSET 1",
		"CREATE TABLE t (a INT, b TEXT)",
		"CREATE VIEW v AS SELECT a FROM t WHERE a BETWEEN 1 AND 2",
		"CREATE INDEX i ON t (a)",
		"INSERT INTO t VALUES (1, 'x''y'), (NULL, 'z')",
		"UPDATE t SET a = a + 1 WHERE b LIKE '%x%'",
		"DELETE FROM t WHERE a IS NOT NULL",
		"EXPLAIN SELECT COUNT(*) FROM t GROUP BY a",
		"SELECT -1 + 2 * (3 - 4) / 5 FROM t",
		"SELECT 'unterminated",
		"SELECT \x00 FROM t",
		"))))((((",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		if !utf8.ValidString(input) || len(input) > 4096 {
			t.Skip()
		}
		stmt, err := Parse(input)
		if err != nil {
			return // rejection is fine; panics are not
		}
		sel, ok := stmt.(*SelectStmt)
		if !ok {
			return
		}
		rendered := sel.String()
		again, err := Parse(rendered)
		if err != nil {
			t.Fatalf("accepted %q but rejected own rendering %q: %v", input, rendered, err)
		}
		if s2, ok := again.(*SelectStmt); !ok || s2.String() != rendered {
			t.Fatalf("unstable rendering: %q -> %q", rendered, s2.String())
		}
	})
}

// FuzzLikeMatch checks the wildcard matcher never panics and honors
// the trivial invariants on arbitrary inputs.
func FuzzLikeMatch(f *testing.F) {
	f.Add("mississippi", "%iss%")
	f.Add("", "")
	f.Add("abc", "a_c")
	f.Fuzz(func(t *testing.T, s, p string) {
		if len(s) > 256 || len(p) > 64 {
			t.Skip()
		}
		got := likeMatch(s, p)
		if p == "%" && !got {
			t.Fatalf("%% must match %q", s)
		}
		if !strings.ContainsAny(p, "%_") && got != (s == p) {
			t.Fatalf("wildcard-free pattern %q vs %q: got %t", p, s, got)
		}
	})
}
