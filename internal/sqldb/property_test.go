package sqldb

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// randomDB builds a two-table database with random small-domain data
// so joins have hits, misses and duplicates.
func randomDB(t *testing.T, rng *rand.Rand, rowsA, rowsB int) *DB {
	t.Helper()
	db := Open()
	mustExec(t, db, "CREATE TABLE a (k INT, v INT)")
	mustExec(t, db, "CREATE TABLE b (k INT, w INT)")
	insert := func(table string, n int) {
		if n == 0 {
			return
		}
		var b strings.Builder
		fmt.Fprintf(&b, "INSERT INTO %s VALUES ", table)
		for i := 0; i < n; i++ {
			if i > 0 {
				b.WriteByte(',')
			}
			if rng.Float64() < 0.1 {
				fmt.Fprintf(&b, "(NULL, %d)", rng.Intn(50))
			} else {
				fmt.Fprintf(&b, "(%d, %d)", rng.Intn(8), rng.Intn(50))
			}
		}
		mustExec(t, db, b.String())
	}
	insert("a", rowsA)
	insert("b", rowsB)
	return db
}

// TestQuickHashJoinMatchesNestedLoop cross-checks the hash join
// against a brute-force nested-loop computed from the base tables.
func TestQuickHashJoinMatchesNestedLoop(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		db := randomDB(t, rng, rng.Intn(40), rng.Intn(40))
		got, err := db.Query("SELECT a.k, a.v, b.w FROM a JOIN b ON a.k = b.k")
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Reference: nested loop over the raw rows.
		aRows := queryRows(t, db, "SELECT k, v FROM a").Rows
		bRows := queryRows(t, db, "SELECT k, w FROM b").Rows
		var want []string
		for _, ar := range aRows {
			for _, br := range bRows {
				if ar[0].IsNull() || br[0].IsNull() {
					continue
				}
				if Equal(ar[0], br[0]) {
					want = append(want, fmt.Sprintf("%v|%v|%v", ar[0], ar[1], br[1]))
				}
			}
		}
		var gotKeys []string
		for _, r := range got.Rows {
			gotKeys = append(gotKeys, fmt.Sprintf("%v|%v|%v", r[0], r[1], r[2]))
		}
		sort.Strings(want)
		sort.Strings(gotKeys)
		if len(want) != len(gotKeys) {
			t.Fatalf("seed %d: join produced %d rows, reference %d", seed, len(gotKeys), len(want))
		}
		for i := range want {
			if want[i] != gotKeys[i] {
				t.Fatalf("seed %d: row %d differs: %s vs %s", seed, i, gotKeys[i], want[i])
			}
		}
	}
}

// TestQuickAggregationConsistency checks that per-group SUM/COUNT roll
// up to the global aggregates.
func TestQuickAggregationConsistency(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		db := randomDB(t, rng, 5+rng.Intn(60), 0)
		groups := queryRows(t, db, "SELECT k, COUNT(*) AS n, SUM(v) AS s FROM a GROUP BY k")
		var n, s int64
		for _, g := range groups.Rows {
			n += g[1].Int
			if !g[2].IsNull() {
				s += g[2].Int
			}
		}
		global := queryRows(t, db, "SELECT COUNT(*), SUM(v) FROM a")
		if global.Rows[0][0].Int != n {
			t.Fatalf("seed %d: group counts %d != global %d", seed, n, global.Rows[0][0].Int)
		}
		if !global.Rows[0][1].IsNull() && global.Rows[0][1].Int != s {
			t.Fatalf("seed %d: group sums %d != global %v", seed, s, global.Rows[0][1])
		}
	}
}

// TestQuickFilterPartition checks WHERE p and WHERE NOT p partition
// the rows whose predicate is non-NULL.
func TestQuickFilterPartition(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(200 + seed))
		db := randomDB(t, rng, 5+rng.Intn(60), 0)
		threshold := rng.Intn(50)
		all := queryRows(t, db, "SELECT COUNT(*) FROM a WHERE v IS NOT NULL").Rows[0][0].Int
		pos := queryRows(t, db, fmt.Sprintf("SELECT COUNT(*) FROM a WHERE v > %d", threshold)).Rows[0][0].Int
		neg := queryRows(t, db, fmt.Sprintf("SELECT COUNT(*) FROM a WHERE NOT v > %d", threshold)).Rows[0][0].Int
		if pos+neg != all {
			t.Fatalf("seed %d: %d + %d != %d", seed, pos, neg, all)
		}
	}
}

// TestQuickOrderBySorted verifies ORDER BY output is monotone.
func TestQuickOrderBySorted(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(300 + seed))
		db := randomDB(t, rng, 5+rng.Intn(80), 0)
		asc := queryRows(t, db, "SELECT v FROM a ORDER BY v")
		for i := 1; i < len(asc.Rows); i++ {
			if Compare(asc.Rows[i-1][0], asc.Rows[i][0]) > 0 {
				t.Fatalf("seed %d: ASC violated at %d: %v > %v", seed, i, asc.Rows[i-1][0], asc.Rows[i][0])
			}
		}
		desc := queryRows(t, db, "SELECT v FROM a ORDER BY v DESC")
		for i := 1; i < len(desc.Rows); i++ {
			if Compare(desc.Rows[i-1][0], desc.Rows[i][0]) < 0 {
				t.Fatalf("seed %d: DESC violated at %d", seed, i)
			}
		}
	}
}

// TestQuickDistinctIdempotent verifies SELECT DISTINCT returns unique
// rows and is idempotent in cardinality.
func TestQuickDistinctIdempotent(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(400 + seed))
		db := randomDB(t, rng, 5+rng.Intn(80), 0)
		res := queryRows(t, db, "SELECT DISTINCT k FROM a")
		seen := map[string]bool{}
		for _, r := range res.Rows {
			key := r[0].String()
			if seen[key] {
				t.Fatalf("seed %d: duplicate %s in DISTINCT output", seed, key)
			}
			seen[key] = true
		}
	}
}

// TestQuickUpdateDeleteConservation checks UPDATE changes no row
// counts and DELETE removes exactly the WHERE-matching rows.
func TestQuickUpdateDeleteConservation(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(500 + seed))
		db := randomDB(t, rng, 10+rng.Intn(60), 0)
		before := queryRows(t, db, "SELECT COUNT(*) FROM a").Rows[0][0].Int
		threshold := rng.Intn(50)
		if _, _, err := db.Exec(fmt.Sprintf("UPDATE a SET v = v + 1 WHERE v < %d", threshold)); err != nil {
			t.Fatal(err)
		}
		after := queryRows(t, db, "SELECT COUNT(*) FROM a").Rows[0][0].Int
		if before != after {
			t.Fatalf("seed %d: UPDATE changed row count %d -> %d", seed, before, after)
		}
		matching := queryRows(t, db, fmt.Sprintf("SELECT COUNT(*) FROM a WHERE v > %d", threshold)).Rows[0][0].Int
		_, removed, err := db.Exec(fmt.Sprintf("DELETE FROM a WHERE v > %d", threshold))
		if err != nil {
			t.Fatal(err)
		}
		if int64(removed) != matching {
			t.Fatalf("seed %d: DELETE removed %d, matching %d", seed, removed, matching)
		}
		left := queryRows(t, db, "SELECT COUNT(*) FROM a").Rows[0][0].Int
		if left != after-matching {
			t.Fatalf("seed %d: %d rows left, want %d", seed, left, after-matching)
		}
	}
}
