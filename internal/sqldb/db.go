package sqldb

import (
	"fmt"
	"sort"
	"sync"
)

// DB is one embedded database instance: an in-memory row store with
// tables and views. All methods are safe for concurrent use.
type DB struct {
	mu           sync.RWMutex
	tables       map[string]*table
	views        map[string]*SelectStmt
	indexes      map[string]*index   // by index name
	tableIndexes map[string][]*index // by table name
}

type table struct {
	name string
	cols []ColumnDef
	idx  map[string]int // column name -> position
	rows []Row
}

// Open creates an empty database.
func Open() *DB {
	return &DB{
		tables:       make(map[string]*table),
		views:        make(map[string]*SelectStmt),
		indexes:      make(map[string]*index),
		tableIndexes: make(map[string][]*index),
	}
}

// Result is the output of a query.
type Result struct {
	Columns []string
	Rows    []Row
}

// Exec parses and executes a statement. For SELECT it returns the
// result; for DDL/DML the result is nil and n is the number of rows
// affected (inserted).
func (db *DB) Exec(sql string) (res *Result, n int, err error) {
	stmt, err := Parse(sql)
	if err != nil {
		return nil, 0, err
	}
	switch s := stmt.(type) {
	case *CreateTableStmt:
		return nil, 0, db.createTable(s)
	case *CreateViewStmt:
		return nil, 0, db.createView(s)
	case *CreateIndexStmt:
		return nil, 0, db.createIndex(s)
	case *InsertStmt:
		n, err := db.insert(s)
		return nil, n, err
	case *UpdateStmt:
		n, err := db.update(s)
		return nil, n, err
	case *DeleteStmt:
		n, err := db.delete(s)
		return nil, n, err
	case *SelectStmt:
		r, err := db.Select(s)
		return r, 0, err
	case *ExplainStmt:
		plan, err := db.PlanSelect(s.Select)
		if err != nil {
			return nil, 0, err
		}
		return &Result{
			Columns: []string{"plan"},
			Rows:    []Row{{NewText(plan.Tree())}},
		}, 0, nil
	default:
		return nil, 0, fmt.Errorf("sqldb: unhandled statement %T", stmt)
	}
}

// Query parses and runs a SELECT.
func (db *DB) Query(sql string) (*Result, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("sqldb: Query requires a SELECT, got %T", stmt)
	}
	return db.Select(sel)
}

// Explain parses a SELECT (or EXPLAIN SELECT) and returns its plan
// without executing it.
func (db *DB) Explain(sql string) (*Plan, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	switch s := stmt.(type) {
	case *SelectStmt:
		return db.PlanSelect(s)
	case *ExplainStmt:
		return db.PlanSelect(s.Select)
	default:
		return nil, fmt.Errorf("sqldb: Explain requires a SELECT, got %T", stmt)
	}
}

// Tables returns the names of all base tables, sorted.
func (db *DB) Tables() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for n := range db.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Views returns the names of all views, sorted.
func (db *DB) Views() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.views))
	for n := range db.views {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// HasRelation reports whether name is a table or view here. The cluster
// nodes use it to answer "can this node evaluate the query at all".
func (db *DB) HasRelation(name string) bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	_, t := db.tables[name]
	_, v := db.views[name]
	return t || v
}

// RowCount returns the number of rows in a base table.
func (db *DB) RowCount(name string) (int, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[name]
	if !ok {
		return 0, fmt.Errorf("sqldb: no table %q", name)
	}
	return len(t.rows), nil
}

func (db *DB) createTable(s *CreateTableStmt) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.tables[s.Name]; ok {
		return fmt.Errorf("sqldb: table %q already exists", s.Name)
	}
	if _, ok := db.views[s.Name]; ok {
		return fmt.Errorf("sqldb: %q already exists as a view", s.Name)
	}
	if len(s.Columns) == 0 {
		return fmt.Errorf("sqldb: table %q has no columns", s.Name)
	}
	idx := make(map[string]int, len(s.Columns))
	for i, c := range s.Columns {
		if _, dup := idx[c.Name]; dup {
			return fmt.Errorf("sqldb: duplicate column %q in table %q", c.Name, s.Name)
		}
		idx[c.Name] = i
	}
	db.tables[s.Name] = &table{name: s.Name, cols: s.Columns, idx: idx}
	return nil
}

func (db *DB) createView(s *CreateViewStmt) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.tables[s.Name]; ok {
		return fmt.Errorf("sqldb: %q already exists as a table", s.Name)
	}
	if _, ok := db.views[s.Name]; ok {
		return fmt.Errorf("sqldb: view %q already exists", s.Name)
	}
	// Validate that the underlying relations exist now, not at use time.
	for _, f := range s.Select.From {
		if _, t := db.tables[f.Table]; !t {
			if _, v := db.views[f.Table]; !v {
				return fmt.Errorf("sqldb: view %q references unknown relation %q", s.Name, f.Table)
			}
		}
	}
	db.views[s.Name] = s.Select
	return nil
}

func (db *DB) insert(s *InsertStmt) (int, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[s.Table]
	if !ok {
		return 0, fmt.Errorf("sqldb: no table %q", s.Table)
	}
	added := make([]Row, 0, len(s.Rows))
	for ri, exprs := range s.Rows {
		if len(exprs) != len(t.cols) {
			return 0, fmt.Errorf("sqldb: row %d has %d values, table %q has %d columns",
				ri, len(exprs), s.Table, len(t.cols))
		}
		row := make(Row, len(exprs))
		for ci, e := range exprs {
			v, err := evalConst(e)
			if err != nil {
				return 0, fmt.Errorf("sqldb: row %d column %d: %w", ri, ci, err)
			}
			cv, err := coerce(v, t.cols[ci].Type)
			if err != nil {
				return 0, fmt.Errorf("sqldb: row %d column %q: %w", ri, t.cols[ci].Name, err)
			}
			row[ci] = cv
		}
		added = append(added, row)
	}
	firstNew := len(t.rows)
	t.rows = append(t.rows, added...)
	db.refreshIndexesAfterInsert(t, firstNew)
	return len(added), nil
}

// update applies UPDATE t SET ... WHERE ... and reports the number of
// rows changed. SET expressions may reference the row's current values.
func (db *DB) update(s *UpdateStmt) (int, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[s.Table]
	if !ok {
		return 0, fmt.Errorf("sqldb: no table %q", s.Table)
	}
	// Pre-resolve assignment targets.
	targets := make([]int, len(s.Set))
	for i, a := range s.Set {
		pos, ok := t.idx[a.Column]
		if !ok {
			return 0, fmt.Errorf("sqldb: no column %q in table %q", a.Column, s.Table)
		}
		targets[i] = pos
	}
	rel := t.relation()
	changed := 0
	for ri, row := range t.rows {
		match, err := rowMatches(s.Where, &rel, row)
		if err != nil {
			return changed, err
		}
		if !match {
			continue
		}
		next := row.Clone()
		for i, a := range s.Set {
			v, err := evalExpr(a.Value, &rel, row)
			if err != nil {
				return changed, err
			}
			cv, err := coerce(v, t.cols[targets[i]].Type)
			if err != nil {
				return changed, fmt.Errorf("sqldb: column %q: %w", a.Column, err)
			}
			next[targets[i]] = cv
		}
		t.rows[ri] = next
		changed++
	}
	if changed > 0 {
		db.rebuildIndexes(t)
	}
	return changed, nil
}

// delete applies DELETE FROM t WHERE ... and reports the number of
// rows removed.
func (db *DB) delete(s *DeleteStmt) (int, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[s.Table]
	if !ok {
		return 0, fmt.Errorf("sqldb: no table %q", s.Table)
	}
	rel := t.relation()
	kept := t.rows[:0:0]
	removed := 0
	for _, row := range t.rows {
		match, err := rowMatches(s.Where, &rel, row)
		if err != nil {
			return 0, err
		}
		if match {
			removed++
			continue
		}
		kept = append(kept, row)
	}
	t.rows = kept
	if removed > 0 {
		db.rebuildIndexes(t)
	}
	return removed, nil
}

// relation views the table as an intermediate relation for expression
// evaluation.
func (t *table) relation() relation {
	cols := make([]binding, len(t.cols))
	for i, c := range t.cols {
		cols[i] = binding{qual: t.name, name: c.Name}
	}
	return relation{cols: cols, rows: t.rows}
}

// rowMatches evaluates a WHERE predicate (nil = always true).
func rowMatches(where Expr, rel *relation, row Row) (bool, error) {
	if where == nil {
		return true, nil
	}
	v, err := evalExpr(where, rel, row)
	if err != nil {
		return false, err
	}
	return v.Kind == KindBool && v.Bool, nil
}

// evalConst evaluates an expression with no column references.
func evalConst(e Expr) (Value, error) {
	return evalExpr(e, nil, Row{})
}

// coerce converts v to the column type, allowing the usual widenings.
func coerce(v Value, t Type) (Value, error) {
	if v.IsNull() {
		return v, nil
	}
	switch t {
	case TInt:
		if v.Kind == KindInt {
			return v, nil
		}
	case TFloat:
		switch v.Kind {
		case KindFloat:
			return v, nil
		case KindInt:
			return NewFloat(float64(v.Int)), nil
		}
	case TText:
		if v.Kind == KindText {
			return v, nil
		}
	case TBool:
		if v.Kind == KindBool {
			return v, nil
		}
	}
	return Null, fmt.Errorf("cannot store %s into %s column", v, t)
}
