package sqldb

import (
	"fmt"
	"math"
	"strings"
)

// Plan is the output of EXPLAIN: an operator tree with cardinality and
// cost estimates. Costs are abstract per-row work units; callers (the
// cluster's estimator) convert them to milliseconds per node, refined
// with past-execution history exactly as Section 5.2 of the paper
// describes.
type Plan struct {
	Root *PlanNode
}

// PlanNode is one operator of the plan tree.
type PlanNode struct {
	Op       string  // scan, view, hashjoin, filter, group, sort, distinct, project, limit
	Label    string  // table/view name or condition summary
	Rows     float64 // estimated output cardinality
	Cost     float64 // cumulative cost including children
	Children []*PlanNode
}

// Cost returns the plan's total estimated cost in work units.
func (p *Plan) Cost() float64 { return p.Root.Cost }

// IOCost returns the portion of the plan's cost attributable to base
// data access (scan leaves). Together with CPUCost it lets callers
// model machines whose disk and processor speeds differ independently.
func (p *Plan) IOCost() float64 {
	var io float64
	var walk func(n *PlanNode)
	walk = func(n *PlanNode) {
		if n.Op == "scan" {
			io += n.Cost
			return
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(p.Root)
	return io
}

// CPUCost returns the non-scan portion of the plan's cost (joins,
// grouping, sorting, projection).
func (p *Plan) CPUCost() float64 {
	c := p.Cost() - p.IOCost()
	if c < 0 {
		return 0
	}
	return c
}

// Rows returns the plan's estimated output cardinality.
func (p *Plan) Rows() float64 { return p.Root.Rows }

// Tree renders the plan as an indented EXPLAIN listing.
func (p *Plan) Tree() string {
	var b strings.Builder
	var walk func(n *PlanNode, depth int)
	walk = func(n *PlanNode, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		if n.Label != "" {
			fmt.Fprintf(&b, "%s(%s)", n.Op, n.Label)
		} else {
			b.WriteString(n.Op)
		}
		fmt.Fprintf(&b, "  rows=%.0f cost=%.1f\n", n.Rows, n.Cost)
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	walk(p.Root, 0)
	return strings.TrimRight(b.String(), "\n")
}

// Signature canonicalizes the plan's *shape* — operators and relation
// names, no constants or cardinalities. Two queries of the same
// template (differing only in selection constants, Section 2.1) share a
// signature, which is what makes it the key of the past-execution
// history estimator.
func (p *Plan) Signature() string {
	var b strings.Builder
	var walk func(n *PlanNode)
	walk = func(n *PlanNode) {
		b.WriteString(n.Op)
		if n.Op == "scan" || n.Op == "view" {
			b.WriteString(":" + n.Label)
		}
		if len(n.Children) > 0 {
			b.WriteByte('(')
			for i, c := range n.Children {
				if i > 0 {
					b.WriteByte(',')
				}
				walk(c)
			}
			b.WriteByte(')')
		}
	}
	walk(p.Root)
	return b.String()
}

// Planner selectivity and cardinality heuristics (textbook defaults).
const (
	filterSelectivity = 0.33
	groupReduction    = 0.1
)

// PlanCatalog is the read-only metadata surface the planner consumes:
// table cardinalities, view definitions, and index distinct counts.
// Implementations back it with whatever storage they own; sqldb's own
// tables implement it below. Costing runs through this one planner for
// every backend, so two engines holding the same catalog produce
// byte-identical signatures and estimates — the property the cluster's
// pricing classes and history EMAs depend on.
type PlanCatalog interface {
	// TableRowCount reports a base table's cardinality (false when the
	// name is not a base table).
	TableRowCount(name string) (rows int, ok bool)
	// ViewSelect reports the SELECT a view is defined as (false when the
	// name is not a view).
	ViewSelect(name string) (*SelectStmt, bool)
	// IndexDistinct reports the distinct-key count of an index on
	// (table, column), false when no such index exists.
	IndexDistinct(table, column string) (distinct int, ok bool)
}

// PlanSelect builds the cost-annotated plan of a SELECT without
// executing it.
func (db *DB) PlanSelect(s *SelectStmt) (*Plan, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return PlanSelectOn(lockedCatalog{db}, s)
}

// PlanSelectOn builds the cost-annotated plan of a SELECT against any
// catalog. The catalog is responsible for its own consistency: the
// planner may call it several times per statement.
func PlanSelectOn(cat PlanCatalog, s *SelectStmt) (*Plan, error) {
	root, err := planOn(cat, s, 0)
	if err != nil {
		return nil, err
	}
	return &Plan{Root: root}, nil
}

// lockedCatalog adapts a *DB whose mu is already (read-)held by the
// caller; it must not take the lock again.
type lockedCatalog struct{ db *DB }

func (c lockedCatalog) TableRowCount(name string) (int, bool) {
	t, ok := c.db.tables[name]
	if !ok {
		return 0, false
	}
	return len(t.rows), true
}

func (c lockedCatalog) ViewSelect(name string) (*SelectStmt, bool) {
	v, ok := c.db.views[name]
	return v, ok
}

func (c lockedCatalog) IndexDistinct(table, column string) (int, bool) {
	ix := c.db.lookupIndex(table, column)
	if ix == nil {
		return 0, false
	}
	return len(ix.m), true
}

func planOn(cat PlanCatalog, s *SelectStmt, depth int) (*PlanNode, error) {
	if depth > maxViewDepth {
		return nil, fmt.Errorf("sqldb: view nesting exceeds %d", maxViewDepth)
	}
	node, err := planRefIndexedOn(cat, s, 0, depth)
	if err != nil {
		return nil, err
	}
	for i, join := range s.Joins {
		right, err := planRefIndexedOn(cat, s, i+1, depth)
		if err != nil {
			return nil, err
		}
		// Hash join: build the smaller side, probe the larger. Estimated
		// output follows the usual foreign-key heuristic of max input
		// cardinality.
		rows := math.Max(node.Rows, right.Rows)
		node = &PlanNode{
			Op:       "hashjoin",
			Label:    join.Left.String() + "=" + join.Right.String(),
			Rows:     rows,
			Cost:     node.Cost + right.Cost + node.Rows + right.Rows,
			Children: []*PlanNode{node, right},
		}
	}
	if s.Where != nil {
		node = &PlanNode{
			Op:       "filter",
			Rows:     math.Max(1, node.Rows*filterSelectivity),
			Cost:     node.Cost + node.Rows,
			Children: []*PlanNode{node},
		}
	}
	if needsAggregation(s) {
		rows := 1.0
		if len(s.GroupBy) > 0 {
			rows = math.Max(1, node.Rows*groupReduction)
		}
		node = &PlanNode{
			Op:       "group",
			Rows:     rows,
			Cost:     node.Cost + node.Rows,
			Children: []*PlanNode{node},
		}
	}
	if s.Distinct {
		node = &PlanNode{
			Op:       "distinct",
			Rows:     math.Max(1, node.Rows*0.9),
			Cost:     node.Cost + node.Rows,
			Children: []*PlanNode{node},
		}
	}
	if len(s.OrderBy) > 0 {
		n := math.Max(2, node.Rows)
		node = &PlanNode{
			Op:       "sort",
			Rows:     node.Rows,
			Cost:     node.Cost + n*math.Log2(n),
			Children: []*PlanNode{node},
		}
	}
	rows := node.Rows
	if s.Limit >= 0 {
		rows = math.Min(rows, float64(s.Limit))
		node = &PlanNode{
			Op:       "limit",
			Label:    fmt.Sprintf("%d", s.Limit),
			Rows:     rows,
			Cost:     node.Cost,
			Children: []*PlanNode{node},
		}
	}
	node = &PlanNode{
		Op:       "project",
		Rows:     rows,
		Cost:     node.Cost + rows,
		Children: []*PlanNode{node},
	}
	return node, nil
}

// planRefIndexedOn plans one FROM entry, choosing an index scan when an
// equality conjunct pins an indexed column.
func planRefIndexedOn(cat PlanCatalog, s *SelectStmt, refIdx, depth int) (*PlanNode, error) {
	ref := s.From[refIdx]
	if nrows, ok := cat.TableRowCount(ref.Table); ok {
		if col, _, ok := indexableEq(s, refIdx); ok {
			if d, ok := cat.IndexDistinct(ref.Table, col); ok {
				// Estimated selectivity: rows divided by distinct keys.
				distinct := math.Max(1, float64(d))
				rows := math.Max(1, float64(nrows)/distinct)
				return &PlanNode{Op: "ixscan", Label: ref.Table + "." + col, Rows: rows, Cost: rows}, nil
			}
		}
	}
	return planRefOn(cat, ref, depth)
}

func planRefOn(cat PlanCatalog, ref TableRef, depth int) (*PlanNode, error) {
	if nrows, ok := cat.TableRowCount(ref.Table); ok {
		rows := float64(nrows)
		return &PlanNode{Op: "scan", Label: ref.Table, Rows: rows, Cost: math.Max(1, rows)}, nil
	}
	if v, ok := cat.ViewSelect(ref.Table); ok {
		inner, err := planOn(cat, v, depth+1)
		if err != nil {
			return nil, fmt.Errorf("sqldb: planning view %q: %w", ref.Table, err)
		}
		return &PlanNode{
			Op:       "view",
			Label:    ref.Table,
			Rows:     inner.Rows,
			Cost:     inner.Cost,
			Children: []*PlanNode{inner},
		}, nil
	}
	return nil, fmt.Errorf("sqldb: unknown relation %q", ref.Table)
}
