package sqldb

import (
	"strings"
	"testing"
)

func TestExecScript(t *testing.T) {
	db := Open()
	n, err := ExecScript(db, `
		CREATE TABLE t (a INT, b TEXT);

		-- seed data
		INSERT INTO t VALUES (1, 'x'), (2, 'y');
		INSERT INTO t VALUES (3, 'z');
	`)
	if err != nil {
		t.Fatalf("ExecScript: %v", err)
	}
	if n != 3 {
		t.Errorf("affected %d rows, want 3", n)
	}
	res := queryRows(t, db, "SELECT COUNT(*) FROM t")
	if res.Rows[0][0].Int != 3 {
		t.Errorf("count = %v", res.Rows[0][0])
	}
}

func TestExecScriptErrorIndexing(t *testing.T) {
	db := Open()
	_, err := ExecScript(db, `
		CREATE TABLE t (a INT);
		INSERT INTO t VALUES ('wrong type');
	`)
	if err == nil {
		t.Fatal("bad script accepted")
	}
	if !strings.Contains(err.Error(), "statement 2") {
		t.Errorf("error lacks statement index: %v", err)
	}
	// The valid prefix has been applied (no transactionality; this is
	// documented behaviour).
	if !db.HasRelation("t") {
		t.Error("first statement not applied")
	}
}

func TestExecScriptEmptyAndComments(t *testing.T) {
	db := Open()
	if _, err := ExecScript(db, "\n  -- nothing here\n;;\n"); err != nil {
		t.Fatalf("comment-only script: %v", err)
	}
}
