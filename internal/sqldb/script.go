package sqldb

import (
	"fmt"
	"strings"
)

// ExecScript executes a ';'-separated sequence of statements (the
// format of qanode's -init files). Empty statements and line comments
// are skipped. On error it reports the 1-based statement index. It
// returns the total number of rows affected by DML statements.
func ExecScript(db *DB, script string) (int, error) {
	total := 0
	idx := 0
	for _, stmt := range strings.Split(script, ";") {
		stmt = strings.TrimSpace(stmt)
		if stmt == "" || isOnlyComments(stmt) {
			continue
		}
		idx++
		_, n, err := db.Exec(stmt)
		if err != nil {
			return total, fmt.Errorf("sqldb: script statement %d: %w", idx, err)
		}
		total += n
	}
	return total, nil
}

// isOnlyComments reports whether every line is blank or a -- comment.
func isOnlyComments(s string) bool {
	for _, line := range strings.Split(s, "\n") {
		line = strings.TrimSpace(line)
		if line != "" && !strings.HasPrefix(line, "--") {
			return false
		}
	}
	return true
}
