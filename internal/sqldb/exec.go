package sqldb

import (
	"fmt"
	"sort"
	"strings"
)

// binding names one column of an intermediate relation: qual is the
// table alias (or view name) it came from.
type binding struct {
	qual string
	name string
}

// relation is a materialized intermediate result.
type relation struct {
	cols []binding
	rows []Row
}

// resolve finds the position of a column reference, enforcing SQL's
// ambiguity rules for unqualified names.
func (r *relation) resolve(c *ColumnRef) (int, error) {
	found := -1
	for i, b := range r.cols {
		if c.Column != b.name {
			continue
		}
		if c.Table != "" && c.Table != b.qual {
			continue
		}
		if found >= 0 {
			return 0, fmt.Errorf("sqldb: ambiguous column %q", c.String())
		}
		found = i
	}
	if found < 0 {
		return 0, fmt.Errorf("sqldb: unknown column %q", c.String())
	}
	return found, nil
}

// maxViewDepth bounds view-over-view recursion.
const maxViewDepth = 16

// Select plans and executes a SELECT statement.
func (db *DB) Select(s *SelectStmt) (*Result, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.selectLocked(s, 0)
}

func (db *DB) selectLocked(s *SelectStmt, depth int) (*Result, error) {
	if depth > maxViewDepth {
		return nil, fmt.Errorf("sqldb: view nesting exceeds %d", maxViewDepth)
	}
	rel, err := db.scanRefIndexed(s, 0, depth)
	if err != nil {
		return nil, err
	}
	for i, join := range s.Joins {
		right, err := db.scanRefIndexed(s, i+1, depth)
		if err != nil {
			return nil, err
		}
		rel, err = hashJoin(rel, right, join)
		if err != nil {
			return nil, err
		}
	}
	if s.Where != nil {
		filtered := relation{cols: rel.cols}
		for _, row := range rel.rows {
			v, err := evalExpr(s.Where, &rel, row)
			if err != nil {
				return nil, err
			}
			if v.Kind == KindBool && v.Bool {
				filtered.rows = append(filtered.rows, row)
			}
		}
		rel = filtered
	}

	orderExprs, err := substituteAliases(s)
	if err != nil {
		return nil, err
	}

	var names []string
	var out []outRow
	if needsAggregation(s) {
		names, out, err = executeGrouped(s, &rel, orderExprs)
	} else {
		names, out, err = executeProjection(s, &rel, orderExprs)
	}
	if err != nil {
		return nil, err
	}

	if s.Distinct {
		seen := make(map[string]bool, len(out))
		kept := out[:0]
		for _, r := range out {
			k := rowKey(r.vis)
			if !seen[k] {
				seen[k] = true
				kept = append(kept, r)
			}
		}
		out = kept
	}
	if len(s.OrderBy) > 0 {
		sort.SliceStable(out, func(i, j int) bool {
			for k, o := range s.OrderBy {
				c := Compare(out[i].keys[k], out[j].keys[k])
				if c == 0 {
					continue
				}
				if o.Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
	}
	if s.Offset > 0 {
		if s.Offset >= len(out) {
			out = nil
		} else {
			out = out[s.Offset:]
		}
	}
	if s.Limit >= 0 && len(out) > s.Limit {
		out = out[:s.Limit]
	}
	res := &Result{Columns: names, Rows: make([]Row, len(out))}
	for i, r := range out {
		res.Rows[i] = r.vis
	}
	return res, nil
}

// outRow carries the projected values plus hidden ORDER BY keys.
type outRow struct {
	vis  Row
	keys Row
}

// scanRefIndexed materializes one FROM entry, serving the scan from a
// hash index when the WHERE clause pins an indexed column to a
// constant. The residual WHERE still re-checks the predicate, so index
// use is purely an access-path optimization.
func (db *DB) scanRefIndexed(s *SelectStmt, refIdx, depth int) (relation, error) {
	ref := s.From[refIdx]
	if t, ok := db.tables[ref.Table]; ok {
		if col, val, ok := indexableEq(s, refIdx); ok {
			if ix := db.lookupIndex(ref.Table, col); ix != nil {
				rel := relation{cols: make([]binding, len(t.cols))}
				for i, c := range t.cols {
					rel.cols[i] = binding{qual: ref.Name(), name: c.Name}
				}
				for _, pos := range ix.m[val.groupKey()] {
					rel.rows = append(rel.rows, t.rows[pos])
				}
				return rel, nil
			}
		}
	}
	return db.scanRef(ref, depth)
}

// scanRef materializes one FROM entry: a base table or a view.
func (db *DB) scanRef(ref TableRef, depth int) (relation, error) {
	qual := ref.Name()
	if t, ok := db.tables[ref.Table]; ok {
		rel := relation{cols: make([]binding, len(t.cols)), rows: t.rows}
		for i, c := range t.cols {
			rel.cols[i] = binding{qual: qual, name: c.Name}
		}
		return rel, nil
	}
	if v, ok := db.views[ref.Table]; ok {
		res, err := db.selectLocked(v, depth+1)
		if err != nil {
			return relation{}, fmt.Errorf("sqldb: expanding view %q: %w", ref.Table, err)
		}
		rel := relation{cols: make([]binding, len(res.Columns)), rows: res.Rows}
		for i, c := range res.Columns {
			rel.cols[i] = binding{qual: qual, name: c}
		}
		return rel, nil
	}
	return relation{}, fmt.Errorf("sqldb: unknown relation %q", ref.Table)
}

// hashJoin performs an equi-join on the ON condition. Either side of
// the condition may name either input; resolution decides.
func hashJoin(left, right relation, on JoinOn) (relation, error) {
	lcol, rcol, err := splitJoinCols(&left, &right, on)
	if err != nil {
		return relation{}, err
	}
	// Build on the smaller input.
	buildLeft := len(left.rows) <= len(right.rows)
	build, probe := &left, &right
	bcol, pcol := lcol, rcol
	if !buildLeft {
		build, probe = &right, &left
		bcol, pcol = rcol, lcol
	}
	ht := make(map[string][]Row, len(build.rows))
	for _, row := range build.rows {
		v := row[bcol]
		if v.IsNull() {
			continue // NULL never joins
		}
		k := v.groupKey()
		ht[k] = append(ht[k], row)
	}
	out := relation{cols: append(append([]binding{}, left.cols...), right.cols...)}
	for _, prow := range probe.rows {
		v := prow[pcol]
		if v.IsNull() {
			continue
		}
		for _, brow := range ht[v.groupKey()] {
			var joined Row
			if buildLeft {
				joined = append(append(make(Row, 0, len(brow)+len(prow)), brow...), prow...)
			} else {
				joined = append(append(make(Row, 0, len(prow)+len(brow)), prow...), brow...)
			}
			out.rows = append(out.rows, joined)
		}
	}
	return out, nil
}

// splitJoinCols resolves the two sides of an ON condition to (left
// column index, right column index).
func splitJoinCols(left, right *relation, on JoinOn) (int, int, error) {
	l := on.Left
	r := on.Right
	if li, err := left.resolve(&l); err == nil {
		ri, err := right.resolve(&r)
		if err != nil {
			return 0, 0, fmt.Errorf("sqldb: join condition: %w", err)
		}
		return li, ri, nil
	}
	// Swapped order: ON right_table.x = left_table.y.
	li, err := left.resolve(&r)
	if err != nil {
		return 0, 0, fmt.Errorf("sqldb: join condition %s = %s matches neither side", on.Left.String(), on.Right.String())
	}
	ri, err := right.resolve(&l)
	if err != nil {
		return 0, 0, fmt.Errorf("sqldb: join condition: %w", err)
	}
	return li, ri, nil
}

// substituteAliases rewrites ORDER BY expressions, replacing bare
// column references that match a select alias with the aliased
// expression (ORDER BY total for SELECT SUM(x) AS total).
func substituteAliases(s *SelectStmt) ([]Expr, error) {
	aliases := make(map[string]Expr)
	for _, it := range s.Items {
		if it.Alias != "" && !it.Star {
			aliases[it.Alias] = it.Expr
		}
	}
	out := make([]Expr, len(s.OrderBy))
	for i, o := range s.OrderBy {
		if c, ok := o.Expr.(*ColumnRef); ok && c.Table == "" {
			if e, ok := aliases[c.Column]; ok {
				out[i] = e
				continue
			}
		}
		out[i] = o.Expr
	}
	return out, nil
}

func needsAggregation(s *SelectStmt) bool {
	if len(s.GroupBy) > 0 {
		return true
	}
	for _, it := range s.Items {
		if !it.Star && containsAgg(it.Expr) {
			return true
		}
	}
	return false
}

func containsAgg(e Expr) bool {
	switch x := e.(type) {
	case *AggExpr:
		return true
	case *BinaryExpr:
		return containsAgg(x.Left) || containsAgg(x.Right)
	case *UnaryExpr:
		return containsAgg(x.X)
	case *InExpr:
		if containsAgg(x.X) {
			return true
		}
		for _, item := range x.List {
			if containsAgg(item) {
				return true
			}
		}
		return false
	case *BetweenExpr:
		return containsAgg(x.X) || containsAgg(x.Lo) || containsAgg(x.Hi)
	case *LikeExpr:
		return containsAgg(x.X) || containsAgg(x.Pattern)
	case *IsNullExpr:
		return containsAgg(x.X)
	default:
		return false
	}
}

// executeProjection is the non-aggregating path.
func executeProjection(s *SelectStmt, rel *relation, orderExprs []Expr) ([]string, []outRow, error) {
	items, names, err := expandItems(s, rel)
	if err != nil {
		return nil, nil, err
	}
	out := make([]outRow, 0, len(rel.rows))
	for _, row := range rel.rows {
		vis := make(Row, len(items))
		for i, it := range items {
			v, err := evalExpr(it, rel, row)
			if err != nil {
				return nil, nil, err
			}
			vis[i] = v
		}
		keys := make(Row, len(orderExprs))
		for i, e := range orderExprs {
			v, err := evalExpr(e, rel, row)
			if err != nil {
				return nil, nil, err
			}
			keys[i] = v
		}
		out = append(out, outRow{vis: vis, keys: keys})
	}
	return names, out, nil
}

// expandItems flattens SELECT * into explicit column references.
func expandItems(s *SelectStmt, rel *relation) ([]Expr, []string, error) {
	var items []Expr
	var names []string
	for _, it := range s.Items {
		if it.Star {
			for _, b := range rel.cols {
				items = append(items, &ColumnRef{Table: b.qual, Column: b.name})
				names = append(names, b.name)
			}
			continue
		}
		items = append(items, it.Expr)
		names = append(names, itemName(it))
	}
	return items, names, nil
}

func itemName(it SelectItem) string {
	if it.Alias != "" {
		return it.Alias
	}
	if c, ok := it.Expr.(*ColumnRef); ok {
		return c.Column
	}
	return strings.ToLower(it.Expr.String())
}

// executeGrouped is the aggregation path: hash-group on the GROUP BY
// keys (one global group when absent) and evaluate each select item per
// group.
func executeGrouped(s *SelectStmt, rel *relation, orderExprs []Expr) ([]string, []outRow, error) {
	names := make([]string, len(s.Items))
	for i, it := range s.Items {
		if it.Star {
			return nil, nil, fmt.Errorf("sqldb: SELECT * cannot be combined with aggregation")
		}
		names[i] = itemName(it)
	}
	type group struct {
		rows []Row
	}
	groups := make(map[string]*group)
	var order []string
	for _, row := range rel.rows {
		var kb strings.Builder
		for _, g := range s.GroupBy {
			v, err := evalExpr(g, rel, row)
			if err != nil {
				return nil, nil, err
			}
			kb.WriteString(v.groupKey())
			kb.WriteByte('|')
		}
		k := kb.String()
		grp, ok := groups[k]
		if !ok {
			grp = &group{}
			groups[k] = grp
			order = append(order, k)
		}
		grp.rows = append(grp.rows, row)
	}
	// A global aggregate over an empty input still yields one row.
	if len(groups) == 0 && len(s.GroupBy) == 0 {
		groups[""] = &group{}
		order = append(order, "")
	}
	out := make([]outRow, 0, len(order))
	for _, k := range order {
		grp := groups[k]
		vis := make(Row, len(s.Items))
		for i, it := range s.Items {
			v, err := evalAggregate(it.Expr, rel, grp.rows)
			if err != nil {
				return nil, nil, err
			}
			vis[i] = v
		}
		keys := make(Row, len(orderExprs))
		for i, e := range orderExprs {
			v, err := evalAggregate(e, rel, grp.rows)
			if err != nil {
				return nil, nil, err
			}
			keys[i] = v
		}
		out = append(out, outRow{vis: vis, keys: keys})
	}
	return names, out, nil
}

// evalAggregate evaluates an expression in grouped context: aggregate
// nodes fold the group's rows, everything else evaluates against the
// group's first row (which SQL requires to be functionally determined
// by the grouping keys).
func evalAggregate(e Expr, rel *relation, rows []Row) (Value, error) {
	switch x := e.(type) {
	case *AggExpr:
		return foldAgg(x, rel, rows)
	case *BinaryExpr:
		l, err := evalAggregate(x.Left, rel, rows)
		if err != nil {
			return Null, err
		}
		r, err := evalAggregate(x.Right, rel, rows)
		if err != nil {
			return Null, err
		}
		return applyBinary(x.Op, l, r)
	case *UnaryExpr:
		v, err := evalAggregate(x.X, rel, rows)
		if err != nil {
			return Null, err
		}
		return applyUnary(x.Op, v)
	default:
		if len(rows) == 0 {
			return Null, nil
		}
		return evalExpr(e, rel, rows[0])
	}
}

func foldAgg(a *AggExpr, rel *relation, rows []Row) (Value, error) {
	if a.Star {
		return NewInt(int64(len(rows))), nil
	}
	var count int64
	var sum float64
	allInt := true
	var minV, maxV Value
	first := true
	for _, row := range rows {
		v, err := evalExpr(a.Arg, rel, row)
		if err != nil {
			return Null, err
		}
		if v.IsNull() {
			continue
		}
		count++
		if f, ok := v.asFloat(); ok {
			sum += f
			if v.Kind != KindInt {
				allInt = false
			}
		} else if a.Func == "SUM" || a.Func == "AVG" {
			return Null, fmt.Errorf("sqldb: %s over non-numeric value %s", a.Func, v)
		}
		if first || Compare(v, minV) < 0 {
			minV = v
		}
		if first || Compare(v, maxV) > 0 {
			maxV = v
		}
		first = false
	}
	switch a.Func {
	case "COUNT":
		return NewInt(count), nil
	case "SUM":
		if count == 0 {
			return Null, nil
		}
		if allInt {
			return NewInt(int64(sum)), nil
		}
		return NewFloat(sum), nil
	case "AVG":
		if count == 0 {
			return Null, nil
		}
		return NewFloat(sum / float64(count)), nil
	case "MIN":
		if count == 0 {
			return Null, nil
		}
		return minV, nil
	case "MAX":
		if count == 0 {
			return Null, nil
		}
		return maxV, nil
	default:
		return Null, fmt.Errorf("sqldb: unknown aggregate %q", a.Func)
	}
}

// evalExpr evaluates a scalar expression against one row. A nil
// relation evaluates constant expressions only.
func evalExpr(e Expr, rel *relation, row Row) (Value, error) {
	switch x := e.(type) {
	case *Literal:
		return x.Val, nil
	case *ColumnRef:
		if rel == nil {
			return Null, fmt.Errorf("column %q in constant context", x.String())
		}
		i, err := rel.resolve(x)
		if err != nil {
			return Null, err
		}
		return row[i], nil
	case *BinaryExpr:
		l, err := evalExpr(x.Left, rel, row)
		if err != nil {
			return Null, err
		}
		// Short-circuit the logical operators.
		switch x.Op {
		case "AND":
			if l.Kind == KindBool && !l.Bool {
				return NewBool(false), nil
			}
		case "OR":
			if l.Kind == KindBool && l.Bool {
				return NewBool(true), nil
			}
		}
		r, err := evalExpr(x.Right, rel, row)
		if err != nil {
			return Null, err
		}
		return applyBinary(x.Op, l, r)
	case *UnaryExpr:
		v, err := evalExpr(x.X, rel, row)
		if err != nil {
			return Null, err
		}
		return applyUnary(x.Op, v)
	case *InExpr:
		v, err := evalExpr(x.X, rel, row)
		if err != nil {
			return Null, err
		}
		if v.IsNull() {
			return Null, nil
		}
		found := false
		for _, item := range x.List {
			iv, err := evalExpr(item, rel, row)
			if err != nil {
				return Null, err
			}
			if !iv.IsNull() && Equal(v, iv) {
				found = true
				break
			}
		}
		return NewBool(found != x.Neg), nil
	case *BetweenExpr:
		v, err := evalExpr(x.X, rel, row)
		if err != nil {
			return Null, err
		}
		lo, err := evalExpr(x.Lo, rel, row)
		if err != nil {
			return Null, err
		}
		hi, err := evalExpr(x.Hi, rel, row)
		if err != nil {
			return Null, err
		}
		if v.IsNull() || lo.IsNull() || hi.IsNull() {
			return Null, nil
		}
		in := Compare(v, lo) >= 0 && Compare(v, hi) <= 0
		return NewBool(in != x.Neg), nil
	case *LikeExpr:
		v, err := evalExpr(x.X, rel, row)
		if err != nil {
			return Null, err
		}
		pat, err := evalExpr(x.Pattern, rel, row)
		if err != nil {
			return Null, err
		}
		if v.IsNull() || pat.IsNull() {
			return Null, nil
		}
		if v.Kind != KindText || pat.Kind != KindText {
			return Null, fmt.Errorf("sqldb: LIKE requires text operands")
		}
		return NewBool(likeMatch(v.Str, pat.Str) != x.Neg), nil
	case *IsNullExpr:
		v, err := evalExpr(x.X, rel, row)
		if err != nil {
			return Null, err
		}
		return NewBool(v.IsNull() != x.Neg), nil
	case *AggExpr:
		return Null, fmt.Errorf("sqldb: aggregate %s outside GROUP BY context", x.String())
	default:
		return Null, fmt.Errorf("sqldb: unhandled expression %T", e)
	}
}

// likeMatch implements SQL LIKE: % matches any run (including empty),
// _ matches exactly one byte. Matching is byte-wise and case-sensitive.
func likeMatch(s, pattern string) bool {
	// Classic two-pointer wildcard matching with backtracking on %.
	si, pi := 0, 0
	star, match := -1, 0
	for si < len(s) {
		switch {
		// The wildcard case must win over literal equality: a literal
		// '%' in s would otherwise consume the pattern's '%' operator.
		case pi < len(pattern) && pattern[pi] == '%':
			star = pi
			match = si
			pi++
		case pi < len(pattern) && (pattern[pi] == '_' || pattern[pi] == s[si]):
			si++
			pi++
		case star >= 0:
			pi = star + 1
			match++
			si = match
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '%' {
		pi++
	}
	return pi == len(pattern)
}

func applyBinary(op string, l, r Value) (Value, error) {
	switch op {
	case "AND", "OR":
		lb, lok := asBool(l)
		rb, rok := asBool(r)
		if !lok || !rok {
			return Null, nil // NULL logic collapses to NULL, filtered as false
		}
		if op == "AND" {
			return NewBool(lb && rb), nil
		}
		return NewBool(lb || rb), nil
	case "=", "<>", "<", "<=", ">", ">=":
		if l.IsNull() || r.IsNull() {
			return Null, nil
		}
		c := Compare(l, r)
		switch op {
		case "=":
			return NewBool(c == 0), nil
		case "<>":
			return NewBool(c != 0), nil
		case "<":
			return NewBool(c < 0), nil
		case "<=":
			return NewBool(c <= 0), nil
		case ">":
			return NewBool(c > 0), nil
		default:
			return NewBool(c >= 0), nil
		}
	case "+", "-", "*", "/":
		if l.IsNull() || r.IsNull() {
			return Null, nil
		}
		if l.Kind == KindInt && r.Kind == KindInt {
			switch op {
			case "+":
				return NewInt(l.Int + r.Int), nil
			case "-":
				return NewInt(l.Int - r.Int), nil
			case "*":
				return NewInt(l.Int * r.Int), nil
			default:
				if r.Int == 0 {
					return Null, fmt.Errorf("sqldb: division by zero")
				}
				return NewInt(l.Int / r.Int), nil
			}
		}
		lf, lok := l.asFloat()
		rf, rok := r.asFloat()
		if !lok || !rok {
			return Null, fmt.Errorf("sqldb: arithmetic on non-numeric values %s, %s", l, r)
		}
		switch op {
		case "+":
			return NewFloat(lf + rf), nil
		case "-":
			return NewFloat(lf - rf), nil
		case "*":
			return NewFloat(lf * rf), nil
		default:
			if rf == 0 {
				return Null, fmt.Errorf("sqldb: division by zero")
			}
			return NewFloat(lf / rf), nil
		}
	default:
		return Null, fmt.Errorf("sqldb: unknown operator %q", op)
	}
}

func applyUnary(op string, v Value) (Value, error) {
	switch op {
	case "NOT":
		b, ok := asBool(v)
		if !ok {
			return Null, nil
		}
		return NewBool(!b), nil
	case "-":
		switch v.Kind {
		case KindInt:
			return NewInt(-v.Int), nil
		case KindFloat:
			return NewFloat(-v.Float), nil
		case KindNull:
			return Null, nil
		default:
			return Null, fmt.Errorf("sqldb: negation of %s", v)
		}
	default:
		return Null, fmt.Errorf("sqldb: unknown unary operator %q", op)
	}
}

func asBool(v Value) (bool, bool) {
	if v.Kind == KindBool {
		return v.Bool, true
	}
	return false, false
}

func rowKey(r Row) string {
	var b strings.Builder
	for _, v := range r {
		b.WriteString(v.groupKey())
		b.WriteByte('|')
	}
	return b.String()
}
