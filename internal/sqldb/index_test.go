package sqldb

import (
	"fmt"
	"strings"
	"testing"
)

func indexedDB(t *testing.T) *DB {
	t.Helper()
	db := Open()
	mustExec(t, db, "CREATE TABLE ev (id INT, kind TEXT, v INT)")
	var b strings.Builder
	b.WriteString("INSERT INTO ev VALUES ")
	for i := 0; i < 200; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "(%d, 'k%d', %d)", i, i%5, i*3)
	}
	mustExec(t, db, b.String())
	mustExec(t, db, "CREATE INDEX ev_kind ON ev (kind)")
	return db
}

func TestIndexScanUsedAndCorrect(t *testing.T) {
	db := indexedDB(t)
	plan, err := db.Explain("SELECT COUNT(*) FROM ev WHERE kind = 'k2'")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.Tree(), "ixscan(ev.kind)") {
		t.Errorf("plan does not use the index:\n%s", plan.Tree())
	}
	res := queryRows(t, db, "SELECT COUNT(*) FROM ev WHERE kind = 'k2'")
	if res.Rows[0][0].Int != 40 {
		t.Errorf("indexed count = %v, want 40", res.Rows[0][0])
	}
	// Reversed equality also uses the index.
	plan, err = db.Explain("SELECT id FROM ev WHERE 'k1' = kind")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.Tree(), "ixscan") {
		t.Errorf("reversed equality missed the index:\n%s", plan.Tree())
	}
}

func TestIndexResultsMatchFullScan(t *testing.T) {
	db := indexedDB(t)
	noIdx := Open()
	mustExec(t, noIdx, "CREATE TABLE ev (id INT, kind TEXT, v INT)")
	var b strings.Builder
	b.WriteString("INSERT INTO ev VALUES ")
	for i := 0; i < 200; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "(%d, 'k%d', %d)", i, i%5, i*3)
	}
	mustExec(t, noIdx, b.String())
	for _, q := range []string{
		"SELECT id FROM ev WHERE kind = 'k3' ORDER BY id",
		"SELECT SUM(v) FROM ev WHERE kind = 'k0' AND v > 100",
		"SELECT id FROM ev WHERE kind = 'nope'",
	} {
		a := queryRows(t, db, q)
		bres := queryRows(t, noIdx, q)
		if len(a.Rows) != len(bres.Rows) {
			t.Fatalf("%s: %d rows with index, %d without", q, len(a.Rows), len(bres.Rows))
		}
		for i := range a.Rows {
			for j := range a.Rows[i] {
				if !Equal(a.Rows[i][j], bres.Rows[i][j]) {
					t.Fatalf("%s: row %d differs", q, i)
				}
			}
		}
	}
}

func TestIndexMaintenance(t *testing.T) {
	db := indexedDB(t)
	count := func() int64 {
		return queryRows(t, db, "SELECT COUNT(*) FROM ev WHERE kind = 'k1'").Rows[0][0].Int
	}
	before := count()
	mustExec(t, db, "INSERT INTO ev VALUES (999, 'k1', 0)")
	if count() != before+1 {
		t.Error("index not maintained after INSERT")
	}
	mustExec(t, db, "UPDATE ev SET kind = 'k9' WHERE id = 999")
	if count() != before {
		t.Error("index not rebuilt after UPDATE")
	}
	if n := queryRows(t, db, "SELECT COUNT(*) FROM ev WHERE kind = 'k9'").Rows[0][0].Int; n != 1 {
		t.Errorf("moved row not findable via index: %d", n)
	}
	mustExec(t, db, "DELETE FROM ev WHERE kind = 'k1'")
	if count() != 0 {
		t.Error("index not rebuilt after DELETE")
	}
}

func TestIndexErrors(t *testing.T) {
	db := indexedDB(t)
	bad := []string{
		"CREATE INDEX ev_kind ON ev (kind)", // duplicate name
		"CREATE INDEX i2 ON missing (kind)", // unknown table
		"CREATE INDEX i3 ON ev (missing)",   // unknown column
	}
	for _, q := range bad {
		if _, _, err := db.Exec(q); err == nil {
			t.Errorf("accepted %s", q)
		}
	}
	if got := db.Indexes(); len(got) != 1 || got[0] != "ev_kind" {
		t.Errorf("Indexes() = %v", got)
	}
}

func TestIndexNotUsedAcrossJoinAmbiguity(t *testing.T) {
	db := indexedDB(t)
	mustExec(t, db, "CREATE TABLE other (kind TEXT)")
	mustExec(t, db, "INSERT INTO other VALUES ('k1')")
	// Unqualified "kind" in a two-table query is ambiguous, so the
	// index must not fire — and execution errors on the ambiguity, same
	// as without an index.
	if _, err := db.Query("SELECT COUNT(*) FROM ev JOIN other ON ev.kind = other.kind WHERE kind = 'k1'"); err == nil {
		t.Error("ambiguous column accepted")
	}
	// Qualified use fires the index even in a join.
	plan, err := db.Explain("SELECT COUNT(*) FROM ev JOIN other ON ev.kind = other.kind WHERE ev.kind = 'k1'")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.Tree(), "ixscan(ev.kind)") {
		t.Errorf("qualified join predicate missed the index:\n%s", plan.Tree())
	}
}

func TestIndexCostBelowScan(t *testing.T) {
	db := indexedDB(t)
	withIdx, err := db.Explain("SELECT id FROM ev WHERE kind = 'k1'")
	if err != nil {
		t.Fatal(err)
	}
	fullScan, err := db.Explain("SELECT id FROM ev WHERE v = 3")
	if err != nil {
		t.Fatal(err)
	}
	if withIdx.Cost() >= fullScan.Cost() {
		t.Errorf("index plan cost %.1f not below scan cost %.1f", withIdx.Cost(), fullScan.Cost())
	}
}
