// Package sqldb is a small embedded relational engine: an in-memory row
// store with a SQL-subset parser, a cost-based planner with EXPLAIN, and
// an executor for select-project-join-group-sort queries.
//
// It stands in for the "leading commercial RDBMS" of the paper's
// Section 5.2 experiments: the cluster package runs one sqldb instance
// per federation node, estimates query costs with EXPLAIN (plus past
// execution history, exactly as the paper describes), and executes the
// workload's star queries against it.
//
// Supported statements:
//
//	CREATE TABLE t (col TYPE, ...)        TYPE ∈ INT, FLOAT, TEXT, BOOL
//	CREATE VIEW v AS SELECT ...
//	INSERT INTO t VALUES (...), (...)
//	SELECT cols FROM t [JOIN u ON a = b]... [WHERE expr]
//	       [GROUP BY cols] [ORDER BY cols [ASC|DESC]] [LIMIT n]
//	EXPLAIN SELECT ...
//
// with aggregates COUNT/SUM/AVG/MIN/MAX, arithmetic, comparisons and
// AND/OR/NOT in expressions.
package sqldb

import (
	"fmt"
	"strconv"
)

// Type is a column type.
type Type int

// Column types.
const (
	TInt Type = iota
	TFloat
	TText
	TBool
)

// String returns the SQL name of the type.
func (t Type) String() string {
	switch t {
	case TInt:
		return "INT"
	case TFloat:
		return "FLOAT"
	case TText:
		return "TEXT"
	case TBool:
		return "BOOL"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// Value is one cell. Exactly one arm is meaningful, selected by Kind;
// Null values have Kind == KindNull.
type Value struct {
	Kind  Kind
	Int   int64
	Float float64
	Str   string
	Bool  bool
}

// Kind discriminates the arms of Value.
type Kind int

// Value kinds.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindText
	KindBool
)

// Null is the SQL NULL.
var Null = Value{Kind: KindNull}

// NewInt wraps an int64.
func NewInt(v int64) Value { return Value{Kind: KindInt, Int: v} }

// NewFloat wraps a float64.
func NewFloat(v float64) Value { return Value{Kind: KindFloat, Float: v} }

// NewText wraps a string.
func NewText(v string) Value { return Value{Kind: KindText, Str: v} }

// NewBool wraps a bool.
func NewBool(v bool) Value { return Value{Kind: KindBool, Bool: v} }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// String renders the value in SQL literal syntax.
func (v Value) String() string {
	switch v.Kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.Int, 10)
	case KindFloat:
		return strconv.FormatFloat(v.Float, 'g', -1, 64)
	case KindText:
		return "'" + v.Str + "'"
	case KindBool:
		if v.Bool {
			return "TRUE"
		}
		return "FALSE"
	default:
		return fmt.Sprintf("Value(kind=%d)", int(v.Kind))
	}
}

// asFloat coerces numeric values to float64 for mixed arithmetic.
func (v Value) asFloat() (float64, bool) {
	switch v.Kind {
	case KindInt:
		return float64(v.Int), true
	case KindFloat:
		return v.Float, true
	default:
		return 0, false
	}
}

// Compare orders two values: -1, 0, +1. NULL sorts before everything;
// numeric kinds compare cross-kind; distinct non-numeric kinds compare
// by kind order (deterministic, mirrors engines that coerce weakly).
func Compare(a, b Value) int {
	if a.IsNull() || b.IsNull() {
		switch {
		case a.IsNull() && b.IsNull():
			return 0
		case a.IsNull():
			return -1
		default:
			return 1
		}
	}
	if af, ok := a.asFloat(); ok {
		if bf, ok := b.asFloat(); ok {
			switch {
			case af < bf:
				return -1
			case af > bf:
				return 1
			default:
				return 0
			}
		}
	}
	if a.Kind != b.Kind {
		if a.Kind < b.Kind {
			return -1
		}
		return 1
	}
	switch a.Kind {
	case KindText:
		switch {
		case a.Str < b.Str:
			return -1
		case a.Str > b.Str:
			return 1
		default:
			return 0
		}
	case KindBool:
		switch {
		case a.Bool == b.Bool:
			return 0
		case !a.Bool:
			return -1
		default:
			return 1
		}
	default:
		return 0
	}
}

// Equal reports value equality under Compare semantics.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// groupKey serializes a value for use in hash-aggregation and hash-join
// keys. Numeric values of equal magnitude share a key.
func (v Value) groupKey() string {
	if f, ok := v.asFloat(); ok {
		return "n:" + strconv.FormatFloat(f, 'g', -1, 64)
	}
	switch v.Kind {
	case KindNull:
		return "∅"
	case KindText:
		return "t:" + v.Str
	case KindBool:
		if v.Bool {
			return "b:1"
		}
		return "b:0"
	default:
		return "?"
	}
}

// Row is one tuple.
type Row []Value

// Clone copies the row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}
