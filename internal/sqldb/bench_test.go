package sqldb

import (
	"fmt"
	"strings"
	"testing"
)

func benchDB(b *testing.B, rows int) *DB {
	b.Helper()
	db := Open()
	if _, _, err := db.Exec("CREATE TABLE t (id INT, k INT, v FLOAT, s TEXT)"); err != nil {
		b.Fatal(err)
	}
	var sb strings.Builder
	sb.WriteString("INSERT INTO t VALUES ")
	for i := 0; i < rows; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "(%d, %d, %d.5, 's%d')", i, i%64, i, i%10)
	}
	if _, _, err := db.Exec(sb.String()); err != nil {
		b.Fatal(err)
	}
	return db
}

func BenchmarkParse(b *testing.B) {
	const q = `SELECT a.k, COUNT(*) AS n, SUM(a.v) AS total FROM t AS a
		JOIN t AS b ON a.k = b.k WHERE a.v > 10 AND b.s LIKE 's%'
		GROUP BY a.k ORDER BY total DESC LIMIT 10`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScanFilter(b *testing.B) {
	db := benchDB(b, 5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query("SELECT id FROM t WHERE v > 2500.0"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHashJoin(b *testing.B) {
	db := benchDB(b, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query("SELECT COUNT(*) FROM t AS a JOIN t AS b ON a.k = b.k"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGroupBy(b *testing.B) {
	db := benchDB(b, 5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query("SELECT k, COUNT(*), SUM(v) FROM t GROUP BY k"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIndexLookupVsScan(b *testing.B) {
	db := benchDB(b, 10000)
	if _, _, err := db.Exec("CREATE INDEX t_k ON t (k)"); err != nil {
		b.Fatal(err)
	}
	b.Run("ixscan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := db.Query("SELECT COUNT(*) FROM t WHERE k = 7"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fullscan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// v has no index: same selectivity territory, full scan.
			if _, err := db.Query("SELECT COUNT(*) FROM t WHERE id = 7"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkExplain(b *testing.B) {
	db := benchDB(b, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Explain("SELECT k, SUM(v) FROM t WHERE v > 10 GROUP BY k ORDER BY k"); err != nil {
			b.Fatal(err)
		}
	}
}
