// Package trace is the federation's query-lifecycle tracer: a
// low-overhead, deterministic span recorder that follows one query
// through negotiate -> allocate -> execute -> fetch across client and
// server processes.
//
// Spans are recorded into a fixed-capacity ring buffer (old traces are
// overwritten, never grown), the clock is injected like everywhere else
// in the repo (tests drive it by hand for byte-identical output), and
// span identity is a recorder-local counter qualified by the recorder's
// origin — no global randomness, no allocation beyond the buffer slot.
// The cluster package carries trace context on the wire (a
// version-negotiated request field, like the fetch-row encoding) so
// server-side spans parent correctly under the client's, and
// AssembleTree/RenderTree rebuild the cross-node tree for qactl -trace.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Span is one timed operation in a query's lifecycle. IDs are unique
// across the federation because every recorder qualifies its local
// counter with its origin (node ID or "client").
type Span struct {
	TraceID int64   `json:"trace_id"`         // the query being followed
	ID      string  `json:"id"`               // "<origin>-<seq>"
	Parent  string  `json:"parent,omitempty"` // parent span ID ("" = root)
	Name    string  `json:"name"`             // run, negotiate, execute, fetch, solve, queue, exec
	Origin  string  `json:"origin"`           // recorder that produced the span
	StartNs int64   `json:"start_ns"`         // clock reading at span start (unix ns)
	DurMs   float64 `json:"dur_ms"`           // measured duration
	Note    string  `json:"note,omitempty"`   // free-form detail (winner, rows, error)
}

// Clock yields the current time. Production recorders use time.Now;
// tests inject a manual clock for deterministic spans.
type Clock func() time.Time

// DefaultCapacity is the span ring size used when NewRecorder is given
// a non-positive capacity: enough for thousands of queries' lifecycles
// while bounding a long-lived node's trace memory to a few hundred KB.
const DefaultCapacity = 4096

// Recorder collects spans into a ring buffer. All methods are
// concurrency-safe. A nil *Recorder is a valid disabled recorder:
// Start returns a nil *Active whose methods no-op, so call sites pay a
// single nil check when tracing is off.
type Recorder struct {
	origin string
	clock  Clock

	mu   sync.Mutex
	seq  uint64
	buf  []Span
	next int  // next slot to overwrite
	full bool // buf has wrapped at least once
}

// NewRecorder builds a recorder stamping spans with the given origin.
// capacity <= 0 uses DefaultCapacity; a nil clock uses time.Now.
func NewRecorder(origin string, capacity int, clock Clock) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	if clock == nil {
		clock = time.Now
	}
	return &Recorder{origin: origin, clock: clock, buf: make([]Span, 0, capacity)}
}

// Origin returns the identity the recorder stamps on its spans.
func (r *Recorder) Origin() string {
	if r == nil {
		return ""
	}
	return r.origin
}

// Active is an in-flight span handle returned by Start. Finish records
// it. The zero of a disabled recorder is a nil *Active; its methods
// no-op and its ID is "".
type Active struct {
	r     *Recorder
	start time.Time
	span  Span
}

// Start opens a span. The span is not visible until Finish.
func (r *Recorder) Start(traceID int64, parent, name string) *Active {
	if r == nil {
		return nil
	}
	now := r.clock()
	r.mu.Lock()
	r.seq++
	id := fmt.Sprintf("%s-%d", r.origin, r.seq)
	r.mu.Unlock()
	return &Active{r: r, start: now, span: Span{
		TraceID: traceID,
		ID:      id,
		Parent:  parent,
		Name:    name,
		Origin:  r.origin,
		StartNs: now.UnixNano(),
	}}
}

// ID returns the span's federation-unique identity, for parenting
// child spans (including remote ones via the wire trace context).
func (a *Active) ID() string {
	if a == nil {
		return ""
	}
	return a.span.ID
}

// Annotate attaches a free-form note; the last one wins.
func (a *Active) Annotate(format string, args ...any) {
	if a == nil {
		return
	}
	a.span.Note = fmt.Sprintf(format, args...)
}

// Finish measures the span against the recorder's clock and commits it
// to the ring. Finishing twice records twice; don't.
func (a *Active) Finish() {
	if a == nil {
		return
	}
	a.span.DurMs = float64(a.r.clock().Sub(a.start)) / float64(time.Millisecond)
	a.r.commit(a.span)
}

// Record commits a span measured by the caller (the server's queue
// span, whose bounds are only known after the executor picked the job
// up). It returns the span's ID so children can parent under it.
func (r *Recorder) Record(traceID int64, parent, name string, start time.Time, durMs float64, note string) string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	r.seq++
	id := fmt.Sprintf("%s-%d", r.origin, r.seq)
	r.mu.Unlock()
	r.commit(Span{
		TraceID: traceID,
		ID:      id,
		Parent:  parent,
		Name:    name,
		Origin:  r.origin,
		StartNs: start.UnixNano(),
		DurMs:   durMs,
		Note:    note,
	})
	return id
}

func (r *Recorder) commit(s Span) {
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, s)
	} else {
		r.buf[r.next] = s
		r.full = true
	}
	r.next = (r.next + 1) % cap(r.buf)
	r.mu.Unlock()
}

// Spans returns the recorded spans for one trace, oldest first. A nil
// recorder returns nil.
func (r *Recorder) Spans(traceID int64) []Span {
	if r == nil {
		return nil
	}
	var out []Span
	r.each(func(s Span) {
		if s.TraceID == traceID {
			out = append(out, s)
		}
	})
	return out
}

// All returns every buffered span, oldest first.
func (r *Recorder) All() []Span {
	if r == nil {
		return nil
	}
	out := make([]Span, 0, len(r.buf))
	r.each(func(s Span) { out = append(out, s) })
	return out
}

// Len reports how many spans the ring currently holds.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// each visits buffered spans oldest-first under the lock. Before the
// ring wraps, next == len(buf) and the second loop covers everything;
// after it wraps, the oldest span sits at next.
func (r *Recorder) each(fn func(Span)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		for i := r.next; i < len(r.buf); i++ {
			fn(r.buf[i])
		}
	}
	for i := 0; i < r.next; i++ {
		fn(r.buf[i])
	}
}

// node is one assembled tree position.
type node struct {
	span     Span
	children []*node
}

// AssembleTree links spans (from any mix of recorders) into their
// parent/child forest. Spans whose parent is absent from the set — a
// node's ring overwrote it, or the query was partially traced — become
// roots, so a lossy collection still renders. Siblings are ordered by
// start time, then ID, so the rendering is deterministic for a fixed
// span set.
func assembleTree(spans []Span) []*node {
	byID := make(map[string]*node, len(spans))
	for _, s := range spans {
		// Duplicate IDs (the same span fetched from two overlapping
		// collections) collapse to one.
		if _, ok := byID[s.ID]; !ok {
			byID[s.ID] = &node{span: s}
		}
	}
	var roots []*node
	for _, n := range byID {
		if p, ok := byID[n.span.Parent]; ok && p != n {
			p.children = append(p.children, n)
		} else {
			roots = append(roots, n)
		}
	}
	order := func(ns []*node) {
		sort.Slice(ns, func(i, j int) bool {
			if ns[i].span.StartNs != ns[j].span.StartNs {
				return ns[i].span.StartNs < ns[j].span.StartNs
			}
			return ns[i].span.ID < ns[j].span.ID
		})
	}
	order(roots)
	for _, n := range byID {
		order(n.children)
	}
	return roots
}

// RenderTree renders the assembled span forest as an indented tree,
// one span per line: name, duration, origin, note. Empty input renders
// to "(no spans)".
func RenderTree(spans []Span) string {
	if len(spans) == 0 {
		return "(no spans)\n"
	}
	var b strings.Builder
	var walk func(n *node, prefix string, last bool)
	walk = func(n *node, prefix string, last bool) {
		branch, childPrefix := "├─ ", prefix+"│  "
		if last {
			branch, childPrefix = "└─ ", prefix+"   "
		}
		fmt.Fprintf(&b, "%s%s%-10s %8.2fms  [%s]", prefix, branch, n.span.Name, n.span.DurMs, n.span.Origin)
		if n.span.Note != "" {
			fmt.Fprintf(&b, "  %s", n.span.Note)
		}
		b.WriteByte('\n')
		for i, c := range n.children {
			walk(c, childPrefix, i == len(n.children)-1)
		}
	}
	roots := assembleTree(spans)
	fmt.Fprintf(&b, "trace %d (%d spans)\n", roots[0].span.TraceID, len(spans))
	for i, r := range roots {
		walk(r, "", i == len(roots)-1)
	}
	return b.String()
}
