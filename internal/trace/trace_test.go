package trace

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// manualClock is a deterministic clock the tests advance by hand.
type manualClock struct {
	mu  sync.Mutex
	now time.Time
}

func newManualClock() *manualClock {
	return &manualClock{now: time.Unix(1000, 0)}
}

func (c *manualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *manualClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func TestRecorderDeterministicSpans(t *testing.T) {
	clk := newManualClock()
	r := NewRecorder("n-1", 16, clk.Now)
	root := r.Start(7, "", "run")
	clk.Advance(5 * time.Millisecond)
	child := r.Start(7, root.ID(), "negotiate")
	clk.Advance(3 * time.Millisecond)
	child.Finish()
	clk.Advance(2 * time.Millisecond)
	root.Annotate("node %s", "n-2")
	root.Finish()

	spans := r.Spans(7)
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	// The child finished first, so it commits first.
	if spans[0].Name != "negotiate" || spans[0].ID != "n-1-2" || spans[0].Parent != "n-1-1" {
		t.Fatalf("child span = %+v", spans[0])
	}
	if spans[0].DurMs != 3 {
		t.Fatalf("child duration = %v, want 3 (manual clock)", spans[0].DurMs)
	}
	if spans[1].Name != "run" || spans[1].ID != "n-1-1" || spans[1].DurMs != 10 {
		t.Fatalf("root span = %+v", spans[1])
	}
	if spans[1].Note != "node n-2" {
		t.Fatalf("root note = %q", spans[1].Note)
	}
	if got := r.Spans(8); got != nil {
		t.Fatalf("trace 8 spans = %v, want none", got)
	}
}

func TestRecorderRingOverwritesOldest(t *testing.T) {
	clk := newManualClock()
	r := NewRecorder("c", 4, clk.Now)
	for i := int64(1); i <= 6; i++ {
		r.Record(i, "", "op", clk.Now(), 1, "")
		clk.Advance(time.Millisecond)
	}
	if r.Len() != 4 {
		t.Fatalf("ring holds %d, want 4", r.Len())
	}
	all := r.All()
	if len(all) != 4 {
		t.Fatalf("All() = %d spans", len(all))
	}
	// Traces 1 and 2 were overwritten; 3..6 remain, oldest first.
	for i, want := range []int64{3, 4, 5, 6} {
		if all[i].TraceID != want {
			t.Fatalf("slot %d holds trace %d, want %d (order %v)", i, all[i].TraceID, want, all)
		}
	}
	if r.Spans(1) != nil {
		t.Fatal("overwritten trace still readable")
	}
}

func TestNilRecorderIsDisabled(t *testing.T) {
	var r *Recorder
	a := r.Start(1, "", "run")
	if a != nil {
		t.Fatal("nil recorder returned a live span")
	}
	a.Annotate("ignored")
	a.Finish() // must not panic
	if a.ID() != "" {
		t.Fatalf("nil active ID = %q", a.ID())
	}
	if r.Record(1, "", "x", time.Now(), 1, "") != "" {
		t.Fatal("nil recorder recorded")
	}
	if r.Spans(1) != nil || r.All() != nil || r.Len() != 0 || r.Origin() != "" {
		t.Fatal("nil recorder leaked state")
	}
}

func TestRenderTreeCrossOrigin(t *testing.T) {
	clk := newManualClock()
	client := NewRecorder("client", 16, clk.Now)
	server := NewRecorder("n-a", 16, clk.Now)

	root := client.Start(42, "", "run")
	neg := client.Start(42, root.ID(), "negotiate")
	clk.Advance(time.Millisecond)
	server.Record(42, neg.ID(), "solve", clk.Now(), 0.2, "class q1")
	clk.Advance(time.Millisecond)
	neg.Finish()
	exec := client.Start(42, root.ID(), "execute")
	clk.Advance(time.Millisecond)
	server.Record(42, exec.ID(), "queue", clk.Now(), 0.5, "")
	server.Record(42, exec.ID(), "exec", clk.Now(), 2.5, "7 rows")
	clk.Advance(3 * time.Millisecond)
	exec.Finish()
	root.Finish()

	spans := append(client.Spans(42), server.Spans(42)...)
	out := RenderTree(spans)
	if !strings.Contains(out, "trace 42 (6 spans)") {
		t.Fatalf("missing header:\n%s", out)
	}
	for _, want := range []string{"run", "negotiate", "solve", "queue", "exec", "[client]", "[n-a]", "class q1", "7 rows"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendering missing %q:\n%s", want, out)
		}
	}
	// The server's solve span must be indented under the client's
	// negotiate span: cross-origin parenting survived assembly.
	lines := strings.Split(out, "\n")
	negIdx, solveIdx := -1, -1
	for i, l := range lines {
		if strings.Contains(l, "negotiate") {
			negIdx = i
		}
		if strings.Contains(l, "solve") {
			solveIdx = i
		}
	}
	if solveIdx != negIdx+1 {
		t.Fatalf("solve not rendered under negotiate:\n%s", out)
	}
	// Deterministic: the same spans render identically.
	if again := RenderTree(spans); again != out {
		t.Fatalf("rendering not deterministic:\n%s\nvs\n%s", out, again)
	}
}

func TestRenderTreeOrphanSpansBecomeRoots(t *testing.T) {
	clk := newManualClock()
	r := NewRecorder("n-b", 8, clk.Now)
	r.Record(5, "client-99", "exec", clk.Now(), 1, "") // parent was never collected
	out := RenderTree(r.Spans(5))
	if !strings.Contains(out, "exec") {
		t.Fatalf("orphan span dropped:\n%s", out)
	}
	if RenderTree(nil) != "(no spans)\n" {
		t.Fatal("empty render")
	}
}

// TestSpanAllocationBudget guards the recorder's low-overhead claim at
// the unit level: one Start/Finish pair stays within a handful of
// allocations (the ID string and the handle), so tracing a query adds
// noise-level cost to a dispatch that allocates hundreds of times.
func TestSpanAllocationBudget(t *testing.T) {
	clk := newManualClock()
	r := NewRecorder("n-c", 1024, clk.Now)
	allocs := testing.AllocsPerRun(200, func() {
		r.Start(1, "", "op").Finish()
	})
	if allocs > 6 {
		t.Fatalf("Start/Finish allocates %.1f times per span, want <= 6", allocs)
	}
}

func BenchmarkSpanRecord(b *testing.B) {
	r := NewRecorder("bench", 4096, nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Start(int64(i), "", "op").Finish()
	}
}
