// Package engine is the vectorized columnar executor behind the
// "vector" storage driver: tables are stored column-wise and queries
// run scan→filter→project→(hash-join/aggregate) over whole columns,
// with typed kernels on the hot comparisons and pooled scratch for
// selection vectors. Results are emitted as driver.Blocks whose arrays
// alias the engine's own column vectors, so the cluster's binary frame
// lane serializes them with zero transposition.
//
// The engine is a semantic mirror of the row-based reference engine
// (internal/sqldb): same SQL dialect (it reuses sqldb's parser and
// planner), same NULL logic and coercions (it calls sqldb's exported
// scalar kernels), same hash keys, and the same error text — "sqldb:"
// prefix included — so that which backend served a query is invisible
// to clients. The differential harness in internal/driver/difftest
// holds it to that cell-for-cell.
package engine

import (
	"fmt"
	"sort"
	"sync"

	"github.com/qamarket/qamarket/internal/driver"
	"github.com/qamarket/qamarket/internal/sqldb"
)

// DB is one columnar database instance. It implements driver.Driver.
type DB struct {
	mu           sync.RWMutex
	tables       map[string]*table
	views        map[string]*sqldb.SelectStmt
	indexes      map[string]*index
	tableIndexes map[string][]*index
}

// Open creates an empty instance.
func Open() *DB {
	return &DB{
		tables:       make(map[string]*table),
		views:        make(map[string]*sqldb.SelectStmt),
		indexes:      make(map[string]*index),
		tableIndexes: make(map[string][]*index),
	}
}

// FromDB builds a columnar instance holding the same catalog and data
// as a row-engine instance: tables are transposed into column vectors,
// views share the parsed SELECT, and every index is mirrored so the
// planner prices identical access paths (identical plan signatures and
// cost hints being what keeps a mixed federation's query classes
// coherent).
func FromDB(src *sqldb.DB) *DB {
	e := Open()
	for _, name := range src.Tables() {
		cols, _ := src.TableSchema(name)
		rows, _ := src.TableRows(name)
		t := e.newTable(name, cols)
		for _, row := range rows {
			for ci := range t.vecs {
				if ci < len(row) {
					t.vecs[ci].appendVal(row[ci])
				} else {
					t.vecs[ci].appendVal(sqldb.Null)
				}
			}
		}
	}
	for _, name := range src.Views() {
		v, _ := src.ViewSelect(name)
		e.views[name] = v
	}
	for i, def := range src.IndexDefs() {
		name := fmt.Sprintf("%s_%s_ix%d", def[0], def[1], i)
		e.addIndex(name, def[0], def[1])
	}
	return e
}

// newTable registers an empty table. Caller guarantees the name is
// free and the columns valid.
func (e *DB) newTable(name string, cols []sqldb.ColumnDef) *table {
	idx := make(map[string]int, len(cols))
	vecs := make([]*colVec, len(cols))
	for i, c := range cols {
		idx[c.Name] = i
		vecs[i] = &colVec{}
	}
	t := &table{name: name, cols: cols, idx: idx, vecs: vecs}
	e.tables[name] = t
	return t
}

// addIndex registers and builds an index. Caller guarantees the table
// and column exist and the name is free.
func (e *DB) addIndex(name, tbl, column string) {
	t := e.tables[tbl]
	ix := &index{name: name, table: tbl, column: column, col: t.idx[column]}
	ix.rebuild(t)
	e.indexes[name] = ix
	e.tableIndexes[tbl] = append(e.tableIndexes[tbl], ix)
}

// Name reports "vector", the executor family.
func (e *DB) Name() string { return "vector" }

// Tables lists base tables, sorted.
func (e *DB) Tables() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return sortedKeys(e.tables)
}

// Views lists views, sorted.
func (e *DB) Views() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return sortedKeys(e.views)
}

// HasRelation reports whether name is a table or view here.
func (e *DB) HasRelation(name string) bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	_, t := e.tables[name]
	_, v := e.views[name]
	return t || v
}

// Exec parses and executes one statement, returning rows affected.
// SELECT (and EXPLAIN) run and discard their result, like the row
// engine's Exec.
func (e *DB) Exec(sql string) (int, error) {
	stmt, err := sqldb.Parse(sql)
	if err != nil {
		return 0, err
	}
	switch s := stmt.(type) {
	case *sqldb.CreateTableStmt:
		return 0, e.createTable(s)
	case *sqldb.CreateViewStmt:
		return 0, e.createView(s)
	case *sqldb.CreateIndexStmt:
		return 0, e.createIndex(s)
	case *sqldb.InsertStmt:
		return e.insert(s)
	case *sqldb.UpdateStmt:
		return e.update(s)
	case *sqldb.DeleteStmt:
		return e.delete(s)
	case *sqldb.SelectStmt:
		_, err := e.Select(s)
		return 0, err
	case *sqldb.ExplainStmt:
		e.mu.RLock()
		defer e.mu.RUnlock()
		_, err := sqldb.PlanSelectOn(planCat{e}, s.Select)
		return 0, err
	default:
		return 0, fmt.Errorf("sqldb: unhandled statement %T", stmt)
	}
}

// Prepare plans one SELECT (or EXPLAIN SELECT) without executing it.
func (e *DB) Prepare(sql string) (driver.Statement, error) {
	stmt, err := sqldb.Parse(sql)
	if err != nil {
		return nil, err
	}
	var sel *sqldb.SelectStmt
	switch s := stmt.(type) {
	case *sqldb.SelectStmt:
		sel = s
	case *sqldb.ExplainStmt:
		sel = s.Select
	default:
		return nil, fmt.Errorf("sqldb: Explain requires a SELECT, got %T", stmt)
	}
	e.mu.RLock()
	plan, err := sqldb.PlanSelectOn(planCat{e}, sel)
	e.mu.RUnlock()
	if err != nil {
		return nil, err
	}
	return &vecStmt{
		e:    e,
		stmt: stmt,
		hints: driver.CostHints{
			Signature: plan.Signature(),
			IOCost:    plan.IOCost(),
			CPUCost:   plan.CPUCost(),
			EstRows:   plan.Rows(),
		},
	}, nil
}

type vecStmt struct {
	e     *DB
	stmt  sqldb.Statement
	hints driver.CostHints
}

func (s *vecStmt) Hints() driver.CostHints { return s.hints }

// Execute runs the statement. Like the row engine's Query, only a bare
// SELECT is executable — EXPLAIN is prepared for its plan but answers
// through Exec, and the error text matches the row engine's so the
// backends stay indistinguishable.
func (s *vecStmt) Execute() (*driver.Block, error) {
	sel, ok := s.stmt.(*sqldb.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("sqldb: Query requires a SELECT, got %T", s.stmt)
	}
	return s.e.Select(sel)
}

// Select executes a parsed SELECT.
func (e *DB) Select(s *sqldb.SelectStmt) (*driver.Block, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	names, vecs, n, err := e.selectLocked(s, 0)
	if err != nil {
		return nil, err
	}
	cols := make([]driver.Col, len(vecs))
	for j, v := range vecs {
		cols[j] = v.asCol()
	}
	return &driver.Block{Columns: names, Rows: n, Cols: cols}, nil
}

// Query parses and executes a SELECT.
func (e *DB) Query(sql string) (*driver.Block, error) {
	stmt, err := sqldb.Parse(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*sqldb.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("sqldb: Query requires a SELECT, got %T", stmt)
	}
	return e.Select(sel)
}

// planCat adapts an engine whose mu is already held to the shared
// planner's catalog interface.
type planCat struct{ e *DB }

func (c planCat) TableRowCount(name string) (int, bool) {
	t, ok := c.e.tables[name]
	if !ok {
		return 0, false
	}
	return t.nrows(), true
}

func (c planCat) ViewSelect(name string) (*sqldb.SelectStmt, bool) {
	v, ok := c.e.views[name]
	return v, ok
}

func (c planCat) IndexDistinct(tbl, column string) (int, bool) {
	ix := c.e.lookupIndex(tbl, column)
	if ix == nil {
		return 0, false
	}
	return len(ix.m), true
}

func (e *DB) lookupIndex(tbl, column string) *index {
	for _, ix := range e.tableIndexes[tbl] {
		if ix.column == column {
			return ix
		}
	}
	return nil
}

func (e *DB) createTable(s *sqldb.CreateTableStmt) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.tables[s.Name]; ok {
		return fmt.Errorf("sqldb: table %q already exists", s.Name)
	}
	if _, ok := e.views[s.Name]; ok {
		return fmt.Errorf("sqldb: %q already exists as a view", s.Name)
	}
	if len(s.Columns) == 0 {
		return fmt.Errorf("sqldb: table %q has no columns", s.Name)
	}
	seen := make(map[string]bool, len(s.Columns))
	for _, c := range s.Columns {
		if seen[c.Name] {
			return fmt.Errorf("sqldb: duplicate column %q in table %q", c.Name, s.Name)
		}
		seen[c.Name] = true
	}
	e.newTable(s.Name, s.Columns)
	return nil
}

func (e *DB) createView(s *sqldb.CreateViewStmt) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.tables[s.Name]; ok {
		return fmt.Errorf("sqldb: %q already exists as a table", s.Name)
	}
	if _, ok := e.views[s.Name]; ok {
		return fmt.Errorf("sqldb: view %q already exists", s.Name)
	}
	for _, f := range s.Select.From {
		if _, t := e.tables[f.Table]; !t {
			if _, v := e.views[f.Table]; !v {
				return fmt.Errorf("sqldb: view %q references unknown relation %q", s.Name, f.Table)
			}
		}
	}
	e.views[s.Name] = s.Select
	return nil
}

func (e *DB) createIndex(s *sqldb.CreateIndexStmt) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.indexes[s.Name]; dup {
		return fmt.Errorf("sqldb: index %q already exists", s.Name)
	}
	t, ok := e.tables[s.Table]
	if !ok {
		return fmt.Errorf("sqldb: no table %q", s.Table)
	}
	if _, ok := t.idx[s.Column]; !ok {
		return fmt.Errorf("sqldb: no column %q in table %q", s.Column, s.Table)
	}
	e.addIndex(s.Name, s.Table, s.Column)
	return nil
}

func (e *DB) insert(s *sqldb.InsertStmt) (int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	t, ok := e.tables[s.Table]
	if !ok {
		return 0, fmt.Errorf("sqldb: no table %q", s.Table)
	}
	// Validate every row before appending anything, like the row
	// engine: a failed INSERT leaves the table untouched.
	added := make([]sqldb.Row, 0, len(s.Rows))
	for ri, exprs := range s.Rows {
		if len(exprs) != len(t.cols) {
			return 0, fmt.Errorf("sqldb: row %d has %d values, table %q has %d columns",
				ri, len(exprs), s.Table, len(t.cols))
		}
		row := make(sqldb.Row, len(exprs))
		for ci, ex := range exprs {
			v, err := sqldb.EvalConst(ex)
			if err != nil {
				return 0, fmt.Errorf("sqldb: row %d column %d: %w", ri, ci, err)
			}
			cv, err := sqldb.Coerce(v, t.cols[ci].Type)
			if err != nil {
				return 0, fmt.Errorf("sqldb: row %d column %q: %w", ri, t.cols[ci].Name, err)
			}
			row[ci] = cv
		}
		added = append(added, row)
	}
	firstNew := t.nrows()
	for _, row := range added {
		for ci := range t.vecs {
			t.vecs[ci].appendVal(row[ci])
		}
	}
	for _, ix := range e.tableIndexes[t.name] {
		ix.add(t, firstNew)
	}
	return len(added), nil
}

// update applies UPDATE t SET ... WHERE ... . Changed rows land in
// fresh column vectors (never mutating committed arrays in place, so
// previously emitted blocks stay valid); expressions evaluate against
// the pre-update row like the row engine. On an evaluation error the
// rows already processed keep their new values and indexes are not
// rebuilt — the same partially-applied state the row engine exposes.
func (e *DB) update(s *sqldb.UpdateStmt) (int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	t, ok := e.tables[s.Table]
	if !ok {
		return 0, fmt.Errorf("sqldb: no table %q", s.Table)
	}
	targets := make([]int, len(s.Set))
	for i, a := range s.Set {
		pos, ok := t.idx[a.Column]
		if !ok {
			return 0, fmt.Errorf("sqldb: no column %q in table %q", a.Column, s.Table)
		}
		targets[i] = pos
	}
	rel := t.erel()
	n := t.nrows()
	next := make([]*colVec, len(t.vecs))
	for ci := range next {
		next[ci] = &colVec{}
	}
	changed := 0
	commit := func(upTo int) {
		// Copy the untouched tail, swap the fresh vectors in.
		for ri := upTo; ri < n; ri++ {
			for ci := range next {
				next[ci].appendFrom(t.vecs[ci], ri)
			}
		}
		t.vecs = next
	}
	for ri := 0; ri < n; ri++ {
		match, err := e.rowMatches(s.Where, &rel, ri)
		if err != nil {
			commit(ri)
			return changed, err
		}
		if !match {
			for ci := range next {
				next[ci].appendFrom(t.vecs[ci], ri)
			}
			continue
		}
		row := make(sqldb.Row, len(t.vecs))
		for ci := range t.vecs {
			row[ci] = t.vecs[ci].value(ri)
		}
		for i, a := range s.Set {
			v, err := e.evalScalar(a.Value, &rel, ri)
			if err != nil {
				commit(ri)
				return changed, err
			}
			cv, err := sqldb.Coerce(v, t.cols[targets[i]].Type)
			if err != nil {
				commit(ri)
				return changed, fmt.Errorf("sqldb: column %q: %w", a.Column, err)
			}
			row[targets[i]] = cv
		}
		for ci := range next {
			next[ci].appendVal(row[ci])
		}
		changed++
	}
	t.vecs = next
	if changed > 0 {
		for _, ix := range e.tableIndexes[t.name] {
			ix.rebuild(t)
		}
	}
	return changed, nil
}

// delete applies DELETE FROM t WHERE ... . Kept rows move into fresh
// vectors; an evaluation error leaves the table untouched, like the
// row engine.
func (e *DB) delete(s *sqldb.DeleteStmt) (int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	t, ok := e.tables[s.Table]
	if !ok {
		return 0, fmt.Errorf("sqldb: no table %q", s.Table)
	}
	rel := t.erel()
	n := t.nrows()
	kept := make([]*colVec, len(t.vecs))
	for ci := range kept {
		kept[ci] = &colVec{}
	}
	removed := 0
	for ri := 0; ri < n; ri++ {
		match, err := e.rowMatches(s.Where, &rel, ri)
		if err != nil {
			return 0, err
		}
		if match {
			removed++
			continue
		}
		for ci := range kept {
			kept[ci].appendFrom(t.vecs[ci], ri)
		}
	}
	t.vecs = kept
	if removed > 0 {
		for _, ix := range e.tableIndexes[t.name] {
			ix.rebuild(t)
		}
	}
	return removed, nil
}

// rowMatches evaluates a WHERE predicate against one row (nil = true).
func (e *DB) rowMatches(where sqldb.Expr, rel *erel, ri int) (bool, error) {
	if where == nil {
		return true, nil
	}
	v, err := e.evalScalar(where, rel, ri)
	if err != nil {
		return false, err
	}
	return v.Kind == sqldb.KindBool && v.Bool, nil
}

// erel views the table as an intermediate relation.
func (t *table) erel() erel {
	cols := make([]ebind, len(t.cols))
	for i, c := range t.cols {
		cols[i] = ebind{qual: t.name, name: c.Name}
	}
	return erel{cols: cols, vecs: t.vecs, nrows: t.nrows()}
}

func sortedKeys[M ~map[string]V, V any](m M) []string {
	out := make([]string, 0, len(m))
	for n := range m {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
