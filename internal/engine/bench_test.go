package engine

import (
	"fmt"
	"sync"
	"testing"

	"github.com/qamarket/qamarket/internal/driver"
	"github.com/qamarket/qamarket/internal/sqldb"
)

// The executor trajectory benchmarks: the same workload through the
// legacy row-at-a-time driver and the vectorized columnar engine, at
// scan sizes spanning three orders of magnitude plus a join.
// cmd/benchjson divides ns/op by the input row count into the
// ns_per_row series committed to BENCH_qamarket.json; the acceptance
// bar for the vectorized executor is >= 3x on the 100k filtered scan.

// benchDataset lazily builds one row database per scan size (seeding is
// the expensive part, so it is shared across sub-benchmarks) plus a
// 10k-row fact table with a 100-row dimension for the join shape.
type benchDataset struct {
	once sync.Once
	db   *sqldb.DB
}

var benchSets = map[string]*benchDataset{
	"1000": {}, "100000": {}, "1000000": {}, "join": {},
}

func benchDB(b *testing.B, key string) *sqldb.DB {
	b.Helper()
	ds := benchSets[key]
	ds.once.Do(func() {
		db := sqldb.Open()
		mustExecB(db, "CREATE TABLE big (a INT, b FLOAT, c TEXT, d BOOL)")
		n := 0
		switch key {
		case "1000":
			n = 1_000
		case "100000":
			n = 100_000
		case "1000000":
			n = 1_000_000
		case "join":
			n = 10_000
			mustExecB(db, "CREATE TABLE dim (k INT, name TEXT)")
			dim := make([]sqldb.Row, 100)
			for i := range dim {
				dim[i] = sqldb.Row{sqldb.NewInt(int64(i)), sqldb.NewText(fmt.Sprintf("d%02d", i))}
			}
			if err := db.AppendTableRows("dim", dim); err != nil {
				panic(err)
			}
		}
		const chunk = 10_000
		rows := make([]sqldb.Row, 0, chunk)
		for i := 0; i < n; i++ {
			rows = append(rows, sqldb.Row{
				sqldb.NewInt(int64(i % 100)),
				sqldb.NewFloat(float64(i) * 0.5),
				sqldb.NewText(fmt.Sprintf("t%03d", i%997)),
				sqldb.NewBool(i%2 == 0),
			})
			if len(rows) == chunk || i == n-1 {
				if err := db.AppendTableRows("big", rows); err != nil {
					panic(err)
				}
				rows = rows[:0]
			}
		}
		ds.db = db
	})
	return ds.db
}

func mustExecB(db *sqldb.DB, sql string) {
	if _, _, err := db.Exec(sql); err != nil {
		panic(err)
	}
}

// benchDrivers opens both executors over the same data.
func benchDrivers(b *testing.B, key string) map[string]driver.Driver {
	b.Helper()
	db := benchDB(b, key)
	return map[string]driver.Driver{
		"row":    driver.NewLegacy(db),
		"vector": FromDB(db),
	}
}

func runExecBench(b *testing.B, key, sql string, wantRows int) {
	for name, d := range benchDrivers(b, key) {
		b.Run(name, func(b *testing.B) {
			st, err := d.Prepare(sql)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				blk, err := st.Execute()
				if err != nil {
					b.Fatal(err)
				}
				if blk.Rows != wantRows {
					b.Fatalf("%d result rows, want %d", blk.Rows, wantRows)
				}
			}
		})
	}
}

// Filtered scans: SELECT with an arithmetic predicate selecting half
// the table, projecting two columns. The row counts in the benchmark
// names are the scanned input sizes benchjson divides by.

func BenchmarkExecutorScan1000(b *testing.B) {
	runExecBench(b, "1000", "SELECT a, b FROM big WHERE b < 250.0", 500)
}

func BenchmarkExecutorScan100000(b *testing.B) {
	runExecBench(b, "100000", "SELECT a, b FROM big WHERE b < 25000.0", 50000)
}

func BenchmarkExecutorScan1000000(b *testing.B) {
	runExecBench(b, "1000000", "SELECT a, b FROM big WHERE b < 250000.0", 500000)
}

// The join shape: 10k-row fact filtered then hash-joined to a 100-row
// dimension with grouped aggregation — the star-query silhouette the
// paper's workload is built from.
func BenchmarkExecutorJoin10000(b *testing.B) {
	runExecBench(b, "join",
		// Even rows only (d = TRUE), so a covers the 50 even keys.
		"SELECT dim.name, COUNT(*), SUM(big.b) FROM big JOIN dim ON big.a = dim.k WHERE big.d = TRUE GROUP BY dim.name",
		50)
}
