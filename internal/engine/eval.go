package engine

import (
	"fmt"

	"github.com/qamarket/qamarket/internal/driver"
	"github.com/qamarket/qamarket/internal/sqldb"
)

// vres is the result of evaluating an expression over a selection of
// relation rows: a constant, an aliased relation column (vec indexed
// through sel), or an owned vector aligned with the selection (sel nil,
// entry k is row k of vec). A nil sel on an aliased column means the
// identity selection.
type vres struct {
	isConst bool
	c       sqldb.Value
	vec     *colVec
	sel     []int32
}

// value boxes entry k.
func (v *vres) value(k int) sqldb.Value {
	if v.isConst {
		return v.c
	}
	if v.sel != nil {
		return v.vec.value(int(v.sel[k]))
	}
	return v.vec.value(k)
}

// numericAt reads entry k as a float64 when it is numeric. Used by the
// comparison kernels, whose semantics are exactly the row engine's
// Compare: every numeric comparison goes through float64.
func (v *vres) numericAt(k int) (float64, bool) {
	if v.isConst {
		return v.c.AsFloat()
	}
	i := k
	if v.sel != nil {
		i = int(v.sel[k])
	}
	switch v.vec.kinds[i] {
	case driver.KindByteInt:
		return float64(v.vec.ints[v.vec.offs[i]]), true
	case driver.KindByteFloat:
		return v.vec.floats[v.vec.offs[i]], true
	}
	return 0, false
}

// numericKind classifies an operand for the comparison kernel: 'c' for
// a numeric constant, 'i'/'f' for a NULL-free numeric column, 0
// otherwise.
func (v *vres) numericKind() byte {
	if v.isConst {
		if _, ok := v.c.AsFloat(); ok {
			return 'c'
		}
		return 0
	}
	switch u := v.vec.uniform(); u {
	case driver.KindByteInt, driver.KindByteFloat:
		return u
	}
	return 0
}

// evalVec evaluates an expression over the rows sel of rel (nil sel =
// all n rows, ascending). Logical AND/OR keep the row engine's lazy
// semantics per entry — the right side is only ever evaluated for
// entries the left side did not short-circuit — so data-dependent
// errors surface for exactly the same set of rows as the row engine.
// Comparisons over NULL-free numeric columns run as typed kernels; any
// node shape without a kernel falls back to the scalar mirror row by
// row.
func (e *DB) evalVec(ex sqldb.Expr, rel *erel, sel []int32, n int) (vres, error) {
	switch x := ex.(type) {
	case *sqldb.Literal:
		return vres{isConst: true, c: x.Val}, nil
	case *sqldb.ColumnRef:
		if n == 0 {
			// The row engine's per-row loop never resolves over an empty
			// input; do not error here either.
			return vres{vec: &colVec{}}, nil
		}
		i, err := rel.resolve(x)
		if err != nil {
			return vres{}, err
		}
		return vres{vec: rel.vecs[i], sel: sel}, nil
	case *sqldb.BinaryExpr:
		switch x.Op {
		case "AND", "OR":
			return e.evalLogical(x, rel, sel, n)
		case "=", "<>", "<", "<=", ">", ">=":
			l, err := e.evalVec(x.Left, rel, sel, n)
			if err != nil {
				return vres{}, err
			}
			r, err := e.evalVec(x.Right, rel, sel, n)
			if err != nil {
				return vres{}, err
			}
			if out, ok := compareKernel(x.Op, &l, &r, n); ok {
				return out, nil
			}
			return applyElementwise(x.Op, &l, &r, n)
		default:
			l, err := e.evalVec(x.Left, rel, sel, n)
			if err != nil {
				return vres{}, err
			}
			r, err := e.evalVec(x.Right, rel, sel, n)
			if err != nil {
				return vres{}, err
			}
			return applyElementwise(x.Op, &l, &r, n)
		}
	case *sqldb.UnaryExpr:
		v, err := e.evalVec(x.X, rel, sel, n)
		if err != nil {
			return vres{}, err
		}
		if v.isConst {
			c, err := sqldb.ApplyUnary(x.Op, v.c)
			if err != nil {
				return vres{}, err
			}
			return vres{isConst: true, c: c}, nil
		}
		out := &colVec{}
		for k := 0; k < n; k++ {
			r, err := sqldb.ApplyUnary(x.Op, v.value(k))
			if err != nil {
				return vres{}, err
			}
			out.appendVal(r)
		}
		return vres{vec: out}, nil
	case *sqldb.IsNullExpr:
		if c, ok := x.X.(*sqldb.ColumnRef); ok && n > 0 {
			i, err := rel.resolve(c)
			if err != nil {
				return vres{}, err
			}
			vec := rel.vecs[i]
			out := &colVec{}
			if sel == nil {
				for k := 0; k < n; k++ {
					out.appendVal(sqldb.NewBool((vec.kinds[k] == driver.KindByteNull) != x.Neg))
				}
			} else {
				for _, i := range sel {
					out.appendVal(sqldb.NewBool((vec.kinds[i] == driver.KindByteNull) != x.Neg))
				}
			}
			return vres{vec: out}, nil
		}
		return e.evalFallback(ex, rel, sel, n)
	default:
		return e.evalFallback(ex, rel, sel, n)
	}
}

// evalFallback runs the scalar mirror row by row — bitwise-faithful
// semantics for every node shape without a vectorized kernel.
func (e *DB) evalFallback(ex sqldb.Expr, rel *erel, sel []int32, n int) (vres, error) {
	out := &colVec{}
	for k := 0; k < n; k++ {
		ri := k
		if sel != nil {
			ri = int(sel[k])
		}
		v, err := e.evalScalar(ex, rel, ri)
		if err != nil {
			return vres{}, err
		}
		out.appendVal(v)
	}
	return vres{vec: out}, nil
}

// evalLogical is vectorized AND/OR with the row engine's short-circuit
// rule: AND answers false immediately when the left is boolean false
// (OR answers true when it is boolean true) and only the surviving
// subset of rows ever evaluates the right side.
func (e *DB) evalLogical(x *sqldb.BinaryExpr, rel *erel, sel []int32, n int) (vres, error) {
	l, err := e.evalVec(x.Left, rel, sel, n)
	if err != nil {
		return vres{}, err
	}
	shortOn := x.Op == "OR" // left bool value that short-circuits
	if l.isConst {
		if l.c.Kind == sqldb.KindBool && l.c.Bool == shortOn {
			return vres{isConst: true, c: sqldb.NewBool(shortOn)}, nil
		}
		r, err := e.evalVec(x.Right, rel, sel, n)
		if err != nil {
			return vres{}, err
		}
		return applyElementwise(x.Op, &l, &r, n)
	}
	lvals := make([]sqldb.Value, n)
	rest := getSel()
	defer putSel(rest)
	restPos := getSel()
	defer putSel(restPos)
	for k := 0; k < n; k++ {
		lvals[k] = l.value(k)
		if lvals[k].Kind == sqldb.KindBool && lvals[k].Bool == shortOn {
			continue
		}
		ri := k
		if sel != nil {
			ri = int(sel[k])
		}
		*rest = append(*rest, int32(ri))
		*restPos = append(*restPos, int32(k))
	}
	var r vres
	if len(*rest) > 0 {
		r, err = e.evalVec(x.Right, rel, *rest, len(*rest))
		if err != nil {
			return vres{}, err
		}
	}
	out := &colVec{}
	pos := 0
	for k := 0; k < n; k++ {
		if pos < len(*restPos) && int((*restPos)[pos]) == k {
			// ApplyBinary on AND/OR never errors.
			v, _ := sqldb.ApplyBinary(x.Op, lvals[k], r.value(pos))
			out.appendVal(v)
			pos++
			continue
		}
		out.appendVal(sqldb.NewBool(shortOn))
	}
	return vres{vec: out}, nil
}

// applyElementwise combines two evaluated operands entry by entry with
// the row engine's exported operator kernel (which owns the NULL logic
// and error text).
func applyElementwise(op string, l, r *vres, n int) (vres, error) {
	if l.isConst && r.isConst {
		c, err := sqldb.ApplyBinary(op, l.c, r.c)
		if err != nil {
			return vres{}, err
		}
		return vres{isConst: true, c: c}, nil
	}
	out := &colVec{}
	for k := 0; k < n; k++ {
		v, err := sqldb.ApplyBinary(op, l.value(k), r.value(k))
		if err != nil {
			return vres{}, err
		}
		out.appendVal(v)
	}
	return vres{vec: out}, nil
}

// compareKernel runs =, <>, <, <=, >, >= over NULL-free numeric
// operands as a typed float64 loop — the hot path of a filtered scan.
// It is exactly Compare's numeric semantics (all numeric comparisons in
// the row engine go through float64), so results are bit-identical.
func compareKernel(op string, l, r *vres, n int) (vres, bool) {
	lk, rk := l.numericKind(), r.numericKind()
	if lk == 0 || rk == 0 || (lk == 'c' && rk == 'c') {
		return vres{}, false
	}
	out := &colVec{
		kinds: make([]byte, n),
		offs:  make([]int32, n),
		bools: make([]bool, n),
	}
	for i := range out.kinds {
		out.kinds[i] = driver.KindByteBool
		out.offs[i] = int32(i)
	}
	// Specialize the common shape — int column vs constant with the
	// identity selection — into a branch-light loop; everything else
	// numeric goes through the generic accessor.
	if lk == 'i' && rk == 'c' && l.sel == nil {
		bf, _ := r.c.AsFloat()
		ints := l.vec.ints
		switch op {
		case "=":
			for i, v := range ints {
				out.bools[i] = float64(v) == bf
			}
		case "<>":
			for i, v := range ints {
				out.bools[i] = float64(v) != bf
			}
		case "<":
			for i, v := range ints {
				out.bools[i] = float64(v) < bf
			}
		case "<=":
			for i, v := range ints {
				out.bools[i] = float64(v) <= bf
			}
		case ">":
			for i, v := range ints {
				out.bools[i] = float64(v) > bf
			}
		default:
			for i, v := range ints {
				out.bools[i] = float64(v) >= bf
			}
		}
		return vres{vec: out}, true
	}
	for k := 0; k < n; k++ {
		af, _ := l.numericAt(k)
		bf, _ := r.numericAt(k)
		var b bool
		switch op {
		case "=":
			b = af == bf
		case "<>":
			b = af != bf
		case "<":
			b = af < bf
		case "<=":
			b = af <= bf
		case ">":
			b = af > bf
		default:
			b = af >= bf
		}
		out.bools[k] = b
	}
	return vres{vec: out}, true
}

// evalScalar mirrors the row engine's evalExpr against one relation
// row, node for node — same short-circuits, same NULL handling, same
// error text — using the scalar kernels sqldb exports.
func (e *DB) evalScalar(ex sqldb.Expr, rel *erel, ri int) (sqldb.Value, error) {
	switch x := ex.(type) {
	case *sqldb.Literal:
		return x.Val, nil
	case *sqldb.ColumnRef:
		i, err := rel.resolve(x)
		if err != nil {
			return sqldb.Null, err
		}
		return rel.vecs[i].value(ri), nil
	case *sqldb.BinaryExpr:
		l, err := e.evalScalar(x.Left, rel, ri)
		if err != nil {
			return sqldb.Null, err
		}
		switch x.Op {
		case "AND":
			if l.Kind == sqldb.KindBool && !l.Bool {
				return sqldb.NewBool(false), nil
			}
		case "OR":
			if l.Kind == sqldb.KindBool && l.Bool {
				return sqldb.NewBool(true), nil
			}
		}
		r, err := e.evalScalar(x.Right, rel, ri)
		if err != nil {
			return sqldb.Null, err
		}
		return sqldb.ApplyBinary(x.Op, l, r)
	case *sqldb.UnaryExpr:
		v, err := e.evalScalar(x.X, rel, ri)
		if err != nil {
			return sqldb.Null, err
		}
		return sqldb.ApplyUnary(x.Op, v)
	case *sqldb.InExpr:
		v, err := e.evalScalar(x.X, rel, ri)
		if err != nil {
			return sqldb.Null, err
		}
		if v.IsNull() {
			return sqldb.Null, nil
		}
		found := false
		for _, item := range x.List {
			iv, err := e.evalScalar(item, rel, ri)
			if err != nil {
				return sqldb.Null, err
			}
			if !iv.IsNull() && sqldb.Equal(v, iv) {
				found = true
				break
			}
		}
		return sqldb.NewBool(found != x.Neg), nil
	case *sqldb.BetweenExpr:
		v, err := e.evalScalar(x.X, rel, ri)
		if err != nil {
			return sqldb.Null, err
		}
		lo, err := e.evalScalar(x.Lo, rel, ri)
		if err != nil {
			return sqldb.Null, err
		}
		hi, err := e.evalScalar(x.Hi, rel, ri)
		if err != nil {
			return sqldb.Null, err
		}
		if v.IsNull() || lo.IsNull() || hi.IsNull() {
			return sqldb.Null, nil
		}
		in := sqldb.Compare(v, lo) >= 0 && sqldb.Compare(v, hi) <= 0
		return sqldb.NewBool(in != x.Neg), nil
	case *sqldb.LikeExpr:
		v, err := e.evalScalar(x.X, rel, ri)
		if err != nil {
			return sqldb.Null, err
		}
		pat, err := e.evalScalar(x.Pattern, rel, ri)
		if err != nil {
			return sqldb.Null, err
		}
		if v.IsNull() || pat.IsNull() {
			return sqldb.Null, nil
		}
		if v.Kind != sqldb.KindText || pat.Kind != sqldb.KindText {
			return sqldb.Null, fmt.Errorf("sqldb: LIKE requires text operands")
		}
		return sqldb.NewBool(sqldb.LikeMatch(v.Str, pat.Str) != x.Neg), nil
	case *sqldb.IsNullExpr:
		v, err := e.evalScalar(x.X, rel, ri)
		if err != nil {
			return sqldb.Null, err
		}
		return sqldb.NewBool(v.IsNull() != x.Neg), nil
	case *sqldb.AggExpr:
		return sqldb.Null, fmt.Errorf("sqldb: aggregate %s outside GROUP BY context", x.String())
	default:
		return sqldb.Null, fmt.Errorf("sqldb: unhandled expression %T", ex)
	}
}

// evalAggregateVec mirrors the row engine's grouped evaluation:
// aggregate nodes fold the group's rows, arithmetic combines folded
// operands, and anything else evaluates against the group's first row
// (NULL for an empty group).
func (e *DB) evalAggregateVec(ex sqldb.Expr, rel *erel, rows []int32) (sqldb.Value, error) {
	switch x := ex.(type) {
	case *sqldb.AggExpr:
		return e.foldAggVec(x, rel, rows)
	case *sqldb.BinaryExpr:
		l, err := e.evalAggregateVec(x.Left, rel, rows)
		if err != nil {
			return sqldb.Null, err
		}
		r, err := e.evalAggregateVec(x.Right, rel, rows)
		if err != nil {
			return sqldb.Null, err
		}
		return sqldb.ApplyBinary(x.Op, l, r)
	case *sqldb.UnaryExpr:
		v, err := e.evalAggregateVec(x.X, rel, rows)
		if err != nil {
			return sqldb.Null, err
		}
		return sqldb.ApplyUnary(x.Op, v)
	default:
		if len(rows) == 0 {
			return sqldb.Null, nil
		}
		return e.evalScalar(ex, rel, int(rows[0]))
	}
}

// foldAggVec folds one aggregate over a group. A plain column argument
// over a NULL-free numeric column folds as a typed loop; everything
// else replays the row engine's fold (NULL skipping, float64 sums, the
// int-preserving SUM, first-wins ties in MIN/MAX) value by value.
func (e *DB) foldAggVec(a *sqldb.AggExpr, rel *erel, rows []int32) (sqldb.Value, error) {
	if a.Star {
		return sqldb.NewInt(int64(len(rows))), nil
	}
	if c, ok := a.Arg.(*sqldb.ColumnRef); ok && len(rows) > 0 {
		i, err := rel.resolve(c)
		if err != nil {
			return sqldb.Null, err
		}
		vec := rel.vecs[i]
		switch vec.uniform() {
		case driver.KindByteInt:
			return foldNumeric(a.Func, len(rows), true, func(k int) float64 { return float64(vec.ints[rows[k]]) },
				func(k int) sqldb.Value { return sqldb.NewInt(vec.ints[rows[k]]) })
		case driver.KindByteFloat:
			return foldNumeric(a.Func, len(rows), false, func(k int) float64 { return vec.floats[rows[k]] },
				func(k int) sqldb.Value { return sqldb.NewFloat(vec.floats[rows[k]]) })
		}
	}
	var count int64
	var sum float64
	allInt := true
	var minV, maxV sqldb.Value
	first := true
	for _, ri := range rows {
		v, err := e.evalScalar(a.Arg, rel, int(ri))
		if err != nil {
			return sqldb.Null, err
		}
		if v.IsNull() {
			continue
		}
		count++
		if f, ok := v.AsFloat(); ok {
			sum += f
			if v.Kind != sqldb.KindInt {
				allInt = false
			}
		} else if a.Func == "SUM" || a.Func == "AVG" {
			return sqldb.Null, fmt.Errorf("sqldb: %s over non-numeric value %s", a.Func, v)
		}
		if first || sqldb.Compare(v, minV) < 0 {
			minV = v
		}
		if first || sqldb.Compare(v, maxV) > 0 {
			maxV = v
		}
		first = false
	}
	return finishFold(a.Func, count, sum, allInt, minV, maxV)
}

// foldNumeric is the typed fold over a NULL-free numeric column: count
// is the group size, sums accumulate in float64 (like the row engine),
// and MIN/MAX keep the first row achieving the extreme under strict
// float64 comparison — exactly Compare's tie behavior.
func foldNumeric(fn string, n int, isInt bool, at func(int) float64, box func(int) sqldb.Value) (sqldb.Value, error) {
	var sum float64
	minK, maxK := 0, 0
	minF, maxF := at(0), at(0)
	for k := 0; k < n; k++ {
		f := at(k)
		sum += f
		if f < minF {
			minF, minK = f, k
		}
		if f > maxF {
			maxF, maxK = f, k
		}
	}
	return finishFold(fn, int64(n), sum, isInt, box(minK), box(maxK))
}

// finishFold is the row engine's aggregate finalization, shared by both
// fold paths.
func finishFold(fn string, count int64, sum float64, allInt bool, minV, maxV sqldb.Value) (sqldb.Value, error) {
	switch fn {
	case "COUNT":
		return sqldb.NewInt(count), nil
	case "SUM":
		if count == 0 {
			return sqldb.Null, nil
		}
		if allInt {
			return sqldb.NewInt(int64(sum)), nil
		}
		return sqldb.NewFloat(sum), nil
	case "AVG":
		if count == 0 {
			return sqldb.Null, nil
		}
		return sqldb.NewFloat(sum / float64(count)), nil
	case "MIN":
		if count == 0 {
			return sqldb.Null, nil
		}
		return minV, nil
	case "MAX":
		if count == 0 {
			return sqldb.Null, nil
		}
		return maxV, nil
	default:
		return sqldb.Null, fmt.Errorf("sqldb: unknown aggregate %q", fn)
	}
}
