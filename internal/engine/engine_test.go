package engine

import (
	"strings"
	"testing"

	"github.com/qamarket/qamarket/internal/sqldb"
)

func mustExec(t *testing.T, e *DB, sql string) int {
	t.Helper()
	n, err := e.Exec(sql)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	return n
}

func queryStrings(t *testing.T, e *DB, sql string) [][]string {
	t.Helper()
	blk, err := e.Query(sql)
	if err != nil {
		t.Fatalf("Query(%q): %v", sql, err)
	}
	out := make([][]string, blk.Rows)
	for i := 0; i < blk.Rows; i++ {
		row := make([]string, len(blk.Cols))
		for j := range blk.Cols {
			v, err := blk.Value(i, j)
			if err != nil {
				t.Fatalf("Value(%d,%d): %v", i, j, err)
			}
			row[j] = v.String()
		}
		out[i] = row
	}
	return out
}

func seedDB(t *testing.T) *DB {
	t.Helper()
	e := Open()
	mustExec(t, e, "CREATE TABLE emp (id INT, name TEXT, dept TEXT, salary FLOAT)")
	mustExec(t, e, `INSERT INTO emp VALUES
		(1, 'ann', 'eng', 100.0),
		(2, 'bob', 'eng', 90.0),
		(3, 'cal', 'ops', 80.0),
		(4, 'dee', 'ops', 70.5),
		(5, 'eve', 'mgmt', 120.0)`)
	mustExec(t, e, "CREATE TABLE dept (dept TEXT, floor INT)")
	mustExec(t, e, "INSERT INTO dept VALUES ('eng', 3), ('ops', 1), ('mgmt', 5)")
	return e
}

func TestEngineBasicSelect(t *testing.T) {
	e := seedDB(t)
	got := queryStrings(t, e, "SELECT name FROM emp WHERE salary > 85 ORDER BY id")
	want := [][]string{{"'ann'"}, {"'bob'"}, {"'eve'"}}
	if len(got) != len(want) {
		t.Fatalf("rows = %d, want %d (%v)", len(got), len(want), got)
	}
	for i := range want {
		if got[i][0] != want[i][0] {
			t.Fatalf("row %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestEngineJoinGroupOrder(t *testing.T) {
	e := seedDB(t)
	got := queryStrings(t, e,
		"SELECT dept.floor, COUNT(*), SUM(emp.salary) FROM emp JOIN dept ON emp.dept = dept.dept GROUP BY dept.floor ORDER BY dept.floor")
	want := [][]string{
		{"1", "2", "150.5"},
		{"3", "2", "190"},
		{"5", "1", "120"},
	}
	if len(got) != len(want) {
		t.Fatalf("rows = %v, want %v", got, want)
	}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("row %d col %d = %q, want %q (full: %v)", i, j, got[i][j], want[i][j], got)
			}
		}
	}
}

func TestEngineDistinctLimitOffset(t *testing.T) {
	e := seedDB(t)
	got := queryStrings(t, e, "SELECT DISTINCT dept FROM emp ORDER BY dept LIMIT 2 OFFSET 1")
	if len(got) != 2 || got[0][0] != "'mgmt'" || got[1][0] != "'ops'" {
		t.Fatalf("got %v", got)
	}
}

func TestEngineUpdateDeleteIndexView(t *testing.T) {
	e := seedDB(t)
	mustExec(t, e, "CREATE INDEX emp_dept ON emp (dept)")
	mustExec(t, e, "CREATE VIEW engineers AS SELECT id, name FROM emp WHERE dept = 'eng'")

	if n := mustExec(t, e, "UPDATE emp SET salary = salary + 10 WHERE dept = 'eng'"); n != 2 {
		t.Fatalf("update changed %d rows, want 2", n)
	}
	if n := mustExec(t, e, "DELETE FROM emp WHERE id = 3"); n != 1 {
		t.Fatalf("delete removed %d rows, want 1", n)
	}
	got := queryStrings(t, e, "SELECT name FROM engineers ORDER BY id")
	if len(got) != 2 || got[0][0] != "'ann'" || got[1][0] != "'bob'" {
		t.Fatalf("view after DML: %v", got)
	}
	// Index-accelerated scan still consistent after DML rebuilds.
	got = queryStrings(t, e, "SELECT COUNT(*) FROM emp WHERE dept = 'ops'")
	if got[0][0] != "1" {
		t.Fatalf("ops count = %v, want 1", got)
	}
}

func TestEngineErrorTextMatchesSQLDB(t *testing.T) {
	e := Open()
	row := sqldb.Open()
	for _, sql := range []string{
		"SELECT nope FROM missing",
		"INSERT INTO missing VALUES (1)",
		"CREATE TABLE t (a INT)",
	} {
		_, eErr := e.Exec(sql)
		_, _, rErr := row.Exec(sql)
		switch {
		case (eErr == nil) != (rErr == nil):
			t.Fatalf("%q: engine err %v, sqldb err %v", sql, eErr, rErr)
		case eErr != nil && eErr.Error() != rErr.Error():
			t.Fatalf("%q: engine %q != sqldb %q", sql, eErr, rErr)
		}
	}
	_, eErr := e.Exec("CREATE TABLE t (a INT)")
	_, _, rErr := row.Exec("CREATE TABLE t (a INT)")
	if eErr == nil || rErr == nil || eErr.Error() != rErr.Error() {
		t.Fatalf("duplicate table: engine %v, sqldb %v", eErr, rErr)
	}
}

func TestEngineFromDBRoundTrip(t *testing.T) {
	src := sqldb.Open()
	script := `CREATE TABLE t (a INT, b TEXT);
		INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, NULL);
		CREATE INDEX t_a ON t (a);
		CREATE VIEW big AS SELECT a FROM t WHERE a > 1`
	if _, err := sqldb.ExecScript(src, script); err != nil {
		t.Fatal(err)
	}
	e := FromDB(src)
	got := queryStrings(t, e, "SELECT a, b FROM t ORDER BY a")
	if len(got) != 3 || got[2][0] != "3" || got[2][1] != "NULL" {
		t.Fatalf("got %v", got)
	}
	got = queryStrings(t, e, "SELECT a FROM big ORDER BY a")
	if len(got) != 2 || got[0][0] != "2" {
		t.Fatalf("view rows %v", got)
	}
	if !e.HasRelation("t") || !e.HasRelation("big") || e.HasRelation("zzz") {
		t.Fatal("HasRelation mismatch")
	}
}

func TestEnginePrepareHints(t *testing.T) {
	e := seedDB(t)
	st, err := e.Prepare("SELECT name FROM emp WHERE salary > 85")
	if err != nil {
		t.Fatal(err)
	}
	h := st.Hints()
	if h.Signature == "" || h.EstRows <= 0 {
		t.Fatalf("hints = %+v", h)
	}
	blk, err := st.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if blk.Rows != 3 {
		t.Fatalf("rows = %d, want 3", blk.Rows)
	}
	// Non-SELECT prepare mirrors sqldb's Explain error.
	if _, err := e.Prepare("DELETE FROM emp"); err == nil ||
		!strings.Contains(err.Error(), "Explain requires a SELECT") {
		t.Fatalf("prepare non-select: %v", err)
	}
}

func TestEngineAggregatesAndNulls(t *testing.T) {
	e := Open()
	mustExec(t, e, "CREATE TABLE n (v INT)")
	mustExec(t, e, "INSERT INTO n VALUES (1), (NULL), (3)")
	got := queryStrings(t, e, "SELECT COUNT(*), COUNT(v), SUM(v), AVG(v), MIN(v), MAX(v) FROM n")
	want := []string{"3", "2", "4", "2", "1", "3"}
	for j, w := range want {
		if got[0][j] != w {
			t.Fatalf("col %d = %q, want %q (%v)", j, got[0][j], w, got)
		}
	}
	// Empty-input aggregate: one row of NULL/zero like sqldb.
	got = queryStrings(t, e, "SELECT COUNT(v), SUM(v) FROM n WHERE v > 99")
	if got[0][0] != "0" || got[0][1] != "NULL" {
		t.Fatalf("empty group: %v", got)
	}
}
