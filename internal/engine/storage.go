package engine

import (
	"github.com/qamarket/qamarket/internal/driver"
	"github.com/qamarket/qamarket/internal/sqldb"
)

// colVec is one column stored column-wise: per-row kind bytes plus
// densely packed typed arrays, the same sparse layout as driver.Col so
// a whole column ships into a result block as slice headers — zero
// copies, zero transposition. The offs array adds what the wire format
// omits: offs[i] indexes the typed array selected by kinds[i], giving
// O(1) random row access for scalar evaluation.
type colVec struct {
	kinds  []byte
	offs   []int32
	ints   []int64
	floats []float64
	texts  []string
	bools  []bool
}

func (c *colVec) len() int { return len(c.kinds) }

// uniform reports the single kind byte every row of the column carries
// ('i', 'f', 's', 'b'), or 0 when the column is empty or mixed. A
// uniform column has no NULLs and its typed array is row-aligned
// (offs[i] == i), which is what the vectorized kernels key on.
func (c *colVec) uniform() byte {
	n := len(c.kinds)
	if n == 0 {
		return 0
	}
	switch n {
	case len(c.ints):
		return driver.KindByteInt
	case len(c.floats):
		return driver.KindByteFloat
	case len(c.texts):
		return driver.KindByteText
	case len(c.bools):
		return driver.KindByteBool
	}
	return 0
}

// value boxes row i.
func (c *colVec) value(i int) sqldb.Value {
	switch c.kinds[i] {
	case driver.KindByteInt:
		return sqldb.NewInt(c.ints[c.offs[i]])
	case driver.KindByteFloat:
		return sqldb.NewFloat(c.floats[c.offs[i]])
	case driver.KindByteText:
		return sqldb.NewText(c.texts[c.offs[i]])
	case driver.KindByteBool:
		return sqldb.NewBool(c.bools[c.offs[i]])
	default:
		return sqldb.Null
	}
}

// appendVal appends one boxed value.
func (c *colVec) appendVal(v sqldb.Value) {
	switch v.Kind {
	case sqldb.KindInt:
		c.kinds = append(c.kinds, driver.KindByteInt)
		c.offs = append(c.offs, int32(len(c.ints)))
		c.ints = append(c.ints, v.Int)
	case sqldb.KindFloat:
		c.kinds = append(c.kinds, driver.KindByteFloat)
		c.offs = append(c.offs, int32(len(c.floats)))
		c.floats = append(c.floats, v.Float)
	case sqldb.KindText:
		c.kinds = append(c.kinds, driver.KindByteText)
		c.offs = append(c.offs, int32(len(c.texts)))
		c.texts = append(c.texts, v.Str)
	case sqldb.KindBool:
		c.kinds = append(c.kinds, driver.KindByteBool)
		c.offs = append(c.offs, int32(len(c.bools)))
		c.bools = append(c.bools, v.Bool)
	default:
		c.kinds = append(c.kinds, driver.KindByteNull)
		c.offs = append(c.offs, 0)
	}
}

// appendFrom appends row i of src without boxing.
func (c *colVec) appendFrom(src *colVec, i int) {
	k := src.kinds[i]
	c.kinds = append(c.kinds, k)
	switch k {
	case driver.KindByteInt:
		c.offs = append(c.offs, int32(len(c.ints)))
		c.ints = append(c.ints, src.ints[src.offs[i]])
	case driver.KindByteFloat:
		c.offs = append(c.offs, int32(len(c.floats)))
		c.floats = append(c.floats, src.floats[src.offs[i]])
	case driver.KindByteText:
		c.offs = append(c.offs, int32(len(c.texts)))
		c.texts = append(c.texts, src.texts[src.offs[i]])
	case driver.KindByteBool:
		c.offs = append(c.offs, int32(len(c.bools)))
		c.bools = append(c.bools, src.bools[src.offs[i]])
	default:
		c.offs = append(c.offs, 0)
	}
}

// gather builds the column containing src's rows sel, in order. A
// uniform source takes the typed bulk path (no per-row kind switch).
func gather(src *colVec, sel []int32) *colVec {
	dst := &colVec{
		kinds: make([]byte, 0, len(sel)),
		offs:  make([]int32, 0, len(sel)),
	}
	switch src.uniform() {
	case driver.KindByteInt:
		dst.ints = make([]int64, len(sel))
		for k, i := range sel {
			dst.ints[k] = src.ints[i]
			dst.kinds = append(dst.kinds, driver.KindByteInt)
			dst.offs = append(dst.offs, int32(k))
		}
	case driver.KindByteFloat:
		dst.floats = make([]float64, len(sel))
		for k, i := range sel {
			dst.floats[k] = src.floats[i]
			dst.kinds = append(dst.kinds, driver.KindByteFloat)
			dst.offs = append(dst.offs, int32(k))
		}
	default:
		for _, i := range sel {
			dst.appendFrom(src, int(i))
		}
	}
	return dst
}

// asCol views the column as a wire-ready driver column. The returned
// column aliases the vector's arrays; the engine never mutates a
// committed array in place (DML swaps in fresh vectors), so the view
// stays valid for readers.
func (c *colVec) asCol() driver.Col {
	return driver.Col{
		Kinds:  c.kinds,
		Ints:   c.ints,
		Floats: c.floats,
		Texts:  c.texts,
		Bools:  c.bools,
	}
}

// table is one base table stored column-wise.
type table struct {
	name string
	cols []sqldb.ColumnDef
	idx  map[string]int
	vecs []*colVec
}

func (t *table) nrows() int {
	if len(t.vecs) == 0 {
		return 0
	}
	return t.vecs[0].len()
}

// index mirrors sqldb's hash index: value group-key -> row positions in
// ascending order. Inserts extend incrementally; UPDATE and DELETE
// rebuild.
type index struct {
	name   string
	table  string
	column string
	col    int
	m      map[string][]int32
}

func (ix *index) rebuild(t *table) {
	n := t.nrows()
	ix.m = make(map[string][]int32, n)
	vec := t.vecs[ix.col]
	for pos := 0; pos < n; pos++ {
		k := vec.value(pos).GroupKey()
		ix.m[k] = append(ix.m[k], int32(pos))
	}
}

func (ix *index) add(t *table, from int) {
	vec := t.vecs[ix.col]
	for pos := from; pos < t.nrows(); pos++ {
		k := vec.value(pos).GroupKey()
		ix.m[k] = append(ix.m[k], int32(pos))
	}
}
