package engine

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/qamarket/qamarket/internal/driver"
	"github.com/qamarket/qamarket/internal/sqldb"
)

// ebind names one column of an intermediate relation.
type ebind struct {
	qual string
	name string
}

// erel is an intermediate relation in columnar form. Vectors may alias
// base-table storage (scans are zero-copy); every operator that drops
// or reorders rows gathers into fresh vectors.
type erel struct {
	cols  []ebind
	vecs  []*colVec
	nrows int
}

// resolve finds the position of a column reference, enforcing the same
// ambiguity rules (and error text) as the row engine.
func (r *erel) resolve(c *sqldb.ColumnRef) (int, error) {
	found := -1
	for i, b := range r.cols {
		if c.Column != b.name {
			continue
		}
		if c.Table != "" && c.Table != b.qual {
			continue
		}
		if found >= 0 {
			return 0, fmt.Errorf("sqldb: ambiguous column %q", c.String())
		}
		found = i
	}
	if found < 0 {
		return 0, fmt.Errorf("sqldb: unknown column %q", c.String())
	}
	return found, nil
}

// selPool recycles selection vectors (row-index scratch) across
// queries; every selection the executor builds starts here.
var selPool = sync.Pool{New: func() any { s := make([]int32, 0, 1024); return &s }}

func getSel() *[]int32 { return selPool.Get().(*[]int32) }

func putSel(s *[]int32) {
	*s = (*s)[:0]
	selPool.Put(s)
}

// selectLocked runs the pipeline under the held read lock, mirroring
// the row engine's selectLocked stage for stage: scan (index-served
// when an equality conjunct pins an indexed column) → hash joins →
// filter → projection or aggregation → DISTINCT → stable sort →
// OFFSET/LIMIT. It returns the output column names and vectors.
func (e *DB) selectLocked(s *sqldb.SelectStmt, depth int) ([]string, []*colVec, int, error) {
	if depth > sqldb.MaxViewDepth {
		return nil, nil, 0, fmt.Errorf("sqldb: view nesting exceeds %d", sqldb.MaxViewDepth)
	}
	rel, err := e.scanRefIndexed(s, 0, depth)
	if err != nil {
		return nil, nil, 0, err
	}
	for i, join := range s.Joins {
		right, err := e.scanRefIndexed(s, i+1, depth)
		if err != nil {
			return nil, nil, 0, err
		}
		rel, err = hashJoinVec(&rel, &right, join)
		if err != nil {
			return nil, nil, 0, err
		}
	}
	if s.Where != nil && rel.nrows > 0 {
		sel := getSel()
		defer putSel(sel)
		if err := e.filter(s.Where, &rel, sel); err != nil {
			return nil, nil, 0, err
		}
		if len(*sel) < rel.nrows {
			rel = gatherRel(&rel, *sel)
		}
	}

	orderExprs, err := sqldb.OrderKeyExprs(s)
	if err != nil {
		return nil, nil, 0, err
	}

	var names []string
	var vis, keys []*colVec
	var nout int
	if sqldb.NeedsAggregation(s) {
		names, vis, keys, nout, err = e.executeGrouped(s, &rel, orderExprs)
	} else {
		names, vis, keys, nout, err = e.executeProjection(s, &rel, orderExprs)
	}
	if err != nil {
		return nil, nil, 0, err
	}

	// perm is the output-row permutation the remaining stages refine;
	// nil means identity over all nout rows.
	var perm []int32
	if s.Distinct {
		seen := make(map[string]bool, nout)
		kept := make([]int32, 0, nout)
		var kb strings.Builder
		for r := 0; r < nout; r++ {
			kb.Reset()
			for _, v := range vis {
				kb.WriteString(v.value(r).GroupKey())
				kb.WriteByte('|')
			}
			k := kb.String()
			if !seen[k] {
				seen[k] = true
				kept = append(kept, int32(r))
			}
		}
		if len(kept) < nout {
			perm = kept
		}
	}
	if len(s.OrderBy) > 0 {
		if perm == nil {
			perm = identity(nout)
		}
		sort.SliceStable(perm, func(i, j int) bool {
			for k, o := range s.OrderBy {
				c := sqldb.Compare(keys[k].value(int(perm[i])), keys[k].value(int(perm[j])))
				if c == 0 {
					continue
				}
				if o.Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
	}
	outLen := nout
	if perm != nil {
		outLen = len(perm)
	}
	lo := 0
	if s.Offset > 0 {
		if s.Offset >= outLen {
			lo = outLen
		} else {
			lo = s.Offset
		}
	}
	hi := outLen
	if s.Limit >= 0 && outLen-lo > s.Limit {
		hi = lo + s.Limit
	}
	if perm == nil && lo == 0 && hi == nout {
		return names, vis, nout, nil
	}
	if perm == nil {
		perm = identity(nout)
	}
	perm = perm[lo:hi]
	out := make([]*colVec, len(vis))
	for j, v := range vis {
		out[j] = gather(v, perm)
	}
	return names, out, len(perm), nil
}

func identity(n int) []int32 {
	p := make([]int32, n)
	for i := range p {
		p[i] = int32(i)
	}
	return p
}

// gatherRel builds the relation containing only the selected rows.
func gatherRel(rel *erel, sel []int32) erel {
	vecs := make([]*colVec, len(rel.vecs))
	for j, v := range rel.vecs {
		vecs[j] = gather(v, sel)
	}
	return erel{cols: rel.cols, vecs: vecs, nrows: len(sel)}
}

// scanRefIndexed materializes one FROM entry, serving it from a hash
// index when the WHERE clause pins an indexed column to a constant.
func (e *DB) scanRefIndexed(s *sqldb.SelectStmt, refIdx, depth int) (erel, error) {
	ref := s.From[refIdx]
	if t, ok := e.tables[ref.Table]; ok {
		if col, val, ok := sqldb.IndexableEq(s, refIdx); ok {
			if ix := e.lookupIndex(ref.Table, col); ix != nil {
				rel := erel{cols: make([]ebind, len(t.cols))}
				for i, c := range t.cols {
					rel.cols[i] = ebind{qual: ref.Name(), name: c.Name}
				}
				sel := ix.m[val.GroupKey()]
				rel.vecs = make([]*colVec, len(t.vecs))
				for j, v := range t.vecs {
					rel.vecs[j] = gather(v, sel)
				}
				rel.nrows = len(sel)
				return rel, nil
			}
		}
	}
	return e.scanRef(ref, depth)
}

// scanRef materializes one FROM entry: a base table (zero-copy — the
// vectors alias table storage) or a view (recursive select).
func (e *DB) scanRef(ref sqldb.TableRef, depth int) (erel, error) {
	qual := ref.Name()
	if t, ok := e.tables[ref.Table]; ok {
		rel := erel{cols: make([]ebind, len(t.cols)), vecs: t.vecs, nrows: t.nrows()}
		for i, c := range t.cols {
			rel.cols[i] = ebind{qual: qual, name: c.Name}
		}
		return rel, nil
	}
	if v, ok := e.views[ref.Table]; ok {
		names, vecs, n, err := e.selectLocked(v, depth+1)
		if err != nil {
			return erel{}, fmt.Errorf("sqldb: expanding view %q: %w", ref.Table, err)
		}
		rel := erel{cols: make([]ebind, len(names)), vecs: vecs, nrows: n}
		for i, c := range names {
			rel.cols[i] = ebind{qual: qual, name: c}
		}
		return rel, nil
	}
	return erel{}, fmt.Errorf("sqldb: unknown relation %q", ref.Table)
}

// hashJoinVec performs the equi-join columnar-style: build a hash table
// on the smaller side's key column, probe with the larger, collect the
// matching row-index pairs, then gather both sides' columns once. Key
// semantics mirror the row engine exactly: NULLs never join, and keys
// hash by value group-key (so cross-kind numerics match). When both key
// columns are uniform ints the keys stay unboxed as float64s — the
// group-key of every numeric is its float64 rendering, so float64
// equality is exactly group-key equality for them.
func hashJoinVec(left, right *erel, on sqldb.JoinOn) (erel, error) {
	lcol, rcol, err := splitJoinColsVec(left, right, on)
	if err != nil {
		return erel{}, err
	}
	buildLeft := left.nrows <= right.nrows
	build, probe := left, right
	bcol, pcol := lcol, rcol
	if !buildLeft {
		build, probe = right, left
		bcol, pcol = rcol, lcol
	}
	bvec, pvec := build.vecs[bcol], probe.vecs[pcol]

	bIdx := getSel()
	pIdx := getSel()
	defer putSel(bIdx)
	defer putSel(pIdx)

	if bu, pu := bvec.uniform(), pvec.uniform(); bu == driver.KindByteInt && pu == driver.KindByteInt {
		ht := make(map[float64][]int32, build.nrows)
		for i, v := range bvec.ints {
			k := float64(v)
			ht[k] = append(ht[k], int32(i))
		}
		for p, v := range pvec.ints {
			for _, b := range ht[float64(v)] {
				*bIdx = append(*bIdx, b)
				*pIdx = append(*pIdx, int32(p))
			}
		}
	} else {
		ht := make(map[string][]int32, build.nrows)
		for i := 0; i < build.nrows; i++ {
			v := bvec.value(i)
			if v.IsNull() {
				continue // NULL never joins
			}
			k := v.GroupKey()
			ht[k] = append(ht[k], int32(i))
		}
		for p := 0; p < probe.nrows; p++ {
			v := pvec.value(p)
			if v.IsNull() {
				continue
			}
			for _, b := range ht[v.GroupKey()] {
				*bIdx = append(*bIdx, b)
				*pIdx = append(*pIdx, int32(p))
			}
		}
	}

	leftSel, rightSel := *bIdx, *pIdx
	if !buildLeft {
		leftSel, rightSel = *pIdx, *bIdx
	}
	out := erel{
		cols:  append(append(make([]ebind, 0, len(left.cols)+len(right.cols)), left.cols...), right.cols...),
		vecs:  make([]*colVec, 0, len(left.vecs)+len(right.vecs)),
		nrows: len(leftSel),
	}
	for _, v := range left.vecs {
		out.vecs = append(out.vecs, gather(v, leftSel))
	}
	for _, v := range right.vecs {
		out.vecs = append(out.vecs, gather(v, rightSel))
	}
	return out, nil
}

// splitJoinColsVec resolves the ON condition's two sides, either order.
func splitJoinColsVec(left, right *erel, on sqldb.JoinOn) (int, int, error) {
	l := on.Left
	r := on.Right
	if li, err := left.resolve(&l); err == nil {
		ri, err := right.resolve(&r)
		if err != nil {
			return 0, 0, fmt.Errorf("sqldb: join condition: %w", err)
		}
		return li, ri, nil
	}
	li, err := left.resolve(&r)
	if err != nil {
		return 0, 0, fmt.Errorf("sqldb: join condition %s = %s matches neither side", on.Left.String(), on.Right.String())
	}
	ri, err := right.resolve(&l)
	if err != nil {
		return 0, 0, fmt.Errorf("sqldb: join condition: %w", err)
	}
	return li, ri, nil
}

// filter evaluates the WHERE predicate over the whole relation and
// appends the indices of passing rows (predicate strictly true, like
// the row engine: NULL filters out) to sel.
func (e *DB) filter(where sqldb.Expr, rel *erel, sel *[]int32) error {
	n := rel.nrows
	v, err := e.evalVec(where, rel, nil, n)
	if err != nil {
		return err
	}
	if v.isConst {
		if v.c.Kind == sqldb.KindBool && v.c.Bool {
			for i := 0; i < n; i++ {
				*sel = append(*sel, int32(i))
			}
		}
		return nil
	}
	if v.sel == nil && v.vec.uniform() == driver.KindByteBool {
		for i, b := range v.vec.bools {
			if b {
				*sel = append(*sel, int32(i))
			}
		}
		return nil
	}
	for k := 0; k < n; k++ {
		val := v.value(k)
		if val.Kind == sqldb.KindBool && val.Bool {
			*sel = append(*sel, int32(k))
		}
	}
	return nil
}

// executeProjection is the non-aggregating path: each projected item
// (and hidden ORDER BY key) becomes one output vector. Plain column
// references alias the relation's vectors — zero copy; expressions
// evaluate vectorized. An empty input produces empty vectors without
// evaluating anything, mirroring the row engine's per-row loop.
func (e *DB) executeProjection(s *sqldb.SelectStmt, rel *erel, orderExprs []sqldb.Expr) ([]string, []*colVec, []*colVec, int, error) {
	items, names := expandItemsVec(s, rel)
	n := rel.nrows
	vis := make([]*colVec, len(items))
	keys := make([]*colVec, len(orderExprs))
	if n == 0 {
		for i := range vis {
			vis[i] = &colVec{}
		}
		for i := range keys {
			keys[i] = &colVec{}
		}
		return names, vis, keys, 0, nil
	}
	for i, it := range items {
		v, err := e.materializeExpr(it, rel)
		if err != nil {
			return nil, nil, nil, 0, err
		}
		vis[i] = v
	}
	for i, ex := range orderExprs {
		v, err := e.materializeExpr(ex, rel)
		if err != nil {
			return nil, nil, nil, 0, err
		}
		keys[i] = v
	}
	return names, vis, keys, n, nil
}

// expandItemsVec flattens SELECT * into explicit column references.
func expandItemsVec(s *sqldb.SelectStmt, rel *erel) ([]sqldb.Expr, []string) {
	var items []sqldb.Expr
	var names []string
	for _, it := range s.Items {
		if it.Star {
			for _, b := range rel.cols {
				items = append(items, &sqldb.ColumnRef{Table: b.qual, Column: b.name})
				names = append(names, b.name)
			}
			continue
		}
		items = append(items, it.Expr)
		names = append(names, sqldb.ItemName(it))
	}
	return items, names
}

// materializeExpr evaluates an expression over the whole relation into
// one owned (or aliased, for plain column references) vector.
func (e *DB) materializeExpr(ex sqldb.Expr, rel *erel) (*colVec, error) {
	if c, ok := ex.(*sqldb.ColumnRef); ok {
		i, err := rel.resolve(c)
		if err != nil {
			return nil, err
		}
		return rel.vecs[i], nil
	}
	v, err := e.evalVec(ex, rel, nil, rel.nrows)
	if err != nil {
		return nil, err
	}
	return e.toVec(&v, rel.nrows), nil
}

// toVec materializes an evaluation result as a standalone vector.
func (e *DB) toVec(v *vres, n int) *colVec {
	if !v.isConst && v.sel == nil {
		return v.vec
	}
	out := &colVec{}
	if v.isConst {
		for k := 0; k < n; k++ {
			out.appendVal(v.c)
		}
		return out
	}
	for _, i := range v.sel {
		out.appendFrom(v.vec, int(i))
	}
	return out
}

// executeGrouped is the aggregation path: hash-group on the GROUP BY
// keys (one global group when absent, even over empty input) and fold
// each select item per group, mirroring the row engine's grouping
// order and key construction byte for byte.
func (e *DB) executeGrouped(s *sqldb.SelectStmt, rel *erel, orderExprs []sqldb.Expr) ([]string, []*colVec, []*colVec, int, error) {
	names := make([]string, len(s.Items))
	for i, it := range s.Items {
		if it.Star {
			return nil, nil, nil, 0, fmt.Errorf("sqldb: SELECT * cannot be combined with aggregation")
		}
		names[i] = sqldb.ItemName(it)
	}
	groups := make(map[string][]int32)
	var order []string
	if rel.nrows > 0 {
		gvals := make([]vres, len(s.GroupBy))
		for i, g := range s.GroupBy {
			v, err := e.evalVec(g, rel, nil, rel.nrows)
			if err != nil {
				return nil, nil, nil, 0, err
			}
			gvals[i] = v
		}
		var kb strings.Builder
		for r := 0; r < rel.nrows; r++ {
			kb.Reset()
			for i := range gvals {
				kb.WriteString(gvals[i].value(r).GroupKey())
				kb.WriteByte('|')
			}
			k := kb.String()
			if _, ok := groups[k]; !ok {
				order = append(order, k)
			}
			groups[k] = append(groups[k], int32(r))
		}
	}
	// A global aggregate over an empty input still yields one row.
	if len(groups) == 0 && len(s.GroupBy) == 0 {
		groups[""] = nil
		order = append(order, "")
	}
	vis := make([]*colVec, len(s.Items))
	for i := range vis {
		vis[i] = &colVec{}
	}
	keys := make([]*colVec, len(orderExprs))
	for i := range keys {
		keys[i] = &colVec{}
	}
	for _, k := range order {
		rows := groups[k]
		for i, it := range s.Items {
			v, err := e.evalAggregateVec(it.Expr, rel, rows)
			if err != nil {
				return nil, nil, nil, 0, err
			}
			vis[i].appendVal(v)
		}
		for i, ex := range orderExprs {
			v, err := e.evalAggregateVec(ex, rel, rows)
			if err != nil {
				return nil, nil, nil, 0, err
			}
			keys[i].appendVal(v)
		}
	}
	return names, vis, keys, len(order), nil
}
