package engine

import (
	"fmt"

	"github.com/qamarket/qamarket/internal/driver"
	"github.com/qamarket/qamarket/internal/sqldb"
)

// SelectDriver resolves a -driver flag value to a storage driver over
// the given database. "row" (or empty) is the legacy row-at-a-time
// adapter, "vector" copies the data into the columnar engine, and a
// "mock:" prefix wraps either in the fault-injecting mock. This lives
// in the engine package — not driver — because driver cannot import
// its own implementations without a cycle.
func SelectDriver(name string, db *sqldb.DB) (driver.Driver, error) {
	switch name {
	case "", "row":
		return driver.NewLegacy(db), nil
	case "vector":
		return FromDB(db), nil
	case "mock", "mock:row":
		return driver.NewMock(driver.NewLegacy(db), driver.MockConfig{}), nil
	case "mock:vector":
		return driver.NewMock(FromDB(db), driver.MockConfig{}), nil
	}
	return nil, fmt.Errorf("unknown driver %q (want row, vector, mock:row, or mock:vector)", name)
}
