package vector

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewIsZero(t *testing.T) {
	q := New(5)
	if q.Len() != 5 {
		t.Fatalf("Len = %d, want 5", q.Len())
	}
	if !q.IsZero() {
		t.Fatalf("New vector not zero: %v", q)
	}
	if !q.IsValid() {
		t.Fatalf("New vector not valid: %v", q)
	}
}

func TestAddSub(t *testing.T) {
	a := Quantity{1, 2, 3}
	b := Quantity{4, 0, 1}
	sum := a.Add(b)
	if want := (Quantity{5, 2, 4}); !sum.Equal(want) {
		t.Errorf("Add = %v, want %v", sum, want)
	}
	diff := b.Sub(a)
	if want := (Quantity{3, -2, -2}); !diff.Equal(want) {
		t.Errorf("Sub = %v, want %v", diff, want)
	}
	if diff.IsValid() {
		t.Errorf("negative diff %v reported valid", diff)
	}
	// Operands must be untouched.
	if !a.Equal(Quantity{1, 2, 3}) || !b.Equal(Quantity{4, 0, 1}) {
		t.Errorf("operands mutated: a=%v b=%v", a, b)
	}
}

func TestAddInPlace(t *testing.T) {
	a := Quantity{1, 1}
	a.AddInPlace(Quantity{2, 3})
	if want := (Quantity{3, 4}); !a.Equal(want) {
		t.Errorf("AddInPlace = %v, want %v", a, want)
	}
}

func TestDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add with mismatched dims did not panic")
		}
	}()
	Quantity{1}.Add(Quantity{1, 2})
}

func TestTotal(t *testing.T) {
	if got := (Quantity{1, 6}).Total(); got != 7 {
		t.Errorf("Total = %d, want 7", got)
	}
	if got := (Quantity{}).Total(); got != 0 {
		t.Errorf("empty Total = %d, want 0", got)
	}
}

func TestLEQ(t *testing.T) {
	d := Quantity{1, 6}
	c := Quantity{1, 1}
	if !c.LEQ(d) {
		t.Errorf("%v should be <= %v", c, d)
	}
	if d.LEQ(c) {
		t.Errorf("%v should not be <= %v", d, c)
	}
	if !d.LEQ(d) {
		t.Errorf("LEQ not reflexive on %v", d)
	}
}

func TestMin(t *testing.T) {
	got := (Quantity{3, 1, 2}).Min(Quantity{1, 4, 2})
	if want := (Quantity{1, 1, 2}); !got.Equal(want) {
		t.Errorf("Min = %v, want %v", got, want)
	}
}

func TestValue(t *testing.T) {
	q := Quantity{2, 3}
	p := Prices{1.5, 2}
	if got := q.Value(p); got != 9 {
		t.Errorf("Value = %g, want 9", got)
	}
}

func TestSumAggregates(t *testing.T) {
	// Eq. (1) example from Section 2.2: the aggregate demand of the
	// two-node system is (2, 6).
	d1 := Quantity{1, 6}
	d2 := Quantity{1, 0}
	agg := Sum([]Quantity{d1, d2})
	if want := (Quantity{2, 6}); !agg.Equal(want) {
		t.Errorf("Sum = %v, want %v", agg, want)
	}
	if Sum(nil) != nil {
		t.Error("Sum(nil) should be nil")
	}
	// Aggregation must not alias its inputs.
	agg[0] = 99
	if d1[0] == 99 {
		t.Error("Sum aliased its input")
	}
}

func TestCloneIndependence(t *testing.T) {
	q := Quantity{1, 2}
	c := q.Clone()
	c[0] = 7
	if q[0] != 1 {
		t.Error("Clone aliases original")
	}
	p := Prices{1, 2}
	cp := p.Clone()
	cp[1] = 9
	if p[1] != 2 {
		t.Error("Prices.Clone aliases original")
	}
}

func TestPricesValid(t *testing.T) {
	cases := []struct {
		p    Prices
		want bool
	}{
		{Prices{1, 2}, true},
		{Prices{0, 1}, false},
		{Prices{-1}, false},
		{Prices{math.Inf(1)}, false},
		{Prices{math.NaN()}, false},
		{NewPrices(3, 0.5), true},
	}
	for _, c := range cases {
		if got := c.p.IsValid(); got != c.want {
			t.Errorf("IsValid(%v) = %t, want %t", c.p, got, c.want)
		}
	}
}

func TestNormalize(t *testing.T) {
	p := Prices{2, 4, 1}
	p.Normalize()
	if want := (Prices{0.5, 1, 0.25}); !reflect.DeepEqual(p, want) {
		t.Errorf("Normalize = %v, want %v", p, want)
	}
	zero := Prices{0, 0}
	zero.Normalize() // must not divide by zero
	if !reflect.DeepEqual(zero, Prices{0, 0}) {
		t.Errorf("Normalize of zeros changed: %v", zero)
	}
}

func TestStringFormats(t *testing.T) {
	if got := (Quantity{1, 6}).String(); got != "(1, 6)" {
		t.Errorf("Quantity.String = %q", got)
	}
	if got := (Prices{1, 0.5}).String(); got != "(1.000, 0.500)" {
		t.Errorf("Prices.String = %q", got)
	}
}

// Property: Add is commutative and associative, with New(k) the
// identity.
func TestQuickAddProperties(t *testing.T) {
	gen := func(r *rand.Rand) Quantity {
		q := New(4)
		for i := range q {
			q[i] = r.Intn(100)
		}
		return q
	}
	cfg := &quick.Config{Values: func(vs []reflect.Value, r *rand.Rand) {
		for i := range vs {
			vs[i] = reflect.ValueOf(gen(r))
		}
	}}
	comm := func(a, b Quantity) bool { return a.Add(b).Equal(b.Add(a)) }
	if err := quick.Check(comm, cfg); err != nil {
		t.Errorf("commutativity: %v", err)
	}
	assoc := func(a, b, c Quantity) bool {
		return a.Add(b).Add(c).Equal(a.Add(b.Add(c)))
	}
	if err := quick.Check(assoc, cfg); err != nil {
		t.Errorf("associativity: %v", err)
	}
	ident := func(a Quantity) bool { return a.Add(New(4)).Equal(a) }
	if err := quick.Check(ident, cfg); err != nil {
		t.Errorf("identity: %v", err)
	}
}

// Property: Value is linear: (a+b)·p = a·p + b·p.
func TestQuickValueLinear(t *testing.T) {
	f := func(rawA, rawB [4]uint8, rawP [4]uint8) bool {
		a, b := New(4), New(4)
		p := NewPrices(4, 1)
		for i := 0; i < 4; i++ {
			a[i] = int(rawA[i])
			b[i] = int(rawB[i])
			p[i] = float64(rawP[i])/51 + 0.1
		}
		lhs := a.Add(b).Value(p)
		rhs := a.Value(p) + b.Value(p)
		return math.Abs(lhs-rhs) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Sub then Add round-trips.
func TestQuickSubAddRoundTrip(t *testing.T) {
	f := func(rawA, rawB [5]uint8) bool {
		a, b := New(5), New(5)
		for i := 0; i < 5; i++ {
			a[i] = int(rawA[i])
			b[i] = int(rawB[i])
		}
		return a.Sub(b).Add(b).Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
