// Package vector implements the vector algebra of Section 2.2 of the
// paper: demand, consumption and supply vectors over K query classes,
// together with the price vectors of Section 3.1.
//
// Demand/consumption/supply vectors live in N^K and are represented by
// Quantity. Price vectors live in R+^K and are represented by Prices.
// Both types are plain slices so callers can range over them, but all
// arithmetic helpers defensively check dimensions.
package vector

import (
	"fmt"
	"math"
	"strings"
)

// Quantity is a vector in N^K counting queries per query class, used for
// the demand (d_i), consumption (c_i) and supply (s_i) vectors of the
// paper. Entries must be non-negative.
type Quantity []int

// Prices is a virtual-value vector in R+^K assigning one price per query
// class (the p vector of Section 3.1). Entries must be positive.
type Prices []float64

// New returns a zero Quantity with k classes.
func New(k int) Quantity { return make(Quantity, k) }

// NewPrices returns a Prices vector with k classes, all set to initial.
func NewPrices(k int, initial float64) Prices {
	p := make(Prices, k)
	for i := range p {
		p[i] = initial
	}
	return p
}

// Len returns the number of query classes K.
func (q Quantity) Len() int { return len(q) }

// Clone returns an independent copy of q.
func (q Quantity) Clone() Quantity {
	c := make(Quantity, len(q))
	copy(c, q)
	return c
}

// Add returns q + r. It panics if the dimensions differ, since mixing
// vectors of different class universes is always a programming error.
func (q Quantity) Add(r Quantity) Quantity {
	mustMatch(len(q), len(r))
	out := make(Quantity, len(q))
	for i := range q {
		out[i] = q[i] + r[i]
	}
	return out
}

// Sub returns q - r. Entries may go negative; use Dominates or IsValid to
// test feasibility afterwards.
func (q Quantity) Sub(r Quantity) Quantity {
	mustMatch(len(q), len(r))
	out := make(Quantity, len(q))
	for i := range q {
		out[i] = q[i] - r[i]
	}
	return out
}

// AddInPlace adds r into q.
func (q Quantity) AddInPlace(r Quantity) {
	mustMatch(len(q), len(r))
	for i := range q {
		q[i] += r[i]
	}
}

// Total returns the total number of queries summed over all classes.
// Under the preference relation of Section 2.2 a node prefers the vector
// with the larger Total.
func (q Quantity) Total() int {
	t := 0
	for _, v := range q {
		t += v
	}
	return t
}

// IsZero reports whether every entry is zero.
func (q Quantity) IsZero() bool {
	for _, v := range q {
		if v != 0 {
			return false
		}
	}
	return true
}

// IsValid reports whether q is a well-formed element of N^K, i.e. every
// entry is non-negative.
func (q Quantity) IsValid() bool {
	for _, v := range q {
		if v < 0 {
			return false
		}
	}
	return true
}

// LEQ reports whether q <= r component-wise (the c_ik <= d_ik constraint
// of Section 2.2).
func (q Quantity) LEQ(r Quantity) bool {
	mustMatch(len(q), len(r))
	for i := range q {
		if q[i] > r[i] {
			return false
		}
	}
	return true
}

// Equal reports whether q == r component-wise.
func (q Quantity) Equal(r Quantity) bool {
	if len(q) != len(r) {
		return false
	}
	for i := range q {
		if q[i] != r[i] {
			return false
		}
	}
	return true
}

// Min returns the component-wise minimum of q and r.
func (q Quantity) Min(r Quantity) Quantity {
	mustMatch(len(q), len(r))
	out := make(Quantity, len(q))
	for i := range q {
		out[i] = min(q[i], r[i])
	}
	return out
}

// Value computes p·q, the virtual value of the vector at prices p
// (Section 3.1).
func (q Quantity) Value(p Prices) float64 {
	mustMatch(len(q), len(p))
	v := 0.0
	for i := range q {
		v += float64(q[i]) * p[i]
	}
	return v
}

// String renders q as "(a, b, c)" mirroring the paper's notation.
func (q Quantity) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range q {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d", v)
	}
	b.WriteByte(')')
	return b.String()
}

// Sum aggregates per-node vectors into the system-wide vector of eq. (1).
func Sum(vs []Quantity) Quantity {
	if len(vs) == 0 {
		return nil
	}
	out := vs[0].Clone()
	for _, v := range vs[1:] {
		out.AddInPlace(v)
	}
	return out
}

// Clone returns an independent copy of p.
func (p Prices) Clone() Prices {
	c := make(Prices, len(p))
	copy(c, p)
	return c
}

// Len returns the number of query classes K.
func (p Prices) Len() int { return len(p) }

// IsValid reports whether every price is strictly positive and finite.
// Prices in the query market are virtual but must stay in R+ for the
// first-order conditions of eq. (4) to be well defined.
func (p Prices) IsValid() bool {
	for _, v := range p {
		if v <= 0 || math.IsInf(v, 0) || math.IsNaN(v) {
			return false
		}
	}
	return true
}

// Scale multiplies every price by f in place.
func (p Prices) Scale(f float64) {
	for i := range p {
		p[i] *= f
	}
}

// Normalize rescales p so that its maximum entry is 1. Equilibrium in the
// query market is invariant to a common positive rescaling of all prices
// (only relative prices drive the supply solver), so normalising keeps
// the non-tâtonnement recursion numerically stable over long runs.
func (p Prices) Normalize() {
	maxP := 0.0
	for _, v := range p {
		if v > maxP {
			maxP = v
		}
	}
	if maxP <= 0 {
		return
	}
	p.Scale(1 / maxP)
}

// String renders p with three decimals.
func (p Prices) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range p {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%.3f", v)
	}
	b.WriteByte(')')
	return b.String()
}

func mustMatch(a, b int) {
	if a != b {
		panic(fmt.Sprintf("vector: dimension mismatch %d vs %d", a, b))
	}
}
