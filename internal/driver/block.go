package driver

import (
	"errors"
	"fmt"

	"github.com/qamarket/qamarket/internal/sqldb"
)

// Per-row kind bytes. These are the same bytes the cluster's binary
// frame lane puts on the wire (and the JSON columnar encoding puts in
// its kind strings), so a driver-produced block serializes without any
// re-tagging.
const (
	KindByteNull  = 'n'
	KindByteInt   = 'i'
	KindByteFloat = 'f'
	KindByteText  = 's'
	KindByteBool  = 'b'
)

// ErrMalformed reports a column block whose typed arrays disagree with
// its kind bytes.
var ErrMalformed = errors.New("driver: malformed column block")

// Col is one column of a block: the per-row kind bytes plus the typed
// values of each kind in row order, all backed by buffers the owning
// Block reuses batch to batch.
type Col struct {
	Kinds  []byte
	Ints   []int64
	Floats []float64
	Texts  []string
	Bools  []bool
}

// Block is a typed columnar result set (or one batch of one): per-row
// kind bytes plus densely packed typed arrays per column. It is the
// unit drivers produce and the frame lane serializes with zero
// transposition. Reusing a block (decode, FillFromRows) overwrites its
// buffers in place, so a steady-state stream allocates only the
// per-batch text blobs; callers that retain values across batches must
// copy them out.
type Block struct {
	Columns []string
	Rows    int
	Cols    []Col
}

// Reset empties the block, keeping its buffers for reuse.
func (b *Block) Reset() {
	b.Columns = b.Columns[:0]
	b.Rows = 0
	b.Cols = b.Cols[:0]
}

// AppendRows materializes the block's rows onto dst, keeping one typed-
// array cursor per column so the walk is linear in cells. It allocates
// one backing cell array and one cursor array per call (the accumulate
// path; streaming consumers read the columns directly and allocate
// nothing).
func (b *Block) AppendRows(dst []sqldb.Row) ([]sqldb.Row, error) {
	ncols := len(b.Cols)
	if b.Rows == 0 || ncols == 0 {
		return dst, nil
	}
	type colCursor struct{ ints, floats, texts, bools int }
	curs := make([]colCursor, ncols)
	cells := make([]sqldb.Value, b.Rows*ncols)
	for i := 0; i < b.Rows; i++ {
		row := cells[:ncols:ncols]
		cells = cells[ncols:]
		for j := 0; j < ncols; j++ {
			col := &b.Cols[j]
			if i >= len(col.Kinds) {
				return dst, fmt.Errorf("%w: row %d beyond kinds", ErrMalformed, i)
			}
			cur := &curs[j]
			switch col.Kinds[i] {
			case KindByteNull:
				row[j] = sqldb.Null
			case KindByteInt:
				if cur.ints >= len(col.Ints) {
					return dst, fmt.Errorf("%w: column %d int underflow", ErrMalformed, j)
				}
				row[j] = sqldb.NewInt(col.Ints[cur.ints])
				cur.ints++
			case KindByteFloat:
				if cur.floats >= len(col.Floats) {
					return dst, fmt.Errorf("%w: column %d float underflow", ErrMalformed, j)
				}
				row[j] = sqldb.NewFloat(col.Floats[cur.floats])
				cur.floats++
			case KindByteText:
				if cur.texts >= len(col.Texts) {
					return dst, fmt.Errorf("%w: column %d text underflow", ErrMalformed, j)
				}
				row[j] = sqldb.NewText(col.Texts[cur.texts])
				cur.texts++
			case KindByteBool:
				if cur.bools >= len(col.Bools) {
					return dst, fmt.Errorf("%w: column %d bool underflow", ErrMalformed, j)
				}
				row[j] = sqldb.NewBool(col.Bools[cur.bools])
				cur.bools++
			default:
				return dst, fmt.Errorf("%w: kind %q", ErrMalformed, col.Kinds[i])
			}
		}
		dst = append(dst, row)
	}
	return dst, nil
}

// Value reads one cell. It re-derives the typed-array index by scanning
// the kind prefix, so it is for tests, spot reads, and small blocks;
// AppendRows keeps per-column counters instead.
func (b *Block) Value(i, j int) (sqldb.Value, error) {
	col := &b.Cols[j]
	if i >= len(col.Kinds) {
		return sqldb.Null, fmt.Errorf("%w: row %d beyond kinds", ErrMalformed, i)
	}
	idx := 0
	k := col.Kinds[i]
	for r := 0; r < i; r++ {
		if col.Kinds[r] == k {
			idx++
		}
	}
	switch k {
	case KindByteNull:
		return sqldb.Null, nil
	case KindByteInt:
		return sqldb.NewInt(col.Ints[idx]), nil
	case KindByteFloat:
		return sqldb.NewFloat(col.Floats[idx]), nil
	case KindByteText:
		return sqldb.NewText(col.Texts[idx]), nil
	case KindByteBool:
		return sqldb.NewBool(col.Bools[idx]), nil
	}
	return sqldb.Null, fmt.Errorf("%w: kind %q", ErrMalformed, k)
}

// Drop discards the block's first k rows in place, trimming each typed
// array by however many of its values the dropped kind bytes consumed.
// The cluster's resume path uses it when a dedup replay overlaps rows a
// previous attempt already delivered.
func (b *Block) Drop(k int) {
	if k <= 0 {
		return
	}
	if k > b.Rows {
		k = b.Rows
	}
	for j := range b.Cols {
		col := &b.Cols[j]
		ni, nf, ns, nb := countKinds(col.Kinds[:k])
		col.Kinds = col.Kinds[k:]
		col.Ints = col.Ints[ni:]
		col.Floats = col.Floats[nf:]
		col.Texts = col.Texts[ns:]
		col.Bools = col.Bools[nb:]
	}
	b.Rows -= k
}

// Truncate keeps only the block's first n rows, trimming each typed
// array to the values those rows consume. The mock driver's
// partial-batch fault uses it.
func (b *Block) Truncate(n int) {
	if n < 0 {
		n = 0
	}
	if n >= b.Rows {
		return
	}
	for j := range b.Cols {
		col := &b.Cols[j]
		ni, nf, ns, nb := countKinds(col.Kinds[:n])
		col.Kinds = col.Kinds[:n]
		col.Ints = col.Ints[:ni]
		col.Floats = col.Floats[:nf]
		col.Texts = col.Texts[:ns]
		col.Bools = col.Bools[:nb]
	}
	b.Rows = n
}

// countKinds tallies how many values of each typed array a run of kind
// bytes consumes.
func countKinds(kinds []byte) (ni, nf, ns, nb int) {
	for _, k := range kinds {
		switch k {
		case KindByteInt:
			ni++
		case KindByteFloat:
			nf++
		case KindByteText:
			ns++
		case KindByteBool:
			nb++
		}
	}
	return
}

// FillFromRows loads already-materialized rows into the block, reusing
// its buffers — the transposition bridge for row-producing sources (the
// legacy driver, the cluster's JSON downgrade path). Cells beyond a
// short row encode as NULL, matching the row wire encoding.
func (b *Block) FillFromRows(columns []string, rows []sqldb.Row) {
	b.Columns = append(b.Columns[:0], columns...)
	b.Rows = len(rows)
	ncols := len(columns)
	if cap(b.Cols) < ncols {
		b.Cols = make([]Col, ncols)
	}
	b.Cols = b.Cols[:ncols]
	for j := range b.Cols {
		col := &b.Cols[j]
		col.Kinds = col.Kinds[:0]
		col.Ints = col.Ints[:0]
		col.Floats = col.Floats[:0]
		col.Texts = col.Texts[:0]
		col.Bools = col.Bools[:0]
		for _, row := range rows {
			if j >= len(row) {
				col.Kinds = append(col.Kinds, KindByteNull)
				continue
			}
			v := row[j]
			switch v.Kind {
			case sqldb.KindInt:
				col.Kinds = append(col.Kinds, KindByteInt)
				col.Ints = append(col.Ints, v.Int)
			case sqldb.KindFloat:
				col.Kinds = append(col.Kinds, KindByteFloat)
				col.Floats = append(col.Floats, v.Float)
			case sqldb.KindText:
				col.Kinds = append(col.Kinds, KindByteText)
				col.Texts = append(col.Texts, v.Str)
			case sqldb.KindBool:
				col.Kinds = append(col.Kinds, KindByteBool)
				col.Bools = append(col.Bools, v.Bool)
			default:
				col.Kinds = append(col.Kinds, KindByteNull)
			}
		}
	}
}

// FromResult transposes a row-engine result into a fresh block.
func FromResult(res *sqldb.Result) *Block {
	b := &Block{}
	b.FillFromRows(res.Columns, res.Rows)
	return b
}

// Cursor tracks a sequential batch walk over a block: the next row to
// emit plus per-column typed-array offsets. The zero value starts at
// row 0.
type Cursor struct {
	Row  int
	offs []colOffsets
}

type colOffsets struct{ ints, floats, texts, bools int }

// NextBatch slices the next up-to-maxRows rows of b into out as
// subslices of b's arrays — no values are copied, so the only cost is
// the kind-byte scan that finds each typed array's split point. It
// returns false when the cursor is exhausted (out is left untouched).
// The batch aliases b: it is valid until b's buffers are reused. The
// block must be well-formed (driver-produced or decode-validated).
func (b *Block) NextBatch(cur *Cursor, maxRows int, out *Block) bool {
	if cur.Row >= b.Rows || maxRows <= 0 {
		return false
	}
	ncols := len(b.Cols)
	if cur.Row == 0 || cap(cur.offs) < ncols {
		if cap(cur.offs) < ncols {
			cur.offs = make([]colOffsets, ncols)
		}
		cur.offs = cur.offs[:ncols]
		for j := range cur.offs {
			cur.offs[j] = colOffsets{}
		}
	}
	n := b.Rows - cur.Row
	if n > maxRows {
		n = maxRows
	}
	out.Columns = append(out.Columns[:0], b.Columns...)
	out.Rows = n
	if cap(out.Cols) < ncols {
		out.Cols = make([]Col, ncols)
	}
	out.Cols = out.Cols[:ncols]
	for j := range b.Cols {
		col := &b.Cols[j]
		off := &cur.offs[j]
		kinds := col.Kinds[cur.Row : cur.Row+n]
		ni, nf, ns, nb := countKinds(kinds)
		out.Cols[j] = Col{
			Kinds:  kinds,
			Ints:   col.Ints[off.ints : off.ints+ni],
			Floats: col.Floats[off.floats : off.floats+nf],
			Texts:  col.Texts[off.texts : off.texts+ns],
			Bools:  col.Bools[off.bools : off.bools+nb],
		}
		off.ints += ni
		off.floats += nf
		off.texts += ns
		off.bools += nb
	}
	cur.Row += n
	return true
}
