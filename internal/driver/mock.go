package driver

import (
	"errors"
	"strings"
	"sync/atomic"
	"time"
)

// ErrInjected is the error the mock driver's fault knobs return;
// injectable wrappers compose messages onto it so tests can errors.Is.
var ErrInjected = errors.New("driver: injected fault")

// MockConfig holds the mock driver's fault knobs. The zero value
// injects nothing (a transparent proxy). The knobs compose with
// faultnet's transport faults: faultnet breaks the wire, Mock breaks
// the engine behind an otherwise healthy wire — the failure class the
// cluster must classify as fatal-not-retriable (a deterministic engine
// error) or absorb via dedup (a slow engine under client retransmit).
type MockConfig struct {
	// ExecDelay is added to every Execute before the inner engine runs,
	// modeling a slow backend.
	ExecDelay time.Duration
	// FailNext, while positive, makes Execute return ErrInjected and
	// decrement; queued faults burn off one per execution.
	FailNext int
	// FailMatch restricts FailNext to statements containing the
	// substring; non-matching statements pass through without consuming
	// a queued fault.
	FailMatch string
	// TruncateRows, when positive, truncates every result block to at
	// most this many rows — the partial-batch fault.
	TruncateRows int
}

// Mock wraps any driver with configurable faults for tests and smoke
// binaries. Fault state is safe for concurrent use.
type Mock struct {
	inner Driver
	cfg   MockConfig

	failNext atomic.Int64
	execs    atomic.Int64
}

// NewMock wraps inner with the given fault knobs.
func NewMock(inner Driver, cfg MockConfig) *Mock {
	m := &Mock{inner: inner, cfg: cfg}
	m.failNext.Store(int64(cfg.FailNext))
	return m
}

// Executions reports how many Execute calls reached the inner engine —
// the counter executed-once assertions read.
func (m *Mock) Executions() int64 { return m.execs.Load() }

// FailNextExec queues n injected Execute failures.
func (m *Mock) FailNextExec(n int) { m.failNext.Store(int64(n)) }

// Name reports the inner executor behind a "mock:" prefix, so a
// gossip-advertised fault node is recognizable in member listings.
func (m *Mock) Name() string { return "mock:" + m.inner.Name() }

func (m *Mock) Tables() []string             { return m.inner.Tables() }
func (m *Mock) Views() []string              { return m.inner.Views() }
func (m *Mock) HasRelation(name string) bool { return m.inner.HasRelation(name) }
func (m *Mock) Exec(sql string) (int, error) { return m.inner.Exec(sql) }

// Prepare plans through the inner driver; faults fire at Execute, after
// negotiation has already priced the statement, which is where a real
// backend fails too.
func (m *Mock) Prepare(sql string) (Statement, error) {
	inner, err := m.inner.Prepare(sql)
	if err != nil {
		return nil, err
	}
	return &mockStmt{m: m, sql: sql, inner: inner}, nil
}

type mockStmt struct {
	m     *Mock
	sql   string
	inner Statement
}

func (s *mockStmt) Hints() CostHints { return s.inner.Hints() }

func (s *mockStmt) Execute() (*Block, error) {
	m := s.m
	if m.cfg.ExecDelay > 0 {
		time.Sleep(m.cfg.ExecDelay)
	}
	if m.cfg.FailMatch == "" || strings.Contains(s.sql, m.cfg.FailMatch) {
		if n := m.failNext.Load(); n > 0 && m.failNext.CompareAndSwap(n, n-1) {
			return nil, ErrInjected
		}
	}
	blk, err := s.inner.Execute()
	if err != nil {
		return nil, err
	}
	m.execs.Add(1)
	if m.cfg.TruncateRows > 0 {
		blk.Truncate(m.cfg.TruncateRows)
	}
	return blk, nil
}
