// Package driver is the storage-driver seam between the federation
// server (internal/cluster) and whatever engine executes its queries.
// The paper's deployment story is a federation of *autonomous* DBMSs:
// each qanode is a pricing front-end, and the engine behind it is an
// implementation detail the market must not see. This package defines
// the narrow contract that makes that true — prepare a statement, read
// its cost hints, execute it into typed column blocks — plus the two
// shipped backends' shared plumbing (the legacy row adapter and the
// fault-injecting mock; the vectorized columnar engine lives in
// internal/engine).
//
// Every driver must agree with the reference engine (internal/sqldb)
// cell-for-cell: the differential harness in difftest runs randomized
// queries through a candidate and the reference and asserts identical
// results, and drivertest holds the conformance suite any new backend
// must pass.
package driver

import (
	"fmt"
	"strings"
)

// CostHints is a prepared statement's contribution to the QA-NT cost
// model: the plan signature that names the query's class (the key of
// per-class prices and of the past-execution EMA history) and the
// plan-derived cost split the node scales by its I/O and CPU slowdown
// factors. Every driver prices through sqldb.PlanSelectOn against its
// own catalog, so two backends holding the same data report
// byte-identical signatures and costs — the property that keeps a mixed
// row/vectorized federation's market classes coherent.
type CostHints struct {
	// Signature is the plan-shape signature (sqldb.Plan.Signature).
	Signature string
	// IOCost is the scan-leaf portion of the plan cost.
	IOCost float64
	// CPUCost is the non-scan portion (joins, grouping, sorting).
	CPUCost float64
	// EstRows is the plan's estimated output cardinality.
	EstRows float64
}

// Statement is one prepared query. Prepare separates planning (cost
// hints for negotiation) from execution, mirroring the paper's
// EXPLAIN-then-execute lifecycle: a node prices thousands of CFPs per
// query it actually runs.
type Statement interface {
	// Hints reports the statement's cost estimate for the market layer.
	Hints() CostHints
	// Execute runs the statement and returns its full result as one
	// column block. The block is owned by the caller; drivers must not
	// reuse its buffers for a later Execute. Batch-at-a-time consumers
	// slice it with Block.NextBatch, which is how the cluster's frame
	// lane streams a result without ever materializing rows.
	Execute() (*Block, error)
}

// Driver is one storage backend behind a federation node. The surface
// is deliberately narrow: the catalog views the gossip layer advertises
// (Tables/Views/HasRelation), DDL/DML ingestion (Exec), and the
// prepare/execute query path. Everything else — pricing, deadlines,
// dedup, wire encoding — lives above the seam and is identical across
// backends.
type Driver interface {
	// Name identifies the backend ("row", "vector", "mock:..."); it is
	// advertised in gossip next to the catalog digest so operators can
	// see which executor answers for each node.
	Name() string
	// Tables lists base-table names, sorted.
	Tables() []string
	// Views lists view names, sorted.
	Views() []string
	// HasRelation reports whether name is a table or view here.
	HasRelation(name string) bool
	// Exec parses and executes one statement (DDL, DML, or a SELECT
	// whose rows are discarded), returning the number of rows affected.
	Exec(sql string) (int, error)
	// Prepare plans one SELECT (or EXPLAIN SELECT) without running it.
	Prepare(sql string) (Statement, error)
}

// ExecScript executes a ';'-separated statement sequence against any
// driver — the driver-generic analogue of sqldb.ExecScript, sharing its
// format (qanode -init files): empty statements and line comments are
// skipped, errors report the 1-based statement index, and the total
// DML-affected row count is returned.
func ExecScript(d Driver, script string) (int, error) {
	total := 0
	idx := 0
	for _, stmt := range strings.Split(script, ";") {
		stmt = strings.TrimSpace(stmt)
		if stmt == "" || isOnlyComments(stmt) {
			continue
		}
		idx++
		n, err := d.Exec(stmt)
		if err != nil {
			return total, fmt.Errorf("driver: script statement %d: %w", idx, err)
		}
		total += n
	}
	return total, nil
}

// isOnlyComments reports whether every line is blank or a -- comment.
func isOnlyComments(s string) bool {
	for _, line := range strings.Split(s, "\n") {
		line = strings.TrimSpace(line)
		if line != "" && !strings.HasPrefix(line, "--") {
			return false
		}
	}
	return true
}
