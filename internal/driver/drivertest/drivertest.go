// Package drivertest is the conformance suite every storage driver must
// pass: it pins the contract internal/cluster relies on — schema
// introspection, DDL/DML row counts, Prepare cost hints, block shape,
// and the exact sentinel errors for non-SELECT statements — so a new
// backend can prove itself without spinning up a federation.
package drivertest

import (
	"strings"
	"testing"

	"github.com/qamarket/qamarket/internal/driver"
)

// Run exercises one driver implementation against the driver contract.
// open must return a fresh, empty driver on every call.
func Run(t *testing.T, name string, open func() driver.Driver) {
	t.Helper()
	t.Run(name+"/name", func(t *testing.T) {
		if open().Name() == "" {
			t.Fatal("driver must report a non-empty executor name")
		}
	})
	t.Run(name+"/schema", testSchema(open))
	t.Run(name+"/dml", testDML(open))
	t.Run(name+"/prepare", testPrepare(open))
	t.Run(name+"/block", testBlock(open))
	t.Run(name+"/errors", testErrors(open))
	t.Run(name+"/script", testScript(open))
}

func seed(t *testing.T, d driver.Driver) {
	t.Helper()
	script := `CREATE TABLE items (id INT, label TEXT, price FLOAT, live BOOL);
		INSERT INTO items VALUES (1, 'apple', 1.25, TRUE), (2, 'banana', 0.5, FALSE), (3, NULL, 2.0, TRUE);
		CREATE VIEW cheap AS SELECT id, label FROM items WHERE price < 1.5;
		CREATE INDEX items_id ON items (id)`
	if _, err := driver.ExecScript(d, script); err != nil {
		t.Fatalf("seed: %v", err)
	}
}

func testSchema(open func() driver.Driver) func(*testing.T) {
	return func(t *testing.T) {
		d := open()
		seed(t, d)
		tables, views := d.Tables(), d.Views()
		if len(tables) != 1 || tables[0] != "items" {
			t.Fatalf("Tables() = %v, want [items]", tables)
		}
		if len(views) != 1 || views[0] != "cheap" {
			t.Fatalf("Views() = %v, want [cheap]", views)
		}
		for _, rel := range []string{"items", "cheap"} {
			if !d.HasRelation(rel) {
				t.Fatalf("HasRelation(%q) = false", rel)
			}
		}
		if d.HasRelation("nothere") {
			t.Fatal("HasRelation reports a relation that was never created")
		}
		// Tables/Views must come back sorted: the catalog digest hashes
		// them in order, and two nodes with the same relations must agree.
		if strings.Join(tables, ",") != sortedJoin(tables) ||
			strings.Join(views, ",") != sortedJoin(views) {
			t.Fatalf("catalog listings must be sorted: tables=%v views=%v", tables, views)
		}
	}
}

func sortedJoin(in []string) string {
	cp := append([]string(nil), in...)
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	return strings.Join(cp, ",")
}

func testDML(open func() driver.Driver) func(*testing.T) {
	return func(t *testing.T) {
		d := open()
		seed(t, d)
		if n, err := d.Exec("INSERT INTO items VALUES (4, 'date', 3.0, TRUE)"); err != nil || n != 1 {
			t.Fatalf("insert: n=%d err=%v", n, err)
		}
		if n, err := d.Exec("UPDATE items SET price = price * 2 WHERE live = TRUE"); err != nil || n != 3 {
			t.Fatalf("update: n=%d err=%v", n, err)
		}
		if n, err := d.Exec("DELETE FROM items WHERE id = 2"); err != nil || n != 1 {
			t.Fatalf("delete: n=%d err=%v", n, err)
		}
		blk := mustQuery(t, d, "SELECT COUNT(*) FROM items")
		v, err := blk.Value(0, 0)
		if err != nil || v.Int != 3 {
			t.Fatalf("count after DML = %v (err %v), want 3", v, err)
		}
	}
}

func testPrepare(open func() driver.Driver) func(*testing.T) {
	return func(t *testing.T) {
		d := open()
		seed(t, d)
		st, err := d.Prepare("SELECT id, price FROM items WHERE price > 1.0 ORDER BY id")
		if err != nil {
			t.Fatalf("Prepare: %v", err)
		}
		h := st.Hints()
		if h.Signature == "" {
			t.Fatal("Hints().Signature must identify the plan shape")
		}
		if h.EstRows <= 0 || h.IOCost < 0 || h.CPUCost < 0 {
			t.Fatalf("implausible cost hints: %+v", h)
		}
		blk, err := st.Execute()
		if err != nil {
			t.Fatalf("Execute: %v", err)
		}
		if blk.Rows != 2 || len(blk.Columns) != 2 {
			t.Fatalf("block = %d rows x %v, want 2 x [id price]", blk.Rows, blk.Columns)
		}
		// A prepared statement is reusable: planning once, executing twice.
		blk2, err := st.Execute()
		if err != nil || blk2.Rows != blk.Rows {
			t.Fatalf("re-Execute: rows=%d err=%v", blk2.Rows, err)
		}
		// EXPLAIN prepares too (the negotiation path plans without running).
		if _, err := d.Prepare("EXPLAIN SELECT id FROM items"); err != nil {
			t.Fatalf("Prepare(EXPLAIN): %v", err)
		}
	}
}

func testBlock(open func() driver.Driver) func(*testing.T) {
	return func(t *testing.T) {
		d := open()
		seed(t, d)
		blk := mustQuery(t, d, "SELECT id, label, price, live FROM items ORDER BY id")
		if blk.Rows != 3 || len(blk.Cols) != 4 {
			t.Fatalf("block = %d rows x %d cols", blk.Rows, len(blk.Cols))
		}
		// Kinds must cover every row of every column.
		for j, col := range blk.Cols {
			if len(col.Kinds) != blk.Rows {
				t.Fatalf("col %d: %d kind bytes for %d rows", j, len(col.Kinds), blk.Rows)
			}
		}
		// NULL must round-trip as a kind byte, not a zero value.
		v, err := blk.Value(2, 1)
		if err != nil || !v.IsNull() {
			t.Fatalf("row 2 label = %v (err %v), want NULL", v, err)
		}
		// AppendRows must rebuild exactly Rows rows.
		rows, err := blk.AppendRows(nil)
		if err != nil || len(rows) != 3 {
			t.Fatalf("AppendRows: %d rows, err %v", len(rows), err)
		}
		if rows[0][0].Int != 1 || rows[1][2].Float != 0.5 || rows[0][3].Bool != true {
			t.Fatalf("AppendRows content mismatch: %v", rows)
		}
	}
}

func testErrors(open func() driver.Driver) func(*testing.T) {
	return func(t *testing.T) {
		d := open()
		seed(t, d)
		if _, err := d.Prepare("DELETE FROM items"); err == nil ||
			!strings.Contains(err.Error(), "requires a SELECT") {
			t.Fatalf("Prepare(non-SELECT) = %v, want 'requires a SELECT'", err)
		}
		if _, err := d.Prepare("SELECT FROM"); err == nil {
			t.Fatal("Prepare must surface parse errors")
		}
		if _, err := d.Exec("INSERT INTO missing VALUES (1)"); err == nil {
			t.Fatal("Exec against a missing table must error")
		}
		if _, err := d.Prepare("SELECT zzz FROM items"); err != nil {
			// Planning does not resolve columns; execution must.
			t.Fatalf("Prepare plans without resolving columns, got %v", err)
		} else if st, _ := d.Prepare("SELECT zzz FROM items"); st != nil {
			if _, err := st.Execute(); err == nil ||
				!strings.Contains(err.Error(), "unknown column") {
				t.Fatalf("Execute(unknown column) = %v", err)
			}
		}
	}
}

func testScript(open func() driver.Driver) func(*testing.T) {
	return func(t *testing.T) {
		d := open()
		n, err := driver.ExecScript(d, `-- comment only
			CREATE TABLE s (a INT);
			INSERT INTO s VALUES (1), (2);
			`)
		if err != nil || n != 2 {
			t.Fatalf("ExecScript: n=%d err=%v", n, err)
		}
		if _, err := driver.ExecScript(d, "INSERT INTO s VALUES (3); BOGUS"); err == nil ||
			!strings.Contains(err.Error(), "script statement 2") {
			t.Fatalf("ExecScript error = %v, want statement-indexed error", err)
		}
	}
}

func mustQuery(t *testing.T, d driver.Driver, sql string) *driver.Block {
	t.Helper()
	st, err := d.Prepare(sql)
	if err != nil {
		t.Fatalf("Prepare(%q): %v", sql, err)
	}
	blk, err := st.Execute()
	if err != nil {
		t.Fatalf("Execute(%q): %v", sql, err)
	}
	return blk
}
