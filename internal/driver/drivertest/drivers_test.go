package drivertest

import (
	"testing"

	"github.com/qamarket/qamarket/internal/driver"
	"github.com/qamarket/qamarket/internal/engine"
	"github.com/qamarket/qamarket/internal/sqldb"
)

// Every in-tree driver passes the same conformance suite.

func TestLegacyDriverConformance(t *testing.T) {
	Run(t, "row", func() driver.Driver { return driver.NewLegacy(sqldb.Open()) })
}

func TestVectorDriverConformance(t *testing.T) {
	Run(t, "vector", func() driver.Driver { return engine.Open() })
}

func TestMockDriverConformance(t *testing.T) {
	// A transparent mock (no fault knobs set) must be indistinguishable
	// from its inner driver, apart from the name prefix.
	Run(t, "mock", func() driver.Driver {
		return driver.NewMock(driver.NewLegacy(sqldb.Open()), driver.MockConfig{})
	})
}
