// Package difftest is the differential oracle for the vectorized
// executor: the same randomized SQL runs against the row engine and the
// columnar engine over identical data, and every result must match row
// for row, byte for byte. Both engines order deterministically (stable
// sorts over identical scan orders), so comparison is positional — a
// stronger check than set equality.
package difftest

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"github.com/qamarket/qamarket/internal/driver"
	"github.com/qamarket/qamarket/internal/engine"
	"github.com/qamarket/qamarket/internal/sqldb"
)

const (
	seed      = 0x9a9a
	nQueries  = 1200
	t1Rows    = 180
	t2Rows    = 40
	maxErrPct = 60 // sanity: generator must mostly produce runnable SQL
)

// buildDataset returns the DDL+DML script both engines load. Values are
// drawn from small domains so joins hit, filters select partially, and
// NULLs appear in every column type.
func buildDataset(rng *rand.Rand) string {
	var sb strings.Builder
	sb.WriteString("CREATE TABLE t1 (a INT, b FLOAT, c TEXT, d BOOL);\n")
	sb.WriteString("CREATE TABLE t2 (k INT, e TEXT, f FLOAT);\n")
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}
	sb.WriteString("INSERT INTO t1 VALUES\n")
	for i := 0; i < t1Rows; i++ {
		if i > 0 {
			sb.WriteString(",\n")
		}
		a := lit(rng, func() string { return strconv.Itoa(rng.Intn(20) - 3) })
		b := lit(rng, func() string { return strconv.FormatFloat(float64(rng.Intn(4000))/100-5, 'f', 2, 64) })
		c := lit(rng, func() string { return "'" + words[rng.Intn(len(words))] + "'" })
		d := lit(rng, func() string {
			if rng.Intn(2) == 0 {
				return "TRUE"
			}
			return "FALSE"
		})
		fmt.Fprintf(&sb, "(%s, %s, %s, %s)", a, b, c, d)
	}
	sb.WriteString(";\n")
	sb.WriteString("INSERT INTO t2 VALUES\n")
	for i := 0; i < t2Rows; i++ {
		if i > 0 {
			sb.WriteString(",\n")
		}
		k := lit(rng, func() string { return strconv.Itoa(rng.Intn(20) - 3) })
		e := lit(rng, func() string { return "'" + words[rng.Intn(len(words))] + "'" })
		f := lit(rng, func() string { return strconv.FormatFloat(float64(rng.Intn(1000))/10, 'f', 1, 64) })
		fmt.Fprintf(&sb, "(%s, %s, %s)", k, e, f)
	}
	sb.WriteString(";\n")
	sb.WriteString("CREATE INDEX t1_a ON t1 (a);\n")
	sb.WriteString("CREATE VIEW v1 AS SELECT a, b FROM t1 WHERE d = TRUE\n")
	return sb.String()
}

// lit emits NULL one time in ten, otherwise the generated literal.
func lit(rng *rand.Rand, gen func() string) string {
	if rng.Intn(10) == 0 {
		return "NULL"
	}
	return gen()
}

// qgen builds random SELECTs over the fixed schema.
type qgen struct {
	rng    *rand.Rand
	joined bool // t2 in scope for this query
}

func (g *qgen) column() string {
	t1cols := []string{"t1.a", "t1.b", "t1.c", "t1.d"}
	t2cols := []string{"t2.k", "t2.e", "t2.f"}
	if g.joined && g.rng.Intn(3) == 0 {
		return t2cols[g.rng.Intn(len(t2cols))]
	}
	return t1cols[g.rng.Intn(len(t1cols))]
}

func (g *qgen) numColumn() string {
	cols := []string{"t1.a", "t1.b"}
	if g.joined {
		cols = append(cols, "t2.k", "t2.f")
	}
	return cols[g.rng.Intn(len(cols))]
}

func (g *qgen) literal() string {
	switch g.rng.Intn(4) {
	case 0:
		return strconv.Itoa(g.rng.Intn(20) - 3)
	case 1:
		return strconv.FormatFloat(float64(g.rng.Intn(400))/10-5, 'f', 1, 64)
	case 2:
		return "'" + []string{"alpha", "beta", "gamma", "zeta"}[g.rng.Intn(4)] + "'"
	default:
		return "NULL"
	}
}

// scalar emits a scalar expression of bounded depth.
func (g *qgen) scalar(depth int) string {
	if depth <= 0 || g.rng.Intn(3) == 0 {
		if g.rng.Intn(3) == 0 {
			return g.literal()
		}
		return g.column()
	}
	switch g.rng.Intn(4) {
	case 0:
		return fmt.Sprintf("(%s %s %s)", g.scalar(depth-1),
			[]string{"+", "-", "*", "/"}[g.rng.Intn(4)], g.scalar(depth-1))
	case 1:
		return "(-" + g.numColumn() + ")"
	default:
		return g.column()
	}
}

// predicate emits a boolean expression of bounded depth covering every
// comparison and predicate form the parser accepts.
func (g *qgen) predicate(depth int) string {
	if depth <= 0 || g.rng.Intn(3) == 0 {
		switch g.rng.Intn(6) {
		case 0:
			return fmt.Sprintf("%s %s %s", g.column(),
				[]string{"=", "<>", "<", "<=", ">", ">="}[g.rng.Intn(6)], g.literal())
		case 1:
			return fmt.Sprintf("%s %s %s", g.numColumn(),
				[]string{"<", ">", "="}[g.rng.Intn(3)], g.numColumn())
		case 2:
			neg := ""
			if g.rng.Intn(3) == 0 {
				neg = "NOT "
			}
			return fmt.Sprintf("%s %sIN (%s, %s, %s)", g.column(), neg,
				g.literal(), g.literal(), g.literal())
		case 3:
			neg := ""
			if g.rng.Intn(3) == 0 {
				neg = "NOT "
			}
			lo := g.rng.Intn(10) - 3
			return fmt.Sprintf("%s %sBETWEEN %d AND %d", g.numColumn(), neg, lo, lo+g.rng.Intn(8))
		case 4:
			pat := []string{"'%a%'", "'b%'", "'%ta'", "'_e%'"}[g.rng.Intn(4)]
			neg := ""
			if g.rng.Intn(3) == 0 {
				neg = "NOT "
			}
			col := "t1.c"
			if g.joined && g.rng.Intn(2) == 0 {
				col = "t2.e"
			}
			return fmt.Sprintf("%s %sLIKE %s", col, neg, pat)
		default:
			neg := ""
			if g.rng.Intn(2) == 0 {
				neg = " NOT"
			}
			return fmt.Sprintf("%s IS%s NULL", g.column(), neg)
		}
	}
	switch g.rng.Intn(3) {
	case 0:
		return fmt.Sprintf("(%s AND %s)", g.predicate(depth-1), g.predicate(depth-1))
	case 1:
		return fmt.Sprintf("(%s OR %s)", g.predicate(depth-1), g.predicate(depth-1))
	default:
		return "NOT (" + g.predicate(depth-1) + ")"
	}
}

func (g *qgen) aggregate() string {
	fn := []string{"COUNT", "SUM", "AVG", "MIN", "MAX"}[g.rng.Intn(5)]
	if fn == "COUNT" && g.rng.Intn(2) == 0 {
		return "COUNT(*)"
	}
	if fn == "SUM" || fn == "AVG" {
		return fmt.Sprintf("%s(%s)", fn, g.numColumn())
	}
	return fmt.Sprintf("%s(%s)", fn, g.column())
}

// query emits one full SELECT.
func (g *qgen) query() string {
	g.joined = g.rng.Intn(3) == 0
	var sb strings.Builder
	sb.WriteString("SELECT ")
	if g.rng.Intn(5) == 0 {
		sb.WriteString("DISTINCT ")
	}
	grouped := g.rng.Intn(4) == 0
	var groupCols []string
	if grouped {
		for i := 0; i < 1+g.rng.Intn(2); i++ {
			groupCols = append(groupCols, g.column())
		}
	}
	var items []string
	switch {
	case grouped:
		items = append(items, groupCols...)
		for i := 0; i < 1+g.rng.Intn(2); i++ {
			items = append(items, g.aggregate())
		}
	case g.rng.Intn(6) == 0 && !g.joined:
		items = append(items, "*")
	default:
		n := 1 + g.rng.Intn(3)
		for i := 0; i < n; i++ {
			it := g.scalar(2)
			if g.rng.Intn(4) == 0 {
				it += fmt.Sprintf(" AS x%d", i)
			}
			items = append(items, it)
		}
	}
	sb.WriteString(strings.Join(items, ", "))
	if g.joined {
		sb.WriteString(" FROM t1 JOIN t2 ON t1.a = t2.k")
	} else if g.rng.Intn(8) == 0 {
		// Exercise the view path; v1 exposes only a and b.
		return g.viewQuery()
	} else {
		sb.WriteString(" FROM t1")
	}
	if g.rng.Intn(10) != 0 {
		sb.WriteString(" WHERE " + g.predicate(2))
	}
	if grouped {
		sb.WriteString(" GROUP BY " + strings.Join(groupCols, ", "))
	}
	if g.rng.Intn(2) == 0 {
		var keys []string
		for i := 0; i < 1+g.rng.Intn(2); i++ {
			k := g.column()
			if grouped {
				k = groupCols[g.rng.Intn(len(groupCols))]
			}
			if g.rng.Intn(2) == 0 {
				k += " DESC"
			}
			keys = append(keys, k)
		}
		sb.WriteString(" ORDER BY " + strings.Join(keys, ", "))
	}
	if g.rng.Intn(3) == 0 {
		sb.WriteString(fmt.Sprintf(" LIMIT %d", g.rng.Intn(30)))
		if g.rng.Intn(2) == 0 {
			sb.WriteString(fmt.Sprintf(" OFFSET %d", g.rng.Intn(10)))
		}
	}
	return sb.String()
}

func (g *qgen) viewQuery() string {
	q := "SELECT a, b FROM v1"
	if g.rng.Intn(2) == 0 {
		q += fmt.Sprintf(" WHERE a %s %d", []string{"<", ">", "="}[g.rng.Intn(3)], g.rng.Intn(15)-3)
	}
	if g.rng.Intn(2) == 0 {
		q += " ORDER BY a DESC, b"
	}
	return q
}

func TestDifferentialRowVsVector(t *testing.T) {
	rng := rand.New(rand.NewSource(seed))
	script := buildDataset(rng)

	row := driver.NewLegacy(sqldb.Open())
	vec := engine.Open()
	for _, d := range []driver.Driver{row, vec} {
		if _, err := driver.ExecScript(d, script); err != nil {
			t.Fatalf("loading dataset into %s: %v", d.Name(), err)
		}
	}

	g := &qgen{rng: rng}
	var errs, ran int
	for i := 0; i < nQueries; i++ {
		sql := g.query()
		same, failed := compareOne(t, row, vec, sql, i)
		if !same {
			return // compareOne already failed the test with detail
		}
		ran++
		if failed {
			errs++
		}
	}
	if pct := errs * 100 / ran; pct > maxErrPct {
		t.Fatalf("generator degenerate: %d%% of %d queries errored", pct, ran)
	}
	t.Logf("differential: %d queries, %d errored identically on both engines", ran, errs)
}

// compareOne runs sql on both drivers. Returns same=false after failing
// the test on any divergence; failed reports both-engines-errored.
func compareOne(t *testing.T, row, vec driver.Driver, sql string, i int) (same, failed bool) {
	t.Helper()
	rBlk, rErr := run(row, sql)
	vBlk, vErr := run(vec, sql)
	if (rErr == nil) != (vErr == nil) {
		t.Errorf("query %d diverges on error:\n  %s\n  row: %v\n  vec: %v", i, sql, rErr, vErr)
		return false, false
	}
	if rErr != nil {
		if rErr.Error() != vErr.Error() {
			// The engines may surface a different row's error first
			// (item-major vs row-major evaluation) but the text of each
			// error class is shared, so log rather than fail.
			t.Logf("query %d error text differs (both errored):\n  %s\n  row: %v\n  vec: %v", i, sql, rErr, vErr)
		}
		return true, true
	}
	if strings.Join(rBlk.Columns, ",") != strings.Join(vBlk.Columns, ",") {
		t.Errorf("query %d column mismatch:\n  %s\n  row: %v\n  vec: %v", i, sql, rBlk.Columns, vBlk.Columns)
		return false, false
	}
	if rBlk.Rows != vBlk.Rows {
		t.Errorf("query %d row count: row=%d vec=%d\n  %s", i, rBlk.Rows, vBlk.Rows, sql)
		return false, false
	}
	for r := 0; r < rBlk.Rows; r++ {
		for c := range rBlk.Cols {
			rv, err1 := rBlk.Value(r, c)
			vv, err2 := vBlk.Value(r, c)
			if err1 != nil || err2 != nil {
				t.Errorf("query %d block decode: %v / %v", i, err1, err2)
				return false, false
			}
			if rv.String() != vv.String() {
				t.Errorf("query %d cell (%d,%d): row=%s vec=%s\n  %s", i, r, c, rv, vv, sql)
				return false, false
			}
		}
	}
	return true, false
}

func run(d driver.Driver, sql string) (*driver.Block, error) {
	st, err := d.Prepare(sql)
	if err != nil {
		return nil, err
	}
	return st.Execute()
}

// TestDifferentialCostHints pins plan parity: both drivers plan through
// the shared catalog-driven planner, so identical schemas and data must
// produce identical plan signatures and row estimates.
func TestDifferentialCostHints(t *testing.T) {
	rng := rand.New(rand.NewSource(seed + 1))
	script := buildDataset(rng)
	row := driver.NewLegacy(sqldb.Open())
	vec := engine.Open()
	for _, d := range []driver.Driver{row, vec} {
		if _, err := driver.ExecScript(d, script); err != nil {
			t.Fatal(err)
		}
	}
	for _, sql := range []string{
		"SELECT a FROM t1 WHERE a = 3",
		"SELECT t1.c, t2.e FROM t1 JOIN t2 ON t1.a = t2.k",
		"SELECT c, COUNT(*) FROM t1 GROUP BY c ORDER BY c",
		"SELECT DISTINCT c FROM t1",
		"SELECT a, b FROM v1 WHERE a > 2",
	} {
		rs, err := row.Prepare(sql)
		if err != nil {
			t.Fatalf("%q: %v", sql, err)
		}
		vs, err := vec.Prepare(sql)
		if err != nil {
			t.Fatalf("%q: %v", sql, err)
		}
		rh, vh := rs.Hints(), vs.Hints()
		if rh.Signature != vh.Signature {
			t.Errorf("%q: signature row=%q vec=%q", sql, rh.Signature, vh.Signature)
		}
		if rh.EstRows != vh.EstRows || rh.IOCost != vh.IOCost || rh.CPUCost != vh.CPUCost {
			t.Errorf("%q: cost row=%+v vec=%+v", sql, rh, vh)
		}
	}
}
