package driver

import "github.com/qamarket/qamarket/internal/sqldb"

// Legacy adapts the row-based reference engine (internal/sqldb),
// unchanged, to the driver seam. Planning delegates to the engine's
// EXPLAIN; execution runs the row pipeline and transposes the result
// into a column block once, after which the frame lane streams it
// batch-at-a-time without touching rows again.
type Legacy struct {
	db *sqldb.DB
}

// NewLegacy wraps a row-engine instance. The instance stays fully
// usable directly; the driver adds no state of its own.
func NewLegacy(db *sqldb.DB) *Legacy { return &Legacy{db: db} }

// DB exposes the wrapped engine for callers that need the raw handle
// (local oracles in tests, dataset loaders).
func (l *Legacy) DB() *sqldb.DB { return l.db }

// Name reports "row", the executor family this driver fronts.
func (l *Legacy) Name() string { return "row" }

// Tables lists base tables, sorted.
func (l *Legacy) Tables() []string { return l.db.Tables() }

// Views lists views, sorted.
func (l *Legacy) Views() []string { return l.db.Views() }

// HasRelation reports whether name is a table or view.
func (l *Legacy) HasRelation(name string) bool { return l.db.HasRelation(name) }

// Exec executes one statement, returning rows affected.
func (l *Legacy) Exec(sql string) (int, error) {
	_, n, err := l.db.Exec(sql)
	return n, err
}

// Prepare plans the statement through the engine's EXPLAIN path.
func (l *Legacy) Prepare(sql string) (Statement, error) {
	plan, err := l.db.Explain(sql)
	if err != nil {
		return nil, err
	}
	return &legacyStmt{
		db:  l.db,
		sql: sql,
		hints: CostHints{
			Signature: plan.Signature(),
			IOCost:    plan.IOCost(),
			CPUCost:   plan.CPUCost(),
			EstRows:   plan.Rows(),
		},
	}, nil
}

type legacyStmt struct {
	db    *sqldb.DB
	sql   string
	hints CostHints
}

func (s *legacyStmt) Hints() CostHints { return s.hints }

// Execute runs the row pipeline and transposes once into a block.
func (s *legacyStmt) Execute() (*Block, error) {
	res, err := s.db.Query(s.sql)
	if err != nil {
		return nil, err
	}
	return FromResult(res), nil
}
