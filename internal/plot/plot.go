// Package plot renders the experiment series as standalone SVG files,
// so cmd/qabench can regenerate the paper's figures as images, not
// just console tables. It is a deliberately small chart kit: line
// charts (figures 3, 5, 6) and grouped bar charts (figures 4, 7), pure
// standard library.
package plot

import (
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
)

// Series is one named line or bar group.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Chart describes one figure.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// Width/Height of the SVG canvas in pixels (defaults 720×420).
	Width, Height int
	// LogX plots the x axis on a log10 scale (used by figure 6's
	// inter-arrival sweep).
	LogX bool
}

// palette holds distinguishable stroke colors.
var palette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#ff7f0e", "#9467bd", "#8c564b", "#17becf",
}

const (
	marginLeft   = 64.0
	marginRight  = 24.0
	marginTop    = 40.0
	marginBottom = 48.0
)

func (c *Chart) dims() (w, h float64) {
	if c.Width <= 0 {
		c.Width = 720
	}
	if c.Height <= 0 {
		c.Height = 420
	}
	return float64(c.Width), float64(c.Height)
}

// Line renders the chart as a line plot with markers.
func (c *Chart) Line() (string, error) {
	return c.render(false)
}

// Bars renders the chart as a grouped bar plot: each series contributes
// one bar per x position; x values are treated as category indices.
func (c *Chart) Bars() (string, error) {
	return c.render(true)
}

func (c *Chart) render(bars bool) (string, error) {
	if len(c.Series) == 0 {
		return "", fmt.Errorf("plot: chart %q has no series", c.Title)
	}
	for _, s := range c.Series {
		if len(s.X) != len(s.Y) {
			return "", fmt.Errorf("plot: series %q has %d x vs %d y", s.Name, len(s.X), len(s.Y))
		}
		if len(s.X) == 0 {
			return "", fmt.Errorf("plot: series %q is empty", s.Name)
		}
	}
	w, h := c.dims()
	minX, maxX, minY, maxY := c.bounds(bars)
	plotW := w - marginLeft - marginRight
	plotH := h - marginTop - marginBottom
	xpos := func(x float64) float64 {
		if c.LogX {
			x = math.Log10(math.Max(x, 1e-9))
		}
		if maxX == minX {
			return marginLeft + plotW/2
		}
		return marginLeft + (x-minX)/(maxX-minX)*plotW
	}
	ypos := func(y float64) float64 {
		if maxY == minY {
			return marginTop + plotH/2
		}
		return marginTop + plotH - (y-minY)/(maxY-minY)*plotH
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		c.Width, c.Height, c.Width, c.Height)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	fmt.Fprintf(&b, `<text x="%g" y="24" font-family="sans-serif" font-size="16" font-weight="bold">%s</text>`+"\n",
		marginLeft, escape(c.Title))

	// Axes.
	fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#333"/>`+"\n",
		marginLeft, marginTop, marginLeft, marginTop+plotH)
	fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#333"/>`+"\n",
		marginLeft, marginTop+plotH, marginLeft+plotW, marginTop+plotH)
	// Y ticks (5).
	for i := 0; i <= 4; i++ {
		v := minY + (maxY-minY)*float64(i)/4
		y := ypos(v)
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#ddd"/>`+"\n",
			marginLeft, y, marginLeft+plotW, y)
		fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="11" text-anchor="end">%s</text>`+"\n",
			marginLeft-6, y+4, ticks(v))
	}
	// X ticks from first series.
	ref := c.Series[0]
	step := 1
	if len(ref.X) > 10 {
		step = len(ref.X) / 10
	}
	for i := 0; i < len(ref.X); i += step {
		x := xpos(ref.X[i])
		if bars {
			x = marginLeft + (float64(i)+0.5)/float64(len(ref.X))*plotW
		}
		fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="11" text-anchor="middle">%s</text>`+"\n",
			x, marginTop+plotH+16, ticks(ref.X[i]))
	}
	// Axis labels.
	fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="12" text-anchor="middle">%s</text>`+"\n",
		marginLeft+plotW/2, h-8, escape(c.XLabel))
	fmt.Fprintf(&b, `<text x="14" y="%g" font-family="sans-serif" font-size="12" text-anchor="middle" transform="rotate(-90 14 %g)">%s</text>`+"\n",
		marginTop+plotH/2, marginTop+plotH/2, escape(c.YLabel))

	if bars {
		c.renderBars(&b, plotW, plotH, ypos, minY)
	} else {
		c.renderLines(&b, xpos, ypos)
	}

	// Legend.
	lx := marginLeft + 8
	for si, s := range c.Series {
		color := palette[si%len(palette)]
		y := marginTop + 10 + float64(si)*16
		fmt.Fprintf(&b, `<rect x="%g" y="%g" width="10" height="10" fill="%s"/>`+"\n", lx, y-9, color)
		fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="11">%s</text>`+"\n",
			lx+14, y, escape(s.Name))
	}
	b.WriteString("</svg>\n")
	return b.String(), nil
}

func (c *Chart) renderLines(b *strings.Builder, xpos, ypos func(float64) float64) {
	for si, s := range c.Series {
		color := palette[si%len(palette)]
		var path strings.Builder
		for i := range s.X {
			cmd := "L"
			if i == 0 {
				cmd = "M"
			}
			fmt.Fprintf(&path, "%s%.1f %.1f ", cmd, xpos(s.X[i]), ypos(s.Y[i]))
		}
		fmt.Fprintf(b, `<path d="%s" fill="none" stroke="%s" stroke-width="1.8"/>`+"\n",
			strings.TrimSpace(path.String()), color)
		for i := range s.X {
			fmt.Fprintf(b, `<circle cx="%.1f" cy="%.1f" r="2.4" fill="%s"/>`+"\n",
				xpos(s.X[i]), ypos(s.Y[i]), color)
		}
	}
}

func (c *Chart) renderBars(b *strings.Builder, plotW, plotH float64, ypos func(float64) float64, minY float64) {
	n := len(c.Series[0].X)
	groups := float64(n)
	groupW := plotW / groups
	barW := groupW * 0.8 / float64(len(c.Series))
	base := ypos(math.Max(minY, 0))
	for si, s := range c.Series {
		color := palette[si%len(palette)]
		for i := range s.X {
			x := marginLeft + float64(i)*groupW + groupW*0.1 + float64(si)*barW
			y := ypos(s.Y[i])
			top, height := y, base-y
			if height < 0 {
				top, height = base, -height
			}
			fmt.Fprintf(b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n",
				x, top, barW*0.92, height, color)
		}
	}
}

func (c *Chart) bounds(bars bool) (minX, maxX, minY, maxY float64) {
	minX, maxX = math.Inf(1), math.Inf(-1)
	minY, maxY = math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		for i := range s.X {
			x := s.X[i]
			if c.LogX {
				x = math.Log10(math.Max(x, 1e-9))
			}
			minX = math.Min(minX, x)
			maxX = math.Max(maxX, x)
			minY = math.Min(minY, s.Y[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if bars {
		minY = math.Min(minY, 0)
	}
	if minY == maxY {
		maxY = minY + 1
	}
	// A little headroom on top.
	maxY += (maxY - minY) * 0.05
	return minX, maxX, minY, maxY
}

// WriteFile renders the chart (line or bars) to path.
func (c *Chart) WriteFile(path string, bars bool) error {
	svg, err := c.render(bars)
	if err != nil {
		return err
	}
	return os.WriteFile(path, []byte(svg), 0o644)
}

// IntSeries converts a bucketed integer series to a Series with x =
// bucket index scaled by step.
func IntSeries(name string, values []int, xStep float64) Series {
	s := Series{Name: name, X: make([]float64, len(values)), Y: make([]float64, len(values))}
	for i, v := range values {
		s.X[i] = float64(i) * xStep
		s.Y[i] = float64(v)
	}
	return s
}

// MapSeries converts a name→value map into a single bar series over
// sorted keys, returning the category labels alongside.
func MapSeries(name string, m map[string]float64) (Series, []string) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := Series{Name: name, X: make([]float64, len(keys)), Y: make([]float64, len(keys))}
	for i, k := range keys {
		s.X[i] = float64(i)
		s.Y[i] = m[k]
	}
	return s, keys
}

func escape(s string) string {
	s = strings.ReplaceAll(s, "&", "&amp;")
	s = strings.ReplaceAll(s, "<", "&lt;")
	s = strings.ReplaceAll(s, ">", "&gt;")
	return s
}

func ticks(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1000:
		return fmt.Sprintf("%.0f", v)
	case av >= 10:
		return fmt.Sprintf("%.1f", v)
	case av == math.Trunc(av):
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}
