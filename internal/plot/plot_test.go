package plot

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func lineChart() *Chart {
	return &Chart{
		Title:  "Test figure",
		XLabel: "x axis",
		YLabel: "y axis",
		Series: []Series{
			{Name: "a", X: []float64{0, 1, 2, 3}, Y: []float64{1, 3, 2, 4}},
			{Name: "b", X: []float64{0, 1, 2, 3}, Y: []float64{2, 2, 2, 2}},
		},
	}
}

func TestLineSVGWellFormed(t *testing.T) {
	svg, err := lineChart().Line()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"<svg", "</svg>", "Test figure", "x axis", "y axis",
		"<path", "<circle", ">a</text>", ">b</text>",
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if strings.Count(svg, "<svg") != 1 {
		t.Error("multiple svg roots")
	}
}

func TestBarsSVGWellFormed(t *testing.T) {
	c := lineChart()
	svg, err := c.Bars()
	if err != nil {
		t.Fatal(err)
	}
	// 2 series × 4 categories = 8 bars (plus the background and legend
	// rects).
	if got := strings.Count(svg, "<rect"); got < 8 {
		t.Errorf("bars = %d rects, want >= 8", got)
	}
}

func TestEmptyChartRejected(t *testing.T) {
	c := &Chart{Title: "empty"}
	if _, err := c.Line(); err == nil {
		t.Error("empty chart rendered")
	}
	bad := &Chart{Series: []Series{{Name: "x", X: []float64{1}, Y: nil}}}
	if _, err := bad.Line(); err == nil {
		t.Error("mismatched series rendered")
	}
	empty := &Chart{Series: []Series{{Name: "x"}}}
	if _, err := empty.Line(); err == nil {
		t.Error("zero-length series rendered")
	}
}

func TestLogXMonotone(t *testing.T) {
	c := &Chart{
		LogX: true,
		Series: []Series{
			{Name: "sweep", X: []float64{10, 100, 1000, 10000}, Y: []float64{1, 1.1, 1.2, 1.0}},
		},
	}
	svg, err := c.Line()
	if err != nil {
		t.Fatal(err)
	}
	// On a log axis the circle x positions must be evenly spaced; on a
	// linear axis they would bunch at the left. Check spacing between
	// consecutive markers is near-constant.
	xs := circleXs(t, svg)
	if len(xs) != 4 {
		t.Fatalf("markers = %d", len(xs))
	}
	d1 := xs[1] - xs[0]
	d2 := xs[2] - xs[1]
	d3 := xs[3] - xs[2]
	if !near(d1, d2, 1) || !near(d2, d3, 1) {
		t.Errorf("log spacing uneven: %v", xs)
	}
}

func circleXs(t *testing.T, svg string) []float64 {
	t.Helper()
	var xs []float64
	for _, line := range strings.Split(svg, "\n") {
		if !strings.HasPrefix(line, "<circle") {
			continue
		}
		var cx, cy, r float64
		if _, err := fmt.Sscanf(line, `<circle cx="%f" cy="%f" r="%f"`, &cx, &cy, &r); err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		xs = append(xs, cx)
	}
	return xs
}

func near(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}

func TestWriteFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fig.svg")
	if err := lineChart().WriteFile(path, false); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "<svg") {
		t.Error("file does not start with <svg")
	}
}

func TestIntSeries(t *testing.T) {
	s := IntSeries("arrivals", []int{1, 2, 3}, 0.5)
	if s.X[2] != 1.0 || s.Y[2] != 3 {
		t.Errorf("IntSeries = %+v", s)
	}
}

func TestMapSeries(t *testing.T) {
	s, keys := MapSeries("norm", map[string]float64{"b": 2, "a": 1})
	if keys[0] != "a" || keys[1] != "b" {
		t.Errorf("keys = %v", keys)
	}
	if s.Y[0] != 1 || s.Y[1] != 2 {
		t.Errorf("values = %v", s.Y)
	}
}

func TestEscape(t *testing.T) {
	c := lineChart()
	c.Title = `<script>&`
	svg, err := c.Line()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(svg, "<script>") {
		t.Error("title not escaped")
	}
	if !strings.Contains(svg, "&lt;script&gt;&amp;") {
		t.Error("escaped form missing")
	}
}
