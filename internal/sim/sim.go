// Package sim rebuilds the paper's federation simulator (Section 5.1):
// a discrete-event model of up to hundreds of autonomous RDBMSs, each
// executing queries sequentially from a local queue, with a pluggable
// allocation mechanism deciding which node runs each incoming query.
package sim

import (
	"errors"
	"fmt"
	"math"

	"github.com/qamarket/qamarket/internal/alloc"
	"github.com/qamarket/qamarket/internal/catalog"
	"github.com/qamarket/qamarket/internal/costmodel"
	"github.com/qamarket/qamarket/internal/desim"
	"github.com/qamarket/qamarket/internal/metrics"
	"github.com/qamarket/qamarket/internal/workload"
)

// Config assembles one simulation run.
type Config struct {
	Catalog   *catalog.Catalog
	Templates []costmodel.Template
	// PeriodMs is the allocation period T (500 ms in the experiments).
	PeriodMs int64
	// NetworkLatencyMs is added between assignment and execution start,
	// modeling the allocation round-trip. Default 0 (the paper's
	// simulator measures execution, not messaging).
	NetworkLatencyMs int64
	// MaxResubmits drops a query after this many deferred periods
	// (guards against queries no node will ever take). Default 10,000.
	MaxResubmits int
	// HardCapMs aborts the run if the virtual clock passes it, as a
	// backstop against runaway retry loops. Default: last arrival +
	// 10 minutes of virtual time.
	HardCapMs int64
	// CostOverride, when non-nil, supplies the per-node per-class
	// execution costs directly ([node][class] milliseconds, +Inf for
	// "cannot evaluate"), bypassing the cost model. Controlled
	// experiments — like replaying the paper's Figure 1 numbers
	// exactly — use it; dimensions must match Catalog.Nodes and
	// Templates.
	CostOverride [][]float64
}

func (c *Config) validate() error {
	if c.Catalog == nil {
		return errors.New("sim: nil catalog")
	}
	if len(c.Templates) == 0 {
		return errors.New("sim: no query templates")
	}
	if c.PeriodMs <= 0 {
		return errors.New("sim: PeriodMs must be positive")
	}
	if c.MaxResubmits == 0 {
		c.MaxResubmits = 10000
	}
	return nil
}

// job is one query instance flowing through the simulator. Jobs are
// recycled through the federation's free list once they complete, and
// each job caches its completion event so steady-state execution
// schedules without allocating closures.
type job struct {
	q        alloc.Query
	node     int
	costMs   float64
	startMs  int64
	assignMs int64
	f        *Federation
	done     desim.Event // fires f.complete(job); built once per job object
}

// nodeState models one RDBMS: a FIFO queue drained sequentially. The
// queue is a head-indexed slice so dequeues don't shift or reallocate;
// the backing array is reused once drained.
type nodeState struct {
	queue     []*job
	head      int
	running   *job
	pendingMs float64 // queued + running work (full costs)
	runStart  int64
}

// Federation is one simulation instance. Build with New, drive with Run.
type Federation struct {
	cfg   Config
	eng   desim.Engine
	mech  alloc.Mechanism
	nodes []*nodeState
	cost  [][]float64 // [node][class] estimated+actual execution ms
	feas  [][]int     // [class] ascending nodes able to evaluate it
	col   metrics.Collector

	retry       []alloc.Query
	retrySpare  []alloc.Query // recycled backing array for retry
	jobFree     []*job        // completed jobs awaiting reuse
	outstanding int
	periodOn    bool
}

// New builds a federation around the mechanism. Costs for every
// (node, class) pair are precomputed from the cost model, serving both
// as the EXPLAIN estimates the mechanisms see and as the simulated
// execution times (the simulator's estimator is exact; the real cluster
// in internal/cluster is where estimates and reality diverge).
func New(cfg Config, mech alloc.Mechanism) (*Federation, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if mech == nil {
		return nil, errors.New("sim: nil mechanism")
	}
	n := len(cfg.Catalog.Nodes)
	k := len(cfg.Templates)
	var cost [][]float64
	if cfg.CostOverride != nil {
		if len(cfg.CostOverride) != n {
			return nil, fmt.Errorf("sim: CostOverride has %d nodes, catalog has %d", len(cfg.CostOverride), n)
		}
		cost = make([][]float64, n)
		for i, row := range cfg.CostOverride {
			if len(row) != k {
				return nil, fmt.Errorf("sim: CostOverride node %d has %d classes, want %d", i, len(row), k)
			}
			cost[i] = append([]float64(nil), row...)
		}
	} else {
		model := costmodel.New(cfg.Catalog)
		cost = make([][]float64, n)
		for i, node := range cfg.Catalog.Nodes {
			cost[i] = make([]float64, k)
			for c, t := range cfg.Templates {
				cost[i][c] = model.Estimate(node, t)
			}
		}
	}
	f := &Federation{cfg: cfg, mech: mech, cost: cost}
	// Precompute the per-class feasibility index the mechanisms iterate
	// on every allocation round.
	f.feas = make([][]int, k)
	for c := 0; c < k; c++ {
		class := c
		f.feas[c] = alloc.ScanFeasible(n, func(node int) bool {
			return !math.IsInf(cost[node][class], 1)
		})
	}
	f.nodes = make([]*nodeState, n)
	for i := range f.nodes {
		f.nodes[i] = &nodeState{}
	}
	return f, nil
}

// view adapts the federation to alloc.View.
type view struct{ f *Federation }

func (v view) Now() int64      { return int64(v.f.eng.Now()) }
func (v view) NumNodes() int   { return len(v.f.nodes) }
func (v view) NumClasses() int { return len(v.f.cfg.Templates) }
func (v view) PeriodMs() int64 { return v.f.cfg.PeriodMs }
func (v view) Feasible(node, class int) bool {
	return !math.IsInf(v.f.cost[node][class], 1)
}
func (v view) FeasibleNodes(class int) []int { return v.f.feas[class] }
func (v view) Cost(node, class int) float64  { return v.f.cost[node][class] }
func (v view) Backlog(node int) float64 {
	ns := v.f.nodes[node]
	b := ns.pendingMs
	if ns.running != nil {
		if done := float64(int64(v.f.eng.Now()) - ns.runStart); done > 0 {
			b -= math.Min(done, ns.running.costMs)
		}
	}
	return b
}

// Run feeds the arrival stream through the mechanism and returns the
// collected metrics once every query has completed, been dropped, or
// the hard cap was hit. Arrivals must be sorted by time.
func (f *Federation) Run(arrivals []workload.Arrival) (*metrics.Collector, error) {
	if len(arrivals) == 0 {
		return &f.col, nil
	}
	for i := 1; i < len(arrivals); i++ {
		if arrivals[i].At < arrivals[i-1].At {
			return nil, fmt.Errorf("sim: arrivals not sorted at index %d", i)
		}
	}
	if f.cfg.HardCapMs == 0 {
		f.cfg.HardCapMs = arrivals[len(arrivals)-1].At + 10*60*1000
	}
	f.outstanding = len(arrivals)
	for i, a := range arrivals {
		a := a
		id := int64(i)
		f.eng.At(desim.Time(a.At), func(now desim.Time) {
			f.dispatch(alloc.Query{
				ID: id, Class: a.Class, Origin: a.Origin, Arrival: a.At,
			})
		})
	}
	f.startPeriodClock()
	f.eng.Run()
	// Anything still queued or retrying at the hard cap is dropped.
	for f.outstanding > 0 {
		f.col.Drop()
		f.outstanding--
	}
	return &f.col, nil
}

// startPeriodClock drives the mechanism's period lifecycle. The clock
// re-arms itself only while work remains, so the event queue drains and
// Run terminates.
func (f *Federation) startPeriodClock() {
	if _, ok := f.mech.(alloc.Periodic); ok {
		f.periodOn = true
	}
	if f.periodOn {
		f.mech.(alloc.Periodic).OnPeriodStart(view{f})
	}
	var tick func(now desim.Time)
	tick = func(now desim.Time) {
		if f.periodOn {
			p := f.mech.(alloc.Periodic)
			p.OnPeriodEnd(view{f})
			p.OnPeriodStart(view{f})
		}
		f.flushRetries()
		if f.outstanding > 0 && int64(now) < f.cfg.HardCapMs {
			f.eng.After(desim.Time(f.cfg.PeriodMs), tick)
		}
	}
	f.eng.After(desim.Time(f.cfg.PeriodMs), tick)
}

// flushRetries re-dispatches the queries deferred to this period. The
// drained backing array is kept for the next period's deferrals, so the
// retry churn of an overloaded run stops allocating.
func (f *Federation) flushRetries() {
	pending := f.retry
	f.retry = f.retrySpare[:0]
	for _, q := range pending {
		f.dispatch(q)
	}
	f.retrySpare = pending[:0]
}

// newJob takes a job from the free list, or builds one with its cached
// completion event on first use.
func (f *Federation) newJob() *job {
	if n := len(f.jobFree); n > 0 {
		j := f.jobFree[n-1]
		f.jobFree[n-1] = nil
		f.jobFree = f.jobFree[:n-1]
		return j
	}
	j := &job{f: f}
	j.done = func(desim.Time) { j.f.complete(j) }
	return j
}

// dispatch runs one allocation round for the query.
func (f *Federation) dispatch(q alloc.Query) {
	d := f.mech.Assign(q, view{f})
	if d.Retry {
		q.Resubmits++
		if q.Resubmits > f.cfg.MaxResubmits {
			f.col.Drop()
			f.outstanding--
			return
		}
		f.retry = append(f.retry, q)
		return
	}
	if d.Node < 0 || d.Node >= len(f.nodes) {
		panic(fmt.Sprintf("sim: mechanism %s chose invalid node %d", f.mech.Name(), d.Node))
	}
	cost := f.cost[d.Node][q.Class]
	if math.IsInf(cost, 1) {
		panic(fmt.Sprintf("sim: mechanism %s sent class %d to incapable node %d", f.mech.Name(), q.Class, d.Node))
	}
	j := f.newJob()
	j.q, j.node, j.costMs, j.assignMs = q, d.Node, cost, f.cfg.NetworkLatencyMs
	if f.cfg.NetworkLatencyMs > 0 {
		f.eng.After(desim.Time(f.cfg.NetworkLatencyMs), func(desim.Time) { f.enqueue(j) })
	} else {
		f.enqueue(j)
	}
}

// enqueue places the job on its node and starts it if the node is idle.
func (f *Federation) enqueue(j *job) {
	ns := f.nodes[j.node]
	ns.pendingMs += j.costMs
	ns.queue = append(ns.queue, j)
	if ns.running == nil {
		f.startNext(j.node)
	}
}

// startNext begins the node's next queued job.
func (f *Federation) startNext(node int) {
	ns := f.nodes[node]
	if ns.head == len(ns.queue) {
		ns.queue = ns.queue[:0]
		ns.head = 0
		ns.running = nil
		return
	}
	j := ns.queue[ns.head]
	ns.queue[ns.head] = nil
	ns.head++
	ns.running = j
	now := int64(f.eng.Now())
	ns.runStart = now
	j.startMs = now
	dur := int64(math.Ceil(j.costMs))
	if dur < 1 {
		dur = 1
	}
	f.eng.After(desim.Time(dur), j.done)
}

// complete records the finished job, recycles it, and starts the node's
// next one.
func (f *Federation) complete(j *job) {
	node := j.node
	ns := f.nodes[node]
	ns.pendingMs -= j.costMs
	if ns.pendingMs < 0 {
		ns.pendingMs = 0
	}
	now := int64(f.eng.Now())
	f.col.Add(metrics.Sample{
		Class:      j.q.Class,
		Origin:     j.q.Origin,
		Node:       node,
		ArrivalMs:  j.q.Arrival,
		StartMs:    j.startMs,
		FinishMs:   now,
		AssignMs:   j.assignMs,
		Resubmits:  j.q.Resubmits,
		ExecutedMs: now - j.startMs,
	})
	ns.running = nil
	f.jobFree = append(f.jobFree, j)
	f.outstanding--
	f.startNext(node)
}
