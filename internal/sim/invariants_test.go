package sim

import (
	"math/rand"
	"testing"

	"github.com/qamarket/qamarket/internal/alloc"
	"github.com/qamarket/qamarket/internal/market"
	"github.com/qamarket/qamarket/internal/workload"
)

// TestInvariantsAcrossMechanisms runs every mechanism over randomized
// workloads and checks the simulator's accounting invariants:
//
//  1. conservation: completed + dropped == arrivals;
//  2. causality: finish >= start >= arrival for every sample;
//  3. response time >= pure execution time;
//  4. samples reference valid nodes and classes.
func TestInvariantsAcrossMechanisms(t *testing.T) {
	cat, ts := twoClassFixture(t, 10)
	for seed := int64(1); seed <= 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var arrivals []workload.Arrival
		at := int64(0)
		n := 100 + rng.Intn(200)
		for i := 0; i < n; i++ {
			at += int64(rng.Intn(400))
			arrivals = append(arrivals, workload.Arrival{
				At: at, Class: rng.Intn(2), Origin: rng.Intn(10),
			})
		}
		mechs := []alloc.Mechanism{
			alloc.NewQANT(market.DefaultConfig(2)),
			alloc.NewGreedy(nil, 0),
			alloc.NewGreedy(rand.New(rand.NewSource(seed)), 0.2),
			alloc.NewRandom(rand.New(rand.NewSource(seed))),
			alloc.NewRoundRobin(),
			alloc.NewBNQRD(),
			alloc.NewTwoRandomProbes(rand.New(rand.NewSource(seed + 9))),
			alloc.NewMarkov([]float64{2, 1}),
		}
		for _, mech := range mechs {
			fed, err := New(Config{Catalog: cat, Templates: ts, PeriodMs: 500}, mech)
			if err != nil {
				t.Fatalf("%s: %v", mech.Name(), err)
			}
			col, err := fed.Run(arrivals)
			if err != nil {
				t.Fatalf("%s: %v", mech.Name(), err)
			}
			if col.Completed()+col.Dropped() != len(arrivals) {
				t.Errorf("seed %d %s: %d + %d != %d arrivals",
					seed, mech.Name(), col.Completed(), col.Dropped(), len(arrivals))
			}
			for _, s := range col.Samples() {
				if s.FinishMs < s.StartMs || s.StartMs < s.ArrivalMs {
					t.Fatalf("seed %d %s: causality violated: %+v", seed, mech.Name(), s)
				}
				if s.ResponseMs() < s.ExecutedMs {
					t.Fatalf("seed %d %s: response %d < exec %d", seed, mech.Name(), s.ResponseMs(), s.ExecutedMs)
				}
				if s.Node < 0 || s.Node >= 10 || s.Class < 0 || s.Class >= 2 {
					t.Fatalf("seed %d %s: bad sample ids %+v", seed, mech.Name(), s)
				}
			}
		}
	}
}

// TestNodeFIFO asserts that per-node execution is first-in-first-out:
// for any two samples on the same node, start order follows enqueue
// order (approximated here by start times never overlapping).
func TestNodeFIFO(t *testing.T) {
	cat, ts := twoClassFixture(t, 4)
	fed, err := New(Config{Catalog: cat, Templates: ts, PeriodMs: 500}, alloc.NewGreedy(nil, 0))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	var arrivals []workload.Arrival
	for i := 0; i < 200; i++ {
		arrivals = append(arrivals, workload.Arrival{
			At: int64(i * 20), Class: rng.Intn(2), Origin: rng.Intn(4),
		})
	}
	col, err := fed.Run(arrivals)
	if err != nil {
		t.Fatal(err)
	}
	byNode := map[int][][2]int64{}
	for _, s := range col.Samples() {
		byNode[s.Node] = append(byNode[s.Node], [2]int64{s.StartMs, s.FinishMs})
	}
	for node, spans := range byNode {
		for i := 0; i < len(spans); i++ {
			for j := i + 1; j < len(spans); j++ {
				a, b := spans[i], spans[j]
				if a[0] < b[0] && a[1] > b[0]+1 {
					t.Fatalf("node %d executed two queries concurrently: %v overlaps %v", node, a, b)
				}
			}
		}
	}
}

// TestQANTAdmissionNeverOverCommits verifies the market's core promise
// at the system level: summed per-period execution on each node stays
// within period capacity plus the bounded carry.
func TestQANTAdmissionNeverOverCommits(t *testing.T) {
	cat, ts := twoClassFixture(t, 6)
	mech := alloc.NewQANT(market.DefaultConfig(2))
	fed, err := New(Config{Catalog: cat, Templates: ts, PeriodMs: 500}, mech)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	var arrivals []workload.Arrival
	for i := 0; i < 400; i++ {
		arrivals = append(arrivals, workload.Arrival{
			At: int64(i * 10), Class: rng.Intn(2), Origin: rng.Intn(6),
		})
	}
	col, err := fed.Run(arrivals)
	if err != nil {
		t.Fatal(err)
	}
	// Total executed work per node must not exceed the node's share of
	// wall-clock time by more than one max-cost carry allowance.
	horizon := int64(0)
	workPerNode := map[int]int64{}
	for _, s := range col.Samples() {
		workPerNode[s.Node] += s.ExecutedMs
		if s.FinishMs > horizon {
			horizon = s.FinishMs
		}
	}
	for node, work := range workPerNode {
		if work > horizon+3000 {
			t.Errorf("node %d executed %d ms of work in a %d ms horizon", node, work, horizon)
		}
	}
}
