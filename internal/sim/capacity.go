package sim

import (
	"math"

	"github.com/qamarket/qamarket/internal/catalog"
	"github.com/qamarket/qamarket/internal/costmodel"
)

// EstimateCapacity computes the federation's total sustainable arrival
// rate, in queries per second, for a query mix given as per-class
// weights (weights need not be normalized). The sinusoid experiments of
// Section 5.1 express workloads as percentages of "total system
// capacity"; this is the scale they are percentages *of*.
//
// The estimate binary-searches the highest aggregate rate R such that
// splitting each class's share of R across its capable nodes by greedy
// water-filling keeps every node's utilization at or below 1. Greedy
// water-filling on quantized rate increments is within one quantum of
// the optimal fractional assignment, which is ample precision for
// workload scaling.
func EstimateCapacity(c *catalog.Catalog, templates []costmodel.Template, weights []float64) float64 {
	model := costmodel.New(c)
	n := len(c.Nodes)
	k := len(templates)
	cost := make([][]float64, n)
	for i, node := range c.Nodes {
		cost[i] = make([]float64, k)
		for j, t := range templates {
			cost[i][j] = model.Estimate(node, t)
		}
	}
	wsum := 0.0
	for _, w := range weights {
		wsum += w
	}
	if wsum <= 0 {
		return 0
	}
	feasible := func(rate float64) bool {
		util := make([]float64, n)
		const quanta = 200
		for class := 0; class < k; class++ {
			w := 0.0
			if class < len(weights) {
				w = weights[class]
			}
			classRate := rate * w / wsum
			if classRate <= 0 {
				continue
			}
			q := classRate / quanta
			for step := 0; step < quanta; step++ {
				best, bestNode := math.Inf(1), -1
				for node := 0; node < n; node++ {
					if math.IsInf(cost[node][class], 1) {
						continue
					}
					if u := util[node] + q*cost[node][class]/1000; u < best {
						best, bestNode = u, node
					}
				}
				if bestNode < 0 || best > 1 {
					return false
				}
				util[bestNode] = best
			}
		}
		return true
	}
	lo, hi := 0.0, 1.0
	for feasible(hi) {
		hi *= 2
		if hi > 1e7 {
			break
		}
	}
	for i := 0; i < 40; i++ {
		mid := (lo + hi) / 2
		if feasible(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}
